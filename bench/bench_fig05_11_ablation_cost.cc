// Figures 5, 7, 9, 11: monetary-cost ablation. For each workload and each
// cloud/on-prem cost ratio {1:1, 1.8:1, 5:2}, compares four variants of
// Skyscraper: no buffering & no cloud (the best real-time static config),
// only buffering, only cloud, and buffering & cloud — across the server
// catalog. Costs are normalized to the most expensive deployment in the
// sweep (the paper's "normalized cost" axis).

#include <functional>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"

namespace sky::bench {
namespace {

struct Variant {
  const char* name;
  bool buffer;
  bool cloud;
};

constexpr Variant kVariants[] = {
    {"no buf, no cloud", false, false},
    {"only buffering", true, false},
    {"only cloud", false, true},
    {"buffering & cloud", true, true},
};

void RunWorkload(const core::Workload& workload, ExperimentSetup setup,
                 double cloud_budget) {
  // The ablation study runs on the simulator (§5.4); two ingested days keep
  // the full sweep fast while preserving the diurnal structure.
  setup.test_duration = Days(2);
  std::vector<StaticEntry> totals = StaticConfigTotals(workload, setup);
  double denom = BestEntry(totals).total_quality;

  for (double ratio : {1.0, 1.8, 2.5}) {
    sim::CostModel cost_model(ratio);
    TablePrinter table(std::string(workload.name()) + " — cloud/on-prem " +
                       TablePrinter::Fmt(ratio, 1) + ":1");
    table.SetHeader({"variant", "vCPUs", "quality", "cloud $", "norm. cost"});
    double max_cost = 0.0;
    struct Row {
      std::string variant;
      int vcpus;
      double quality;
      double cloud_usd;
      double cost;
    };
    std::vector<Row> rows;

    for (const sim::ServerType& server : sim::ServerCatalog()) {
      sim::ClusterSpec cluster;
      cluster.cores = server.vcpus;
      auto model = FitOffline(workload, setup, cluster, cost_model,
                              /*train_forecaster=*/false);
      if (!model.ok()) continue;
      for (const Variant& v : kVariants) {
        double quality = 0.0;
        double cloud_usd = 0.0;
        if (!v.buffer && !v.cloud) {
          auto st =
              BestStaticOnServer(workload, setup, totals, cluster, cost_model);
          if (!st.ok()) continue;
          quality = st->total_quality;
        } else {
          core::EngineOptions run;
          run.duration = setup.test_duration;
          run.plan_interval = setup.plan_interval;
          run.enable_buffer = v.buffer;
          run.enable_cloud = v.cloud;
          run.cloud_budget_usd_per_interval = v.cloud ? cloud_budget : 0.0;
          core::IngestionEngine engine(&workload, &*model, cluster,
                                       &cost_model, run);
          auto result = engine.Run(setup.test_start);
          if (!result.ok()) continue;
          quality = result->total_quality;
          cloud_usd = result->cloud_usd;
        }
        double cost = DeploymentCostUsd(server, cost_model,
                                        setup.test_duration, cloud_usd);
        max_cost = std::max(max_cost, cost);
        rows.push_back({v.name, server.vcpus, quality / denom, cloud_usd,
                        cost});
      }
    }
    for (const Row& r : rows) {
      table.AddRow({r.variant, std::to_string(r.vcpus),
                    TablePrinter::Pct(r.quality, 0),
                    TablePrinter::Usd(r.cloud_usd),
                    TablePrinter::Fmt(r.cost / max_cost, 2)});
    }
    table.Print(std::cout);
  }
}

}  // namespace
}  // namespace sky::bench

int main() {
  using namespace sky::bench;
  std::printf("=== Figures 5/7/9/11: monetary-cost ablation ===\n");
  {
    sky::workloads::CovidWorkload covid;
    RunWorkload(covid, CovidSetup(), 3.0);
  }
  {
    sky::workloads::MotWorkload mot;
    RunWorkload(mot, MotSetup(), 2.0);
  }
  {
    sky::workloads::MoseiWorkload high(
        sky::workloads::MoseiWorkload::SpikeKind::kHigh);
    RunWorkload(high, MoseiSetup(), 4.0);
  }
  {
    sky::workloads::MoseiWorkload lng(
        sky::workloads::MoseiWorkload::SpikeKind::kLong);
    RunWorkload(lng, MoseiSetup(), 4.0);
  }
  return 0;
}
