// Figure 19 (Appendix G): comparison with VideoStorm*, a query-load-adaptive
// tuner. With a static V-ETL job there is no query-load signal: VideoStorm*
// fills the buffer early and then matches the static baseline, while
// Skyscraper adapts to the content.

#include <iostream>
#include <memory>

#include "baselines/videostorm.h"
#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"

namespace sky::bench {
namespace {

void RunWorkload(const core::Workload& workload, ExperimentSetup setup,
                 double cloud_budget) {
  setup.test_duration = Days(2);
  sim::CostModel cost_model(1.8);
  std::vector<StaticEntry> totals = StaticConfigTotals(workload, setup);
  double denom = BestEntry(totals).total_quality;

  TablePrinter table(std::string(workload.name()));
  table.SetHeader({"vCPUs", "Static", "VideoStorm*", "Skyscraper",
                   "VS buffer peak"});

  for (const sim::ServerType& server : sim::ServerCatalog()) {
    sim::ClusterSpec cluster;
    cluster.cores = server.vcpus;
    auto model = FitOffline(workload, setup, cluster, cost_model,
                            /*train_forecaster=*/false);
    if (!model.ok()) continue;

    auto st = BestStaticOnServer(workload, setup, totals, cluster,
                                 cost_model);
    auto vs = baselines::RunVideoStormBaseline(
        workload, model->profiles, setup.segment_seconds, setup.test_duration,
        setup.test_start, {});

    core::EngineOptions run;
    run.duration = setup.test_duration;
    run.plan_interval = setup.plan_interval;
    run.cloud_budget_usd_per_interval = cloud_budget;
    core::IngestionEngine engine(&workload, &*model, cluster, &cost_model,
                                 run);
    auto sky_result = engine.Run(setup.test_start);

    char peak[24];
    std::snprintf(peak, sizeof(peak), "%.2f GB",
                  vs.ok() ? vs->buffer_high_water_bytes / 1e9 : 0.0);
    table.AddRow(
        {std::to_string(server.vcpus),
         st.ok() ? TablePrinter::Pct(st->total_quality / denom, 0) : "-",
         vs.ok() ? TablePrinter::Pct(vs->total_quality / denom, 0) : "-",
         sky_result.ok()
             ? TablePrinter::Pct(sky_result->total_quality / denom, 0)
             : "-",
         peak});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace sky::bench

int main() {
  using namespace sky::bench;
  std::printf("=== Figure 19: VideoStorm* vs Skyscraper ===\n");
  {
    sky::workloads::CovidWorkload covid;
    RunWorkload(covid, CovidSetup(), 3.0);
  }
  {
    sky::workloads::MotWorkload mot;
    RunWorkload(mot, MotSetup(), 2.0);
  }
  {
    sky::workloads::MoseiWorkload high(
        sky::workloads::MoseiWorkload::SpikeKind::kHigh);
    RunWorkload(high, MoseiSetup(), 4.0);
  }
  {
    sky::workloads::MoseiWorkload lng(
        sky::workloads::MoseiWorkload::SpikeKind::kLong);
    RunWorkload(lng, MoseiSetup(), 4.0);
  }
  std::printf("\n(paper: VideoStorm* fills the buffer early, then performs "
              "like the static baseline; it beats static only on the first "
              "MOSEI-HIGH peak by luck)\n");
  return 0;
}
