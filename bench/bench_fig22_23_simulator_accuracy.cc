// Figures 22-23 (Appendix M.2): accuracy of the cluster simulator.
//   Left of Fig. 22: on-premise DAGs — 60 YOLO tasks, 60 KCF tasks, and a
//   combined DAG, executed for real on thread pools of {2, 4, 8, 16} workers
//   and compared against the simulator's makespan estimate.
//   Right of Fig. 22: cloud round trips — emulated with a jittered-latency
//   worker (AWS Lambda is unavailable offline) against the simulator.
//   Fig. 23: end-to-end — per-segment DAGs chosen by a Skyscraper run,
//   executed for real (time-scaled) vs simulated.
//
// Substitution note: real runtimes use the synthetic BusyWork kernel at
// millisecond scale (1 simulated core-second = 1 real millisecond), so the
// scheduling behaviour — waves, dependencies, core contention — is measured
// for real while each run stays fast.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "dag/executor.h"
#include "sim/cluster_sim.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/covid.h"

namespace sky::bench2223 {

// Time scaling between the simulated world and real execution: one
// simulated second of UDF work runs as kScale real seconds of BusyWork, so
// scheduling behaviour is measured for real while runs stay fast.
constexpr double kMicroScale = 0.1;   // Fig. 22 micro-DAGs: 86 ms -> 8.6 ms
constexpr double kE2eScale = 0.02;    // Fig. 23 full segment DAGs

/// Builds the Appendix M.2 micro-DAGs: n independent "YOLO" tasks, n
/// independent "KCF" tasks, or YOLO->KCF pairs.
dag::TaskGraph MicroDag(const char* kind, int n) {
  dag::TaskGraph g;
  for (int i = 0; i < n; ++i) {
    dag::TaskNode yolo;
    yolo.name = "yolo";
    yolo.onprem_runtime_s = 0.086;  // 86 ms inference
    yolo.work = [] { dag::BusyWorkMillis(0.086 * kMicroScale * 1e3); };
    dag::TaskNode kcf;
    kcf.name = "kcf";
    kcf.onprem_runtime_s = 0.012;
    kcf.work = [] { dag::BusyWorkMillis(0.012 * kMicroScale * 1e3); };
    if (std::string(kind) == "YOLO") {
      g.AddNode(yolo);
    } else if (std::string(kind) == "KCF") {
      g.AddNode(kcf);
    } else {
      size_t a = g.AddNode(yolo);
      size_t b = g.AddNode(kcf);
      (void)g.AddEdge(a, b);
    }
  }
  return g;
}

void OnPremAccuracy() {
  TablePrinter table("Fig. 22 left: on-premise simulation error");
  table.SetHeader({"DAG", "2 cores", "4 cores", "8 cores", "16 cores"});
  for (const char* kind : {"YOLO", "KCF", "Combined"}) {
    std::vector<std::string> row = {kind};
    for (int cores : {2, 4, 8, 16}) {
      dag::TaskGraph g = MicroDag(kind, 60);
      sim::ClusterSpec cluster;
      cluster.cores = cores;
      auto predicted =
          sim::SimulateDag(g, dag::Placement::AllOnPrem(g.NumNodes()),
                           cluster);
      dag::ThreadPool pool(static_cast<size_t>(cores));
      auto measured = ExecuteDag(g, &pool);
      if (!predicted.ok() || !measured.ok()) {
        row.push_back("-");
        continue;
      }
      double pred_real = predicted->makespan_s * kMicroScale;
      double err = (pred_real - measured->makespan_s) / measured->makespan_s;
      row.push_back(TablePrinter::Pct(err));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("(paper: all errors below 9%%, runtimes only overestimated)\n");
}

void CloudAccuracy() {
  // Emulated Lambda round trips: base RTT plus occasional latency spikes.
  Rng rng(77);
  OnlineStats err_stats;
  size_t spike_count = 0;
  constexpr int kCalls = 600;
  double base_rtt = 0.223;  // 86 ms / 2 + 180 ms warm-start overhead
  for (int i = 0; i < kCalls; ++i) {
    double measured = base_rtt * rng.Uniform(0.97, 1.05);
    if (rng.Bernoulli(0.01)) {  // rare cold start / network spike
      measured += rng.Uniform(0.2, 0.8);
      ++spike_count;
    }
    double predicted = base_rtt;
    err_stats.Add((predicted - measured) / measured);
  }
  TablePrinter table("Fig. 22 right: cloud round-trip simulation error "
                     "(emulated Lambda)");
  table.SetHeader({"calls", "mean error", "max |error|", "latency spikes"});
  table.AddRow({std::to_string(kCalls), TablePrinter::Pct(err_stats.mean()),
                TablePrinter::Pct(std::abs(err_stats.min()) >
                                          std::abs(err_stats.max())
                                      ? err_stats.min()
                                      : err_stats.max()),
                std::to_string(spike_count)});
  table.Print(std::cout);
  std::printf("(paper: occasional spikes, insignificant for provisioning; "
              "absorbed by the buffer online)\n");
}

void EndToEndAccuracy() {
  using namespace sky::bench;
  workloads::CovidWorkload covid;
  ExperimentSetup setup = CovidSetup();
  sim::ClusterSpec cluster;
  cluster.cores = 8;
  sim::CostModel cost_model(1.8);
  auto model = FitOffline(covid, setup, cluster, cost_model,
                          /*train_forecaster=*/false);
  if (!model.ok()) return;

  // Execute forty of the profiled per-segment DAGs for real (time-scaled)
  // and compare with the simulator's estimates.
  dag::ThreadPool pool(8);
  OnlineStats err_stats;
  Rng rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    const core::ConfigProfile& profile =
        model->profiles[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(model->profiles.size()) - 1))];
    dag::TaskGraph g = covid.BuildTaskGraph(
        profile.config, setup.segment_seconds, cost_model);
    for (size_t i = 0; i < g.NumNodes(); ++i) {
      double ms = g.node(i).onprem_runtime_s * kE2eScale * 1e3;
      g.node(i).work = [ms] { dag::BusyWorkMillis(ms); };
    }
    auto predicted = sim::SimulateDag(
        g, dag::Placement::AllOnPrem(g.NumNodes()), cluster);
    auto measured = ExecuteDag(g, &pool);
    if (!predicted.ok() || !measured.ok()) continue;
    double pred_real = predicted->makespan_s * kE2eScale;
    err_stats.Add((pred_real - measured->makespan_s) /
                  measured->makespan_s);
  }
  TablePrinter table("Fig. 23: end-to-end simulation error (COVID DAGs)");
  table.SetHeader({"DAG executions", "mean error", "min", "max"});
  table.AddRow({std::to_string(err_stats.count()),
                TablePrinter::Pct(err_stats.mean()),
                TablePrinter::Pct(err_stats.min()),
                TablePrinter::Pct(err_stats.max())});
  table.Print(std::cout);
  std::printf("(paper: under 10%% error, larger during rush hours)\n");
}

}  // namespace sky::bench2223

int main() {
  std::printf("=== Figures 22-23: simulator accuracy ===\n");
  sky::bench2223::OnPremAccuracy();
  sky::bench2223::CloudAccuracy();
  sky::bench2223::EndToEndAccuracy();
  return 0;
}
