#include "bench_common.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "baselines/static_baseline.h"
#include "video/stream_source.h"

namespace sky::bench {

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {
  Set("bench", name_);
}

void BenchJson::Set(const std::string& key, double value) {
  char buf[64];
  if (std::isfinite(value)) {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
  }
  entries_.emplace_back(key, buf);
}

void BenchJson::Set(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  entries_.emplace_back(key, quoted);
}

std::string BenchJson::Write() const {
  std::string file = "BENCH_" + name_ + ".json";
  std::ofstream out(file);
  if (!out) return "";
  out << "{\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out << "  \"" << entries_[i].first << "\": " << entries_[i].second
        << (i + 1 < entries_.size() ? "," : "") << "\n";
  }
  out << "}\n";
  return out ? file : "";
}

ExperimentSetup CovidSetup() {
  ExperimentSetup s;
  s.segment_seconds = 4.0;
  s.train_horizon = Days(16);
  s.test_start = Days(16);
  s.test_duration = Days(8);
  s.num_categories = 3;  // Appendix K.1: COVID and MOT use 3 categories
  s.plan_interval = Days(2);
  return s;
}

ExperimentSetup MotSetup() { return CovidSetup(); }

ExperimentSetup MoseiSetup() {
  ExperimentSetup s;
  s.segment_seconds = 7.0;  // Appendix K.1: MOSEI switches every 7 s
  s.train_horizon = Days(10);
  s.test_start = Days(10);
  s.test_duration = Days(2);
  s.num_categories = 5;  // Appendix K.1: MOSEI uses 5 categories
  s.plan_interval = Days(1);
  return s;
}

ExperimentSetup EvSetup() {
  ExperimentSetup s;
  s.segment_seconds = 2.0;
  s.train_horizon = Days(16);
  s.test_start = Days(16);
  s.test_duration = Days(1);  // Fig. 3 plots 24 hours
  s.num_categories = 3;
  s.plan_interval = Days(1);
  return s;
}

size_t BenchThreads(int argc, char** argv) {
  // 4096 bounds strtol overflow saturation as well as accidental
  // pool-per-core-times-1000 typos; no current machine exceeds it.
  constexpr long kMaxThreads = 4096;
  auto parse = [](const char* s) -> size_t {
    errno = 0;
    char* end = nullptr;
    long v = std::strtol(s, &end, 10);
    bool ok = end != s && *end == '\0' && errno == 0 && v > 0 &&
              v <= kMaxThreads;
    return ok ? static_cast<size_t>(v) : 0;
  };
  // An explicitly supplied but invalid count is a hard error: silently
  // falling back to the hardware concurrency would record misleading
  // "threads" values in BENCH_*.json — the one thing the override exists
  // to pin down.
  auto parse_or_die = [&](const char* s, const char* origin) -> size_t {
    size_t v = parse(s);
    if (v == 0) {
      std::fprintf(stderr, "invalid %s thread count '%s' (want an integer > 0)\n",
                   origin, s);
      std::exit(2);
    }
    return v;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--threads requires a value\n");
        std::exit(2);
      }
      return parse_or_die(argv[i + 1], "--threads");
    }
    const std::string prefix = "--threads=";
    if (arg.rfind(prefix, 0) == 0) {
      return parse_or_die(arg.c_str() + prefix.size(), "--threads");
    }
  }
  if (const char* env = std::getenv("SKY_BENCH_THREADS")) {
    return parse_or_die(env, "SKY_BENCH_THREADS");
  }
  return dag::DefaultThreadCount();
}

Result<core::OfflineModel> FitOffline(const core::Workload& workload,
                                      const ExperimentSetup& setup,
                                      const sim::ClusterSpec& cluster,
                                      const sim::CostModel& cost_model,
                                      bool train_forecaster,
                                      dag::ThreadPool* pool,
                                      size_t num_threads) {
  core::OfflineOptions opts;
  opts.segment_seconds = setup.segment_seconds;
  opts.train_horizon = setup.train_horizon;
  opts.num_categories = setup.num_categories;
  opts.forecaster.planned_interval = setup.plan_interval;
  opts.train_forecaster = train_forecaster;
  opts.pool = pool;
  opts.num_threads = num_threads;
  return core::RunOfflinePhase(workload, cluster, cost_model, opts);
}

double DeploymentCostUsd(const sim::ServerType& server,
                         const sim::CostModel& cost_model, SimTime duration,
                         double cloud_usd) {
  double hours = duration / 3600.0;
  return cost_model.OnPremCost(server, hours) + cloud_usd;
}

Result<double> BestStaticQualityDenominator(const core::Workload& workload,
                                            const ExperimentSetup& setup,
                                            const sim::CostModel& cost_model) {
  sim::ClusterSpec big;
  big.cores = sim::ServerCatalog().back().vcpus;
  SKY_ASSIGN_OR_RETURN(
      baselines::StaticResult best,
      baselines::BestStaticBaseline(workload, big, cost_model,
                                    setup.segment_seconds, setup.test_duration,
                                    setup.test_start));
  return best.total_quality;
}

std::vector<StaticEntry> StaticConfigTotals(const core::Workload& workload,
                                            const ExperimentSetup& setup) {
  video::StreamSource source(&workload.content_process(),
                             setup.segment_seconds);
  int64_t first =
      static_cast<int64_t>(setup.test_start / setup.segment_seconds);
  int64_t segments =
      static_cast<int64_t>(setup.test_duration / setup.segment_seconds);
  std::vector<StaticEntry> entries;
  for (const core::KnobConfig& config : workload.knob_space().AllConfigs()) {
    StaticEntry e;
    e.config = config;
    e.cost_core_s_per_video_s =
        workload.CostCoreSecondsPerVideoSecond(config);
    entries.push_back(std::move(e));
  }
  for (int64_t i = 0; i < segments; ++i) {
    video::ContentState content = source.Segment(first + i).content;
    for (StaticEntry& e : entries) {
      e.total_quality += workload.TrueQuality(e.config, content);
    }
  }
  return entries;
}

const StaticEntry& BestEntry(const std::vector<StaticEntry>& entries) {
  const StaticEntry* best = &entries.front();
  for (const StaticEntry& e : entries) {
    if (e.total_quality > best->total_quality) best = &e;
  }
  return *best;
}

Result<StaticEntry> BestStaticOnServer(const core::Workload& workload,
                                       const ExperimentSetup& setup,
                                       const std::vector<StaticEntry>& totals,
                                       const sim::ClusterSpec& cluster,
                                       const sim::CostModel& cost_model) {
  const StaticEntry* best = nullptr;
  for (const StaticEntry& e : totals) {
    if (best != nullptr && e.total_quality <= best->total_quality) continue;
    dag::TaskGraph graph =
        workload.BuildTaskGraph(e.config, setup.segment_seconds, cost_model);
    SKY_ASSIGN_OR_RETURN(
        sim::DagSimResult sim,
        sim::SimulateDag(graph, dag::Placement::AllOnPrem(graph.NumNodes()),
                         cluster));
    if (sim.makespan_s <= setup.segment_seconds + 1e-9) best = &e;
  }
  if (best == nullptr) {
    return Status::ResourceExhausted(
        "no configuration runs in real time on this server");
  }
  return *best;
}

}  // namespace sky::bench
