// Appendix D: multi-stream ingestion. Joint knob planning across streams
// sharing one cloud-credit budget, versus splitting the budget evenly and
// planning each stream independently. The joint LP (Eqs. 7-9) allocates
// credits to the streams whose hard content benefits most.
//
// The per-stream offline phases and the per-stream ingestion engines are
// independent simulations, so both fan out on one shared thread pool; the
// serial-vs-concurrent engine wall times land in
// BENCH_appd_multistream.json.

#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "bench_common.h"
#include "core/multi_stream.h"
#include "core/planner.h"
#include "dag/thread_pool.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/ev_counting.h"
#include "workloads/scenarios.h"

int main(int argc, char** argv) {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Appendix D: multi-stream joint planning ===\n");

  // Four cameras with different content mixes.
  std::vector<std::unique_ptr<workloads::EvCountingWorkload>> streams;
  std::vector<std::vector<double>> forecasts = {
      {0.85, 0.12, 0.03},   // quiet residential street
      {0.60, 0.25, 0.15},   // side street
      {0.35, 0.35, 0.30},   // arterial road
      {0.10, 0.30, 0.60}};  // busy intersection
  for (uint64_t s = 0; s < forecasts.size(); ++s) {
    streams.push_back(
        std::make_unique<workloads::EvCountingWorkload>(7100 + s));
  }

  sim::ClusterSpec cluster;
  cluster.cores = core::FairCoreShare(16, streams.size());
  sim::CostModel cost_model(1.8);

  dag::ThreadPool pool(BenchThreads(argc, argv));

  // Per-stream offline phases are independent: one stream per pool slot.
  ExperimentSetup setup = EvSetup();
  std::vector<core::OfflineModel> models(streams.size());
  std::vector<Status> fit_statuses(streams.size(), Status::Ok());
  WallTimer offline_timer;
  dag::ParallelFor(&pool, streams.size(), [&](size_t s) {
    auto model = FitOffline(*streams[s], setup, cluster, cost_model,
                            /*train_forecaster=*/false, &pool);
    if (model.ok()) {
      models[s] = std::move(*model);
    } else {
      fit_statuses[s] = model.status();
    }
  });
  double offline_s = offline_timer.Seconds();
  for (const Status& s : fit_statuses) {
    if (!s.ok()) {
      std::printf("offline failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::vector<core::StreamPlanInput> inputs;
  for (size_t s = 0; s < streams.size(); ++s) {
    core::StreamPlanInput in;
    in.categories = &models[s].categories;
    in.forecast = forecasts[s];
    for (const core::ConfigProfile& p : models[s].profiles) {
      in.config_costs.push_back(p.work_core_s_per_video_s);
    }
    inputs.push_back(std::move(in));
  }

  TablePrinter table("Joint vs split planning, expected quality per budget");
  table.SetHeader({"shared budget (core-s/s)", "joint plan", "even split",
                   "joint advantage"});
  for (double budget : {4.0, 8.0, 12.0, 20.0, 32.0}) {
    auto joint = core::ComputeJointKnobPlan(inputs, budget);
    double joint_q = 0.0;
    if (joint.ok()) {
      for (const core::KnobPlan& p : *joint) joint_q += p.expected_quality;
    }
    double split_q = 0.0;
    bool split_ok = true;
    for (const core::StreamPlanInput& in : inputs) {
      auto plan = core::ComputeKnobPlan(
          *in.categories, in.forecast, in.config_costs,
          budget / static_cast<double>(inputs.size()));
      if (!plan.ok()) {
        split_ok = false;
        break;
      }
      split_q += plan->expected_quality;
    }
    table.AddRow(
        {TablePrinter::Fmt(budget, 0),
         joint.ok() ? TablePrinter::Pct(joint_q / inputs.size()) : "-",
         split_ok ? TablePrinter::Pct(split_q / inputs.size()) : "-",
         joint.ok() && split_ok
             ? TablePrinter::Pct((joint_q - split_q) / inputs.size())
             : "-"});
  }
  table.Print(std::cout);
  std::printf("\n(joint planning always >= even split: the LP moves credits "
              "to streams whose hard content gains the most; gains shrink "
              "as the budget saturates)\n");

  // Full ingestion: every camera runs its own engine over the test day.
  // The engines are independent simulations — run them serially, then
  // concurrently on the pool, and check the concurrent run changes nothing.
  std::vector<core::StreamEngineJob> jobs;
  for (size_t s = 0; s < streams.size(); ++s) {
    core::StreamEngineJob job;
    job.workload = streams[s].get();
    job.model = &models[s];
    job.cluster = cluster;
    job.cost_model = &cost_model;
    job.options.duration = setup.test_duration;
    job.options.plan_interval = setup.plan_interval;
    job.options.cloud_budget_usd_per_interval = 2.0;
    job.start_time = setup.test_start;
    jobs.push_back(job);
  }

  WallTimer serial_timer;
  std::vector<Result<core::EngineResult>> serial_runs =
      core::RunStreamEngines(jobs, nullptr);
  double serial_s = serial_timer.Seconds();

  WallTimer concurrent_timer;
  std::vector<Result<core::EngineResult>> concurrent_runs =
      core::RunStreamEngines(jobs, &pool);
  double concurrent_s = concurrent_timer.Seconds();

  TablePrinter engines("Per-stream ingestion engines (1 test day each)");
  engines.SetHeader({"stream", "mean quality", "switches", "identical"});
  bool all_identical = true;
  for (size_t s = 0; s < jobs.size(); ++s) {
    if (!serial_runs[s].ok() || !concurrent_runs[s].ok()) {
      std::printf("engine failed: %s\n",
                  serial_runs[s].ok()
                      ? concurrent_runs[s].status().ToString().c_str()
                      : serial_runs[s].status().ToString().c_str());
      return 1;
    }
    bool same =
        serial_runs[s]->total_quality == concurrent_runs[s]->total_quality &&
        serial_runs[s]->switch_count == concurrent_runs[s]->switch_count;
    all_identical &= same;
    engines.AddRow({"camera " + std::to_string(s),
                    TablePrinter::Pct(serial_runs[s]->mean_quality),
                    TablePrinter::Fmt(
                        static_cast<double>(serial_runs[s]->switch_count), 0),
                    same ? "yes" : "NO"});
  }
  engines.Print(std::cout);
  double engine_speedup = concurrent_s > 0 ? serial_s / concurrent_s : 0.0;
  std::printf("\nengines: serial %.2f s, concurrent %.2f s on %zu threads "
              "(%.2fx); offline fits took %.2f s in parallel\n",
              serial_s, concurrent_s, pool.num_threads(), engine_speedup,
              offline_s);

  // Jointly-planned ingestion: the same jobs multiplexed on one shared
  // clock by a StreamSet. Joint mode pools the per-stream budgets and
  // solves Appendix D's program live at every lockstep plan boundary;
  // independent mode must reproduce the per-engine runs above bitwise
  // (parity gate).
  WallTimer joint_timer;
  auto joint_set = core::StreamSet::Create(
      jobs, {core::MultiStreamPlanning::kJoint});
  if (!joint_set.ok() || !joint_set->RunToCompletion(&pool).ok()) {
    std::printf("joint stream set failed\n");
    return 1;
  }
  double joint_s = joint_timer.Seconds();

  WallTimer indep_timer;
  auto indep_set = core::StreamSet::Create(
      jobs, {core::MultiStreamPlanning::kIndependent});
  if (!indep_set.ok() || !indep_set->RunToCompletion(&pool).ok()) {
    std::printf("independent stream set failed\n");
    return 1;
  }
  double indep_s = indep_timer.Seconds();

  auto joint_runs = joint_set->Results();
  auto indep_runs = indep_set->Results();
  TablePrinter modes("StreamSet ingestion: joint vs independent planning");
  modes.SetHeader({"stream", "joint quality", "indep quality",
                   "joint cloud $", "indep cloud $", "indep == engines"});
  bool streamset_parity = true;
  double joint_quality = 0.0, indep_quality = 0.0;
  double joint_usd = 0.0, indep_usd = 0.0;
  for (size_t s = 0; s < jobs.size(); ++s) {
    if (!joint_runs[s].ok() || !indep_runs[s].ok()) {
      std::printf("stream set run failed on stream %zu\n", s);
      return 1;
    }
    // Independent planning is defined as "exactly the standalone engines":
    // anything but bitwise equality with the serial runs above is a bug.
    bool same = core::EngineResultsIdentical(*serial_runs[s], *indep_runs[s]);
    streamset_parity &= same;
    joint_quality += joint_runs[s]->mean_quality;
    indep_quality += indep_runs[s]->mean_quality;
    joint_usd += joint_runs[s]->cloud_usd;
    indep_usd += indep_runs[s]->cloud_usd;
    modes.AddRow({"camera " + std::to_string(s),
                  TablePrinter::Pct(joint_runs[s]->mean_quality),
                  TablePrinter::Pct(indep_runs[s]->mean_quality),
                  TablePrinter::Fmt(joint_runs[s]->cloud_usd, 2),
                  TablePrinter::Fmt(indep_runs[s]->cloud_usd, 2),
                  same ? "yes" : "NO"});
  }
  modes.Print(std::cout);
  joint_quality /= static_cast<double>(jobs.size());
  indep_quality /= static_cast<double>(jobs.size());
  std::printf("\njoint planning: mean quality %.2f%% vs %.2f%% independent "
              "(%+.2f pp) at $%.2f vs $%.2f cloud spend; walls %.2f / %.2f "
              "s\n",
              100 * joint_quality, 100 * indep_quality,
              100 * (joint_quality - indep_quality), joint_usd, indep_usd,
              joint_s, indep_s);

  // Flash-crowd scenario: the same joint-vs-independent comparison when the
  // cameras ingest the adversarial burst stream instead of the steady-state
  // diurnal source. Bursts hit the cameras at different times (distinct
  // content seeds) and are invisible to the offline forecast, so the joint
  // LP reallocates pooled credits on stale information — the realized delta
  // (recorded in the JSON, sign and all) measures how much that costs or
  // gains versus locking every camera to its even split.
  std::printf("\n=== Flash-crowd scenario: joint planning under bursts ===\n");
  ExperimentSetup fc_setup = CovidSetup();
  fc_setup.test_duration = Days(1);
  std::vector<std::unique_ptr<workloads::FlashCrowdWorkload>> fc_streams;
  for (uint64_t s = 0; s < 4; ++s) {
    fc_streams.push_back(
        std::make_unique<workloads::FlashCrowdWorkload>(7300 + s));
  }
  std::vector<core::OfflineModel> fc_models(fc_streams.size());
  std::vector<Status> fc_statuses(fc_streams.size(), Status::Ok());
  dag::ParallelFor(&pool, fc_streams.size(), [&](size_t s) {
    auto model = FitOffline(*fc_streams[s], fc_setup, cluster, cost_model,
                            /*train_forecaster=*/false, &pool);
    if (model.ok()) {
      fc_models[s] = std::move(*model);
    } else {
      fc_statuses[s] = model.status();
    }
  });
  for (const Status& s : fc_statuses) {
    if (!s.ok()) {
      std::printf("flash-crowd offline failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::vector<core::StreamEngineJob> fc_jobs;
  for (size_t s = 0; s < fc_streams.size(); ++s) {
    core::StreamEngineJob job;
    job.workload = fc_streams[s].get();
    job.model = &fc_models[s];
    job.cluster = cluster;
    job.cost_model = &cost_model;
    job.options.duration = fc_setup.test_duration;
    job.options.plan_interval = Hours(6);
    job.options.cloud_budget_usd_per_interval = 2.0;
    job.start_time = fc_setup.test_start;
    fc_jobs.push_back(job);
  }
  auto fc_joint = core::StreamSet::Create(
      fc_jobs, {core::MultiStreamPlanning::kJoint});
  auto fc_indep = core::StreamSet::Create(
      fc_jobs, {core::MultiStreamPlanning::kIndependent});
  if (!fc_joint.ok() || !fc_joint->RunToCompletion(&pool).ok() ||
      !fc_indep.ok() || !fc_indep->RunToCompletion(&pool).ok()) {
    std::printf("flash-crowd stream set failed\n");
    return 1;
  }
  auto fc_joint_runs = fc_joint->Results();
  auto fc_indep_runs = fc_indep->Results();
  TablePrinter fc_table("Flash-crowd cameras: joint vs independent planning");
  fc_table.SetHeader({"stream", "joint quality", "indep quality",
                      "joint cloud $", "indep cloud $"});
  double fc_joint_q = 0.0, fc_indep_q = 0.0;
  double fc_joint_usd = 0.0, fc_indep_usd = 0.0;
  for (size_t s = 0; s < fc_jobs.size(); ++s) {
    if (!fc_joint_runs[s].ok() || !fc_indep_runs[s].ok()) {
      std::printf("flash-crowd run failed on stream %zu\n", s);
      return 1;
    }
    fc_joint_q += fc_joint_runs[s]->mean_quality;
    fc_indep_q += fc_indep_runs[s]->mean_quality;
    fc_joint_usd += fc_joint_runs[s]->cloud_usd;
    fc_indep_usd += fc_indep_runs[s]->cloud_usd;
    fc_table.AddRow({"burst cam " + std::to_string(s),
                     TablePrinter::Pct(fc_joint_runs[s]->mean_quality),
                     TablePrinter::Pct(fc_indep_runs[s]->mean_quality),
                     TablePrinter::Fmt(fc_joint_runs[s]->cloud_usd, 2),
                     TablePrinter::Fmt(fc_indep_runs[s]->cloud_usd, 2)});
  }
  fc_table.Print(std::cout);
  fc_joint_q /= static_cast<double>(fc_jobs.size());
  fc_indep_q /= static_cast<double>(fc_jobs.size());
  std::printf("\nflash-crowd joint advantage: %+.2f pp (%.2f%% vs %.2f%%) at "
              "$%.2f vs $%.2f cloud spend%s\n",
              100 * (fc_joint_q - fc_indep_q), 100 * fc_joint_q,
              100 * fc_indep_q, fc_joint_usd, fc_indep_usd,
              fc_joint_q < fc_indep_q
                  ? " (bursts violate the forecast: joint reallocation "
                    "misfires under this adversarial stream)"
                  : "");

  // Fleet sweep: the sharded barrier scheduler at {4, 64, 256} streams x
  // {1, 2, 4, 8, 16} workers. Joint-mode results must be bitwise identical
  // at every worker count (hard gate); the speedup at 4 streams / 4 workers
  // is the headline scheduler metric, gated >= 3.0 when the hardware can
  // actually run 4 workers in parallel. Plan-boundary latency percentiles
  // come from the 1-worker run (boundary solves are serial at the barrier
  // regardless of worker count).
  std::printf("\n=== Fleet sweep: sharded barrier scheduler ===\n");
  const size_t sweep_counts[] = {4, 64, 256};
  const size_t sweep_workers[] = {1, 2, 4, 8, 16};
  bool sweep_identical = true;
  double speedup_s4_t4 = 0.0;
  std::vector<std::pair<std::string, double>> sweep_metrics;
  TablePrinter sweep_table(
      "Joint StreamSet wall seconds by worker count (speedup vs 1 worker)");
  sweep_table.SetHeader({"streams", "1 wkr", "2 wkrs", "4 wkrs", "8 wkrs",
                         "16 wkrs", "bnd p50 ms", "bnd p99 ms"});
  for (size_t n : sweep_counts) {
    // Large fleets reuse the four fitted models round-robin: the models are
    // statistics of the shared content process, so any same-process stream
    // can serve them; fitting 256 offline phases is not what this bench
    // times. Shorter horizons at larger counts keep total work bounded.
    std::vector<std::unique_ptr<workloads::EvCountingWorkload>> fleet;
    std::vector<core::StreamEngineJob> fleet_jobs;
    for (size_t s = 0; s < n; ++s) {
      fleet.push_back(std::make_unique<workloads::EvCountingWorkload>(
          7200 + static_cast<uint64_t>(s)));
      core::StreamEngineJob job;
      job.workload = fleet.back().get();
      job.model = &models[s % models.size()];
      job.cluster = cluster;
      job.cost_model = &cost_model;
      job.options.duration = n == 4 ? Days(1) : (n == 64 ? Hours(4) : Hours(2));
      job.options.plan_interval = n == 4 ? Hours(4) : Hours(1);
      job.options.cloud_budget_usd_per_interval = 1.0;
      job.start_time = setup.test_start;
      fleet_jobs.push_back(job);
    }

    std::vector<Result<core::EngineResult>> ref;
    double wall_1 = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::vector<std::string> row{std::to_string(n)};
    for (size_t t : sweep_workers) {
      std::unique_ptr<dag::ThreadPool> fleet_pool;
      if (t > 1) fleet_pool = std::make_unique<dag::ThreadPool>(t - 1);
      WallTimer sweep_timer;
      auto set = core::StreamSet::Create(fleet_jobs,
                                         {core::MultiStreamPlanning::kJoint});
      if (!set.ok() || !set->RunToCompletion(fleet_pool.get()).ok()) {
        std::printf("sweep run failed at %zu streams / %zu workers\n", n, t);
        return 1;
      }
      double wall = sweep_timer.Seconds();
      auto runs = set->Results();
      for (size_t s = 0; s < n; ++s) {
        if (!runs[s].ok()) {
          std::printf("sweep stream %zu failed at %zu workers: %s\n", s, t,
                      runs[s].status().ToString().c_str());
          return 1;
        }
      }
      if (t == 1) {
        ref = std::move(runs);
        wall_1 = wall;
        std::vector<double> lat = set->boundary_latencies_ms();
        p50_ms = Percentile(lat, 50.0);
        p99_ms = Percentile(lat, 99.0);
        sweep_metrics.emplace_back("plan_boundary_p50_ms_" + std::to_string(n),
                                   p50_ms);
        sweep_metrics.emplace_back("plan_boundary_p99_ms_" + std::to_string(n),
                                   p99_ms);
        sweep_metrics.emplace_back("plan_boundaries_" + std::to_string(n),
                                   static_cast<double>(lat.size()));
        row.push_back(TablePrinter::Fmt(wall, 2));
      } else {
        for (size_t s = 0; s < n; ++s) {
          if (!core::EngineResultsIdentical(*ref[s], *runs[s])) {
            sweep_identical = false;
            std::printf("BITWISE MISMATCH: %zu streams, %zu workers, "
                        "stream %zu\n",
                        n, t, s);
          }
        }
        double sp = wall > 0 ? wall_1 / wall : 0.0;
        if (n == 4 && t == 4) speedup_s4_t4 = sp;
        sweep_metrics.emplace_back("engines_speedup_s" + std::to_string(n) +
                                       "_t" + std::to_string(t),
                                   sp);
        row.push_back(TablePrinter::Fmt(wall, 2) + " (" +
                      TablePrinter::Fmt(sp, 2) + "x)");
      }
    }
    row.push_back(TablePrinter::Fmt(p50_ms, 3));
    row.push_back(TablePrinter::Fmt(p99_ms, 3));
    sweep_table.AddRow(row);
  }
  sweep_table.Print(std::cout);

  unsigned hardware_threads = std::thread::hardware_concurrency();
  bool headline_ok = true;
  if (hardware_threads >= 4) {
    headline_ok = speedup_s4_t4 >= 3.0;
    std::printf("\nscheduler speedup at 4 streams / 4 workers: %.2fx "
                "(gate: >= 3.0) -- %s\n",
                speedup_s4_t4, headline_ok ? "OK" : "FAIL");
  } else {
    std::printf("\nscheduler speedup at 4 streams / 4 workers: %.2fx -- "
                "gate skipped: only %u hardware thread(s); wall-clock "
                "parallel speedup is unmeasurable here\n",
                speedup_s4_t4, hardware_threads);
  }
  std::printf("bitwise identity across worker counts: %s\n",
              sweep_identical ? "yes" : "NO");

  BenchJson json("appd_multistream");
  json.Set("streams", static_cast<double>(jobs.size()));
  json.Set("threads", static_cast<double>(pool.num_threads()));
  json.Set("offline_parallel_wall_s", offline_s);
  json.Set("engines_serial_wall_s", serial_s);
  json.Set("engines_concurrent_wall_s", concurrent_s);
  json.Set("engines_speedup", engine_speedup);
  json.Set("results_identical", all_identical ? "yes" : "no");
  json.Set("joint_mean_quality", joint_quality);
  json.Set("independent_mean_quality", indep_quality);
  json.Set("joint_quality_delta", joint_quality - indep_quality);
  json.Set("joint_cloud_usd", joint_usd);
  json.Set("independent_cloud_usd", indep_usd);
  json.Set("joint_wall_s", joint_s);
  json.Set("independent_wall_s", indep_s);
  json.Set("streamset_independent_parity", streamset_parity ? "yes" : "no");
  json.Set("flash_crowd_joint_mean_quality", fc_joint_q);
  json.Set("flash_crowd_independent_mean_quality", fc_indep_q);
  json.Set("flash_crowd_joint_quality_delta", fc_joint_q - fc_indep_q);
  json.Set("flash_crowd_joint_cloud_usd", fc_joint_usd);
  json.Set("flash_crowd_independent_cloud_usd", fc_indep_usd);
  json.Set("hardware_threads", static_cast<double>(hardware_threads));
  json.Set("engines_speedup_s4_t4", speedup_s4_t4);
  for (const auto& [key, value] : sweep_metrics) json.Set(key, value);
  json.Set("sweep_bitwise_identical", sweep_identical ? "yes" : "no");
  json.Set("speedup_gate",
           hardware_threads >= 4 ? (headline_ok ? "pass" : "fail") : "skipped");
  std::string path = json.Write();
  if (!path.empty()) std::printf("metrics written to %s\n", path.c_str());
  return all_identical && streamset_parity && sweep_identical && headline_ok
             ? 0
             : 1;
}
