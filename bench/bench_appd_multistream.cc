// Appendix D: multi-stream ingestion. Joint knob planning across streams
// sharing one cloud-credit budget, versus splitting the budget evenly and
// planning each stream independently. The joint LP (Eqs. 7-9) allocates
// credits to the streams whose hard content benefits most.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/multi_stream.h"
#include "core/planner.h"
#include "util/table.h"
#include "workloads/ev_counting.h"

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Appendix D: multi-stream joint planning ===\n");

  // Four cameras with different content mixes.
  std::vector<std::unique_ptr<workloads::EvCountingWorkload>> streams;
  std::vector<std::vector<double>> forecasts = {
      {0.85, 0.12, 0.03},   // quiet residential street
      {0.60, 0.25, 0.15},   // side street
      {0.35, 0.35, 0.30},   // arterial road
      {0.10, 0.30, 0.60}};  // busy intersection
  for (uint64_t s = 0; s < forecasts.size(); ++s) {
    streams.push_back(
        std::make_unique<workloads::EvCountingWorkload>(7100 + s));
  }

  sim::ClusterSpec cluster;
  cluster.cores = core::FairCoreShare(16, streams.size());
  sim::CostModel cost_model(1.8);

  ExperimentSetup setup = EvSetup();
  std::vector<core::OfflineModel> models;
  std::vector<core::StreamPlanInput> inputs;
  for (size_t s = 0; s < streams.size(); ++s) {
    auto model = FitOffline(*streams[s], setup, cluster, cost_model,
                            /*train_forecaster=*/false);
    if (!model.ok()) {
      std::printf("offline failed: %s\n", model.status().ToString().c_str());
      return 1;
    }
    models.push_back(std::move(*model));
  }
  for (size_t s = 0; s < streams.size(); ++s) {
    core::StreamPlanInput in;
    in.categories = &models[s].categories;
    in.forecast = forecasts[s];
    for (const core::ConfigProfile& p : models[s].profiles) {
      in.config_costs.push_back(p.work_core_s_per_video_s);
    }
    inputs.push_back(std::move(in));
  }

  TablePrinter table("Joint vs split planning, expected quality per budget");
  table.SetHeader({"shared budget (core-s/s)", "joint plan", "even split",
                   "joint advantage"});
  for (double budget : {4.0, 8.0, 12.0, 20.0, 32.0}) {
    auto joint = core::ComputeJointKnobPlan(inputs, budget);
    double joint_q = 0.0;
    if (joint.ok()) {
      for (const core::KnobPlan& p : *joint) joint_q += p.expected_quality;
    }
    double split_q = 0.0;
    bool split_ok = true;
    for (const core::StreamPlanInput& in : inputs) {
      auto plan = core::ComputeKnobPlan(
          *in.categories, in.forecast, in.config_costs,
          budget / static_cast<double>(inputs.size()));
      if (!plan.ok()) {
        split_ok = false;
        break;
      }
      split_q += plan->expected_quality;
    }
    table.AddRow(
        {TablePrinter::Fmt(budget, 0),
         joint.ok() ? TablePrinter::Pct(joint_q / inputs.size()) : "-",
         split_ok ? TablePrinter::Pct(split_q / inputs.size()) : "-",
         joint.ok() && split_ok
             ? TablePrinter::Pct((joint_q - split_q) / inputs.size())
             : "-"});
  }
  table.Print(std::cout);
  std::printf("\n(joint planning always >= even split: the LP moves credits "
              "to streams whose hard content gains the most; gains shrink "
              "as the budget saturates)\n");
  return 0;
}
