// Appendix D: multi-stream ingestion. Joint knob planning across streams
// sharing one cloud-credit budget, versus splitting the budget evenly and
// planning each stream independently. The joint LP (Eqs. 7-9) allocates
// credits to the streams whose hard content benefits most.
//
// The per-stream offline phases and the per-stream ingestion engines are
// independent simulations, so both fan out on one shared thread pool; the
// serial-vs-concurrent engine wall times land in
// BENCH_appd_multistream.json.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/multi_stream.h"
#include "core/planner.h"
#include "dag/thread_pool.h"
#include "util/table.h"
#include "workloads/ev_counting.h"

int main(int argc, char** argv) {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Appendix D: multi-stream joint planning ===\n");

  // Four cameras with different content mixes.
  std::vector<std::unique_ptr<workloads::EvCountingWorkload>> streams;
  std::vector<std::vector<double>> forecasts = {
      {0.85, 0.12, 0.03},   // quiet residential street
      {0.60, 0.25, 0.15},   // side street
      {0.35, 0.35, 0.30},   // arterial road
      {0.10, 0.30, 0.60}};  // busy intersection
  for (uint64_t s = 0; s < forecasts.size(); ++s) {
    streams.push_back(
        std::make_unique<workloads::EvCountingWorkload>(7100 + s));
  }

  sim::ClusterSpec cluster;
  cluster.cores = core::FairCoreShare(16, streams.size());
  sim::CostModel cost_model(1.8);

  dag::ThreadPool pool(BenchThreads(argc, argv));

  // Per-stream offline phases are independent: one stream per pool slot.
  ExperimentSetup setup = EvSetup();
  std::vector<core::OfflineModel> models(streams.size());
  std::vector<Status> fit_statuses(streams.size(), Status::Ok());
  WallTimer offline_timer;
  dag::ParallelFor(&pool, streams.size(), [&](size_t s) {
    auto model = FitOffline(*streams[s], setup, cluster, cost_model,
                            /*train_forecaster=*/false, &pool);
    if (model.ok()) {
      models[s] = std::move(*model);
    } else {
      fit_statuses[s] = model.status();
    }
  });
  double offline_s = offline_timer.Seconds();
  for (const Status& s : fit_statuses) {
    if (!s.ok()) {
      std::printf("offline failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::vector<core::StreamPlanInput> inputs;
  for (size_t s = 0; s < streams.size(); ++s) {
    core::StreamPlanInput in;
    in.categories = &models[s].categories;
    in.forecast = forecasts[s];
    for (const core::ConfigProfile& p : models[s].profiles) {
      in.config_costs.push_back(p.work_core_s_per_video_s);
    }
    inputs.push_back(std::move(in));
  }

  TablePrinter table("Joint vs split planning, expected quality per budget");
  table.SetHeader({"shared budget (core-s/s)", "joint plan", "even split",
                   "joint advantage"});
  for (double budget : {4.0, 8.0, 12.0, 20.0, 32.0}) {
    auto joint = core::ComputeJointKnobPlan(inputs, budget);
    double joint_q = 0.0;
    if (joint.ok()) {
      for (const core::KnobPlan& p : *joint) joint_q += p.expected_quality;
    }
    double split_q = 0.0;
    bool split_ok = true;
    for (const core::StreamPlanInput& in : inputs) {
      auto plan = core::ComputeKnobPlan(
          *in.categories, in.forecast, in.config_costs,
          budget / static_cast<double>(inputs.size()));
      if (!plan.ok()) {
        split_ok = false;
        break;
      }
      split_q += plan->expected_quality;
    }
    table.AddRow(
        {TablePrinter::Fmt(budget, 0),
         joint.ok() ? TablePrinter::Pct(joint_q / inputs.size()) : "-",
         split_ok ? TablePrinter::Pct(split_q / inputs.size()) : "-",
         joint.ok() && split_ok
             ? TablePrinter::Pct((joint_q - split_q) / inputs.size())
             : "-"});
  }
  table.Print(std::cout);
  std::printf("\n(joint planning always >= even split: the LP moves credits "
              "to streams whose hard content gains the most; gains shrink "
              "as the budget saturates)\n");

  // Full ingestion: every camera runs its own engine over the test day.
  // The engines are independent simulations — run them serially, then
  // concurrently on the pool, and check the concurrent run changes nothing.
  std::vector<core::StreamEngineJob> jobs;
  for (size_t s = 0; s < streams.size(); ++s) {
    core::StreamEngineJob job;
    job.workload = streams[s].get();
    job.model = &models[s];
    job.cluster = cluster;
    job.cost_model = &cost_model;
    job.options.duration = setup.test_duration;
    job.options.plan_interval = setup.plan_interval;
    job.options.cloud_budget_usd_per_interval = 2.0;
    job.start_time = setup.test_start;
    jobs.push_back(job);
  }

  WallTimer serial_timer;
  std::vector<Result<core::EngineResult>> serial_runs =
      core::RunStreamEngines(jobs, nullptr);
  double serial_s = serial_timer.Seconds();

  WallTimer concurrent_timer;
  std::vector<Result<core::EngineResult>> concurrent_runs =
      core::RunStreamEngines(jobs, &pool);
  double concurrent_s = concurrent_timer.Seconds();

  TablePrinter engines("Per-stream ingestion engines (1 test day each)");
  engines.SetHeader({"stream", "mean quality", "switches", "identical"});
  bool all_identical = true;
  for (size_t s = 0; s < jobs.size(); ++s) {
    if (!serial_runs[s].ok() || !concurrent_runs[s].ok()) {
      std::printf("engine failed: %s\n",
                  serial_runs[s].ok()
                      ? concurrent_runs[s].status().ToString().c_str()
                      : serial_runs[s].status().ToString().c_str());
      return 1;
    }
    bool same =
        serial_runs[s]->total_quality == concurrent_runs[s]->total_quality &&
        serial_runs[s]->switch_count == concurrent_runs[s]->switch_count;
    all_identical &= same;
    engines.AddRow({"camera " + std::to_string(s),
                    TablePrinter::Pct(serial_runs[s]->mean_quality),
                    TablePrinter::Fmt(
                        static_cast<double>(serial_runs[s]->switch_count), 0),
                    same ? "yes" : "NO"});
  }
  engines.Print(std::cout);
  double engine_speedup = concurrent_s > 0 ? serial_s / concurrent_s : 0.0;
  std::printf("\nengines: serial %.2f s, concurrent %.2f s on %zu threads "
              "(%.2fx); offline fits took %.2f s in parallel\n",
              serial_s, concurrent_s, pool.num_threads(), engine_speedup,
              offline_s);

  // Jointly-planned ingestion: the same jobs multiplexed on one shared
  // clock by a StreamSet. Joint mode pools the per-stream budgets and
  // solves Appendix D's program live at every lockstep plan boundary;
  // independent mode must reproduce the per-engine runs above bitwise
  // (parity gate).
  WallTimer joint_timer;
  auto joint_set = core::StreamSet::Create(
      jobs, {core::MultiStreamPlanning::kJoint});
  if (!joint_set.ok() || !joint_set->RunToCompletion(&pool).ok()) {
    std::printf("joint stream set failed\n");
    return 1;
  }
  double joint_s = joint_timer.Seconds();

  WallTimer indep_timer;
  auto indep_set = core::StreamSet::Create(
      jobs, {core::MultiStreamPlanning::kIndependent});
  if (!indep_set.ok() || !indep_set->RunToCompletion(&pool).ok()) {
    std::printf("independent stream set failed\n");
    return 1;
  }
  double indep_s = indep_timer.Seconds();

  auto joint_runs = joint_set->Results();
  auto indep_runs = indep_set->Results();
  TablePrinter modes("StreamSet ingestion: joint vs independent planning");
  modes.SetHeader({"stream", "joint quality", "indep quality",
                   "joint cloud $", "indep cloud $", "indep == engines"});
  bool streamset_parity = true;
  double joint_quality = 0.0, indep_quality = 0.0;
  double joint_usd = 0.0, indep_usd = 0.0;
  for (size_t s = 0; s < jobs.size(); ++s) {
    if (!joint_runs[s].ok() || !indep_runs[s].ok()) {
      std::printf("stream set run failed on stream %zu\n", s);
      return 1;
    }
    // Independent planning is defined as "exactly the standalone engines":
    // anything but bitwise equality with the serial runs above is a bug.
    bool same = core::EngineResultsIdentical(*serial_runs[s], *indep_runs[s]);
    streamset_parity &= same;
    joint_quality += joint_runs[s]->mean_quality;
    indep_quality += indep_runs[s]->mean_quality;
    joint_usd += joint_runs[s]->cloud_usd;
    indep_usd += indep_runs[s]->cloud_usd;
    modes.AddRow({"camera " + std::to_string(s),
                  TablePrinter::Pct(joint_runs[s]->mean_quality),
                  TablePrinter::Pct(indep_runs[s]->mean_quality),
                  TablePrinter::Fmt(joint_runs[s]->cloud_usd, 2),
                  TablePrinter::Fmt(indep_runs[s]->cloud_usd, 2),
                  same ? "yes" : "NO"});
  }
  modes.Print(std::cout);
  joint_quality /= static_cast<double>(jobs.size());
  indep_quality /= static_cast<double>(jobs.size());
  std::printf("\njoint planning: mean quality %.2f%% vs %.2f%% independent "
              "(%+.2f pp) at $%.2f vs $%.2f cloud spend; walls %.2f / %.2f "
              "s\n",
              100 * joint_quality, 100 * indep_quality,
              100 * (joint_quality - indep_quality), joint_usd, indep_usd,
              joint_s, indep_s);

  BenchJson json("appd_multistream");
  json.Set("streams", static_cast<double>(jobs.size()));
  json.Set("threads", static_cast<double>(pool.num_threads()));
  json.Set("offline_parallel_wall_s", offline_s);
  json.Set("engines_serial_wall_s", serial_s);
  json.Set("engines_concurrent_wall_s", concurrent_s);
  json.Set("engines_speedup", engine_speedup);
  json.Set("results_identical", all_identical ? "yes" : "no");
  json.Set("joint_mean_quality", joint_quality);
  json.Set("independent_mean_quality", indep_quality);
  json.Set("joint_quality_delta", joint_quality - indep_quality);
  json.Set("joint_cloud_usd", joint_usd);
  json.Set("independent_cloud_usd", indep_usd);
  json.Set("joint_wall_s", joint_s);
  json.Set("independent_wall_s", indep_s);
  json.Set("streamset_independent_parity", streamset_parity ? "yes" : "no");
  std::string path = json.Write();
  if (!path.empty()) std::printf("metrics written to %s\n", path.c_str());
  return all_identical && streamset_parity ? 0 : 1;
}
