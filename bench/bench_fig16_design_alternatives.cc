// Figure 16 (Appendix B.1): from the simplistic idealized system to the
// practical design. Compares, on COVID under a pure computation budget:
//   Static        — one configuration for everything;
//   Idealized     — forecast each configuration's quality per 2-second slot
//                   directly (time-of-day average) + knapsack assignment;
//   Practical     — the Skyscraper design (categories + distribution
//                   forecast + plan + reactive switching);
//   Optimum       — ground-truth knapsack oracle.

#include <iostream>
#include <memory>

#include "baselines/idealized.h"
#include "baselines/optimum.h"
#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Figure 16: idealized vs practical design (COVID) ===\n");

  workloads::CovidWorkload covid;
  ExperimentSetup setup = CovidSetup();
  setup.test_duration = Days(2);
  sim::CostModel cost_model(1.8);
  std::vector<StaticEntry> totals = StaticConfigTotals(covid, setup);
  double denom = BestEntry(totals).total_quality;
  double max_cost = 0.0;
  for (const StaticEntry& e : totals) {
    max_cost = std::max(max_cost, e.cost_core_s_per_video_s);
  }

  sim::ClusterSpec cluster;
  cluster.cores = 60;
  auto model = FitOffline(covid, setup, cluster, cost_model,
                          /*train_forecaster=*/false);
  if (!model.ok()) {
    std::printf("offline failed: %s\n", model.status().ToString().c_str());
    return 1;
  }

  TablePrinter table("Quality vs normalized computation budget");
  table.SetHeader(
      {"budget", "Static", "Idealized", "Practical (Skyscraper)", "Optimum"});

  for (double frac : {0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
    double budget_rate = frac * max_cost;

    double static_q = 0.0;
    for (const StaticEntry& e : totals) {
      if (e.cost_core_s_per_video_s <= budget_rate + 1e-9) {
        static_q = std::max(static_q, e.total_quality);
      }
    }

    auto idealized = baselines::RunIdealizedSystem(
        covid, model->profiles, setup.segment_seconds, setup.test_duration,
        setup.test_start, budget_rate * setup.test_duration, 2.0);

    core::EngineOptions run;
    run.duration = setup.test_duration;
    run.plan_interval = setup.plan_interval;
    run.enable_cloud = false;
    run.buffer_bytes = 1ull << 40;  // pure computation budget (App. B.1)
    run.work_budget_override = budget_rate;
    core::IngestionEngine engine(&covid, &*model, cluster, &cost_model, run);
    auto practical = engine.Run(setup.test_start);

    auto optimum = baselines::RunOptimumBaseline(
        covid, model->profiles, setup.segment_seconds, setup.test_duration,
        setup.test_start, budget_rate * setup.test_duration);

    table.AddRow(
        {TablePrinter::Fmt(frac, 2),
         static_q > 0 ? TablePrinter::Pct(static_q / denom, 0) : "-",
         idealized.ok()
             ? TablePrinter::Pct(idealized->total_quality / denom, 0)
             : "-",
         practical.ok()
             ? TablePrinter::Pct(practical->total_quality / denom, 0)
             : "-",
         optimum.ok() ? TablePrinter::Pct(optimum->total_quality / denom, 0)
                      : "-"});
  }
  table.Print(std::cout);
  std::printf("\n(paper: the practical system almost reaches the optimum; "
              "the idealized per-slot forecast misallocates its budget "
              "because exact event timing is unpredictable)\n");
  return 0;
}
