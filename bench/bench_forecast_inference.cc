// Forecast-inference latency: the SIMD micro-kernels (ml/kernels.h) and the
// f32 reduced-precision path against the scalar/f64 baselines, at the real
// plan-boundary geometry. Three questions, answered with numbers:
//   (1) single-forecast latency (the per-plan-boundary cost every stream
//       pays): p50/p99 over many calls, for {scalar, vector} x {f64, f32};
//   (2) batched GEMM throughput (the kernel behind batched inference and
//       every training step): vector tier vs the scalar oracle;
//   (3) does the f32 knob stay within the documented objective tolerance on
//       all four tracked workloads? (short f64-vs-f32 ingest per workload,
//       relative mean-quality drift recorded and gated at 1%.)
// Results land in BENCH_forecast_inference.json with the dispatched kernel
// tier and thread count, so perf lines from different hosts stay
// comparable. Speedup gates apply only where a vector tier exists: on a
// scalar-only host they are recorded as "skipped" with the reason, and the
// bench still runs the parity and tolerance checks.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "core/forecaster.h"
#include "ml/kernels.h"
#include "ml/matrix.h"
#include "util/rng.h"
#include "util/table.h"
#include "workloads/covid.h"
#include "workloads/ev_counting.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"

namespace {

using namespace sky;

/// Same synthetic diurnal category sequence the training bench uses.
std::vector<size_t> SyntheticCategories(double segment_seconds, double days,
                                        size_t num_categories, uint64_t seed) {
  Rng rng(seed);
  size_t n = static_cast<size_t>(Days(days) / segment_seconds);
  std::vector<size_t> seq(n, 0);
  for (size_t i = 0; i < n; ++i) {
    double hour = HourOfDay(static_cast<double>(i) * segment_seconds);
    seq[i] = (hour > 8 && hour < 20) ? 1 : 0;
    if (rng.Bernoulli(0.05)) seq[i] = num_categories - 1;
  }
  return seq;
}

struct LatencyStats {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
};

/// Per-call latency distribution of `fn` over `reps` calls. Each sample
/// times a small inner batch to keep clock granularity out of the numbers.
template <typename Fn>
LatencyStats MeasureLatency(size_t reps, Fn&& fn) {
  constexpr size_t kInner = 16;
  std::vector<double> samples(reps);
  for (size_t r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kInner; ++i) fn();
    auto stop = std::chrono::steady_clock::now();
    samples[r] =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(kInner);
  }
  std::sort(samples.begin(), samples.end());
  LatencyStats out;
  out.p50_ns = samples[reps / 2];
  out.p99_ns = samples[(reps * 99) / 100];
  return out;
}

/// Wall seconds for `reps` runs of a square f64 GEMM at the active backend.
double GemmSeconds(size_t n, size_t reps) {
  Rng rng(77);
  ml::Matrix a(n, n), b(n, n), out;
  for (double& v : a.data()) v = rng.Normal(0.0, 1.0);
  for (double& v : b.data()) v = rng.Normal(0.0, 1.0);
  ml::MatMulInto(a, b, &out);  // warm (and size out) before timing
  bench::WallTimer timer;
  for (size_t r = 0; r < reps; ++r) ml::MatMulInto(a, b, &out);
  return timer.Seconds();
}

/// One short f64-vs-f32 ingest comparison; returns relative quality drift.
double WorkloadDrift(const core::Workload& workload,
                     bench::ExperimentSetup setup, bench::BenchJson* json,
                     const std::string& tag) {
  sim::ClusterSpec cluster;
  cluster.cores = 8;
  sim::CostModel cost_model(1.8);
  auto model = bench::FitOffline(workload, setup, cluster, cost_model);
  if (!model.ok()) {
    std::printf("%s offline failed: %s\n", tag.c_str(),
                model.status().ToString().c_str());
    return -1.0;
  }
  double quality[2] = {0.0, 0.0};
  for (int pass = 0; pass < 2; ++pass) {
    core::EngineOptions run;
    run.duration = Days(2);  // two plan boundaries: enough to exercise the
                             // forecast->plan->ingest loop, cheap enough to
                             // run all four workloads
    run.plan_interval = setup.plan_interval;
    run.cloud_budget_usd_per_interval = 2.0;
    run.forecast_precision =
        pass == 0 ? ml::Precision::kF64 : ml::Precision::kF32;
    core::IngestionEngine engine(&workload, &*model, cluster, &cost_model,
                                 run);
    auto result = engine.Run(setup.test_start);
    if (!result.ok()) {
      std::printf("%s ingest failed: %s\n", tag.c_str(),
                  result.status().ToString().c_str());
      return -1.0;
    }
    quality[pass] = result->mean_quality;
  }
  double drift = quality[0] > 0.0
                     ? std::abs(quality[1] - quality[0]) / quality[0]
                     : 0.0;
  json->Set(tag + "_mean_quality_f64", quality[0]);
  json->Set(tag + "_mean_quality_f32", quality[1]);
  json->Set(tag + "_rel_quality_drift", drift);
  std::printf("%-12s mean quality f64 %.4f | f32 %.4f | rel drift %.2e\n",
              tag.c_str(), quality[0], quality[1], drift);
  return drift;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Forecast inference: SIMD kernels + f32 path ===\n");

  BenchJson json("forecast_inference");
  ml::KernelBackend best = ml::BestSupportedBackend();
  bool has_vector = best != ml::KernelBackend::kScalar;
  json.Set("kernel_backend", ml::KernelBackendName(best));
  json.Set("hardware_threads",
           static_cast<double>(std::thread::hardware_concurrency()));
  json.Set("threads", static_cast<double>(BenchThreads(argc, argv)));

  // --- Part 1: single-forecast latency at the covid geometry -------------
  constexpr size_t kNumCategories = 3;
  constexpr double kSegmentSeconds = 4.0;
  core::ForecasterOptions fopts;  // 2-day span, 8 splits -> 24-wide input
  fopts.train_options.epochs = 30;
  fopts.train_options.batch_size = 64;
  std::vector<size_t> seq =
      SyntheticCategories(kSegmentSeconds, 16.0, kNumCategories, 321);
  auto trained =
      core::Forecaster::Train(seq, kSegmentSeconds, kNumCategories, fopts);
  if (!trained.ok()) {
    std::printf("training failed: %s\n", trained.status().ToString().c_str());
    return 1;
  }
  core::Forecaster forecaster = std::move(*trained);
  std::vector<double> features;
  forecaster.FeaturesFromHistoryInto(seq, kSegmentSeconds, &features);
  std::vector<double> out;

  constexpr size_t kLatencyReps = 4000;
  TablePrinter lat_table("Single boundary forecast (24 -> 16 -> 8 -> 3 net)");
  lat_table.SetHeader({"backend", "precision", "p50", "p99"});
  struct Cell {
    std::string backend;
    ml::Precision precision;
    LatencyStats stats;
  };
  std::vector<Cell> cells;
  std::vector<ml::KernelBackend> backends = {ml::KernelBackend::kScalar};
  if (has_vector) backends.push_back(best);
  for (ml::KernelBackend backend : backends) {
    Status forced = ml::SetKernelBackend(backend);
    if (!forced.ok()) {
      std::printf("force %s failed: %s\n",
                  ml::KernelBackendName(backend).c_str(),
                  forced.ToString().c_str());
      return 1;
    }
    for (ml::Precision precision :
         {ml::Precision::kF64, ml::Precision::kF32}) {
      // Warm scratches and the f32 mirror outside the timed region.
      forecaster.ForecastInto(features, precision, &out);
      LatencyStats stats = MeasureLatency(kLatencyReps, [&] {
        forecaster.ForecastInto(features, precision, &out);
      });
      std::string backend_name = ml::KernelBackendName(backend);
      std::string prec_name = precision == ml::Precision::kF64 ? "f64" : "f32";
      cells.push_back({backend_name, precision, stats});
      json.Set("forecast_" + backend_name + "_" + prec_name + "_p50_ns",
               stats.p50_ns);
      json.Set("forecast_" + backend_name + "_" + prec_name + "_p99_ns",
               stats.p99_ns);
      lat_table.AddRow({backend_name, prec_name,
                        TablePrinter::Fmt(stats.p50_ns, 0) + " ns",
                        TablePrinter::Fmt(stats.p99_ns, 0) + " ns"});
    }
  }
  lat_table.Print(std::cout);

  // --- Part 2: batched GEMM, vector tier vs scalar oracle ---------------
  constexpr size_t kGemmN = 192;  // training-scale operand, cache-resident
  constexpr size_t kGemmReps = 40;
  Status to_scalar = ml::SetKernelBackend(ml::KernelBackend::kScalar);
  if (!to_scalar.ok()) return 1;
  double scalar_gemm_s = GemmSeconds(kGemmN, kGemmReps);
  double vector_gemm_s = scalar_gemm_s;
  if (has_vector) {
    if (!ml::SetKernelBackend(best).ok()) return 1;
    vector_gemm_s = GemmSeconds(kGemmN, kGemmReps);
  }
  double gemm_speedup = vector_gemm_s > 0 ? scalar_gemm_s / vector_gemm_s : 0;
  json.Set("gemm_n", static_cast<double>(kGemmN));
  json.Set("gemm_scalar_s", scalar_gemm_s);
  json.Set("gemm_vector_s", vector_gemm_s);
  json.Set("gemm_speedup", gemm_speedup);
  std::printf("\n%zu^3 f64 GEMM x%zu: scalar %.3f s, %s %.3f s (%.2fx)\n",
              kGemmN, kGemmReps, scalar_gemm_s,
              ml::KernelBackendName(best).c_str(), vector_gemm_s,
              gemm_speedup);

  // f32-vs-f64 single forecast at the dispatched (best) tier: the latency
  // win the reduced-precision knob buys on this host.
  double f64_p50 = 0.0, f32_p50 = 0.0;
  for (const Cell& c : cells) {
    if (c.backend != ml::KernelBackendName(best)) continue;
    if (c.precision == ml::Precision::kF64) f64_p50 = c.stats.p50_ns;
    if (c.precision == ml::Precision::kF32) f32_p50 = c.stats.p50_ns;
  }
  double f32_speedup = f32_p50 > 0 ? f64_p50 / f32_p50 : 0.0;
  json.Set("f32_forecast_speedup", f32_speedup);
  std::printf("f32 vs f64 boundary forecast at %s tier: %.2fx\n",
              ml::KernelBackendName(best).c_str(), f32_speedup);

  // --- Part 3: f32 objective drift on all four tracked workloads --------
  if (!ml::SetKernelBackend(best).ok()) return 1;  // dispatch as deployed
  std::printf("\nf32-vs-f64 ingest drift (2 days, 8 vCPUs):\n");
  double max_drift = 0.0;
  bool workloads_ok = true;
  {
    workloads::CovidWorkload covid;
    double d = WorkloadDrift(covid, CovidSetup(), &json, "covid");
    workloads_ok = workloads_ok && d >= 0.0;
    max_drift = std::max(max_drift, d);
  }
  {
    workloads::MotWorkload mot;
    double d = WorkloadDrift(mot, MotSetup(), &json, "mot");
    workloads_ok = workloads_ok && d >= 0.0;
    max_drift = std::max(max_drift, d);
  }
  {
    workloads::MoseiWorkload mosei(workloads::MoseiWorkload::SpikeKind::kHigh);
    double d = WorkloadDrift(mosei, MoseiSetup(), &json, "mosei_high");
    workloads_ok = workloads_ok && d >= 0.0;
    max_drift = std::max(max_drift, d);
  }
  {
    workloads::EvCountingWorkload ev;
    double d = WorkloadDrift(ev, EvSetup(), &json, "ev");
    workloads_ok = workloads_ok && d >= 0.0;
    max_drift = std::max(max_drift, d);
  }
  json.Set("max_rel_quality_drift", max_drift);

  // --- Gates -------------------------------------------------------------
  // Speedup gates only bind where a vector tier exists; the scalar-only
  // fallback records why it skipped so a regression is distinguishable from
  // a host without SIMD.
  int failures = 0;
  if (has_vector) {
    json.Set("speedup_gates", "enforced");
    if (gemm_speedup < 2.0) {
      std::printf("FAILED: batched GEMM speedup %.2fx below 2x\n",
                  gemm_speedup);
      ++failures;
    }
    if (f32_speedup < 1.5) {
      std::printf("FAILED: f32 forecast speedup %.2fx below 1.5x\n",
                  f32_speedup);
      ++failures;
    }
  } else {
    json.Set("speedup_gates", "skipped: host supports scalar tier only");
    std::printf("speedup gates skipped: no vector tier on this host\n");
  }
  if (!workloads_ok) {
    std::printf("FAILED: a workload comparison did not run\n");
    ++failures;
  } else if (max_drift > 0.01) {
    std::printf("FAILED: f32 quality drift %.3g above the 1%% tolerance\n",
                max_drift);
    ++failures;
  }

  std::string path = json.Write();
  if (!path.empty()) std::printf("metrics written to %s\n", path.c_str());
  return failures == 0 ? 0 : 1;
}
