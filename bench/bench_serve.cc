// `sky serve` overheads. Three headline metrics land in BENCH_serve.json:
//  - admission latency: OpenSession round-trip against an idle (held)
//    server — the full frame/queue/planner-feasibility/AddStream path;
//  - steady-state overhead: wall time of an 8-stream fleet stepped through
//    the serve stack (sessions opened, results fetched over the socket)
//    versus the identical in-process StreamSet Step() loop, median of 3.
//    GATED: the serve layer may cost at most 10% on top of in-process.
//  - recovery: time to rebuild a 64-stream fleet from its boundary
//    checkpoint (StreamSet::RecoverFromCheckpoint), tracked ungated.
//
// Served results are also checked bitwise against the in-process run — an
// overhead number for a wrong answer would be meaningless.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/skyscraper.h"
#include "api/workload_registry.h"
#include "bench_common.h"
#include "core/multi_stream.h"
#include "serve/client.h"
#include "serve/server.h"
#include "util/stats.h"

namespace {

constexpr char kModelPath[] = "bench_serve_model.bin";

sky::api::Resources BenchResources() {
  sky::api::Resources r;
  r.cores = 4;
  r.cloud_budget_usd_per_interval = 1.0;
  return r;
}

sky::serve::SessionSpec SpecForSeed(uint64_t content_seed,
                                    double duration_days) {
  sky::serve::SessionSpec spec;
  spec.workload = "ev";
  spec.content_seed = content_seed;
  spec.start_days = 3.0;
  spec.duration_days = duration_days;
  spec.plan_interval_days = 0.125;  // 3 h lockstep boundaries
  spec.engine_seed = 71;
  return spec;
}

/// Owns the workload + facade a mirrored job borrows (the in-process
/// equivalent of the server's StreamTenant).
struct Tenant {
  std::unique_ptr<sky::core::Workload> workload;
  std::unique_ptr<sky::api::Skyscraper> facade;
};

/// The exact job Server::BuildJob derives from `spec`.
sky::Result<sky::core::StreamEngineJob> MirrorJob(
    const sky::serve::SessionSpec& spec, Tenant* tenant) {
  tenant->workload =
      sky::api::MakeWorkloadByName(spec.workload, spec.content_seed);
  tenant->facade =
      std::make_unique<sky::api::Skyscraper>(tenant->workload.get());
  tenant->facade->SetResources(BenchResources());
  SKY_RETURN_NOT_OK(
      tenant->facade->LoadModel(kModelPath, tenant->workload->name()));
  sky::core::EngineOptions opts;
  opts.duration = sky::Days(spec.duration_days);
  opts.plan_interval = sky::Days(spec.plan_interval_days);
  opts.seed = spec.engine_seed;
  opts.record_trace = spec.record_trace;
  opts.trace_resolution_s = spec.trace_resolution_s;
  opts.work_budget_override = spec.work_budget_override;
  return tenant->facade->MakeStreamJob(sky::Days(spec.start_days), opts);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sky;
  using namespace sky::bench;
  (void)argc;
  (void)argv;
  std::printf("=== sky serve overheads ===\n");

  // Train-once: the model every served session loads.
  auto base_workload = api::MakeWorkloadByName("ev");
  api::Skyscraper trainer(base_workload.get());
  trainer.SetResources(BenchResources());
  core::OfflineOptions offline;
  offline.segment_seconds = 4.0;
  offline.train_horizon = Days(3);
  offline.num_categories = 3;
  offline.train_forecaster = false;
  WallTimer offline_timer;
  if (Status st = trainer.Fit(offline); !st.ok()) {
    std::printf("offline failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = trainer.SaveModel(kModelPath, base_workload->name());
      !st.ok()) {
    std::printf("save model failed: %s\n", st.ToString().c_str());
    return 1;
  }
  double offline_s = offline_timer.Seconds();

  bool gates_ok = true;
  auto gate = [&gates_ok](bool ok, const char* what) {
    if (!ok) {
      std::printf("GATE FAILED: %s\n", what);
      gates_ok = false;
    }
  };

  serve::ServerOptions base_opts;
  base_opts.model_path = kModelPath;
  base_opts.workload = "ev";
  base_opts.resources = BenchResources();

  // --- Admission latency: opens against a held clock ----------------------
  // start_after far above the open count keeps the fleet at boundary 0, so
  // every round-trip measures the admission path itself, not a wait for
  // the next boundary.
  constexpr size_t kAdmissions = 16;
  std::vector<double> admission_ms;
  {
    serve::ServerOptions opts = base_opts;
    opts.start_after_sessions = 1u << 20;
    auto server = serve::Server::Start(opts);
    if (!server.ok()) {
      std::printf("server start failed: %s\n",
                  server.status().ToString().c_str());
      return 1;
    }
    auto client = serve::Client::Connect((*server)->port());
    if (!client.ok()) {
      std::printf("connect failed: %s\n", client.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < kAdmissions; ++i) {
      WallTimer t;
      auto admitted = client->OpenSession(SpecForSeed(100 + i, 0.25));
      gate(admitted.ok(), "admission succeeds on an uncapped server");
      admission_ms.push_back(t.Seconds() * 1e3);
    }
    (void)client->Drain();
    (void)(*server)->Wait();
  }
  double admission_p50 = Percentile(admission_ms, 50.0);
  double admission_p99 = Percentile(admission_ms, 99.0);
  std::printf("admission latency over %zu opens: p50 %.3f ms, p99 %.3f ms\n",
              kAdmissions, admission_p50, admission_p99);

  // --- Steady-state overhead: serve stack vs in-process, median of 3 ------
  // Sessions are opened while the server holds the clock and the timer
  // starts when the last open (which releases the hold) returns, so the
  // measured window is the stepping loop: compute + frame/queue overhead,
  // not connection or model-load setup. The in-process mirror times the
  // same fleet's Step() loop.
  // 2 simulated days keeps each measured window long enough (hundreds of
  // ms) that scheduler noise does not dominate the ratio.
  constexpr size_t kStreams = 8;
  constexpr double kDurationDays = 2.0;
  constexpr int kReps = 3;
  std::vector<double> serve_walls, inproc_walls, ratios;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<core::EngineResult> served(kStreams);
    double serve_wall = 0.0;
    {
      serve::ServerOptions opts = base_opts;
      opts.start_after_sessions = kStreams;
      auto server = serve::Server::Start(opts);
      if (!server.ok()) {
        std::printf("server start failed: %s\n",
                    server.status().ToString().c_str());
        return 1;
      }
      auto client = serve::Client::Connect((*server)->port());
      if (!client.ok()) {
        std::printf("connect failed: %s\n",
                    client.status().ToString().c_str());
        return 1;
      }
      uint64_t ids[kStreams];
      for (size_t i = 0; i < kStreams; ++i) {
        // Sequential opens from one client: slot i gets seed 200 + i.
        auto admitted = client->OpenSession(SpecForSeed(200 + i, kDurationDays));
        if (!admitted.ok()) {
          std::printf("open failed: %s\n",
                      admitted.status().ToString().c_str());
          return 1;
        }
        ids[i] = admitted->first;
      }
      WallTimer t;  // the last open released the hold: stepping starts now
      for (size_t i = 0; i < kStreams; ++i) {
        auto result = client->FetchResult(ids[i]);
        if (!result.ok()) {
          std::printf("fetch failed: %s\n",
                      result.status().ToString().c_str());
          return 1;
        }
        served[i] = std::move(*result);
      }
      serve_wall = t.Seconds();
      (void)client->Drain();
      (void)(*server)->Wait();
    }

    std::vector<Tenant> tenants(kStreams);
    std::vector<core::StreamEngineJob> jobs;
    for (size_t i = 0; i < kStreams; ++i) {
      auto job = MirrorJob(SpecForSeed(200 + i, kDurationDays), &tenants[i]);
      if (!job.ok()) {
        std::printf("mirror job failed: %s\n",
                    job.status().ToString().c_str());
        return 1;
      }
      jobs.push_back(*job);
    }
    core::StreamSetOptions set_opts;
    set_opts.planning = core::MultiStreamPlanning::kJoint;
    auto fleet = core::StreamSet::Create(std::move(jobs), set_opts);
    if (!fleet.ok()) {
      std::printf("fleet create failed: %s\n",
                  fleet.status().ToString().c_str());
      return 1;
    }
    WallTimer t;
    while (!fleet->Done()) {
      if (Status st = fleet->Step(); !st.ok()) {
        std::printf("step failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    double inproc_wall = t.Seconds();

    auto results = fleet->Results();
    for (size_t i = 0; i < kStreams; ++i) {
      gate(results[i].ok() &&
               core::EngineResultsIdentical(*results[i], served[i]),
           "served results bitwise match the in-process fleet");
    }
    serve_walls.push_back(serve_wall);
    inproc_walls.push_back(inproc_wall);
    ratios.push_back(serve_wall / inproc_wall);
    std::printf("rep %d: serve %.3f s, in-process %.3f s, ratio %.3f\n",
                rep, serve_wall, inproc_wall, serve_wall / inproc_wall);
  }
  double ratio_median = Percentile(ratios, 50.0);
  std::printf("steady-state overhead ratio (median of %d): %.3f "
              "(gate: <= 1.10)\n",
              kReps, ratio_median);
  gate(ratio_median <= 1.10,
       "serve steady-state overhead within 10% of in-process");

  // --- Recovery: 64-stream fleet from a boundary checkpoint ---------------
  constexpr size_t kRecoverStreams = 64;
  const std::string ckpt_path = "bench_serve_ckpt.bin";
  double recover_s = 0.0;
  {
    auto model = trainer.model();
    std::vector<Tenant> tenants(kRecoverStreams);
    auto make_jobs = [&]() {
      std::vector<core::StreamEngineJob> jobs;
      for (size_t i = 0; i < kRecoverStreams; ++i) {
        auto job = MirrorJob(SpecForSeed(400 + i, 0.25), &tenants[i]);
        if (!job.ok()) {
          std::printf("mirror job failed: %s\n",
                      job.status().ToString().c_str());
          std::exit(1);
        }
        jobs.push_back(*job);
      }
      return jobs;
    };
    core::StreamSetOptions set_opts;
    set_opts.planning = core::MultiStreamPlanning::kJoint;
    auto fleet = core::StreamSet::Create(make_jobs(), set_opts);
    if (!fleet.ok() || !fleet->RunUntilElapsed(Hours(3)).ok() ||
        !fleet->SaveCheckpoint(ckpt_path).ok()) {
      std::printf("could not stage the 64-stream checkpoint\n");
      return 1;
    }
    WallTimer t;
    auto recovered =
        core::StreamSet::RecoverFromCheckpoint(make_jobs(), ckpt_path,
                                               set_opts);
    recover_s = t.Seconds();
    gate(recovered.ok(), "64-stream checkpoint recovers");
    std::printf("recover %zu streams from boundary checkpoint: %.3f s\n",
                kRecoverStreams, recover_s);
    std::remove(ckpt_path.c_str());
  }
  std::remove(kModelPath);

  BenchJson json("serve");
  json.Set("offline_wall_s", offline_s);
  json.Set("admission_opens", static_cast<double>(kAdmissions));
  json.Set("admission_latency_p50_ms", admission_p50);
  json.Set("admission_latency_p99_ms", admission_p99);
  json.Set("steady_streams", static_cast<double>(kStreams));
  json.Set("steady_duration_days", kDurationDays);
  json.Set("serve_wall_s_median", Percentile(serve_walls, 50.0));
  json.Set("inproc_wall_s_median", Percentile(inproc_walls, 50.0));
  json.Set("serve_overhead_ratio_median", ratio_median);
  json.Set("overhead_gate", ratio_median <= 1.10 ? "pass" : "fail");
  json.Set("recover_streams", static_cast<double>(kRecoverStreams));
  json.Set("recover_64stream_s", recover_s);
  std::string path = json.Write();
  if (!path.empty()) std::printf("metrics written to %s\n", path.c_str());
  return gates_ok ? 0 : 1;
}
