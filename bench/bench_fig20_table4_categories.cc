// Figure 20 + Table 4 (Appendix I.1): sensitivity to the number of content
// categories (the k of KMeans). End-to-end quality across server sizes and
// the knob switcher's classification accuracy per category count.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Figure 20 / Table 4: number of content categories ===\n");

  workloads::CovidWorkload covid;
  ExperimentSetup setup = CovidSetup();
  setup.test_duration = Days(2);
  sim::CostModel cost_model(1.8);
  std::vector<StaticEntry> totals = StaticConfigTotals(covid, setup);
  double denom = BestEntry(totals).total_quality;

  TablePrinter fig("COVID quality by category count (Fig. 20)");
  fig.SetHeader({"vCPUs", "1 cat", "2 cats", "3 cats", "4 cats", "8 cats"});
  TablePrinter tab("Switcher accuracy by category count (Table 4)");
  tab.SetHeader({"categories", "switcher accuracy"});

  const std::vector<size_t> kCategoryCounts = {1, 2, 3, 4, 8};
  std::vector<double> accuracy(kCategoryCounts.size(), 0.0);

  for (int vcpus : {4, 8, 16, 32}) {
    sim::ClusterSpec cluster;
    cluster.cores = vcpus;
    std::vector<std::string> row = {std::to_string(vcpus)};
    for (size_t ci = 0; ci < kCategoryCounts.size(); ++ci) {
      core::OfflineOptions offline;
      offline.segment_seconds = setup.segment_seconds;
      offline.train_horizon = setup.train_horizon;
      offline.num_categories = kCategoryCounts[ci];
      offline.train_forecaster = false;
      auto model =
          core::RunOfflinePhase(covid, cluster, cost_model, offline);
      if (!model.ok()) {
        row.push_back("-");
        continue;
      }
      core::EngineOptions run;
      run.duration = setup.test_duration;
      run.plan_interval = setup.plan_interval;
      run.cloud_budget_usd_per_interval = 3.0;
      core::IngestionEngine engine(&covid, &*model, cluster, &cost_model,
                                   run);
      auto result = engine.Run(setup.test_start);
      if (!result.ok()) {
        row.push_back("-");
        continue;
      }
      row.push_back(TablePrinter::Pct(result->total_quality / denom, 0));
      if (vcpus == 8) accuracy[ci] = 1.0 - result->MisclassificationRate();
    }
    fig.AddRow(std::move(row));
  }
  for (size_t ci = 0; ci < kCategoryCounts.size(); ++ci) {
    tab.AddRow({std::to_string(kCategoryCounts[ci]),
                TablePrinter::Pct(accuracy[ci])});
  }
  fig.Print(std::cout);
  tab.Print(std::cout);
  std::printf("\n(paper: insensitive for >= 3 categories; accuracy drops "
              "mildly as categories increase — 100%%/98.8%%/97.9%%/97.2%%/"
              "95.9%% for 1/2/3/4/8)\n");
  return 0;
}
