#ifndef SKYSCRAPER_BENCH_BENCH_COMMON_H_
#define SKYSCRAPER_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/offline.h"
#include "core/workload.h"
#include "sim/cluster_sim.h"
#include "sim/cost_model.h"
#include "util/sim_time.h"

namespace sky::bench {

/// Wall-clock stopwatch for bench phases.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable bench output: collects wall times and key metrics and
/// writes them as BENCH_<name>.json in the working directory, one flat JSON
/// object, so the perf trajectory can be tracked across PRs by tooling
/// instead of by parsing stdout tables.
class BenchJson {
 public:
  explicit BenchJson(std::string name);

  void Set(const std::string& key, double value);
  void Set(const std::string& key, const std::string& value);

  /// Writes BENCH_<name>.json and returns the file name ("" on failure).
  std::string Write() const;

 private:
  std::string name_;
  /// Key -> pre-rendered JSON value, in insertion order.
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Shared experiment geometry. The paper ingests 8 unsimulated days for
/// COVID/MOT and 2 days for MOSEI after a ~2-week offline phase; the bench
/// harness uses the same layout on the synthetic content horizon. Segment
/// length is the knob-switcher period (4 s keeps full sweeps fast; the
/// Fig. 21 bench varies it).
struct ExperimentSetup {
  double segment_seconds = 4.0;
  SimTime train_horizon = Days(16);
  SimTime test_start = Days(16);
  SimTime test_duration = Days(8);
  size_t num_categories = 4;
  SimTime plan_interval = Days(2);
};

ExperimentSetup CovidSetup();
ExperimentSetup MotSetup();
ExperimentSetup MoseiSetup();
ExperimentSetup EvSetup();

/// Worker-pool size for the multi-threaded benches: `--threads N` (or
/// `--threads=N`) on the command line wins, then the SKY_BENCH_THREADS
/// environment variable, then the hardware concurrency. Benches record the
/// value they actually used in their BENCH_*.json, so perf numbers from
/// different machines stay comparable.
size_t BenchThreads(int argc, char** argv);

/// Runs the offline phase with the setup's geometry. A non-null `pool`
/// backs the offline steps' fan-out (safe to share with an outer
/// ParallelFor over workloads); with a null pool, `num_threads` is passed
/// through to RunOfflinePhase (0 = hardware concurrency, 1 = serial).
Result<core::OfflineModel> FitOffline(const core::Workload& workload,
                                      const ExperimentSetup& setup,
                                      const sim::ClusterSpec& cluster,
                                      const sim::CostModel& cost_model,
                                      bool train_forecaster = true,
                                      dag::ThreadPool* pool = nullptr,
                                      size_t num_threads = 0);

/// Total monetary cost of a deployment per the Appendix L model: VM rent
/// divided by the cloud/on-prem ratio plus cloud credits.
double DeploymentCostUsd(const sim::ServerType& server,
                         const sim::CostModel& cost_model, SimTime duration,
                         double cloud_usd);

/// Best static total quality on the biggest catalog server — the
/// denominator all "quality (rel. to best)" numbers are normalized by.
Result<double> BestStaticQualityDenominator(const core::Workload& workload,
                                            const ExperimentSetup& setup,
                                            const sim::CostModel& cost_model);

/// One static configuration's totals over the test window.
struct StaticEntry {
  core::KnobConfig config;
  double total_quality = 0.0;
  double cost_core_s_per_video_s = 0.0;
};

/// Evaluates every configuration of the knob space once over the test
/// window (quality totals are server-independent; per-server sweeps reuse
/// them and only re-check real-time feasibility).
std::vector<StaticEntry> StaticConfigTotals(const core::Workload& workload,
                                            const ExperimentSetup& setup);

/// The most qualitative entry (run statically with unlimited hardware):
/// the normalization denominator for "quality (rel. to best)".
const StaticEntry& BestEntry(const std::vector<StaticEntry>& entries);

/// Best static deployment on `cluster`: highest-quality entry whose
/// all-on-premise makespan fits one segment. Fails if none is real-time.
Result<StaticEntry> BestStaticOnServer(const core::Workload& workload,
                                       const ExperimentSetup& setup,
                                       const std::vector<StaticEntry>& totals,
                                       const sim::ClusterSpec& cluster,
                                       const sim::CostModel& cost_model);

}  // namespace sky::bench

#endif  // SKYSCRAPER_BENCH_BENCH_COMMON_H_
