// Figure 15: knob-switcher content misclassification. Compares the standard
// switcher (Eq. 5, previous-segment quality) against a "No Type-B errors"
// baseline (classifies with the *current* segment's quality, isolating the
// one-dimensional-classification Type-A errors) and a ground-truth baseline,
// across server sizes. Also reports the error-type split of §5.6.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"
#include "workloads/mot.h"

namespace sky::bench {
namespace {

void RunWorkload(const core::Workload& workload, ExperimentSetup setup,
                 double cloud_budget) {
  setup.test_duration = Days(2);
  sim::CostModel cost_model(1.8);
  std::vector<StaticEntry> totals = StaticConfigTotals(workload, setup);
  double denom = BestEntry(totals).total_quality;

  TablePrinter table(std::string(workload.name()) +
                     " — switcher classification baselines");
  table.SetHeader({"vCPUs", "Standard", "No Type-B", "Ground truth",
                   "miscls.", "Type-A", "Type-B"});

  for (int vcpus : {4, 8, 16, 32}) {
    sim::ClusterSpec cluster;
    cluster.cores = vcpus;
    auto model = FitOffline(workload, setup, cluster, cost_model,
                            /*train_forecaster=*/false);
    if (!model.ok()) continue;

    double quality[3] = {0, 0, 0};
    double miscls = 0, type_a = 0, type_b = 0;
    for (int mode = 0; mode < 3; ++mode) {
      core::EngineOptions run;
      run.duration = setup.test_duration;
      run.plan_interval = setup.plan_interval;
      run.cloud_budget_usd_per_interval = cloud_budget;
      run.eliminate_type_b_errors = mode == 1;
      run.use_ground_truth_categories = mode == 2;
      core::IngestionEngine engine(&workload, &*model, cluster, &cost_model,
                                   run);
      auto result = engine.Run(setup.test_start);
      if (!result.ok()) continue;
      quality[mode] = result->total_quality / denom;
      if (mode == 0) {
        double n = static_cast<double>(result->segments);
        miscls = result->misclassified / n;
        type_a = result->type_a_errors / n;
        type_b = result->type_b_errors / n;
      }
    }
    table.AddRow({std::to_string(vcpus), TablePrinter::Pct(quality[0], 0),
                  TablePrinter::Pct(quality[1], 0),
                  TablePrinter::Pct(quality[2], 0),
                  TablePrinter::Pct(miscls), TablePrinter::Pct(type_a),
                  TablePrinter::Pct(type_b)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace sky::bench

int main() {
  using namespace sky::bench;
  std::printf("=== Figure 15: switcher misclassification impact ===\n");
  {
    sky::workloads::CovidWorkload covid;
    RunWorkload(covid, CovidSetup(), 3.0);
  }
  {
    sky::workloads::MotWorkload mot;
    RunWorkload(mot, MotSetup(), 2.0);
  }
  std::printf("\n(paper: Standard misclassifies 2.1%% on COVID / 6.6%% on "
              "MOT; No-Type-B nearly matches ground truth — the timing "
              "mismatch drives the losses)\n");
  return 0;
}
