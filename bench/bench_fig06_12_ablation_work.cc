// Figures 6, 8, 10, 12: work-quality ablation. For each workload, compares
// the amount of work (core-seconds) that Static, Skyscraper, and the
// ground-truth Optimum (greedy knapsack oracle, §5.4 2c) need for a given
// quality. Work is normalized to always running the most expensive
// configuration; quality to the most qualitative static configuration.

#include <iostream>
#include <memory>

#include "baselines/optimum.h"
#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"

namespace sky::bench {
namespace {

void RunWorkload(const core::Workload& workload, ExperimentSetup setup) {
  setup.test_duration = Days(2);
  std::vector<StaticEntry> totals = StaticConfigTotals(workload, setup);
  double denom = BestEntry(totals).total_quality;
  double max_cost = 0.0;
  for (const StaticEntry& e : totals) {
    max_cost = std::max(max_cost, e.cost_core_s_per_video_s);
  }

  sim::CostModel cost_model(1.8);
  // A large cluster + large buffer so realization never bottlenecks: these
  // curves isolate the *work* dimension (paper: "independent of whether the
  // computation is buffered or executed on the cloud or on premises").
  sim::ClusterSpec cluster;
  cluster.cores = 60;
  auto model = FitOffline(workload, setup, cluster, cost_model,
                          /*train_forecaster=*/false);
  if (!model.ok()) {
    std::printf("offline failed: %s\n", model.status().ToString().c_str());
    return;
  }

  TablePrinter table(std::string(workload.name()) +
                     " — quality vs normalized work (core*s)");
  table.SetHeader({"norm. work budget", "Static", "Skyscraper", "Optimum"});

  for (double frac : {0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
    double budget_rate = frac * max_cost;  // core-s per video-second

    // Static: best configuration whose cost fits the budget rate.
    double static_q = 0.0;
    for (const StaticEntry& e : totals) {
      if (e.cost_core_s_per_video_s <= budget_rate + 1e-9) {
        static_q = std::max(static_q, e.total_quality);
      }
    }

    // Skyscraper under a pure work budget (§2.2 abstraction): a huge buffer
    // removes the realization constraint, matching the paper's "independent
    // of whether the computation is buffered or executed on the cloud".
    core::EngineOptions run;
    run.duration = setup.test_duration;
    run.plan_interval = setup.plan_interval;
    run.enable_cloud = false;
    run.buffer_bytes = 1ull << 40;  // 1 TB
    run.work_budget_override = budget_rate;
    core::IngestionEngine engine(&workload, &*model, cluster, &cost_model,
                                 run);
    auto sky_result = engine.Run(setup.test_start);

    // Optimum: ground-truth greedy knapsack over all segments.
    auto opt = baselines::RunOptimumBaseline(
        workload, model->profiles, setup.segment_seconds, setup.test_duration,
        setup.test_start, budget_rate * setup.test_duration);

    table.AddRow(
        {TablePrinter::Fmt(frac, 2),
         static_q > 0 ? TablePrinter::Pct(static_q / denom, 0) : "-",
         sky_result.ok()
             ? TablePrinter::Pct(sky_result->total_quality / denom, 0)
             : "-",
         opt.ok() ? TablePrinter::Pct(opt->total_quality / denom, 0) : "-"});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace sky::bench

int main() {
  using namespace sky::bench;
  std::printf("=== Figures 6/8/10/12: work (core*s) ablation ===\n");
  {
    sky::workloads::CovidWorkload covid;
    RunWorkload(covid, CovidSetup());
  }
  {
    sky::workloads::MotWorkload mot;
    RunWorkload(mot, MotSetup());
  }
  {
    sky::workloads::MoseiWorkload high(
        sky::workloads::MoseiWorkload::SpikeKind::kHigh);
    RunWorkload(high, MoseiSetup());
  }
  {
    sky::workloads::MoseiWorkload lng(
        sky::workloads::MoseiWorkload::SpikeKind::kLong);
    RunWorkload(lng, MoseiSetup());
  }
  return 0;
}
