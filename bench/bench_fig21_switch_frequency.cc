// Figure 21 (Appendix I.2): sensitivity to the knob-switching period. Runs
// COVID end-to-end with the switcher invoked every {2, 3, 4, 8} seconds.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Figure 21: knob-switching period ===\n");

  workloads::CovidWorkload covid;
  sim::CostModel cost_model(1.8);

  TablePrinter table("COVID quality by switcher period (8 vCPUs, 2 days)");
  table.SetHeader({"period", "quality", "switches", "misclassification"});

  for (double period : {2.0, 3.0, 4.0, 8.0}) {
    ExperimentSetup setup = CovidSetup();
    setup.segment_seconds = period;
    setup.test_duration = Days(2);
    std::vector<StaticEntry> totals = StaticConfigTotals(covid, setup);
    double denom = BestEntry(totals).total_quality;

    sim::ClusterSpec cluster;
    cluster.cores = 8;
    auto model = FitOffline(covid, setup, cluster, cost_model,
                            /*train_forecaster=*/false);
    if (!model.ok()) continue;

    core::EngineOptions run;
    run.duration = setup.test_duration;
    run.plan_interval = setup.plan_interval;
    run.cloud_budget_usd_per_interval = 3.0;
    core::IngestionEngine engine(&covid, &*model, cluster, &cost_model, run);
    auto result = engine.Run(setup.test_start);
    if (!result.ok()) continue;
    table.AddRow({TablePrinter::Fmt(period, 0) + " s",
                  TablePrinter::Pct(result->total_quality / denom, 0),
                  std::to_string(result->switch_count),
                  TablePrinter::Pct(result->MisclassificationRate())});
  }
  table.Print(std::cout);
  std::printf("\n(paper: sensitive but mildly so — every reasonable period "
              "from 2 s to 8 s performs well)\n");
  return 0;
}
