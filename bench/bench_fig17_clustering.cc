// Figure 17 (Appendix B.2): KMeans vs Gaussian-mixture content categories.
// Runs COVID end-to-end with both clustering backends across server sizes;
// the paper finds no end-to-end difference and recommends KMeans for
// simplicity.

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Figure 17: KMeans vs Gaussian mixture categories ===\n");

  workloads::CovidWorkload covid;
  ExperimentSetup setup = CovidSetup();
  setup.test_duration = Days(2);
  sim::CostModel cost_model(1.8);
  std::vector<StaticEntry> totals = StaticConfigTotals(covid, setup);
  double denom = BestEntry(totals).total_quality;

  TablePrinter table("COVID quality by clustering backend");
  table.SetHeader({"vCPUs", "KMeans", "Gaussian mixture"});

  for (int vcpus : {4, 8, 16, 32, 60}) {
    sim::ClusterSpec cluster;
    cluster.cores = vcpus;
    std::vector<std::string> row = {std::to_string(vcpus)};
    for (auto backend : {core::CategorizerBackend::kKMeans,
                         core::CategorizerBackend::kGmm}) {
      core::OfflineOptions offline;
      offline.segment_seconds = setup.segment_seconds;
      offline.train_horizon = setup.train_horizon;
      offline.num_categories = setup.num_categories;
      offline.categorizer_backend = backend;
      offline.train_forecaster = false;
      auto model =
          core::RunOfflinePhase(covid, cluster, cost_model, offline);
      if (!model.ok()) {
        row.push_back("-");
        continue;
      }
      core::EngineOptions run;
      run.duration = setup.test_duration;
      run.plan_interval = setup.plan_interval;
      run.cloud_budget_usd_per_interval = 3.0;
      core::IngestionEngine engine(&covid, &*model, cluster, &cost_model,
                                   run);
      auto result = engine.Run(setup.test_start);
      row.push_back(result.ok()
                        ? TablePrinter::Pct(result->total_quality / denom, 0)
                        : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\n(paper: no end-to-end difference; KMeans preferred for "
              "simplicity)\n");
  return 0;
}
