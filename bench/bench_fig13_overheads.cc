// Figure 13: decision overheads. Left: knob-switcher runtime versus the
// total number of placements (worst case is linear — the switcher must scan
// every configuration-placement pair before falling back). Right: knob-
// planner runtime (forecast inference + LP solve) over a grid of content
// categories x knob configurations, plus the actual workload sizes.

#include <chrono>
#include <iostream>

#include "core/planner.h"
#include "core/switcher.h"
#include "ml/kmeans.h"
#include "util/rng.h"
#include "util/table.h"

namespace sky::bench13 {

using Clock = std::chrono::steady_clock;

/// Synthetic decision problem: `num_k` configurations with
/// `placements_per_config` placements each, category centers spread evenly.
struct Problem {
  core::ContentCategories categories;
  std::vector<core::ConfigProfile> profiles;
  core::KnobPlan plan;
};

Problem MakeProblem(size_t num_c, size_t num_k, size_t placements_per_config,
                    bool feasible_last_only) {
  Problem p;
  ml::KMeansModel km;
  for (size_t c = 0; c < num_c; ++c) {
    std::vector<double> center(num_k);
    for (size_t k = 0; k < num_k; ++k) {
      center[k] = 0.2 + 0.8 * (static_cast<double>(k) + 1) / num_k -
                  0.15 * (static_cast<double>(c) / num_c);
    }
    km.centers.push_back(std::move(center));
  }
  p.categories = core::ContentCategories::FromKMeans(std::move(km));

  p.profiles.resize(num_k);
  Rng rng(5);
  for (size_t k = 0; k < num_k; ++k) {
    p.profiles[k].work_core_s_per_video_s = 1.0 + static_cast<double>(k);
    for (size_t i = 0; i < placements_per_config; ++i) {
      core::PlacementProfile pl;
      bool last = k + 1 == num_k && i + 1 == placements_per_config;
      // Worst case: every placement overruns the buffer except the very
      // last one scanned.
      pl.runtime_s = feasible_last_only && !last ? 100.0 : 1.0;
      pl.cloud_usd = 1e-4 * static_cast<double>(i);
      pl.placement.node_loc.assign(2, dag::Loc::kOnPrem);
      p.profiles[k].placements.push_back(pl);
    }
  }
  p.plan.alpha = ml::Matrix(num_c, num_k, 1.0 / static_cast<double>(num_k));
  return p;
}

void SwitcherTiming() {
  TablePrinter table(
      "Knob switcher runtime vs total placements (worst case + average)");
  table.SetHeader({"total placements", "worst case (ms)", "average (ms)"});
  for (size_t total : {100, 500, 1000, 2500, 5000, 10000}) {
    size_t num_k = 10;
    size_t per_config = total / num_k;
    Problem worst = MakeProblem(4, num_k, per_config, true);
    Problem average = MakeProblem(4, num_k, per_config, false);

    auto time_decide = [](Problem* p, double quality) {
      core::KnobSwitcher switcher(&p->categories, &p->profiles);
      switcher.SetPlan(&p->plan);
      core::SwitchContext ctx;
      ctx.current_config_idx = 0;
      ctx.measured_quality = quality;
      ctx.segment_seconds = 2.0;
      ctx.buffer_capacity_bytes = 1;  // nothing that lags fits
      ctx.cloud_credits_remaining_usd = 10.0;
      constexpr int kIters = 200;
      auto start = Clock::now();
      for (int i = 0; i < kIters; ++i) {
        auto d = switcher.Decide(ctx);
        if (d.ok()) switcher.RecordUsage(d->category, d->config_idx);
      }
      return std::chrono::duration<double, std::milli>(Clock::now() - start)
                 .count() /
             kIters;
    };
    table.AddRow({std::to_string(total),
                  TablePrinter::Fmt(time_decide(&worst, 0.5), 4),
                  TablePrinter::Fmt(time_decide(&average, 0.5), 4)});
  }
  table.Print(std::cout);
  std::printf("(paper: <1 ms for the COVID/MOT/MOSEI sizes, linear worst "
              "case in the number of placements)\n");
}

void PlannerTiming() {
  TablePrinter table(
      "Knob planner runtime (ms): categories x configurations");
  table.SetHeader({"categories \\ configs", "3", "7", "11", "15"});
  for (size_t num_c : {5, 35, 65, 95, 125, 155}) {
    std::vector<std::string> row = {std::to_string(num_c)};
    for (size_t num_k : {3, 7, 11, 15}) {
      Problem p = MakeProblem(num_c, num_k, 1, false);
      std::vector<double> forecast(num_c, 1.0 / static_cast<double>(num_c));
      std::vector<double> costs(num_k);
      for (size_t k = 0; k < num_k; ++k) {
        costs[k] = p.profiles[k].work_core_s_per_video_s;
      }
      double budget = costs[num_k / 2];
      auto start = Clock::now();
      constexpr int kIters = 5;
      for (int i = 0; i < kIters; ++i) {
        auto plan = core::ComputeKnobPlan(p.categories, forecast, costs,
                                          budget);
        if (!plan.ok()) {
          row.push_back("err");
          break;
        }
      }
      row.push_back(TablePrinter::Fmt(
          std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count() /
              kIters,
          1));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("(paper: <1 s even at 155 categories x 15 configurations; "
              "runs once every couple of days)\n");
}

}  // namespace sky::bench13

int main() {
  std::printf("=== Figure 13: knob switcher / knob planner overheads ===\n");
  sky::bench13::SwitcherTiming();
  sky::bench13::PlannerTiming();
  return 0;
}
