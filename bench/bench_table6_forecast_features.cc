// Table 6 (Appendix I.3): forecast MAE depending on the input featurization
// — how many days of history feed the model and how many histograms the
// history is split into.

#include <iostream>

#include "bench_common.h"
#include "core/offline.h"
#include "util/table.h"
#include "workloads/covid.h"

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Table 6: forecast MAE vs input features (COVID) ===\n");

  workloads::CovidWorkload covid;
  ExperimentSetup setup = CovidSetup();
  sim::ClusterSpec cluster;
  cluster.cores = 8;
  sim::CostModel cost_model(1.8);
  auto model = FitOffline(covid, setup, cluster, cost_model,
                          /*train_forecaster=*/false);
  if (!model.ok()) {
    std::printf("offline failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  // Evaluate over the full recorded horizon: long input spans need more
  // history than the 8-day test window alone provides.
  std::vector<size_t> test_seq = core::BuildTrainCategorySequence(
      covid, model->configs, model->categories, setup.segment_seconds,
      setup.test_start + setup.test_duration, /*seed=*/4242);

  TablePrinter table("MAE, 2-day forecast: input days x splits");
  table.SetHeader({"input days \\ splits", "1", "2", "4", "8"});
  for (double input_days : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    std::vector<std::string> row = {TablePrinter::Fmt(input_days, 1)};
    for (size_t splits : {1, 2, 4, 8}) {
      core::ForecasterOptions opts;
      opts.input_span = Days(input_days);
      opts.input_splits = splits;
      opts.planned_interval = Days(2);
      auto forecaster = core::Forecaster::Train(
          model->train_category_sequence, setup.segment_seconds,
          setup.num_categories, opts);
      if (!forecaster.ok()) {
        row.push_back("-");
        continue;
      }
      auto mae = forecaster->EvaluateMae(test_seq, setup.segment_seconds);
      row.push_back(mae.ok() ? TablePrinter::Fmt(*mae, 3) : "-");
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::printf("\n(paper: with 8 splits the MAE stays low for every input "
              "span; coarse single-histogram inputs are noticeably worse)\n");
  return 0;
}
