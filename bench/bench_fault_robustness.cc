// Fault robustness: quality under injected failures, and recovery parity.
//
// A four-camera jointly-planned fleet runs the same half-day window five
// times: fault-free (the baseline), under transient cloud-upload failures,
// under a sustained cloud outage, with a throwing UDF healed by the
// StreamSet supervisor, and through a simulated crash restored from a fleet
// checkpoint. Everything is driven by the deterministic fault injector
// (sim/faults.h), so each scenario is replayable bitwise.
//
// Gates (exit non-zero on violation):
//   - every scenario completes on every stream at workers {1, 2, 8} — no
//     deadlocks, no quarantined streams outside the scenarios that earn one;
//   - the fault-free baseline is bitwise identical across worker counts;
//   - the supervised UDF-throw run is bitwise identical to the baseline
//     (replay-from-boundary heals the fault completely);
//   - crash + RecoverFromCheckpoint completes bitwise identical to the
//     uninterrupted baseline;
//   - mean quality under transient failures and under the outage stays
//     above kQualityFloor of the fault-free baseline (graceful degradation,
//     not collapse).
//
// Results land in BENCH_fault_robustness.json.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/engine.h"
#include "core/multi_stream.h"
#include "core/planner.h"
#include "dag/thread_pool.h"
#include "sim/faults.h"
#include "util/table.h"
#include "workloads/ev_counting.h"

namespace {

using namespace sky;
using namespace sky::bench;

constexpr size_t kStreams = 4;
// Degraded runs must keep at least this fraction of fault-free quality.
constexpr double kQualityFloor = 0.7;

ExperimentSetup FastSetup() {
  ExperimentSetup s;
  s.segment_seconds = 4.0;
  s.train_horizon = Days(3);
  s.test_start = Days(3);
  s.test_duration = Hours(12);
  s.num_categories = 3;
  s.plan_interval = Hours(2);
  return s;
}

struct Fleet {
  std::vector<std::unique_ptr<workloads::EvCountingWorkload>> workloads;
  std::vector<core::OfflineModel> models;
  sim::ClusterSpec cluster;
  sim::CostModel cost_model{1.8};

  std::vector<core::StreamEngineJob> Jobs(
      const ExperimentSetup& setup,
      std::vector<std::unique_ptr<sim::FaultInjector>>* injectors =
          nullptr) const {
    std::vector<core::StreamEngineJob> jobs;
    for (size_t s = 0; s < workloads.size(); ++s) {
      core::StreamEngineJob job;
      job.workload = workloads[s].get();
      job.model = &models[s];
      job.cluster = cluster;
      job.cost_model = &cost_model;
      job.options.duration = setup.test_duration;
      job.options.plan_interval = setup.plan_interval;
      job.options.cloud_budget_usd_per_interval = 1.0;
      job.start_time = setup.test_start;
      if (injectors != nullptr) {
        job.options.fault_injector = (*injectors)[s].get();
      }
      jobs.push_back(job);
    }
    return jobs;
  }
};

struct ScenarioRun {
  std::vector<Result<core::EngineResult>> results;
  size_t restarts = 0;
  double wall_s = 0.0;
};

/// Runs one jointly-planned fleet to completion and returns its results.
/// Exits the process on any setup failure (bench harness, not a library).
ScenarioRun RunFleet(const std::vector<core::StreamEngineJob>& jobs,
                     dag::ThreadPool* pool, core::StreamSetOptions options,
                     const char* label) {
  WallTimer timer;
  auto set = core::StreamSet::Create(jobs, options);
  if (!set.ok()) {
    std::printf("%s: StreamSet::Create failed: %s\n", label,
                set.status().ToString().c_str());
    std::exit(1);
  }
  Status run = set->RunToCompletion(pool);
  if (!run.ok()) {
    std::printf("%s: RunToCompletion failed: %s\n", label,
                run.ToString().c_str());
    std::exit(1);
  }
  ScenarioRun out;
  out.results = set->Results();
  out.restarts = set->total_restarts();
  out.wall_s = timer.Seconds();
  return out;
}

double MeanQuality(const ScenarioRun& run) {
  double sum = 0.0;
  for (const auto& r : run.results) {
    if (r.ok()) sum += r->mean_quality;
  }
  return sum / static_cast<double>(run.results.size());
}

bool AllOk(const ScenarioRun& run) {
  for (const auto& r : run.results) {
    if (!r.ok()) return false;
  }
  return true;
}

bool Bitwise(const ScenarioRun& a, const ScenarioRun& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t s = 0; s < a.results.size(); ++s) {
    if (!a.results[s].ok() || !b.results[s].ok()) return false;
    if (!core::EngineResultsIdentical(*a.results[s], *b.results[s])) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fault robustness: injected failures + recovery ===\n");
  ExperimentSetup setup = FastSetup();

  Fleet fleet;
  fleet.cluster.cores = core::FairCoreShare(16, kStreams);
  dag::ThreadPool pool(BenchThreads(argc, argv));
  for (size_t s = 0; s < kStreams; ++s) {
    fleet.workloads.push_back(
        std::make_unique<workloads::EvCountingWorkload>(8600 + s));
  }
  WallTimer offline_timer;
  fleet.models.resize(kStreams);
  std::vector<Status> fit_statuses(kStreams, Status::Ok());
  dag::ParallelFor(&pool, kStreams, [&](size_t s) {
    auto model = FitOffline(*fleet.workloads[s], setup, fleet.cluster,
                            fleet.cost_model, /*train_forecaster=*/false,
                            &pool);
    if (model.ok()) {
      fleet.models[s] = std::move(*model);
    } else {
      fit_statuses[s] = model.status();
    }
  });
  for (const Status& st : fit_statuses) {
    if (!st.ok()) {
      std::printf("offline failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  double offline_s = offline_timer.Seconds();

  bool gates_ok = true;
  auto gate = [&gates_ok](bool ok, const char* what) {
    if (!ok) {
      std::printf("GATE FAILED: %s\n", what);
      gates_ok = false;
    }
  };

  // --- Scenario 1: fault-free baseline, bitwise across worker counts -----
  std::vector<core::StreamEngineJob> base_jobs = fleet.Jobs(setup);
  dag::ThreadPool pool2(2), pool8(8);
  ScenarioRun baseline = RunFleet(base_jobs, nullptr, {}, "baseline w1");
  ScenarioRun baseline2 = RunFleet(base_jobs, &pool2, {}, "baseline w2");
  ScenarioRun baseline8 = RunFleet(base_jobs, &pool8, {}, "baseline w8");
  gate(AllOk(baseline), "baseline completes on every stream");
  gate(Bitwise(baseline, baseline2) && Bitwise(baseline, baseline8),
       "baseline bitwise identical at workers {1,2,8}");
  double base_quality = MeanQuality(baseline);

  // Fault windows sit inside the second plan interval; one-shot events fire
  // mid-run. All seeds fixed so every invocation replays the same faults.
  const SimTime fault_at = setup.test_start + setup.plan_interval;
  const SimTime fault_len = setup.plan_interval;

  // --- Scenario 2: transient cloud-upload failures (retry + degrade) -----
  // The window covers the whole run: WHERE the planner bursts depends on
  // forecast content, so a narrow window can miss every cloud segment and
  // exercise nothing (the liveness gate below would catch that).
  std::vector<std::unique_ptr<sim::FaultInjector>> transient_inj;
  for (size_t s = 0; s < kStreams; ++s) {
    sim::FaultPlan plan;
    plan.AddTransientCloudFailures(setup.test_start, setup.test_duration,
                                   /*fail_probability=*/0.5);
    transient_inj.push_back(
        std::make_unique<sim::FaultInjector>(plan, /*seed=*/9100 + s));
  }
  ScenarioRun transient = RunFleet(fleet.Jobs(setup, &transient_inj), &pool8,
                                   {}, "transient_cloud");
  gate(AllOk(transient), "transient_cloud completes on every stream");
  double transient_quality = MeanQuality(transient);
  size_t retries = 0, giveups = 0;
  double backoff_s = 0.0;
  for (const auto& r : transient.results) {
    retries += r->cloud_retries;
    giveups += r->cloud_giveups;
    backoff_s += r->fault_backoff_s;
  }
  gate(retries + giveups > 0,
       "transient_cloud scenario actually hit cloud uploads");

  // --- Scenario 3: sustained cloud outage (degrade on-prem, resume) ------
  std::vector<std::unique_ptr<sim::FaultInjector>> outage_inj;
  for (size_t s = 0; s < kStreams; ++s) {
    sim::FaultPlan plan;
    plan.AddCloudOutage(fault_at, fault_len);
    outage_inj.push_back(
        std::make_unique<sim::FaultInjector>(plan, /*seed=*/9200 + s));
  }
  ScenarioRun outage =
      RunFleet(fleet.Jobs(setup, &outage_inj), &pool8, {}, "outage");
  gate(AllOk(outage), "outage completes on every stream");
  double outage_quality = MeanQuality(outage);
  size_t outage_segments = 0, outage_intervals = 0;
  for (const auto& r : outage.results) {
    outage_segments += r->outage_segments;
    outage_intervals += r->outage_intervals;
  }

  // --- Scenario 4: throwing UDF healed by the supervisor -----------------
  // Stream 2's UDF throws once mid-interval; the supervisor replays it from
  // its last boundary checkpoint, which must heal the run bitwise.
  core::StreamSetOptions supervised;
  supervised.max_stream_restarts = 2;
  bool throw_all_ok = true, throw_bitwise = true;
  size_t throw_restarts = 0;
  double throw_wall_s = 0.0;
  for (dag::ThreadPool* p : {static_cast<dag::ThreadPool*>(nullptr), &pool2,
                             &pool8}) {
    std::vector<std::unique_ptr<sim::FaultInjector>> throw_inj;
    for (size_t s = 0; s < kStreams; ++s) {
      sim::FaultPlan plan;
      if (s == 2) plan.AddUdfThrow(fault_at + Hours(1));
      throw_inj.push_back(
          std::make_unique<sim::FaultInjector>(plan, /*seed=*/9300 + s));
    }
    ScenarioRun run = RunFleet(fleet.Jobs(setup, &throw_inj), p, supervised,
                               "udf_throw");
    throw_all_ok &= AllOk(run);
    throw_bitwise &= Bitwise(run, baseline);
    throw_restarts = run.restarts;
    throw_wall_s = run.wall_s;
  }
  gate(throw_all_ok, "udf_throw completes on every stream at workers {1,2,8}");
  gate(throw_restarts >= 1, "supervisor restarted the throwing stream");
  gate(throw_bitwise, "supervised udf_throw run bitwise == fault-free");

  // --- Scenario 5: crash mid-run, recover from the fleet checkpoint ------
  std::string ckpt_path = "BENCH_fault_robustness.ckpt";
  WallTimer crash_timer;
  bool crash_ok = false, crash_bitwise = false;
  do {
    auto half = core::StreamSet::Create(base_jobs, {});
    if (!half.ok() || !half->RunUntilElapsed(Hours(6)).ok()) break;
    if (!half->SaveCheckpoint(ckpt_path).ok()) break;
    // The StreamSet (the "process") is dropped here; a fresh one recovers.
    auto recovered =
        core::StreamSet::RecoverFromCheckpoint(base_jobs, ckpt_path);
    if (!recovered.ok() || !recovered->RunToCompletion(&pool8).ok()) break;
    ScenarioRun rec;
    rec.results = recovered->Results();
    crash_ok = AllOk(rec);
    crash_bitwise = Bitwise(rec, baseline);
  } while (false);
  double crash_wall_s = crash_timer.Seconds();
  std::remove(ckpt_path.c_str());
  gate(crash_ok, "crash_recover completes on every stream");
  gate(crash_bitwise, "recovered run bitwise == uninterrupted");

  // --- Quality floor gates ----------------------------------------------
  double transient_rel =
      base_quality > 0 ? transient_quality / base_quality : 0.0;
  double outage_rel = base_quality > 0 ? outage_quality / base_quality : 0.0;
  gate(transient_rel >= kQualityFloor,
       "transient_cloud quality >= floor of baseline");
  gate(outage_rel >= kQualityFloor, "outage quality >= floor of baseline");

  TablePrinter table("Injected-fault scenarios (4 jointly-planned streams)");
  table.SetHeader({"scenario", "mean quality", "rel. to fault-free",
                   "evidence"});
  table.AddRow({"fault-free", TablePrinter::Pct(base_quality), "1.00",
                "bitwise @ workers {1,2,8}"});
  table.AddRow({"transient cloud p=0.5", TablePrinter::Pct(transient_quality),
                TablePrinter::Fmt(transient_rel, 2),
                std::to_string(retries) + " retries, " +
                    std::to_string(giveups) + " giveups"});
  table.AddRow({"cloud outage (1 interval)", TablePrinter::Pct(outage_quality),
                TablePrinter::Fmt(outage_rel, 2),
                std::to_string(outage_segments) + " outage segments"});
  table.AddRow({"UDF throw + supervisor", TablePrinter::Pct(base_quality),
                throw_bitwise ? "1.00 (bitwise)" : "DIVERGED",
                std::to_string(throw_restarts) + " restart(s)"});
  table.AddRow({"crash + recover", TablePrinter::Pct(base_quality),
                crash_bitwise ? "1.00 (bitwise)" : "DIVERGED",
                "fleet checkpoint round trip"});
  table.Print(std::cout);
  std::printf("\noffline fits %.2f s; baseline run %.2f s serial / %.2f s on "
              "8 workers\n",
              offline_s, baseline.wall_s, baseline8.wall_s);

  BenchJson json("fault_robustness");
  json.Set("threads", static_cast<double>(pool.num_threads()));
  json.Set("streams", static_cast<double>(kStreams));
  json.Set("quality_floor", kQualityFloor);
  json.Set("baseline_mean_quality", base_quality);
  json.Set("transient_mean_quality", transient_quality);
  json.Set("transient_quality_rel", transient_rel);
  json.Set("transient_retries", static_cast<double>(retries));
  json.Set("transient_giveups", static_cast<double>(giveups));
  json.Set("transient_backoff_s", backoff_s);
  json.Set("outage_mean_quality", outage_quality);
  json.Set("outage_quality_rel", outage_rel);
  json.Set("outage_segments", static_cast<double>(outage_segments));
  json.Set("outage_intervals", static_cast<double>(outage_intervals));
  json.Set("udf_throw_restarts", static_cast<double>(throw_restarts));
  json.Set("udf_throw_bitwise", throw_bitwise ? 1.0 : 0.0);
  json.Set("crash_recover_bitwise", crash_bitwise ? 1.0 : 0.0);
  json.Set("baseline_bitwise_across_workers",
           Bitwise(baseline, baseline2) && Bitwise(baseline, baseline8)
               ? 1.0
               : 0.0);
  json.Set("offline_wall_s", offline_s);
  json.Set("baseline_wall_s_serial", baseline.wall_s);
  json.Set("baseline_wall_s_w8", baseline8.wall_s);
  json.Set("udf_throw_wall_s", throw_wall_s);
  json.Set("crash_recover_wall_s", crash_wall_s);
  std::string written = json.Write();
  if (!written.empty()) std::printf("wrote %s\n", written.c_str());

  if (!gates_ok) {
    std::printf("\nFAULT ROBUSTNESS GATES FAILED\n");
    return 1;
  }
  std::printf("\nall fault-robustness gates passed\n");
  return 0;
}
