// Table 3 (Appendix E): runtime of the offline-phase steps for the COVID
// workload. The paper measures 6 min / 4 min / 5 min / 1.3 h / 1 min on two
// c2-standard-60 machines; our substrate is analytic, so absolute times are
// seconds — the table reports both and the paper's dominant-step structure
// (creating forecast training data dwarfs everything else there because it
// processes 16 days of video with real CV models).

#include <iostream>

#include "bench_common.h"
#include "core/offline.h"
#include "util/table.h"
#include "workloads/covid.h"

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Table 3: offline-phase step runtimes (COVID) ===\n");

  workloads::CovidWorkload covid;
  ExperimentSetup setup = CovidSetup();
  sim::ClusterSpec cluster;
  cluster.cores = 60;
  sim::CostModel cost_model(1.8);
  auto model = FitOffline(covid, setup, cluster, cost_model);
  if (!model.ok()) {
    std::printf("offline failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  const core::OfflineStepRuntimes& rt = model->step_runtimes;

  TablePrinter table("Offline steps, this build vs paper");
  table.SetHeader({"step", "measured", "paper (real CV models)"});
  table.AddRow({"Filter knob configurations",
                TablePrinter::Fmt(rt.filter_configs_s, 3) + " s", "6 min"});
  table.AddRow({"Filter task placements",
                TablePrinter::Fmt(rt.filter_placements_s, 3) + " s", "4 min"});
  table.AddRow({"Compute content categories",
                TablePrinter::Fmt(rt.content_categories_s, 3) + " s",
                "5 min"});
  table.AddRow({"Create forecast training data",
                TablePrinter::Fmt(rt.forecast_training_data_s, 3) + " s",
                "1.3 h"});
  table.AddRow({"Train forecast model",
                TablePrinter::Fmt(rt.forecast_training_s, 3) + " s", "1 min"});
  table.Print(std::cout);

  double total = rt.filter_configs_s + rt.filter_placements_s +
                 rt.content_categories_s + rt.forecast_training_data_s +
                 rt.forecast_training_s;
  std::printf("\ntotal %.2f s; dominant step: %s (paper: creating the "
              "forecast training data at 83%% of 1.6 h)\n",
              total,
              rt.forecast_training_data_s + rt.forecast_training_s >
                      rt.filter_configs_s + rt.filter_placements_s
                  ? "forecaster data/training"
                  : "knob/placement filtering");
  std::printf("model footprint: %zu configurations, %zu categories, "
              "%zu-sample training sequence\n",
              model->configs.size(), model->categories.NumCategories(),
              model->train_category_sequence.size());
  return 0;
}
