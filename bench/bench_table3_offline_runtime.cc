// Table 3 (Appendix E): runtime of the offline-phase steps for the COVID
// workload. The paper measures 6 min / 4 min / 5 min / 1.3 h / 1 min on two
// c2-standard-60 machines; our substrate is analytic, so absolute times are
// seconds — the table reports both and the paper's dominant-step structure
// (creating forecast training data dwarfs everything else there because it
// processes 16 days of video with real CV models).
//
// The offline phase fans out on a thread pool; this bench runs it twice —
// single-threaded baseline, then on all hardware threads — verifies the two
// OfflineModels are identical (parallelism is a pure wall-clock knob), and
// records both wall times in BENCH_table3_offline_runtime.json.

#include <algorithm>
#include <iostream>

#include "api/workload_registry.h"
#include "bench_common.h"
#include "core/offline.h"
#include "core/placement_search.h"
#include "dag/thread_pool.h"
#include "io/model_io.h"
#include "ml/kernels.h"
#include "util/table.h"
#include "workloads/covid.h"

int main(int argc, char** argv) {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Table 3: offline-phase step runtimes (COVID) ===\n");

  workloads::CovidWorkload covid;
  ExperimentSetup setup = CovidSetup();
  sim::ClusterSpec cluster;
  cluster.cores = 60;
  sim::CostModel cost_model(1.8);
  size_t hw_threads = BenchThreads(argc, argv);

  WallTimer serial_timer;
  auto serial = FitOffline(covid, setup, cluster, cost_model,
                           /*train_forecaster=*/true, /*pool=*/nullptr,
                           /*num_threads=*/1);
  double serial_s = serial_timer.Seconds();
  if (!serial.ok()) {
    std::printf("offline failed: %s\n", serial.status().ToString().c_str());
    return 1;
  }

  WallTimer parallel_timer;
  auto parallel = FitOffline(covid, setup, cluster, cost_model,
                             /*train_forecaster=*/true, /*pool=*/nullptr,
                             /*num_threads=*/hw_threads);
  double parallel_s = parallel_timer.Seconds();
  if (!parallel.ok()) {
    std::printf("offline failed: %s\n", parallel.status().ToString().c_str());
    return 1;
  }
  bool identical = core::OfflineModelsIdentical(*serial, *parallel);

  const core::OfflineStepRuntimes& st = serial->step_runtimes;
  const core::OfflineStepRuntimes& pt = parallel->step_runtimes;

  TablePrinter table("Offline steps: serial vs " +
                     std::to_string(hw_threads) + " threads vs paper");
  table.SetHeader({"step", "serial", "parallel", "paper (real CV models)"});
  table.AddRow({"Filter knob configurations",
                TablePrinter::Fmt(st.filter_configs_s, 3) + " s",
                TablePrinter::Fmt(pt.filter_configs_s, 3) + " s", "6 min"});
  table.AddRow({"Filter task placements",
                TablePrinter::Fmt(st.filter_placements_s, 3) + " s",
                TablePrinter::Fmt(pt.filter_placements_s, 3) + " s", "4 min"});
  table.AddRow({"Compute content categories",
                TablePrinter::Fmt(st.content_categories_s, 3) + " s",
                TablePrinter::Fmt(pt.content_categories_s, 3) + " s",
                "5 min"});
  table.AddRow({"Create forecast training data",
                TablePrinter::Fmt(st.forecast_training_data_s, 3) + " s",
                TablePrinter::Fmt(pt.forecast_training_data_s, 3) + " s",
                "1.3 h"});
  table.AddRow({"Train forecast model",
                TablePrinter::Fmt(st.forecast_training_s, 3) + " s",
                TablePrinter::Fmt(pt.forecast_training_s, 3) + " s", "1 min"});
  table.Print(std::cout);

  double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  std::printf("\ntotal: serial %.2f s, parallel %.2f s on %zu threads "
              "(%.2fx); models %s\n",
              serial_s, parallel_s, hw_threads, speedup,
              identical ? "bit-identical" : "DIFFER (bug!)");
  std::printf("dominant step: %s (paper: creating the forecast training "
              "data at 83%% of 1.6 h)\n",
              st.forecast_training_data_s + st.forecast_training_s >
                      st.filter_configs_s + st.filter_placements_s
                  ? "forecaster data/training"
                  : "knob/placement filtering");
  std::printf("model footprint: %zu configurations, %zu categories, "
              "%zu-sample training sequence\n",
              serial->configs.size(), serial->categories.NumCategories(),
              serial->train_category_sequence.size());

  // Persistence overhead (tracked from day one): what `sky offline` pays to
  // save the model and `sky ingest` pays to load it, relative to the
  // retraining both of them avoid.
  WallTimer save_timer;
  std::string serialized;
  Status ser = io::SerializeOfflineModel(*serial, "COVID", &serialized);
  double save_s = save_timer.Seconds();
  bool roundtrip_identical = false;
  double load_s = 0.0;
  if (!ser.ok()) {
    std::printf("model serialization failed: %s\n", ser.ToString().c_str());
  } else {
    WallTimer load_timer;
    auto reloaded = io::DeserializeOfflineModel(serialized);
    load_s = load_timer.Seconds();
    if (!reloaded.ok()) {
      std::printf("model deserialization failed: %s\n",
                  reloaded.status().ToString().c_str());
    } else {
      roundtrip_identical = core::OfflineModelsIdentical(*serial, *reloaded);
    }
  }
  std::printf("persistence: save %.4f s, load %.4f s, %.2f MiB serialized; "
              "round trip %s\n",
              save_s, load_s,
              static_cast<double>(serialized.size()) / (1 << 20),
              roundtrip_identical ? "bit-identical" : "DIFFERS (bug!)");

  // SA-vs-greedy placement search gate: on every workload — the four §5.2
  // streams and the three adversarial scenarios — the annealed backend must
  // reach a Pareto hypervolume >= the greedy hill-climb's at equal
  // evaluation budget (the annealer runs the identical greedy descent first,
  // so this holds by construction; the gate guards that invariant), and its
  // result must replay bitwise on a thread pool.
  std::printf("\n=== Placement search: anneal vs greedy hill-climb ===\n");
  const char* kGateWorkloads[] = {"ev",    "covid",       "mot",  "mosei-high",
                                  "flash-crowd", "drift", "fleet"};
  TablePrinter sa_table("kAnneal vs kGreedy, equal budget (256 sims)");
  sa_table.SetHeader({"workload", "greedy HV", "anneal HV", "delta",
                      "greedy ms", "anneal ms"});
  bool sa_gate = true, sa_bitwise = true;
  BenchJson json("table3_offline_runtime");
  for (const char* name : kGateWorkloads) {
    auto workload = api::MakeWorkloadByName(name);
    if (workload == nullptr) {
      std::printf("unknown workload %s\n", name);
      return 1;
    }
    sim::ClusterSpec gate_cluster;
    gate_cluster.cores = 4;  // constrained cores: cloud placements matter
    dag::TaskGraph graph = workload->BuildTaskGraph(
        core::MostQualitativeConfig(*workload), 4.0, cost_model);

    core::PlacementSearchOptions search;
    search.eval_budget = 256;
    search.seed = 31;
    search.backend = core::SearchBackend::kGreedy;
    WallTimer greedy_timer;
    auto greedy = core::SearchPlacements(graph, gate_cluster, search);
    double greedy_ms = greedy_timer.Seconds() * 1e3;
    search.backend = core::SearchBackend::kAnneal;
    WallTimer anneal_timer;
    auto anneal = core::SearchPlacements(graph, gate_cluster, search);
    double anneal_ms = anneal_timer.Seconds() * 1e3;
    if (!greedy.ok() || !anneal.ok()) {
      std::printf("placement search failed on %s\n", name);
      return 1;
    }

    // Bitwise reproducibility of the annealed frontier on a pool.
    dag::ThreadPool sa_pool(4);
    search.pool = &sa_pool;
    auto anneal_pooled = core::SearchPlacements(graph, gate_cluster, search);
    bool bitwise = anneal_pooled.ok() &&
                   anneal_pooled->size() == anneal->size();
    if (bitwise) {
      for (size_t i = 0; i < anneal->size(); ++i) {
        bitwise &= (*anneal_pooled)[i].placement.node_loc ==
                       (*anneal)[i].placement.node_loc &&
                   (*anneal_pooled)[i].runtime_s == (*anneal)[i].runtime_s &&
                   (*anneal_pooled)[i].cloud_usd == (*anneal)[i].cloud_usd;
      }
    }
    sa_bitwise &= bitwise;

    double ref_cost = 0.0, ref_rt = 0.0;
    for (const auto* f : {&*greedy, &*anneal}) {
      for (const core::PlacementProfile& p : *f) {
        ref_cost = std::max(ref_cost, p.cloud_usd);
        ref_rt = std::max(ref_rt, p.runtime_s);
      }
    }
    ref_cost += 1.0;
    ref_rt += 1.0;
    double greedy_hv = core::FrontierHypervolume(*greedy, ref_cost, ref_rt);
    double anneal_hv = core::FrontierHypervolume(*anneal, ref_cost, ref_rt);
    double delta = anneal_hv - greedy_hv;
    sa_gate &= delta >= -1e-12;
    sa_table.AddRow({name, TablePrinter::Fmt(greedy_hv, 4),
                     TablePrinter::Fmt(anneal_hv, 4),
                     TablePrinter::Fmt(delta, 4),
                     TablePrinter::Fmt(greedy_ms, 2),
                     TablePrinter::Fmt(anneal_ms, 2)});
    std::string key = std::string("sa_") + name;
    json.Set(key + "_greedy_hv", greedy_hv);
    json.Set(key + "_anneal_hv", anneal_hv);
    json.Set(key + "_delta", delta);
    json.Set(key + "_greedy_ms", greedy_ms);
    json.Set(key + "_anneal_ms", anneal_ms);
  }
  sa_table.Print(std::cout);
  std::printf("gate: anneal >= greedy on all %zu workloads: %s; "
              "pooled anneal bitwise: %s\n",
              sizeof(kGateWorkloads) / sizeof(kGateWorkloads[0]),
              sa_gate ? "yes" : "NO (bug!)",
              sa_bitwise ? "yes" : "NO (bug!)");
  json.Set("sa_vs_greedy_gate", sa_gate ? "pass" : "fail");
  json.Set("sa_anneal_bitwise", sa_bitwise ? "yes" : "no");

  json.Set("kernel_backend",
           sky::ml::KernelBackendName(sky::ml::ActiveKernelBackend()));
  json.Set("threads", static_cast<double>(hw_threads));
  json.Set("serial_wall_s", serial_s);
  json.Set("parallel_wall_s", parallel_s);
  json.Set("speedup", speedup);
  json.Set("models_identical", identical ? "yes" : "no");
  json.Set("serial_filter_configs_s", st.filter_configs_s);
  json.Set("serial_filter_placements_s", st.filter_placements_s);
  json.Set("serial_content_categories_s", st.content_categories_s);
  json.Set("serial_forecast_training_data_s", st.forecast_training_data_s);
  json.Set("serial_forecast_training_s", st.forecast_training_s);
  json.Set("parallel_filter_configs_s", pt.filter_configs_s);
  json.Set("parallel_filter_placements_s", pt.filter_placements_s);
  json.Set("parallel_content_categories_s", pt.content_categories_s);
  json.Set("parallel_forecast_training_data_s", pt.forecast_training_data_s);
  json.Set("parallel_forecast_training_s", pt.forecast_training_s);
  json.Set("model_save_s", save_s);
  json.Set("model_load_s", load_s);
  json.Set("model_serialized_bytes", static_cast<double>(serialized.size()));
  json.Set("model_roundtrip_identical", roundtrip_identical ? "yes" : "no");
  std::string path = json.Write();
  if (!path.empty()) std::printf("metrics written to %s\n", path.c_str());
  return identical && roundtrip_identical && sa_gate && sa_bitwise ? 0 : 1;
}
