// Online knob-planner scaling: wall time of single-stream and joint
// multi-stream planning for stream counts {1, 8, 64, 256}, on both planner
// backends — the structured O(n log n) MCKP solver (default) and the dense
// two-phase simplex oracle it replaced on the hot path. The joint program
// grows to (sum C_v + 1) x (V*C*K) for simplex but stays a flat
// hull-and-sweep for the structured solver, so the gap widens superlinearly
// with stream count. Results land in BENCH_planner_scaling.json.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/multi_stream.h"
#include "core/planner.h"
#include "ml/kmeans.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace sky;

constexpr size_t kNumCategories = 4;
constexpr size_t kNumConfigs = 8;

/// One synthetic stream's planner input: monotone-ish quality centers over
/// increasing config costs, with per-stream variation so the joint plan has
/// real allocation decisions to make.
struct SyntheticStream {
  core::ContentCategories categories;
  std::vector<double> forecast;
  std::vector<double> costs;
};

SyntheticStream MakeStream(Rng* rng) {
  SyntheticStream s;
  ml::KMeansModel km;
  for (size_t c = 0; c < kNumCategories; ++c) {
    std::vector<double> center;
    double base = rng->Uniform(0.2, 0.6);
    double gain = rng->Uniform(0.1, 0.4);
    for (size_t k = 0; k < kNumConfigs; ++k) {
      double frac = static_cast<double>(k) / (kNumConfigs - 1);
      center.push_back(base + gain * frac + rng->Uniform(-0.03, 0.03));
    }
    km.centers.push_back(std::move(center));
  }
  s.categories = core::ContentCategories::FromKMeans(std::move(km));
  for (size_t k = 0; k < kNumConfigs; ++k) {
    double frac = static_cast<double>(k) / (kNumConfigs - 1);
    s.costs.push_back(0.5 + 11.5 * frac * frac + rng->Uniform(0.0, 0.3));
  }
  s.forecast.assign(kNumCategories, 0.0);
  double sum = 0.0;
  for (double& f : s.forecast) {
    f = rng->Uniform(0.05, 1.0);
    sum += f;
  }
  for (double& f : s.forecast) f /= sum;
  return s;
}

/// Times `fn` with enough repetitions to exceed `min_seconds` of total wall
/// time (at least one), returning seconds per call.
template <typename Fn>
double TimePerCall(double min_seconds, const Fn& fn) {
  size_t reps = 0;
  bench::WallTimer timer;
  do {
    fn();
    ++reps;
  } while (timer.Seconds() < min_seconds);
  return timer.Seconds() / static_cast<double>(reps);
}

}  // namespace

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Planner scaling: structured MCKP vs simplex oracle ===\n");

  Rng rng(4210);
  std::vector<SyntheticStream> all_streams;
  const size_t max_streams = 256;
  all_streams.reserve(max_streams);
  for (size_t v = 0; v < max_streams; ++v) {
    all_streams.push_back(MakeStream(&rng));
  }

  BenchJson json("planner_scaling");
  // Single-threaded solves by design; recorded so every BENCH_*.json names
  // the pool size its numbers were measured with.
  json.Set("threads", 1.0);
  json.Set("categories_per_stream", static_cast<double>(kNumCategories));
  json.Set("configs_per_stream", static_cast<double>(kNumConfigs));

  TablePrinter table(
      "Knob-plan wall time per solve (joint across streams, and all "
      "single-stream plans)");
  table.SetHeader({"streams", "joint structured", "joint simplex", "speedup",
                   "single structured", "single simplex"});

  TablePrinter warm_table(
      "Incremental joint planning per boundary (~2% of forecasts move)");
  warm_table.SetHeader({"streams", "cold solve", "warm solve", "warm speedup",
                        "groups rescaled", "groups rebuilt"});

  bool checks_ok = true;
  double speedup_at_64 = 0.0;
  double warm_speedup_at_256 = 0.0;
  for (size_t num_streams : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
    std::vector<core::StreamPlanInput> inputs;
    inputs.reserve(num_streams);
    for (size_t v = 0; v < num_streams; ++v) {
      const SyntheticStream& s = all_streams[v];
      inputs.push_back({&s.categories, s.forecast, s.costs});
    }
    // Mid-range shared budget: binds without being infeasible, the
    // worst case for both solvers.
    double budget = 3.0 * static_cast<double>(num_streams);

    core::PlanWorkspace ws;
    double joint_structured = TimePerCall(0.02, [&] {
      auto plans = core::ComputeJointKnobPlan(
          inputs, budget, core::PlannerBackend::kStructured, &ws);
      if (!plans.ok()) checks_ok = false;
    });
    // The dense joint tableau is quadratic-plus in stream count; keep the
    // rep floor low so 256 streams stays tractable.
    double joint_simplex = TimePerCall(0.0, [&] {
      auto plans = core::ComputeJointKnobPlan(
          inputs, budget, core::PlannerBackend::kSimplex, &ws);
      if (!plans.ok()) checks_ok = false;
    });

    // Parity spot check at this scale: identical joint objective.
    {
      auto structured = core::ComputeJointKnobPlan(
          inputs, budget, core::PlannerBackend::kStructured);
      auto simplex = core::ComputeJointKnobPlan(
          inputs, budget, core::PlannerBackend::kSimplex);
      if (!structured.ok() || !simplex.ok()) {
        checks_ok = false;
      } else {
        double q_structured = 0.0, q_simplex = 0.0;
        for (size_t v = 0; v < num_streams; ++v) {
          q_structured += (*structured)[v].expected_quality;
          q_simplex += (*simplex)[v].expected_quality;
        }
        if (std::abs(q_structured - q_simplex) > 1e-6) checks_ok = false;
      }
    }

    double single_structured = TimePerCall(0.02, [&] {
      for (const core::StreamPlanInput& in : inputs) {
        auto plan = core::ComputeKnobPlan(*in.categories, in.forecast,
                                          in.config_costs, 3.0,
                                          core::PlannerBackend::kStructured,
                                          &ws);
        if (!plan.ok()) checks_ok = false;
      }
    });
    double single_simplex = TimePerCall(0.02, [&] {
      for (const core::StreamPlanInput& in : inputs) {
        auto plan = core::ComputeKnobPlan(*in.categories, in.forecast,
                                          in.config_costs, 3.0,
                                          core::PlannerBackend::kSimplex, &ws);
        if (!plan.ok()) checks_ok = false;
      }
    });

    // Warm-started incremental joint planning: consecutive plan boundaries
    // share almost all structure, so the JointPlanner rescales only the
    // streams whose forecasts moved and repairs its warm frontier, while
    // the cold path rebuilds hulls and re-sorts every edge per boundary.
    // Each timed "boundary" perturbs ~2% of the streams' forecasts first.
    core::JointPlanner warm_planner;
    std::vector<core::KnobPlan> warm_plans;
    if (!warm_planner.Plan(inputs, budget, &warm_plans).ok()) {
      checks_ok = false;  // untimed seeding solve (builds the hulls)
    }
    Rng boundary_rng(4211 + static_cast<uint64_t>(num_streams));
    auto perturb_boundary = [&] {
      size_t changed = std::max<size_t>(1, num_streams / 50);
      for (size_t i = 0; i < changed; ++i) {
        size_t v = static_cast<size_t>(
            boundary_rng.UniformInt(0, static_cast<int>(num_streams) - 1));
        double sum = 0.0;
        for (double& f : inputs[v].forecast) {
          f *= boundary_rng.Uniform(0.8, 1.25);
          sum += f;
        }
        for (double& f : inputs[v].forecast) f /= sum;
      }
    };
    double warm_boundary = TimePerCall(0.02, [&] {
      perturb_boundary();
      if (!warm_planner.Plan(inputs, budget, &warm_plans).ok()) {
        checks_ok = false;
      }
    });
    size_t rescaled = warm_planner.last_groups_rescaled();
    size_t rebuilt = warm_planner.last_groups_rebuilt();
    double cold_boundary = TimePerCall(0.02, [&] {
      perturb_boundary();
      auto plans = core::ComputeJointKnobPlan(
          inputs, budget, core::PlannerBackend::kStructured, &ws);
      if (!plans.ok()) checks_ok = false;
    });
    // Same-inputs parity: after one more boundary, warm and cold must agree
    // on the joint objective.
    perturb_boundary();
    if (!warm_planner.Plan(inputs, budget, &warm_plans).ok()) {
      checks_ok = false;
    }
    auto cold_plans = core::ComputeJointKnobPlan(
        inputs, budget, core::PlannerBackend::kStructured, &ws);
    if (!cold_plans.ok()) {
      checks_ok = false;
    } else {
      double q_warm = 0.0, q_cold = 0.0;
      for (size_t v = 0; v < num_streams; ++v) {
        q_warm += warm_plans[v].expected_quality;
        q_cold += (*cold_plans)[v].expected_quality;
      }
      if (std::abs(q_warm - q_cold) > 1e-6) {
        std::printf("warm/cold objective mismatch at %zu streams: %.9f vs "
                    "%.9f\n",
                    num_streams, q_warm, q_cold);
        checks_ok = false;
      }
    }
    double warm_speedup =
        warm_boundary > 0 ? cold_boundary / warm_boundary : 0.0;
    if (num_streams == 256) warm_speedup_at_256 = warm_speedup;

    double speedup = joint_structured > 0 ? joint_simplex / joint_structured
                                          : 0.0;
    if (num_streams == 64) speedup_at_64 = speedup;
    std::string tag = std::to_string(num_streams);
    json.Set("joint_structured_s_" + tag, joint_structured);
    json.Set("joint_simplex_s_" + tag, joint_simplex);
    json.Set("joint_speedup_" + tag, speedup);
    json.Set("single_structured_s_" + tag, single_structured);
    json.Set("single_simplex_s_" + tag, single_simplex);
    json.Set("cold_boundary_s_" + tag, cold_boundary);
    json.Set("warm_boundary_s_" + tag, warm_boundary);
    json.Set("warm_speedup_" + tag, warm_speedup);
    table.AddRow({tag, TablePrinter::Fmt(joint_structured * 1e6, 1) + " us",
                  TablePrinter::Fmt(joint_simplex * 1e6, 1) + " us",
                  TablePrinter::Fmt(speedup, 1) + "x",
                  TablePrinter::Fmt(single_structured * 1e6, 1) + " us",
                  TablePrinter::Fmt(single_simplex * 1e6, 1) + " us"});
    warm_table.AddRow({tag, TablePrinter::Fmt(cold_boundary * 1e6, 1) + " us",
                       TablePrinter::Fmt(warm_boundary * 1e6, 1) + " us",
                       TablePrinter::Fmt(warm_speedup, 1) + "x",
                       std::to_string(rescaled), std::to_string(rebuilt)});
  }
  table.Print(std::cout);
  std::printf("\n");
  warm_table.Print(std::cout);

  std::printf("\n(joint structured = per-stream hulls under one shared "
              "budget multiplier, never materializing the dense tableau; "
              "speedup at 64 streams: %.1fx)\n",
              speedup_at_64);

  json.Set("objectives_match", checks_ok ? "yes" : "no");
  std::string path = json.Write();
  if (!path.empty()) std::printf("metrics written to %s\n", path.c_str());
  if (!checks_ok) {
    std::printf("FAILED: backend objective mismatch or planning failure\n");
    return 1;
  }
  if (speedup_at_64 < 10.0) {
    std::printf("FAILED: joint speedup at 64 streams below 10x\n");
    return 1;
  }
  if (warm_speedup_at_256 < 5.0) {
    std::printf("FAILED: warm-started boundary at 256 streams below 5x "
                "(got %.1fx)\n",
                warm_speedup_at_256);
    return 1;
  }
  return 0;
}
