// Figure 3: running the EV example workload over 24 hours of a traffic
// camera. Reproduces the four stacked time series: per-configuration quality
// (expensive / medium / cheap), the induced workload in TFLOP/s, buffer use
// against the 4 GB capacity, and cloud spending against the plan.

#include <iostream>

#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/ev_counting.h"
#include "workloads/udf_costs.h"

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Figure 3: 24 h EV-counting trace ===\n");

  workloads::EvCountingWorkload ev;
  ExperimentSetup setup = EvSetup();
  sim::ClusterSpec cluster;
  cluster.cores = 4;
  sim::CostModel cost_model(1.8);
  auto model = FitOffline(ev, setup, cluster, cost_model);
  if (!model.ok()) {
    std::printf("offline failed: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // Reference configurations for the top plot: cheapest, middle, most
  // qualitative of the filtered set.
  size_t num_k = model->configs.size();
  size_t cheap = 0, mid = num_k / 2, expensive = num_k - 1;

  core::EngineOptions run;
  run.duration = setup.test_duration;
  run.plan_interval = setup.plan_interval;
  run.cloud_budget_usd_per_interval = 1.0;
  run.record_trace = true;
  run.trace_resolution_s = 3600.0;
  core::IngestionEngine engine(&ev, &*model, cluster, &cost_model, run);
  auto result = engine.Run(setup.test_start);
  if (!result.ok()) {
    std::printf("engine failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  TablePrinter table("EV workload, 24 h on 4 vCPUs + 4 GB buffer");
  table.SetHeader({"hour", "qual(exp)", "qual(med)", "qual(cheap)",
                   "workload TFLOP/s", "buffer GB", "cloud spent/plan"});
  for (const core::TracePoint& p : result->trace) {
    video::ContentState content = ev.content_process().At(p.t);
    char hour[16], tflops[16], buffer[16], spend[24];
    std::snprintf(hour, sizeof(hour), "%02.0f:00", HourOfDay(p.t));
    std::snprintf(tflops, sizeof(tflops), "%.2f",
                  p.work_core_s_per_s * workloads::kTflopPerCoreSecond);
    std::snprintf(buffer, sizeof(buffer), "%.2f", p.buffer_bytes / 1e9);
    std::snprintf(spend, sizeof(spend), "$%.2f / $%.2f",
                  p.cloud_usd_cumulative, p.cloud_usd_planned);
    table.AddRow(
        {hour,
         TablePrinter::Pct(ev.TrueQuality(model->configs[expensive], content), 0),
         TablePrinter::Pct(ev.TrueQuality(model->configs[mid], content), 0),
         TablePrinter::Pct(ev.TrueQuality(model->configs[cheap], content), 0),
         tflops, buffer, spend});
  }
  table.Print(std::cout);

  double expensive_tflops =
      ev.CostCoreSecondsPerVideoSecond(model->configs[expensive]) *
      workloads::kTflopPerCoreSecond;
  std::printf("\nalways-most-expensive would be a constant %.1f TFLOP/s "
              "(paper: 5.2); Skyscraper switched %zu times over the day "
              "(paper: ~4500)\n",
              expensive_tflops, result->switch_count);
  std::printf("buffer peak %.2f GB of %.0f GB; cloud spend $%.2f\n",
              result->buffer_high_water_bytes / 1e9, 4.0, result->cloud_usd);
  return 0;
}
