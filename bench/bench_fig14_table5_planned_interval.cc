// Figure 14 + Table 5: effect of the planned-interval length. Trains the
// forecaster to predict {1, 2, 4, 8} days ahead, reports the forecast MAE on
// held-out data (Table 5), and runs end-to-end ingestion with each planned
// interval against a ground-truth-forecast baseline (Fig. 14).

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"
#include "workloads/mot.h"

namespace sky::bench {
namespace {

void RunWorkload(const core::Workload& workload, ExperimentSetup setup,
                 double cloud_budget) {
  sim::ClusterSpec cluster;
  cluster.cores = 8;
  sim::CostModel cost_model(1.8);

  TablePrinter mae_table(std::string(workload.name()) +
                         " — forecast MAE (Table 5)");
  mae_table.SetHeader({"days forecast", "MAE (held-out 8 d)"});

  TablePrinter e2e_table(std::string(workload.name()) +
                         " — end-to-end quality (Fig. 14, 8 vCPUs)");
  e2e_table.SetHeader({"planned interval", "forecaster", "ground truth"});

  for (double days : {1.0, 2.0, 4.0, 8.0}) {
    core::OfflineOptions offline;
    offline.segment_seconds = setup.segment_seconds;
    offline.train_horizon = setup.train_horizon;
    offline.num_categories = setup.num_categories;
    offline.forecaster.input_span = Days(2);
    offline.forecaster.planned_interval = Days(days);
    auto model = core::RunOfflinePhase(workload, cluster, cost_model, offline);
    if (!model.ok()) {
      std::printf("offline failed: %s\n", model.status().ToString().c_str());
      return;
    }

    // MAE over the full recorded horizon (training + the 8 test days): the
    // 8-day-ahead windows need more history than the test window alone.
    std::vector<size_t> full_seq = core::BuildTrainCategorySequence(
        workload, model->configs, model->categories, setup.segment_seconds,
        setup.test_start + setup.test_duration, /*seed=*/4242);
    std::string mae = "-";
    if (model->forecaster.has_value()) {
      auto result =
          model->forecaster->EvaluateMae(full_seq, setup.segment_seconds);
      if (result.ok()) mae = TablePrinter::Fmt(*result, 3);
    }
    mae_table.AddRow({TablePrinter::Fmt(days, 0), mae});

    // End-to-end with the trained forecaster vs the ground-truth forecast.
    double quality[2] = {0.0, 0.0};
    for (int truth = 0; truth < 2; ++truth) {
      core::EngineOptions run;
      run.duration = setup.test_duration;
      run.plan_interval = Days(days);
      run.cloud_budget_usd_per_interval = cloud_budget * days / 2.0;
      run.use_ground_truth_forecast = truth == 1;
      core::IngestionEngine engine(&workload, &*model, cluster, &cost_model,
                                   run);
      auto result = engine.Run(setup.test_start);
      if (result.ok()) quality[truth] = result->mean_quality;
    }
    e2e_table.AddRow({TablePrinter::Fmt(days, 0) + " days",
                      TablePrinter::Pct(quality[0]),
                      TablePrinter::Pct(quality[1])});
  }
  mae_table.Print(std::cout);
  e2e_table.Print(std::cout);
}

}  // namespace
}  // namespace sky::bench

int main() {
  using namespace sky::bench;
  std::printf("=== Figure 14 / Table 5: planned-interval length ===\n");
  {
    sky::workloads::CovidWorkload covid;
    RunWorkload(covid, CovidSetup(), 3.0);
  }
  {
    sky::workloads::MotWorkload mot;
    RunWorkload(mot, MotSetup(), 2.0);
  }
  std::printf("\n(paper: MAE lowest at 2 days, highest at 8; end-to-end "
              "matches ground truth for 1-4 day horizons and degrades at "
              "8 days)\n");
  return 0;
}
