// §5.1 / Appendix K.2: decode cost. The paper measures 1.6 ms per frame
// (~5% of total processing) for H.264 decode. This bench measures our
// stand-in codec with google-benchmark and verifies the modeled decode
// share of the COVID pipeline.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "video/codec.h"
#include "video/scene.h"
#include "workloads/covid.h"
#include "workloads/udf_costs.h"

namespace {

sky::video::Frame MakeFrame(double density) {
  sky::video::SceneOptions opts;
  opts.seed = 33;
  sky::video::SceneGenerator gen(opts);
  sky::video::Frame frame;
  for (int i = 0; i < 30; ++i) frame = gen.NextFrame(density);
  return frame;
}

void BM_EncodeFrame(benchmark::State& state) {
  sky::video::Frame frame = MakeFrame(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sky::video::BlockRleCodec::Encode(frame));
  }
}
BENCHMARK(BM_EncodeFrame);

void BM_DecodeFrame(benchmark::State& state) {
  sky::video::Frame frame = MakeFrame(0.5);
  std::vector<uint8_t> bytes = sky::video::BlockRleCodec::Encode(frame);
  for (auto _ : state) {
    auto decoded = sky::video::BlockRleCodec::Decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeFrame);

void BM_SceneFrame(benchmark::State& state) {
  sky::video::SceneOptions opts;
  opts.seed = 34;
  sky::video::SceneGenerator gen(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.NextFrame(0.5));
  }
}
BENCHMARK(BM_SceneFrame);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== §5.1 / K.2: decode cost ===\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Modeled decode share of the COVID pipeline (paper: 1.6 ms/frame = ~5%
  // of the total runtime; YOLOv5 86 ms per inference on the same cores).
  sky::workloads::CovidWorkload covid;
  sky::core::KnobConfig mid = {2, 1, 0};  // 10 FPS, det every 5, 1x1 tiles
  double total = covid.CostCoreSecondsPerVideoSecond(mid);
  double decode = 30.0 * sky::workloads::kDecodeCostPerFrame;
  std::printf("\nmodeled COVID pipeline: decode %.1f ms/frame, %.1f%% of "
              "total work at config (10FPS, det=5, 1x1) — paper: 1.6 ms, "
              "~5%%\n",
              sky::workloads::kDecodeCostPerFrame * 1e3,
              100.0 * decode / total);
  return 0;
}
