// Figure 4 + Table 2: end-to-end cost-quality trade-off of Skyscraper,
// Chameleon* and the static baseline on COVID, MOT, MOSEI-HIGH and
// MOSEI-LONG, across the Google Cloud server catalog of §5.3.
//
// Quality is normalized to the most qualitative static configuration (run
// with unlimited hardware); total cost follows Appendix L: VM rent / 1.8
// plus cloud credits.

#include <iostream>
#include <memory>

#include "baselines/chameleon.h"
#include "bench_common.h"
#include "core/engine.h"
#include "util/table.h"
#include "workloads/covid.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"

namespace sky::bench {
namespace {

void RunWorkload(const core::Workload& workload, const ExperimentSetup& setup,
                 double sky_cloud_budget_per_interval) {
  sim::CostModel cost_model(1.8);
  std::vector<StaticEntry> totals = StaticConfigTotals(workload, setup);
  double denom = BestEntry(totals).total_quality;
  double segments = setup.test_duration / setup.segment_seconds;
  (void)segments;

  TablePrinter table(std::string(workload.name()) + " (" +
                     TablePrinter::Fmt(setup.test_duration / Days(1), 0) +
                     " days ingested)");
  table.SetHeader({"method", "quality", "server vCPUs", "cloud $",
                   "total cost"});

  for (const sim::ServerType& server : sim::ServerCatalog()) {
    sim::ClusterSpec cluster;
    cluster.cores = server.vcpus;

    // --- Static ---
    auto st = BestStaticOnServer(workload, setup, totals, cluster,
                                 cost_model);
    if (st.ok()) {
      table.AddRow({"Static", TablePrinter::Pct(st->total_quality / denom, 0),
                    std::to_string(server.vcpus), "-",
                    TablePrinter::Usd(DeploymentCostUsd(
                        server, cost_model, setup.test_duration, 0.0))});
    } else {
      table.AddRow({"Static", "(no real-time config)",
                    std::to_string(server.vcpus), "-", "-"});
    }
  }

  // Offline models are per-server (placement profiles depend on cores).
  for (const sim::ServerType& server : sim::ServerCatalog()) {
    sim::ClusterSpec cluster;
    cluster.cores = server.vcpus;
    auto model = FitOffline(workload, setup, cluster, cost_model,
                            /*train_forecaster=*/false);
    if (!model.ok()) continue;

    // --- Chameleon* : best non-crashing run over its quality-target SLO
    // sweep (the paper only reports setups where it did not crash). ---
    double best_quality = -1.0;
    bool crashed_everywhere = true;
    for (double target : {0.75, 0.85, 0.90, 0.94, 0.97}) {
      baselines::ChameleonOptions copts;
      copts.quality_target = target;
      auto ch = baselines::RunChameleonBaseline(
          workload, model->profiles, cluster, setup.segment_seconds,
          setup.test_duration, setup.test_start, copts);
      if (ch.ok() && !ch->crashed) {
        crashed_everywhere = false;
        best_quality = std::max(best_quality, ch->total_quality);
      }
    }
    if (crashed_everywhere) {
      table.AddRow({"Chameleon*", "(crashed: buffer overflow)",
                    std::to_string(server.vcpus), "-", "-"});
    } else {
      table.AddRow({"Chameleon*", TablePrinter::Pct(best_quality / denom, 0),
                    std::to_string(server.vcpus), "-",
                    TablePrinter::Usd(DeploymentCostUsd(
                        server, cost_model, setup.test_duration, 0.0))});
    }
  }

  for (const sim::ServerType& server : sim::ServerCatalog()) {
    sim::ClusterSpec cluster;
    cluster.cores = server.vcpus;
    auto model = FitOffline(workload, setup, cluster, cost_model);
    if (!model.ok()) continue;

    // --- Skyscraper ---
    core::EngineOptions run;
    run.duration = setup.test_duration;
    run.plan_interval = setup.plan_interval;
    run.cloud_budget_usd_per_interval = sky_cloud_budget_per_interval;
    core::IngestionEngine engine(&workload, &*model, cluster, &cost_model,
                                 run);
    auto result = engine.Run(setup.test_start);
    if (!result.ok()) continue;
    table.AddRow(
        {"Skyscraper", TablePrinter::Pct(result->total_quality / denom, 0),
         std::to_string(server.vcpus),
         TablePrinter::Usd(result->cloud_usd),
         TablePrinter::Usd(DeploymentCostUsd(server, cost_model,
                                             setup.test_duration,
                                             result->cloud_usd))});
  }

  table.Print(std::cout);
}

}  // namespace
}  // namespace sky::bench

int main() {
  using namespace sky::bench;
  std::printf("=== Figure 4 / Table 2: cost-quality trade-offs ===\n");
  {
    sky::workloads::CovidWorkload covid;
    RunWorkload(covid, CovidSetup(), /*cloud budget $/interval=*/3.0);
  }
  {
    sky::workloads::MotWorkload mot;
    RunWorkload(mot, MotSetup(), 2.0);
  }
  {
    sky::workloads::MoseiWorkload high(
        sky::workloads::MoseiWorkload::SpikeKind::kHigh);
    RunWorkload(high, MoseiSetup(), 4.0);
  }
  {
    sky::workloads::MoseiWorkload lng(
        sky::workloads::MoseiWorkload::SpikeKind::kLong);
    RunWorkload(lng, MoseiSetup(), 4.0);
  }
  return 0;
}
