// Forecaster-training throughput: the batched ML backend versus the seed's
// per-sample implementation, at the real forecaster geometry (Appendix K net
// on Appendix H training data). The "train forecast model" step of Table 3
// had two serial hot loops:
//   (1) dataset construction re-scanned every (heavily overlapping) history
//       window — O(samples * window) sequence touches; BuildForecastDataset
//       now builds one prefix-sum and emits each histogram in O(|C|),
//       bitwise identically;
//   (2) FeedForwardNet::Train ran sample-at-a-time forward/backward with
//       per-call allocations; the batched backend runs minibatch GEMMs
//       against a preallocated workspace, fanning fixed-geometry gradient
//       chunks out on the pool.
// This bench times the full training step (dataset + net) for both
// implementations, the net alone for both backends, and the batched net on
// 1..N pool threads — verifying the dataset and the trained weights are
// bit-identical everywhere. Results land in BENCH_forecast_training.json.
// Exit is non-zero when anything diverges or the end-to-end speedup is < 3x.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/forecaster.h"
#include "dag/thread_pool.h"
#include "ml/kernels.h"
#include "ml/nn.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace sky;

/// A synthetic 16-day category sequence with diurnal structure plus bursts —
/// the same statistical shape BuildTrainCategorySequence produces, without
/// paying for a full offline phase here.
std::vector<size_t> SyntheticCategories(double segment_seconds, double days,
                                        size_t num_categories, uint64_t seed) {
  Rng rng(seed);
  size_t n = static_cast<size_t>(Days(days) / segment_seconds);
  std::vector<size_t> seq(n, 0);
  for (size_t i = 0; i < n; ++i) {
    double hour = HourOfDay(static_cast<double>(i) * segment_seconds);
    seq[i] = (hour > 8 && hour < 20) ? 1 : 0;
    if (rng.Bernoulli(0.05)) seq[i] = num_categories - 1;
  }
  return seq;
}

/// The seed implementation of BuildForecastDataset, reconstructed on the
/// public scan-based CategoryHistogram: every row re-scans its windows. The
/// reference oracle for both the wall-clock and the bitwise comparison.
core::ForecastDataset ScanDataset(const std::vector<size_t>& seq,
                                  double segment_seconds, size_t num_cats,
                                  const core::ForecasterOptions& options) {
  size_t in_segs = static_cast<size_t>(options.input_span / segment_seconds);
  size_t out_segs =
      static_cast<size_t>(options.planned_interval / segment_seconds);
  size_t stride = std::max<size_t>(
      1, static_cast<size_t>(options.training_stride / segment_seconds));
  size_t split_len = in_segs / options.input_splits;
  size_t samples = 0;
  for (size_t s = in_segs; s + out_segs <= seq.size(); s += stride) ++samples;
  ml::Matrix X(samples, options.input_splits * num_cats);
  ml::Matrix Y(samples, num_cats);
  for (size_t row = 0; row < samples; ++row) {
    size_t s = in_segs + row * stride;
    for (size_t split = 0; split < options.input_splits; ++split) {
      size_t begin = s - in_segs + split * split_len;
      size_t end = split + 1 == options.input_splits ? s : begin + split_len;
      std::vector<double> hist =
          core::CategoryHistogram(seq, begin, end, num_cats);
      for (size_t c = 0; c < num_cats; ++c) {
        X.At(row, split * num_cats + c) = hist[c];
      }
    }
    Y.SetRow(row, core::CategoryHistogram(seq, s, s + out_segs, num_cats));
  }
  return core::ForecastDataset{std::move(X), std::move(Y)};
}

ml::FeedForwardNet FreshNet(size_t input_dim, size_t num_categories) {
  Rng rng(4096);
  return ml::FeedForwardNet(input_dim, {16, 8}, num_categories,
                            ml::Activation::kSoftmax, &rng);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Forecaster training: batched backend vs per-sample ===\n");

  constexpr size_t kNumCategories = 3;
  constexpr double kSegmentSeconds = 4.0;
  core::ForecasterOptions fopts;  // covid geometry: 2-day span, 8 splits
  fopts.train_options.epochs = 30;
  fopts.train_options.batch_size = 64;
  fopts.train_options.grad_chunk_rows = 8;

  std::vector<size_t> seq =
      SyntheticCategories(kSegmentSeconds, 16.0, kNumCategories, 321);

  // Dataset: seed's window scans vs the prefix-sum build (bitwise equal).
  WallTimer scan_timer;
  core::ForecastDataset scanned =
      ScanDataset(seq, kSegmentSeconds, kNumCategories, fopts);
  double scan_dataset_s = scan_timer.Seconds();
  WallTimer prefix_timer;
  auto data = core::BuildForecastDataset(seq, kSegmentSeconds, kNumCategories,
                                         fopts);
  double prefix_dataset_s = prefix_timer.Seconds();
  if (!data.ok()) {
    std::printf("dataset failed: %s\n", data.status().ToString().c_str());
    return 1;
  }
  bool dataset_identical = scanned.inputs.data() == data->inputs.data() &&
                           scanned.targets.data() == data->targets.data();

  size_t samples = data->inputs.rows();
  size_t train_rows = samples - static_cast<size_t>(std::floor(
                                    fopts.train_options.validation_split *
                                    static_cast<double>(samples)));
  double trained_samples =
      static_cast<double>(train_rows * fopts.train_options.epochs);

  size_t max_threads = BenchThreads(argc, argv);
  BenchJson json("forecast_training");
  json.Set("kernel_backend",
           ml::KernelBackendName(ml::ActiveKernelBackend()));
  json.Set("threads", static_cast<double>(max_threads));
  json.Set("samples", static_cast<double>(samples));
  json.Set("features", static_cast<double>(data->inputs.cols()));
  json.Set("epochs", static_cast<double>(fopts.train_options.epochs));
  json.Set("batch_size", static_cast<double>(fopts.train_options.batch_size));
  json.Set("grad_chunk_rows",
           static_cast<double>(fopts.train_options.grad_chunk_rows));
  json.Set("dataset_scan_s", scan_dataset_s);
  json.Set("dataset_prefix_s", prefix_dataset_s);
  json.Set("dataset_speedup",
           prefix_dataset_s > 0 ? scan_dataset_s / prefix_dataset_s : 0.0);
  json.Set("dataset_identical", dataset_identical ? "yes" : "no");

  auto train_once = [&](ml::TrainBackend backend, dag::ThreadPool* pool,
                        double* wall_s) {
    ml::FeedForwardNet net = FreshNet(data->inputs.cols(), kNumCategories);
    ml::TrainOptions opts = fopts.train_options;
    opts.loss = ml::Loss::kCrossEntropy;
    opts.backend = backend;
    opts.pool = pool;
    WallTimer timer;
    auto report = net.Train(data->inputs, data->targets, opts);
    *wall_s = timer.Seconds();
    if (!report.ok()) {
      std::printf("training failed: %s\n", report.status().ToString().c_str());
      std::exit(1);
    }
    return net.FlattenParameters();
  };

  double per_sample_s = 0.0;
  std::vector<double> ref =
      train_once(ml::TrainBackend::kPerSample, nullptr, &per_sample_s);
  double batched_1t_s = 0.0;
  std::vector<double> batched_1t =
      train_once(ml::TrainBackend::kBatched, nullptr, &batched_1t_s);

  // SIMD vs scalar kernels under the batched backend. The f64 micro-kernels
  // are bitwise-identical to the scalar oracle by contract, so the trained
  // weights must match bit for bit — only wall time may differ.
  ml::KernelBackend active_backend = ml::ActiveKernelBackend();
  double scalar_kernel_s = batched_1t_s;
  bool kernels_bitwise = true;
  bool has_vector_tier = active_backend != ml::KernelBackend::kScalar;
  if (has_vector_tier) {
    if (!ml::SetKernelBackend(ml::KernelBackend::kScalar).ok()) {
      std::printf("FAILED: could not force scalar kernels\n");
      return 1;
    }
    std::vector<double> scalar_weights =
        train_once(ml::TrainBackend::kBatched, nullptr, &scalar_kernel_s);
    if (!ml::SetKernelBackend(active_backend).ok()) {
      std::printf("FAILED: could not restore %s kernels\n",
                  ml::KernelBackendName(active_backend).c_str());
      return 1;
    }
    kernels_bitwise = scalar_weights == batched_1t;
  }
  json.Set("scalar_kernel_net_s", scalar_kernel_s);
  json.Set("simd_kernel_training_speedup",
           batched_1t_s > 0 ? scalar_kernel_s / batched_1t_s : 0.0);
  json.Set("simd_scalar_weights_identical", kernels_bitwise ? "yes" : "no");

  // Parity: batched and per-sample follow the same optimization trajectory;
  // only the kernels' summation association differs.
  double parity = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    parity = std::max(parity, std::abs(ref[i] - batched_1t[i]));
  }
  double net_speedup = batched_1t_s > 0 ? per_sample_s / batched_1t_s : 0.0;
  // The full Table-3 "train forecast model" step: dataset + net training.
  double step_reference_s = scan_dataset_s + per_sample_s;
  double step_batched_s = prefix_dataset_s + batched_1t_s;
  double step_speedup =
      step_batched_s > 0 ? step_reference_s / step_batched_s : 0.0;
  json.Set("per_sample_net_s", per_sample_s);
  json.Set("per_sample_net_samples_per_s", trained_samples / per_sample_s);
  json.Set("batched_net_s_1", batched_1t_s);
  json.Set("batched_net_samples_per_s_1", trained_samples / batched_1t_s);
  json.Set("net_speedup_1t", net_speedup);
  json.Set("training_step_reference_s", step_reference_s);
  json.Set("training_step_batched_s", step_batched_s);
  json.Set("training_step_speedup_1t", step_speedup);
  json.Set("parity_max_abs_diff", parity);

  TablePrinter table("Train-forecast-model step, " + std::to_string(samples) +
                     " samples x " +
                     std::to_string(fopts.train_options.epochs) + " epochs");
  table.SetHeader({"phase", "reference", "batched (1t)", "speedup"});
  table.AddRow({"dataset (16 d of 4 s segments)",
                TablePrinter::Fmt(scan_dataset_s, 3) + " s",
                TablePrinter::Fmt(prefix_dataset_s, 4) + " s",
                TablePrinter::Fmt(prefix_dataset_s > 0
                                      ? scan_dataset_s / prefix_dataset_s
                                      : 0.0,
                                  0) +
                    "x"});
  table.AddRow({"net training",
                TablePrinter::Fmt(per_sample_s, 3) + " s",
                TablePrinter::Fmt(batched_1t_s, 3) + " s",
                TablePrinter::Fmt(net_speedup, 1) + "x"});
  if (has_vector_tier) {
    table.AddRow({"net training (scalar kernels)",
                  TablePrinter::Fmt(scalar_kernel_s, 3) + " s",
                  TablePrinter::Fmt(batched_1t_s, 3) + " s (" +
                      ml::KernelBackendName(active_backend) + ")",
                  TablePrinter::Fmt(batched_1t_s > 0
                                        ? scalar_kernel_s / batched_1t_s
                                        : 0.0,
                                    2) +
                      "x"});
  }
  table.AddRow({"whole step",
                TablePrinter::Fmt(step_reference_s, 3) + " s",
                TablePrinter::Fmt(step_batched_s, 3) + " s",
                TablePrinter::Fmt(step_speedup, 1) + "x"});
  table.Print(std::cout);

  // Thread scaling: the chunk geometry is fixed, so every pool size must
  // reproduce the single-thread weights bit for bit.
  bool identical = true;
  std::vector<size_t> thread_counts;
  for (size_t t = 2; t < max_threads; t *= 2) thread_counts.push_back(t);
  if (max_threads > 1) thread_counts.push_back(max_threads);
  for (size_t t : thread_counts) {
    dag::ThreadPool pool(t);
    double wall = 0.0;
    std::vector<double> params =
        train_once(ml::TrainBackend::kBatched, &pool, &wall);
    identical = identical && params == batched_1t;
    std::string tag = std::to_string(t);
    json.Set("batched_net_s_" + tag, wall);
    json.Set("batched_net_samples_per_s_" + tag, trained_samples / wall);
    json.Set("thread_speedup_" + tag, batched_1t_s / wall);
    std::printf("batched net on %zu pool threads: %.3f s (%.2fx vs 1 "
                "thread)\n",
                t, wall, batched_1t_s / wall);
  }
  json.Set("models_identical", identical ? "yes" : "no");
  std::printf("\ndataset %s; batched vs per-sample max |dw| = %.3g; weights "
              "%s across thread counts\n",
              dataset_identical ? "bit-identical" : "DIFFERS (bug!)", parity,
              identical ? "bit-identical" : "DIFFER (bug!)");

  std::string path = json.Write();
  if (!path.empty()) std::printf("metrics written to %s\n", path.c_str());
  if (!dataset_identical) {
    std::printf("FAILED: prefix-sum dataset differs from scanned dataset\n");
    return 1;
  }
  if (!identical) {
    std::printf("FAILED: thread counts changed the trained model\n");
    return 1;
  }
  if (parity > 1e-6) {
    std::printf("FAILED: batched/per-sample parity drift above 1e-6\n");
    return 1;
  }
  if (!kernels_bitwise) {
    std::printf("FAILED: SIMD kernels changed the trained weights\n");
    return 1;
  }
  if (step_speedup < 3.0) {
    std::printf("FAILED: training-step speedup below 3x\n");
    return 1;
  }
  return 0;
}
