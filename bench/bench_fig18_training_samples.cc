// Figure 18 (Appendix E): forecaster MAE versus the number of training
// samples. The paper generated 1200 samples from 16 days of video in 1.3 h
// and found that ~700 samples already saturate accuracy.

#include <iostream>

#include "bench_common.h"
#include "core/offline.h"
#include "util/table.h"
#include "workloads/covid.h"

int main() {
  using namespace sky;
  using namespace sky::bench;
  std::printf("=== Figure 18: forecast MAE vs training samples ===\n");

  workloads::CovidWorkload covid;
  ExperimentSetup setup = CovidSetup();
  sim::ClusterSpec cluster;
  cluster.cores = 8;
  sim::CostModel cost_model(1.8);

  // One offline pass for configs/categories; the forecaster is retrained
  // below with varying amounts of data.
  auto model = FitOffline(covid, setup, cluster, cost_model,
                          /*train_forecaster=*/false);
  if (!model.ok()) {
    std::printf("offline failed: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::vector<size_t> train_seq = model->train_category_sequence;
  std::vector<size_t> test_seq = core::BuildTrainCategorySequence(
      covid, model->configs, model->categories, setup.segment_seconds,
      setup.test_start + setup.test_duration, /*seed=*/4242);
  test_seq.erase(test_seq.begin(),
                 test_seq.begin() +
                     static_cast<int64_t>(setup.test_start /
                                          setup.segment_seconds));

  TablePrinter table("COVID forecaster (2-day horizon)");
  table.SetHeader({"training samples", "MAE (held-out 8 d)"});

  for (size_t target_samples : {50, 100, 200, 400, 700, 1200}) {
    core::ForecasterOptions opts;
    opts.input_span = Days(2);
    opts.planned_interval = Days(2);
    // Adjust the stride so the available history yields ~target samples.
    size_t in_segs = static_cast<size_t>(opts.input_span /
                                         setup.segment_seconds);
    size_t out_segs = static_cast<size_t>(opts.planned_interval /
                                          setup.segment_seconds);
    size_t usable = train_seq.size() - in_segs - out_segs;
    opts.training_stride =
        std::max(1.0, static_cast<double>(usable) /
                          static_cast<double>(target_samples)) *
        setup.segment_seconds;
    auto forecaster =
        core::Forecaster::Train(train_seq, setup.segment_seconds,
                                setup.num_categories, opts);
    if (!forecaster.ok()) {
      table.AddRow({std::to_string(target_samples), "-"});
      continue;
    }
    auto mae = forecaster->EvaluateMae(test_seq, setup.segment_seconds);
    table.AddRow({std::to_string(target_samples),
                  mae.ok() ? TablePrinter::Fmt(*mae, 3) : "-"});
  }
  table.Print(std::cout);
  std::printf("\n(paper: the MAE flattens around ~700 samples; training "
              "with fewer samples cuts the offline phase by 35%%)\n");
  return 0;
}
