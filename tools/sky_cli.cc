// sky — the Skyscraper command-line deployment tool.
//
// Splits the paper's two phases into two processes, so the expensive offline
// fit (§3, Table 3) is paid once and every serving process starts warm:
//
//   # Terminal 1: train once, persist the model.
//   sky offline --workload covid --out model.bin
//
//   # Terminal 2 (later, or on another machine): serve from the saved model.
//   sky ingest --model model.bin --workload covid --duration-days 2
//
// The saved file is the versioned chunked binary of docs/model_format.md;
// `sky ingest` from a loaded model is bitwise-identical to ingesting right
// after Fit() in one process (gated by tests/model_io_test.cc). A third
// subcommand, `sky inspect`, prints a saved model's summary without running
// anything.
//
// Hardware provisioning (--cores, --cloud-budget, --buffer-gb) must match
// between the two phases: the model's placement profiles describe the
// cluster they were profiled on (the provisioning is deliberately NOT part
// of the model file — the same reason you pass the same --workload).
//
// Exit codes (scriptable: every failure is one line on stderr, nothing on
// stdout):
//   0  success
//   1  any other runtime failure
//   2  usage error (unknown flag/subcommand/workload, missing required flag)
//   3  I/O failure (model file missing or unreadable, save failed)
//   4  corrupt model file (bad magic/version/checksum/layout)
//   5  model/workload mismatch (the file is fine, but trained for a
//      different job than --workload)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "api/skyscraper.h"
#include "io/model_io.h"
#include "util/sim_time.h"
#include "workloads/covid.h"
#include "workloads/ev_counting.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"

namespace {

using sky::Days;
using sky::Status;

int Usage() {
  std::fprintf(stderr, R"(usage: sky <subcommand> [flags]

subcommands:
  offline   run the offline phase and save the trained model (train once)
  ingest    load a saved model and ingest a stream (serve many)
  inspect   print a saved model's summary

common flags:
  --workload NAME   ev | covid | mot | mosei-high | mosei-long  (default ev)
  --cores N         on-premise cluster cores                    (default 8)
  --cloud-budget D  cloud credits (USD) per plan interval       (default 0)
  --buffer-gb G     video buffer capacity, GiB                  (default 4)

offline flags:
  --out PATH            where to write the model            (required)
  --segment-seconds S   knob-switcher period                (default 4)
  --train-days D        unlabeled training horizon          (default 16)
  --plan-days D         forecast span / planned interval    (default 2)
  --categories C        content categories                  (default 4)
  --threads N           offline worker threads, 0 = all     (default 0)
  --seed S              offline RNG seed                    (default 81)

ingest flags:
  --model PATH          model saved by `sky offline`        (required)
  --start-days D        ingest start (default: the model's train horizon)
  --duration-days D     how much stream to ingest           (default 1)
  --plan-interval-days D  knob-planner period (default: the span the
                          model's forecaster was trained for)
  --seed S              engine noise seed                   (default 71)
  --precision f64|f32   boundary-forecast inference arithmetic (default f64;
                        f32 uses the SIMD reduced-precision path, see
                        docs/precision.md)

inspect flags:
  --model PATH          model file to describe              (required)
)");
  return 2;
}

struct Flags {
  std::string workload = "ev";
  int cores = 8;
  double cloud_budget = 0.0;
  double buffer_gb = 4.0;
  std::string out;
  std::string model;
  double segment_seconds = 4.0;
  double train_days = 16.0;
  double plan_days = 2.0;
  size_t categories = 4;
  size_t threads = 0;
  uint64_t offline_seed = 81;
  double start_days = -1.0;  ///< -1 = derive from the loaded model
  double duration_days = 1.0;
  double plan_interval_days = -1.0;  ///< -1 = derive from the loaded model
  uint64_t engine_seed = 71;
  std::string precision = "f64";  ///< boundary-forecast inference precision
};

/// Parses "--flag value" / "--flag=value" pairs; returns false on an unknown
/// flag or a missing value.
bool ParseFlags(int argc, char** argv, Flags* f) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "sky: flag %s needs a value\n", arg.c_str());
      return false;
    }
    if (arg == "--workload") f->workload = value;
    else if (arg == "--cores") f->cores = std::atoi(value.c_str());
    else if (arg == "--cloud-budget") f->cloud_budget = std::atof(value.c_str());
    else if (arg == "--buffer-gb") f->buffer_gb = std::atof(value.c_str());
    else if (arg == "--out") f->out = value;
    else if (arg == "--model") f->model = value;
    else if (arg == "--segment-seconds") f->segment_seconds = std::atof(value.c_str());
    else if (arg == "--train-days") f->train_days = std::atof(value.c_str());
    else if (arg == "--plan-days") f->plan_days = std::atof(value.c_str());
    else if (arg == "--categories") f->categories = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--threads") f->threads = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--seed") { f->offline_seed = std::strtoull(value.c_str(), nullptr, 10); f->engine_seed = f->offline_seed; }
    else if (arg == "--start-days") f->start_days = std::atof(value.c_str());
    else if (arg == "--duration-days") f->duration_days = std::atof(value.c_str());
    else if (arg == "--plan-interval-days") f->plan_interval_days = std::atof(value.c_str());
    else if (arg == "--precision") f->precision = value;
    else {
      std::fprintf(stderr, "sky: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<sky::core::Workload> MakeWorkload(const std::string& name) {
  using namespace sky::workloads;
  if (name == "ev") return std::make_unique<EvCountingWorkload>();
  if (name == "covid") return std::make_unique<CovidWorkload>();
  if (name == "mot") return std::make_unique<MotWorkload>();
  if (name == "mosei-high") {
    return std::make_unique<MoseiWorkload>(MoseiWorkload::SpikeKind::kHigh);
  }
  if (name == "mosei-long") {
    return std::make_unique<MoseiWorkload>(MoseiWorkload::SpikeKind::kLong);
  }
  return nullptr;
}

sky::api::Resources MakeResources(const Flags& f) {
  sky::api::Resources res;
  res.cores = f.cores;
  res.buffer_bytes = static_cast<uint64_t>(f.buffer_gb * (1ull << 30));
  res.cloud_budget_usd_per_interval = f.cloud_budget;
  return res;
}

/// Maps a failure Status onto the documented exit codes: the scripting
/// contract is "the exit code tells you WHAT went wrong, stderr tells you
/// where". I/O-level failures surface as kNotFound (missing file) or
/// kInternal (read/write error); a file that exists but does not parse is
/// kInvalidArgument; a parseable model for the wrong job is
/// kFailedPrecondition.
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case sky::StatusCode::kNotFound:
    case sky::StatusCode::kInternal:
      return 3;
    case sky::StatusCode::kInvalidArgument:
      return 4;
    case sky::StatusCode::kFailedPrecondition:
      return 5;
    default:
      return 1;
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "sky: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

int RunOffline(const Flags& f) {
  if (f.out.empty()) {
    std::fprintf(stderr, "sky offline: --out is required\n");
    return 2;
  }
  auto workload = MakeWorkload(f.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "sky: unknown workload '%s'\n", f.workload.c_str());
    return 2;
  }

  sky::api::Skyscraper sky(workload.get());
  sky.SetResources(MakeResources(f));

  sky::core::OfflineOptions opts;
  opts.segment_seconds = f.segment_seconds;
  opts.train_horizon = Days(f.train_days);
  opts.num_categories = f.categories;
  opts.forecaster.input_span = Days(f.plan_days);
  opts.forecaster.planned_interval = Days(f.plan_days);
  opts.num_threads = f.threads;
  opts.seed = f.offline_seed;

  std::printf("sky offline: fitting %s (%.1f-day horizon, %.0f s segments, "
              "%zu categories, %d cores)...\n",
              workload->name().c_str(), f.train_days, f.segment_seconds,
              f.categories, f.cores);
  Status fit = sky.Fit(opts);
  if (!fit.ok()) return Fail(fit);

  auto model = sky.model();
  if (!model.ok()) return Fail(model.status());
  const auto& rt = (*model)->step_runtimes;
  std::printf("  filter configs %.2fs | placements %.2fs | categories %.2fs "
              "| forecast data %.2fs | training %.2fs\n",
              rt.filter_configs_s, rt.filter_placements_s,
              rt.content_categories_s, rt.forecast_training_data_s,
              rt.forecast_training_s);

  Status saved = sky.SaveModel(f.out, workload->name());
  if (!saved.ok()) return Fail(saved);
  std::printf("sky offline: saved %zu configs, %zu categories, "
              "%zu-segment training sequence -> %s\n",
              (*model)->configs.size(), (*model)->categories.NumCategories(),
              (*model)->train_category_sequence.size(), f.out.c_str());
  return 0;
}

int RunIngest(const Flags& f) {
  if (f.model.empty()) {
    std::fprintf(stderr, "sky ingest: --model is required\n");
    return 2;
  }
  auto workload = MakeWorkload(f.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "sky: unknown workload '%s'\n", f.workload.c_str());
    return 2;
  }

  sky::api::Skyscraper sky(workload.get());
  sky.SetResources(MakeResources(f));

  // The annotation check refuses a model trained for another workload —
  // the quality tables would be silently wrong otherwise.
  Status loaded = sky.LoadModel(f.model, workload->name());
  if (!loaded.ok()) return Fail(loaded);
  auto model = sky.model();
  if (!model.ok()) return Fail(model.status());

  double start_days =
      f.start_days >= 0.0 ? f.start_days : (*model)->train_horizon / 86400.0;
  // Plan at the cadence the forecaster was trained to predict unless the
  // caller overrides it — a 1-day-forecast model planning every 2 days
  // would silently degrade.
  double plan_interval_days = f.plan_interval_days;
  if (plan_interval_days <= 0.0) {
    plan_interval_days =
        (*model)->forecaster.has_value()
            ? (*model)->forecaster->options().planned_interval / 86400.0
            : 2.0;
  }
  sky::core::EngineOptions opts;
  opts.duration = Days(f.duration_days);
  opts.plan_interval = Days(plan_interval_days);
  opts.seed = f.engine_seed;
  if (f.precision == "f32") {
    opts.forecast_precision = sky::ml::Precision::kF32;
  } else if (f.precision != "f64") {
    std::fprintf(stderr, "sky: --precision must be f64 or f32, got %s\n",
                 f.precision.c_str());
    return 2;
  }

  auto result = sky.Ingest(Days(start_days), opts);
  if (!result.ok()) return Fail(result.status());

  // All output after the run succeeds: a failing invocation writes exactly
  // one line to stderr and nothing to stdout (the exit-code contract above).
  std::printf("sky ingest: %s from %s (day %.1f, %.1f days, plan every "
              "%.1f days, %d cores, $%.2f cloud/interval)\n",
              workload->name().c_str(), f.model.c_str(), start_days,
              f.duration_days, plan_interval_days, f.cores, f.cloud_budget);
  std::printf("  segments          %zu\n", result->segments);
  std::printf("  mean quality      %.4f\n", result->mean_quality);
  std::printf("  work              %.1f core-s (%.1f on-prem)\n",
              result->work_core_seconds, result->onprem_core_seconds);
  std::printf("  cloud spend       $%.3f\n", result->cloud_usd);
  std::printf("  buffer high water %.1f MiB (%zu overflows)\n",
              static_cast<double>(result->buffer_high_water_bytes) /
                  (1 << 20),
              result->overflow_events);
  std::printf("  config switches   %zu (%zu degraded)\n",
              result->switch_count, result->degraded_count);
  std::printf("  misclassified     %.2f%% (A: %zu, B: %zu)\n",
              100.0 * result->MisclassificationRate(), result->type_a_errors,
              result->type_b_errors);
  return 0;
}

int RunInspect(const Flags& f) {
  if (f.model.empty()) {
    std::fprintf(stderr, "sky inspect: --model is required\n");
    return 2;
  }
  std::string annotation;
  auto model = sky::io::LoadOfflineModel(f.model, &annotation);
  if (!model.ok()) return Fail(model.status());

  std::printf("%s: Skyscraper model (format v%u)\n", f.model.c_str(),
              sky::io::kModelFormatVersion);
  std::printf("  workload annotation  %s\n",
              annotation.empty() ? "(none)" : annotation.c_str());
  std::printf("  knob configurations  %zu\n", model->configs.size());
  size_t placements = 0;
  for (const auto& p : model->profiles) placements += p.placements.size();
  std::printf("  placement profiles   %zu (%zu Pareto placements)\n",
              model->profiles.size(), placements);
  std::printf("  content categories   %zu (%s backend)\n",
              model->categories.NumCategories(),
              model->categories.backend() ==
                      sky::core::CategorizerBackend::kKMeans
                  ? "k-means"
                  : "GMM");
  std::printf("  training sequence    %zu segments of %.0f s (%.1f days)\n",
              model->train_category_sequence.size(), model->segment_seconds,
              model->train_horizon / 86400.0);
  if (model->forecaster.has_value()) {
    std::printf("  forecaster           %zu parameters, best val loss %.4f "
                "(epoch %zu)\n",
                model->forecaster->ModelParameters().size(),
                model->forecaster->train_report().best_val_loss,
                model->forecaster->train_report().best_epoch);
  } else {
    std::printf("  forecaster           (not trained)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  Flags flags;
  if (!ParseFlags(argc - 2, argv + 2, &flags)) return 2;
  if (cmd == "offline") return RunOffline(flags);
  if (cmd == "ingest") return RunIngest(flags);
  if (cmd == "inspect") return RunInspect(flags);
  return Usage();
}
