// sky — the Skyscraper command-line deployment tool.
//
// Splits the paper's two phases into separate processes, so the expensive
// offline fit (§3, Table 3) is paid once and every serving process starts
// warm:
//
//   # Terminal 1: train once, persist the model.
//   sky offline --workload covid --out model.bin
//
//   # Terminal 2 (later, or on another machine): serve from the saved model.
//   sky ingest --model model.bin --workload covid --duration-days 2
//
//   # Or run a long-lived multi-tenant server and feed it sessions:
//   sky serve --model model.bin --workload covid --shared-budget 6 &
//   sky client open --port $PORT --duration-days 1 --wait
//
// The saved file is the versioned chunked binary of docs/model_format.md;
// `sky ingest` from a loaded model is bitwise-identical to ingesting right
// after Fit() in one process (gated by tests/model_io_test.cc), and a served
// session is bitwise-identical to the same job on an in-process StreamSet
// (gated by tests/serve_test.cc). `sky inspect` prints a saved model's
// summary without running anything.
//
// Hardware provisioning (--cores, --cloud-budget, --buffer-gb) must match
// between the phases: the model's placement profiles describe the cluster
// they were profiled on (the provisioning is deliberately NOT part of the
// model file — the same reason you pass the same --workload).
//
// Exit codes (scriptable: every failure is one line on stderr, nothing on
// stdout):
//   0  success
//   1  any other runtime failure (includes an admission rejection)
//   2  usage error (unknown flag/subcommand/workload, missing required flag)
//   3  I/O failure (model file missing or unreadable, save failed)
//   4  corrupt model file (bad magic/version/checksum/layout)
//   5  model/workload mismatch (the file is fine, but trained for a
//      different job than --workload)
//
// Every subcommand also answers `--help` on stdout with exit code 0.

#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "api/skyscraper.h"
#include "api/workload_registry.h"
#include "io/model_io.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/sim_time.h"

namespace {

using sky::Days;
using sky::Status;

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

int Usage() {
  std::fprintf(stderr, R"(usage: sky <subcommand> [flags]

subcommands:
  offline   run the offline phase and save the trained model (train once)
  ingest    load a saved model and ingest a stream (serve many)
  inspect   print a saved model's summary
  serve     long-running multi-tenant ingestion server (docs/serving.md)
  client    talk to a running `sky serve` (open/metrics/reconfigure/...)

run `sky <subcommand> --help` for that subcommand's flags.
)");
  return 2;
}

// Per-subcommand usage texts. --help prints these on STDOUT and exits 0;
// usage ERRORS print them on stderr and exit 2.
constexpr const char kOfflineHelp[] =
    R"(usage: sky offline --out PATH [flags]

  --out PATH            where to write the model            (required)
  --workload NAME       ev | covid | mot | mosei-high | mosei-long |
                        flash-crowd | drift | fleet         (default ev)
  --cores N             on-premise cluster cores            (default 8)
  --cloud-budget D      cloud credits (USD) per plan interval (default 0)
  --buffer-gb G         video buffer capacity, GiB          (default 4)
  --segment-seconds S   knob-switcher period                (default 4)
  --train-days D        unlabeled training horizon          (default 16)
  --plan-days D         forecast span / planned interval    (default 2)
  --categories C        content categories                  (default 4)
  --search B            placement search backend:
                        enumerate | greedy | anneal         (default enumerate)
  --search-evals N      greedy/anneal simulation budget     (default 512)
  --search-budget-ms M  derive the budget from wall-clock instead (anneal /
                        greedy only; run-to-run variable — fix --search-evals
                        for bitwise replay)
  --threads N           offline worker threads, 0 = all     (default 0)
  --seed S              offline RNG seed                    (default 81)
)";

constexpr const char kIngestHelp[] =
    R"(usage: sky ingest --model PATH [flags]

  --model PATH            model saved by `sky offline`      (required)
  --workload NAME         must match the model's annotation (default ev)
  --cores N / --cloud-budget D / --buffer-gb G   provisioning (as trained)
  --start-days D          ingest start (default: the model's train horizon)
  --duration-days D       how much stream to ingest         (default 1)
  --plan-interval-days D  knob-planner period (default: the span the model's
                          forecaster was trained for)
  --seed S                engine noise seed                 (default 71)
  --precision f64|f32     boundary-forecast inference arithmetic (default
                          f64; f32 is the SIMD path, see docs/precision.md)
)";

constexpr const char kInspectHelp[] =
    R"(usage: sky inspect --model PATH

  --model PATH          model file to describe              (required)
)";

constexpr const char kServeHelp[] =
    R"(usage: sky serve --model PATH [flags]

Runs the multi-tenant ingestion server on 127.0.0.1 (docs/serving.md): N
client sessions multiplex onto one jointly planned StreamSet under a pooled
budget. SIGINT/SIGTERM drain gracefully: the fleet stops at its next plan
boundary, writes a final checkpoint, and every session resumes bitwise
under --recover.

  --model PATH          model saved by `sky offline`        (required)
  --workload NAME       the workload the model serves       (default ev)
  --cores N / --cloud-budget D / --buffer-gb G   per-stream provisioning
  --port N              TCP port; 0 picks an ephemeral port (default 0)
  --port-file PATH      write the bound port here (scripting ephemeral ports)
  --shared-budget B     pooled planning budget, core-s per video-s; > 0 also
                        arms admission control               (default 0: derive)
  --max-sessions N      hard cap on live sessions, 0 = none (default 0)
  --start-after N       hold the virtual clock until N sessions joined
  --checkpoint PATH     serve checkpoint file (periodic + final)
  --checkpoint-every K  checkpoint every K plan boundaries  (default 1)
  --max-restarts R      supervised restarts per stream      (default 0)
  --recover PATH        resume every session from this serve checkpoint
)";

constexpr const char kClientHelp[] =
    R"(usage: sky client <verb> --port N [flags]

verbs:
  open         open a stream session (admitted at the next plan boundary)
  fetch        block for a session's final result and print it
  metrics      print the server's JSON metrics document
  reconfigure  change one session's knobs at the next plan boundary
  set-budget   change the fleet-wide pooled budget at the next plan boundary
  close        retire a running session at the next plan boundary
  drain        checkpoint at the next boundary and shut the server down

common flags:
  --port N              the server's port                   (required)

open flags:
  --workload NAME         must match the served workload    (default ev)
  --content-seed S        camera identity (distinct seeds = distinct streams)
  --start-days D          session start (default: model train horizon)
  --duration-days D       session length                    (default 1)
  --plan-interval-days D  plan cadence (default: the model's forecast span)
  --seed S                engine noise seed                 (default 71)
  --precision f64|f32     boundary-forecast arithmetic      (default f64)
  --record-trace          record the Fig. 3 time series
  --trace-resolution-s S  trace sample spacing              (default 300)
  --cloud-budget D        per-interval cloud credits override
  --work-budget B         pure work budget override, core-s per video-s
  --wait                  block for the final result and print it

fetch flags:
  --session ID            session to fetch (works across --recover: ids are
                          stable in the serve checkpoint)   (required)

reconfigure flags:
  --session ID            session to reconfigure            (required)
  --cloud-budget D        new per-interval cloud credits
  --work-budget B         new pure work budget (0 returns to cores+cloud)

set-budget flags:
  --budget B              new pooled budget; <= 0 derives from streams

close flags:
  --session ID            session to retire                 (required)
)";

struct Flags {
  std::string workload = "ev";
  int cores = 8;
  double cloud_budget = 0.0;
  bool cloud_budget_set = false;
  double buffer_gb = 4.0;
  std::string out;
  std::string model;
  double segment_seconds = 4.0;
  double train_days = 16.0;
  double plan_days = 2.0;
  size_t categories = 4;
  std::string search = "enumerate";
  size_t search_evals = 512;
  double search_budget_ms = 0.0;
  size_t threads = 0;
  uint64_t offline_seed = 81;
  double start_days = -1.0;  ///< -1 = derive from the loaded model
  double duration_days = 1.0;
  double plan_interval_days = -1.0;  ///< -1 = derive from the loaded model
  uint64_t engine_seed = 71;
  std::string precision = "f64";  ///< boundary-forecast inference precision
  bool help = false;

  // serve flags
  int port = 0;
  std::string port_file;
  double shared_budget = 0.0;
  size_t max_sessions = 0;
  size_t start_after = 0;
  std::string checkpoint;
  size_t checkpoint_every = 1;
  size_t max_restarts = 0;
  std::string recover;

  // client flags
  std::optional<uint64_t> content_seed;
  bool record_trace = false;
  double trace_resolution_s = 300.0;
  bool wait = false;
  uint64_t session = 0;
  bool session_set = false;
  double budget = 0.0;
  double work_budget = 0.0;
  bool work_budget_set = false;
};

/// Parses "--flag value" / "--flag=value" pairs (boolean flags take no
/// value); returns false on an unknown flag or a missing value.
bool ParseFlags(int argc, char** argv, Flags* f) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    // Boolean flags first: they never consume the next argument.
    if (arg == "--help" || arg == "-h") { f->help = true; continue; }
    if (arg == "--record-trace") { f->record_trace = true; continue; }
    if (arg == "--wait") { f->wait = true; continue; }

    std::string value;
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "sky: flag %s needs a value\n", arg.c_str());
      return false;
    }
    if (arg == "--workload") f->workload = value;
    else if (arg == "--cores") f->cores = std::atoi(value.c_str());
    else if (arg == "--cloud-budget") { f->cloud_budget = std::atof(value.c_str()); f->cloud_budget_set = true; }
    else if (arg == "--buffer-gb") f->buffer_gb = std::atof(value.c_str());
    else if (arg == "--out") f->out = value;
    else if (arg == "--model") f->model = value;
    else if (arg == "--segment-seconds") f->segment_seconds = std::atof(value.c_str());
    else if (arg == "--train-days") f->train_days = std::atof(value.c_str());
    else if (arg == "--plan-days") f->plan_days = std::atof(value.c_str());
    else if (arg == "--categories") f->categories = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--search") f->search = value;
    else if (arg == "--search-evals") f->search_evals = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--search-budget-ms") f->search_budget_ms = std::atof(value.c_str());
    else if (arg == "--threads") f->threads = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--seed") { f->offline_seed = std::strtoull(value.c_str(), nullptr, 10); f->engine_seed = f->offline_seed; }
    else if (arg == "--start-days") f->start_days = std::atof(value.c_str());
    else if (arg == "--duration-days") f->duration_days = std::atof(value.c_str());
    else if (arg == "--plan-interval-days") f->plan_interval_days = std::atof(value.c_str());
    else if (arg == "--precision") f->precision = value;
    else if (arg == "--port") f->port = std::atoi(value.c_str());
    else if (arg == "--port-file") f->port_file = value;
    else if (arg == "--shared-budget") f->shared_budget = std::atof(value.c_str());
    else if (arg == "--max-sessions") f->max_sessions = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--start-after") f->start_after = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--checkpoint") f->checkpoint = value;
    else if (arg == "--checkpoint-every") f->checkpoint_every = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--max-restarts") f->max_restarts = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--recover") f->recover = value;
    else if (arg == "--content-seed") f->content_seed = std::strtoull(value.c_str(), nullptr, 10);
    else if (arg == "--trace-resolution-s") f->trace_resolution_s = std::atof(value.c_str());
    else if (arg == "--session") { f->session = std::strtoull(value.c_str(), nullptr, 10); f->session_set = true; }
    else if (arg == "--budget") f->budget = std::atof(value.c_str());
    else if (arg == "--work-budget") { f->work_budget = std::atof(value.c_str()); f->work_budget_set = true; }
    else {
      std::fprintf(stderr, "sky: unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

sky::api::Resources MakeResources(const Flags& f) {
  sky::api::Resources res;
  res.cores = f.cores;
  res.buffer_bytes = static_cast<uint64_t>(f.buffer_gb * (1ull << 30));
  res.cloud_budget_usd_per_interval = f.cloud_budget;
  return res;
}

/// Maps a failure Status onto the documented exit codes: the scripting
/// contract is "the exit code tells you WHAT went wrong, stderr tells you
/// where". I/O-level failures surface as kNotFound (missing file) or
/// kInternal (read/write error); a file that exists but does not parse is
/// kInvalidArgument; a parseable model for the wrong job is
/// kFailedPrecondition.
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case sky::StatusCode::kNotFound:
    case sky::StatusCode::kInternal:
      return 3;
    case sky::StatusCode::kInvalidArgument:
      return 4;
    case sky::StatusCode::kFailedPrecondition:
      return 5;
    default:
      return 1;
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "sky: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

int HelpOut(const char* text) {
  std::printf("%s", text);
  return 0;
}

int RunOffline(const Flags& f) {
  if (f.help) return HelpOut(kOfflineHelp);
  if (f.out.empty()) {
    std::fprintf(stderr, "sky offline: --out is required\n");
    return 2;
  }
  auto workload = sky::api::MakeWorkloadByName(f.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "sky: unknown workload '%s'\n", f.workload.c_str());
    return 2;
  }

  sky::api::Skyscraper sky(workload.get());
  sky.SetResources(MakeResources(f));

  sky::core::OfflineOptions opts;
  opts.segment_seconds = f.segment_seconds;
  opts.train_horizon = Days(f.train_days);
  opts.num_categories = f.categories;
  opts.forecaster.input_span = Days(f.plan_days);
  opts.forecaster.planned_interval = Days(f.plan_days);
  opts.num_threads = f.threads;
  opts.seed = f.offline_seed;
  if (f.search == "greedy") {
    opts.placement_search.backend = sky::core::SearchBackend::kGreedy;
  } else if (f.search == "anneal") {
    opts.placement_search.backend = sky::core::SearchBackend::kAnneal;
  } else if (f.search != "enumerate") {
    std::fprintf(stderr, "sky offline: unknown --search backend '%s'\n",
                 f.search.c_str());
    return 2;
  }
  opts.placement_search.eval_budget = f.search_evals;
  opts.placement_search.budget_ms = f.search_budget_ms;

  std::printf("sky offline: fitting %s (%.1f-day horizon, %.0f s segments, "
              "%zu categories, %d cores)...\n",
              workload->name().c_str(), f.train_days, f.segment_seconds,
              f.categories, f.cores);
  Status fit = sky.Fit(opts);
  if (!fit.ok()) return Fail(fit);

  auto model = sky.model();
  if (!model.ok()) return Fail(model.status());
  const auto& rt = (*model)->step_runtimes;
  std::printf("  filter configs %.2fs | placements %.2fs | categories %.2fs "
              "| forecast data %.2fs | training %.2fs\n",
              rt.filter_configs_s, rt.filter_placements_s,
              rt.content_categories_s, rt.forecast_training_data_s,
              rt.forecast_training_s);

  Status saved = sky.SaveModel(f.out, workload->name());
  if (!saved.ok()) return Fail(saved);
  std::printf("sky offline: saved %zu configs, %zu categories, "
              "%zu-segment training sequence -> %s\n",
              (*model)->configs.size(), (*model)->categories.NumCategories(),
              (*model)->train_category_sequence.size(), f.out.c_str());
  return 0;
}

int RunIngest(const Flags& f) {
  if (f.help) return HelpOut(kIngestHelp);
  if (f.model.empty()) {
    std::fprintf(stderr, "sky ingest: --model is required\n");
    return 2;
  }
  auto workload = sky::api::MakeWorkloadByName(f.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "sky: unknown workload '%s'\n", f.workload.c_str());
    return 2;
  }

  sky::api::Skyscraper sky(workload.get());
  sky.SetResources(MakeResources(f));

  // The annotation check refuses a model trained for another workload —
  // the quality tables would be silently wrong otherwise.
  Status loaded = sky.LoadModel(f.model, workload->name());
  if (!loaded.ok()) return Fail(loaded);
  auto model = sky.model();
  if (!model.ok()) return Fail(model.status());

  double start_days =
      f.start_days >= 0.0 ? f.start_days : (*model)->train_horizon / 86400.0;
  // Plan at the cadence the forecaster was trained to predict unless the
  // caller overrides it — a 1-day-forecast model planning every 2 days
  // would silently degrade.
  double plan_interval_days = f.plan_interval_days;
  if (plan_interval_days <= 0.0) {
    plan_interval_days =
        (*model)->forecaster.has_value()
            ? (*model)->forecaster->options().planned_interval / 86400.0
            : 2.0;
  }
  sky::core::EngineOptions opts;
  opts.duration = Days(f.duration_days);
  opts.plan_interval = Days(plan_interval_days);
  opts.seed = f.engine_seed;
  if (f.precision == "f32") {
    opts.forecast_precision = sky::ml::Precision::kF32;
  } else if (f.precision != "f64") {
    std::fprintf(stderr, "sky: --precision must be f64 or f32, got %s\n",
                 f.precision.c_str());
    return 2;
  }

  auto result = sky.Ingest(Days(start_days), opts);
  if (!result.ok()) return Fail(result.status());

  // All output after the run succeeds: a failing invocation writes exactly
  // one line to stderr and nothing to stdout (the exit-code contract above).
  std::printf("sky ingest: %s from %s (day %.1f, %.1f days, plan every "
              "%.1f days, %d cores, $%.2f cloud/interval)\n",
              workload->name().c_str(), f.model.c_str(), start_days,
              f.duration_days, plan_interval_days, f.cores, f.cloud_budget);
  std::printf("  segments          %zu\n", result->segments);
  std::printf("  mean quality      %.4f\n", result->mean_quality);
  std::printf("  work              %.1f core-s (%.1f on-prem)\n",
              result->work_core_seconds, result->onprem_core_seconds);
  std::printf("  cloud spend       $%.3f\n", result->cloud_usd);
  std::printf("  buffer high water %.1f MiB (%zu overflows)\n",
              static_cast<double>(result->buffer_high_water_bytes) /
                  (1 << 20),
              result->overflow_events);
  std::printf("  config switches   %zu (%zu degraded)\n",
              result->switch_count, result->degraded_count);
  std::printf("  misclassified     %.2f%% (A: %zu, B: %zu)\n",
              100.0 * result->MisclassificationRate(), result->type_a_errors,
              result->type_b_errors);
  return 0;
}

int RunInspect(const Flags& f) {
  if (f.help) return HelpOut(kInspectHelp);
  if (f.model.empty()) {
    std::fprintf(stderr, "sky inspect: --model is required\n");
    return 2;
  }
  std::string annotation;
  auto model = sky::io::LoadOfflineModel(f.model, &annotation);
  if (!model.ok()) return Fail(model.status());

  std::printf("%s: Skyscraper model (format v%u)\n", f.model.c_str(),
              sky::io::kModelFormatVersion);
  std::printf("  workload annotation  %s\n",
              annotation.empty() ? "(none)" : annotation.c_str());
  std::printf("  knob configurations  %zu\n", model->configs.size());
  size_t placements = 0;
  for (const auto& p : model->profiles) placements += p.placements.size();
  std::printf("  placement profiles   %zu (%zu Pareto placements)\n",
              model->profiles.size(), placements);
  std::printf("  content categories   %zu (%s backend)\n",
              model->categories.NumCategories(),
              model->categories.backend() ==
                      sky::core::CategorizerBackend::kKMeans
                  ? "k-means"
                  : "GMM");
  std::printf("  training sequence    %zu segments of %.0f s (%.1f days)\n",
              model->train_category_sequence.size(), model->segment_seconds,
              model->train_horizon / 86400.0);
  if (model->forecaster.has_value()) {
    std::printf("  forecaster           %zu parameters, best val loss %.4f "
                "(epoch %zu)\n",
                model->forecaster->ModelParameters().size(),
                model->forecaster->train_report().best_val_loss,
                model->forecaster->train_report().best_epoch);
  } else {
    std::printf("  forecaster           (not trained)\n");
  }
  return 0;
}

int RunServe(const Flags& f) {
  if (f.help) return HelpOut(kServeHelp);
  if (f.model.empty()) {
    std::fprintf(stderr, "sky serve: --model is required\n");
    return 2;
  }

  sky::serve::ServerOptions opts;
  opts.port = f.port;
  opts.model_path = f.model;
  opts.workload = f.workload;
  opts.resources = MakeResources(f);
  opts.shared_budget_core_s_per_video_s = f.shared_budget;
  opts.max_sessions = f.max_sessions;
  opts.start_after_sessions = f.start_after;
  opts.checkpoint_path = f.checkpoint;
  opts.checkpoint_every_boundaries = f.checkpoint_every;
  opts.max_stream_restarts = f.max_restarts;
  opts.recover_path = f.recover;

  auto server = sky::serve::Server::Start(std::move(opts));
  if (!server.ok()) return Fail(server.status());

  if (!f.port_file.empty()) {
    std::FILE* pf = std::fopen(f.port_file.c_str(), "w");
    if (pf == nullptr) {
      return Fail(Status::Internal("cannot write port file " + f.port_file));
    }
    std::fprintf(pf, "%d\n", (*server)->port());
    std::fclose(pf);
  }
  std::printf("sky serve: listening on 127.0.0.1:%d\n", (*server)->port());
  std::fflush(stdout);

  // SIGINT/SIGTERM -> graceful drain: the handler only flips a flag (a
  // condvar notify is not async-signal-safe); this loop turns it into a
  // drain request, and the fleet thread checkpoints at its next boundary.
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!(*server)->finished()) {
    if (g_signal) {
      g_signal = 0;
      (*server)->RequestDrain();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Status st = (*server)->Wait();
  if (!st.ok()) return Fail(st);
  std::printf("sky serve: drained\n");
  return 0;
}

void PrintResult(uint64_t id, const sky::core::EngineResult& r) {
  std::printf("sky client: session %llu finished\n",
              static_cast<unsigned long long>(id));
  std::printf("  segments          %zu\n", r.segments);
  std::printf("  mean quality      %.4f\n", r.mean_quality);
  std::printf("  work              %.1f core-s (%.1f on-prem)\n",
              r.work_core_seconds, r.onprem_core_seconds);
  std::printf("  cloud spend       $%.3f\n", r.cloud_usd);
  std::printf("  result fnv1a      %016llx\n",
              static_cast<unsigned long long>(
                  sky::serve::ResultFingerprint(r)));
}

int RunClient(const std::string& verb, const Flags& f) {
  if (f.help) return HelpOut(kClientHelp);
  // Usage errors (unknown verb, missing port) are decided before touching
  // the network, so they exit 2 even with no server around.
  static const char* kVerbs[] = {"open",       "fetch", "metrics",
                                 "reconfigure", "set-budget", "close",
                                 "drain"};
  bool known = false;
  for (const char* v : kVerbs) known = known || verb == v;
  if (!known) {
    std::fprintf(stderr, "sky client: unknown verb '%s'\n%s", verb.c_str(),
                 kClientHelp);
    return 2;
  }
  if (f.port <= 0) {
    std::fprintf(stderr, "sky client: --port is required\n");
    return 2;
  }
  auto client = sky::serve::Client::Connect(f.port);
  if (!client.ok()) return Fail(client.status());

  if (verb == "open") {
    sky::serve::SessionSpec spec;
    spec.workload = f.workload;
    spec.content_seed = f.content_seed;
    spec.start_days = f.start_days;
    spec.duration_days = f.duration_days;
    spec.plan_interval_days = f.plan_interval_days;
    spec.engine_seed = f.engine_seed;
    spec.record_trace = f.record_trace;
    spec.trace_resolution_s = f.trace_resolution_s;
    if (f.precision == "f32") {
      spec.f32_forecast = true;
    } else if (f.precision != "f64") {
      std::fprintf(stderr, "sky: --precision must be f64 or f32, got %s\n",
                   f.precision.c_str());
      return 2;
    }
    if (f.cloud_budget_set) {
      spec.cloud_budget_usd_per_interval = f.cloud_budget;
    }
    if (f.work_budget_set) spec.work_budget_override = f.work_budget;

    auto opened = client->OpenSession(spec);
    if (!opened.ok()) return Fail(opened.status());
    std::printf("sky client: session %llu opened (stream %llu)\n",
                static_cast<unsigned long long>(opened->first),
                static_cast<unsigned long long>(opened->second));
    if (!f.wait) return 0;
    std::fflush(stdout);
    auto result = client->FetchResult(opened->first);
    if (!result.ok()) return Fail(result.status());
    PrintResult(opened->first, *result);
    return 0;
  }

  if (verb == "fetch") {
    if (!f.session_set) {
      std::fprintf(stderr, "sky client fetch: --session is required\n");
      return 2;
    }
    auto result = client->FetchResult(f.session);
    if (!result.ok()) return Fail(result.status());
    PrintResult(f.session, *result);
    return 0;
  }

  if (verb == "metrics") {
    auto json = client->Metrics();
    if (!json.ok()) return Fail(json.status());
    std::printf("%s", json->c_str());
    return 0;
  }

  if (verb == "reconfigure") {
    if (!f.session_set) {
      std::fprintf(stderr, "sky client reconfigure: --session is required\n");
      return 2;
    }
    sky::core::StreamReconfig changes;
    if (f.cloud_budget_set) {
      changes.cloud_budget_usd_per_interval = f.cloud_budget;
    }
    if (f.work_budget_set) changes.work_budget_override = f.work_budget;
    Status s = client->Reconfigure(f.session, changes);
    if (!s.ok()) return Fail(s);
    std::printf("sky client: session %llu reconfigured (next boundary)\n",
                static_cast<unsigned long long>(f.session));
    return 0;
  }

  if (verb == "set-budget") {
    Status s = client->SetSharedBudget(f.budget);
    if (!s.ok()) return Fail(s);
    std::printf("sky client: shared budget set to %.6f (next boundary)\n",
                f.budget);
    return 0;
  }

  if (verb == "close") {
    if (!f.session_set) {
      std::fprintf(stderr, "sky client close: --session is required\n");
      return 2;
    }
    Status s = client->CloseSession(f.session);
    if (!s.ok()) return Fail(s);
    std::printf("sky client: session %llu closed\n",
                static_cast<unsigned long long>(f.session));
    return 0;
  }

  if (verb == "drain") {
    Status s = client->Drain();
    if (!s.ok()) return Fail(s);
    std::printf("sky client: server draining\n");
    return 0;
  }

  std::fprintf(stderr, "sky client: unknown verb '%s'\n%s", verb.c_str(),
               kClientHelp);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  Flags flags;

  if (cmd == "client") {
    // `sky client --help` (no verb) must still answer.
    if (argc >= 3 && argv[2][0] != '-') {
      std::string verb = argv[2];
      if (!ParseFlags(argc - 3, argv + 3, &flags)) return 2;
      return RunClient(verb, flags);
    }
    if (!ParseFlags(argc - 2, argv + 2, &flags)) return 2;
    if (flags.help) return HelpOut(kClientHelp);
    std::fprintf(stderr, "sky client: a verb is required\n%s", kClientHelp);
    return 2;
  }

  if (!ParseFlags(argc - 2, argv + 2, &flags)) return 2;
  if (cmd == "offline") return RunOffline(flags);
  if (cmd == "ingest") return RunIngest(flags);
  if (cmd == "inspect") return RunInspect(flags);
  if (cmd == "serve") return RunServe(flags);
  if (cmd == "--help" || cmd == "-h") {
    Usage();
    return 0;
  }
  return Usage();
}
