#include "util/rng.h"

#include <algorithm>
#include <sstream>

namespace sky {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int64_t Rng::Poisson(double mean) {
  std::poisson_distribution<int64_t> dist(mean);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

double Rng::Exponential(double rate) {
  std::exponential_distribution<double> dist(rate);
  return dist(engine_);
}

std::string Rng::SaveState() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

Status Rng::LoadState(const std::string& state) {
  std::istringstream is(state);
  std::mt19937_64 restored;
  is >> restored;
  if (is.fail()) {
    return Status::InvalidArgument("malformed rng state");
  }
  engine_ = restored;
  return Status::Ok();
}

Rng Rng::Fork(std::string_view tag) const {
  // FNV-1a over the tag, mixed with a snapshot of the parent engine state.
  uint64_t h = 1469598103934665603ULL;
  for (char c : tag) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  std::mt19937_64 copy = engine_;
  uint64_t salt = copy();
  return Rng(h ^ (salt * 0x9E3779B97F4A7C15ULL));
}

Rng Rng::ForkIndex(uint64_t index) const {
  std::mt19937_64 copy = engine_;
  uint64_t salt = copy();
  // splitmix64 finalizer over (state snapshot, index).
  uint64_t z = salt ^ (index + 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace sky
