#ifndef SKYSCRAPER_UTIL_RESULT_H_
#define SKYSCRAPER_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace sky {

/// Either a value of type T or an error Status. Library functions that can
/// fail and produce a value return Result<T>; the caller must check ok()
/// before dereferencing.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (error path).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `alternative` if this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sky

/// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define SKY_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define SKY_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define SKY_ASSIGN_OR_RETURN_CONCAT(x, y) SKY_ASSIGN_OR_RETURN_CONCAT_(x, y)
#define SKY_ASSIGN_OR_RETURN(lhs, rexpr) \
  SKY_ASSIGN_OR_RETURN_IMPL(             \
      SKY_ASSIGN_OR_RETURN_CONCAT(_sky_result_, __LINE__), lhs, rexpr)

#endif  // SKYSCRAPER_UTIL_RESULT_H_
