#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace sky {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::abs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

std::vector<double> NormalizeHistogram(std::vector<double> h) {
  double s = 0.0;
  for (double x : h) s += x;
  if (s <= 0.0) {
    if (h.empty()) return h;
    double u = 1.0 / static_cast<double>(h.size());
    for (double& x : h) x = u;
    return h;
  }
  for (double& x : h) x /= s;
  return h;
}

}  // namespace sky
