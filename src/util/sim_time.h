#ifndef SKYSCRAPER_UTIL_SIM_TIME_H_
#define SKYSCRAPER_UTIL_SIM_TIME_H_

#include <cmath>

namespace sky {

/// Simulated time is a double holding seconds since the start of the
/// experiment. End-to-end experiments advance a virtual clock; nothing in the
/// library sleeps on wall-clock time.
using SimTime = double;

constexpr SimTime Seconds(double s) { return s; }
constexpr SimTime Minutes(double m) { return m * 60.0; }
constexpr SimTime Hours(double h) { return h * 3600.0; }
constexpr SimTime Days(double d) { return d * 86400.0; }

/// Seconds into the current (simulated) day, in [0, 86400).
inline double TimeOfDay(SimTime t) {
  double d = std::fmod(t, 86400.0);
  return d < 0 ? d + 86400.0 : d;
}

/// Fractional hour of day in [0, 24).
inline double HourOfDay(SimTime t) { return TimeOfDay(t) / 3600.0; }

}  // namespace sky

#endif  // SKYSCRAPER_UTIL_SIM_TIME_H_
