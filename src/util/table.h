#ifndef SKYSCRAPER_UTIL_TABLE_H_
#define SKYSCRAPER_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace sky {

/// Aligned plain-text table printer used by the benchmark harness so that
/// every bench binary emits the same rows/series the paper reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 3);
  /// Formats as a percentage ("93.1%").
  static std::string Pct(double fraction, int precision = 1);
  /// Formats as dollars ("$14.90").
  static std::string Usd(double dollars, int precision = 2);

  void Print(std::ostream& os) const;
  std::string ToCsv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sky

#endif  // SKYSCRAPER_UTIL_TABLE_H_
