#ifndef SKYSCRAPER_UTIL_STATUS_H_
#define SKYSCRAPER_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace sky {

/// Error categories used across the library. Modeled after the Arrow /
/// RocksDB status idiom: library functions never throw across module
/// boundaries; they return a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,  ///< e.g. video buffer overflow, budget exhausted
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the OK case (no allocation);
/// error states carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  /// Returns an OK status. Prefer this over the default constructor for
  /// readability at return sites.
  static Status Ok() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  const std::string& message() const;

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps the success path allocation-free on copy.
  std::shared_ptr<const State> state_;
};

}  // namespace sky

/// Propagates a non-OK Status to the caller.
#define SKY_RETURN_NOT_OK(expr)               \
  do {                                        \
    ::sky::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (false)

#endif  // SKYSCRAPER_UTIL_STATUS_H_
