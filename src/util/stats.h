#ifndef SKYSCRAPER_UTIL_STATS_H_
#define SKYSCRAPER_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace sky {

/// Arithmetic mean; returns 0 for an empty input.
double Mean(const std::vector<double>& xs);

/// Population variance; returns 0 for inputs with fewer than 2 elements.
double Variance(const std::vector<double>& xs);

/// Mean absolute error between two equally sized vectors.
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Linear-interpolated percentile, p in [0, 100].
double Percentile(std::vector<double> xs, double p);

/// Streaming accumulator for mean / min / max / variance (Welford).
class OnlineStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Normalizes a non-negative vector to sum to 1. A zero vector becomes
/// uniform. Used for content-category histograms throughout the system.
std::vector<double> NormalizeHistogram(std::vector<double> h);

}  // namespace sky

#endif  // SKYSCRAPER_UTIL_STATS_H_
