#include "util/status.h"

namespace sky {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  return state_ == nullptr ? kEmptyString : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace sky
