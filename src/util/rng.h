#ifndef SKYSCRAPER_UTIL_RNG_H_
#define SKYSCRAPER_UTIL_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sky {

/// Deterministic random number generator. Every stochastic component in the
/// library takes a seed (or an Rng) explicitly so that experiments are
/// reproducible run-to-run; nothing reads global entropy.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Poisson with the given mean.
  int64_t Poisson(double mean);

  /// Bernoulli trial.
  bool Bernoulli(double p);

  /// Exponential with the given rate (lambda).
  double Exponential(double rate);

  /// Derives an independent child stream. Forking with the same tag from the
  /// same parent state yields the same stream, which keeps sub-components
  /// reproducible independent of call ordering elsewhere.
  Rng Fork(std::string_view tag) const;

  /// Derives the `index`-th child stream without advancing this generator.
  /// The backbone of deterministic parallelism: a loop that forks one child
  /// per iteration index draws the same values no matter how many threads
  /// execute the iterations or in which order.
  Rng ForkIndex(uint64_t index) const;

  /// Exact textual snapshot of the generator state (the mt19937_64 stream
  /// representation). Feeding it back through LoadState resumes the draw
  /// sequence bitwise — the basis of checkpoint/restore determinism.
  std::string SaveState() const;

  /// Restores a state produced by SaveState. kInvalidArgument if the text
  /// does not parse as a valid engine state (generator left unchanged).
  Status LoadState(const std::string& state);

  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sky

#endif  // SKYSCRAPER_UTIL_RNG_H_
