#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace sky {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::Pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string TablePrinter::Usd(double dollars, int precision) {
  std::ostringstream os;
  os << "$" << std::fixed << std::setprecision(precision) << dollars;
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths;
  auto account = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  account(header_);
  for (const auto& r : rows_) account(r);

  os << "\n== " << title_ << " ==\n";
  auto print_row = [&os, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    print_row(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) print_row(r);
  os.flush();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace sky
