#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "api/workload_registry.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace sky::serve {

namespace {

constexpr int kAcceptPollMs = 200;
constexpr auto kQueueWaitMs = std::chrono::milliseconds(50);

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  shared_budget_ = options_.shared_budget_core_s_per_video_s;
}

Server::~Server() {
  stop_.store(true);
  queue_cv_.notify_all();
  registry_.BeginDrain();
  Wait();
}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  // make_unique needs a public ctor; the factory keeps construction staged
  // (bind + recover before any thread exists) so Init failures are clean.
  std::unique_ptr<Server> server(new Server(std::move(options)));
  SKY_RETURN_NOT_OK(server->Init());
  server->started_at_ = std::chrono::steady_clock::now();
  server->fleet_thread_ = std::thread([s = server.get()] { s->FleetLoop(); });
  server->listen_thread_ = std::thread([s = server.get()] { s->ListenLoop(); });
  return server;
}

Status Server::Init() {
  base_workload_ = api::MakeWorkloadByName(options_.workload);
  if (base_workload_ == nullptr) {
    return Status::InvalidArgument("unknown workload '" + options_.workload +
                                   "'");
  }
  base_facade_ = std::make_unique<api::Skyscraper>(base_workload_.get());
  base_facade_->SetResources(options_.resources);
  SKY_RETURN_NOT_OK(
      base_facade_->LoadModel(options_.model_path, base_workload_->name()));

  if (!options_.recover_path.empty()) {
    SKY_RETURN_NOT_OK(RecoverFromServeCheckpoint());
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  return Status::Ok();
}

Result<core::StreamEngineJob> Server::BuildJob(const SessionSpec& spec,
                                               StreamTenant* tenant) const {
  if (spec.workload != options_.workload) {
    return Status::NotFound("this server serves workload '" +
                            options_.workload + "', not '" + spec.workload +
                            "'");
  }
  if (spec.duration_days <= 0.0) {
    return Status::InvalidArgument("session duration must be positive");
  }
  tenant->workload =
      api::MakeWorkloadByName(spec.workload, spec.content_seed);
  if (tenant->workload == nullptr) {
    return Status::InvalidArgument("unknown workload '" + spec.workload +
                                   "'");
  }
  tenant->facade = std::make_unique<api::Skyscraper>(tenant->workload.get());
  tenant->facade->SetResources(options_.resources);
  SKY_RETURN_NOT_OK(tenant->facade->LoadModel(options_.model_path,
                                              tenant->workload->name()));
  auto model = tenant->facade->model();
  if (!model.ok()) return model.status();

  // Spec defaults resolve exactly like the matching `sky ingest` flags.
  double start_days = spec.start_days >= 0.0
                          ? spec.start_days
                          : (*model)->train_horizon / 86400.0;
  double plan_days = spec.plan_interval_days;
  if (plan_days <= 0.0) {
    plan_days = (*model)->forecaster.has_value()
                    ? (*model)->forecaster->options().planned_interval /
                          86400.0
                    : 2.0;
  }

  core::EngineOptions opts;
  opts.duration = Days(spec.duration_days);
  opts.plan_interval = Days(plan_days);
  opts.seed = spec.engine_seed;
  opts.record_trace = spec.record_trace;
  opts.trace_resolution_s = spec.trace_resolution_s;
  if (spec.f32_forecast) opts.forecast_precision = ml::Precision::kF32;
  if (spec.cloud_budget_usd_per_interval.has_value()) {
    opts.cloud_budget_usd_per_interval = *spec.cloud_budget_usd_per_interval;
  }
  opts.work_budget_override = spec.work_budget_override;
  return tenant->facade->MakeStreamJob(Days(start_days), opts);
}

double Server::NewcomerCheapestCost() const {
  auto model = base_facade_->model();
  if (!model.ok()) return 0.0;
  double cheapest = 0.0;
  bool first = true;
  for (const auto& p : (*model)->profiles) {
    if (first || p.work_core_s_per_video_s < cheapest) {
      cheapest = p.work_core_s_per_video_s;
      first = false;
    }
  }
  return cheapest;
}

Status Server::RecoverFromServeCheckpoint() {
  auto loaded = LoadServeCheckpoint(options_.recover_path);
  if (!loaded.ok()) return loaded.status();
  ServeCheckpoint& ckpt = *loaded;

  auto fleet_ckpt = io::ParseFleetCheckpoint(ckpt.fleet_bytes);
  if (!fleet_ckpt.ok()) return fleet_ckpt.status();

  // Rebuild jobs slot-parallel to the checkpointed fleet: running sessions
  // get their exact original simulation back (spec-recorded workload, seeds,
  // knobs); every other slot — finished, failed, removed, or rejected — gets
  // a null job, whose Create-time error status is overwritten by the
  // checkpoint's recorded per-slot status.
  std::vector<core::StreamEngineJob> jobs(fleet_ckpt->streams.size());
  tenants_.clear();
  tenants_.resize(fleet_ckpt->streams.size());
  for (SessionRecord& rec : ckpt.sessions) {
    if (rec.state == SessionState::kRunning) {
      if (rec.stream_index >= jobs.size()) {
        return Status::InvalidArgument(
            "serve checkpoint: session stream index out of fleet range");
      }
      StreamTenant tenant;
      auto job = BuildJob(rec.spec, &tenant);
      if (!job.ok()) return job.status();
      jobs[rec.stream_index] = *job;
      tenants_[rec.stream_index] = std::move(tenant);
    }
    registry_.Restore(rec);
  }

  sessions_accepted_ = ckpt.sessions_accepted;
  sessions_rejected_ = ckpt.sessions_rejected;
  shared_budget_ = ckpt.shared_budget_core_s_per_video_s;

  core::StreamSetOptions set_opts;
  set_opts.planning = core::MultiStreamPlanning::kJoint;
  set_opts.shared_budget_core_s_per_video_s = shared_budget_;
  set_opts.max_stream_restarts = options_.max_stream_restarts;
  auto fleet = core::StreamSet::RecoverFromCheckpoint(std::move(jobs),
                                                      *fleet_ckpt, set_opts);
  if (!fleet.ok()) return fleet.status();
  fleet_ = std::make_unique<core::StreamSet>(std::move(*fleet));
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Fleet thread.

void Server::FleetLoop() {
  Status terminal;
  for (;;) {
    if (stop_.load()) break;

    // Harvest BEFORE the idle check: the step that finishes the last stream
    // flips fleet Done, and without this the loop would park without ever
    // publishing that stream's result to its waiting client.
    HarvestFinished();

    std::vector<std::unique_ptr<Command>> cmds;
    bool drain_now = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      bool holding = sessions_accepted_ < options_.start_after_sessions;
      bool can_step =
          fleet_ != nullptr && !fleet_->Done() && !holding;
      if (queue_.empty() && !drain_requested_ && !can_step) {
        queue_cv_.wait_for(lock, kQueueWaitMs);
        continue;
      }
      while (!queue_.empty()) {
        cmds.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      drain_now = drain_requested_;
    }

    // Membership / knob commands and drain land only in the lockstep
    // boundary window; metrics are answered wherever the clock stands.
    bool at_boundary = fleet_ == nullptr || fleet_->AtLockstepBoundary();
    std::vector<std::unique_ptr<Command>> deferred;
    for (auto& cmd : cmds) {
      if (cmd->kind == Command::Kind::kMetrics) {
        cmd->reply.set_value(CollectMetricsJson());
      } else if (at_boundary) {
        ServiceBoundaryCommand(cmd.get());
      } else {
        deferred.push_back(std::move(cmd));
      }
    }
    if (!deferred.empty()) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      // Put deferred commands back in arrival order ahead of newcomers.
      for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
        queue_.push_front(std::move(*it));
      }
    }

    if (drain_now && at_boundary) {
      if (!options_.checkpoint_path.empty()) {
        terminal = WriteServeCheckpoint();
      }
      break;
    }

    bool holding = sessions_accepted_ < options_.start_after_sessions;
    if (holding || fleet_ == nullptr || fleet_->Done()) continue;

    // The serve checkpoint is taken at the boundary BEFORE its plan is
    // installed (Step plans then advances), so a recovered server replays
    // the boundary deterministically.
    if (at_boundary && options_.checkpoint_every_boundaries > 0 &&
        !options_.checkpoint_path.empty()) {
      ++boundaries_seen_;
      if (boundaries_seen_ % options_.checkpoint_every_boundaries == 0) {
        // Periodic checkpoint failures never fail the run (same contract as
        // StreamSet auto-checkpoints); the final drain checkpoint does.
        last_checkpoint_status_ = WriteServeCheckpoint();
      }
    }

    Status step = fleet_->Step();
    if (!step.ok()) {
      terminal = step;
      break;
    }
  }

  HarvestFinished();
  registry_.BeginDrain();
  {
    // Close the queue and fail any commands still in it — their connections
    // would hang forever otherwise.
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
    for (auto& cmd : queue_) {
      cmd->reply.set_value(
          Status::FailedPrecondition("server is shutting down"));
    }
    queue_.clear();
  }
  fleet_status_ = terminal;
  finished_.store(true);
}

Result<std::string> Server::Dispatch(std::unique_ptr<Command> cmd) {
  auto reply = cmd->reply.get_future();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    // queue_closed_ flips under this mutex in the fleet loop's epilogue, so
    // a command either lands before the final queue sweep or is refused
    // here — it can never be enqueued past it and hang its connection.
    if (queue_closed_) {
      return Status::FailedPrecondition("server is shutting down");
    }
    // Setting the drain flag under the same lock as the push guarantees the
    // fleet loop observes the command and the flag together, so the kDrain
    // ack is always delivered before the loop exits.
    if (cmd->kind == Command::Kind::kDrain) drain_requested_ = true;
    queue_.push_back(std::move(cmd));
  }
  queue_cv_.notify_all();
  return reply.get();
}

void Server::HarvestFinished() {
  if (fleet_ == nullptr) return;
  for (const SessionRecord& rec : registry_.Snapshot()) {
    if (rec.state != SessionState::kRunning) continue;
    size_t v = static_cast<size_t>(rec.stream_index);
    if (v >= fleet_->num_streams()) continue;
    const core::IngestionEngine* engine = fleet_->engine(v);
    const Status& status = fleet_->stream_status(v);
    if (engine != nullptr && status.ok() && engine->Done()) {
      core::EngineResult result = engine->partial_result();
      // Done/failed slots are removable at any clock position by contract.
      Status removed = fleet_->RemoveStream(v);
      (void)removed;
      tenants_[v] = StreamTenant{};
      registry_.MarkDone(rec.id, std::move(result));
    } else if (!status.ok()) {
      Status error = status;
      Status removed = fleet_->RemoveStream(v);
      (void)removed;
      tenants_[v] = StreamTenant{};
      registry_.MarkFailed(rec.id, error);
    }
  }
}

Result<std::string> Server::Admit(const SessionSpec& spec) {
  if (options_.max_sessions > 0 &&
      registry_.active_count() >= options_.max_sessions) {
    ++sessions_rejected_;
    return Status::ResourceExhausted("session cap reached");
  }
  // The joint planner's feasibility threshold, checked before the stream
  // ever joins: all-cheapest fleet cost plus the newcomer's cheapest config
  // must fit the pooled budget, or the next boundary would be infeasible.
  if (shared_budget_ > 0.0 && fleet_ != nullptr) {
    double projected =
        fleet_->CheapestFleetCostCoreSPerVideoS() + NewcomerCheapestCost();
    if (projected > shared_budget_) {
      ++sessions_rejected_;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "admission rejected: all-cheapest fleet cost %.6f "
                    "core-s/video-s would exceed the shared budget %.6f",
                    projected, shared_budget_);
      return Status::ResourceExhausted(buf);
    }
  }

  StreamTenant tenant;
  auto job = BuildJob(spec, &tenant);
  if (!job.ok()) {
    ++sessions_rejected_;
    return job.status();
  }

  if (fleet_ == nullptr) {
    core::StreamSetOptions set_opts;
    set_opts.planning = core::MultiStreamPlanning::kJoint;
    set_opts.shared_budget_core_s_per_video_s = shared_budget_;
    set_opts.max_stream_restarts = options_.max_stream_restarts;
    auto fleet = core::StreamSet::Create({}, set_opts);
    if (!fleet.ok()) {
      ++sessions_rejected_;
      return fleet.status();
    }
    fleet_ = std::make_unique<core::StreamSet>(std::move(*fleet));
  }

  auto slot = fleet_->AddStream(*job);
  if (!slot.ok()) {
    ++sessions_rejected_;
    return slot.status();
  }
  tenants_.resize(std::max(tenants_.size(), *slot + 1));
  tenants_[*slot] = std::move(tenant);
  uint64_t id = registry_.Add(spec, *slot);
  ++sessions_accepted_;
  queue_cv_.notify_all();  // may release a start_after_sessions hold

  std::string payload;
  io::wire::PutU64(&payload, id);
  io::wire::PutU64(&payload, *slot);
  return payload;
}

void Server::ServiceBoundaryCommand(Command* cmd) {
  switch (cmd->kind) {
    case Command::Kind::kOpen:
      cmd->reply.set_value(Admit(cmd->spec));
      return;
    case Command::Kind::kClose: {
      auto slot = registry_.StreamIndexOf(cmd->session_id);
      if (!slot.ok()) {
        cmd->reply.set_value(slot.status());
        return;
      }
      Status removed = fleet_->RemoveStream(*slot);
      if (!removed.ok()) {
        cmd->reply.set_value(removed);
        return;
      }
      tenants_[*slot] = StreamTenant{};
      registry_.MarkFailed(
          cmd->session_id,
          Status::FailedPrecondition("session closed by client request"));
      cmd->reply.set_value(std::string());
      return;
    }
    case Command::Kind::kReconfig: {
      auto slot = registry_.StreamIndexOf(cmd->session_id);
      if (!slot.ok()) {
        cmd->reply.set_value(slot.status());
        return;
      }
      Status applied = fleet_->ReconfigureStream(*slot, cmd->reconfig);
      if (!applied.ok()) {
        cmd->reply.set_value(applied);
        return;
      }
      cmd->reply.set_value(std::string());
      return;
    }
    case Command::Kind::kSetBudget:
      shared_budget_ = cmd->budget;
      if (fleet_ != nullptr) fleet_->set_shared_budget(cmd->budget);
      cmd->reply.set_value(std::string());
      return;
    case Command::Kind::kDrain:
      // The flag was already set when the command was enqueued; the reply
      // acknowledges that the drain boundary has been reached. The final
      // checkpoint is written right after this command is serviced, before
      // the fleet loop exits — a client that wants a durable handoff should
      // still wait for the process to exit (the CLI does).
      cmd->reply.set_value(std::string());
      return;
    case Command::Kind::kMetrics:
      cmd->reply.set_value(CollectMetricsJson());
      return;
  }
}

std::string Server::CollectMetricsJson() {
  ServerMetrics m;
  m.uptime_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             started_at_)
                   .count();
  m.sessions_accepted = sessions_accepted_;
  m.sessions_rejected = sessions_rejected_;
  m.sessions = registry_.Snapshot();
  for (const SessionRecord& rec : m.sessions) {
    switch (rec.state) {
      case SessionState::kRunning: ++m.sessions_running; break;
      case SessionState::kDone: ++m.sessions_done; break;
      case SessionState::kFailed: ++m.sessions_failed; break;
    }
  }
  m.shared_budget_core_s_per_video_s = shared_budget_;
  if (fleet_ != nullptr) {
    const std::vector<double>& ms = fleet_->boundary_latencies_ms();
    m.boundaries_planned = ms.size();
    m.boundary_p50_ms = Percentile(ms, 50.0);
    m.boundary_p99_ms = Percentile(ms, 99.0);
    m.cheapest_fleet_cost_core_s_per_video_s =
        fleet_->CheapestFleetCostCoreSPerVideoS();
    m.fleet_restarts = fleet_->total_restarts();
  }
  return RenderMetricsJson(m);
}

Status Server::WriteServeCheckpoint() {
  ServeCheckpoint ckpt;
  ckpt.sessions = registry_.Snapshot();
  for (const SessionRecord& rec : ckpt.sessions) {
    ckpt.next_session_id = std::max(ckpt.next_session_id, rec.id + 1);
  }
  ckpt.sessions_accepted = sessions_accepted_;
  ckpt.sessions_rejected = sessions_rejected_;
  ckpt.shared_budget_core_s_per_video_s = shared_budget_;
  if (fleet_ != nullptr) {
    io::FleetCheckpoint fleet_ckpt;
    SKY_RETURN_NOT_OK(fleet_->CaptureCheckpoint(&fleet_ckpt));
    SKY_RETURN_NOT_OK(
        io::SerializeFleetCheckpoint(fleet_ckpt, &ckpt.fleet_bytes));
  } else {
    // An empty fleet still checkpoints (counters + terminal sessions):
    // serialize a zero-stream fleet so recovery has valid bytes to parse.
    SKY_RETURN_NOT_OK(
        io::SerializeFleetCheckpoint(io::FleetCheckpoint{}, &ckpt.fleet_bytes));
  }
  return SaveServeCheckpoint(ckpt, options_.checkpoint_path);
}

// ---------------------------------------------------------------------------
// Network threads.

void Server::ListenLoop() {
  for (;;) {
    if (stop_.load() || finished_.load()) break;
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { Connection(fd); });
  }
}

void Server::Connection(int fd) {
  for (;;) {
    Frame request;
    Status read = ReadFrame(fd, &request);
    if (!read.ok()) break;  // hangup or corruption: drop the connection
    auto [type, payload] = HandleRequest(request);
    if (!WriteFrame(fd, type, payload).ok()) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  // The fd itself is closed in Wait(), which owns conn_fds_.
}

std::pair<FrameType, std::string> Server::HandleRequest(
    const Frame& request) {
  auto error = [](const Status& s) {
    std::string payload;
    AppendError(s, &payload);
    return std::make_pair(FrameType::kError, std::move(payload));
  };

  switch (request.type) {
    case FrameType::kHello: {
      io::wire::Cursor c(request.payload.data(), request.payload.size());
      uint32_t version = 0;
      Status s = c.ReadU32(&version);
      if (!s.ok()) return error(s);
      if (version != kProtocolVersion) {
        return error(Status::InvalidArgument(
            "protocol version mismatch: server speaks version " +
            std::to_string(kProtocolVersion)));
      }
      std::string payload;
      io::wire::PutU32(&payload, kProtocolVersion);
      return {FrameType::kHelloOk, std::move(payload)};
    }

    case FrameType::kOpenSession: {
      auto cmd = std::make_unique<Command>();
      cmd->kind = Command::Kind::kOpen;
      io::wire::Cursor c(request.payload.data(), request.payload.size());
      Status s = ParseSessionSpec(&c, &cmd->spec);
      if (!s.ok()) return error(s);
      Result<std::string> admitted = Dispatch(std::move(cmd));
      if (!admitted.ok()) return error(admitted.status());
      return {FrameType::kSessionOpened, std::move(*admitted)};
    }

    case FrameType::kFetchResult: {
      io::wire::Cursor c(request.payload.data(), request.payload.size());
      uint64_t id = 0;
      Status s = c.ReadU64(&id);
      if (!s.ok()) return error(s);
      Result<core::EngineResult> result = registry_.AwaitResult(id);
      if (!result.ok()) return error(result.status());
      std::string payload;
      io::wire::PutU64(&payload, id);
      io::AppendEngineResult(*result, &payload);
      return {FrameType::kResult, std::move(payload)};
    }

    case FrameType::kReconfigure: {
      auto cmd = std::make_unique<Command>();
      cmd->kind = Command::Kind::kReconfig;
      io::wire::Cursor c(request.payload.data(), request.payload.size());
      Status s = ParseReconfigure(&c, &cmd->session_id, &cmd->reconfig);
      if (!s.ok()) return error(s);
      Result<std::string> applied = Dispatch(std::move(cmd));
      if (!applied.ok()) return error(applied.status());
      return {FrameType::kOk, std::string()};
    }

    case FrameType::kSetBudget: {
      auto cmd = std::make_unique<Command>();
      cmd->kind = Command::Kind::kSetBudget;
      io::wire::Cursor c(request.payload.data(), request.payload.size());
      Status s = c.ReadF64(&cmd->budget);
      if (!s.ok()) return error(s);
      Result<std::string> applied = Dispatch(std::move(cmd));
      if (!applied.ok()) return error(applied.status());
      return {FrameType::kOk, std::string()};
    }

    case FrameType::kMetrics: {
      auto cmd = std::make_unique<Command>();
      cmd->kind = Command::Kind::kMetrics;
      Result<std::string> json = Dispatch(std::move(cmd));
      if (!json.ok()) return error(json.status());
      std::string payload;
      io::wire::PutString(&payload, *json);
      return {FrameType::kMetricsReport, std::move(payload)};
    }

    case FrameType::kCloseSession: {
      auto cmd = std::make_unique<Command>();
      cmd->kind = Command::Kind::kClose;
      io::wire::Cursor c(request.payload.data(), request.payload.size());
      Status s = c.ReadU64(&cmd->session_id);
      if (!s.ok()) return error(s);
      Result<std::string> closed = Dispatch(std::move(cmd));
      if (!closed.ok()) return error(closed.status());
      return {FrameType::kOk, std::string()};
    }

    case FrameType::kDrain: {
      auto cmd = std::make_unique<Command>();
      cmd->kind = Command::Kind::kDrain;
      Result<std::string> drained = Dispatch(std::move(cmd));
      if (!drained.ok()) return error(drained.status());
      return {FrameType::kOk, std::string()};
    }

    default:
      return error(Status::InvalidArgument("unexpected frame type"));
  }
}

void Server::RequestDrain() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    drain_requested_ = true;
  }
  queue_cv_.notify_all();
}

Status Server::Wait() {
  if (fleet_thread_.joinable()) fleet_thread_.join();
  // The fleet is down; tear the network down so connection threads unblock
  // out of ReadFrame and exit.
  stop_.store(true);
  if (listen_thread_.joinable()) listen_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
  }
  if (!joined_ && listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  joined_ = true;
  return fleet_status_;
}

}  // namespace sky::serve
