#include "serve/metrics.h"

#include <cstdio>

namespace sky::serve {

namespace {

void AppendKey(std::string* out, const char* key) {
  out->push_back('"');
  out->append(key);
  out->append("\": ");
}

void AppendF64(std::string* out, const char* key, double v) {
  char buf[64];
  // %.17g: shortest text that round-trips an IEEE-754 double exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  AppendKey(out, key);
  out->append(buf);
}

void AppendU64(std::string* out, const char* key, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  AppendKey(out, key);
  out->append(buf);
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    if (ch == '"' || ch == '\\') {
      out->push_back('\\');
      out->push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(ch)));
      out->append(buf);
    } else {
      out->push_back(ch);
    }
  }
  out->push_back('"');
}

void AppendString(std::string* out, const char* key, const std::string& v) {
  AppendKey(out, key);
  AppendEscaped(out, v);
}

void AppendSessionObject(std::string* out, const SessionRecord& rec) {
  out->append("{");
  AppendU64(out, "id", rec.id);
  out->append(", ");
  AppendString(out, "workload", rec.spec.workload);
  out->append(", ");
  AppendString(out, "state", SessionStateName(rec.state));
  out->append(", ");
  AppendU64(out, "stream_index", rec.stream_index);
  if (rec.state == SessionState::kFailed) {
    out->append(", ");
    AppendString(out, "error", rec.error.ToString());
  }
  if (rec.state == SessionState::kDone) {
    const core::EngineResult& r = rec.result;
    out->append(", ");
    AppendF64(out, "total_quality", r.total_quality);
    out->append(", ");
    AppendF64(out, "mean_quality", r.mean_quality);
    out->append(", ");
    AppendU64(out, "segments", r.segments);
    out->append(", ");
    AppendF64(out, "work_core_seconds", r.work_core_seconds);
    out->append(", ");
    AppendF64(out, "onprem_core_seconds", r.onprem_core_seconds);
    out->append(", ");
    AppendF64(out, "cloud_usd", r.cloud_usd);
    out->append(", ");
    AppendU64(out, "buffer_high_water_bytes", r.buffer_high_water_bytes);
    out->append(", ");
    AppendU64(out, "overflow_events", r.overflow_events);
    out->append(", ");
    AppendU64(out, "switch_count", r.switch_count);
    out->append(", ");
    AppendU64(out, "degraded_count", r.degraded_count);
    out->append(", ");
    AppendU64(out, "misclassified", r.misclassified);
    out->append(", ");
    AppendU64(out, "type_a_errors", r.type_a_errors);
    out->append(", ");
    AppendU64(out, "type_b_errors", r.type_b_errors);
    out->append(", ");
    AppendU64(out, "cloud_failures", r.cloud_failures);
    out->append(", ");
    AppendU64(out, "cloud_retries", r.cloud_retries);
    out->append(", ");
    AppendU64(out, "cloud_giveups", r.cloud_giveups);
    out->append(", ");
    AppendF64(out, "fault_backoff_s", r.fault_backoff_s);
    out->append(", ");
    AppendU64(out, "outage_segments", r.outage_segments);
    out->append(", ");
    AppendU64(out, "outage_intervals", r.outage_intervals);
    out->append(", ");
    AppendU64(out, "udf_stall_segments", r.udf_stall_segments);
    out->append(", ");
    AppendU64(out, "trace_points", r.trace.size());
  }
  out->append("}");
}

}  // namespace

std::string RenderMetricsJson(const ServerMetrics& m) {
  std::string out;
  out.reserve(512 + m.sessions.size() * 256);
  out.append("{\n  ");
  AppendF64(&out, "uptime_s", m.uptime_s);
  out.append(",\n  ");
  AppendU64(&out, "sessions_accepted", m.sessions_accepted);
  out.append(",\n  ");
  AppendU64(&out, "sessions_rejected", m.sessions_rejected);
  out.append(",\n  ");
  AppendU64(&out, "sessions_running", m.sessions_running);
  out.append(",\n  ");
  AppendU64(&out, "sessions_done", m.sessions_done);
  out.append(",\n  ");
  AppendU64(&out, "sessions_failed", m.sessions_failed);
  out.append(",\n  ");
  AppendU64(&out, "boundaries_planned", m.boundaries_planned);
  out.append(",\n  ");
  AppendF64(&out, "boundary_p50_ms", m.boundary_p50_ms);
  out.append(",\n  ");
  AppendF64(&out, "boundary_p99_ms", m.boundary_p99_ms);
  out.append(",\n  ");
  AppendF64(&out, "shared_budget_core_s_per_video_s",
            m.shared_budget_core_s_per_video_s);
  out.append(",\n  ");
  AppendF64(&out, "cheapest_fleet_cost_core_s_per_video_s",
            m.cheapest_fleet_cost_core_s_per_video_s);
  out.append(",\n  ");
  AppendU64(&out, "fleet_restarts", m.fleet_restarts);
  out.append(",\n  ");
  AppendKey(&out, "sessions");
  out.append("[");
  for (size_t i = 0; i < m.sessions.size(); ++i) {
    if (i > 0) out.append(", ");
    AppendSessionObject(&out, m.sessions[i]);
  }
  out.append("]\n}\n");
  return out;
}

}  // namespace sky::serve
