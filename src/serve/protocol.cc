#include "serve/protocol.h"

#include <errno.h>
#include <string.h>
#include <unistd.h>

#include <cstring>

#include "io/checkpoint_io.h"

namespace sky::serve {

namespace {

using io::wire::Cursor;
using io::wire::Fnv1a64;
using io::wire::PutBool;
using io::wire::PutF64;
using io::wire::PutRaw;
using io::wire::PutString;
using io::wire::PutU32;
using io::wire::PutU64;
using io::wire::PutU8;

bool ValidFrameType(uint8_t t) {
  return (t >= static_cast<uint8_t>(FrameType::kHello) &&
          t <= static_cast<uint8_t>(FrameType::kDrain)) ||
         (t >= static_cast<uint8_t>(FrameType::kHelloOk) &&
          t <= static_cast<uint8_t>(FrameType::kError));
}

/// Reads exactly n bytes; EINTR restarts. `*eof_at_start` reports a clean
/// close before the first byte, which callers treat as "peer hung up"
/// rather than corruption.
Status ReadExact(int fd, char* buf, size_t n, bool* eof_at_start) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("socket read failed: ") +
                              ::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && eof_at_start != nullptr) {
        *eof_at_start = true;
        return Status::NotFound("connection closed");
      }
      return Status::InvalidArgument("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::Ok();
}

Status WriteExact(int fd, const char* buf, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::write(fd, buf + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("socket write failed: ") +
                              ::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::Ok();
}

void AppendOptionalF64(std::string* out, const std::optional<double>& v) {
  PutBool(out, v.has_value());
  PutF64(out, v.value_or(0.0));
}

Status ParseOptionalF64(Cursor* c, std::optional<double>* v) {
  bool has = false;
  double x = 0.0;
  SKY_RETURN_NOT_OK(c->ReadBool(&has));
  SKY_RETURN_NOT_OK(c->ReadF64(&x));
  if (has) {
    *v = x;
  } else {
    v->reset();
  }
  return Status::Ok();
}

}  // namespace

void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  PutRaw(out, kFrameMagic, sizeof(kFrameMagic));
  PutU8(out, static_cast<uint8_t>(type));
  PutU64(out, payload.size());
  out->append(payload);
  PutU64(out, Fnv1a64(payload.data(), payload.size()));
}

Status WriteFrame(int fd, FrameType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds protocol maximum");
  }
  std::string wire;
  wire.reserve(payload.size() + 21);
  EncodeFrame(type, payload, &wire);
  return WriteExact(fd, wire.data(), wire.size());
}

Status ReadFrame(int fd, Frame* out) {
  // Header: magic + type + length.
  char header[13];
  bool eof = false;
  SKY_RETURN_NOT_OK(ReadExact(fd, header, sizeof(header), &eof));
  if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::InvalidArgument("bad frame magic (not a sky peer?)");
  }
  uint8_t type = static_cast<uint8_t>(header[4]);
  if (!ValidFrameType(type)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  uint64_t length = 0;
  std::memcpy(&length, header + 5, sizeof(length));
  if (length > kMaxFramePayload) {
    return Status::InvalidArgument("frame length exceeds protocol maximum");
  }
  out->type = static_cast<FrameType>(type);
  out->payload.resize(length);
  if (length > 0) {
    SKY_RETURN_NOT_OK(ReadExact(fd, out->payload.data(), length, nullptr));
  }
  char trailer[8];
  SKY_RETURN_NOT_OK(ReadExact(fd, trailer, sizeof(trailer), nullptr));
  uint64_t stored = 0;
  std::memcpy(&stored, trailer, sizeof(stored));
  if (stored != Fnv1a64(out->payload.data(), out->payload.size())) {
    return Status::InvalidArgument("frame checksum mismatch (corrupted)");
  }
  return Status::Ok();
}

void AppendSessionSpec(const SessionSpec& spec, std::string* out) {
  PutString(out, spec.workload);
  PutBool(out, spec.content_seed.has_value());
  PutU64(out, spec.content_seed.value_or(0));
  PutF64(out, spec.start_days);
  PutF64(out, spec.duration_days);
  PutF64(out, spec.plan_interval_days);
  PutU64(out, spec.engine_seed);
  PutBool(out, spec.f32_forecast);
  PutBool(out, spec.record_trace);
  PutF64(out, spec.trace_resolution_s);
  AppendOptionalF64(out, spec.cloud_budget_usd_per_interval);
  PutF64(out, spec.work_budget_override);
}

Status ParseSessionSpec(Cursor* c, SessionSpec* spec) {
  SKY_RETURN_NOT_OK(c->ReadString(&spec->workload));
  bool has_seed = false;
  uint64_t seed = 0;
  SKY_RETURN_NOT_OK(c->ReadBool(&has_seed));
  SKY_RETURN_NOT_OK(c->ReadU64(&seed));
  if (has_seed) {
    spec->content_seed = seed;
  } else {
    spec->content_seed.reset();
  }
  SKY_RETURN_NOT_OK(c->ReadF64(&spec->start_days));
  SKY_RETURN_NOT_OK(c->ReadF64(&spec->duration_days));
  SKY_RETURN_NOT_OK(c->ReadF64(&spec->plan_interval_days));
  SKY_RETURN_NOT_OK(c->ReadU64(&spec->engine_seed));
  SKY_RETURN_NOT_OK(c->ReadBool(&spec->f32_forecast));
  SKY_RETURN_NOT_OK(c->ReadBool(&spec->record_trace));
  SKY_RETURN_NOT_OK(c->ReadF64(&spec->trace_resolution_s));
  SKY_RETURN_NOT_OK(
      ParseOptionalF64(c, &spec->cloud_budget_usd_per_interval));
  SKY_RETURN_NOT_OK(c->ReadF64(&spec->work_budget_override));
  return Status::Ok();
}

void AppendReconfigure(uint64_t session_id, const core::StreamReconfig& r,
                       std::string* out) {
  PutU64(out, session_id);
  AppendOptionalF64(out, r.cloud_budget_usd_per_interval);
  AppendOptionalF64(out, r.work_budget_override);
}

Status ParseReconfigure(Cursor* c, uint64_t* session_id,
                        core::StreamReconfig* r) {
  SKY_RETURN_NOT_OK(c->ReadU64(session_id));
  SKY_RETURN_NOT_OK(ParseOptionalF64(c, &r->cloud_budget_usd_per_interval));
  SKY_RETURN_NOT_OK(ParseOptionalF64(c, &r->work_budget_override));
  return Status::Ok();
}

void AppendError(const Status& status, std::string* out) {
  PutU32(out, static_cast<uint32_t>(status.code()));
  PutString(out, status.message());
}

Status ParseError(const Frame& frame) {
  Cursor c(frame.payload.data(), frame.payload.size());
  uint32_t code = 0;
  std::string message;
  SKY_RETURN_NOT_OK(c.ReadU32(&code));
  SKY_RETURN_NOT_OK(c.ReadString(&message));
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("malformed error frame");
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

uint64_t ResultFingerprint(const core::EngineResult& r) {
  std::string bytes;
  io::AppendEngineResult(r, &bytes);
  return io::wire::Fnv1a64(bytes.data(), bytes.size());
}

}  // namespace sky::serve
