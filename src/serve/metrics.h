#ifndef SKYSCRAPER_SERVE_METRICS_H_
#define SKYSCRAPER_SERVE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/registry.h"

namespace sky::serve {

/// Point-in-time server counters gathered by the fleet thread for one
/// kMetrics request.
struct ServerMetrics {
  double uptime_s = 0.0;
  uint64_t sessions_accepted = 0;
  uint64_t sessions_rejected = 0;
  uint64_t sessions_running = 0;
  uint64_t sessions_done = 0;
  uint64_t sessions_failed = 0;
  uint64_t boundaries_planned = 0;
  double boundary_p50_ms = 0.0;
  double boundary_p99_ms = 0.0;
  double shared_budget_core_s_per_video_s = 0.0;  ///< 0 = derived per boundary
  double cheapest_fleet_cost_core_s_per_video_s = 0.0;
  uint64_t fleet_restarts = 0;  ///< supervised restarts across the fleet
  std::vector<SessionRecord> sessions;
};

/// Renders the BENCH-style JSON document the kMetricsReport frame carries:
/// flat server counters plus one object per session with the full
/// EngineResult counters (including the fault-injection fields) for
/// terminal sessions. Deterministic key order; %.17g doubles so values
/// round-trip exactly.
std::string RenderMetricsJson(const ServerMetrics& m);

}  // namespace sky::serve

#endif  // SKYSCRAPER_SERVE_METRICS_H_
