#ifndef SKYSCRAPER_SERVE_REGISTRY_H_
#define SKYSCRAPER_SERVE_REGISTRY_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "io/checkpoint_io.h"
#include "serve/protocol.h"
#include "util/result.h"

namespace sky::serve {

/// Lifecycle of one accepted session. Admission happens at a lockstep plan
/// boundary, so there is no "pending" state a client ever observes: the
/// OpenSession reply IS the admission decision.
enum class SessionState : uint8_t {
  kRunning = 0,  ///< stream is live in the fleet
  kDone = 1,     ///< finished; result stored and fetchable
  kFailed = 2,   ///< quarantined or invalid; error stored
};

const char* SessionStateName(SessionState s);

/// One admitted session: its spec (enough to rebuild the exact simulation
/// on recovery), its fleet slot, and — once terminal — its outcome.
struct SessionRecord {
  uint64_t id = 0;
  SessionSpec spec;
  SessionState state = SessionState::kRunning;
  uint64_t stream_index = 0;  ///< slot in the server's StreamSet
  core::EngineResult result;  ///< valid when kDone
  Status error;               ///< non-OK when kFailed
};

/// The server's session table. Thread-safe: the fleet thread writes
/// transitions, connection threads read and block in AwaitResult. Terminal
/// results outlive their streams (a done stream leaves the fleet
/// immediately, its result stays fetchable here — including across a
/// checkpoint/recover cycle).
class SessionRegistry {
 public:
  /// Admits a session (fleet thread, at a boundary) under a fresh id.
  uint64_t Add(SessionSpec spec, uint64_t stream_index);

  /// Reinstates a recovered session under its ORIGINAL id.
  void Restore(SessionRecord record);

  /// Marks `id` finished with its bitwise final result; wakes waiters.
  void MarkDone(uint64_t id, core::EngineResult result);

  /// Marks `id` failed; wakes waiters.
  void MarkFailed(uint64_t id, Status error);

  /// Blocks until session `id` reaches a terminal state, then returns its
  /// result (kDone) or stored error (kFailed). kNotFound for an unknown id;
  /// kFailedPrecondition once the server starts draining (the session will
  /// finish after a future --recover, not on this process).
  Result<core::EngineResult> AwaitResult(uint64_t id) const;

  /// Looks up the live fleet slot of a running session.
  Result<uint64_t> StreamIndexOf(uint64_t id) const;

  /// Drain: wakes every AwaitResult waiter whose session is still running.
  void BeginDrain();

  /// Point-in-time copy of every record (metrics, checkpointing).
  std::vector<SessionRecord> Snapshot() const;

  size_t active_count() const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<SessionRecord> records_;
  uint64_t next_id_ = 1;
  bool draining_ = false;

  const SessionRecord* FindLocked(uint64_t id) const;
};

/// A serve-server checkpoint: the session table plus the embedded fleet
/// checkpoint (io::SerializeFleetCheckpoint bytes, verbatim), written at a
/// lockstep plan boundary BEFORE that boundary's plan is installed — so a
/// recovered server replays the boundary deterministically and the resumed
/// fleet is bitwise-identical to one that never stopped.
struct ServeCheckpoint {
  uint64_t next_session_id = 1;
  uint64_t sessions_accepted = 0;
  uint64_t sessions_rejected = 0;
  double shared_budget_core_s_per_video_s = 0.0;
  std::vector<SessionRecord> sessions;
  std::string fleet_bytes;
};

Status SerializeServeCheckpoint(const ServeCheckpoint& ckpt,
                                std::string* out);
Result<ServeCheckpoint> ParseServeCheckpoint(const std::string& bytes);

/// Atomic write (temp file + rename) / checked read of the serve format.
Status SaveServeCheckpoint(const ServeCheckpoint& ckpt,
                           const std::string& path);
Result<ServeCheckpoint> LoadServeCheckpoint(const std::string& path);

}  // namespace sky::serve

#endif  // SKYSCRAPER_SERVE_REGISTRY_H_
