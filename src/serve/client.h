#ifndef SKYSCRAPER_SERVE_CLIENT_H_
#define SKYSCRAPER_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "core/engine.h"
#include "core/multi_stream.h"
#include "serve/protocol.h"
#include "util/result.h"

namespace sky::serve {

/// Synchronous client for one `sky serve` connection. Each method is one
/// request/reply exchange (the protocol is strictly alternating), so a
/// Client must not be shared across threads — open one connection per
/// concurrent session instead, which is also what `sky client` does.
class Client {
 public:
  /// Connects to 127.0.0.1:port and performs the kHello version handshake.
  static Result<Client> Connect(int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  /// Asks the server to admit a session at its next lockstep boundary.
  /// Returns {session id, fleet stream index} on admission; the server's
  /// rejection Status otherwise (kResourceExhausted when the pooled budget
  /// or session cap refuses the stream).
  Result<std::pair<uint64_t, uint64_t>> OpenSession(const SessionSpec& spec);

  /// Blocks until session `id` finishes and returns its bitwise final
  /// result. kFailedPrecondition when the server drains first (finish the
  /// session by recovering the server from its checkpoint).
  Result<core::EngineResult> FetchResult(uint64_t id);

  /// Live reconfiguration: per-stream knob overrides, effective at the
  /// fleet's next plan boundary.
  Status Reconfigure(uint64_t id, const core::StreamReconfig& changes);

  /// Replaces the fleet-wide pooled budget at the next plan boundary
  /// (<= 0 returns to per-stream-derived budgets).
  Status SetSharedBudget(double core_s_per_video_s);

  /// Fetches the BENCH-style JSON metrics document.
  Result<std::string> Metrics();

  /// Retires a running session at the next plan boundary.
  Status CloseSession(uint64_t id);

  /// Asks the server to drain: checkpoint at the next boundary and exit.
  Status Drain();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// One request/reply exchange; a kError reply comes back as its decoded
  /// Status, a reply of any other unexpected type as kInternal.
  Result<Frame> RoundTrip(FrameType request, const std::string& payload,
                          FrameType expected_reply);

  int fd_ = -1;
};

}  // namespace sky::serve

#endif  // SKYSCRAPER_SERVE_CLIENT_H_
