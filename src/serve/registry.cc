#include "serve/registry.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "io/atomic_file.h"
#include "io/wire.h"

namespace sky::serve {

namespace {

using io::wire::Cursor;
using io::wire::Fnv1a64;
using io::wire::PutChunk;
using io::wire::PutF64;
using io::wire::PutRaw;
using io::wire::PutString;
using io::wire::PutU32;
using io::wire::PutU64;
using io::wire::PutU8;
using io::wire::TagIs;

constexpr char kServeMagic[8] = {'S', 'K', 'Y', 'S', 'E', 'R', 'V', '1'};
constexpr uint32_t kServeFormatVersion = 1;
constexpr uint32_t kEndianMarker = 0x01020304u;

constexpr char kChunkMeta[4] = {'M', 'E', 'T', 'A'};
constexpr char kChunkSession[4] = {'S', 'E', 'S', 'S'};
constexpr char kChunkFleet[4] = {'F', 'L', 'E', 'E'};
constexpr char kChunkChecksum[4] = {'C', 'S', 'U', 'M'};

void AppendSessionRecord(const SessionRecord& rec, std::string* p) {
  PutU64(p, rec.id);
  PutU8(p, static_cast<uint8_t>(rec.state));
  PutU64(p, rec.stream_index);
  AppendSessionSpec(rec.spec, p);
  PutU32(p, static_cast<uint32_t>(rec.error.code()));
  PutString(p, rec.error.ok() ? std::string() : rec.error.message());
  io::wire::PutBool(p, rec.state == SessionState::kDone);
  if (rec.state == SessionState::kDone) {
    io::AppendEngineResult(rec.result, p);
  }
}

Status ParseSessionRecord(Cursor* c, SessionRecord* rec) {
  SKY_RETURN_NOT_OK(c->ReadU64(&rec->id));
  uint8_t state = 0;
  SKY_RETURN_NOT_OK(c->ReadU8(&state));
  if (state > static_cast<uint8_t>(SessionState::kFailed)) {
    return Status::InvalidArgument("invalid session state in checkpoint");
  }
  rec->state = static_cast<SessionState>(state);
  SKY_RETURN_NOT_OK(c->ReadU64(&rec->stream_index));
  SKY_RETURN_NOT_OK(ParseSessionSpec(c, &rec->spec));
  uint32_t code = 0;
  SKY_RETURN_NOT_OK(c->ReadU32(&code));
  if (code > static_cast<uint32_t>(StatusCode::kInternal)) {
    return Status::InvalidArgument("invalid status code in checkpoint");
  }
  std::string message;
  SKY_RETURN_NOT_OK(c->ReadString(&message));
  rec->error = code == 0 ? Status::Ok()
                         : Status(static_cast<StatusCode>(code),
                                  std::move(message));
  bool has_result = false;
  SKY_RETURN_NOT_OK(c->ReadBool(&has_result));
  if (has_result != (rec->state == SessionState::kDone)) {
    return Status::InvalidArgument(
        "session result presence inconsistent with its state");
  }
  if (has_result) {
    SKY_RETURN_NOT_OK(io::ParseEngineResult(c, &rec->result));
  }
  return Status::Ok();
}

}  // namespace

const char* SessionStateName(SessionState s) {
  switch (s) {
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kFailed:
      return "failed";
  }
  return "unknown";
}

uint64_t SessionRegistry::Add(SessionSpec spec, uint64_t stream_index) {
  std::lock_guard<std::mutex> lock(mu_);
  SessionRecord rec;
  rec.id = next_id_++;
  rec.spec = std::move(spec);
  rec.state = SessionState::kRunning;
  rec.stream_index = stream_index;
  records_.push_back(std::move(rec));
  return records_.back().id;
}

void SessionRegistry::Restore(SessionRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.id >= next_id_) next_id_ = record.id + 1;
  records_.push_back(std::move(record));
}

const SessionRecord* SessionRegistry::FindLocked(uint64_t id) const {
  for (const SessionRecord& rec : records_) {
    if (rec.id == id) return &rec;
  }
  return nullptr;
}

void SessionRegistry::MarkDone(uint64_t id, core::EngineResult result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (SessionRecord& rec : records_) {
      if (rec.id != id) continue;
      rec.state = SessionState::kDone;
      rec.result = std::move(result);
      break;
    }
  }
  cv_.notify_all();
}

void SessionRegistry::MarkFailed(uint64_t id, Status error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (SessionRecord& rec : records_) {
      if (rec.id != id) continue;
      rec.state = SessionState::kFailed;
      rec.error = std::move(error);
      break;
    }
  }
  cv_.notify_all();
}

Result<core::EngineResult> SessionRegistry::AwaitResult(uint64_t id) const {
  std::unique_lock<std::mutex> lock(mu_);
  const SessionRecord* rec = FindLocked(id);
  if (rec == nullptr) {
    return Status::NotFound("no session with id " + std::to_string(id));
  }
  cv_.wait(lock, [&] {
    rec = FindLocked(id);
    return rec->state != SessionState::kRunning || draining_;
  });
  if (rec->state == SessionState::kDone) return rec->result;
  if (rec->state == SessionState::kFailed) return rec->error;
  return Status::FailedPrecondition(
      "server is draining; recover from its checkpoint to finish this "
      "session");
}

Result<uint64_t> SessionRegistry::StreamIndexOf(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const SessionRecord* rec = FindLocked(id);
  if (rec == nullptr) {
    return Status::NotFound("no session with id " + std::to_string(id));
  }
  if (rec->state != SessionState::kRunning) {
    return Status::FailedPrecondition("session is not running");
  }
  return rec->stream_index;
}

void SessionRegistry::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

std::vector<SessionRecord> SessionRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t SessionRegistry::active_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const SessionRecord& rec : records_) {
    if (rec.state == SessionState::kRunning) ++n;
  }
  return n;
}

Status SerializeServeCheckpoint(const ServeCheckpoint& ckpt,
                                std::string* out_bytes) {
  std::string& out = *out_bytes;
  out.clear();
  PutRaw(&out, kServeMagic, sizeof(kServeMagic));
  PutU32(&out, kServeFormatVersion);
  PutU32(&out, kEndianMarker);

  {
    std::string p;
    PutU64(&p, ckpt.next_session_id);
    PutU64(&p, ckpt.sessions_accepted);
    PutU64(&p, ckpt.sessions_rejected);
    PutF64(&p, ckpt.shared_budget_core_s_per_video_s);
    PutU64(&p, ckpt.sessions.size());
    PutChunk(&out, kChunkMeta, p);
  }
  for (const SessionRecord& rec : ckpt.sessions) {
    std::string p;
    AppendSessionRecord(rec, &p);
    PutChunk(&out, kChunkSession, p);
  }
  PutChunk(&out, kChunkFleet, ckpt.fleet_bytes);

  std::string checksum;
  PutU64(&checksum, Fnv1a64(out.data(), out.size()));
  PutChunk(&out, kChunkChecksum, checksum);
  return Status::Ok();
}

Result<ServeCheckpoint> ParseServeCheckpoint(const std::string& bytes) {
  Cursor header(bytes.data(), bytes.size());
  char magic[8];
  SKY_RETURN_NOT_OK(header.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kServeMagic, sizeof(kServeMagic)) != 0) {
    return Status::InvalidArgument(
        "not a sky serve checkpoint file (bad magic)");
  }
  uint32_t version = 0, endian = 0;
  SKY_RETURN_NOT_OK(header.ReadU32(&version));
  if (version != kServeFormatVersion) {
    return Status::InvalidArgument(
        "unsupported serve checkpoint version " + std::to_string(version));
  }
  SKY_RETURN_NOT_OK(header.ReadU32(&endian));
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "serve checkpoint written with different byte order");
  }

  // Pass 1: checksum trailer before parsing anything (same discipline as
  // every other Skyscraper format).
  Cursor walk(bytes.data(), bytes.size());
  SKY_RETURN_NOT_OK(walk.Skip(16));
  bool checksum_seen = false;
  while (walk.remaining() > 0) {
    char tag[4];
    SKY_RETURN_NOT_OK(walk.Read(tag, 4));
    uint64_t size = 0;
    SKY_RETURN_NOT_OK(walk.ReadU64(&size));
    if (TagIs(tag, kChunkChecksum)) {
      if (size != sizeof(uint64_t) || walk.remaining() != size) {
        return Status::InvalidArgument(
            "malformed serve checkpoint checksum trailer");
      }
      size_t covered = walk.pos() - 12;
      uint64_t stored = 0;
      SKY_RETURN_NOT_OK(walk.ReadU64(&stored));
      if (stored != Fnv1a64(bytes.data(), covered)) {
        return Status::InvalidArgument(
            "serve checkpoint checksum mismatch (corrupted)");
      }
      checksum_seen = true;
      break;
    }
    SKY_RETURN_NOT_OK(walk.Skip(size));
  }
  if (!checksum_seen) {
    return Status::InvalidArgument(
        "serve checkpoint missing checksum trailer");
  }

  // Pass 2: parse chunks.
  ServeCheckpoint ckpt;
  bool seen_meta = false;
  bool seen_fleet = false;
  uint64_t declared_sessions = 0;
  Cursor c(bytes.data(), bytes.size());
  SKY_RETURN_NOT_OK(c.Skip(16));
  while (c.remaining() > 0) {
    char tag[4];
    SKY_RETURN_NOT_OK(c.Read(tag, 4));
    uint64_t size = 0;
    SKY_RETURN_NOT_OK(c.ReadU64(&size));
    if (size > c.remaining()) {
      return Status::InvalidArgument("serve checkpoint truncated mid-chunk");
    }
    Cursor payload(bytes.data() + c.pos(), size);
    if (TagIs(tag, kChunkChecksum)) break;

    if (TagIs(tag, kChunkMeta)) {
      if (seen_meta) {
        return Status::InvalidArgument(
            "duplicate META chunk in serve checkpoint");
      }
      seen_meta = true;
      SKY_RETURN_NOT_OK(payload.ReadU64(&ckpt.next_session_id));
      SKY_RETURN_NOT_OK(payload.ReadU64(&ckpt.sessions_accepted));
      SKY_RETURN_NOT_OK(payload.ReadU64(&ckpt.sessions_rejected));
      SKY_RETURN_NOT_OK(
          payload.ReadF64(&ckpt.shared_budget_core_s_per_video_s));
      SKY_RETURN_NOT_OK(payload.ReadU64(&declared_sessions));
      if (declared_sessions > bytes.size()) {
        return Status::InvalidArgument(
            "serve checkpoint declares impossible session count");
      }
      ckpt.sessions.reserve(declared_sessions);
    } else if (TagIs(tag, kChunkSession)) {
      if (!seen_meta) {
        return Status::InvalidArgument(
            "serve checkpoint session chunk before META");
      }
      SessionRecord rec;
      SKY_RETURN_NOT_OK(ParseSessionRecord(&payload, &rec));
      ckpt.sessions.push_back(std::move(rec));
    } else if (TagIs(tag, kChunkFleet)) {
      if (seen_fleet) {
        return Status::InvalidArgument(
            "duplicate FLEE chunk in serve checkpoint");
      }
      seen_fleet = true;
      ckpt.fleet_bytes.assign(bytes.data() + c.pos(), size);
    } else {
      return Status::InvalidArgument(
          "unknown chunk tag in serve checkpoint");
    }
    if (!TagIs(tag, kChunkFleet) && payload.remaining() != 0) {
      return Status::InvalidArgument(
          "serve checkpoint chunk has trailing bytes");
    }
    SKY_RETURN_NOT_OK(c.Skip(size));
  }
  if (!seen_meta || !seen_fleet) {
    return Status::InvalidArgument(
        "serve checkpoint is missing a required chunk");
  }
  if (ckpt.sessions.size() != declared_sessions) {
    return Status::InvalidArgument(
        "serve checkpoint session count does not match META");
  }
  return ckpt;
}

Status SaveServeCheckpoint(const ServeCheckpoint& ckpt,
                           const std::string& path) {
  std::string bytes;
  SKY_RETURN_NOT_OK(SerializeServeCheckpoint(ckpt, &bytes));
  return io::AtomicWriteFile(path, bytes);
}

Result<ServeCheckpoint> LoadServeCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open serve checkpoint " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("error reading serve checkpoint " + path);
  }
  return ParseServeCheckpoint(bytes);
}

}  // namespace sky::serve
