#ifndef SKYSCRAPER_SERVE_PROTOCOL_H_
#define SKYSCRAPER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/engine.h"
#include "core/multi_stream.h"
#include "io/wire.h"
#include "util/result.h"
#include "util/status.h"

namespace sky::serve {

/// The `sky serve` wire protocol: length-prefixed binary frames over a
/// local TCP socket, layered on the io/wire primitives every Skyscraper
/// on-disk format already uses. One frame is
///
///   "SKYF"  (4 bytes)   frame magic
///   type    (u8)        FrameType below
///   length  (u64 LE)    payload byte count
///   payload (length bytes)
///   check   (u64 LE)    FNV-1a-64 over the payload
///
/// Requests and replies are strictly alternating per connection (no
/// pipelining); every request frame gets exactly one reply frame, either
/// its success type or kError. Doubles travel as raw IEEE-754 — an
/// EngineResult crosses the socket bitwise, which is what lets the e2e
/// gates compare served results against in-process runs with ==.
/// See docs/serving.md for the full layout and semantics.

inline constexpr char kFrameMagic[4] = {'S', 'K', 'Y', 'F'};
inline constexpr uint32_t kProtocolVersion = 1;

/// Upper bound on one frame's payload. The largest legitimate payload is a
/// full-trace EngineResult (a few MB at default trace resolution); anything
/// near this bound is a corrupt or hostile length field, refused before
/// allocation.
inline constexpr uint64_t kMaxFramePayload = 256ull << 20;

enum class FrameType : uint8_t {
  // Client requests.
  kHello = 1,         ///< u32 protocol version -> kHelloOk
  kOpenSession = 2,   ///< SessionSpec -> kSessionOpened (at next boundary)
  kFetchResult = 3,   ///< u64 session id -> kResult (blocks until terminal)
  kReconfigure = 4,   ///< u64 id + StreamReconfig -> kOk (next boundary)
  kSetBudget = 5,     ///< f64 shared budget -> kOk (next boundary)
  kMetrics = 6,       ///< empty -> kMetricsReport
  kCloseSession = 7,  ///< u64 session id -> kOk (stream leaves next boundary)
  kDrain = 8,         ///< empty -> kOk, then the server checkpoints + exits

  // Server replies.
  kHelloOk = 32,         ///< u32 protocol version
  kSessionOpened = 33,   ///< u64 session id, u64 fleet stream index
  kResult = 34,          ///< u64 session id, AppendEngineResult payload
  kMetricsReport = 35,   ///< string: BENCH-style JSON document
  kOk = 36,              ///< empty generic ack
  kError = 37,           ///< u32 StatusCode, string message
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Appends the full wire encoding of one frame to `out`.
void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out);

/// Blocking frame I/O on a connected socket. WriteFrame retries short
/// writes; ReadFrame validates magic, type, length bound and checksum
/// before returning. A connection closed cleanly BEFORE any frame byte is
/// kNotFound (the peer simply hung up); mid-frame EOF, a bad magic or a
/// failed checksum are kInvalidArgument; socket errors are kInternal.
Status WriteFrame(int fd, FrameType type, const std::string& payload);
Status ReadFrame(int fd, Frame* out);

/// Everything a client specifies when opening a stream session. The server
/// resolves it against its registered workload/model: fields left negative
/// (or unset) fall back exactly like the corresponding `sky ingest` flags.
struct SessionSpec {
  std::string workload = "ev";  ///< registry name (api::MakeWorkloadByName)
  /// Content seed for the workload simulation; distinct seeds are distinct
  /// cameras. Unset uses the workload's default.
  std::optional<uint64_t> content_seed;
  double start_days = -1.0;          ///< < 0: the model's train horizon
  double duration_days = 1.0;
  double plan_interval_days = -1.0;  ///< <= 0: the model's forecast span
  uint64_t engine_seed = 71;
  bool f32_forecast = false;         ///< reduced-precision boundary forecast
  bool record_trace = false;
  double trace_resolution_s = 300.0;
  /// Unset: the server's provisioned per-stream cloud budget.
  std::optional<double> cloud_budget_usd_per_interval;
  double work_budget_override = 0.0;
};

void AppendSessionSpec(const SessionSpec& spec, std::string* out);
Status ParseSessionSpec(io::wire::Cursor* c, SessionSpec* spec);

/// Payload helpers for the fixed-shape frames.
void AppendReconfigure(uint64_t session_id, const core::StreamReconfig& r,
                       std::string* out);
Status ParseReconfigure(io::wire::Cursor* c, uint64_t* session_id,
                        core::StreamReconfig* r);
void AppendError(const Status& status, std::string* out);
/// Decodes a kError payload back into the Status the server sent.
Status ParseError(const Frame& frame);

/// FNV-1a-64 over the canonical serialized form of a result — the compact
/// bitwise fingerprint `sky client --wait` prints, which the serve smoke
/// compares across server/in-process/recovered runs.
uint64_t ResultFingerprint(const core::EngineResult& r);

}  // namespace sky::serve

#endif  // SKYSCRAPER_SERVE_PROTOCOL_H_
