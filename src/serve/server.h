#ifndef SKYSCRAPER_SERVE_SERVER_H_
#define SKYSCRAPER_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/skyscraper.h"
#include "core/multi_stream.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "util/result.h"

namespace sky::serve {

/// Configuration of one `sky serve` process: the model it serves, the
/// per-stream provisioning every admitted session runs under, the pooled
/// budget that gates admission, and the checkpoint cadence.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (read it back via
  /// Server::port()). The server is deliberately loopback-only: it is a
  /// single-machine multi-tenant ingestion daemon, not an internet service.
  int port = 0;
  /// Model file (io::SaveOfflineModel format) every session serves from —
  /// train-once / serve-many, now with N concurrent tenants.
  std::string model_path;
  /// Registry name (api::MakeWorkloadByName) the model was trained for.
  /// Sessions must name the same workload; their content_seed makes them
  /// distinct cameras of that family.
  std::string workload = "ev";
  /// Per-stream provisioning (cores, buffer, default cloud budget).
  api::Resources resources;
  /// Pooled joint-planning budget, core-seconds per video-second. > 0 also
  /// arms admission control: a session whose all-cheapest cost would push
  /// the fleet past this budget is rejected with kResourceExhausted — the
  /// joint planner's own feasibility threshold, checked at admission time
  /// instead of discovered as an infeasible boundary later. <= 0 derives
  /// the budget from the streams' own resources each boundary (admission
  /// then only enforces max_sessions).
  double shared_budget_core_s_per_video_s = 0.0;
  /// Hard cap on concurrently running sessions; 0 = uncapped.
  size_t max_sessions = 0;
  /// Hold the virtual clock until this many sessions have been admitted,
  /// so all of them join at boundary 0 of one lockstep fleet. This is what
  /// makes N concurrent clients bitwise-comparable to one in-process
  /// StreamSet created with all N streams. 0 = start stepping immediately.
  size_t start_after_sessions = 0;
  /// When non-empty, write a serve checkpoint (session table + fleet
  /// snapshot) here every `checkpoint_every_boundaries` lockstep plan
  /// boundaries, and a final one on drain.
  std::string checkpoint_path;
  size_t checkpoint_every_boundaries = 0;
  /// StreamSet supervision budget per stream (see StreamSetOptions).
  size_t max_stream_restarts = 0;
  /// When non-empty, resume from this serve checkpoint instead of starting
  /// empty: every in-flight session continues bitwise (traces included),
  /// finished sessions keep their fetchable results, and the admission
  /// counters carry over. The checkpoint's shared budget wins over the
  /// shared_budget option.
  std::string recover_path;
};

/// The `sky serve` daemon: accepts stream sessions over a local TCP socket
/// (serve/protocol.h frames), multiplexes them onto ONE core::StreamSet
/// with joint planning under the pooled budget, and services admission,
/// live reconfiguration, metrics, and graceful drain.
///
/// Threading model — three kinds of threads, strict ownership:
///  - ONE fleet thread owns the StreamSet, the per-session simulation
///    objects, and every counter; it alone steps engines. Membership and
///    knob commands queue up and are applied only at lockstep plan
///    boundaries (the single-threaded window where they are deterministic);
///    metrics and drain requests are picked up every loop iteration.
///  - One listener thread accepts connections.
///  - One thread per connection parses request frames, enqueues commands,
///    and blocks on the reply future (or the session registry, for
///    kFetchResult). The registry is the only state connection threads
///    share with the fleet thread directly, and it carries its own lock.
///
/// The fleet steps engines serially (StreamSet::Step), which keeps served
/// results bitwise-identical to the Step()-driven in-process reference;
/// fanning intervals out on a pool inside serve mode is a ROADMAP item.
class Server {
 public:
  /// Binds, (optionally) recovers, and starts all threads. On success the
  /// server is accepting connections on 127.0.0.1:port().
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  /// Hard stop: abandons in-flight work WITHOUT a final checkpoint, closes
  /// the socket, joins every thread. Use RequestDrain() + Wait() for the
  /// graceful path.
  ~Server();

  int port() const { return port_; }

  /// Asks the fleet thread to drain: finish the current interval, write the
  /// final checkpoint (when checkpointing is configured), fail still-
  /// running waiters with a "recover to finish" error, and exit. Safe from
  /// any thread; idempotent. (The CLI calls this when SIGINT/SIGTERM is
  /// flagged; a kDrain frame triggers the same path.)
  void RequestDrain();

  /// True once the fleet thread has exited (drained or failed).
  bool finished() const { return finished_.load(); }

  /// Joins the fleet thread and shuts the network down; returns the fleet
  /// loop's terminal status. Call after RequestDrain() (or a client-sent
  /// kDrain) for a graceful exit.
  Status Wait();

 private:
  struct StreamTenant {
    std::unique_ptr<core::Workload> workload;
    std::unique_ptr<api::Skyscraper> facade;
  };

  struct Command {
    enum class Kind : uint8_t {
      kOpen,       // boundary: admit spec -> payload u64 id, u64 slot
      kClose,      // boundary: retire session_id
      kReconfig,   // boundary: apply reconfig to session_id
      kSetBudget,  // boundary: replace the shared budget
      kMetrics,    // anytime: payload = metrics JSON
      kDrain,      // boundary: checkpoint + exit
    };
    Kind kind = Kind::kMetrics;
    SessionSpec spec;
    uint64_t session_id = 0;
    core::StreamReconfig reconfig;
    double budget = 0.0;
    /// Fulfilled by the fleet thread with the encoded success-reply payload
    /// (or the rejection Status).
    std::promise<Result<std::string>> reply;
  };

  explicit Server(ServerOptions options);

  /// Loads the base model, binds the socket, optionally recovers.
  Status Init();
  Status RecoverFromServeCheckpoint();

  /// Builds one admitted session's simulation: workload instance, facade
  /// with the served model loaded, and the resolved StreamEngineJob.
  Result<core::StreamEngineJob> BuildJob(const SessionSpec& spec,
                                         StreamTenant* tenant) const;

  /// min_k cost(k) of one more session of the served model — the marginal
  /// all-cheapest cost admission control charges a newcomer.
  double NewcomerCheapestCost() const;

  void FleetLoop();
  void HarvestFinished();
  Result<std::string> Admit(const SessionSpec& spec);
  void ServiceBoundaryCommand(Command* cmd);
  std::string CollectMetricsJson();
  Status WriteServeCheckpoint();

  /// Enqueues a command for the fleet thread and blocks on its reply.
  /// Refuses (instead of hanging) once the fleet loop has closed the queue.
  Result<std::string> Dispatch(std::unique_ptr<Command> cmd);

  void ListenLoop();
  void Connection(int fd);
  /// Handles one request frame; returns the reply (type, payload).
  std::pair<FrameType, std::string> HandleRequest(const Frame& request);

  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::chrono::steady_clock::time_point started_at_;

  /// The served model, loaded once: resolves spec defaults and prices
  /// admission. Sessions load their own facade-owned copies.
  std::unique_ptr<core::Workload> base_workload_;
  std::unique_ptr<api::Skyscraper> base_facade_;

  // --- Fleet-thread-owned state (no lock; see threading model) ---
  std::unique_ptr<core::StreamSet> fleet_;
  std::vector<StreamTenant> tenants_;  ///< slot-parallel to the fleet
  uint64_t sessions_accepted_ = 0;
  uint64_t sessions_rejected_ = 0;
  uint64_t boundaries_seen_ = 0;
  double shared_budget_ = 0.0;
  Status fleet_status_;
  Status last_checkpoint_status_;

  SessionRegistry registry_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Command>> queue_;
  bool drain_requested_ = false;
  bool queue_closed_ = false;

  std::atomic<bool> stop_{false};      ///< hard stop (destructor)
  std::atomic<bool> finished_{false};  ///< fleet thread exited

  std::thread fleet_thread_;
  std::thread listen_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  bool joined_ = false;
};

}  // namespace sky::serve

#endif  // SKYSCRAPER_SERVE_SERVER_H_
