#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/checkpoint_io.h"

namespace sky::serve {

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Client> Client::Connect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::NotFound("connect to 127.0.0.1:" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
    ::close(fd);
    return s;
  }
  Client client(fd);
  std::string hello;
  io::wire::PutU32(&hello, kProtocolVersion);
  auto reply = client.RoundTrip(FrameType::kHello, hello, FrameType::kHelloOk);
  if (!reply.ok()) return reply.status();
  return client;
}

Result<Frame> Client::RoundTrip(FrameType request, const std::string& payload,
                                FrameType expected_reply) {
  SKY_RETURN_NOT_OK(WriteFrame(fd_, request, payload));
  Frame reply;
  SKY_RETURN_NOT_OK(ReadFrame(fd_, &reply));
  if (reply.type == FrameType::kError) return ParseError(reply);
  if (reply.type != expected_reply) {
    return Status::Internal("unexpected reply frame type");
  }
  return reply;
}

Result<std::pair<uint64_t, uint64_t>> Client::OpenSession(
    const SessionSpec& spec) {
  std::string payload;
  AppendSessionSpec(spec, &payload);
  auto reply =
      RoundTrip(FrameType::kOpenSession, payload, FrameType::kSessionOpened);
  if (!reply.ok()) return reply.status();
  io::wire::Cursor c(reply->payload.data(), reply->payload.size());
  uint64_t id = 0, slot = 0;
  SKY_RETURN_NOT_OK(c.ReadU64(&id));
  SKY_RETURN_NOT_OK(c.ReadU64(&slot));
  return std::make_pair(id, slot);
}

Result<core::EngineResult> Client::FetchResult(uint64_t id) {
  std::string payload;
  io::wire::PutU64(&payload, id);
  auto reply = RoundTrip(FrameType::kFetchResult, payload, FrameType::kResult);
  if (!reply.ok()) return reply.status();
  io::wire::Cursor c(reply->payload.data(), reply->payload.size());
  uint64_t echoed = 0;
  SKY_RETURN_NOT_OK(c.ReadU64(&echoed));
  if (echoed != id) {
    return Status::Internal("result frame echoes a different session id");
  }
  core::EngineResult result;
  SKY_RETURN_NOT_OK(io::ParseEngineResult(&c, &result));
  return result;
}

Status Client::Reconfigure(uint64_t id, const core::StreamReconfig& changes) {
  std::string payload;
  AppendReconfigure(id, changes, &payload);
  return RoundTrip(FrameType::kReconfigure, payload, FrameType::kOk).status();
}

Status Client::SetSharedBudget(double core_s_per_video_s) {
  std::string payload;
  io::wire::PutF64(&payload, core_s_per_video_s);
  return RoundTrip(FrameType::kSetBudget, payload, FrameType::kOk).status();
}

Result<std::string> Client::Metrics() {
  auto reply =
      RoundTrip(FrameType::kMetrics, std::string(), FrameType::kMetricsReport);
  if (!reply.ok()) return reply.status();
  io::wire::Cursor c(reply->payload.data(), reply->payload.size());
  std::string json;
  SKY_RETURN_NOT_OK(c.ReadString(&json));
  return json;
}

Status Client::CloseSession(uint64_t id) {
  std::string payload;
  io::wire::PutU64(&payload, id);
  return RoundTrip(FrameType::kCloseSession, payload, FrameType::kOk).status();
}

Status Client::Drain() {
  return RoundTrip(FrameType::kDrain, std::string(), FrameType::kOk).status();
}

}  // namespace sky::serve
