#ifndef SKYSCRAPER_LP_KNAPSACK_H_
#define SKYSCRAPER_LP_KNAPSACK_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace sky::lp {

struct KnapsackSolution {
  std::vector<bool> taken;
  double total_value = 0.0;
  double total_weight = 0.0;
};

/// Greedy 0-1 knapsack by value density. Classic 1/2-approximation when
/// combined with the best single item (which this does).
KnapsackSolution GreedyKnapsack(const std::vector<double>& values,
                                const std::vector<double>& weights,
                                double capacity);

/// Exact 0-1 knapsack via dynamic programming on discretized weights.
/// `resolution` is the number of weight buckets (larger = more precise).
Result<KnapsackSolution> ExactKnapsack(const std::vector<double>& values,
                                       const std::vector<double>& weights,
                                       double capacity,
                                       size_t resolution = 10000);

struct ChoiceSolution {
  /// choice[g] = selected option index within group g.
  std::vector<size_t> choice;
  double total_value = 0.0;
  double total_weight = 0.0;
};

/// Greedy multiple-choice knapsack: every group must pick exactly one option;
/// maximize summed value subject to summed weight <= capacity. Starts from
/// the cheapest option per group and greedily applies the upgrade with the
/// best marginal value/weight ratio while budget remains. This is the
/// "greedy 0-1 knapsack approximation" the paper's Optimum baseline and
/// idealized system (Appendix B) use to assign a knob configuration to every
/// video segment under a work budget.
///
/// Fails if any group is empty or even the all-cheapest selection exceeds
/// capacity (in that case there is no feasible assignment).
Result<ChoiceSolution> MultipleChoiceKnapsackGreedy(
    const std::vector<std::vector<double>>& values,
    const std::vector<std::vector<double>>& weights, double capacity);

}  // namespace sky::lp

#endif  // SKYSCRAPER_LP_KNAPSACK_H_
