#ifndef SKYSCRAPER_LP_MCKP_H_
#define SKYSCRAPER_LP_MCKP_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace sky::lp {

enum class MckpStatus { kOptimal, kInfeasible };

/// One group's share of a fractional MCKP solution. The LP optimum puts all
/// of a group's mass on at most two adjacent hull points: `lo` carries
/// 1 - frac_hi and `hi` carries frac_hi (lo == hi for an integral choice).
/// Indices are flat option indices into the problem's cost/value arrays.
struct MckpGroupChoice {
  size_t lo = 0;
  size_t hi = 0;
  double frac_hi = 0.0;
};

struct MckpSolution {
  MckpStatus status = MckpStatus::kInfeasible;
  std::vector<MckpGroupChoice> choice;  ///< one entry per group
  double objective = 0.0;
  double total_cost = 0.0;
  /// Dual price of the budget row at the optimum (marginal value per unit of
  /// extra budget); 0 when the budget is not binding.
  double lambda = 0.0;
};

/// Exact solver for the fractional multiple-choice knapsack problem — the
/// knob-planning LP of §4.1 without its generic-LP disguise:
///
///   maximize   sum_g sum_j value[g][j] * x[g][j]
///   subject to sum_j x[g][j] = 1 for every group g
///              sum_{g,j} cost[g][j] * x[g][j] <= budget,  x >= 0
///
/// Per group it builds the upper concave hull over (cost, value) points; the
/// optimum then follows from the Lagrangian dual of the budget row: hull
/// edges, taken anywhere in decreasing value/cost ratio, are exactly the
/// upgrades worth buying while their ratio exceeds the budget multiplier
/// lambda. Instead of numerically bisecting lambda, the solver sorts the
/// edge ratios (the dual's breakpoints) and sweeps to the budget crossing,
/// splitting the crossing edge exactly — same fixpoint, no tolerance.
/// O(n log n) in the total option count, versus simplex pivots on a dense
/// (#groups + 1) x n tableau.
///
/// Matches lp::SolveLp on the equivalent program to fp round-off (both are
/// exact); tests/mckp_test.cc enforces parity on randomized instances.
///
/// Related but deliberately separate: lp/knapsack.h's
/// MultipleChoiceKnapsackGreedy is the *integral* greedy approximation the
/// paper's Optimum/Idealized baselines use (no fractional split, its own
/// frontier epsilons); this solver is the exact LP optimum the online
/// planner needs. Their hulls are not shared so the baselines' published
/// behavior cannot drift when the planner's tolerances change.
class MckpSolver {
 public:
  /// Groups are flat: group g owns options [offsets[g], offsets[g+1]) of
  /// `costs`/`values` and must be non-empty. Costs must be non-negative.
  /// kInfeasible when even the cheapest choice per group exceeds `budget`.
  /// Scratch arrays (and the solution's) are reused across calls, so a
  /// long-lived solver allocates nothing at steady state.
  Status Solve(const double* costs, const double* values,
               const size_t* offsets, size_t num_groups, double budget,
               MckpSolution* out);

 private:
  struct Edge {
    double dc = 0.0;  ///< cost increase along the hull edge (> 0)
    double dv = 0.0;  ///< value increase along the hull edge (> 0)
    size_t group = 0;
    size_t from = 0;  ///< flat option indices
    size_t to = 0;
  };

  std::vector<size_t> order_;  ///< per-group cost-sorted option indices
  std::vector<size_t> hull_;   ///< scratch: one group's hull, flat indices
  std::vector<Edge> edges_;
  std::vector<size_t> edge_order_;
};

}  // namespace sky::lp

#endif  // SKYSCRAPER_LP_MCKP_H_
