#ifndef SKYSCRAPER_LP_MCKP_H_
#define SKYSCRAPER_LP_MCKP_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace sky::lp {

enum class MckpStatus { kOptimal, kInfeasible };

/// One group's share of a fractional MCKP solution. The LP optimum puts all
/// of a group's mass on at most two adjacent hull points: `lo` carries
/// 1 - frac_hi and `hi` carries frac_hi (lo == hi for an integral choice).
/// Indices are flat option indices into the problem's cost/value arrays.
struct MckpGroupChoice {
  size_t lo = 0;
  size_t hi = 0;
  double frac_hi = 0.0;
};

struct MckpSolution {
  MckpStatus status = MckpStatus::kInfeasible;
  std::vector<MckpGroupChoice> choice;  ///< one entry per group
  double objective = 0.0;
  double total_cost = 0.0;
  /// Dual price of the budget row at the optimum (marginal value per unit of
  /// extra budget); 0 when the budget is not binding.
  double lambda = 0.0;
};

/// Exact solver for the fractional multiple-choice knapsack problem — the
/// knob-planning LP of §4.1 without its generic-LP disguise:
///
///   maximize   sum_g sum_j value[g][j] * x[g][j]
///   subject to sum_j x[g][j] = 1 for every group g
///              sum_{g,j} cost[g][j] * x[g][j] <= budget,  x >= 0
///
/// Per group it builds the upper concave hull over (cost, value) points; the
/// optimum then follows from the Lagrangian dual of the budget row: hull
/// edges, taken anywhere in decreasing value/cost ratio, are exactly the
/// upgrades worth buying while their ratio exceeds the budget multiplier
/// lambda. Instead of numerically bisecting lambda, the solver sorts the
/// edge ratios (the dual's breakpoints) and sweeps to the budget crossing,
/// splitting the crossing edge exactly — same fixpoint, no tolerance.
/// O(n log n) in the total option count, versus simplex pivots on a dense
/// (#groups + 1) x n tableau.
///
/// Matches lp::SolveLp on the equivalent program to fp round-off (both are
/// exact); tests/mckp_test.cc enforces parity on randomized instances.
///
/// Related but deliberately separate: lp/knapsack.h's
/// MultipleChoiceKnapsackGreedy is the *integral* greedy approximation the
/// paper's Optimum/Idealized baselines use (no fractional split, its own
/// frontier epsilons); this solver is the exact LP optimum the online
/// planner needs. Their hulls are not shared so the baselines' published
/// behavior cannot drift when the planner's tolerances change.
class MckpSolver {
 public:
  /// Groups are flat: group g owns options [offsets[g], offsets[g+1]) of
  /// `costs`/`values` and must be non-empty. Costs must be non-negative.
  /// kInfeasible when even the cheapest choice per group exceeds `budget`.
  /// Scratch arrays (and the solution's) are reused across calls, so a
  /// long-lived solver allocates nothing at steady state.
  Status Solve(const double* costs, const double* values,
               const size_t* offsets, size_t num_groups, double budget,
               MckpSolution* out);

 private:
  struct Edge {
    double dc = 0.0;  ///< cost increase along the hull edge (> 0)
    double dv = 0.0;  ///< value increase along the hull edge (> 0)
    size_t group = 0;
    size_t from = 0;  ///< flat option indices
    size_t to = 0;
  };

  std::vector<size_t> order_;  ///< per-group cost-sorted option indices
  std::vector<size_t> hull_;   ///< scratch: one group's hull, flat indices
  std::vector<Edge> edges_;
  std::vector<size_t> edge_order_;
};

/// Incremental fractional-MCKP solver for repeated solves over slowly
/// changing groups — the plan-boundary hot path of joint multi-stream
/// planning, where consecutive boundaries share almost all structure.
///
/// Three facts make boundaries cheap:
///  1. A group's upper concave hull (and every edge's value/cost ratio) is
///     invariant under uniform scaling of its (cost, value) points — so a
///     forecast update is ScaleGroup (O(1)), not a hull rebuild.
///  2. The global edge order of the dual sweep is (ratio desc, group asc,
///     edge asc) — all scale-invariant — so it is computed once, when hulls
///     are (re)built, never per solve.
///  3. The optimal frontier ("every edge priced above lambda* is taken")
///     moves little between boundaries, so Solve warm-starts from the
///     previous frontier and repairs it with heap-ordered exchanges:
///     amortized O(groups + frontier movement) per solve instead of the
///     cold solver's O(n log n) re-sort.
///
/// Produces the same optimum as MckpSolver on the equivalent flat problem
/// (identical hull construction and edge order; objectives agree to fp
/// accumulation order — see mckp_test.cc parity tests). Solutions use
/// group-LOCAL option indices (0-based within each group's option array),
/// unlike MckpSolver's flat indices.
class IncrementalMckpSolver {
 public:
  /// Discards all cached state and resizes to `num_groups` empty groups;
  /// every group must be SetGroup() before the first Solve().
  void Reset(size_t num_groups);

  size_t num_groups() const { return groups_.size(); }

  /// (Re)builds group `g`'s hull from `num_options` (cost, value) points.
  /// Costs must be finite and >= 0, values finite, num_options >= 1.
  /// O(num_options log num_options); resets the group's warm frontier.
  Status SetGroup(size_t g, const double* costs, const double* values,
                  size_t num_options);

  /// Declares group `g`'s effective coefficients to be `scale` times the
  /// points last passed to SetGroup — the forecast-reweighting fast path.
  /// `scale` must be finite and >= 0; a zero scale pins the group to its
  /// cheapest hull point at zero cost and value. O(1).
  Status ScaleGroup(size_t g, double scale);

  /// Exact warm-started solve of the current (scaled) problem against
  /// `budget`. `out->choice[g]` holds group-LOCAL option indices. The warm
  /// frontier persists across calls, so successive solves with similar
  /// scales and budgets do O(groups + movement) work.
  Status Solve(double budget, MckpSolution* out);

 private:
  struct Group {
    bool initialized = false;
    double scale = 1.0;
    double base_cost = 0.0;   ///< unscaled cost of the cheapest hull point
    double base_value = 0.0;  ///< unscaled value of the cheapest hull point
    std::vector<size_t> pt;   ///< hull point local indices; pt[0] = base
    std::vector<double> dc;   ///< unscaled edge deltas, ratio-descending
    std::vector<double> dv;
    std::vector<double> pre_dc;  ///< prefix sums of dc/dv, size edges + 1
    std::vector<double> pre_dv;
    size_t taken = 0;  ///< warm frontier: fully-taken edge count
  };

  /// Heap entry: edge `edge` of group `group`. Entries go stale when the
  /// group's cursor moves; pops validate against the live cursor.
  struct HeapEntry {
    size_t group = 0;
    size_t edge = 0;
  };

  /// True when entry `a`'s edge has strictly lower sweep priority than
  /// `b`'s: (ratio desc, group asc, edge asc), ratios compared exactly by
  /// cross-multiplication.
  bool PriorityLess(const HeapEntry& a, const HeapEntry& b) const;

  std::vector<Group> groups_;
  std::vector<size_t> order_;  ///< SetGroup scratch: cost-sorted options
  std::vector<size_t> hull_;   ///< SetGroup scratch: hull point indices
  std::vector<HeapEntry> take_heap_;    ///< max-heap: next edges to take
  std::vector<HeapEntry> untake_heap_;  ///< min-heap: taken edges to return
};

}  // namespace sky::lp

#endif  // SKYSCRAPER_LP_MCKP_H_
