#ifndef SKYSCRAPER_LP_SIMPLEX_H_
#define SKYSCRAPER_LP_SIMPLEX_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace sky::lp {

/// maximize   c^T x
/// subject to A_ub x <= b_ub
///            A_eq x  = b_eq
///            x >= 0
///
/// This is the exact shape of the knob planner's program (§4.1): one
/// budget inequality plus one normalization equality per content category.
struct LinearProgram {
  std::vector<double> objective;               ///< c, length n
  std::vector<std::vector<double>> a_ub;       ///< rows of length n
  std::vector<double> b_ub;
  std::vector<std::vector<double>> a_eq;       ///< rows of length n
  std::vector<double> b_eq;

  size_t NumVariables() const { return objective.size(); }
};

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  /// The iteration guard was exhausted before optimality was proven. When
  /// the limit hit in phase 2, `x` holds the best feasible point found
  /// (best effort); when it hit in phase 1, `x` is empty and even
  /// feasibility is undetermined.
  kIterationLimit,
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;
  double objective_value = 0.0;
};

struct LpOptions {
  /// Hard cap on simplex iterations per phase; 0 means an automatic guard
  /// scaled to the problem size. Exposed so the iteration-limit path is
  /// testable on small programs.
  size_t max_iterations = 0;
};

/// Dense two-phase primal simplex with Bland's anti-cycling rule. Intended
/// for the small programs Skyscraper produces (|C|·|K| variables, typically
/// well under a thousand); fails on malformed input shapes.
Result<LpSolution> SolveLp(const LinearProgram& lp,
                           const LpOptions& options = {});

}  // namespace sky::lp

#endif  // SKYSCRAPER_LP_SIMPLEX_H_
