#include "lp/mckp.h"

#include <algorithm>
#include <cmath>

namespace sky::lp {

namespace {

constexpr double kEps = 1e-9;

/// Builds the upper concave hull over points [beg, end) of the flat
/// (costs, values) arrays — cost strictly increasing, value strictly
/// increasing, slopes strictly decreasing along it. `order` must have size
/// >= end ([beg, end) is used as sorting scratch); hull point indices (into
/// the flat arrays) are written to `hull`, replacing its contents. Shared by
/// the cold MckpSolver and IncrementalMckpSolver::SetGroup so both see the
/// identical hull for identical points.
void BuildUpperHull(const double* costs, const double* values, size_t beg,
                    size_t end, std::vector<size_t>* order,
                    std::vector<size_t>* hull) {
  for (size_t j = beg; j < end; ++j) (*order)[j] = j;
  // Cost ascending; on equal cost the most valuable first, so every later
  // equal-cost point is dominated and skipped by the hull scan.
  std::sort(order->begin() + static_cast<ptrdiff_t>(beg),
            order->begin() + static_cast<ptrdiff_t>(end),
            [&](size_t a, size_t b) {
              if (costs[a] != costs[b]) return costs[a] < costs[b];
              return values[a] > values[b];
            });

  hull->clear();
  for (size_t i = beg; i < end; ++i) {
    size_t p = (*order)[i];
    if (!hull->empty()) {
      // Cost never decreases along the sort, so a point that is not more
      // valuable than the hull tip is dominated.
      if (values[p] <= values[hull->back()] + kEps) continue;
      // Same cost as the tip (within eps) but strictly more valuable:
      // the tip is dominated, not p.
      if (costs[p] <= costs[hull->back()] + kEps) hull->pop_back();
    }
    // Pop hull points that fall under the chord to p: keep slopes
    // strictly decreasing, merging collinear edges.
    while (hull->size() >= 2) {
      size_t b = (*hull)[hull->size() - 1];
      size_t a = (*hull)[hull->size() - 2];
      double lhs = (values[b] - values[a]) * (costs[p] - costs[b]);
      double rhs = (values[p] - values[b]) * (costs[b] - costs[a]);
      if (lhs <= rhs) {
        hull->pop_back();
      } else {
        break;
      }
    }
    hull->push_back(p);
  }
}

}  // namespace

Status MckpSolver::Solve(const double* costs, const double* values,
                         const size_t* offsets, size_t num_groups,
                         double budget, MckpSolution* out) {
  if (costs == nullptr || values == nullptr || offsets == nullptr ||
      out == nullptr) {
    return Status::InvalidArgument("null MCKP input");
  }
  if (num_groups == 0) {
    return Status::InvalidArgument("MCKP has no groups");
  }
  if (!std::isfinite(budget)) {
    return Status::InvalidArgument("MCKP budget must be finite");
  }
  for (size_t g = 0; g < num_groups; ++g) {
    if (offsets[g] >= offsets[g + 1]) {
      return Status::InvalidArgument("empty or malformed MCKP group");
    }
  }
  size_t n = offsets[num_groups];
  for (size_t j = 0; j < n; ++j) {
    if (costs[j] < 0.0 || !std::isfinite(costs[j]) ||
        !std::isfinite(values[j])) {
      return Status::InvalidArgument("MCKP costs must be finite and >= 0");
    }
  }

  out->choice.assign(num_groups, MckpGroupChoice{});
  out->objective = 0.0;
  out->total_cost = 0.0;
  out->lambda = 0.0;

  order_.resize(n);
  edges_.clear();
  double base_cost = 0.0;
  double base_value = 0.0;

  for (size_t g = 0; g < num_groups; ++g) {
    BuildUpperHull(costs, values, offsets[g], offsets[g + 1], &order_, &hull_);

    size_t base = hull_.front();
    (*out).choice[g] = MckpGroupChoice{base, base, 0.0};
    base_cost += costs[base];
    base_value += values[base];
    for (size_t h = 0; h + 1 < hull_.size(); ++h) {
      Edge e;
      e.from = hull_[h];
      e.to = hull_[h + 1];
      e.dc = costs[e.to] - costs[e.from];
      e.dv = values[e.to] - values[e.from];
      e.group = g;
      edges_.push_back(e);
    }
  }

  if (base_cost > budget + kEps) {
    out->status = MckpStatus::kInfeasible;
    return Status::Ok();
  }

  // Dual sweep: the edge ratios dv/dc are the breakpoints of the Lagrangian
  // dual in lambda. Visiting them in decreasing order applies every upgrade
  // priced above lambda*, and the edge that crosses the budget is split
  // exactly — within one group ratios strictly decrease along the hull, so
  // the global order always upgrades a group through adjacent hull points.
  edge_order_.resize(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) edge_order_[i] = i;
  std::sort(edge_order_.begin(), edge_order_.end(), [&](size_t a, size_t b) {
    const Edge& ea = edges_[a];
    const Edge& eb = edges_[b];
    double lhs = ea.dv * eb.dc;
    double rhs = eb.dv * ea.dc;
    if (lhs != rhs) return lhs > rhs;
    // Tie-break (group asc, edge asc) — the same canonical total order the
    // incremental solver's heaps use, so equal-ratio instances resolve to
    // the identical optimum in both solvers.
    if (ea.group != eb.group) return ea.group < eb.group;
    return ea.from < eb.from;
  });

  double remaining = budget - base_cost;
  out->objective = base_value;
  out->total_cost = base_cost;
  for (size_t i : edge_order_) {
    const Edge& e = edges_[i];
    if (e.dc <= remaining + kEps) {
      remaining -= e.dc;
      if (remaining < 0.0) remaining = 0.0;
      out->objective += e.dv;
      out->total_cost += e.dc;
      out->choice[e.group] = MckpGroupChoice{e.to, e.to, 0.0};
    } else {
      double frac = remaining / e.dc;
      out->objective += frac * e.dv;
      out->total_cost += remaining;
      out->choice[e.group] = MckpGroupChoice{e.from, e.to, frac};
      out->lambda = e.dv / e.dc;
      remaining = 0.0;
      break;
    }
  }

  out->status = MckpStatus::kOptimal;
  return Status::Ok();
}

void IncrementalMckpSolver::Reset(size_t num_groups) {
  groups_.assign(num_groups, Group{});
}

Status IncrementalMckpSolver::SetGroup(size_t g, const double* costs,
                                       const double* values,
                                       size_t num_options) {
  if (g >= groups_.size()) {
    return Status::InvalidArgument("MCKP group index out of range");
  }
  if (costs == nullptr || values == nullptr || num_options == 0) {
    return Status::InvalidArgument("empty or null MCKP group");
  }
  for (size_t j = 0; j < num_options; ++j) {
    if (costs[j] < 0.0 || !std::isfinite(costs[j]) ||
        !std::isfinite(values[j])) {
      return Status::InvalidArgument("MCKP costs must be finite and >= 0");
    }
  }

  order_.resize(num_options);
  BuildUpperHull(costs, values, 0, num_options, &order_, &hull_);

  Group& grp = groups_[g];
  grp.pt.assign(hull_.begin(), hull_.end());
  grp.base_cost = costs[hull_.front()];
  grp.base_value = values[hull_.front()];
  size_t edges = hull_.size() - 1;
  grp.dc.resize(edges);
  grp.dv.resize(edges);
  grp.pre_dc.resize(edges + 1);
  grp.pre_dv.resize(edges + 1);
  grp.pre_dc[0] = 0.0;
  grp.pre_dv[0] = 0.0;
  for (size_t h = 0; h < edges; ++h) {
    grp.dc[h] = costs[hull_[h + 1]] - costs[hull_[h]];
    grp.dv[h] = values[hull_[h + 1]] - values[hull_[h]];
    grp.pre_dc[h + 1] = grp.pre_dc[h] + grp.dc[h];
    grp.pre_dv[h + 1] = grp.pre_dv[h] + grp.dv[h];
  }
  // A rebuilt hull invalidates the old cursor; Solve repairs from scratch
  // for this group (its heaps revalidate lazily against the new cursor).
  grp.taken = 0;
  grp.scale = 1.0;
  grp.initialized = true;
  return Status::Ok();
}

Status IncrementalMckpSolver::ScaleGroup(size_t g, double scale) {
  if (g >= groups_.size()) {
    return Status::InvalidArgument("MCKP group index out of range");
  }
  if (!groups_[g].initialized) {
    return Status::FailedPrecondition("ScaleGroup before SetGroup");
  }
  if (!std::isfinite(scale) || scale < 0.0) {
    return Status::InvalidArgument("MCKP scale must be finite and >= 0");
  }
  groups_[g].scale = scale;
  return Status::Ok();
}

bool IncrementalMckpSolver::PriorityLess(const HeapEntry& a,
                                         const HeapEntry& b) const {
  const Group& ga = groups_[a.group];
  const Group& gb = groups_[b.group];
  // Ratio desc via cross-multiplication (dc > 0 on a hull); the tie-break
  // matches the cold solver's edge order so both resolve equal ratios the
  // same way. Scales cancel out of the comparison, which is what keeps the
  // canonical order stable under ScaleGroup.
  double lhs = ga.dv[a.edge] * gb.dc[b.edge];
  double rhs = gb.dv[b.edge] * ga.dc[a.edge];
  if (lhs != rhs) return lhs < rhs;
  if (a.group != b.group) return a.group > b.group;
  return a.edge > b.edge;
}

Status IncrementalMckpSolver::Solve(double budget, MckpSolution* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("null MCKP output");
  }
  if (groups_.empty()) {
    return Status::InvalidArgument("MCKP has no groups");
  }
  if (!std::isfinite(budget)) {
    return Status::InvalidArgument("MCKP budget must be finite");
  }
  size_t num_groups = groups_.size();
  for (const Group& g : groups_) {
    if (!g.initialized) {
      return Status::FailedPrecondition("SetGroup every group before Solve");
    }
  }

  out->choice.assign(num_groups, MckpGroupChoice{});
  out->objective = 0.0;
  out->total_cost = 0.0;
  out->lambda = 0.0;

  double base_cost = 0.0;
  for (const Group& g : groups_) base_cost += g.scale * g.base_cost;
  if (base_cost > budget + kEps) {
    for (size_t g = 0; g < num_groups; ++g) {
      size_t base = groups_[g].pt.front();
      out->choice[g] = MckpGroupChoice{base, base, 0.0};
    }
    out->status = MckpStatus::kInfeasible;
    return Status::Ok();
  }
  double remaining = budget - base_cost;

  // Cost the inherited frontier under the current scales via the prefix
  // sums, then repair it with heap exchanges toward the canonical optimum:
  // the previous frontier is near-optimal when scales and budget moved
  // little, so the heaps see O(movement) pops. Heap seeds are O(groups);
  // entries going stale as cursors move are dropped lazily on inspection.
  double committed = 0.0;
  take_heap_.clear();
  untake_heap_.clear();
  for (size_t g = 0; g < num_groups; ++g) {
    Group& grp = groups_[g];
    if (grp.scale == 0.0) {
      // A zero-scale group contributes nothing either way; pin it to its
      // cheapest hull point (documented contract) instead of letting its
      // now-free edges drift through the sweep. Cursor reset is safe: any
      // stale heap entries fail validation and drop lazily.
      grp.taken = 0;
      continue;
    }
    committed += grp.scale * grp.pre_dc[grp.taken];
    if (grp.taken < grp.dc.size()) take_heap_.push_back({g, grp.taken});
    if (grp.taken > 0) untake_heap_.push_back({g, grp.taken - 1});
  }
  auto take_less = [this](const HeapEntry& a, const HeapEntry& b) {
    return PriorityLess(a, b);  // max-heap: highest priority on top
  };
  auto untake_less = [this](const HeapEntry& a, const HeapEntry& b) {
    return PriorityLess(b, a);  // min-heap: lowest priority on top
  };
  std::make_heap(take_heap_.begin(), take_heap_.end(), take_less);
  std::make_heap(untake_heap_.begin(), untake_heap_.end(), untake_less);

  // Peek helpers: drop stale tops (cursor moved since push) until a live
  // entry surfaces. An entry is live only while it is exactly the group's
  // next edge to take (resp. last edge taken).
  auto top_take = [&](HeapEntry* e) -> bool {
    while (!take_heap_.empty()) {
      HeapEntry t = take_heap_.front();
      const Group& grp = groups_[t.group];
      if (t.edge == grp.taken && t.edge < grp.dc.size()) {
        *e = t;
        return true;
      }
      std::pop_heap(take_heap_.begin(), take_heap_.end(), take_less);
      take_heap_.pop_back();
    }
    return false;
  };
  auto top_untake = [&](HeapEntry* e) -> bool {
    while (!untake_heap_.empty()) {
      HeapEntry t = untake_heap_.front();
      const Group& grp = groups_[t.group];
      if (grp.taken > 0 && t.edge == grp.taken - 1) {
        *e = t;
        return true;
      }
      std::pop_heap(untake_heap_.begin(), untake_heap_.end(), untake_less);
      untake_heap_.pop_back();
    }
    return false;
  };
  auto pop_take = [&] {
    std::pop_heap(take_heap_.begin(), take_heap_.end(), take_less);
    take_heap_.pop_back();
  };
  auto pop_untake = [&] {
    std::pop_heap(untake_heap_.begin(), untake_heap_.end(), untake_less);
    untake_heap_.pop_back();
  };
  auto do_take = [&](const HeapEntry& e) {
    Group& grp = groups_[e.group];
    committed += grp.scale * grp.dc[e.edge];
    if (committed > remaining) committed = remaining;
    untake_heap_.push_back(e);
    std::push_heap(untake_heap_.begin(), untake_heap_.end(), untake_less);
    ++grp.taken;
    if (grp.taken < grp.dc.size()) {
      take_heap_.push_back({e.group, grp.taken});
      std::push_heap(take_heap_.begin(), take_heap_.end(), take_less);
    }
  };
  auto do_untake = [&](const HeapEntry& e) {
    Group& grp = groups_[e.group];
    --grp.taken;  // e.edge == grp.taken now
    committed -= grp.scale * grp.dc[e.edge];
    if (committed < 0.0) committed = 0.0;
    take_heap_.push_back(e);
    std::push_heap(take_heap_.begin(), take_heap_.end(), take_less);
    if (grp.taken > 0) {
      untake_heap_.push_back({e.group, grp.taken - 1});
      std::push_heap(untake_heap_.begin(), untake_heap_.end(), untake_less);
    }
  };

  // Phase 1 — shed: the inherited frontier can overshoot the budget after a
  // scale-up or budget cut; return the lowest-priority taken edges first.
  HeapEntry u;
  while (committed > remaining + kEps && top_untake(&u)) {
    pop_untake();
    do_untake(u);
  }

  // Phase 2 — advance: take edges in canonical priority order while they
  // fit. When the top edge does not fit but a LOWER-priority edge is still
  // taken (possible after SetGroup reset a cursor mid-frontier), that edge
  // surrenders its budget first — this restores "taken = canonical prefix"
  // from any start state. Only then is the top edge the true crossing edge.
  // Terminates because take-heap top priorities are non-increasing (pushed
  // entries never exceed the current top), so a phase-2-taken edge can
  // never satisfy the untake condition later.
  bool crossed = false;
  HeapEntry cross{};
  double cross_frac = 0.0;
  HeapEntry t;
  while (top_take(&t)) {
    const Group& grp = groups_[t.group];
    double sdc = grp.scale * grp.dc[t.edge];
    if (sdc <= remaining - committed + kEps) {
      pop_take();
      do_take(t);
      continue;
    }
    if (top_untake(&u) && PriorityLess(u, t)) {
      pop_untake();
      do_untake(u);
      continue;
    }
    double leftover = remaining - committed;
    if (leftover < 0.0) leftover = 0.0;
    cross = t;
    cross_frac = leftover / sdc;  // sdc > leftover + kEps > 0 here
    if (cross_frac > 1.0) cross_frac = 1.0;
    out->lambda = grp.dv[cross.edge] / grp.dc[cross.edge];
    crossed = true;
    break;
  }

  // Deterministic extraction: recompute objective and cost in group order
  // from the prefix sums, so the reported numbers depend only on the final
  // frontier — never on the repair path that reached it.
  double objective = 0.0;
  double total_cost = 0.0;
  for (size_t g = 0; g < num_groups; ++g) {
    const Group& grp = groups_[g];
    objective += grp.scale * (grp.base_value + grp.pre_dv[grp.taken]);
    total_cost += grp.scale * (grp.base_cost + grp.pre_dc[grp.taken]);
    size_t lo = grp.pt[grp.taken];
    out->choice[g] = MckpGroupChoice{lo, lo, 0.0};
  }
  if (crossed) {
    const Group& grp = groups_[cross.group];
    out->choice[cross.group] = MckpGroupChoice{
        grp.pt[cross.edge], grp.pt[cross.edge + 1], cross_frac};
    objective += cross_frac * grp.scale * grp.dv[cross.edge];
    total_cost += cross_frac * grp.scale * grp.dc[cross.edge];
  }
  out->objective = objective;
  out->total_cost = total_cost;
  out->status = MckpStatus::kOptimal;
  return Status::Ok();
}

}  // namespace sky::lp
