#include "lp/mckp.h"

#include <algorithm>
#include <cmath>

namespace sky::lp {

namespace {

constexpr double kEps = 1e-9;

}  // namespace

Status MckpSolver::Solve(const double* costs, const double* values,
                         const size_t* offsets, size_t num_groups,
                         double budget, MckpSolution* out) {
  if (costs == nullptr || values == nullptr || offsets == nullptr ||
      out == nullptr) {
    return Status::InvalidArgument("null MCKP input");
  }
  if (num_groups == 0) {
    return Status::InvalidArgument("MCKP has no groups");
  }
  if (!std::isfinite(budget)) {
    return Status::InvalidArgument("MCKP budget must be finite");
  }
  for (size_t g = 0; g < num_groups; ++g) {
    if (offsets[g] >= offsets[g + 1]) {
      return Status::InvalidArgument("empty or malformed MCKP group");
    }
  }
  size_t n = offsets[num_groups];
  for (size_t j = 0; j < n; ++j) {
    if (costs[j] < 0.0 || !std::isfinite(costs[j]) ||
        !std::isfinite(values[j])) {
      return Status::InvalidArgument("MCKP costs must be finite and >= 0");
    }
  }

  out->choice.assign(num_groups, MckpGroupChoice{});
  out->objective = 0.0;
  out->total_cost = 0.0;
  out->lambda = 0.0;

  order_.resize(n);
  edges_.clear();
  double base_cost = 0.0;
  double base_value = 0.0;

  for (size_t g = 0; g < num_groups; ++g) {
    size_t beg = offsets[g];
    size_t end = offsets[g + 1];
    for (size_t j = beg; j < end; ++j) order_[j] = j;
    // Cost ascending; on equal cost the most valuable first, so every later
    // equal-cost point is dominated and skipped by the hull scan.
    std::sort(order_.begin() + static_cast<ptrdiff_t>(beg),
              order_.begin() + static_cast<ptrdiff_t>(end),
              [&](size_t a, size_t b) {
                if (costs[a] != costs[b]) return costs[a] < costs[b];
                return values[a] > values[b];
              });

    // Upper concave hull over (cost, value), cost strictly increasing and
    // value strictly increasing along it; slopes strictly decreasing.
    hull_.clear();
    for (size_t i = beg; i < end; ++i) {
      size_t p = order_[i];
      if (!hull_.empty()) {
        // Cost never decreases along the sort, so a point that is not more
        // valuable than the hull tip is dominated.
        if (values[p] <= values[hull_.back()] + kEps) continue;
        // Same cost as the tip (within eps) but strictly more valuable:
        // the tip is dominated, not p.
        if (costs[p] <= costs[hull_.back()] + kEps) hull_.pop_back();
      }
      // Pop hull points that fall under the chord to p: keep slopes
      // strictly decreasing, merging collinear edges.
      while (hull_.size() >= 2) {
        size_t b = hull_[hull_.size() - 1];
        size_t a = hull_[hull_.size() - 2];
        double lhs = (values[b] - values[a]) * (costs[p] - costs[b]);
        double rhs = (values[p] - values[b]) * (costs[b] - costs[a]);
        if (lhs <= rhs) {
          hull_.pop_back();
        } else {
          break;
        }
      }
      hull_.push_back(p);
    }

    size_t base = hull_.front();
    (*out).choice[g] = MckpGroupChoice{base, base, 0.0};
    base_cost += costs[base];
    base_value += values[base];
    for (size_t h = 0; h + 1 < hull_.size(); ++h) {
      Edge e;
      e.from = hull_[h];
      e.to = hull_[h + 1];
      e.dc = costs[e.to] - costs[e.from];
      e.dv = values[e.to] - values[e.from];
      e.group = g;
      edges_.push_back(e);
    }
  }

  if (base_cost > budget + kEps) {
    out->status = MckpStatus::kInfeasible;
    return Status::Ok();
  }

  // Dual sweep: the edge ratios dv/dc are the breakpoints of the Lagrangian
  // dual in lambda. Visiting them in decreasing order applies every upgrade
  // priced above lambda*, and the edge that crosses the budget is split
  // exactly — within one group ratios strictly decrease along the hull, so
  // the global order always upgrades a group through adjacent hull points.
  edge_order_.resize(edges_.size());
  for (size_t i = 0; i < edges_.size(); ++i) edge_order_[i] = i;
  std::sort(edge_order_.begin(), edge_order_.end(), [&](size_t a, size_t b) {
    return edges_[a].dv * edges_[b].dc > edges_[b].dv * edges_[a].dc;
  });

  double remaining = budget - base_cost;
  out->objective = base_value;
  out->total_cost = base_cost;
  for (size_t i : edge_order_) {
    const Edge& e = edges_[i];
    if (e.dc <= remaining + kEps) {
      remaining -= e.dc;
      if (remaining < 0.0) remaining = 0.0;
      out->objective += e.dv;
      out->total_cost += e.dc;
      out->choice[e.group] = MckpGroupChoice{e.to, e.to, 0.0};
    } else {
      double frac = remaining / e.dc;
      out->objective += frac * e.dv;
      out->total_cost += remaining;
      out->choice[e.group] = MckpGroupChoice{e.from, e.to, frac};
      out->lambda = e.dv / e.dc;
      remaining = 0.0;
      break;
    }
  }

  out->status = MckpStatus::kOptimal;
  return Status::Ok();
}

}  // namespace sky::lp
