#include "lp/knapsack.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace sky::lp {

KnapsackSolution GreedyKnapsack(const std::vector<double>& values,
                                const std::vector<double>& weights,
                                double capacity) {
  size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double da = weights[a] > 0 ? values[a] / weights[a]
                               : std::numeric_limits<double>::infinity();
    double db = weights[b] > 0 ? values[b] / weights[b]
                               : std::numeric_limits<double>::infinity();
    return da > db;
  });

  KnapsackSolution greedy;
  greedy.taken.assign(n, false);
  double remaining = capacity;
  for (size_t i : order) {
    if (weights[i] <= remaining) {
      greedy.taken[i] = true;
      greedy.total_value += values[i];
      greedy.total_weight += weights[i];
      remaining -= weights[i];
    }
  }

  // Compare against the best single item that fits; taking the max of the
  // two turns density-greedy into a 1/2-approximation.
  size_t best_single = n;
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] <= capacity &&
        (best_single == n || values[i] > values[best_single])) {
      best_single = i;
    }
  }
  if (best_single < n && values[best_single] > greedy.total_value) {
    KnapsackSolution single;
    single.taken.assign(n, false);
    single.taken[best_single] = true;
    single.total_value = values[best_single];
    single.total_weight = weights[best_single];
    return single;
  }
  return greedy;
}

Result<KnapsackSolution> ExactKnapsack(const std::vector<double>& values,
                                       const std::vector<double>& weights,
                                       double capacity, size_t resolution) {
  size_t n = values.size();
  if (weights.size() != n) {
    return Status::InvalidArgument("values/weights size mismatch");
  }
  if (capacity < 0) return Status::InvalidArgument("negative capacity");
  if (resolution == 0) return Status::InvalidArgument("resolution must be > 0");
  for (double w : weights) {
    if (w < 0) return Status::InvalidArgument("negative weight");
  }

  // Discretize weights onto `resolution` buckets (rounding up keeps the
  // solution feasible w.r.t. the true capacity).
  double scale = capacity > 0 ? static_cast<double>(resolution) / capacity : 0;
  std::vector<size_t> w_int(n);
  for (size_t i = 0; i < n; ++i) {
    w_int[i] = static_cast<size_t>(std::ceil(weights[i] * scale - 1e-12));
  }

  std::vector<double> best(resolution + 1, 0.0);
  std::vector<std::vector<bool>> take(n, std::vector<bool>(resolution + 1));
  for (size_t i = 0; i < n; ++i) {
    if (w_int[i] > resolution) continue;
    for (size_t w = resolution + 1; w-- > w_int[i];) {
      double cand = best[w - w_int[i]] + values[i];
      if (cand > best[w]) {
        best[w] = cand;
        take[i][w] = true;
      }
    }
  }

  KnapsackSolution sol;
  sol.taken.assign(n, false);
  size_t w = resolution;
  for (size_t i = n; i-- > 0;) {
    if (take[i][w]) {
      sol.taken[i] = true;
      sol.total_value += values[i];
      sol.total_weight += weights[i];
      w -= w_int[i];
    }
  }
  return sol;
}

namespace {

/// Lower convex hull of a group's (weight, value) options in increasing
/// weight with strictly increasing value and decreasing marginal ratio.
/// Returns indices into the group's option arrays.
std::vector<size_t> EfficientFrontier(const std::vector<double>& values,
                                      const std::vector<double>& weights) {
  size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) return weights[a] < weights[b];
    return values[a] > values[b];
  });
  // Keep only Pareto-optimal options (strictly more value for more weight).
  std::vector<size_t> pareto;
  double best_v = -std::numeric_limits<double>::infinity();
  for (size_t i : order) {
    if (values[i] > best_v + 1e-15) {
      pareto.push_back(i);
      best_v = values[i];
    }
  }
  // Upper concave hull so marginal ratios are non-increasing.
  std::vector<size_t> hull;
  for (size_t i : pareto) {
    while (hull.size() >= 2) {
      size_t a = hull[hull.size() - 2];
      size_t b = hull[hull.size() - 1];
      double r1 = (values[b] - values[a]) /
                  std::max(1e-15, weights[b] - weights[a]);
      double r2 = (values[i] - values[b]) /
                  std::max(1e-15, weights[i] - weights[b]);
      if (r2 >= r1) {
        hull.pop_back();
      } else {
        break;
      }
    }
    hull.push_back(i);
  }
  return hull;
}

}  // namespace

Result<ChoiceSolution> MultipleChoiceKnapsackGreedy(
    const std::vector<std::vector<double>>& values,
    const std::vector<std::vector<double>>& weights, double capacity) {
  size_t groups = values.size();
  if (weights.size() != groups) {
    return Status::InvalidArgument("values/weights group count mismatch");
  }

  ChoiceSolution sol;
  sol.choice.assign(groups, 0);

  // Per-group hulls; current position on the hull.
  std::vector<std::vector<size_t>> hulls(groups);
  std::vector<size_t> pos(groups, 0);
  for (size_t g = 0; g < groups; ++g) {
    if (values[g].empty() || values[g].size() != weights[g].size()) {
      return Status::InvalidArgument("empty or mismatched option group");
    }
    hulls[g] = EfficientFrontier(values[g], weights[g]);
    sol.choice[g] = hulls[g][0];
    sol.total_value += values[g][hulls[g][0]];
    sol.total_weight += weights[g][hulls[g][0]];
  }
  if (sol.total_weight > capacity + 1e-9) {
    return Status::ResourceExhausted(
        "even the cheapest per-group selection exceeds capacity");
  }

  struct Upgrade {
    double ratio;
    double d_weight;
    double d_value;
    size_t group;
    size_t hull_pos;  // upgrade moves the group to hulls[group][hull_pos]
    bool operator<(const Upgrade& o) const { return ratio < o.ratio; }
  };
  std::priority_queue<Upgrade> pq;
  auto push_next = [&](size_t g) {
    size_t p = pos[g];
    if (p + 1 >= hulls[g].size()) return;
    size_t cur = hulls[g][p];
    size_t nxt = hulls[g][p + 1];
    double dw = weights[g][nxt] - weights[g][cur];
    double dv = values[g][nxt] - values[g][cur];
    pq.push(Upgrade{dv / std::max(1e-15, dw), dw, dv, g, p + 1});
  };
  for (size_t g = 0; g < groups; ++g) push_next(g);

  double remaining = capacity - sol.total_weight;
  while (!pq.empty()) {
    Upgrade u = pq.top();
    pq.pop();
    if (u.hull_pos != pos[u.group] + 1) continue;  // stale entry
    if (u.d_weight > remaining + 1e-12) continue;  // does not fit; skip
    pos[u.group] = u.hull_pos;
    sol.choice[u.group] = hulls[u.group][u.hull_pos];
    sol.total_value += u.d_value;
    sol.total_weight += u.d_weight;
    remaining -= u.d_weight;
    push_next(u.group);
  }
  return sol;
}

}  // namespace sky::lp
