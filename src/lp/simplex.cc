#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sky::lp {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau. Column layout: [structural | slack | artificial],
/// rhs kept separately. The objective row holds reduced costs for a
/// maximization problem: an entering column j has obj[j] < -kEps.
struct Tableau {
  std::vector<std::vector<double>> rows;  // m x ncols
  std::vector<double> rhs;                // m
  std::vector<double> obj;                // ncols
  double obj_value = 0.0;
  std::vector<size_t> basis;              // m; column of the basic variable

  size_t NumCols() const { return obj.size(); }

  void Pivot(size_t pivot_row, size_t pivot_col) {
    std::vector<double>& pr = rows[pivot_row];
    double pv = pr[pivot_col];
    for (double& v : pr) v /= pv;
    rhs[pivot_row] /= pv;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r == pivot_row) continue;
      double factor = rows[r][pivot_col];
      if (std::abs(factor) < kEps) continue;
      for (size_t c = 0; c < pr.size(); ++c) rows[r][c] -= factor * pr[c];
      rhs[r] -= factor * rhs[pivot_row];
    }
    double factor = obj[pivot_col];
    if (std::abs(factor) > 0.0) {
      for (size_t c = 0; c < pr.size(); ++c) obj[c] -= factor * pr[c];
      obj_value -= factor * rhs[pivot_row];
    }
    basis[pivot_row] = pivot_col;
  }

  /// Makes the objective row canonical w.r.t. the current basis.
  void CanonicalizeObjective() {
    for (size_t r = 0; r < rows.size(); ++r) {
      double factor = obj[basis[r]];
      if (std::abs(factor) < kEps) continue;
      for (size_t c = 0; c < obj.size(); ++c) obj[c] -= factor * rows[r][c];
      obj_value -= factor * rhs[r];
    }
  }

  /// Runs simplex iterations until optimal, unbounded, or the iteration
  /// guard (`max_iters_override`, or an automatic size-scaled cap when 0) is
  /// exhausted — the latter is reported as kIterationLimit, never silently
  /// as optimality. Dantzig rule with a switch to Bland's rule
  /// (anti-cycling) after `bland_after` iterations. `active_cols` limits the
  /// candidate entering columns.
  LpStatus Iterate(size_t active_cols, size_t max_iters_override = 0) {
    size_t m = rows.size();
    size_t max_iters = max_iters_override > 0 ? max_iters_override
                                              : 200 * (m + active_cols) + 1000;
    size_t bland_after = 20 * (m + active_cols) + 200;
    for (size_t iter = 0; iter < max_iters; ++iter) {
      bool bland = iter >= bland_after;
      // Entering column.
      size_t enter = active_cols;
      double best = -kEps;
      for (size_t c = 0; c < active_cols; ++c) {
        if (obj[c] < -kEps) {
          if (bland) {
            enter = c;
            break;
          }
          if (obj[c] < best) {
            best = obj[c];
            enter = c;
          }
        }
      }
      if (enter == active_cols) return LpStatus::kOptimal;
      // Leaving row: minimum ratio test.
      size_t leave = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (size_t r = 0; r < m; ++r) {
        double a = rows[r][enter];
        if (a > kEps) {
          double ratio = rhs[r] / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && leave < m &&
               basis[r] < basis[leave])) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == m) return LpStatus::kUnbounded;
      Pivot(leave, enter);
    }
    return LpStatus::kIterationLimit;
  }
};

}  // namespace

Result<LpSolution> SolveLp(const LinearProgram& lp, const LpOptions& options) {
  size_t n = lp.NumVariables();
  if (n == 0) return Status::InvalidArgument("LP has no variables");
  if (lp.a_ub.size() != lp.b_ub.size() || lp.a_eq.size() != lp.b_eq.size()) {
    return Status::InvalidArgument("constraint matrix/vector size mismatch");
  }
  for (const auto& row : lp.a_ub) {
    if (row.size() != n) {
      return Status::InvalidArgument("A_ub row width != #variables");
    }
  }
  for (const auto& row : lp.a_eq) {
    if (row.size() != n) {
      return Status::InvalidArgument("A_eq row width != #variables");
    }
  }

  size_t m_ub = lp.a_ub.size();
  size_t m_eq = lp.a_eq.size();
  size_t m = m_ub + m_eq;
  if (m == 0) {
    // Unconstrained except x >= 0: optimal at x = 0 unless some c_j > 0.
    for (double c : lp.objective) {
      if (c > kEps) {
        LpSolution sol;
        sol.status = LpStatus::kUnbounded;
        return sol;
      }
    }
    LpSolution sol;
    sol.status = LpStatus::kOptimal;
    sol.x.assign(n, 0.0);
    sol.objective_value = 0.0;
    return sol;
  }

  size_t n_slack = m_ub;
  // Build rows with slacks; flip rows to make rhs non-negative; rows whose
  // slack coefficient is not +1 (flipped ub rows) and all eq rows get an
  // artificial variable.
  std::vector<std::vector<double>> raw(m);
  std::vector<double> rhs(m);
  std::vector<bool> needs_artificial(m, false);
  for (size_t i = 0; i < m_ub; ++i) {
    std::vector<double> row(n + n_slack, 0.0);
    double b = lp.b_ub[i];
    double sign = b < 0 ? -1.0 : 1.0;
    for (size_t j = 0; j < n; ++j) row[j] = sign * lp.a_ub[i][j];
    row[n + i] = sign;  // slack
    raw[i] = std::move(row);
    rhs[i] = sign * b;
    needs_artificial[i] = sign < 0;
  }
  for (size_t i = 0; i < m_eq; ++i) {
    std::vector<double> row(n + n_slack, 0.0);
    double b = lp.b_eq[i];
    double sign = b < 0 ? -1.0 : 1.0;
    for (size_t j = 0; j < n; ++j) row[j] = sign * lp.a_eq[i][j];
    raw[m_ub + i] = std::move(row);
    rhs[m_ub + i] = sign * b;
    needs_artificial[m_ub + i] = true;
  }

  size_t n_art = 0;
  for (bool b : needs_artificial) n_art += b ? 1 : 0;
  size_t total = n + n_slack + n_art;

  Tableau t;
  t.rows.assign(m, std::vector<double>(total, 0.0));
  t.rhs = rhs;
  t.basis.assign(m, 0);
  size_t art_col = n + n_slack;
  for (size_t r = 0; r < m; ++r) {
    std::copy(raw[r].begin(), raw[r].end(), t.rows[r].begin());
    if (needs_artificial[r]) {
      t.rows[r][art_col] = 1.0;
      t.basis[r] = art_col;
      ++art_col;
    } else {
      t.basis[r] = n + r;  // the slack of this ub row
    }
  }

  // Phase 1: maximize -(sum of artificials).
  if (n_art > 0) {
    t.obj.assign(total, 0.0);
    for (size_t c = n + n_slack; c < total; ++c) t.obj[c] = 1.0;
    t.obj_value = 0.0;
    t.CanonicalizeObjective();
    LpStatus st = t.Iterate(total, options.max_iterations);
    if (st == LpStatus::kUnbounded) {
      return Status::Internal("phase-1 LP unbounded (should be impossible)");
    }
    if (st == LpStatus::kIterationLimit && t.obj_value < -1e-6) {
      // Guard exhausted before a feasible basis was found: feasibility is
      // undetermined, so surface the limit instead of claiming anything.
      LpSolution sol;
      sol.status = LpStatus::kIterationLimit;
      return sol;
    }
    if (t.obj_value < -1e-6) {
      LpSolution sol;
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    // Pivot remaining artificials out of the basis (degenerate rows).
    for (size_t r = 0; r < m; ++r) {
      if (t.basis[r] < n + n_slack) continue;
      size_t pivot_col = total;
      for (size_t c = 0; c < n + n_slack; ++c) {
        if (std::abs(t.rows[r][c]) > kEps) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col < total) {
        t.Pivot(r, pivot_col);
      }
      // Otherwise the row is redundant (all-zero in structural columns);
      // leaving the zero-valued artificial basic is harmless because phase 2
      // never lets it re-enter (artificial columns are excluded below).
    }
  }

  // Phase 2: maximize the real objective over structural + slack columns.
  t.obj.assign(total, 0.0);
  for (size_t j = 0; j < n; ++j) t.obj[j] = -lp.objective[j];
  t.obj_value = 0.0;
  t.CanonicalizeObjective();
  LpStatus st = t.Iterate(n + n_slack, options.max_iterations);

  LpSolution sol;
  sol.status = st;
  // A phase-2 iteration limit still leaves a feasible basic point: extract
  // it (flagged kIterationLimit) so callers can use it best-effort.
  if (st == LpStatus::kOptimal || st == LpStatus::kIterationLimit) {
    sol.x.assign(n, 0.0);
    for (size_t r = 0; r < m; ++r) {
      if (t.basis[r] < n) sol.x[t.basis[r]] = t.rhs[r];
    }
    sol.objective_value = 0.0;
    for (size_t j = 0; j < n; ++j) {
      sol.objective_value += lp.objective[j] * sol.x[j];
    }
  }
  return sol;
}

}  // namespace sky::lp
