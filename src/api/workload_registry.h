#ifndef SKYSCRAPER_API_WORKLOAD_REGISTRY_H_
#define SKYSCRAPER_API_WORKLOAD_REGISTRY_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/workload.h"

namespace sky::api {

/// The built-in workloads by registry name — the single place a short
/// workload name ("ev", "covid", ...) turns into a core::Workload instance.
/// The `sky` CLI resolves its --workload flag here, and the serve server
/// uses the same mapping to rebuild a session's workload from the name its
/// checkpoint recorded, so a recovered session runs the exact simulation
/// the original did.

/// Registry names, in stable presentation order (usage text, error hints).
const std::vector<std::string>& KnownWorkloadNames();

/// Builds the named workload with its default content seed; null for an
/// unknown name.
std::unique_ptr<core::Workload> MakeWorkloadByName(const std::string& name);

/// Same, with an explicit content seed — distinct seeds give distinct
/// stream content, which is how a multi-tenant fleet runs N different
/// cameras of one workload family. Unset uses the workload's default.
std::unique_ptr<core::Workload> MakeWorkloadByName(
    const std::string& name, std::optional<uint64_t> content_seed);

}  // namespace sky::api

#endif  // SKYSCRAPER_API_WORKLOAD_REGISTRY_H_
