#ifndef SKYSCRAPER_API_CALLBACK_WORKLOAD_H_
#define SKYSCRAPER_API_CALLBACK_WORKLOAD_H_

#include <functional>
#include <string>
#include <utility>

#include "core/workload.h"

namespace sky::api {

/// Builds a Workload from plain callables — the C++ analogue of registering
/// UDFs and knobs against the Python API (Appendix F). The cost callback
/// corresponds to profiling the UDF DAG; the quality callback corresponds to
/// the quality field the user's proc_frame updates.
class CallbackWorkload : public core::Workload {
 public:
  using CostFn = std::function<double(const core::KnobConfig&)>;
  using QualityFn =
      std::function<double(const core::KnobConfig&, const video::ContentState&)>;
  using GraphFn = std::function<dag::TaskGraph(
      const core::KnobConfig&, double, const sim::CostModel&)>;

  CallbackWorkload(std::string name, core::KnobSpace space,
                   const video::ContentProcess* content, CostFn cost,
                   QualityFn quality, GraphFn graph = nullptr);

  std::string name() const override { return name_; }
  const core::KnobSpace& knob_space() const override { return space_; }
  double CostCoreSecondsPerVideoSecond(
      const core::KnobConfig& config) const override;
  double TrueQuality(const core::KnobConfig& config,
                     const video::ContentState& content) const override;
  dag::TaskGraph BuildTaskGraph(const core::KnobConfig& config,
                                double segment_seconds,
                                const sim::CostModel& cost_model) const override;
  const video::ContentProcess& content_process() const override {
    return *content_;
  }

 private:
  std::string name_;
  core::KnobSpace space_;
  const video::ContentProcess* content_;
  CostFn cost_;
  QualityFn quality_;
  GraphFn graph_;
};

}  // namespace sky::api

#endif  // SKYSCRAPER_API_CALLBACK_WORKLOAD_H_
