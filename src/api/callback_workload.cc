#include "api/callback_workload.h"

#include "workloads/udf_costs.h"

namespace sky::api {

CallbackWorkload::CallbackWorkload(std::string name, core::KnobSpace space,
                                   const video::ContentProcess* content,
                                   CostFn cost, QualityFn quality,
                                   GraphFn graph)
    : name_(std::move(name)),
      space_(std::move(space)),
      content_(content),
      cost_(std::move(cost)),
      quality_(std::move(quality)),
      graph_(std::move(graph)) {}

double CallbackWorkload::CostCoreSecondsPerVideoSecond(
    const core::KnobConfig& config) const {
  return cost_(config);
}

double CallbackWorkload::TrueQuality(
    const core::KnobConfig& config,
    const video::ContentState& content) const {
  return quality_(config, content);
}

dag::TaskGraph CallbackWorkload::BuildTaskGraph(
    const core::KnobConfig& config, double segment_seconds,
    const sim::CostModel& cost_model) const {
  if (graph_) return graph_(config, segment_seconds, cost_model);
  // Default: a single monolithic UDF whose runtime is the configuration's
  // total work over the segment.
  dag::TaskGraph g;
  double work = cost_(config) * segment_seconds;
  g.AddNode(workloads::MakeUdfNode(
      "udf", work, 90e3 * segment_seconds, 4e3 * segment_seconds, cost_model));
  return g;
}

}  // namespace sky::api
