#include "api/skyscraper.h"

namespace sky::api {

Skyscraper::Skyscraper(const core::Workload* workload)
    : workload_(workload), cost_model_(1.8) {
  SetResources(Resources{});
}

void Skyscraper::SetResources(const Resources& resources) {
  resources_ = resources;
  cluster_.cores = resources.cores;
  cluster_.uplink_bytes_per_s = resources.uplink_bytes_per_s;
  cluster_.downlink_bytes_per_s = resources.downlink_bytes_per_s;
  cost_model_ = sim::CostModel(resources.cloud_to_onprem_cost_ratio);
  // Changing the provisioning invalidates the profiled placements.
  model_.reset();
}

Status Skyscraper::Fit(const core::OfflineOptions& options) {
  SKY_ASSIGN_OR_RETURN(
      core::OfflineModel model,
      core::RunOfflinePhase(*workload_, cluster_, cost_model_, options));
  model_.emplace(std::move(model));
  return Status::Ok();
}

Result<core::EngineResult> Skyscraper::Ingest(SimTime start_time,
                                              core::EngineOptions options) {
  if (!model_.has_value()) {
    return Status::FailedPrecondition("call Fit() before Ingest()");
  }
  options.buffer_bytes = resources_.buffer_bytes;
  if (options.cloud_budget_usd_per_interval == 0.0) {
    options.cloud_budget_usd_per_interval =
        resources_.cloud_budget_usd_per_interval;
  }
  core::IngestionEngine engine(workload_, &*model_, cluster_, &cost_model_,
                               options);
  return engine.Run(start_time);
}

}  // namespace sky::api
