#include "api/skyscraper.h"

#include <memory>
#include <string>
#include <utility>

#include "io/model_io.h"

namespace sky::api {

Skyscraper::Skyscraper(const core::Workload* workload)
    : workload_(workload), cost_model_(1.8) {
  SetResources(Resources{});
}

void Skyscraper::SetResources(const Resources& resources) {
  resources_ = resources;
  cluster_.cores = resources.cores;
  cluster_.uplink_bytes_per_s = resources.uplink_bytes_per_s;
  cluster_.downlink_bytes_per_s = resources.downlink_bytes_per_s;
  cost_model_ = sim::CostModel(resources.cloud_to_onprem_cost_ratio);
  // Changing the provisioning invalidates the profiled placements.
  model_.reset();
}

Status Skyscraper::Fit(const core::OfflineOptions& options) {
  SKY_ASSIGN_OR_RETURN(
      core::OfflineModel model,
      core::RunOfflinePhase(*workload_, cluster_, cost_model_, options));
  model_.emplace(std::move(model));
  return Status::Ok();
}

Status Skyscraper::SaveModel(const std::string& path,
                             const std::string& annotation) const {
  if (!model_.has_value()) {
    return Status::FailedPrecondition(
        "call Fit() or LoadModel() before SaveModel()");
  }
  return io::SaveOfflineModel(*model_, path, annotation);
}

Status Skyscraper::LoadModel(const std::string& path,
                             const std::string& expected_annotation) {
  std::string annotation;
  auto loaded = io::LoadOfflineModel(path, &annotation);
  if (!loaded.ok()) return loaded.status();
  if (!expected_annotation.empty() && annotation != expected_annotation) {
    // Distinct from a corrupt file (kInvalidArgument): the bytes parsed
    // fine, the model is just for a different job. Callers (the sky CLI's
    // exit codes among them) key off the difference.
    return Status::FailedPrecondition(
        "model file was saved for '" + annotation + "', expected '" +
        expected_annotation + "'");
  }
  // Only after every check passes does the current model get replaced: a
  // failed load never leaves the facade with partial state.
  model_.emplace(std::move(loaded).value());
  return Status::Ok();
}

Result<const core::OfflineModel*> Skyscraper::model() const {
  if (!model_.has_value()) {
    return Status::FailedPrecondition(
        "call Fit() or LoadModel() before model()");
  }
  return &*model_;
}

Result<IngestSession> Skyscraper::StartIngest(SimTime start_time,
                                              core::EngineOptions options) {
  if (!model_.has_value()) {
    return Status::FailedPrecondition(
        "call Fit() or LoadModel() before StartIngest()");
  }
  // Fill in provisioning only where the caller expressed no opinion: an
  // explicitly set buffer size or cloud budget (even an explicit 0.0,
  // disabling bursting) always wins over the Resources defaults.
  if (!options.buffer_bytes.has_value()) {
    options.buffer_bytes = resources_.buffer_bytes;
  }
  if (!options.cloud_budget_usd_per_interval.has_value()) {
    options.cloud_budget_usd_per_interval =
        resources_.cloud_budget_usd_per_interval;
  }
  auto engine = std::make_unique<core::IngestionEngine>(
      workload_, &*model_, cluster_, &cost_model_, std::move(options));
  SKY_RETURN_NOT_OK(engine->Start(start_time));
  return IngestSession(std::move(engine));
}

Result<core::StreamEngineJob> Skyscraper::MakeStreamJob(
    SimTime start_time, core::EngineOptions options) const {
  if (!model_.has_value()) {
    return Status::FailedPrecondition(
        "call Fit() or LoadModel() before MakeStreamJob()");
  }
  // Same resolution rule as StartIngest: provisioning fills only the fields
  // the caller left unset.
  if (!options.buffer_bytes.has_value()) {
    options.buffer_bytes = resources_.buffer_bytes;
  }
  if (!options.cloud_budget_usd_per_interval.has_value()) {
    options.cloud_budget_usd_per_interval =
        resources_.cloud_budget_usd_per_interval;
  }
  core::StreamEngineJob job;
  job.workload = workload_;
  job.model = &*model_;
  job.cluster = cluster_;
  job.cost_model = &cost_model_;
  job.options = std::move(options);
  job.start_time = start_time;
  return job;
}

Result<core::EngineResult> Skyscraper::Ingest(SimTime start_time,
                                              core::EngineOptions options) {
  if (!model_.has_value()) {
    return Status::FailedPrecondition(
        "call Fit() or LoadModel() before Ingest()");
  }
  SKY_ASSIGN_OR_RETURN(IngestSession session,
                       StartIngest(start_time, std::move(options)));
  return session.RunToCompletion();
}

}  // namespace sky::api
