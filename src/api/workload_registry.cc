#include "api/workload_registry.h"

#include "workloads/covid.h"
#include "workloads/ev_counting.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"
#include "workloads/scenarios.h"

namespace sky::api {

const std::vector<std::string>& KnownWorkloadNames() {
  static const std::vector<std::string> kNames = {
      "ev",          "covid", "mot",  "mosei-high", "mosei-long",
      "flash-crowd", "drift", "fleet"};
  return kNames;
}

std::unique_ptr<core::Workload> MakeWorkloadByName(const std::string& name) {
  return MakeWorkloadByName(name, std::nullopt);
}

std::unique_ptr<core::Workload> MakeWorkloadByName(
    const std::string& name, std::optional<uint64_t> content_seed) {
  using namespace sky::workloads;
  if (name == "ev") {
    return content_seed ? std::make_unique<EvCountingWorkload>(*content_seed)
                        : std::make_unique<EvCountingWorkload>();
  }
  if (name == "covid") {
    return content_seed ? std::make_unique<CovidWorkload>(*content_seed)
                        : std::make_unique<CovidWorkload>();
  }
  if (name == "mot") {
    return content_seed ? std::make_unique<MotWorkload>(*content_seed)
                        : std::make_unique<MotWorkload>();
  }
  if (name == "mosei-high") {
    return content_seed ? std::make_unique<MoseiWorkload>(
                              MoseiWorkload::SpikeKind::kHigh, *content_seed)
                        : std::make_unique<MoseiWorkload>(
                              MoseiWorkload::SpikeKind::kHigh);
  }
  if (name == "mosei-long") {
    return content_seed ? std::make_unique<MoseiWorkload>(
                              MoseiWorkload::SpikeKind::kLong, *content_seed)
                        : std::make_unique<MoseiWorkload>(
                              MoseiWorkload::SpikeKind::kLong);
  }
  // Adversarial scenario streams over the base pipelines (sim/scenarios.h):
  // same knob spaces and quality responses, stress content. For "fleet" the
  // content seed is the camera identity within the one shared fleet.
  if (name == "flash-crowd") {
    return content_seed ? std::make_unique<FlashCrowdWorkload>(*content_seed)
                        : std::make_unique<FlashCrowdWorkload>();
  }
  if (name == "drift") {
    return content_seed ? std::make_unique<DriftWorkload>(*content_seed)
                        : std::make_unique<DriftWorkload>();
  }
  if (name == "fleet") {
    return content_seed ? std::make_unique<FleetCameraWorkload>(*content_seed)
                        : std::make_unique<FleetCameraWorkload>();
  }
  return nullptr;
}

}  // namespace sky::api
