#include "api/workload_registry.h"

#include "workloads/covid.h"
#include "workloads/ev_counting.h"
#include "workloads/mosei.h"
#include "workloads/mot.h"

namespace sky::api {

const std::vector<std::string>& KnownWorkloadNames() {
  static const std::vector<std::string> kNames = {
      "ev", "covid", "mot", "mosei-high", "mosei-long"};
  return kNames;
}

std::unique_ptr<core::Workload> MakeWorkloadByName(const std::string& name) {
  return MakeWorkloadByName(name, std::nullopt);
}

std::unique_ptr<core::Workload> MakeWorkloadByName(
    const std::string& name, std::optional<uint64_t> content_seed) {
  using namespace sky::workloads;
  if (name == "ev") {
    return content_seed ? std::make_unique<EvCountingWorkload>(*content_seed)
                        : std::make_unique<EvCountingWorkload>();
  }
  if (name == "covid") {
    return content_seed ? std::make_unique<CovidWorkload>(*content_seed)
                        : std::make_unique<CovidWorkload>();
  }
  if (name == "mot") {
    return content_seed ? std::make_unique<MotWorkload>(*content_seed)
                        : std::make_unique<MotWorkload>();
  }
  if (name == "mosei-high") {
    return content_seed ? std::make_unique<MoseiWorkload>(
                              MoseiWorkload::SpikeKind::kHigh, *content_seed)
                        : std::make_unique<MoseiWorkload>(
                              MoseiWorkload::SpikeKind::kHigh);
  }
  if (name == "mosei-long") {
    return content_seed ? std::make_unique<MoseiWorkload>(
                              MoseiWorkload::SpikeKind::kLong, *content_seed)
                        : std::make_unique<MoseiWorkload>(
                              MoseiWorkload::SpikeKind::kLong);
  }
  return nullptr;
}

}  // namespace sky::api
