#include "api/ingest_session.h"

namespace sky::api {

Status IngestSession::Step() { return engine_->Step(); }

Status IngestSession::RunUntil(SimTime t) { return engine_->RunUntil(t); }

Result<core::EngineResult> IngestSession::RunToCompletion() {
  while (!engine_->Done()) {
    SKY_RETURN_NOT_OK(engine_->Step());
  }
  return engine_->partial_result();
}

bool IngestSession::Done() const { return engine_->Done(); }

SimTime IngestSession::CurrentTime() const { return engine_->CurrentTime(); }

const core::EngineResult& IngestSession::Progress() const {
  return engine_->partial_result();
}

const core::KnobPlan* IngestSession::CurrentPlan() const {
  return engine_->current_plan();
}

double IngestSession::BufferOccupancyBytes() const {
  return engine_->buffer_occupancy_bytes();
}

double IngestSession::LagSeconds() const { return engine_->lag_seconds(); }

Result<core::EngineResult> IngestSession::Finish() const {
  if (!engine_->Done()) {
    return Status::FailedPrecondition(
        "session still has segments to ingest; call RunToCompletion()");
  }
  return engine_->partial_result();
}

Result<SessionCheckpoint> IngestSession::Checkpoint() const {
  SKY_ASSIGN_OR_RETURN(core::IngestState state, engine_->Checkpoint());
  return SessionCheckpoint{engine_->CurrentTime(), std::move(state)};
}

Status IngestSession::Restore(const SessionCheckpoint& checkpoint) {
  return engine_->Restore(checkpoint.state);
}

}  // namespace sky::api
