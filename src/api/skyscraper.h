#ifndef SKYSCRAPER_API_SKYSCRAPER_H_
#define SKYSCRAPER_API_SKYSCRAPER_H_

#include <optional>

#include "core/engine.h"
#include "core/offline.h"
#include "core/workload.h"
#include "sim/cluster_sim.h"
#include "sim/cost_model.h"
#include "util/result.h"

namespace sky::api {

/// Hardware provisioning for a Skyscraper deployment — the three resource
/// types of §1: an always-on local cluster, a bounded video buffer, and an
/// on-demand cloud budget.
struct Resources {
  int cores = 8;
  uint64_t buffer_bytes = 4ull << 30;
  /// Cloud credits granted per planned interval (e.g. per 2 days), USD.
  double cloud_budget_usd_per_interval = 0.0;
  double uplink_bytes_per_s = 12.5e6;
  double downlink_bytes_per_s = 25.0e6;
  /// Cloud-to-on-premise compute price ratio (Appendix L).
  double cloud_to_onprem_cost_ratio = 1.8;
};

/// The user-facing facade, mirroring the Appendix F API:
///
///   workloads::EvCountingWorkload job;        // UDFs + knobs (user code)
///   api::Skyscraper sky(&job);
///   sky.SetResources({.cores = 8, .buffer_bytes = 4ull << 30,
///                     .cloud_budget_usd_per_interval = 5.0});
///   auto fit = sky.Fit();                      // offline phase (§3)
///   auto run = sky.Ingest(Days(16), {.duration = Days(1)});  // online (§4)
///
/// The workload object plays the role of the registered UDFs, knobs and
/// quality metric of the Python snippet; CallbackWorkload (see
/// callback_workload.h) builds one from plain std::functions.
class Skyscraper {
 public:
  explicit Skyscraper(const core::Workload* workload);

  void SetResources(const Resources& resources);

  /// Runs the offline preparation phase (§3) on the provisioned hardware.
  Status Fit(const core::OfflineOptions& options = {});

  /// Ingests live video starting at `start_time` into the content process.
  /// Requires a successful Fit().
  Result<core::EngineResult> Ingest(SimTime start_time,
                                    core::EngineOptions options = {});

  bool fitted() const { return model_.has_value(); }
  const core::OfflineModel& model() const { return *model_; }
  const sim::ClusterSpec& cluster() const { return cluster_; }
  const sim::CostModel& cost_model() const { return cost_model_; }

 private:
  const core::Workload* workload_;
  Resources resources_;
  sim::ClusterSpec cluster_;
  sim::CostModel cost_model_;
  std::optional<core::OfflineModel> model_;
};

}  // namespace sky::api

#endif  // SKYSCRAPER_API_SKYSCRAPER_H_
