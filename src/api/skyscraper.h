#ifndef SKYSCRAPER_API_SKYSCRAPER_H_
#define SKYSCRAPER_API_SKYSCRAPER_H_

#include <optional>

#include "api/ingest_session.h"
#include "core/engine.h"
#include "core/offline.h"
#include "core/workload.h"
#include "sim/cluster_sim.h"
#include "sim/cost_model.h"
#include "util/result.h"

namespace sky::api {

/// Hardware provisioning for a Skyscraper deployment — the three resource
/// types of §1: an always-on local cluster, a bounded video buffer, and an
/// on-demand cloud budget.
struct Resources {
  int cores = 8;
  uint64_t buffer_bytes = 4ull << 30;
  /// Cloud credits granted per planned interval (e.g. per 2 days), USD.
  double cloud_budget_usd_per_interval = 0.0;
  double uplink_bytes_per_s = 12.5e6;
  double downlink_bytes_per_s = 25.0e6;
  /// Cloud-to-on-premise compute price ratio (Appendix L).
  double cloud_to_onprem_cost_ratio = 1.8;
};

/// The user-facing facade, mirroring the Appendix F API:
///
///   workloads::EvCountingWorkload job;        // UDFs + knobs (user code)
///   api::Skyscraper sky(&job);
///   sky.SetResources({.cores = 8, .buffer_bytes = 4ull << 30,
///                     .cloud_budget_usd_per_interval = 5.0});
///   auto fit = sky.Fit();                      // offline phase (§3)
///
///   // Batch: ingest a fixed window in one blocking call.
///   auto run = sky.Ingest(Days(16), {.duration = Days(1)});  // online (§4)
///
///   // Streaming: a steppable session with pause/inspect/resume and
///   // checkpoint/restore — same engine, same (bitwise) results.
///   auto session = sky.StartIngest(Days(16), {.duration = Days(1)});
///   while (!session->Done()) session->Step();
///
/// The workload object plays the role of the registered UDFs, knobs and
/// quality metric of the Python snippet; CallbackWorkload (see
/// callback_workload.h) builds one from plain std::functions.
///
/// EngineOptions fields the caller sets explicitly always win; only
/// provisioning fields left unset (buffer_bytes, cloud budget) are filled
/// in from the Resources given to SetResources. In particular an explicit
/// `cloud_budget_usd_per_interval = 0.0` disables cloud bursting even when
/// the provisioned Resources grant credits.
class Skyscraper {
 public:
  explicit Skyscraper(const core::Workload* workload);

  void SetResources(const Resources& resources);

  /// Runs the offline preparation phase (§3) on the provisioned hardware.
  Status Fit(const core::OfflineOptions& options = {});

  /// Ingests live video starting at `start_time` into the content process,
  /// blocking until the whole duration is processed. Requires a successful
  /// Fit(). Convenience wrapper over StartIngest + RunToCompletion —
  /// bitwise-identical to driving the session incrementally.
  Result<core::EngineResult> Ingest(SimTime start_time,
                                    core::EngineOptions options = {});

  /// Starts a steppable ingestion session at `start_time`. Requires a
  /// successful Fit(). The session borrows this object's workload, model
  /// and provisioning: it must not outlive this Skyscraper, a re-Fit(), or
  /// a SetResources() call.
  Result<IngestSession> StartIngest(SimTime start_time,
                                    core::EngineOptions options = {});

  bool fitted() const { return model_.has_value(); }

  /// The fitted offline model; kFailedPrecondition before a successful
  /// Fit() (never dereferences an empty fit).
  Result<const core::OfflineModel*> model() const;

  const sim::ClusterSpec& cluster() const { return cluster_; }
  const sim::CostModel& cost_model() const { return cost_model_; }

 private:
  const core::Workload* workload_;
  Resources resources_;
  sim::ClusterSpec cluster_;
  sim::CostModel cost_model_;
  std::optional<core::OfflineModel> model_;
};

}  // namespace sky::api

#endif  // SKYSCRAPER_API_SKYSCRAPER_H_
