#ifndef SKYSCRAPER_API_SKYSCRAPER_H_
#define SKYSCRAPER_API_SKYSCRAPER_H_

#include <optional>
#include <string>

#include "api/ingest_session.h"
#include "core/engine.h"
#include "core/multi_stream.h"
#include "core/offline.h"
#include "core/workload.h"
#include "sim/cluster_sim.h"
#include "sim/cost_model.h"
#include "util/result.h"

namespace sky::api {

/// Hardware provisioning for a Skyscraper deployment — the three resource
/// types of §1: an always-on local cluster, a bounded video buffer, and an
/// on-demand cloud budget.
struct Resources {
  /// Cores of the always-on on-premise cluster.
  int cores = 8;
  /// Capacity of the video buffer that absorbs load bursts (§4.2).
  uint64_t buffer_bytes = 4ull << 30;
  /// Cloud credits granted per planned interval (e.g. per 2 days), USD.
  double cloud_budget_usd_per_interval = 0.0;
  /// Uplink bandwidth to the cloud (bytes shipped by cloud placements).
  double uplink_bytes_per_s = 12.5e6;
  /// Downlink bandwidth from the cloud.
  double downlink_bytes_per_s = 25.0e6;
  /// Cloud-to-on-premise compute price ratio (Appendix L).
  double cloud_to_onprem_cost_ratio = 1.8;
};

/// The user-facing facade, mirroring the Appendix F API:
///
///   workloads::EvCountingWorkload job;        // UDFs + knobs (user code)
///   api::Skyscraper sky(&job);
///   sky.SetResources({.cores = 8, .buffer_bytes = 4ull << 30,
///                     .cloud_budget_usd_per_interval = 5.0});
///   auto fit = sky.Fit();                      // offline phase (§3)
///
///   // Batch: ingest a fixed window in one blocking call.
///   auto run = sky.Ingest(Days(16), {.duration = Days(1)});  // online (§4)
///
///   // Streaming: a steppable session with pause/inspect/resume and
///   // checkpoint/restore — same engine, same (bitwise) results.
///   auto session = sky.StartIngest(Days(16), {.duration = Days(1)});
///   while (!session->Done()) session->Step();
///
/// Train-once / serve-many: the expensive offline fit can be persisted and
/// reloaded, so serving processes never pay Table-3 retraining:
///
///   sky.Fit();  sky.SaveModel("model.bin");    // training process
///   ...
///   api::Skyscraper serve(&job);               // serving process
///   serve.SetResources(same_resources);
///   serve.LoadModel("model.bin");              // instead of Fit()
///   serve.Ingest(Days(16), {.duration = Days(1)});  // == fit-and-ingest,
///                                                   //    bitwise
///
/// (The `sky` CLI in tools/sky_cli.cc wraps exactly this flow as the
/// `sky offline` and `sky ingest` subcommands.)
///
/// The workload object plays the role of the registered UDFs, knobs and
/// quality metric of the Python snippet; CallbackWorkload (see
/// callback_workload.h) builds one from plain std::functions.
///
/// EngineOptions fields the caller sets explicitly always win; only
/// provisioning fields left unset (buffer_bytes, cloud budget) are filled
/// in from the Resources given to SetResources. Notable knobs:
/// `forecast_precision = ml::Precision::kF32` switches boundary-forecast
/// inference to the SIMD f32 path (docs/precision.md; everything else,
/// including training, stays f64). In particular an explicit
/// `cloud_budget_usd_per_interval = 0.0` disables cloud bursting even when
/// the provisioned Resources grant credits.
class Skyscraper {
 public:
  /// Binds the facade to a workload (borrowed, not owned: the workload must
  /// outlive this object and every session started from it). Starts with
  /// default Resources and no fitted model.
  explicit Skyscraper(const core::Workload* workload);

  /// (Re)provisions the deployment hardware. Discards any fitted or loaded
  /// model — the profiled placements are only valid for the cluster they
  /// were profiled on — so call this BEFORE Fit() or LoadModel(). Live
  /// sessions from the previous provisioning are invalidated.
  void SetResources(const Resources& resources);

  /// Runs the offline preparation phase (§3) on the provisioned hardware.
  /// Blocking and expensive (Table 3); on success fitted() turns true and
  /// the model can be served or persisted with SaveModel().
  Status Fit(const core::OfflineOptions& options = {});

  /// Persists the fitted model to `path` in the versioned binary format of
  /// docs/model_format.md (magic, chunk table, checksum; exact double
  /// round-tripping). `annotation` is stored verbatim — conventionally the
  /// workload name, which the sky CLI checks at load time. Returns
  /// kFailedPrecondition when no model is fitted or loaded.
  Status SaveModel(const std::string& path,
                   const std::string& annotation = "") const;

  /// Loads a model saved by SaveModel(), replacing any current model: the
  /// train-once / serve-many substitute for Fit(). On success fitted()
  /// turns true and ingestion behaves bitwise-identically to running on
  /// the originally fitted model. On any error (missing file, corruption,
  /// version mismatch, annotation mismatch) the facade keeps its previous
  /// model untouched.
  ///
  /// Preconditions and caveats:
  ///  - The file's placement profiles assume the hardware it was trained
  ///    on; provision the same Resources before loading (SetResources()
  ///    AFTER LoadModel() discards the loaded model, like it discards a
  ///    fit).
  ///  - A non-empty `expected_annotation` must equal the stored annotation
  ///    (kInvalidArgument otherwise) — the guard the CLI uses to refuse a
  ///    model trained for a different workload.
  Status LoadModel(const std::string& path,
                   const std::string& expected_annotation = "");

  /// Ingests live video starting at `start_time` into the content process,
  /// blocking until the whole duration is processed. Requires a successful
  /// Fit() or LoadModel(). Convenience wrapper over StartIngest +
  /// RunToCompletion — bitwise-identical to driving the session
  /// incrementally.
  Result<core::EngineResult> Ingest(SimTime start_time,
                                    core::EngineOptions options = {});

  /// Starts a steppable ingestion session at `start_time`. Requires a
  /// successful Fit() or LoadModel(). The session borrows this object's
  /// workload, model and provisioning: it must not outlive this Skyscraper,
  /// a re-Fit(), a LoadModel(), or a SetResources() call.
  Result<IngestSession> StartIngest(SimTime start_time,
                                    core::EngineOptions options = {});

  /// Packages this facade's workload, model and provisioning as ONE stream
  /// of a multi-stream deployment — the unit a core::StreamSet (or
  /// RunStreamEngines) schedules. Build one facade per camera, Fit() (or
  /// LoadModel()) each, collect their jobs, and hand them to
  /// StreamSet::Create for jointly planned, fleet-scale ingestion:
  ///
  ///   std::vector<core::StreamEngineJob> jobs;
  ///   for (auto& cam : cameras) jobs.push_back(*cam.sky.MakeStreamJob(t0));
  ///   auto set = core::StreamSet::Create(std::move(jobs));
  ///   set->RunToCompletion(&pool);
  ///
  /// Same Resources resolution as StartIngest: options fields the caller
  /// left unset fill in from the provisioned Resources, explicit values
  /// (even 0.0) always win. The job borrows this object's workload and
  /// model — the same lifetime rules as a session. Requires a successful
  /// Fit() or LoadModel().
  Result<core::StreamEngineJob> MakeStreamJob(
      SimTime start_time, core::EngineOptions options = {}) const;

  /// True once Fit() or LoadModel() has installed a model.
  bool fitted() const { return model_.has_value(); }

  /// The fitted (or loaded) offline model; kFailedPrecondition before a
  /// successful Fit()/LoadModel() (never dereferences an empty fit).
  Result<const core::OfflineModel*> model() const;

  /// The on-premise cluster derived from the provisioned Resources.
  const sim::ClusterSpec& cluster() const { return cluster_; }

  /// The Appendix-L cost model derived from the provisioned Resources.
  const sim::CostModel& cost_model() const { return cost_model_; }

 private:
  const core::Workload* workload_;
  Resources resources_;
  sim::ClusterSpec cluster_;
  sim::CostModel cost_model_;
  std::optional<core::OfflineModel> model_;
};

}  // namespace sky::api

#endif  // SKYSCRAPER_API_SKYSCRAPER_H_
