#ifndef SKYSCRAPER_API_INGEST_SESSION_H_
#define SKYSCRAPER_API_INGEST_SESSION_H_

#include <memory>
#include <utility>

#include "core/engine.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::api {

class Skyscraper;

/// Value snapshot of a running ingest session, produced by
/// IngestSession::Checkpoint(). Self-contained: it can be held after the
/// session advances (or is destroyed) and restored into any session created
/// from the same Skyscraper fit with the same options — the restored run's
/// continuation is bitwise-identical to never having stopped.
struct SessionCheckpoint {
  SimTime captured_at = 0.0;  ///< virtual-clock time of the capture
  core::IngestState state;
};

/// A live, steppable ingestion run — the streaming counterpart of the
/// batch `Skyscraper::Ingest` call. Obtained from `Skyscraper::StartIngest`;
/// the session is already started and positioned at the first segment.
///
///   auto session = sky.StartIngest(Days(16), options);
///   session->RunUntil(Days(16) + Hours(6));       // ingest six hours
///   inspect(session->Progress(), session->CurrentPlan());
///   auto saved = session->Checkpoint();           // pause point
///   session->Step();                              // one more segment
///   session->Restore(*saved);                     // rewind
///   auto result = session->RunToCompletion();     // == batch Ingest, bitwise
///
/// Lifecycle / state machine: a session handed out by StartIngest is
/// already started and positioned at the first segment. It moves strictly
/// forward one segment per Step() until Done(); the only rewind is
/// Restore(). After Done() the session stays inspectable (Progress() is
/// the final result) but further Step() calls fail with kFailedPrecondition.
/// The session borrows the workload, offline model and provisioning from
/// the Skyscraper it came from: it must not outlive that object, a
/// re-`Fit()`, a `LoadModel()`, or a `SetResources()` call. Move-only; the
/// moved-from session must not be used.
class IngestSession {
 public:
  IngestSession(IngestSession&&) = default;
  IngestSession& operator=(IngestSession&&) = default;
  IngestSession(const IngestSession&) = delete;
  IngestSession& operator=(const IngestSession&) = delete;

  /// Ingests one segment (running the plan boundary first when one is
  /// due). kFailedPrecondition once Done().
  Status Step();

  /// Advances the virtual clock to `t` (or to the end of the run,
  /// whichever comes first). A `t` at or before CurrentTime() is a no-op —
  /// the session never steps backwards.
  Status RunUntil(SimTime t);

  /// Steps through every remaining segment and returns the final result.
  /// Calling it on an already-Done() session just returns that result.
  Result<core::EngineResult> RunToCompletion();

  /// True when every segment of the run has been ingested.
  bool Done() const;

  /// Arrival time of the next segment to ingest (== start_time + elapsed
  /// virtual time; the end of the run once Done()).
  SimTime CurrentTime() const;

  /// The result accumulated so far, trace-so-far included; at Done() this
  /// is the final result.
  const core::EngineResult& Progress() const;

  /// The knob plan currently steering the switcher (null before the first
  /// segment is stepped).
  const core::KnobPlan* CurrentPlan() const;

  /// Bytes of arrived-but-unprocessed video currently buffered.
  double BufferOccupancyBytes() const;

  /// Processing backlog behind the live stream, seconds.
  double LagSeconds() const;

  /// The final result; kFailedPrecondition while segments remain.
  Result<core::EngineResult> Finish() const;

  /// Snapshot of the full session state at the current position — a
  /// self-contained value (own RNG stream, fine-tuned forecaster copy,
  /// switcher, buffer, partial result). Capturing never perturbs the run:
  /// a checkpointed run and an uninterrupted one are bitwise-equal.
  Result<SessionCheckpoint> Checkpoint() const;

  /// Rewinds (or fast-forwards) the session to a previously captured
  /// checkpoint. The checkpoint must come from the same fit (or the same
  /// loaded model file) and the same EngineOptions; restoring into a
  /// fresh session over that model is equally valid — the continuation is
  /// bitwise-identical to never having stopped either way.
  Status Restore(const SessionCheckpoint& checkpoint);

  /// The underlying engine, for advanced inspection (plan-boundary hooks,
  /// resolved options). Borrowed; lifetime is the session's.
  const core::IngestionEngine& engine() const { return *engine_; }

 private:
  friend class Skyscraper;
  explicit IngestSession(std::unique_ptr<core::IngestionEngine> engine)
      : engine_(std::move(engine)) {}

  std::unique_ptr<core::IngestionEngine> engine_;
};

}  // namespace sky::api

#endif  // SKYSCRAPER_API_INGEST_SESSION_H_
