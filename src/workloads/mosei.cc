#include "workloads/mosei.h"

#include <algorithm>
#include <cmath>

#include "workloads/udf_costs.h"

namespace sky::workloads {

namespace {

// Sentiment-model inference cost per analyzed stream-second by model size.
constexpr double kSentimentModelCost[] = {0.40, 0.80, 1.60};
constexpr double kSentimentModelPenalty[] = {0.25, 0.12, 0.0};
// Transcription (CMUSphinx stand-in) and feature extraction (MTCNN/DeepFace
// + acoustic features) per stream-second.
constexpr double kTranscribeCost = 0.08;
constexpr double kFeatureCost = 0.50;

video::TwitchContentProcess::Options MoseiContentOptions(
    video::TwitchContentProcess::SpikeKind kind, uint64_t seed) {
  video::TwitchContentProcess::Options opts;
  opts.spike_kind = kind;
  opts.horizon = Days(14);  // 10 d synthetic train + 2 d test + slack
  opts.seed = seed;
  return opts;
}

}  // namespace

MoseiWorkload::MoseiWorkload(SpikeKind kind, uint64_t seed)
    : kind_(kind), content_(MoseiContentOptions(kind, seed)) {
  (void)space_.AddKnob("skip_sentences", {0, 1, 2, 3, 4, 5, 6});
  (void)space_.AddKnob("frame_fraction",
                       {1.0 / 6, 1.0 / 3, 1.0 / 2, 2.0 / 3, 5.0 / 6, 1.0});
  (void)space_.AddKnob("model_size", {0, 1, 2});
  (void)space_.AddKnob("streams", {4, 8, 16, 32, 62});
}

double MoseiWorkload::CostCoreSecondsPerVideoSecond(
    const core::KnobConfig& config) const {
  double skip = space_.Value(config, 0);
  double frac = space_.Value(config, 1);
  size_t model = static_cast<size_t>(space_.Value(config, 2));
  double streams = space_.Value(config, 3);

  double per_stream = kTranscribeCost + kFeatureCost * frac +
                      (1.0 / (1.0 + skip)) * frac *
                          kSentimentModelCost[model];
  return streams * per_stream;
}

double MoseiWorkload::TrueQuality(const core::KnobConfig& config,
                                  const video::ContentState& content) const {
  double skip = space_.Value(config, 0);
  double frac = space_.Value(config, 1);
  size_t model = static_cast<size_t>(space_.Value(config, 2));
  double streams = space_.Value(config, 3);
  double d = content.difficulty;

  double live = std::max(1.0, content.stream_count);
  double coverage = std::min(streams, live) / live;

  // Per-stream accuracy: skipping sentences misses volatile sentiment;
  // analyzing fewer frames per sentence and smaller models hurt on hard
  // (unclear) speakers.
  double skip_penalty =
      0.40 * std::pow(skip / 6.0, 0.8) * (0.25 + 0.75 * d);
  double frac_penalty = 0.35 * (1.0 - frac) * (0.15 + 0.85 * d);
  double model_penalty = kSentimentModelPenalty[model] * (0.25 + 0.75 * d);
  double accuracy =
      (1.0 - skip_penalty) * (1.0 - frac_penalty) * (1.0 - model_penalty);
  return std::clamp(coverage * accuracy, 0.0, 1.0);
}

dag::TaskGraph MoseiWorkload::BuildTaskGraph(
    const core::KnobConfig& config, double segment_seconds,
    const sim::CostModel& cost_model) const {
  double skip = space_.Value(config, 0);
  double frac = space_.Value(config, 1);
  size_t model = static_cast<size_t>(space_.Value(config, 2));
  double streams = space_.Value(config, 3);
  double L = segment_seconds;

  // Payloads scale with the number of analyzed streams: this is what makes
  // cloud bursting bandwidth-bound during the MOSEI-HIGH spikes (62 streams
  // at ~360 KB/s each is ~1.8x the uplink; the MOSEI-LONG plateau of ~28
  // streams fits). Each analyzed stream ships ~3.6 JPEG frames/s.
  double visual_bytes = streams * frac * 3.6 * kJpegBytesPerFrame * L;
  double audio_bytes = streams * 16e3 * L;

  double chunk = L / 4.0;
  dag::TaskGraph g;
  size_t capture = g.AddNode(MakeUdfNode(
      "capture_decode", streams * 0.002 * L,
      streams * 24e3 * L, visual_bytes + audio_bytes, cost_model));
  // Per-stream tasks are independent: chunk each UDF across streams.
  std::vector<size_t> features = AddChunkedUdf(
      &g, "extract_features", 0, streams * kFeatureCost * frac * L,
      visual_bytes, streams * 12e3 * L, cost_model, chunk, {capture});
  std::vector<size_t> transcribe = AddChunkedUdf(
      &g, "transcribe", 1, streams * kTranscribeCost * L, audio_bytes,
      streams * 2e3 * L, cost_model, chunk, {capture});
  std::vector<size_t> sentiment = AddChunkedUdf(
      &g, "sentiment", 2,
      streams * (1.0 / (1.0 + skip)) * frac * kSentimentModelCost[model] * L,
      streams * 14e3 * L, streams * 1e3 * L, cost_model, chunk, {});
  PipelineLink(&g, features, sentiment);
  PipelineLink(&g, transcribe, sentiment);
  return g;
}

}  // namespace sky::workloads
