#ifndef SKYSCRAPER_WORKLOADS_MOT_H_
#define SKYSCRAPER_WORKLOADS_MOT_H_

#include "core/workload.h"
#include "video/content_process.h"

namespace sky::workloads {

/// The multi-object-tracking workload (§5.2 / Appendix J): a TransMOT-style
/// graph-transformer tracker over a Tokyo traffic-intersection stream.
///
/// Knobs:
///   frame_interval  process every {1, 5, 30, 60}-th frame
///   tiles           {1 (1x1), 4 (2x2)}
///   history         {1, 2, 3, 5} historical frames fed to the transformer
///   model_size      {0 (small), 1 (medium), 2 (large)}
///
/// Quality is the certainty-weighted number of correctly tracked
/// pedestrians, relative to running the most expensive setting.
class MotWorkload : public core::Workload {
 public:
  explicit MotWorkload(uint64_t seed = 2002);

  std::string name() const override { return "MOT"; }
  const core::KnobSpace& knob_space() const override { return space_; }
  double CostCoreSecondsPerVideoSecond(
      const core::KnobConfig& config) const override;
  double TrueQuality(const core::KnobConfig& config,
                     const video::ContentState& content) const override;
  dag::TaskGraph BuildTaskGraph(const core::KnobConfig& config,
                                double segment_seconds,
                                const sim::CostModel& cost_model) const override;
  const video::ContentProcess& content_process() const override {
    return content_;
  }

 private:
  core::KnobSpace space_;
  video::DiurnalContentProcess content_;
};

}  // namespace sky::workloads

#endif  // SKYSCRAPER_WORKLOADS_MOT_H_
