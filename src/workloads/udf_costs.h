#ifndef SKYSCRAPER_WORKLOADS_UDF_COSTS_H_
#define SKYSCRAPER_WORKLOADS_UDF_COSTS_H_

#include <string>

#include "dag/task_graph.h"
#include "sim/cost_model.h"

namespace sky::workloads {

/// Single-core UDF runtimes calibrated to the paper's measurements (§5.1 /
/// Appendix K.2 on an Intel Xeon: YOLOv5 86 ms per inference on 4 cores,
/// decode 1.6 ms per frame ~= 5% of total runtime). All values are
/// core-seconds per invocation.
inline constexpr double kDecodeCostPerFrame = 0.0016;
inline constexpr double kYoloCostPerTile = 0.344;
inline constexpr double kKcfCostPerFrame = 0.012;
inline constexpr double kHomographyCostPerFrame = 0.004;
inline constexpr double kMaskClassifierCostPerDetection = 0.06;

/// Cloud execution model: an AWS-Lambda-style 3 GB function is roughly two
/// vCPUs (compute runs ~2x faster than one on-prem core), plus a warm-start
/// round-trip overhead.
inline constexpr double kCloudSpeedup = 2.0;
inline constexpr double kCloudRttSeconds = 0.18;

/// JPEG-compressed HD frame shipped to the cloud (§5.1).
inline constexpr double kJpegBytesPerFrame = 100e3;

/// TFLOP per core-second conversion used when reporting workload in
/// TFLOP/s (Fig. 3; calibrated so the most expensive EV configuration is
/// the paper's constant 5.2 TFLOP/s).
inline constexpr double kTflopPerCoreSecond = 0.288;

/// Builds a task node from an on-premise runtime and payload sizes: the
/// cloud runtime and cloud price are derived from the cloud model above and
/// the cost model's cloud rate.
dag::TaskNode MakeUdfNode(std::string name, double onprem_runtime_s,
                          double input_bytes, double output_bytes,
                          const sim::CostModel& cost_model);

/// Adds one UDF to `graph` as a set of parallel sibling chunk nodes (one
/// per frame batch, mirroring the paper's per-frame Ray tasks — e.g. the
/// "60 YOLO tasks" DAG of Appendix M.2). The UDF's total runtime and
/// payloads are split evenly over ceil(total / chunk_core_seconds) chunks
/// sharing interchangeability group `group`; every chunk depends on all of
/// `parents`. Returns the chunk node indices so callers can wire children.
std::vector<size_t> AddChunkedUdf(dag::TaskGraph* graph, std::string name,
                                  int group, double total_runtime_s,
                                  double total_input_bytes,
                                  double total_output_bytes,
                                  const sim::CostModel& cost_model,
                                  double chunk_core_seconds,
                                  const std::vector<size_t>& parents);

/// Wires two chunked stages in pipelined fashion: child chunk i depends on
/// parent chunk floor(i * |parents| / |children|), so a downstream stage
/// starts as soon as its share of the upstream work is done (frames flow
/// through the DAG; there is no per-segment barrier between UDFs).
void PipelineLink(dag::TaskGraph* graph, const std::vector<size_t>& parents,
                  const std::vector<size_t>& children);

}  // namespace sky::workloads

#endif  // SKYSCRAPER_WORKLOADS_UDF_COSTS_H_
