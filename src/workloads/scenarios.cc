#include "workloads/scenarios.h"

namespace sky::workloads {

namespace {

// The scenario streams reuse the base workloads' content geometry (profile,
// horizon), so the offline train/test split and every engine default carry
// over unchanged.

sim::FlashCrowdOptions FlashCrowdContentOptions(uint64_t seed) {
  sim::FlashCrowdOptions opts;
  opts.base.profile = video::DiurnalContentProcess::Profile::kShoppingStreet;
  opts.base.horizon = Days(26);
  opts.base.seed = seed;
  return opts;
}

sim::ContentDriftOptions DriftContentOptions(uint64_t seed) {
  sim::ContentDriftOptions opts;
  opts.base.profile =
      video::DiurnalContentProcess::Profile::kTrafficIntersection;
  opts.base.horizon = Days(26);
  opts.base.seed = seed;
  return opts;
}

sim::FleetOptions FleetContentOptions() {
  sim::FleetOptions opts;
  opts.base.profile =
      video::DiurnalContentProcess::Profile::kTrafficIntersection;
  opts.base.horizon = Days(20);
  // fleet_seed stays at its default: every FleetCameraWorkload instance is
  // a camera of the *same* fleet, whatever its camera seed.
  return opts;
}

}  // namespace

FlashCrowdWorkload::FlashCrowdWorkload(uint64_t seed)
    : CovidWorkload(seed), scenario_(FlashCrowdContentOptions(seed)) {}

DriftWorkload::DriftWorkload(uint64_t seed)
    : MotWorkload(seed), scenario_(DriftContentOptions(seed)) {}

FleetCameraWorkload::FleetCameraWorkload(uint64_t camera_seed)
    : EvCountingWorkload(camera_seed),
      scenario_(FleetContentOptions(), camera_seed) {}

}  // namespace sky::workloads
