#ifndef SKYSCRAPER_WORKLOADS_SCENARIOS_H_
#define SKYSCRAPER_WORKLOADS_SCENARIOS_H_

#include "sim/scenarios.h"
#include "workloads/covid.h"
#include "workloads/ev_counting.h"
#include "workloads/mot.h"

namespace sky::workloads {

/// Adversarial scenario workloads (registry names "flash-crowd", "drift",
/// "fleet"): an existing §5.2 pipeline — knob space, cost model, quality
/// response, and task graph all unchanged — ingesting one of the
/// sim/scenarios.h stress streams instead of its steady-state diurnal
/// source. Because TrueQuality is a pure function of (config, content
/// state), swapping the content process is the complete change; engines,
/// StreamSet, and benches run these exactly like the base workloads.

/// The COVID shopping-street pipeline under flash-crowd arrival bursts.
class FlashCrowdWorkload : public CovidWorkload {
 public:
  explicit FlashCrowdWorkload(uint64_t seed = 6001);

  std::string name() const override { return "FLASH-CROWD"; }
  const video::ContentProcess& content_process() const override {
    return scenario_;
  }

 private:
  sim::FlashCrowdContentProcess scenario_;
};

/// The MOT tracking pipeline under day/night content drift: the crowd
/// pattern migrates into the night over days, so a forecaster fitted on
/// the training window mispredicts unless re-trained online.
class DriftWorkload : public MotWorkload {
 public:
  explicit DriftWorkload(uint64_t seed = 6002);

  std::string name() const override { return "DRIFT"; }
  const video::ContentProcess& content_process() const override {
    return scenario_;
  }

 private:
  sim::ContentDriftProcess scenario_;
};

/// The EV-counting pipeline as one camera of a correlated fleet: the
/// content seed is the camera identity, and every camera shares the fixed
/// fleet latent (content category shifts), so distinct seeds yield
/// correlated — not independent — streams.
class FleetCameraWorkload : public EvCountingWorkload {
 public:
  explicit FleetCameraWorkload(uint64_t camera_seed = 6003);

  std::string name() const override { return "FLEET"; }
  const video::ContentProcess& content_process() const override {
    return scenario_;
  }

 private:
  sim::FleetCameraContentProcess scenario_;
};

}  // namespace sky::workloads

#endif  // SKYSCRAPER_WORKLOADS_SCENARIOS_H_
