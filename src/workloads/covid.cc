#include "workloads/covid.h"

#include <algorithm>
#include <cmath>

#include "video/codec.h"
#include "workloads/udf_costs.h"

namespace sky::workloads {

namespace {

video::DiurnalContentProcess::Options CovidContentOptions(uint64_t seed) {
  video::DiurnalContentProcess::Options opts;
  opts.profile = video::DiurnalContentProcess::Profile::kShoppingStreet;
  opts.horizon = Days(26);  // 16 d train + 8 d test + slack
  opts.seed = seed;
  return opts;
}

}  // namespace

CovidWorkload::CovidWorkload(uint64_t seed)
    : content_(CovidContentOptions(seed)) {
  // Knob domains from §5.2.
  (void)space_.AddKnob("frame_rate", {30, 15, 10, 5, 1});
  (void)space_.AddKnob("det_interval", {1, 5, 30, 60});
  (void)space_.AddKnob("tiles", {1, 4});
}

double CovidWorkload::CostCoreSecondsPerVideoSecond(
    const core::KnobConfig& config) const {
  double fps = space_.Value(config, 0);
  double det = space_.Value(config, 1);
  double tiles = space_.Value(config, 2);
  // Every arriving frame is decoded (§5.1); the rest scales with the
  // processed frame rate. 2x2 tiling costs 5.2x one inference: four tiles
  // plus the ~30% overlap margin tiled detectors use [84].
  double tile_factor = tiles >= 4.0 ? 5.2 : 1.0;
  double decode = 30.0 * kDecodeCostPerFrame;
  double detect = (fps / det) * tile_factor * kYoloCostPerTile;
  double track = fps * (1.0 - 1.0 / det) * kKcfCostPerFrame;
  double aux = (fps / det) * kMaskClassifierCostPerDetection +
               fps * kHomographyCostPerFrame;
  return decode + detect + track + aux;
}

double CovidWorkload::TrueQuality(const core::KnobConfig& config,
                                  const video::ContentState& content) const {
  double fps = space_.Value(config, 0);
  double det = space_.Value(config, 1);
  double tiles = space_.Value(config, 2);
  double rho = content.density;
  double occ = content.occlusion;

  // Lower frame rates miss fast pedestrians, mostly when the street is busy.
  double fps_penalty = std::min(
      1.0, std::pow(1.0 - fps / 30.0, 2.0) * (0.02 + 1.10 * std::pow(rho, 1.2)));
  // Sparse detector invocations make the tracker drift, which hurts under
  // occlusion ("detect-to-track" failure mode).
  double det_penalty = std::min(
      1.0, std::pow((det - 1.0) / 59.0, 0.6) * (0.03 + 1.15 * std::pow(occ, 1.1)));
  // Without tiling, small/far pedestrians are missed in dense scenes.
  double tile_penalty =
      tiles >= 4.0 ? 0.0
                   : std::min(1.0, 0.02 + 0.55 * std::pow(rho, 1.2));

  double q = (1.0 - fps_penalty) * (1.0 - det_penalty) * (1.0 - tile_penalty);
  return std::clamp(q, 0.0, 1.0);
}

dag::TaskGraph CovidWorkload::BuildTaskGraph(
    const core::KnobConfig& config, double segment_seconds,
    const sim::CostModel& cost_model) const {
  double fps = space_.Value(config, 0);
  double det = space_.Value(config, 1);
  double tiles = space_.Value(config, 2);
  double L = segment_seconds;

  double h264_bytes = video::EstimateStreamBytesPerSecond(0.5) * L;
  double det_frames = (fps / det) * L;
  double trk_frames = fps * (1.0 - 1.0 / det) * L;
  double tile_factor = tiles >= 4.0 ? 5.2 : 1.0;
  double chunk = L / 4.0;  // per-frame-batch tasks, as Ray would run them

  dag::TaskGraph g;
  size_t decode = g.AddNode(MakeUdfNode(
      "decode", 30.0 * kDecodeCostPerFrame * L, h264_bytes,
      det_frames * kJpegBytesPerFrame, cost_model));
  std::vector<size_t> detect = AddChunkedUdf(
      &g, "yolo_detect", 0, det_frames * tile_factor * kYoloCostPerTile,
      det_frames * kJpegBytesPerFrame, 4e3 * L, cost_model, chunk, {decode});
  std::vector<size_t> track = AddChunkedUdf(
      &g, "kcf_track", 1, trk_frames * kKcfCostPerFrame,
      trk_frames * kJpegBytesPerFrame, 4e3 * L, cost_model, chunk, {decode});
  PipelineLink(&g, detect, track);
  std::vector<size_t> aux = AddChunkedUdf(
      &g, "mask_homography", 2,
      det_frames * kMaskClassifierCostPerDetection +
          fps * L * kHomographyCostPerFrame,
      det_frames * 20e3, 2e3 * L, cost_model, chunk, {});
  PipelineLink(&g, detect, aux);
  return g;
}

}  // namespace sky::workloads
