#ifndef SKYSCRAPER_WORKLOADS_COVID_H_
#define SKYSCRAPER_WORKLOADS_COVID_H_

#include <memory>

#include "core/workload.h"
#include "video/content_process.h"

namespace sky::workloads {

/// The COVID-19 safety-measures workload (§5.2 / Appendix J): YOLOv5
/// pedestrian detection + KCF tracking + homography distancing + mask
/// classification, run on an 8-day stream of a busy Tokyo shopping street.
///
/// Knobs:
///   frame_rate    {30, 15, 10, 5, 1} FPS
///   det_interval  detector every {1, 5, 30, 60} frames
///   tiles         {1 (1x1), 4 (2x2)} detector tiles
///
/// Quality is person-seconds recorded relative to ground truth; the
/// response surface is calibrated so that cheap configurations match the
/// expensive ones on quiet/low-occlusion content and fall off sharply on
/// dense, occluded content (the premise of content-adaptive tuning).
class CovidWorkload : public core::Workload {
 public:
  explicit CovidWorkload(uint64_t seed = 1001);

  std::string name() const override { return "COVID"; }
  const core::KnobSpace& knob_space() const override { return space_; }
  double CostCoreSecondsPerVideoSecond(
      const core::KnobConfig& config) const override;
  double TrueQuality(const core::KnobConfig& config,
                     const video::ContentState& content) const override;
  dag::TaskGraph BuildTaskGraph(const core::KnobConfig& config,
                                double segment_seconds,
                                const sim::CostModel& cost_model) const override;
  const video::ContentProcess& content_process() const override {
    return content_;
  }

 private:
  core::KnobSpace space_;
  video::DiurnalContentProcess content_;
};

}  // namespace sky::workloads

#endif  // SKYSCRAPER_WORKLOADS_COVID_H_
