#ifndef SKYSCRAPER_WORKLOADS_MOSEI_H_
#define SKYSCRAPER_WORKLOADS_MOSEI_H_

#include "core/workload.h"
#include "video/content_process.h"

namespace sky::workloads {

/// The multi-modal opinion-sentiment workloads (§5.2 / Appendix J): a
/// synthetic Twitch-like deployment where a varying number of talking-head
/// streams is analyzed with a transcription + feature-extraction + sentiment
/// pipeline (the CMU-MOSEI stand-in).
///
/// Knobs:
///   skip_sentences  analyze sentiment every {1..7}-th sentence ({0..6} skips)
///   frame_fraction  {1/6, 1/3, 1/2, 2/3, 5/6, 1} of each analyzed sentence
///   model_size      {0 (small), 1 (medium), 2 (large)}
///   streams         {4, 8, 16, 32, 62} streams provisioned for analysis
///
/// Quality is the certainty-weighted sum over ingested streams: coverage of
/// the live streams times per-stream accuracy.
///
/// Two spike variants (§5.2): kHigh has short 62-stream peaks that choke the
/// uplink (cloud bursting struggles); kLong has an 8-hour plateau that
/// overruns any buffer (buffering struggles).
class MoseiWorkload : public core::Workload {
 public:
  using SpikeKind = video::TwitchContentProcess::SpikeKind;

  explicit MoseiWorkload(SpikeKind kind, uint64_t seed = 3003);

  std::string name() const override {
    return kind_ == SpikeKind::kHigh ? "MOSEI-HIGH" : "MOSEI-LONG";
  }
  const core::KnobSpace& knob_space() const override { return space_; }
  double CostCoreSecondsPerVideoSecond(
      const core::KnobConfig& config) const override;
  double TrueQuality(const core::KnobConfig& config,
                     const video::ContentState& content) const override;
  dag::TaskGraph BuildTaskGraph(const core::KnobConfig& config,
                                double segment_seconds,
                                const sim::CostModel& cost_model) const override;
  const video::ContentProcess& content_process() const override {
    return content_;
  }

 private:
  SpikeKind kind_;
  core::KnobSpace space_;
  video::TwitchContentProcess content_;
};

}  // namespace sky::workloads

#endif  // SKYSCRAPER_WORKLOADS_MOSEI_H_
