#include "workloads/mot.h"

#include <algorithm>
#include <cmath>

#include "video/codec.h"
#include "workloads/udf_costs.h"

namespace sky::workloads {

namespace {

// TransMOT inference cost per processed frame by model size (core-seconds,
// before the tiling/history multipliers).
constexpr double kTransMotModelCost[] = {0.20, 0.42, 0.85};
// Quality penalty scale per model size (large model has none).
constexpr double kTransMotModelPenalty[] = {0.35, 0.15, 0.0};

video::DiurnalContentProcess::Options MotContentOptions(uint64_t seed) {
  video::DiurnalContentProcess::Options opts;
  opts.profile = video::DiurnalContentProcess::Profile::kTrafficIntersection;
  opts.horizon = Days(26);
  opts.seed = seed;
  return opts;
}

}  // namespace

MotWorkload::MotWorkload(uint64_t seed) : content_(MotContentOptions(seed)) {
  (void)space_.AddKnob("frame_interval", {1, 5, 30, 60});
  (void)space_.AddKnob("tiles", {1, 4});
  (void)space_.AddKnob("history", {1, 2, 3, 5});
  (void)space_.AddKnob("model_size", {0, 1, 2});
}

double MotWorkload::CostCoreSecondsPerVideoSecond(
    const core::KnobConfig& config) const {
  double interval = space_.Value(config, 0);
  double tiles = space_.Value(config, 1);
  double history = space_.Value(config, 2);
  size_t model = static_cast<size_t>(space_.Value(config, 3));

  double fps_eff = 30.0 / interval;
  double tile_factor = tiles >= 4.0 ? 2.4 : 1.0;
  double history_factor = 0.8 + 0.1 * history;
  double decode = 30.0 * kDecodeCostPerFrame;
  return decode +
         fps_eff * tile_factor * kTransMotModelCost[model] * history_factor;
}

double MotWorkload::TrueQuality(const core::KnobConfig& config,
                                const video::ContentState& content) const {
  double interval = space_.Value(config, 0);
  double tiles = space_.Value(config, 1);
  double history = space_.Value(config, 2);
  size_t model = static_cast<size_t>(space_.Value(config, 3));
  double rho = content.density;
  double occ = content.occlusion;
  double difficulty = 0.5 * rho + 0.5 * occ;

  // Long gaps between processed frames break identity association,
  // especially under occlusion.
  double interval_penalty = std::min(
      1.0,
      std::pow((interval - 1.0) / 59.0, 0.7) * (0.03 + 1.15 * std::pow(occ, 1.1)));
  double tile_penalty =
      tiles >= 4.0 ? 0.0
                   : std::min(1.0, 0.02 + 0.50 * std::pow(rho, 1.2));
  double model_penalty =
      kTransMotModelPenalty[model] * (0.20 + 0.80 * difficulty);
  // Short history hurts re-identification through occlusions.
  double history_penalty = (0.15 / history) * (0.10 + 0.90 * occ);

  double q = (1.0 - interval_penalty) * (1.0 - tile_penalty) *
             (1.0 - model_penalty) * (1.0 - history_penalty);
  return std::clamp(q, 0.0, 1.0);
}

dag::TaskGraph MotWorkload::BuildTaskGraph(
    const core::KnobConfig& config, double segment_seconds,
    const sim::CostModel& cost_model) const {
  double interval = space_.Value(config, 0);
  double tiles = space_.Value(config, 1);
  double history = space_.Value(config, 2);
  size_t model = static_cast<size_t>(space_.Value(config, 3));
  double L = segment_seconds;
  double fps_eff = 30.0 / interval;
  double frames = fps_eff * L;
  double tile_factor = tiles >= 4.0 ? 2.4 : 1.0;

  // TransMOT splits into detector+embedding (per frame) and the graph
  // transformer (per frame, scaled by history).
  double detect_cost = frames * tile_factor * kTransMotModelCost[model] * 0.55;
  double transformer_cost =
      frames * kTransMotModelCost[model] * 0.45 * (0.8 + 0.1 * history) *
      tile_factor;

  double h264_bytes = video::EstimateStreamBytesPerSecond(0.5) * L;
  double chunk = L / 4.0;
  dag::TaskGraph g;
  size_t decode = g.AddNode(MakeUdfNode("decode",
                                        30.0 * kDecodeCostPerFrame * L,
                                        h264_bytes,
                                        frames * kJpegBytesPerFrame,
                                        cost_model));
  std::vector<size_t> detect = AddChunkedUdf(
      &g, "detect_embed", 0, detect_cost, frames * kJpegBytesPerFrame,
      8e3 * L, cost_model, chunk, {decode});
  std::vector<size_t> transformer = AddChunkedUdf(
      &g, "graph_transformer", 1, transformer_cost,
      frames * 16e3 * history, 4e3 * L, cost_model, chunk, {});
  PipelineLink(&g, detect, transformer);
  size_t tracks = g.AddNode(
      MakeUdfNode("emit_tracks", 0.002 * L, 4e3 * L, 2e3 * L, cost_model));
  PipelineLink(&g, transformer, {tracks});
  return g;
}

}  // namespace sky::workloads
