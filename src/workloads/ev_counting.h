#ifndef SKYSCRAPER_WORKLOADS_EV_COUNTING_H_
#define SKYSCRAPER_WORKLOADS_EV_COUNTING_H_

#include "core/workload.h"
#include "video/content_process.h"

namespace sky::workloads {

/// The electric-vehicle counting example of §1 / Fig. 1 / Appendix F: a
/// YOLO detector finds cars, a KCF tracker follows them so they are not
/// double-counted, and EVs are recognized by their green license plates.
///
/// Knobs (matching the Appendix F code snippet):
///   det_interval  detector every {1, 5, 10} frames
///   yolo_size     {0 (small), 1 (medium), 2 (large)}
///
/// This is the workload of the Fig. 3 processing example (24 h of a traffic
/// camera, 4 GB buffer).
class EvCountingWorkload : public core::Workload {
 public:
  explicit EvCountingWorkload(uint64_t seed = 4004);

  std::string name() const override { return "EV-COUNT"; }
  const core::KnobSpace& knob_space() const override { return space_; }
  double CostCoreSecondsPerVideoSecond(
      const core::KnobConfig& config) const override;
  double TrueQuality(const core::KnobConfig& config,
                     const video::ContentState& content) const override;
  dag::TaskGraph BuildTaskGraph(const core::KnobConfig& config,
                                double segment_seconds,
                                const sim::CostModel& cost_model) const override;
  const video::ContentProcess& content_process() const override {
    return content_;
  }

 private:
  core::KnobSpace space_;
  video::DiurnalContentProcess content_;
};

}  // namespace sky::workloads

#endif  // SKYSCRAPER_WORKLOADS_EV_COUNTING_H_
