#include "workloads/udf_costs.h"

#include <algorithm>
#include <cmath>

namespace sky::workloads {

dag::TaskNode MakeUdfNode(std::string name, double onprem_runtime_s,
                          double input_bytes, double output_bytes,
                          const sim::CostModel& cost_model) {
  dag::TaskNode node;
  node.name = std::move(name);
  node.onprem_runtime_s = onprem_runtime_s;
  node.cloud_runtime_s = onprem_runtime_s / kCloudSpeedup + kCloudRttSeconds;
  node.input_bytes = input_bytes;
  node.output_bytes = output_bytes;
  // Cloud credits bill the same amount of compute at the cloud rate.
  node.cloud_cost_usd =
      onprem_runtime_s * cost_model.CloudUsdPerCoreSecond();
  return node;
}

std::vector<size_t> AddChunkedUdf(dag::TaskGraph* graph, std::string name,
                                  int group, double total_runtime_s,
                                  double total_input_bytes,
                                  double total_output_bytes,
                                  const sim::CostModel& cost_model,
                                  double chunk_core_seconds,
                                  const std::vector<size_t>& parents) {
  size_t chunks = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(total_runtime_s / std::max(1e-9, chunk_core_seconds))));
  // Cap the fan-out so placement search and simulation stay fast; 24 chunks
  // saturate the useful parallelism of the largest catalog server for one
  // UDF while keeping per-chunk runtimes near the chunk target.
  chunks = std::min<size_t>(chunks, 24);
  std::vector<size_t> ids;
  ids.reserve(chunks);
  double inv = 1.0 / static_cast<double>(chunks);
  for (size_t i = 0; i < chunks; ++i) {
    dag::TaskNode node = MakeUdfNode(
        name + "#" + std::to_string(i), total_runtime_s * inv,
        total_input_bytes * inv, total_output_bytes * inv, cost_model);
    node.group = group;
    size_t id = graph->AddNode(std::move(node));
    for (size_t p : parents) (void)graph->AddEdge(p, id);
    ids.push_back(id);
  }
  return ids;
}

void PipelineLink(dag::TaskGraph* graph, const std::vector<size_t>& parents,
                  const std::vector<size_t>& children) {
  if (parents.empty() || children.empty()) return;
  for (size_t i = 0; i < children.size(); ++i) {
    size_t p = i * parents.size() / children.size();
    (void)graph->AddEdge(parents[p], children[i]);
  }
}

}  // namespace sky::workloads
