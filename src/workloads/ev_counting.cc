#include "workloads/ev_counting.h"

#include <algorithm>
#include <cmath>

#include "video/codec.h"
#include "workloads/udf_costs.h"

namespace sky::workloads {

namespace {

// YOLO cost per inference by model size (core-seconds).
constexpr double kYoloSizeCost[] = {0.15, 0.30, 0.60};
constexpr double kYoloSizePenalty[] = {0.30, 0.12, 0.0};

video::DiurnalContentProcess::Options EvContentOptions(uint64_t seed) {
  video::DiurnalContentProcess::Options opts;
  opts.profile = video::DiurnalContentProcess::Profile::kTrafficIntersection;
  opts.horizon = Days(20);
  opts.seed = seed;
  return opts;
}

}  // namespace

EvCountingWorkload::EvCountingWorkload(uint64_t seed)
    : content_(EvContentOptions(seed)) {
  (void)space_.AddKnob("det_interval", {1, 5, 10});
  (void)space_.AddKnob("yolo_size", {0, 1, 2});
}

double EvCountingWorkload::CostCoreSecondsPerVideoSecond(
    const core::KnobConfig& config) const {
  double det = space_.Value(config, 0);
  size_t size = static_cast<size_t>(space_.Value(config, 1));
  double decode = 30.0 * kDecodeCostPerFrame;
  double detect = (30.0 / det) * kYoloSizeCost[size];
  double track = 30.0 * (1.0 - 1.0 / det) * kKcfCostPerFrame;
  return decode + detect + track;
}

double EvCountingWorkload::TrueQuality(
    const core::KnobConfig& config,
    const video::ContentState& content) const {
  double det = space_.Value(config, 0);
  size_t size = static_cast<size_t>(space_.Value(config, 1));
  double occ = content.occlusion;
  double rho = content.density;
  double difficulty = 0.5 * rho + 0.5 * occ;

  // The EV result quality is mainly affected by object occlusions (§2.2).
  double det_penalty = std::min(
      1.0, std::pow((det - 1.0) / 9.0, 0.7) * (0.05 + 1.10 * std::pow(occ, 1.1)));
  double model_penalty = kYoloSizePenalty[size] * (0.15 + 0.85 * difficulty);
  double q = (1.0 - det_penalty) * (1.0 - model_penalty);
  return std::clamp(q, 0.0, 1.0);
}

dag::TaskGraph EvCountingWorkload::BuildTaskGraph(
    const core::KnobConfig& config, double segment_seconds,
    const sim::CostModel& cost_model) const {
  double det = space_.Value(config, 0);
  size_t size = static_cast<size_t>(space_.Value(config, 1));
  double L = segment_seconds;
  double det_frames = (30.0 / det) * L;
  double trk_frames = 30.0 * (1.0 - 1.0 / det) * L;
  double h264_bytes = video::EstimateStreamBytesPerSecond(0.5) * L;

  double chunk = L / 4.0;
  dag::TaskGraph g;
  size_t decode = g.AddNode(MakeUdfNode(
      "decode", 30.0 * kDecodeCostPerFrame * L, h264_bytes,
      det_frames * kJpegBytesPerFrame, cost_model));
  std::vector<size_t> detect = AddChunkedUdf(
      &g, "yolo", 0, det_frames * kYoloSizeCost[size],
      det_frames * kJpegBytesPerFrame, 4e3 * L, cost_model, chunk, {decode});
  std::vector<size_t> track = AddChunkedUdf(
      &g, "kcf", 1, trk_frames * kKcfCostPerFrame,
      trk_frames * kJpegBytesPerFrame, 2e3 * L, cost_model, chunk, {decode});
  PipelineLink(&g, detect, track);
  return g;
}

}  // namespace sky::workloads
