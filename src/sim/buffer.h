#ifndef SKYSCRAPER_SIM_BUFFER_H_
#define SKYSCRAPER_SIM_BUFFER_H_

#include <cstdint>

#include "util/status.h"

namespace sky::sim {

/// Byte-bounded video buffer (Eq. 1 of the paper): the system may lag behind
/// the stream, but the bytes of arrived-but-unprocessed frames must never
/// exceed the buffer size. The knob switcher queries `FreeBytes()` before
/// committing to a configuration; `Push` fails rather than over-filling,
/// which is how Chameleon* "crashes" in the baselines.
class VideoBuffer {
 public:
  explicit VideoBuffer(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Adds bytes of buffered video; fails with kResourceExhausted on overflow
  /// (the buffer content is left unchanged in that case).
  Status Push(uint64_t bytes);

  /// Removes processed bytes; removing more than is buffered fails.
  Status Pop(uint64_t bytes);

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  uint64_t FreeBytes() const { return capacity_ - used_; }
  /// Largest fill level ever observed (for the Fig. 3 trace).
  uint64_t high_water_bytes() const { return high_water_; }
  bool Empty() const { return used_ == 0; }

  void Reset();

  /// Reinstates a snapshotted fill level and high-water mark (checkpoint
  /// restore). Values are clamped to capacity by the caller's validation;
  /// here they are trusted — this is not a Push and runs no overflow check.
  void RestoreParts(uint64_t used_bytes, uint64_t high_water_bytes) {
    used_ = used_bytes;
    high_water_ = high_water_bytes;
  }

 private:
  uint64_t capacity_;
  uint64_t used_ = 0;
  uint64_t high_water_ = 0;
};

}  // namespace sky::sim

#endif  // SKYSCRAPER_SIM_BUFFER_H_
