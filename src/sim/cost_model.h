#ifndef SKYSCRAPER_SIM_COST_MODEL_H_
#define SKYSCRAPER_SIM_COST_MODEL_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace sky::sim {

/// One of the Google Cloud machine shapes the paper uses as stand-ins for
/// provisioned, always-on "on-premise servers" (§5.3).
struct ServerType {
  std::string name;
  int vcpus;
  double usd_per_hour;  ///< listed VM rental price
};

/// The instance catalog of §5.3.
const std::vector<ServerType>& ServerCatalog();

/// Looks up a server type by vCPU count.
Result<ServerType> ServerByVcpus(int vcpus);

/// Monetary model of Appendix L. The paper estimates that the same amount of
/// compute costs `cloud_to_onprem_ratio` (1.8 by default) times more on the
/// cloud than on an owned on-premise server. Experiment totals therefore
/// charge VM rent divided by that ratio, plus cloud (Lambda) credits. The
/// ablation study additionally sweeps the ratio over {1.0, 1.8, 2.5}.
class CostModel {
 public:
  explicit CostModel(double cloud_to_onprem_ratio = 1.8)
      : ratio_(cloud_to_onprem_ratio) {}

  double cloud_to_onprem_ratio() const { return ratio_; }

  /// Effective on-premise cost of renting `server` for `hours`, USD.
  double OnPremCost(const ServerType& server, double hours) const {
    return server.usd_per_hour * hours / ratio_;
  }

  /// On-premise $ per core-second, derived from the cheapest catalog server.
  double OnPremUsdPerCoreSecond() const;

  /// Cloud $ per (core-equivalent) second of compute.
  double CloudUsdPerCoreSecond() const {
    return OnPremUsdPerCoreSecond() * ratio_;
  }

  /// Converts a cloud-credit budget in USD into the equivalent on-premise
  /// core-seconds the knob planner reasons in (§4.1 footnote).
  double UsdToCoreSeconds(double usd) const {
    return usd / OnPremUsdPerCoreSecond();
  }
  double CoreSecondsToUsd(double core_seconds) const {
    return core_seconds * OnPremUsdPerCoreSecond();
  }

 private:
  double ratio_;
};

}  // namespace sky::sim

#endif  // SKYSCRAPER_SIM_COST_MODEL_H_
