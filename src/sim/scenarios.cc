#include "sim/scenarios.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace sky::sim {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kHalfDayS = 43200.0;

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Occlusion and difficulty re-derived after a scenario rewrote density
/// (crowds overlap superlinearly; mirrors DiurnalContentProcess::At).
void RederiveFromDensity(video::ContentState* state, double occlusion_extra) {
  state->occlusion =
      Clamp01(0.85 * std::pow(state->density, 1.4) + occlusion_extra);
  state->difficulty =
      Clamp01(0.55 * state->occlusion + 0.30 * state->density +
              0.15 * (1.0 - state->lighting));
}

video::DiurnalContentProcess::Options WithHorizonSlack(
    video::DiurnalContentProcess::Options base, SimTime slack) {
  base.horizon += slack;
  return base;
}

}  // namespace

FlashCrowdContentProcess::FlashCrowdContentProcess(
    const FlashCrowdOptions& options)
    : options_(options), base_(options.base) {
  // Burst schedule: Poisson count over the horizon, biased toward waking
  // hours (flash crowds follow announcements, not 4 am streets).
  Rng rng(options.base.seed ^ 0xF1A5);
  double days = options.base.horizon / 86400.0;
  int64_t candidates = rng.Poisson(options.bursts_per_day * days * 1.5);
  for (int64_t i = 0; i < candidates; ++i) {
    SimTime start = rng.Uniform(0.0, options.base.horizon);
    double hour = HourOfDay(start);
    if (!rng.Bernoulli(hour < 7.0 ? 0.15 : 0.75)) continue;  // thinning
    Burst b;
    b.start = start;
    b.amplitude = options.burst_amplitude * rng.Uniform(0.7, 1.0);
    b.hold_s = options.hold_s * rng.Uniform(0.5, 1.5);
    bursts_.push_back(b);
  }
  std::sort(bursts_.begin(), bursts_.end(),
            [](const Burst& a, const Burst& b) { return a.start < b.start; });
}

double FlashCrowdContentProcess::BurstBoost(SimTime t) const {
  // A burst covers [start, start + ramp + hold + 5*decay]; binary search to
  // the first one that could still cover t.
  double window = options_.ramp_s + 1.5 * options_.hold_s +
                  5.0 * options_.decay_s;
  double boost = 0.0;
  auto it = std::lower_bound(
      bursts_.begin(), bursts_.end(), t - window,
      [](const Burst& b, double v) { return b.start < v; });
  for (; it != bursts_.end() && it->start <= t; ++it) {
    double rel = t - it->start;
    double shape;
    if (rel < options_.ramp_s) {
      // Smoothstep onset: empty street to packed in ramp_s.
      double x = rel / options_.ramp_s;
      shape = x * x * (3.0 - 2.0 * x);
    } else if (rel < options_.ramp_s + it->hold_s) {
      shape = 1.0;
    } else {
      double tail = rel - options_.ramp_s - it->hold_s;
      if (tail > 5.0 * options_.decay_s) continue;
      shape = std::exp(-tail / options_.decay_s);
    }
    boost += it->amplitude * shape;
  }
  return boost;
}

video::ContentState FlashCrowdContentProcess::At(SimTime t) const {
  video::ContentState state = base_.At(t);
  double boost = BurstBoost(t);
  if (boost > 0.0) {
    double residual = state.occlusion - 0.85 * std::pow(state.density, 1.4);
    state.density = Clamp01(state.density + boost);
    RederiveFromDensity(&state, residual);
  }
  return state;
}

ContentDriftProcess::ContentDriftProcess(const ContentDriftOptions& options)
    : options_(options),
      base_(WithHorizonSlack(options.base, kHalfDayS)) {}

double ContentDriftProcess::DriftPhase(SimTime t) const {
  double period_s = std::max(options_.drift_period_days, 1e-3) * 86400.0;
  return options_.drift_magnitude * 0.5 * (1.0 - std::cos(2.0 * kPi * t /
                                                          period_s));
}

video::ContentState ContentDriftProcess::At(SimTime t) const {
  t = std::clamp(t, 0.0, options_.base.horizon);
  video::ContentState day = base_.At(t);
  video::ContentState night = base_.At(t + kHalfDayS);
  double phase = DriftPhase(t);
  video::ContentState state = day;
  state.density = Clamp01((1.0 - phase) * day.density + phase * night.density);
  // Lighting stays the true clock's (day.lighting): at full drift the
  // cameras see midday-sized crowds in the dark — the regime no early
  // training segment contains.
  double residual = day.occlusion - 0.85 * std::pow(day.density, 1.4);
  RederiveFromDensity(&state, residual);
  return state;
}

FleetCameraContentProcess::FleetCameraContentProcess(
    const FleetOptions& options, uint64_t camera_seed)
    : options_(options),
      own_([&] {
        video::DiurnalContentProcess::Options o = options.base;
        o.seed = camera_seed;
        return o;
      }()),
      shared_noise_(0.5 * options.shift_magnitude, Hours(2),
                    options.base.horizon, options.fleet_seed ^ 0x77) {
  // The category-shift schedule is a pure function of fleet_seed: every
  // camera of the fleet rebuilds the identical pulse train.
  Rng rng(options.fleet_seed ^ 0x5EED);
  double days = options.base.horizon / 86400.0;
  int64_t count = rng.Poisson(options.shift_rate_per_day * days);
  for (int64_t i = 0; i < count; ++i) {
    Shift s;
    s.start = rng.Uniform(0.0, options.base.horizon);
    s.duration_s = rng.Uniform(Hours(1), Hours(4));
    s.magnitude = (rng.Bernoulli(0.5) ? 1.0 : -1.0) *
                  options.shift_magnitude * rng.Uniform(0.4, 1.0);
    shifts_.push_back(s);
  }
  std::sort(shifts_.begin(), shifts_.end(),
            [](const Shift& a, const Shift& b) { return a.start < b.start; });
}

double FleetCameraContentProcess::SharedShift(SimTime t) const {
  double shift = shared_noise_.At(t);
  auto it = std::lower_bound(
      shifts_.begin(), shifts_.end(), t - Hours(4),
      [](const Shift& s, double v) { return s.start < v; });
  for (; it != shifts_.end() && it->start <= t; ++it) {
    double rel = (t - it->start) / it->duration_s;
    if (rel < 0.0 || rel > 1.0) continue;
    // Square pulse with smooth 10% edges (a venue switching content type).
    double edge = std::min({1.0, rel / 0.1, (1.0 - rel) / 0.1});
    shift += it->magnitude * std::clamp(edge, 0.0, 1.0);
  }
  return shift;
}

video::ContentState FleetCameraContentProcess::At(SimTime t) const {
  t = std::clamp(t, 0.0, options_.base.horizon);
  video::ContentState state = own_.At(t);
  // The fleet latent rides on a mid-scale operating point so upward and
  // downward category shifts both show.
  double common = Clamp01(0.45 + SharedShift(t));
  double residual = state.occlusion - 0.85 * std::pow(state.density, 1.4);
  state.density = Clamp01((1.0 - options_.correlation) * state.density +
                          options_.correlation * common);
  RederiveFromDensity(&state, residual);
  return state;
}

}  // namespace sky::sim
