#include "sim/buffer.h"

#include <algorithm>

namespace sky::sim {

Status VideoBuffer::Push(uint64_t bytes) {
  if (used_ + bytes > capacity_) {
    return Status::ResourceExhausted("video buffer overflow");
  }
  used_ += bytes;
  high_water_ = std::max(high_water_, used_);
  return Status::Ok();
}

Status VideoBuffer::Pop(uint64_t bytes) {
  if (bytes > used_) {
    return Status::InvalidArgument("popping more bytes than buffered");
  }
  used_ -= bytes;
  return Status::Ok();
}

void VideoBuffer::Reset() {
  used_ = 0;
  high_water_ = 0;
}

}  // namespace sky::sim
