#ifndef SKYSCRAPER_SIM_SCENARIOS_H_
#define SKYSCRAPER_SIM_SCENARIOS_H_

#include <cstdint>
#include <vector>

#include "util/sim_time.h"
#include "video/content_process.h"

namespace sky::sim {

/// Adversarial content scenarios: the workload shapes a million-user
/// deployment sees that the steady-state diurnal streams never produce —
/// flash-crowd arrival bursts, day/night content drift, and correlated
/// multi-camera fleets. Each is a deterministic, seekable ContentProcess
/// (same seed => bitwise same states), so engines, StreamSet, and benches
/// replay them exactly like the §5.2 workload streams. The matching
/// workloads ("flash-crowd", "drift", "fleet") live in
/// workloads/scenarios.h.

/// Flash crowds: a diurnal street whose density is punctuated by large,
/// Poisson-scheduled surges — a fast ramp (tens of seconds), a plateau, and
/// a slow exponential tail, with amplitudes well above the diurnal event
/// bumps. The shape stresses the forecaster (onset is unpredictable) and
/// the planner's buffering/bursting trade-off (minutes of sustained
/// overload).
struct FlashCrowdOptions {
  video::DiurnalContentProcess::Options base;  ///< street under the crowd
  double bursts_per_day = 4.0;
  double burst_amplitude = 0.85;  ///< peak density boost, >> event_magnitude
  double ramp_s = 40.0;           ///< onset: empty street to packed
  double hold_s = 420.0;          ///< plateau at full amplitude
  double decay_s = 900.0;         ///< exponential tail time constant
};

class FlashCrowdContentProcess : public video::ContentProcess {
 public:
  explicit FlashCrowdContentProcess(const FlashCrowdOptions& options);

  video::ContentState At(SimTime t) const override;
  SimTime horizon() const override { return base_.horizon(); }

  /// The additive density surge at time t (0 outside bursts). Exposed so
  /// tests can assert burst amplitude and schedule determinism directly.
  double BurstBoost(SimTime t) const;

 private:
  struct Burst {
    SimTime start = 0.0;
    double amplitude = 0.0;
    double hold_s = 0.0;
  };

  FlashCrowdOptions options_;
  video::DiurnalContentProcess base_;
  std::vector<Burst> bursts_;  ///< sorted by start
};

/// Day/night content drift: over `drift_period_days` the content
/// distribution migrates from the daytime diurnal pattern toward its
/// 12-hour-shifted inverse (activity moves into the night) and back, while
/// lighting stays tied to the true clock. A forecaster fitted on the first
/// days keeps predicting daytime crowds long after they moved — the
/// scenario online re-training exists for.
struct ContentDriftOptions {
  video::DiurnalContentProcess::Options base;
  double drift_period_days = 12.0;
  double drift_magnitude = 0.8;  ///< 1 = full day/night inversion at peak
};

class ContentDriftProcess : public video::ContentProcess {
 public:
  explicit ContentDriftProcess(const ContentDriftOptions& options);

  video::ContentState At(SimTime t) const override;
  SimTime horizon() const override { return options_.base.horizon; }

  /// Mixing weight toward the night-shifted pattern at time t, in
  /// [0, drift_magnitude]. Exposed so tests can assert the drift rate.
  double DriftPhase(SimTime t) const;

 private:
  ContentDriftOptions options_;
  /// Built with 12 h of horizon slack: At(t) samples it at both t and
  /// t + 12 h.
  video::DiurnalContentProcess base_;
};

/// Correlated camera fleet: every camera built from the same `fleet_seed`
/// shares one latent category-shift process (smooth drift plus
/// square-pulse shifts, e.g. an event venue switching content type) that
/// modulates its otherwise idiosyncratic diurnal stream. Cameras of one
/// fleet are strongly correlated; cameras of different fleets are not —
/// the structure joint planning can exploit and independent planning
/// cannot.
struct FleetOptions {
  /// Per-camera idiosyncratic street; its seed field is replaced by each
  /// camera's own seed.
  video::DiurnalContentProcess::Options base;
  double correlation = 0.6;        ///< weight of the shared latent
  double shift_rate_per_day = 3.0; ///< square-pulse category shifts
  double shift_magnitude = 0.5;
  uint64_t fleet_seed = 7001;
};

class FleetCameraContentProcess : public video::ContentProcess {
 public:
  FleetCameraContentProcess(const FleetOptions& options, uint64_t camera_seed);

  video::ContentState At(SimTime t) const override;
  SimTime horizon() const override { return options_.base.horizon; }

  /// The fleet-wide latent shift at time t (identical for every camera of
  /// the fleet). Exposed so tests can assert cross-camera correlation.
  double SharedShift(SimTime t) const;

 private:
  struct Shift {
    SimTime start = 0.0;
    double duration_s = 0.0;
    double magnitude = 0.0;  ///< signed
  };

  FleetOptions options_;
  video::DiurnalContentProcess own_;
  video::SmoothNoise shared_noise_;
  std::vector<Shift> shifts_;  ///< sorted by start
};

}  // namespace sky::sim

#endif  // SKYSCRAPER_SIM_SCENARIOS_H_
