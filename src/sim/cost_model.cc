#include "sim/cost_model.h"

namespace sky::sim {

const std::vector<ServerType>& ServerCatalog() {
  // §5.3: Google Cloud shapes used as provisioned, always-on hardware.
  static const std::vector<ServerType> kCatalog = {
      {"e2-standard-4", 4, 0.14},   {"e2-standard-8", 8, 0.27},
      {"e2-standard-16", 16, 0.54}, {"e2-standard-32", 32, 1.07},
      {"c2-standard-60", 60, 2.51},
  };
  return kCatalog;
}

Result<ServerType> ServerByVcpus(int vcpus) {
  for (const ServerType& s : ServerCatalog()) {
    if (s.vcpus == vcpus) return s;
  }
  return Status::NotFound("no catalog server with requested vCPU count");
}

double CostModel::OnPremUsdPerCoreSecond() const {
  // Derived from the cheapest catalog shape: price per core-hour divided by
  // the cloud-to-on-prem ratio, then per second.
  const ServerType& base = ServerCatalog().front();
  double usd_per_core_hour =
      base.usd_per_hour / static_cast<double>(base.vcpus) / ratio_;
  return usd_per_core_hour / 3600.0;
}

}  // namespace sky::sim
