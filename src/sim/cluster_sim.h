#ifndef SKYSCRAPER_SIM_CLUSTER_SIM_H_
#define SKYSCRAPER_SIM_CLUSTER_SIM_H_

#include <cstddef>
#include <vector>

#include "dag/task_graph.h"
#include "util/result.h"

namespace sky::sim {

/// Hardware provisioning the simulator models: an on-premise server with
/// `cores` logical cores plus a connection to on-demand cloud workers.
struct ClusterSpec {
  int cores = 4;
  /// Number of concurrently usable cloud workers (warm Lambda concurrency).
  /// Appendix M.1 tracks a single cloud timeline (t_cloud_max); setting 1
  /// reproduces that exactly. The paper's deployments rely on cloud
  /// parallelism to shorten DAG execution (§3.1), which needs several
  /// concurrent workers.
  int cloud_workers = 8;
  /// Uplink/downlink bandwidth to the cloud. Tasks occupy the link fully for
  /// payload_bytes / bandwidth seconds (Appendix M.1); this is what limits
  /// cloud bursting under the MOSEI-HIGH spike (62 talking-head streams need
  /// ~1.4x this uplink; the MOSEI-LONG plateau fits).
  double uplink_bytes_per_s = 16.0e6;    // ~128 Mbit/s
  double downlink_bytes_per_s = 32.0e6;  // ~256 Mbit/s
};

/// Output of one simulated DAG execution (Appendix M.1).
struct DagSimResult {
  /// Estimated time at which the last task finishes, seconds.
  double makespan_s = 0.0;
  /// Per-node finish time, seconds.
  std::vector<double> finish_times_s;
  /// Work executed on the on-premise server, in core-seconds.
  double onprem_core_seconds = 0.0;
  /// Cloud credits charged (sum over cloud-placed nodes), USD.
  double cloud_cost_usd = 0.0;
  /// Bytes pushed through the uplink (inputs of cloud-placed nodes).
  double uplink_bytes = 0.0;
};

/// The cluster/cloud simulator of Appendix M.1. Tasks are scheduled in order
/// of earliest dependency-resolution time. On-premise tasks go to the core
/// that frees up first; cloud tasks first occupy the uplink for their input
/// payload, run on a cloud worker, then occupy the downlink for their
/// output. Fails on cyclic graphs or placements of the wrong arity.
Result<DagSimResult> SimulateDag(const dag::TaskGraph& graph,
                                 const dag::Placement& placement,
                                 const ClusterSpec& cluster);

}  // namespace sky::sim

#endif  // SKYSCRAPER_SIM_CLUSTER_SIM_H_
