#include "sim/cluster_sim.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace sky::sim {

namespace {

/// Tasks become schedulable when all parents have finished; the simulator
/// always picks the schedulable task whose dependencies resolved earliest
/// (Appendix M.1).
struct ReadyTask {
  double ready_time;
  size_t node;
  bool operator>(const ReadyTask& o) const {
    if (ready_time != o.ready_time) return ready_time > o.ready_time;
    return node > o.node;
  }
};

}  // namespace

Result<DagSimResult> SimulateDag(const dag::TaskGraph& graph,
                                 const dag::Placement& placement,
                                 const ClusterSpec& cluster) {
  if (placement.node_loc.size() != graph.NumNodes()) {
    return Status::InvalidArgument("placement arity != graph size");
  }
  if (cluster.cores <= 0 || cluster.cloud_workers <= 0) {
    return Status::InvalidArgument("cluster must have positive resources");
  }
  SKY_RETURN_NOT_OK(graph.Validate());

  size_t n = graph.NumNodes();
  DagSimResult result;
  result.finish_times_s.assign(n, 0.0);
  if (n == 0) return result;

  std::vector<double> core_free(static_cast<size_t>(cluster.cores), 0.0);
  std::vector<double> cloud_free(static_cast<size_t>(cluster.cloud_workers),
                                 0.0);
  double uplink_free = 0.0;
  double downlink_free = 0.0;

  std::vector<size_t> pending(n, 0);
  std::priority_queue<ReadyTask, std::vector<ReadyTask>, std::greater<>> ready;
  for (size_t i = 0; i < n; ++i) {
    pending[i] = graph.Parents(i).size();
    if (pending[i] == 0) ready.push({0.0, i});
  }

  size_t scheduled = 0;
  while (!ready.empty()) {
    ReadyTask rt = ready.top();
    ready.pop();
    const dag::TaskNode& node = graph.node(rt.node);
    double finish;
    if (placement.node_loc[rt.node] == dag::Loc::kOnPrem) {
      // Cheapest-core scheduling: take the core that frees up first.
      auto it = std::min_element(core_free.begin(), core_free.end());
      double start = std::max(*it, rt.ready_time);
      finish = start + node.onprem_runtime_s;
      *it = finish;
      result.onprem_core_seconds += node.onprem_runtime_s;
    } else {
      // Upload occupies the uplink fully for the payload duration.
      double upload_time =
          cluster.uplink_bytes_per_s > 0
              ? node.input_bytes / cluster.uplink_bytes_per_s
              : 0.0;
      double upload_start = std::max(rt.ready_time, uplink_free);
      double upload_end = upload_start + upload_time;
      uplink_free = upload_end;
      result.uplink_bytes += node.input_bytes;

      auto it = std::min_element(cloud_free.begin(), cloud_free.end());
      double cloud_start = std::max(*it, upload_end);
      double cloud_end = cloud_start + node.cloud_runtime_s;
      *it = cloud_end;

      double download_time =
          cluster.downlink_bytes_per_s > 0
              ? node.output_bytes / cluster.downlink_bytes_per_s
              : 0.0;
      double download_start = std::max(cloud_end, downlink_free);
      finish = download_start + download_time;
      downlink_free = finish;
      result.cloud_cost_usd += node.cloud_cost_usd;
    }
    result.finish_times_s[rt.node] = finish;
    result.makespan_s = std::max(result.makespan_s, finish);
    ++scheduled;
    for (size_t child : graph.Children(rt.node)) {
      if (--pending[child] == 0) {
        double ready_time = 0.0;
        for (size_t p : graph.Parents(child)) {
          ready_time = std::max(ready_time, result.finish_times_s[p]);
        }
        ready.push({ready_time, child});
      }
    }
  }
  if (scheduled != n) {
    return Status::Internal("scheduling did not cover all tasks");
  }
  return result;
}

}  // namespace sky::sim
