#include "sim/faults.h"

#include <algorithm>
#include <cstring>

namespace sky::sim {
namespace {

// splitmix64 finalizer — the same mixing Rng::ForkIndex uses, so injector
// sub-streams have the quality of forked Rng streams without holding
// generator state.
uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Uniform double in [0, 1) from a hash word (53 mantissa bits).
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Bit pattern of a SimTime, so the (seed, t) hash keys on the exact double
// the engine computes — two segments only collide if their times are
// bitwise equal, in which case they SHOULD see the same failures.
uint64_t TimeBits(SimTime t) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(t), "SimTime must be 64-bit");
  std::memcpy(&bits, &t, sizeof(bits));
  return bits;
}

bool WindowCovers(const FaultEvent& e, SimTime t) {
  return t >= e.at && t < e.at + e.duration;
}

}  // namespace

void FaultPlan::AddTransientCloudFailures(SimTime at, SimTime duration,
                                          double fail_probability) {
  events.push_back({FaultKind::kTransientCloudFailure, at, duration,
                    std::clamp(fail_probability, 0.0, 1.0)});
}

void FaultPlan::AddCloudOutage(SimTime at, SimTime duration) {
  events.push_back({FaultKind::kCloudOutage, at, duration, 0.0});
}

void FaultPlan::AddCloudLatency(SimTime at, SimTime duration,
                                double runtime_multiplier) {
  events.push_back(
      {FaultKind::kCloudLatency, at, duration, runtime_multiplier});
}

void FaultPlan::AddUdfStall(SimTime at, SimTime duration,
                            double runtime_multiplier) {
  events.push_back({FaultKind::kUdfStall, at, duration, runtime_multiplier});
}

void FaultPlan::AddUdfThrow(SimTime at) {
  events.push_back({FaultKind::kUdfThrow, at, 0.0, 0.0});
}

void FaultPlan::AddCrash(SimTime at) {
  events.push_back({FaultKind::kCrash, at, 0.0, 0.0});
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed, RetryPolicy retry)
    : plan_(std::move(plan)), retry_(retry) {
  event_seeds_.reserve(plan_.events.size());
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    event_seeds_.push_back(Mix64(seed ^ Mix64(i)));
  }
  consumed_ = std::make_unique<std::atomic<bool>[]>(plan_.events.size());
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    consumed_[i].store(false, std::memory_order_relaxed);
  }
}

FaultInjector::FaultInjector(FaultPlan plan, Rng* rng, RetryPolicy retry)
    : FaultInjector(std::move(plan),
                    rng->Fork("fault-injector").engine()(), retry) {}

bool FaultInjector::CloudOutageAt(SimTime t) const {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kCloudOutage && WindowCovers(e, t)) return true;
  }
  return false;
}

double FaultInjector::CloudLatencyMultiplierAt(SimTime t) const {
  double mult = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kCloudLatency && WindowCovers(e, t)) {
      mult *= e.magnitude;
    }
  }
  return mult;
}

double FaultInjector::UdfStallMultiplierAt(SimTime t) const {
  double mult = 1.0;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kUdfStall && WindowCovers(e, t)) {
      mult *= e.magnitude;
    }
  }
  return mult;
}

size_t FaultInjector::CloudUploadFailuresAt(SimTime t) const {
  const size_t cap = retry_.max_attempts + 1;
  size_t worst = 0;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != FaultKind::kTransientCloudFailure || !WindowCovers(e, t)) {
      continue;
    }
    // Each attempt j fails iff the j-th hash of (event seed, t) lands under
    // the failure probability — a counting process with no shared state, so
    // any replay of segment t recomputes the identical count.
    uint64_t key = event_seeds_[i] ^ Mix64(TimeBits(t));
    size_t fails = 0;
    while (fails < cap && HashToUnit(Mix64(key + fails)) < e.magnitude) {
      ++fails;
    }
    worst = std::max(worst, fails);
  }
  return worst;
}

double FaultInjector::BackoffDelaySeconds(size_t failed_attempts) const {
  double total = 0.0;
  double delay = retry_.backoff_base_s;
  for (size_t j = 0; j < failed_attempts; ++j) {
    total += std::min(delay, retry_.backoff_cap_s);
    delay *= 2.0;
  }
  return total;
}

bool FaultInjector::ConsumeKindAt(FaultKind kind, SimTime t) {
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& e = plan_.events[i];
    if (e.kind != kind || t < e.at) continue;
    bool expected = false;
    if (consumed_[i].compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::ConsumeUdfThrowAt(SimTime t) {
  return ConsumeKindAt(FaultKind::kUdfThrow, t);
}

bool FaultInjector::ConsumeCrashAt(SimTime t) {
  return ConsumeKindAt(FaultKind::kCrash, t);
}

size_t FaultInjector::consumed_events() const {
  size_t n = 0;
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    if (consumed_[i].load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

}  // namespace sky::sim
