#ifndef SKYSCRAPER_SIM_FAULTS_H_
#define SKYSCRAPER_SIM_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"
#include "util/sim_time.h"

namespace sky::sim {

/// The failure modes a FaultPlan can schedule. Window events (a start time
/// plus a duration) describe degraded-but-operating conditions; one-shot
/// events (a point in time) describe discrete failures.
enum class FaultKind : uint32_t {
  /// Window. Cloud upload attempts fail independently with probability
  /// `magnitude` inside the window; the engine retries under its
  /// RetryPolicy and degrades the segment on-prem when the budget runs out.
  kTransientCloudFailure = 0,
  /// Window. The cloud is unreachable: reactive bursting is barred
  /// segment-by-segment, and any plan boundary inside the window plans the
  /// interval on-prem-only (no cloud credits granted). Bursting resumes at
  /// the first boundary after the window closes.
  kCloudOutage,
  /// Window. Cloud placements run `magnitude` times slower (network
  /// congestion) — both the switcher's feasibility check and the executed
  /// runtime see the elevated latency.
  kCloudLatency,
  /// Window. The workload UDF runs `magnitude` times slower on every
  /// placement (e.g. a pathological input), growing lag and buffer.
  kUdfStall,
  /// One-shot. The workload UDF throws at the first segment at or after
  /// `at` — the engine raises the exception before mutating any state, so
  /// a supervisor can replay from the last boundary checkpoint bitwise.
  kUdfThrow,
  /// One-shot. A simulated whole-process crash point. The engine ignores
  /// these: the *driver* consumes them (ConsumeCrashAt) to decide when to
  /// tear the fleet down and exercise RecoverFromCheckpoint.
  kCrash,
};

struct FaultEvent {
  FaultKind kind = FaultKind::kTransientCloudFailure;
  SimTime at = 0.0;        ///< window start, or the one-shot fire time
  SimTime duration = 0.0;  ///< window length; unused for one-shot kinds
  /// Kind-specific intensity: failure probability for transient failures,
  /// runtime multiplier for latency/stall. Unused for outage/throw/crash.
  double magnitude = 0.0;
};

/// Capped-exponential retry policy for transient cloud failures: attempt j
/// (0-based) backs off min(backoff_base_s * 2^j, backoff_cap_s) before the
/// next try; after `max_attempts` failed attempts the segment degrades to an
/// on-premise placement instead (counted as a giveup, never an error).
struct RetryPolicy {
  size_t max_attempts = 4;
  double backoff_base_s = 0.5;
  double backoff_cap_s = 8.0;
};

/// A deterministic schedule of failures, built programmatically (Add*) and
/// handed to a FaultInjector. Plans are plain data: copyable, comparable by
/// inspection, and independent of any RNG until armed.
struct FaultPlan {
  std::vector<FaultEvent> events;

  void AddTransientCloudFailures(SimTime at, SimTime duration,
                                 double fail_probability);
  void AddCloudOutage(SimTime at, SimTime duration);
  void AddCloudLatency(SimTime at, SimTime duration,
                       double runtime_multiplier);
  void AddUdfStall(SimTime at, SimTime duration, double runtime_multiplier);
  void AddUdfThrow(SimTime at);
  void AddCrash(SimTime at);

  bool empty() const { return events.empty(); }
};

/// Armed fault schedule: the deterministic oracle the engine (and fleet
/// drivers) query while stepping. Wire one into a run with
/// core::EngineOptions::fault_injector.
///
/// Determinism contract: every window query is a PURE function of the query
/// time and the (plan, seed) pair — per-event sub-streams are derived from
/// `seed` at construction (forked off the same splitmix mixing Rng uses), and
/// the per-segment transient-failure draws hash (event seed, time) instead of
/// consuming generator state. Replaying any prefix of a run therefore sees
/// the identical fault sequence regardless of worker count, step batching, or
/// how often a supervisor restores a checkpoint — the property the bitwise
/// recovery gates rest on.
///
/// Thread safety: window queries are const and touch no mutable state;
/// one-shot Consume* calls are atomic (exactly one caller wins). One
/// injector may be shared by many engines, but then its one-shot events fire
/// on whichever stream reaches them first — give each stream its OWN
/// injector (fork per-stream seeds) when per-stream throw/crash scheduling
/// matters.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, uint64_t seed, RetryPolicy retry = {});
  /// Convenience: draw the seed from an existing deterministic stream.
  FaultInjector(FaultPlan plan, Rng* rng, RetryPolicy retry = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // --- Window queries (pure, thread-safe) ---

  /// True inside any kCloudOutage window.
  bool CloudOutageAt(SimTime t) const;

  /// Product of the magnitudes of every kCloudLatency window covering `t`;
  /// exactly 1.0 outside all windows.
  double CloudLatencyMultiplierAt(SimTime t) const;

  /// Product of the magnitudes of every kUdfStall window covering `t`;
  /// exactly 1.0 outside all windows.
  double UdfStallMultiplierAt(SimTime t) const;

  /// Failed upload attempts a cloud segment at `t` suffers before one
  /// succeeds — a deterministic hash of (event seed, t), not a stateful
  /// draw, so replays and re-orderings see identical failures. Capped at
  /// retry_policy().max_attempts + 1: a count beyond max_attempts means the
  /// segment's retry budget is exhausted (degrade on-prem). 0 outside every
  /// kTransientCloudFailure window.
  size_t CloudUploadFailuresAt(SimTime t) const;

  /// Total backoff delay for `failed_attempts` failed attempts under the
  /// retry policy: sum of min(base * 2^j, cap) for j in [0, failed_attempts).
  double BackoffDelaySeconds(size_t failed_attempts) const;

  // --- One-shot events (consumed exactly once, thread-safe) ---

  /// True exactly once per scheduled kUdfThrow event with `at <= t`.
  bool ConsumeUdfThrowAt(SimTime t);

  /// True exactly once per scheduled kCrash event with `at <= t`. Called by
  /// fleet drivers, not by engines (see FaultKind::kCrash).
  bool ConsumeCrashAt(SimTime t);

  /// One-shot events consumed so far (tests / introspection).
  size_t consumed_events() const;

 private:
  bool ConsumeKindAt(FaultKind kind, SimTime t);

  FaultPlan plan_;
  RetryPolicy retry_;
  std::vector<uint64_t> event_seeds_;  ///< one derived sub-stream per event
  /// One consumed flag per event (only one-shot kinds ever flip).
  std::unique_ptr<std::atomic<bool>[]> consumed_;
};

}  // namespace sky::sim

#endif  // SKYSCRAPER_SIM_FAULTS_H_
