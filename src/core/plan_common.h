#ifndef SKYSCRAPER_CORE_PLAN_COMMON_H_
#define SKYSCRAPER_CORE_PLAN_COMMON_H_

#include <cstddef>
#include <vector>

#include "core/categorizer.h"
#include "lp/mckp.h"
#include "lp/simplex.h"
#include "util/result.h"

namespace sky::core {

struct KnobPlan;  // core/planner.h

/// Which solver the knob planners run on. Both are exact on the planning
/// program (§4.1 / Appendix D Eqs. 7-9) and agree to fp round-off;
/// kStructured exploits the program's multiple-choice-knapsack structure
/// (O(n log n)) while kSimplex pivots on the dense tableau and is kept as
/// the reference oracle for A/B tests.
enum class PlannerBackend { kStructured, kSimplex };

/// Reusable coefficient + solver state shared by ComputeKnobPlan and
/// ComputeJointKnobPlan. One group per (stream, category), one option per
/// configuration, laid out flat in append order. A caller that keeps a
/// workspace alive across plan intervals (the ingestion engine does) makes
/// planning allocation-free at steady state: every buffer here is reused.
struct PlanWorkspace {
  std::vector<double> costs;          ///< flat: r_c * cost(k) per option
  std::vector<double> values;         ///< flat: r_c * qual(c, k) per option
  std::vector<size_t> group_offsets;  ///< size num_groups + 1
  size_t num_groups = 0;

  lp::MckpSolver mckp;
  lp::MckpSolution mckp_solution;
  lp::LinearProgram program;  ///< simplex backend only
  std::vector<double> x;      ///< flat alphas, filled by either backend
  double objective = 0.0;

  void Clear();
};

/// Appends one stream's planning coefficients — C groups of K options with
/// value r_c * qual(c, k) and cost r_c * cost(k) — the objective/budget-row
/// assembly both planners share. Returns the stream's first group index.
/// Fails on shape mismatches (forecast vs categories, costs vs configs).
Result<size_t> AppendPlanCoefficients(const ContentCategories& categories,
                                      const std::vector<double>& forecast,
                                      const std::vector<double>& config_costs,
                                      PlanWorkspace* ws);

/// Solves the assembled program against `budget` with `backend`, filling
/// ws->x (flat per-option alphas; each group sums to 1) and ws->objective.
/// kResourceExhausted when even the cheapest options exceed the budget.
Status SolvePlanProblem(double budget, PlannerBackend backend,
                        PlanWorkspace* ws);

/// Extracts the plan of the stream whose categories start at `first_group`
/// from ws->x: the alpha matrix plus expected quality/work recomputed from
/// the same coefficients for both backends.
KnobPlan ExtractPlan(const PlanWorkspace& ws, size_t first_group,
                     const ContentCategories& categories,
                     const std::vector<double>& forecast,
                     const std::vector<double>& config_costs);

/// Extracts one stream's plan straight from an MCKP solution whose groups
/// hold group-LOCAL option indices (the lp::IncrementalMckpSolver
/// convention): group `first_group + c` is category c, its lo/hi are config
/// indices. Expected quality/work are recomputed from the same coefficients
/// ExtractPlan uses, so either extraction path reports comparable numbers.
KnobPlan ExtractPlanFromChoices(const lp::MckpSolution& solution,
                                size_t first_group,
                                const ContentCategories& categories,
                                const std::vector<double>& forecast,
                                const std::vector<double>& config_costs);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_PLAN_COMMON_H_
