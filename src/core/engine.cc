#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/stats.h"
#include "video/stream_source.h"

namespace sky::core {

IngestionEngine::IngestionEngine(const Workload* workload,
                                 const OfflineModel* model,
                                 const sim::ClusterSpec& cluster,
                                 const sim::CostModel* cost_model,
                                 EngineOptions options)
    : workload_(workload),
      model_(model),
      cluster_(cluster),
      cost_model_(cost_model),
      options_(options) {}

const IngestionEngine::SegmentTruth& IngestionEngine::CachedTruth(
    int64_t segment_index) const {
  // Floor-mod: segment indices are non-negative in normal operation, but a
  // negative start_time must not turn into an out-of-bounds slot.
  int64_t n = static_cast<int64_t>(truth_ring_.size());
  SegmentTruth& slot =
      truth_ring_[static_cast<size_t>(((segment_index % n) + n) % n)];
  if (slot.segment_index != segment_index) {
    double seg = model_->segment_seconds;
    double midpoint = (static_cast<double>(segment_index) + 0.5) * seg;
    TrueQualityVectorInto(*workload_, model_->configs,
                          workload_->content_process().At(midpoint),
                          &slot.quals);
    slot.category = model_->categories.ClassifyFull(slot.quals);
    slot.segment_index = segment_index;
  }
  return slot;
}

void IngestionEngine::GroundTruthForecastInto(int64_t first_segment_index,
                                              std::vector<double>* out) const {
  double seg = model_->segment_seconds;
  int64_t count = static_cast<int64_t>(options_.plan_interval / seg);
  out->assign(model_->categories.NumCategories(), 0.0);
  // Walk the same segment midpoints the ingest loop will visit, so the
  // lookahead classifications are reused there instead of recomputed.
  for (int64_t i = 0; i < count; ++i) {
    (*out)[CachedTruth(first_segment_index + i).category] += 1.0;
  }
  *out = NormalizeHistogram(std::move(*out));
}

Result<KnobPlan> IngestionEngine::MakePlan(int64_t first_segment_index,
                                           const std::vector<size_t>& history,
                                           const Forecaster* forecaster) const {
  size_t num_c = model_->categories.NumCategories();
  // All buffers below live in scratch_ and are written in place — including
  // the forecaster forward pass, which runs against its own reusable
  // inference scratch. The only steady-state allocation left on this path
  // is the returned plan itself.
  std::vector<double>& forecast = scratch_.forecast;
  if (options_.use_ground_truth_forecast) {
    GroundTruthForecastInto(first_segment_index, &forecast);
  } else if (forecaster != nullptr && !history.empty()) {
    forecaster->FeaturesFromHistoryInto(history, model_->segment_seconds,
                                        &scratch_.features);
    forecaster->ForecastInto(scratch_.features, &forecast);
  } else if (!history.empty()) {
    CategoryHistogramInto(history, 0, history.size(), num_c, &forecast);
  } else {
    forecast.assign(num_c, 1.0 / static_cast<double>(num_c));
  }

  std::vector<double>& costs = scratch_.costs;
  if (costs.size() != model_->profiles.size()) {
    costs.clear();
    costs.reserve(model_->profiles.size());
    for (const ConfigProfile& p : model_->profiles) {
      costs.push_back(p.work_core_s_per_video_s);
    }
  }

  double budget = static_cast<double>(cluster_.cores);
  if (options_.enable_cloud && options_.cloud_budget_usd_per_interval > 0) {
    budget += cost_model_->UsdToCoreSeconds(
                  options_.cloud_budget_usd_per_interval) /
              options_.plan_interval;
  }
  if (options_.work_budget_override > 0) {
    budget = options_.work_budget_override;
  }

  Result<KnobPlan> plan =
      ComputeKnobPlan(model_->categories, forecast, costs, budget,
                      options_.planner_backend, &scratch_.workspace);
  if (plan.ok()) return plan;
  if (plan.status().code() != StatusCode::kResourceExhausted) {
    return plan.status();
  }
  // Budget below even the cheapest configuration: degrade to an
  // all-cheapest plan; the switcher's buffer guard does the rest.
  size_t cheapest = 0;
  for (size_t k = 1; k < costs.size(); ++k) {
    if (costs[k] < costs[cheapest]) cheapest = k;
  }
  KnobPlan fallback;
  fallback.alpha = ml::Matrix(num_c, costs.size(), 0.0);
  for (size_t c = 0; c < num_c; ++c) fallback.alpha.At(c, cheapest) = 1.0;
  fallback.forecast = forecast;
  fallback.expected_work = costs[cheapest];
  for (size_t c = 0; c < num_c; ++c) {
    fallback.expected_quality +=
        forecast[c] * model_->categories.CenterQuality(c, cheapest);
  }
  return fallback;
}

Result<EngineResult> IngestionEngine::Run(SimTime start_time) {
  if (model_->profiles.empty()) {
    return Status::FailedPrecondition("offline model has no profiles");
  }
  double seg = model_->segment_seconds;
  int64_t n_segments = static_cast<int64_t>(options_.duration / seg);
  int64_t segs_per_interval =
      std::max<int64_t>(1, static_cast<int64_t>(options_.plan_interval / seg));

  video::StreamSource source(&workload_->content_process(), seg);
  int64_t first_segment = static_cast<int64_t>(start_time / seg);

  // Truth memo ring: one slot per segment of a plan interval. The lookahead
  // fills at most one interval ahead and the ingest loop consumes within the
  // same interval, so slots are never evicted while live (tags catch any
  // reuse across intervals). Reset tags in case Run is called twice.
  truth_ring_.resize(static_cast<size_t>(segs_per_interval));
  for (SegmentTruth& slot : truth_ring_) slot.segment_index = -1;

  Rng rng(options_.seed);
  Rng noise = rng.Fork("measurement");

  // Loop-invariant model lookups, hoisted out of the segment loop.
  const std::vector<KnobConfig>& configs = model_->configs;
  const std::vector<ConfigProfile>& profiles = model_->profiles;
  const ContentCategories& categories = model_->categories;
  const size_t num_categories = categories.NumCategories();

  KnobSwitcher switcher(&categories, &profiles);

  // The engine fine-tunes its own copy of the forecaster online (§3.3); the
  // offline model stays untouched so runs are independent.
  std::optional<Forecaster> forecaster = model_->forecaster;

  // Rolling category history, bounded to the feature window instead of
  // growing O(duration): the forecaster features read the last `input_span`
  // and the realized-interval update the last interval, so both see exactly
  // what they did unbounded. The forecaster-less fallback forecast (a plain
  // histogram of the history) deliberately becomes a recency window rather
  // than the whole-run distribution. Capacity 2x the window amortizes
  // compaction to O(1) per segment with no further allocation; bootstrapped
  // with the tail of the offline training sequence.
  size_t history_window = static_cast<size_t>(segs_per_interval);
  if (forecaster.has_value()) {
    const ForecasterOptions& fopts = forecaster->options();
    history_window = std::max(
        history_window,
        std::max<size_t>(fopts.input_splits,
                         static_cast<size_t>(fopts.input_span / seg)));
  }
  const std::vector<size_t>& train_seq = model_->train_category_sequence;
  size_t bootstrap = std::min(history_window, train_seq.size());
  std::vector<size_t> history;
  history.reserve(2 * history_window);
  history.assign(train_seq.end() - static_cast<ptrdiff_t>(bootstrap),
                 train_seq.end());

  EngineResult result;
  double lag_s = 0.0;
  double buffered_bytes = 0.0;
  sim::VideoBuffer buffer(options_.enable_buffer ? options_.buffer_bytes : 0);
  double credits_remaining = 0.0;
  double planned_usd_per_interval = 0.0;
  size_t interval_index = 0;

  // Start on the cheapest profiled configuration.
  size_t current_config = 0;
  for (size_t k = 1; k < profiles.size(); ++k) {
    if (profiles[k].work_core_s_per_video_s <
        profiles[current_config].work_core_s_per_video_s) {
      current_config = k;
    }
  }
  double last_measured = workload_->MeasuredQuality(
      configs[current_config], workload_->content_process().At(start_time),
      &noise);

  KnobPlan plan;
  std::vector<double> plan_features;
  std::vector<double> realized;
  double next_trace_t = start_time;

  for (int64_t i = 0; i < n_segments; ++i) {
    SimTime t = start_time + static_cast<double>(i) * seg;

    if (i % segs_per_interval == 0) {
      // Online forecaster fine-tuning: at each boundary, feed back the
      // realized distribution of the interval that just ended (§3.3).
      if (i > 0 && options_.online_forecaster_updates &&
          forecaster.has_value() && !plan_features.empty()) {
        size_t interval_segs = static_cast<size_t>(segs_per_interval);
        if (history.size() >= interval_segs) {
          CategoryHistogramInto(history, history.size() - interval_segs,
                                history.size(), num_categories, &realized);
          forecaster->OnlineUpdate(plan_features, realized);
        }
      }
      SKY_ASSIGN_OR_RETURN(
          plan, MakePlan(first_segment + i, history,
                         forecaster.has_value() ? &*forecaster : nullptr));
      switcher.SetPlan(&plan);
      // Features are only consumed by the fine-tuning step above, at the
      // *next* boundary; skip them (and their scan) when updates are off.
      if (options_.online_forecaster_updates && forecaster.has_value()) {
        forecaster->FeaturesFromHistoryInto(history, model_->segment_seconds,
                                            &plan_features);
      }
      credits_remaining =
          options_.enable_cloud ? options_.cloud_budget_usd_per_interval : 0.0;
      planned_usd_per_interval = std::min(
          options_.enable_cloud ? options_.cloud_budget_usd_per_interval : 0.0,
          cost_model_->CoreSecondsToUsd(
              std::max(0.0, plan.expected_work -
                                static_cast<double>(cluster_.cores)) *
              options_.plan_interval));
      ++interval_index;
    }

    video::SegmentInfo info = source.Segment(first_segment + i);
    double bytes_per_s =
        static_cast<double>(info.bytes) / std::max(1e-9, info.duration_s);

    // One ground-truth computation per segment, shared by the category
    // override, the §5.6 accuracy accounting below, and (when ground-truth
    // forecasting is on) the lookahead that already classified this segment
    // at the last plan boundary. The reference stays valid through this
    // iteration: this segment's ring slot is only overwritten an interval
    // from now.
    const SegmentTruth& truth = CachedTruth(first_segment + i);

    SwitchContext ctx;
    ctx.current_config_idx = current_config;
    ctx.measured_quality =
        options_.eliminate_type_b_errors
            ? workload_->MeasuredQuality(configs[current_config],
                                         info.content, &noise)
            : last_measured;
    ctx.lag_seconds = lag_s;
    ctx.segment_seconds = seg;
    ctx.bytes_per_video_second = bytes_per_s;
    ctx.buffered_bytes = buffered_bytes;
    ctx.buffer_capacity_bytes = buffer.capacity_bytes();
    ctx.cloud_credits_remaining_usd = credits_remaining;
    ctx.allow_cloud = options_.enable_cloud;
    ctx.allow_buffer = options_.enable_buffer;
    if (options_.use_ground_truth_categories) {
      ctx.category_override = static_cast<int64_t>(truth.category);
    }

    SKY_ASSIGN_OR_RETURN(SwitchDecision decision, switcher.Decide(ctx));
    switcher.RecordUsage(decision.category, decision.config_idx);
    if (decision.degraded) ++result.degraded_count;
    if (decision.config_idx != current_config) ++result.switch_count;

    const ConfigProfile& profile = profiles[decision.config_idx];
    const PlacementProfile& placement =
        profile.placements[decision.placement_idx];

    // Advance the backlog: the stream gains one segment while the processor
    // spends placement.runtime_s on this one. Backlog growth buffers bytes
    // at the current stream rate; shrinkage releases bytes at the backlog's
    // historical average rate.
    double new_lag = std::max(0.0, lag_s + placement.runtime_s - seg);
    if (new_lag > lag_s) {
      buffered_bytes += (new_lag - lag_s) * bytes_per_s;
    } else if (lag_s > 0.0) {
      buffered_bytes -= (lag_s - new_lag) * (buffered_bytes / lag_s);
    }
    if (new_lag <= 1e-12) buffered_bytes = 0.0;
    lag_s = new_lag;
    if (buffered_bytes >
        static_cast<double>(buffer.capacity_bytes()) + 1e-6) {
      // Hard fault: only reachable when no configuration fits at all (the
      // switcher's guarantee covers every provisioned case).
      ++result.overflow_events;
      buffered_bytes = static_cast<double>(buffer.capacity_bytes());
    }
    result.buffer_high_water_bytes =
        std::max(result.buffer_high_water_bytes,
                 static_cast<uint64_t>(buffered_bytes));

    result.cloud_usd += placement.cloud_usd;
    credits_remaining -= placement.cloud_usd;
    result.onprem_core_seconds += placement.onprem_core_s;
    result.work_core_seconds += profile.work_core_s_per_video_s * seg;

    // The decision config's true quality is one coordinate of the memoized
    // ground-truth vector — no extra TrueQuality call.
    double true_q = truth.quals[decision.config_idx];
    result.total_quality += true_q;
    if (!options_.eliminate_type_b_errors) {
      // Skipped in type-B-elimination mode, where the switcher measures the
      // current segment itself: both modes then consume exactly one noise
      // draw per segment, so a Fig. 15 comparison is noise-paired and
      // differs only in measurement timing.
      last_measured = workload_->MeasuredQuality(configs[decision.config_idx],
                                                 info.content, &noise);
    }

    // Switcher accuracy accounting (§5.6), on the same memoized truth.
    size_t true_cat = truth.category;
    if (decision.category != true_cat) {
      ++result.misclassified;
      // Type-A: would perfect timing have produced the same error? Classify
      // with the previous configuration's quality on *this* segment.
      size_t timely_cat = categories.ClassifyPartial(
          ctx.current_config_idx, truth.quals[ctx.current_config_idx]);
      if (timely_cat != true_cat) {
        ++result.type_a_errors;
      } else {
        ++result.type_b_errors;
      }
    }
    if (history.size() >= 2 * history_window) {
      std::copy(history.end() - static_cast<ptrdiff_t>(history_window),
                history.end(), history.begin());
      history.resize(history_window);
    }
    history.push_back(decision.category);
    current_config = decision.config_idx;
    ++result.segments;

    if (options_.record_trace && t >= next_trace_t) {
      TracePoint point;
      point.t = t;
      point.quality = true_q;
      point.work_core_s_per_s =
          profile.work_core_s_per_video_s;
      point.buffer_bytes = buffered_bytes;
      point.cloud_usd_cumulative = result.cloud_usd;
      double interval_fraction =
          static_cast<double>(i % segs_per_interval) /
          static_cast<double>(segs_per_interval);
      point.cloud_usd_planned =
          (static_cast<double>(interval_index - 1) + interval_fraction) *
          planned_usd_per_interval;
      point.config_idx = decision.config_idx;
      point.category = decision.category;
      result.trace.push_back(point);
      next_trace_t += options_.trace_resolution_s;
    }
  }

  result.mean_quality =
      result.segments == 0
          ? 0.0
          : result.total_quality / static_cast<double>(result.segments);
  return result;
}

}  // namespace sky::core
