#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "sim/faults.h"
#include "util/stats.h"
#include "video/stream_source.h"

namespace sky::core {

namespace {
/// Bit-pattern equality for doubles: NaNs with equal bits compare equal,
/// +0.0 and -0.0 compare different — exactly the "bitwise" contract the
/// parity gates promise (operator== would get both cases wrong).
bool BitsEqual(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}
}  // namespace

bool EngineResultsIdentical(const EngineResult& a, const EngineResult& b) {
  if (!BitsEqual(a.total_quality, b.total_quality) ||
      !BitsEqual(a.mean_quality, b.mean_quality) ||
      a.segments != b.segments ||
      !BitsEqual(a.work_core_seconds, b.work_core_seconds) ||
      !BitsEqual(a.onprem_core_seconds, b.onprem_core_seconds) ||
      !BitsEqual(a.cloud_usd, b.cloud_usd) ||
      a.buffer_high_water_bytes != b.buffer_high_water_bytes ||
      a.overflow_events != b.overflow_events ||
      a.switch_count != b.switch_count ||
      a.degraded_count != b.degraded_count ||
      a.misclassified != b.misclassified ||
      a.type_a_errors != b.type_a_errors ||
      a.type_b_errors != b.type_b_errors ||
      a.cloud_failures != b.cloud_failures ||
      a.cloud_retries != b.cloud_retries ||
      a.cloud_giveups != b.cloud_giveups ||
      !BitsEqual(a.fault_backoff_s, b.fault_backoff_s) ||
      a.outage_segments != b.outage_segments ||
      a.outage_intervals != b.outage_intervals ||
      a.udf_stall_segments != b.udf_stall_segments ||
      a.trace.size() != b.trace.size()) {
    return false;
  }
  for (size_t i = 0; i < a.trace.size(); ++i) {
    const TracePoint& p = a.trace[i];
    const TracePoint& q = b.trace[i];
    if (!BitsEqual(p.t, q.t) || !BitsEqual(p.quality, q.quality) ||
        !BitsEqual(p.work_core_s_per_s, q.work_core_s_per_s) ||
        !BitsEqual(p.buffer_bytes, q.buffer_bytes) ||
        !BitsEqual(p.cloud_usd_cumulative, q.cloud_usd_cumulative) ||
        !BitsEqual(p.cloud_usd_planned, q.cloud_usd_planned) ||
        p.config_idx != q.config_idx || p.category != q.category) {
      return false;
    }
  }
  return true;
}

IngestionEngine::IngestionEngine(const Workload* workload,
                                 const OfflineModel* model,
                                 const sim::ClusterSpec& cluster,
                                 const sim::CostModel* cost_model,
                                 EngineOptions options)
    : workload_(workload),
      model_(model),
      cluster_(cluster),
      cost_model_(cost_model),
      options_(std::move(options)) {
  // Resolve the optional provisioning fields once: unset means the engine
  // defaults (the api facade fills in its Resources *before* construction,
  // and only for fields the caller left unset).
  if (!options_.buffer_bytes.has_value()) {
    options_.buffer_bytes = kDefaultBufferBytes;
  }
  if (!options_.cloud_budget_usd_per_interval.has_value()) {
    options_.cloud_budget_usd_per_interval = 0.0;
  }
}

const IngestionEngine::SegmentTruth& IngestionEngine::CachedTruth(
    int64_t segment_index) const {
  // Floor-mod: segment indices are non-negative in normal operation, but a
  // negative start_time must not turn into an out-of-bounds slot.
  int64_t n = static_cast<int64_t>(truth_ring_.size());
  SegmentTruth& slot =
      truth_ring_[static_cast<size_t>(((segment_index % n) + n) % n)];
  if (slot.segment_index != segment_index) {
    double seg = model_->segment_seconds;
    double midpoint = (static_cast<double>(segment_index) + 0.5) * seg;
    TrueQualityVectorInto(*workload_, model_->configs,
                          workload_->content_process().At(midpoint),
                          &slot.quals);
    slot.category = model_->categories.ClassifyFull(slot.quals);
    slot.segment_index = segment_index;
  }
  return slot;
}

void IngestionEngine::GroundTruthForecastInto(int64_t first_segment_index,
                                              std::vector<double>* out) const {
  double seg = model_->segment_seconds;
  int64_t count = static_cast<int64_t>(options_.plan_interval / seg);
  out->assign(model_->categories.NumCategories(), 0.0);
  // Walk the same segment midpoints the ingest loop will visit, so the
  // lookahead classifications are reused there instead of recomputed.
  for (int64_t i = 0; i < count; ++i) {
    (*out)[CachedTruth(first_segment_index + i).category] += 1.0;
  }
  *out = NormalizeHistogram(std::move(*out));
}

void IngestionEngine::ResetTruthRing(int64_t segs_per_interval) {
  truth_ring_.resize(static_cast<size_t>(segs_per_interval));
  for (SegmentTruth& slot : truth_ring_) slot.segment_index = -1;
}

const std::vector<double>& IngestionEngine::config_costs() const {
  std::vector<double>& costs = scratch_.costs;
  if (costs.size() != model_->profiles.size()) {
    costs.clear();
    costs.reserve(model_->profiles.size());
    for (const ConfigProfile& p : model_->profiles) {
      costs.push_back(p.work_core_s_per_video_s);
    }
  }
  return costs;
}

bool IngestionEngine::CloudOutageNow() const {
  return options_.fault_injector != nullptr && state_ != nullptr &&
         options_.fault_injector->CloudOutageAt(CurrentTime());
}

double IngestionEngine::PlanBudgetCoreSPerVideoS() const {
  double budget = static_cast<double>(cluster_.cores);
  double cloud_budget = *options_.cloud_budget_usd_per_interval;
  // During a sustained outage the coming interval is planned on-prem-only:
  // the budget sees no cloud term, so the planner picks configurations the
  // local cores can actually sustain. Bursting resumes at the first boundary
  // after the outage window closes.
  if (options_.enable_cloud && cloud_budget > 0 && !CloudOutageNow()) {
    budget +=
        cost_model_->UsdToCoreSeconds(cloud_budget) / options_.plan_interval;
  }
  if (options_.work_budget_override > 0) {
    budget = options_.work_budget_override;
  }
  return budget;
}

void IngestionEngine::ComputeBoundaryForecastInto(std::vector<double>* out) {
  IngestState& s = *state_;
  size_t num_c = model_->categories.NumCategories();
  const Forecaster* forecaster =
      s.forecaster.has_value() ? &*s.forecaster : nullptr;
  if (options_.use_ground_truth_forecast) {
    GroundTruthForecastInto(s.first_segment + s.next_index, out);
  } else if (forecaster != nullptr && !s.history.empty()) {
    // The forecaster forward pass runs against its own reusable inference
    // scratch; the feature buffer lives in scratch_ — nothing here
    // allocates at steady state.
    forecaster->FeaturesFromHistoryInto(s.history, model_->segment_seconds,
                                        &scratch_.features);
    forecaster->ForecastInto(scratch_.features, options_.forecast_precision,
                             out);
  } else if (!s.history.empty()) {
    CategoryHistogramInto(s.history, 0, s.history.size(), num_c, out);
  } else {
    out->assign(num_c, 1.0 / static_cast<double>(num_c));
  }
}

KnobPlan IngestionEngine::FallbackPlan(
    const std::vector<double>& forecast) const {
  // Budget below even the cheapest configuration: degrade to an
  // all-cheapest plan; the switcher's buffer guard does the rest.
  const std::vector<double>& costs = config_costs();
  size_t num_c = model_->categories.NumCategories();
  size_t cheapest = 0;
  for (size_t k = 1; k < costs.size(); ++k) {
    if (costs[k] < costs[cheapest]) cheapest = k;
  }
  KnobPlan fallback;
  fallback.alpha = ml::Matrix(num_c, costs.size(), 0.0);
  for (size_t c = 0; c < num_c; ++c) fallback.alpha.At(c, cheapest) = 1.0;
  fallback.forecast = forecast;
  fallback.expected_work = costs[cheapest];
  for (size_t c = 0; c < num_c; ++c) {
    fallback.expected_quality +=
        forecast[c] * model_->categories.CenterQuality(c, cheapest);
  }
  return fallback;
}

Result<KnobPlan> IngestionEngine::PlanFromPreparedForecast() {
  IngestState& s = *state_;
  Result<KnobPlan> plan = ComputeKnobPlan(
      model_->categories, s.boundary_forecast, config_costs(),
      PlanBudgetCoreSPerVideoS(), options_.planner_backend,
      &scratch_.workspace);
  if (plan.ok()) return plan;
  if (plan.status().code() != StatusCode::kResourceExhausted) {
    return plan.status();
  }
  return FallbackPlan(s.boundary_forecast);
}

bool IngestionEngine::AtPlanBoundary() const {
  return state_ != nullptr && state_->next_index < state_->n_segments &&
         state_->next_index % state_->segs_per_interval == 0 &&
         !state_->boundary_installed;
}

Status IngestionEngine::PrepareBoundary() {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Start() the engine before stepping");
  }
  IngestState& s = *state_;
  if (s.next_index >= s.n_segments) {
    return Status::FailedPrecondition("ingest run is complete");
  }
  if (s.next_index % s.segs_per_interval != 0 || s.boundary_installed) {
    return Status::FailedPrecondition("engine is not at a plan boundary");
  }
  if (s.boundary_prepared) return Status::Ok();
  // Online forecaster fine-tuning: at each boundary, feed back the realized
  // distribution of the interval that just ended (§3.3).
  if (s.next_index > 0 && options_.online_forecaster_updates &&
      s.forecaster.has_value() && !s.plan_features.empty()) {
    size_t interval_segs = static_cast<size_t>(s.segs_per_interval);
    if (s.history.size() >= interval_segs) {
      CategoryHistogramInto(s.history, s.history.size() - interval_segs,
                            s.history.size(),
                            model_->categories.NumCategories(), &s.realized);
      s.forecaster->OnlineUpdate(s.plan_features, s.realized);
    }
  }
  ComputeBoundaryForecastInto(&s.boundary_forecast);
  s.boundary_prepared = true;
  return Status::Ok();
}

Status IngestionEngine::InstallPlan(KnobPlan plan,
                                    std::optional<double> cloud_credits_usd) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Start() the engine before stepping");
  }
  IngestState& s = *state_;
  if (s.next_index >= s.n_segments) {
    return Status::FailedPrecondition("ingest run is complete");
  }
  if (s.next_index % s.segs_per_interval != 0 || s.boundary_installed) {
    return Status::FailedPrecondition("engine is not at a plan boundary");
  }
  s.plan = std::move(plan);
  s.switcher.SetPlan(&s.plan);
  // Features are only consumed by the fine-tuning step of PrepareBoundary,
  // at the *next* boundary; skip them (and their scan) when updates are off.
  if (options_.online_forecaster_updates && s.forecaster.has_value()) {
    s.forecaster->FeaturesFromHistoryInto(s.history, model_->segment_seconds,
                                          &s.plan_features);
  }
  double cloud_budget =
      options_.enable_cloud
          ? cloud_credits_usd.value_or(*options_.cloud_budget_usd_per_interval)
          : 0.0;
  if (cloud_budget > 0.0 && CloudOutageNow()) {
    // Graceful degradation: no credits are granted for an interval that
    // begins inside an outage window — the whole interval runs on-prem.
    cloud_budget = 0.0;
    ++s.result.outage_intervals;
  }
  s.credits_remaining = cloud_budget;
  s.planned_usd_per_interval = std::min(
      cloud_budget,
      cost_model_->CoreSecondsToUsd(
          std::max(0.0,
                   s.plan.expected_work - static_cast<double>(cluster_.cores)) *
          options_.plan_interval));
  ++s.interval_index;
  s.boundary_prepared = false;
  s.boundary_installed = true;
  return Status::Ok();
}

Status IngestionEngine::Start(SimTime start_time) {
  if (model_->profiles.empty()) {
    return Status::FailedPrecondition("offline model has no profiles");
  }
  double seg = model_->segment_seconds;
  int64_t segs_per_interval =
      std::max<int64_t>(1, static_cast<int64_t>(options_.plan_interval / seg));

  state_ = std::make_unique<IngestState>(
      &model_->categories, &model_->profiles,
      options_.enable_buffer ? *options_.buffer_bytes : 0);
  IngestState& s = *state_;
  s.start_time = start_time;
  s.n_segments = static_cast<int64_t>(options_.duration / seg);
  s.segs_per_interval = segs_per_interval;
  s.first_segment = static_cast<int64_t>(start_time / seg);

  // Truth memo ring: one slot per segment of a plan interval. The lookahead
  // fills at most one interval ahead and the ingest loop consumes within the
  // same interval, so slots are never evicted while live (tags catch any
  // reuse across intervals). Tags reset in case the engine ran before.
  ResetTruthRing(segs_per_interval);

  Rng rng(options_.seed);
  s.noise = rng.Fork("measurement");

  // The engine fine-tunes its own copy of the forecaster online (§3.3); the
  // offline model stays untouched so runs are independent.
  s.forecaster = model_->forecaster;

  // Rolling category history, bounded to the feature window instead of
  // growing O(duration): the forecaster features read the last `input_span`
  // and the realized-interval update the last interval, so both see exactly
  // what they did unbounded. The forecaster-less fallback forecast (a plain
  // histogram of the history) deliberately becomes a recency window rather
  // than the whole-run distribution. Capacity 2x the window amortizes
  // compaction to O(1) per segment with no further allocation; bootstrapped
  // with the tail of the offline training sequence.
  size_t history_window = static_cast<size_t>(segs_per_interval);
  if (s.forecaster.has_value()) {
    const ForecasterOptions& fopts = s.forecaster->options();
    history_window = std::max(
        history_window,
        std::max<size_t>(fopts.input_splits,
                         static_cast<size_t>(fopts.input_span / seg)));
  }
  s.history_window = history_window;
  const std::vector<size_t>& train_seq = model_->train_category_sequence;
  size_t bootstrap = std::min(history_window, train_seq.size());
  s.history.reserve(2 * history_window);
  s.history.assign(train_seq.end() - static_cast<ptrdiff_t>(bootstrap),
                   train_seq.end());

  // Start on the cheapest profiled configuration.
  const std::vector<ConfigProfile>& profiles = model_->profiles;
  s.current_config = 0;
  for (size_t k = 1; k < profiles.size(); ++k) {
    if (profiles[k].work_core_s_per_video_s <
        profiles[s.current_config].work_core_s_per_video_s) {
      s.current_config = k;
    }
  }
  s.last_measured = workload_->MeasuredQuality(
      model_->configs[s.current_config],
      workload_->content_process().At(start_time), &s.noise);

  s.next_trace_t = start_time;
  return Status::Ok();
}

SimTime IngestionEngine::CurrentTime() const {
  if (state_ == nullptr) return 0.0;
  return state_->start_time +
         static_cast<double>(state_->next_index) * model_->segment_seconds;
}

Status IngestionEngine::Step() {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Start() the engine before Step()");
  }
  IngestState& s = *state_;
  if (s.next_index >= s.n_segments) {
    return Status::FailedPrecondition("ingest run is complete");
  }

  // Injected UDF failure, raised BEFORE any state mutates: a supervisor
  // that catches this can Restore() the last boundary checkpoint and replay
  // the interval bitwise (the one-shot event stays consumed, so the replay
  // gets past it). Raised as an exception — not a Status — because a real
  // workload UDF fails by throwing.
  sim::FaultInjector* const faults = options_.fault_injector;
  if (faults != nullptr) {
    SimTime now = s.start_time +
                  static_cast<double>(s.next_index) * model_->segment_seconds;
    if (faults->ConsumeUdfThrowAt(now)) {
      throw std::runtime_error("injected UDF failure at t=" +
                               std::to_string(now));
    }
  }

  // Plan boundary: self-plan unless StreamSet (or a caller) already
  // installed a jointly computed plan for this boundary.
  if (s.next_index % s.segs_per_interval == 0 && !s.boundary_installed) {
    SKY_RETURN_NOT_OK(PrepareBoundary());
    SKY_ASSIGN_OR_RETURN(KnobPlan plan, PlanFromPreparedForecast());
    SKY_RETURN_NOT_OK(InstallPlan(std::move(plan)));
  }
  // The boundary is consumed by this (first-of-interval) segment.
  s.boundary_installed = false;

  // Loop-invariant model lookups.
  const std::vector<KnobConfig>& configs = model_->configs;
  const std::vector<ConfigProfile>& profiles = model_->profiles;
  const ContentCategories& categories = model_->categories;
  double seg = model_->segment_seconds;

  int64_t i = s.next_index;
  SimTime t = s.start_time + static_cast<double>(i) * seg;

  video::StreamSource source(&workload_->content_process(), seg);
  video::SegmentInfo info = source.Segment(s.first_segment + i);
  double bytes_per_s =
      static_cast<double>(info.bytes) / std::max(1e-9, info.duration_s);

  // One ground-truth computation per segment, shared by the category
  // override, the §5.6 accuracy accounting below, and (when ground-truth
  // forecasting is on) the lookahead that already classified this segment
  // at the last plan boundary. The reference stays valid through this
  // step: this segment's ring slot is only overwritten an interval from
  // now.
  const SegmentTruth& truth = CachedTruth(s.first_segment + i);

  SwitchContext ctx;
  ctx.current_config_idx = s.current_config;
  ctx.measured_quality =
      options_.eliminate_type_b_errors
          ? workload_->MeasuredQuality(configs[s.current_config], info.content,
                                       &s.noise)
          : s.last_measured;
  ctx.lag_seconds = s.lag_s;
  ctx.segment_seconds = seg;
  ctx.bytes_per_video_second = bytes_per_s;
  ctx.buffered_bytes = s.buffered_bytes;
  ctx.buffer_capacity_bytes = s.buffer.capacity_bytes();
  ctx.cloud_credits_remaining_usd = s.credits_remaining;
  ctx.allow_cloud = options_.enable_cloud;
  ctx.allow_buffer = options_.enable_buffer;
  // Fault reality at this instant. Every guard below compares against the
  // exact neutral value (1.0 multiplier, 0 failures), so a null injector and
  // an injector with no active window run bitwise-identical arithmetic.
  bool outage = false;
  double cloud_lat_mult = 1.0;
  double stall_mult = 1.0;
  if (faults != nullptr) {
    outage = faults->CloudOutageAt(t);
    cloud_lat_mult = faults->CloudLatencyMultiplierAt(t);
    stall_mult = faults->UdfStallMultiplierAt(t);
    if (outage && options_.enable_cloud) {
      // Reactive degradation inside the interval: the cloud is unreachable,
      // so this segment decides as if bursting were disabled.
      ctx.allow_cloud = false;
      ++s.result.outage_segments;
    }
    if (cloud_lat_mult != 1.0) ctx.cloud_runtime_multiplier = cloud_lat_mult;
    if (stall_mult != 1.0) ++s.result.udf_stall_segments;
  }
  if (options_.use_ground_truth_categories) {
    ctx.category_override = static_cast<int64_t>(truth.category);
  }

  SKY_ASSIGN_OR_RETURN(SwitchDecision decision, s.switcher.Decide(ctx));

  // Transient cloud-upload failures: retry under the capped-exponential
  // policy (the backoff time lands on this segment's runtime, growing lag
  // like any other slowdown); a segment whose retry budget runs out is
  // degraded to an on-premise decision instead — never an error.
  double fault_runtime_extra_s = 0.0;
  if (faults != nullptr &&
      profiles[decision.config_idx]
              .placements[decision.placement_idx]
              .placement.NumCloudNodes() > 0) {
    size_t fails = faults->CloudUploadFailuresAt(t);
    if (fails > 0) {
      const sim::RetryPolicy& retry = faults->retry_policy();
      size_t attempts = std::min(fails, retry.max_attempts);
      double backoff = faults->BackoffDelaySeconds(attempts);
      s.result.cloud_failures += fails;
      s.result.fault_backoff_s += backoff;
      fault_runtime_extra_s += backoff;
      if (fails > retry.max_attempts) {
        ++s.result.cloud_giveups;
        ctx.allow_cloud = false;
        // Decide() is a pure function of the context (no draws), so the
        // re-decision costs nothing in determinism.
        SKY_ASSIGN_OR_RETURN(decision, s.switcher.Decide(ctx));
      } else {
        s.result.cloud_retries += attempts;
      }
    }
  }

  s.switcher.RecordUsage(decision.category, decision.config_idx);
  if (decision.degraded) ++s.result.degraded_count;
  if (decision.config_idx != s.current_config) ++s.result.switch_count;

  const ConfigProfile& profile = profiles[decision.config_idx];
  const PlacementProfile& placement =
      profile.placements[decision.placement_idx];

  // Runtime as executed: cloud latency slows cloud placements, a stalling
  // UDF slows everything, retry backoff is additive. Each term applies only
  // when active so the fault-free value stays the profiled runtime bitwise.
  double runtime_s = placement.runtime_s;
  if (cloud_lat_mult != 1.0 && placement.placement.NumCloudNodes() > 0) {
    runtime_s *= cloud_lat_mult;
  }
  if (stall_mult != 1.0) runtime_s *= stall_mult;
  if (fault_runtime_extra_s > 0.0) runtime_s += fault_runtime_extra_s;

  // Advance the backlog: the stream gains one segment while the processor
  // spends runtime_s on this one. Backlog growth buffers bytes at the
  // current stream rate; shrinkage releases bytes at the backlog's
  // historical average rate.
  double new_lag = std::max(0.0, s.lag_s + runtime_s - seg);
  if (new_lag > s.lag_s) {
    s.buffered_bytes += (new_lag - s.lag_s) * bytes_per_s;
  } else if (s.lag_s > 0.0) {
    s.buffered_bytes -= (s.lag_s - new_lag) * (s.buffered_bytes / s.lag_s);
  }
  if (new_lag <= 1e-12) s.buffered_bytes = 0.0;
  s.lag_s = new_lag;
  if (s.buffered_bytes >
      static_cast<double>(s.buffer.capacity_bytes()) + 1e-6) {
    // Hard fault: only reachable when no configuration fits at all (the
    // switcher's guarantee covers every provisioned case).
    ++s.result.overflow_events;
    s.buffered_bytes = static_cast<double>(s.buffer.capacity_bytes());
  }
  s.result.buffer_high_water_bytes =
      std::max(s.result.buffer_high_water_bytes,
               static_cast<uint64_t>(s.buffered_bytes));

  s.result.cloud_usd += placement.cloud_usd;
  s.credits_remaining -= placement.cloud_usd;
  s.result.onprem_core_seconds += placement.onprem_core_s;
  s.result.work_core_seconds += profile.work_core_s_per_video_s * seg;

  // The decision config's true quality is one coordinate of the memoized
  // ground-truth vector — no extra TrueQuality call.
  double true_q = truth.quals[decision.config_idx];
  s.result.total_quality += true_q;
  if (!options_.eliminate_type_b_errors) {
    // Skipped in type-B-elimination mode, where the switcher measures the
    // current segment itself: both modes then consume exactly one noise
    // draw per segment, so a Fig. 15 comparison is noise-paired and
    // differs only in measurement timing.
    s.last_measured = workload_->MeasuredQuality(configs[decision.config_idx],
                                                 info.content, &s.noise);
  }

  // Switcher accuracy accounting (§5.6), on the same memoized truth.
  size_t true_cat = truth.category;
  if (decision.category != true_cat) {
    ++s.result.misclassified;
    // Type-A: would perfect timing have produced the same error? Classify
    // with the previous configuration's quality on *this* segment.
    size_t timely_cat = categories.ClassifyPartial(
        ctx.current_config_idx, truth.quals[ctx.current_config_idx]);
    if (timely_cat != true_cat) {
      ++s.result.type_a_errors;
    } else {
      ++s.result.type_b_errors;
    }
  }
  if (s.history.size() >= 2 * s.history_window) {
    std::copy(s.history.end() - static_cast<ptrdiff_t>(s.history_window),
              s.history.end(), s.history.begin());
    s.history.resize(s.history_window);
  }
  s.history.push_back(decision.category);
  s.current_config = decision.config_idx;
  ++s.result.segments;

  if (options_.record_trace && t >= s.next_trace_t) {
    TracePoint point;
    point.t = t;
    point.quality = true_q;
    point.work_core_s_per_s = profile.work_core_s_per_video_s;
    point.buffer_bytes = s.buffered_bytes;
    point.cloud_usd_cumulative = s.result.cloud_usd;
    double interval_fraction =
        static_cast<double>(i % s.segs_per_interval) /
        static_cast<double>(s.segs_per_interval);
    point.cloud_usd_planned =
        (static_cast<double>(s.interval_index - 1) + interval_fraction) *
        s.planned_usd_per_interval;
    point.config_idx = decision.config_idx;
    point.category = decision.category;
    s.result.trace.push_back(point);
    s.next_trace_t += options_.trace_resolution_s;
  }

  ++s.next_index;
  // Keep the partial result coherent at every step; at the last step this
  // is exactly the one final division the batch loop used to do.
  s.result.mean_quality =
      s.result.segments == 0
          ? 0.0
          : s.result.total_quality / static_cast<double>(s.result.segments);
  return Status::Ok();
}

Status IngestionEngine::RunUntil(SimTime t) {
  if (state_ == nullptr) {
    return Status::FailedPrecondition("Start() the engine before RunUntil()");
  }
  while (!Done() && CurrentTime() < t) {
    SKY_RETURN_NOT_OK(Step());
  }
  return Status::Ok();
}

Status IngestionEngine::RunInterval() {
  if (state_ == nullptr) {
    return Status::FailedPrecondition(
        "Start() the engine before RunInterval()");
  }
  do {
    SKY_RETURN_NOT_OK(Step());
  } while (!Done() && !AtPlanBoundary());
  return Status::Ok();
}

Result<EngineResult> IngestionEngine::Run(SimTime start_time) {
  SKY_RETURN_NOT_OK(Start(start_time));
  while (!Done()) {
    SKY_RETURN_NOT_OK(Step());
  }
  // Copy (not move) the result out: the completed session stays inspectable
  // through partial_result()/Done()/current_plan() until the next Start.
  return state_->result;
}

Result<IngestState> IngestionEngine::Checkpoint() const {
  if (state_ == nullptr) {
    return Status::FailedPrecondition(
        "no session to checkpoint: call Start() first");
  }
  return IngestState(*state_);
}

Status IngestionEngine::Restore(const IngestState& snapshot) {
  if (model_->profiles.empty()) {
    return Status::FailedPrecondition("offline model has no profiles");
  }
  if (snapshot.segs_per_interval <= 0) {
    return Status::InvalidArgument(
        "checkpoint does not hold a started session");
  }
  state_ = std::make_unique<IngestState>(snapshot);
  // The truth ring is a memo of a deterministic per-segment function; it is
  // not part of the checkpoint and simply refills after a restore.
  ResetTruthRing(state_->segs_per_interval);
  return Status::Ok();
}

}  // namespace sky::core
