#include "core/workload.h"

#include <algorithm>
#include <limits>

namespace sky::core {

double Workload::MeasuredQuality(const KnobConfig& config,
                                 const video::ContentState& content,
                                 Rng* rng) const {
  double q = TrueQuality(config, content);
  q += rng->Normal(0.0, measurement_noise_stddev());
  return std::clamp(q, 0.0, 1.0);
}

KnobConfig CheapestConfig(const Workload& workload) {
  const KnobSpace& space = workload.knob_space();
  KnobConfig best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const KnobConfig& c : space.AllConfigs()) {
    double cost = workload.CostCoreSecondsPerVideoSecond(c);
    if (cost < best_cost) {
      best_cost = cost;
      best = c;
    }
  }
  return best;
}

KnobConfig MostQualitativeConfig(const Workload& workload, size_t probe_times) {
  const KnobSpace& space = workload.knob_space();
  const video::ContentProcess& content = workload.content_process();
  double horizon = content.horizon();
  KnobConfig best;
  double best_quality = -1.0;
  for (const KnobConfig& c : space.AllConfigs()) {
    double total = 0.0;
    for (size_t i = 0; i < probe_times; ++i) {
      double t = horizon * (static_cast<double>(i) + 0.5) /
                 static_cast<double>(probe_times);
      total += workload.TrueQuality(c, content.At(t));
    }
    if (total > best_quality) {
      best_quality = total;
      best = c;
    }
  }
  return best;
}

}  // namespace sky::core
