#include "core/multi_stream.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace sky::core {

int FairCoreShare(int cores, size_t num_streams) {
  if (num_streams == 0) return cores;
  return std::max(1, cores / static_cast<int>(num_streams));
}

Result<StreamSet> StreamSet::Create(std::vector<StreamEngineJob> jobs,
                                    StreamSetOptions options) {
  StreamSet set(options);
  set.jobs_ = std::move(jobs);
  set.engines_.resize(set.jobs_.size());
  set.statuses_.assign(set.jobs_.size(), Status::Ok());

  for (size_t v = 0; v < set.jobs_.size(); ++v) {
    const StreamEngineJob& job = set.jobs_[v];
    if (job.workload == nullptr || job.model == nullptr ||
        job.cost_model == nullptr) {
      set.statuses_[v] = Status::InvalidArgument("null pointer in stream job");
      continue;
    }
    set.engines_[v] = std::make_unique<IngestionEngine>(
        job.workload, job.model, job.cluster, job.cost_model, job.options);
    Status started = set.engines_[v]->Start(job.start_time);
    if (!started.ok()) {
      set.statuses_[v] = started;
    }
  }

  if (options.planning == MultiStreamPlanning::kJoint) {
    // Joint planning intercepts plan boundaries across streams; they only
    // line up when every stream shares the boundary cadence.
    double seg_s = -1.0;
    int64_t segs_per_interval = -1;
    for (size_t v = 0; v < set.jobs_.size(); ++v) {
      if (!set.Active(v)) continue;
      double seg = set.jobs_[v].model->segment_seconds;
      int64_t segs = set.engines_[v]->segments_per_interval();
      if (seg_s < 0.0) {
        seg_s = seg;
        segs_per_interval = segs;
      } else if (seg != seg_s || segs != segs_per_interval) {
        return Status::InvalidArgument(
            "joint planning requires every stream to share one segment "
            "length and plan interval (lockstep boundaries)");
      }
    }
  }
  return set;
}

bool StreamSet::Done() const {
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (Active(v)) return false;
  }
  return true;
}

Status StreamSet::JointPlanBoundaryIfDue() {
  // Live streams hit boundaries in lockstep (validated at Create): either
  // all of them are due or none is.
  bool any_due = false;
  bool any_not_due = false;
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (!Active(v)) continue;
    (engines_[v]->AtPlanBoundary() ? any_due : any_not_due) = true;
  }
  if (!any_due) return Status::Ok();
  if (any_not_due) {
    return Status::Internal("streams fell out of lockstep plan boundaries");
  }

  inputs_.clear();
  planned_.clear();
  double derived_budget = 0.0;
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (!Active(v)) continue;
    // Per-stream boundary maintenance (online forecaster fine-tune +
    // forecast) runs exactly as a self-planning engine would.
    Status prepared = engines_[v]->PrepareBoundary();
    if (!prepared.ok()) {
      statuses_[v] = prepared;
      continue;
    }
    StreamPlanInput in;
    in.categories = &jobs_[v].model->categories;
    in.forecast = engines_[v]->boundary_forecast();
    in.config_costs = engines_[v]->config_costs();
    inputs_.push_back(std::move(in));
    planned_.push_back(v);
    derived_budget += engines_[v]->PlanBudgetCoreSPerVideoS();
  }
  if (planned_.empty()) return Status::Ok();

  double budget = options_.shared_budget_core_s_per_video_s > 0.0
                      ? options_.shared_budget_core_s_per_video_s
                      : derived_budget;
  Result<std::vector<KnobPlan>> plans = ComputeJointKnobPlan(
      inputs_, budget, options_.planner_backend, &joint_ws_);

  if (!plans.ok() &&
      plans.status().code() == StatusCode::kResourceExhausted) {
    // Budget fits no configuration anywhere: degrade every stream to its
    // own all-cheapest plan, mirroring the single-stream fallback.
    for (size_t idx = 0; idx < planned_.size(); ++idx) {
      size_t v = planned_[idx];
      Status installed = engines_[v]->InstallPlan(
          engines_[v]->FallbackPlan(engines_[v]->boundary_forecast()));
      if (!installed.ok()) statuses_[v] = installed;
    }
    return Status::Ok();
  }
  if (!plans.ok()) {
    for (size_t v : planned_) statuses_[v] = plans.status();
    return Status::Ok();
  }

  // The joint program allocated the POOLED budget; the per-stream credit
  // guards must follow it, or the plan's cloud bursts could never execute
  // beyond each stream's own even share. Re-divide the pooled credits by
  // each plan's implied cloud need (expected work above the local cores),
  // spreading any slack evenly so reactive bursting stays possible; scale
  // down proportionally when the needs exceed the pool. Total spendable
  // credits per interval remain exactly the sum of the streams' own
  // budgets — joint mode moves money, it never prints it.
  std::vector<double> needs(planned_.size(), 0.0);
  double pooled_credits = 0.0;
  double total_need = 0.0;
  for (size_t idx = 0; idx < planned_.size(); ++idx) {
    size_t v = planned_[idx];
    const EngineOptions& opts = engines_[v]->options();
    if (opts.enable_cloud) {
      pooled_credits += *opts.cloud_budget_usd_per_interval;
    }
    double burst_core_s =
        std::max(0.0, (*plans)[idx].expected_work -
                          static_cast<double>(jobs_[v].cluster.cores)) *
        opts.plan_interval;
    needs[idx] = jobs_[v].cost_model->CoreSecondsToUsd(burst_core_s);
    total_need += needs[idx];
  }
  for (size_t idx = 0; idx < planned_.size(); ++idx) {
    size_t v = planned_[idx];
    double allotted;
    if (total_need <= pooled_credits) {
      allotted = needs[idx] + (pooled_credits - total_need) /
                                  static_cast<double>(planned_.size());
    } else {
      allotted = pooled_credits * needs[idx] / total_need;
    }
    Status installed =
        engines_[v]->InstallPlan(std::move((*plans)[idx]), allotted);
    if (!installed.ok()) statuses_[v] = installed;
  }
  return Status::Ok();
}

Status StreamSet::Step() {
  if (options_.planning == MultiStreamPlanning::kJoint) {
    SKY_RETURN_NOT_OK(JointPlanBoundaryIfDue());
  }
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (!Active(v)) continue;
    Status stepped = engines_[v]->Step();
    if (!stepped.ok()) statuses_[v] = stepped;
  }
  return Status::Ok();
}

Status StreamSet::RunUntilElapsed(SimTime elapsed) {
  if (options_.planning == MultiStreamPlanning::kJoint) {
    // Lockstep cadence (validated at Create): every stream is equally far
    // along, so stepping the whole set while anyone is behind never
    // overshoots.
    auto behind = [&]() {
      for (size_t v = 0; v < engines_.size(); ++v) {
        if (Active(v) &&
            engines_[v]->CurrentTime() - jobs_[v].start_time < elapsed) {
          return true;
        }
      }
      return false;
    };
    while (!Done() && behind()) {
      SKY_RETURN_NOT_OK(Step());
    }
    return Status::Ok();
  }
  // Independent mode allows heterogeneous segment lengths: advance each
  // stream on its own until IT reaches the target, so fast-segment streams
  // are not dragged past the pause point by slow-segment ones.
  for (size_t v = 0; v < engines_.size(); ++v) {
    while (Active(v) &&
           engines_[v]->CurrentTime() - jobs_[v].start_time < elapsed) {
      Status stepped = engines_[v]->Step();
      if (!stepped.ok()) {
        statuses_[v] = stepped;
        break;
      }
    }
  }
  return Status::Ok();
}

namespace {
/// Advances one engine through the remainder of its current plan interval
/// (or to completion): the boundary it sits on must already be planned.
Status StepInterval(IngestionEngine* engine) {
  do {
    SKY_RETURN_NOT_OK(engine->Step());
  } while (!engine->Done() && !engine->AtPlanBoundary());
  return Status::Ok();
}
}  // namespace

Status StreamSet::RunToCompletion(dag::ThreadPool* pool) {
  if (options_.planning == MultiStreamPlanning::kIndependent) {
    // Streams are fully independent simulations: one stream per pool slot,
    // each stepped straight through — the exact RunStreamEngines fan-out,
    // identical results for any thread count.
    dag::ParallelFor(pool, engines_.size(), [&](size_t v) {
      if (!Active(v)) return;
      while (!engines_[v]->Done()) {
        Status stepped = engines_[v]->Step();
        if (!stepped.ok()) {
          statuses_[v] = stepped;
          return;
        }
      }
    });
    return Status::Ok();
  }
  // Joint mode: the joint solve at each lockstep boundary is serial (it
  // couples the streams); between boundaries the streams are independent
  // again, so each interval fans out one stream per pool slot. The step
  // sequence per stream is identical to Step()-ing the set segment by
  // segment — and to a single-stream engine everywhere but the plan.
  while (!Done()) {
    SKY_RETURN_NOT_OK(JointPlanBoundaryIfDue());
    dag::ParallelFor(pool, engines_.size(), [&](size_t v) {
      if (!Active(v)) return;
      Status ran = StepInterval(engines_[v].get());
      if (!ran.ok()) statuses_[v] = ran;
    });
  }
  return Status::Ok();
}

std::vector<Result<EngineResult>> StreamSet::Results() const {
  std::vector<Result<EngineResult>> out;
  out.reserve(engines_.size());
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (!statuses_[v].ok()) {
      out.push_back(statuses_[v]);
    } else if (engines_[v] == nullptr || !engines_[v]->Done()) {
      out.push_back(Status::FailedPrecondition("stream not finished"));
    } else {
      out.push_back(engines_[v]->partial_result());
    }
  }
  return out;
}

std::vector<Result<EngineResult>> RunStreamEngines(
    const std::vector<StreamEngineJob>& jobs, dag::ThreadPool* pool) {
  StreamSetOptions options;
  options.planning = MultiStreamPlanning::kIndependent;
  Result<StreamSet> set = StreamSet::Create(jobs, options);
  if (!set.ok()) {
    return std::vector<Result<EngineResult>>(
        jobs.size(), Result<EngineResult>(set.status()));
  }
  Status ran = set->RunToCompletion(pool);
  if (!ran.ok()) {
    return std::vector<Result<EngineResult>>(jobs.size(),
                                             Result<EngineResult>(ran));
  }
  return set->Results();
}

Result<std::vector<KnobPlan>> ComputeJointKnobPlan(
    const std::vector<StreamPlanInput>& streams,
    double budget_core_s_per_video_s, PlannerBackend backend,
    PlanWorkspace* workspace) {
  if (streams.empty()) {
    return Status::InvalidArgument("no streams to plan for");
  }
  if (!(budget_core_s_per_video_s > 0) ||
      !std::isfinite(budget_core_s_per_video_s)) {
    return Status::InvalidArgument("budget must be positive and finite");
  }

  // One workspace group per (stream, category); stream v's groups start at
  // first_groups[v]. The coefficient assembly (Eqs. 7-9) is the same
  // AppendPlanCoefficients the single-stream planner uses, once per stream.
  PlanWorkspace local;
  PlanWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.Clear();
  std::vector<size_t> first_groups;
  first_groups.reserve(streams.size());
  for (const StreamPlanInput& s : streams) {
    if (s.categories == nullptr) {
      return Status::InvalidArgument("null categories in stream input");
    }
    auto first = AppendPlanCoefficients(*s.categories, s.forecast,
                                        s.config_costs, &ws);
    if (!first.ok()) {
      return Status::InvalidArgument("stream input shape mismatch");
    }
    first_groups.push_back(*first);
  }

  Status solved = SolvePlanProblem(budget_core_s_per_video_s, backend, &ws);
  if (!solved.ok()) {
    if (solved.code() == StatusCode::kResourceExhausted) {
      return Status::ResourceExhausted(
          "joint knob plan infeasible under the shared budget");
    }
    return solved;
  }

  std::vector<KnobPlan> plans;
  plans.reserve(streams.size());
  for (size_t v = 0; v < streams.size(); ++v) {
    const StreamPlanInput& s = streams[v];
    plans.push_back(ExtractPlan(ws, first_groups[v], *s.categories,
                                s.forecast, s.config_costs));
  }
  return plans;
}

}  // namespace sky::core
