#include "core/multi_stream.h"

#include <algorithm>

#include "lp/simplex.h"

namespace sky::core {

int FairCoreShare(int cores, size_t num_streams) {
  if (num_streams == 0) return cores;
  return std::max(1, cores / static_cast<int>(num_streams));
}

std::vector<Result<EngineResult>> RunStreamEngines(
    const std::vector<StreamEngineJob>& jobs, dag::ThreadPool* pool) {
  std::vector<Result<EngineResult>> results(
      jobs.size(), Result<EngineResult>(Status::Internal("stream not run")));
  dag::ParallelFor(pool, jobs.size(), [&](size_t i) {
    const StreamEngineJob& job = jobs[i];
    if (job.workload == nullptr || job.model == nullptr ||
        job.cost_model == nullptr) {
      results[i] = Status::InvalidArgument("null pointer in stream job");
      return;
    }
    IngestionEngine engine(job.workload, job.model, job.cluster,
                           job.cost_model, job.options);
    results[i] = engine.Run(job.start_time);
  });
  return results;
}

Result<std::vector<KnobPlan>> ComputeJointKnobPlan(
    const std::vector<StreamPlanInput>& streams,
    double budget_core_s_per_video_s) {
  if (streams.empty()) {
    return Status::InvalidArgument("no streams to plan for");
  }
  if (budget_core_s_per_video_s <= 0) {
    return Status::InvalidArgument("budget must be positive");
  }

  // Variable layout: for stream v with C_v categories and K_v configs, a
  // contiguous block of C_v * K_v alphas.
  std::vector<size_t> block_offsets;
  size_t n = 0;
  for (const StreamPlanInput& s : streams) {
    if (s.categories == nullptr) {
      return Status::InvalidArgument("null categories in stream input");
    }
    size_t num_c = s.categories->NumCategories();
    size_t num_k = s.categories->NumConfigs();
    if (s.forecast.size() != num_c || s.config_costs.size() != num_k) {
      return Status::InvalidArgument("stream input shape mismatch");
    }
    block_offsets.push_back(n);
    n += num_c * num_k;
  }

  lp::LinearProgram program;
  program.objective.assign(n, 0.0);
  std::vector<double> budget_row(n, 0.0);
  for (size_t v = 0; v < streams.size(); ++v) {
    const StreamPlanInput& s = streams[v];
    size_t num_c = s.categories->NumCategories();
    size_t num_k = s.categories->NumConfigs();
    for (size_t c = 0; c < num_c; ++c) {
      std::vector<double> norm_row(n, 0.0);
      for (size_t k = 0; k < num_k; ++k) {
        size_t idx = block_offsets[v] + c * num_k + k;
        program.objective[idx] =
            s.forecast[c] * s.categories->CenterQuality(c, k);  // Eq. 7
        budget_row[idx] = s.forecast[c] * s.config_costs[k];    // Eq. 8
        norm_row[idx] = 1.0;                                    // Eq. 9
      }
      program.a_eq.push_back(std::move(norm_row));
      program.b_eq.push_back(1.0);
    }
  }
  program.a_ub.push_back(std::move(budget_row));
  program.b_ub.push_back(budget_core_s_per_video_s);

  SKY_ASSIGN_OR_RETURN(lp::LpSolution solution, lp::SolveLp(program));
  if (solution.status == lp::LpStatus::kInfeasible) {
    return Status::ResourceExhausted(
        "joint knob plan infeasible under the shared budget");
  }
  if (solution.status == lp::LpStatus::kUnbounded) {
    return Status::Internal("joint knob-planning LP unbounded");
  }

  std::vector<KnobPlan> plans;
  plans.reserve(streams.size());
  for (size_t v = 0; v < streams.size(); ++v) {
    const StreamPlanInput& s = streams[v];
    size_t num_c = s.categories->NumCategories();
    size_t num_k = s.categories->NumConfigs();
    KnobPlan plan;
    plan.alpha = ml::Matrix(num_c, num_k, 0.0);
    plan.forecast = s.forecast;
    for (size_t c = 0; c < num_c; ++c) {
      for (size_t k = 0; k < num_k; ++k) {
        double a = solution.x[block_offsets[v] + c * num_k + k];
        plan.alpha.At(c, k) = a;
        plan.expected_quality +=
            a * s.forecast[c] * s.categories->CenterQuality(c, k);
        plan.expected_work += a * s.forecast[c] * s.config_costs[k];
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

}  // namespace sky::core
