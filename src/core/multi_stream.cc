#include "core/multi_stream.h"

#include <algorithm>
#include <cmath>

namespace sky::core {

int FairCoreShare(int cores, size_t num_streams) {
  if (num_streams == 0) return cores;
  return std::max(1, cores / static_cast<int>(num_streams));
}

std::vector<Result<EngineResult>> RunStreamEngines(
    const std::vector<StreamEngineJob>& jobs, dag::ThreadPool* pool) {
  std::vector<Result<EngineResult>> results(
      jobs.size(), Result<EngineResult>(Status::Internal("stream not run")));
  dag::ParallelFor(pool, jobs.size(), [&](size_t i) {
    const StreamEngineJob& job = jobs[i];
    if (job.workload == nullptr || job.model == nullptr ||
        job.cost_model == nullptr) {
      results[i] = Status::InvalidArgument("null pointer in stream job");
      return;
    }
    IngestionEngine engine(job.workload, job.model, job.cluster,
                           job.cost_model, job.options);
    results[i] = engine.Run(job.start_time);
  });
  return results;
}

Result<std::vector<KnobPlan>> ComputeJointKnobPlan(
    const std::vector<StreamPlanInput>& streams,
    double budget_core_s_per_video_s, PlannerBackend backend,
    PlanWorkspace* workspace) {
  if (streams.empty()) {
    return Status::InvalidArgument("no streams to plan for");
  }
  if (!(budget_core_s_per_video_s > 0) ||
      !std::isfinite(budget_core_s_per_video_s)) {
    return Status::InvalidArgument("budget must be positive and finite");
  }

  // One workspace group per (stream, category); stream v's groups start at
  // first_groups[v]. The coefficient assembly (Eqs. 7-9) is the same
  // AppendPlanCoefficients the single-stream planner uses, once per stream.
  PlanWorkspace local;
  PlanWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.Clear();
  std::vector<size_t> first_groups;
  first_groups.reserve(streams.size());
  for (const StreamPlanInput& s : streams) {
    if (s.categories == nullptr) {
      return Status::InvalidArgument("null categories in stream input");
    }
    auto first = AppendPlanCoefficients(*s.categories, s.forecast,
                                        s.config_costs, &ws);
    if (!first.ok()) {
      return Status::InvalidArgument("stream input shape mismatch");
    }
    first_groups.push_back(*first);
  }

  Status solved = SolvePlanProblem(budget_core_s_per_video_s, backend, &ws);
  if (!solved.ok()) {
    if (solved.code() == StatusCode::kResourceExhausted) {
      return Status::ResourceExhausted(
          "joint knob plan infeasible under the shared budget");
    }
    return solved;
  }

  std::vector<KnobPlan> plans;
  plans.reserve(streams.size());
  for (size_t v = 0; v < streams.size(); ++v) {
    const StreamPlanInput& s = streams[v];
    plans.push_back(ExtractPlan(ws, first_groups[v], *s.categories,
                                s.forecast, s.config_costs));
  }
  return plans;
}

}  // namespace sky::core
