#include "core/multi_stream.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <utility>

#include "io/checkpoint_io.h"

namespace sky::core {

int FairCoreShare(int cores, size_t num_streams) {
  if (num_streams == 0) return cores;
  return std::max(1, cores / static_cast<int>(num_streams));
}

Status JointPlanner::Plan(const std::vector<StreamPlanInput>& streams,
                          double budget, std::vector<KnobPlan>* plans) {
  if (plans == nullptr) {
    return Status::InvalidArgument("null plans output");
  }
  if (streams.empty()) {
    return Status::InvalidArgument("no streams to plan for");
  }
  if (!(budget > 0) || !std::isfinite(budget)) {
    return Status::InvalidArgument("budget must be positive and finite");
  }
  last_groups_rebuilt_ = 0;
  last_groups_rescaled_ = 0;

  // Validate shapes and detect whether the (stream, category) -> group
  // layout survived since the last call. Any layout change (streams added,
  // removed, reordered into different category counts) invalidates every
  // first_group, so the solver resets wholesale; per-stream content changes
  // are handled below at group granularity.
  bool relayout = cache_.size() != streams.size();
  size_t total_groups = 0;
  for (size_t v = 0; v < streams.size(); ++v) {
    const StreamPlanInput& s = streams[v];
    if (s.categories == nullptr) {
      return Status::InvalidArgument("null categories in stream input");
    }
    size_t num_c = s.categories->NumCategories();
    size_t num_k = s.categories->NumConfigs();
    if (num_c == 0 || num_k == 0 || s.forecast.size() != num_c ||
        s.config_costs.size() != num_k) {
      return Status::InvalidArgument("stream input shape mismatch");
    }
    if (!relayout && (cache_[v].first_group != total_groups ||
                      cache_[v].num_categories != num_c)) {
      relayout = true;
    }
    total_groups += num_c;
  }
  if (relayout) {
    solver_.Reset(total_groups);
    cache_.assign(streams.size(), StreamCache{});
    size_t g = 0;
    for (size_t v = 0; v < streams.size(); ++v) {
      cache_[v].first_group = g;
      cache_[v].num_categories = streams[v].categories->NumCategories();
      g += cache_[v].num_categories;
    }
  }

  for (size_t v = 0; v < streams.size(); ++v) {
    const StreamPlanInput& s = streams[v];
    StreamCache& cached = cache_[v];
    size_t num_k = s.categories->NumConfigs();
    if (cached.categories != s.categories ||
        cached.config_costs != s.config_costs) {
      // Hull rebuild: the unscaled points of category c's group are
      // (cost(k), qual(c, k)); the forecast enters only as the scale.
      group_values_.resize(num_k);
      for (size_t c = 0; c < cached.num_categories; ++c) {
        for (size_t k = 0; k < num_k; ++k) {
          group_values_[k] = s.categories->CenterQuality(c, k);
        }
        SKY_RETURN_NOT_OK(solver_.SetGroup(cached.first_group + c,
                                           s.config_costs.data(),
                                           group_values_.data(), num_k));
        SKY_RETURN_NOT_OK(
            solver_.ScaleGroup(cached.first_group + c, s.forecast[c]));
        ++last_groups_rebuilt_;
      }
      cached.categories = s.categories;
      cached.config_costs = s.config_costs;
      cached.forecast = s.forecast;
    } else {
      for (size_t c = 0; c < cached.num_categories; ++c) {
        if (s.forecast[c] == cached.forecast[c]) continue;
        SKY_RETURN_NOT_OK(
            solver_.ScaleGroup(cached.first_group + c, s.forecast[c]));
        cached.forecast[c] = s.forecast[c];
        ++last_groups_rescaled_;
      }
    }
  }

  SKY_RETURN_NOT_OK(solver_.Solve(budget, &solution_));
  if (solution_.status == lp::MckpStatus::kInfeasible) {
    return Status::ResourceExhausted(
        "joint knob plan infeasible under the shared budget");
  }

  plans->clear();
  plans->reserve(streams.size());
  for (size_t v = 0; v < streams.size(); ++v) {
    const StreamPlanInput& s = streams[v];
    plans->push_back(ExtractPlanFromChoices(solution_, cache_[v].first_group,
                                            *s.categories, s.forecast,
                                            s.config_costs));
  }
  return Status::Ok();
}

Result<StreamSet> StreamSet::Create(std::vector<StreamEngineJob> jobs,
                                    StreamSetOptions options) {
  StreamSet set(options);
  set.jobs_ = std::move(jobs);
  set.engines_.resize(set.jobs_.size());
  set.statuses_.assign(set.jobs_.size(), Status::Ok());
  set.boundary_ckpts_.resize(set.jobs_.size());
  set.restarts_used_.assign(set.jobs_.size(), 0);

  for (size_t v = 0; v < set.jobs_.size(); ++v) {
    const StreamEngineJob& job = set.jobs_[v];
    if (job.workload == nullptr || job.model == nullptr ||
        job.cost_model == nullptr) {
      set.statuses_[v] = Status::InvalidArgument("null pointer in stream job");
      continue;
    }
    set.engines_[v] = std::make_unique<IngestionEngine>(
        job.workload, job.model, job.cluster, job.cost_model, job.options);
    Status started = set.engines_[v]->Start(job.start_time);
    if (!started.ok()) {
      set.statuses_[v] = started;
    }
  }

  if (options.planning == MultiStreamPlanning::kJoint) {
    // Joint planning intercepts plan boundaries across streams; they only
    // line up when every stream shares the boundary cadence.
    double seg_s = -1.0;
    int64_t segs_per_interval = -1;
    for (size_t v = 0; v < set.jobs_.size(); ++v) {
      if (!set.Active(v)) continue;
      double seg = set.jobs_[v].model->segment_seconds;
      int64_t segs = set.engines_[v]->segments_per_interval();
      if (seg_s < 0.0) {
        seg_s = seg;
        segs_per_interval = segs;
      } else if (seg != seg_s || segs != segs_per_interval) {
        return Status::InvalidArgument(
            "joint planning requires every stream to share one segment "
            "length and plan interval (lockstep boundaries)");
      }
    }
  }
  return set;
}

Result<StreamSet> StreamSet::RecoverFromCheckpoint(
    std::vector<StreamEngineJob> jobs, const std::string& path,
    StreamSetOptions options) {
  Result<io::FleetCheckpoint> loaded = io::LoadFleetCheckpoint(path);
  SKY_RETURN_NOT_OK(loaded.status());
  return RecoverFromCheckpoint(std::move(jobs), *loaded, options);
}

Result<StreamSet> StreamSet::RecoverFromCheckpoint(
    std::vector<StreamEngineJob> jobs, const io::FleetCheckpoint& ckpt,
    StreamSetOptions options) {
  if (jobs.size() < ckpt.streams.size()) {
    return Status::InvalidArgument(
        "checkpoint holds more streams than the provided jobs");
  }
  Result<StreamSet> set = StreamSet::Create(std::move(jobs), options);
  SKY_RETURN_NOT_OK(set.status());
  // Trailing jobs beyond the checkpointed count joined the fleet after the
  // snapshot (rolling restart); they were started fresh by Create above.
  for (size_t v = 0; v < ckpt.streams.size(); ++v) {
    const io::StreamCheckpoint& sc = ckpt.streams[v];
    if (!sc.status.ok()) {
      // The stream was already quarantined when the checkpoint was taken;
      // it comes back quarantined with the same error.
      set->statuses_[v] = sc.status;
      continue;
    }
    if (!sc.has_state) continue;
    if (set->engines_[v] == nullptr) {
      return Status::InvalidArgument(
          "checkpoint holds engine state for a job with null pointers");
    }
    Result<IngestState> state =
        io::DeserializeIngestState(sc.state, *set->jobs_[v].model);
    SKY_RETURN_NOT_OK(state.status());
    SKY_RETURN_NOT_OK(set->engines_[v]->Restore(*state));
  }
  return set;
}

bool StreamSet::AtLockstepBoundary() const {
  if (options_.planning != MultiStreamPlanning::kJoint) return true;
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (Active(v) && !engines_[v]->AtPlanBoundary()) return false;
  }
  return true;
}

Result<size_t> StreamSet::AddStream(const StreamEngineJob& job) {
  if (!AtLockstepBoundary()) {
    return Status::FailedPrecondition(
        "streams can only join the fleet at a lockstep plan boundary");
  }
  if (job.workload == nullptr || job.model == nullptr ||
      job.cost_model == nullptr) {
    return Status::InvalidArgument("null pointer in stream job");
  }
  auto engine = std::make_unique<IngestionEngine>(
      job.workload, job.model, job.cluster, job.cost_model, job.options);
  SKY_RETURN_NOT_OK(engine->Start(job.start_time));
  if (options_.planning == MultiStreamPlanning::kJoint) {
    // Lockstep cadence was validated pairwise at Create and on every prior
    // admission, so one live reference stream decides for the fleet.
    for (size_t v = 0; v < engines_.size(); ++v) {
      if (!Active(v)) continue;
      if (job.model->segment_seconds != jobs_[v].model->segment_seconds ||
          engine->segments_per_interval() !=
              engines_[v]->segments_per_interval()) {
        return Status::InvalidArgument(
            "joint planning requires every stream to share one segment "
            "length and plan interval (lockstep boundaries)");
      }
      break;
    }
  }
  // The joint planner sees a changed (stream, category) layout at the next
  // boundary and re-solves cold for the new membership by itself.
  jobs_.push_back(job);
  engines_.push_back(std::move(engine));
  statuses_.push_back(Status::Ok());
  boundary_ckpts_.emplace_back();
  restarts_used_.push_back(0);
  return engines_.size() - 1;
}

Status StreamSet::RemoveStream(size_t v) {
  if (v >= engines_.size()) {
    return Status::InvalidArgument("stream index out of range");
  }
  if (Active(v) && !engines_[v]->AtPlanBoundary()) {
    return Status::FailedPrecondition(
        "a live stream can only leave the fleet at a lockstep plan boundary");
  }
  engines_[v] = nullptr;
  boundary_ckpts_[v] = nullptr;
  // The slot stays occupied so indices (and Results() job order) remain
  // stable; it reads as a terminal, non-restartable state from here on.
  statuses_[v] =
      Status::FailedPrecondition("stream removed from the fleet");
  return Status::Ok();
}

Status StreamSet::ReconfigureStream(size_t v, const StreamReconfig& changes) {
  if (v >= engines_.size() || engines_[v] == nullptr) {
    return Status::InvalidArgument("no such stream");
  }
  if (!statuses_[v].ok()) {
    return Status::FailedPrecondition(
        "cannot reconfigure a quarantined stream");
  }
  if ((changes.cloud_budget_usd_per_interval.has_value() &&
       !(*changes.cloud_budget_usd_per_interval >= 0.0)) ||
      (changes.work_budget_override.has_value() &&
       !(*changes.work_budget_override >= 0.0))) {
    return Status::InvalidArgument("budgets must be non-negative");
  }
  if (changes.cloud_budget_usd_per_interval.has_value()) {
    engines_[v]->set_cloud_budget_usd_per_interval(
        *changes.cloud_budget_usd_per_interval);
  }
  if (changes.work_budget_override.has_value()) {
    engines_[v]->set_work_budget_override(*changes.work_budget_override);
  }
  return Status::Ok();
}

double StreamSet::CheapestFleetCostCoreSPerVideoS() const {
  double total = 0.0;
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (!Active(v)) continue;
    const std::vector<double>& costs = engines_[v]->config_costs();
    if (costs.empty()) continue;
    total += *std::min_element(costs.begin(), costs.end());
  }
  return total;
}

size_t StreamSet::total_restarts() const {
  size_t total = 0;
  for (size_t used : restarts_used_) total += used;
  return total;
}

Status StreamSet::CaptureCheckpoint(io::FleetCheckpoint* out) const {
  out->streams.clear();
  out->streams.resize(engines_.size());
  for (size_t v = 0; v < engines_.size(); ++v) {
    io::StreamCheckpoint& sc = out->streams[v];
    sc.status = statuses_[v];
    if (engines_[v] == nullptr || !engines_[v]->started()) continue;
    Result<IngestState> snap = engines_[v]->Checkpoint();
    SKY_RETURN_NOT_OK(snap.status());
    SKY_RETURN_NOT_OK(io::SerializeIngestState(*snap, &sc.state));
    sc.has_state = true;
  }
  return Status::Ok();
}

Status StreamSet::SaveCheckpoint(const std::string& path) const {
  io::FleetCheckpoint ckpt;
  SKY_RETURN_NOT_OK(CaptureCheckpoint(&ckpt));
  return io::SaveFleetCheckpoint(ckpt, path);
}

void StreamSet::CaptureBoundaryCheckpoint(size_t v) {
  if (options_.max_stream_restarts == 0) return;
  Result<IngestState> snap = engines_[v]->Checkpoint();
  // A failed snapshot is not fatal: the stream simply keeps (or lacks) its
  // previous restore point, and a later failure quarantines it as if
  // supervision were off.
  if (!snap.ok()) return;
  boundary_ckpts_[v] = std::make_unique<IngestState>(std::move(*snap));
}

void StreamSet::MaybeAutoCheckpoint() {
  ++boundaries_planned_;
  if (options_.checkpoint_path.empty() ||
      options_.checkpoint_every_boundaries == 0 ||
      boundaries_planned_ % options_.checkpoint_every_boundaries != 0) {
    return;
  }
  // Auto-checkpointing is best-effort by design: a full disk must not kill
  // an otherwise healthy fleet. The failure is observable, never fatal.
  last_checkpoint_status_ = SaveCheckpoint(options_.checkpoint_path);
}

Status StreamSet::AdvanceStream(size_t v, int64_t target_index) {
  IngestionEngine& e = *engines_[v];
  const bool supervise = options_.max_stream_restarts > 0;
  while (statuses_[v].ok() && !e.Done() &&
         e.next_segment_index() < target_index) {
    if (supervise && e.AtPlanBoundary()) CaptureBoundaryCheckpoint(v);
    Status stepped;
    try {
      stepped = e.Step();
    } catch (const std::exception& ex) {
      stepped = Status::Internal(ex.what());
    } catch (...) {
      stepped = Status::Internal("stream engine threw");
    }
    if (stepped.ok()) continue;
    if (supervise && boundary_ckpts_[v] != nullptr &&
        restarts_used_[v] < options_.max_stream_restarts) {
      // Supervised restart: rewind to the last boundary snapshot and replay.
      // One-shot injected faults stay consumed across Restore, so a replay
      // can get past the failure; a persistent failure burns through the
      // budget and quarantines below.
      ++restarts_used_[v];
      Status restored = e.Restore(*boundary_ckpts_[v]);
      if (restored.ok()) continue;
      stepped = restored;
    }
    statuses_[v] = stepped;
  }
  return statuses_[v];
}

bool StreamSet::Done() const {
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (Active(v)) return false;
  }
  return true;
}

Status StreamSet::JointPlanBoundaryIfDue() {
  // Live streams hit boundaries in lockstep (validated at Create): either
  // all of them are due or none is.
  bool any_due = false;
  bool any_not_due = false;
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (!Active(v)) continue;
    (engines_[v]->AtPlanBoundary() ? any_due : any_not_due) = true;
  }
  if (!any_due) return Status::Ok();
  if (any_not_due) {
    return Status::Internal("streams fell out of lockstep plan boundaries");
  }

  auto boundary_start = std::chrono::steady_clock::now();
  auto record_latency = [&] {
    boundary_ms_.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() -
                               boundary_start)
                               .count());
  };

  inputs_.clear();
  planned_.clear();
  double derived_budget = 0.0;
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (!Active(v)) continue;
    // Per-stream boundary maintenance (online forecaster fine-tune +
    // forecast) runs exactly as a self-planning engine would.
    Status prepared = engines_[v]->PrepareBoundary();
    if (!prepared.ok()) {
      statuses_[v] = prepared;
      continue;
    }
    StreamPlanInput in;
    in.categories = &jobs_[v].model->categories;
    in.forecast = engines_[v]->boundary_forecast();
    in.config_costs = engines_[v]->config_costs();
    inputs_.push_back(std::move(in));
    planned_.push_back(v);
    derived_budget += engines_[v]->PlanBudgetCoreSPerVideoS();
  }
  if (planned_.empty()) return Status::Ok();

  double budget = options_.shared_budget_core_s_per_video_s > 0.0
                      ? options_.shared_budget_core_s_per_video_s
                      : derived_budget;
  // kStructured boundaries run on the warm incremental planner (hull cache
  // + warm-started MCKP frontier); the kSimplex oracle keeps the cold path.
  Status solved;
  if (options_.planner_backend == PlannerBackend::kStructured) {
    solved = joint_planner_.Plan(inputs_, budget, &joint_plans_);
  } else {
    Result<std::vector<KnobPlan>> cold = ComputeJointKnobPlan(
        inputs_, budget, options_.planner_backend, &joint_ws_);
    solved = cold.status();
    if (cold.ok()) joint_plans_ = std::move(*cold);
  }

  if (!solved.ok() && solved.code() == StatusCode::kResourceExhausted) {
    // Budget fits no configuration anywhere. A mid-run budget shock keeps
    // the previous interval's installed plan (the switcher's buffer guard
    // absorbs the overload) rather than collapsing to all-cheapest; only a
    // stream with no plan yet — the very first boundary — degrades to its
    // own all-cheapest plan, mirroring the single-stream fallback.
    for (size_t idx = 0; idx < planned_.size(); ++idx) {
      size_t v = planned_[idx];
      const KnobPlan* previous = engines_[v]->current_plan();
      KnobPlan fallback =
          previous != nullptr
              ? *previous
              : engines_[v]->FallbackPlan(engines_[v]->boundary_forecast());
      Status installed = engines_[v]->InstallPlan(std::move(fallback));
      if (!installed.ok()) {
        statuses_[v] = installed;
      } else {
        CaptureBoundaryCheckpoint(v);
      }
    }
    MaybeAutoCheckpoint();
    record_latency();
    return Status::Ok();
  }
  if (!solved.ok()) {
    for (size_t v : planned_) statuses_[v] = solved;
    return Status::Ok();
  }

  // The joint program allocated the POOLED budget; the per-stream credit
  // guards must follow it, or the plan's cloud bursts could never execute
  // beyond each stream's own even share. Re-divide the pooled credits by
  // each plan's implied cloud need (expected work above the local cores),
  // spreading any slack evenly so reactive bursting stays possible; scale
  // down proportionally when the needs exceed the pool. Total spendable
  // credits per interval remain exactly the sum of the streams' own
  // budgets — joint mode moves money, it never prints it.
  std::vector<double> needs(planned_.size(), 0.0);
  double pooled_credits = 0.0;
  double total_need = 0.0;
  for (size_t idx = 0; idx < planned_.size(); ++idx) {
    size_t v = planned_[idx];
    const EngineOptions& opts = engines_[v]->options();
    // A stream inside an injected cloud outage cannot spend credits this
    // interval, so its share must not enter the pool either — otherwise the
    // joint planner would lend money the outage makes unspendable.
    if (opts.enable_cloud && !engines_[v]->CloudOutageNow()) {
      pooled_credits += *opts.cloud_budget_usd_per_interval;
    }
    double burst_core_s =
        std::max(0.0, joint_plans_[idx].expected_work -
                          static_cast<double>(jobs_[v].cluster.cores)) *
        opts.plan_interval;
    needs[idx] = jobs_[v].cost_model->CoreSecondsToUsd(burst_core_s);
    total_need += needs[idx];
  }
  for (size_t idx = 0; idx < planned_.size(); ++idx) {
    size_t v = planned_[idx];
    double allotted;
    if (total_need <= pooled_credits) {
      allotted = needs[idx] + (pooled_credits - total_need) /
                                  static_cast<double>(planned_.size());
    } else {
      allotted = pooled_credits * needs[idx] / total_need;
    }
    Status installed =
        engines_[v]->InstallPlan(std::move(joint_plans_[idx]), allotted);
    if (!installed.ok()) {
      statuses_[v] = installed;
    } else {
      // Snapshot AFTER the install: a supervised restart replays the
      // interval under the already-installed plan instead of re-entering
      // the (fleet-wide) joint solve for one stream.
      CaptureBoundaryCheckpoint(v);
    }
  }
  MaybeAutoCheckpoint();
  record_latency();
  return Status::Ok();
}

Status StreamSet::Step() {
  if (options_.planning == MultiStreamPlanning::kJoint) {
    SKY_RETURN_NOT_OK(JointPlanBoundaryIfDue());
  }
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (!Active(v)) continue;
    // Net one segment of forward progress even across a supervised restart
    // (a restart rewinds to the boundary and replays up to the target), so
    // joint-mode lockstep survives mid-interval failures.
    AdvanceStream(v, engines_[v]->next_segment_index() + 1);
  }
  return Status::Ok();
}

Status StreamSet::RunUntilElapsed(SimTime elapsed) {
  if (options_.planning == MultiStreamPlanning::kJoint) {
    // Lockstep cadence (validated at Create): every stream is equally far
    // along, so stepping the whole set while anyone is behind never
    // overshoots.
    auto behind = [&]() {
      for (size_t v = 0; v < engines_.size(); ++v) {
        if (Active(v) &&
            engines_[v]->CurrentTime() - jobs_[v].start_time < elapsed) {
          return true;
        }
      }
      return false;
    };
    while (!Done() && behind()) {
      SKY_RETURN_NOT_OK(Step());
    }
    return Status::Ok();
  }
  // Independent mode allows heterogeneous segment lengths: advance each
  // stream on its own until IT reaches the target, so fast-segment streams
  // are not dragged past the pause point by slow-segment ones.
  for (size_t v = 0; v < engines_.size(); ++v) {
    while (Active(v) &&
           engines_[v]->CurrentTime() - jobs_[v].start_time < elapsed) {
      Status stepped =
          AdvanceStream(v, engines_[v]->next_segment_index() + 1);
      if (!stepped.ok()) break;
    }
  }
  return Status::Ok();
}

Status StreamSet::RunToCompletion(dag::ThreadPool* pool) {
  if (options_.planning == MultiStreamPlanning::kIndependent) {
    // Streams are fully independent simulations: one stream per pool slot,
    // each stepped straight through — the exact RunStreamEngines fan-out,
    // identical results for any thread count.
    dag::ParallelFor(pool, engines_.size(), [&](size_t v) {
      if (!Active(v)) return;
      AdvanceStream(v, std::numeric_limits<int64_t>::max());
    });
    return Status::Ok();
  }

  // Joint mode: sharded barrier scheduler. Streams are partitioned over a
  // fixed worker set with stable affinity (stream v belongs to worker
  // v % workers for the whole run); the calling thread is worker 0 and
  // workers - 1 pool threads join it. Between boundaries every worker steps
  // only its own shard through the plan interval — no shared mutable state,
  // no locks. The lockstep plan boundary is the ONLY synchronization point:
  // workers park at the barrier, its leader runs JointPlanBoundaryIfDue in
  // a guaranteed single-threaded window (streams visited in index order,
  // exactly as the Step() driver would), then everyone resumes. Results are
  // bitwise-identical for any worker count — and to stepping the set
  // manually — because engines are independent between boundaries and the
  // planner sees the identical call sequence either way.
  size_t workers = 1 + (pool == nullptr ? 0 : pool->num_threads());
  workers = std::min(workers, engines_.size());
  if (workers == 0) workers = 1;

  dag::Barrier barrier(workers);
  std::atomic<bool> stop{false};
  Status boundary_status;  // leader writes pre-stop; read after the join

  auto coordinate = [&] {
    if (Done()) {
      stop.store(true);
      return;
    }
    try {
      Status st = JointPlanBoundaryIfDue();
      if (!st.ok()) {
        boundary_status = st;
        stop.store(true);
      }
    } catch (const std::exception& e) {
      boundary_status = Status::Internal(e.what());
      stop.store(true);
    } catch (...) {
      boundary_status = Status::Internal("joint plan boundary threw");
      stop.store(true);
    }
  };
  auto worker = [&](size_t w) {
    for (;;) {
      barrier.ArriveAndWait(coordinate);
      if (stop.load()) return;
      for (size_t v = w; v < engines_.size(); v += workers) {
        if (!Active(v)) continue;
        // Per-stream failures (error Status or a throwing workload) are
        // recorded on the stream — or absorbed by a supervised restart —
        // and never abandon the barrier protocol: the worker must keep
        // arriving for its peers, or the set would deadlock on one bad
        // stream. AdvanceStream targets the end of the current interval,
        // the same unit RunInterval covers.
        int64_t spi = engines_[v]->segments_per_interval();
        int64_t next = engines_[v]->next_segment_index();
        AdvanceStream(v, next - (next % spi) + spi);
      }
    }
  };

  if (workers == 1) {
    worker(0);
    return boundary_status;
  }
  std::vector<std::future<void>> joined;
  joined.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) {
    joined.push_back(pool->SubmitWithFuture([&worker, w] { worker(w); }));
  }
  worker(0);
  for (std::future<void>& f : joined) f.get();
  return boundary_status;
}

std::vector<Result<EngineResult>> StreamSet::Results() const {
  std::vector<Result<EngineResult>> out;
  out.reserve(engines_.size());
  for (size_t v = 0; v < engines_.size(); ++v) {
    if (!statuses_[v].ok()) {
      out.push_back(statuses_[v]);
    } else if (engines_[v] == nullptr || !engines_[v]->Done()) {
      out.push_back(Status::FailedPrecondition("stream not finished"));
    } else {
      out.push_back(engines_[v]->partial_result());
    }
  }
  return out;
}

std::vector<Result<EngineResult>> RunStreamEngines(
    const std::vector<StreamEngineJob>& jobs, dag::ThreadPool* pool) {
  StreamSetOptions options;
  options.planning = MultiStreamPlanning::kIndependent;
  Result<StreamSet> set = StreamSet::Create(jobs, options);
  if (!set.ok()) {
    return std::vector<Result<EngineResult>>(
        jobs.size(), Result<EngineResult>(set.status()));
  }
  Status ran = set->RunToCompletion(pool);
  if (!ran.ok()) {
    return std::vector<Result<EngineResult>>(jobs.size(),
                                             Result<EngineResult>(ran));
  }
  return set->Results();
}

Result<std::vector<KnobPlan>> ComputeJointKnobPlan(
    const std::vector<StreamPlanInput>& streams,
    double budget_core_s_per_video_s, PlannerBackend backend,
    PlanWorkspace* workspace) {
  if (streams.empty()) {
    return Status::InvalidArgument("no streams to plan for");
  }
  if (!(budget_core_s_per_video_s > 0) ||
      !std::isfinite(budget_core_s_per_video_s)) {
    return Status::InvalidArgument("budget must be positive and finite");
  }

  // One workspace group per (stream, category); stream v's groups start at
  // first_groups[v]. The coefficient assembly (Eqs. 7-9) is the same
  // AppendPlanCoefficients the single-stream planner uses, once per stream.
  PlanWorkspace local;
  PlanWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.Clear();
  std::vector<size_t> first_groups;
  first_groups.reserve(streams.size());
  for (const StreamPlanInput& s : streams) {
    if (s.categories == nullptr) {
      return Status::InvalidArgument("null categories in stream input");
    }
    auto first = AppendPlanCoefficients(*s.categories, s.forecast,
                                        s.config_costs, &ws);
    if (!first.ok()) {
      return Status::InvalidArgument("stream input shape mismatch");
    }
    first_groups.push_back(*first);
  }

  Status solved = SolvePlanProblem(budget_core_s_per_video_s, backend, &ws);
  if (!solved.ok()) {
    if (solved.code() == StatusCode::kResourceExhausted) {
      return Status::ResourceExhausted(
          "joint knob plan infeasible under the shared budget");
    }
    return solved;
  }

  std::vector<KnobPlan> plans;
  plans.reserve(streams.size());
  for (size_t v = 0; v < streams.size(); ++v) {
    const StreamPlanInput& s = streams[v];
    plans.push_back(ExtractPlan(ws, first_groups[v], *s.categories,
                                s.forecast, s.config_costs));
  }
  return plans;
}

}  // namespace sky::core
