#include "core/categorizer.h"

#include <algorithm>

namespace sky::core {

size_t ContentCategories::NumCategories() const {
  return backend_ == CategorizerBackend::kKMeans ? kmeans_.centers.size()
                                                 : gmm_->means.size();
}

size_t ContentCategories::NumConfigs() const {
  if (backend_ == CategorizerBackend::kKMeans) {
    return kmeans_.centers.empty() ? 0 : kmeans_.centers[0].size();
  }
  return gmm_->means.empty() ? 0 : gmm_->means[0].size();
}

double ContentCategories::CenterQuality(size_t category,
                                        size_t config_idx) const {
  return backend_ == CategorizerBackend::kKMeans
             ? kmeans_.centers[category][config_idx]
             : gmm_->means[category][config_idx];
}

size_t ContentCategories::ClassifyFull(
    const std::vector<double>& quality_vector) const {
  return backend_ == CategorizerBackend::kKMeans
             ? kmeans_.Classify(quality_vector)
             : gmm_->Classify(quality_vector);
}

size_t ContentCategories::ClassifyPartial(size_t config_idx,
                                          double quality) const {
  return backend_ == CategorizerBackend::kKMeans
             ? kmeans_.ClassifyPartial(config_idx, quality)
             : gmm_->ClassifyPartial(config_idx, quality);
}

ContentCategories ContentCategories::FromKMeans(ml::KMeansModel model) {
  ContentCategories c;
  c.backend_ = CategorizerBackend::kKMeans;
  c.kmeans_ = std::move(model);
  return c;
}

ContentCategories ContentCategories::FromGmm(ml::GmmModel model) {
  ContentCategories c;
  c.backend_ = CategorizerBackend::kGmm;
  c.gmm_ = std::move(model);
  return c;
}

std::vector<double> SegmentQualityVector(const Workload& workload,
                                         const std::vector<KnobConfig>& configs,
                                         const video::ContentState& content,
                                         Rng* rng) {
  std::vector<double> quals;
  quals.reserve(configs.size());
  for (const KnobConfig& k : configs) {
    quals.push_back(workload.MeasuredQuality(k, content, rng));
  }
  return quals;
}

std::vector<double> TrueQualityVector(const Workload& workload,
                                      const std::vector<KnobConfig>& configs,
                                      const video::ContentState& content) {
  std::vector<double> quals;
  TrueQualityVectorInto(workload, configs, content, &quals);
  return quals;
}

void TrueQualityVectorInto(const Workload& workload,
                           const std::vector<KnobConfig>& configs,
                           const video::ContentState& content,
                           std::vector<double>* out) {
  out->clear();
  out->reserve(configs.size());
  for (const KnobConfig& k : configs) {
    out->push_back(workload.TrueQuality(k, content));
  }
}

Result<ContentCategories> BuildContentCategories(
    const Workload& workload, const std::vector<KnobConfig>& configs,
    const CategorizerOptions& options) {
  if (configs.empty()) {
    return Status::InvalidArgument("no configurations for categorization");
  }
  if (options.num_categories == 0) {
    return Status::InvalidArgument("need at least one content category");
  }
  double horizon =
      std::min<double>(options.train_horizon, workload.content_process().horizon());
  int64_t total_segments =
      static_cast<int64_t>(horizon / options.segment_seconds);
  int64_t sampled = std::max<int64_t>(
      static_cast<int64_t>(options.num_categories) * 4,
      static_cast<int64_t>(options.sample_fraction *
                           static_cast<double>(total_segments)));
  sampled = std::min(sampled, total_segments);
  if (sampled <= 0) {
    return Status::InvalidArgument("train horizon too short for sampling");
  }

  // Scan the sampled segments in parallel, one forked RNG per fixed-size
  // chunk so the vectors are identical for any thread count.
  Rng noise_rng = Rng(options.seed).Fork("measurement");
  std::vector<std::vector<double>> quality_vectors(
      static_cast<size_t>(sampled));
  dag::ParallelForChunked(
      options.pool, static_cast<size_t>(sampled), 64,
      [&](size_t chunk, size_t begin, size_t end) {
        Rng chunk_rng = noise_rng.ForkIndex(chunk);
        for (size_t i = begin; i < end; ++i) {
          double t = horizon * (static_cast<double>(i) + 0.5) /
                     static_cast<double>(sampled);
          video::ContentState state = workload.content_process().At(t);
          quality_vectors[i] =
              SegmentQualityVector(workload, configs, state, &chunk_rng);
        }
      });

  if (options.backend == CategorizerBackend::kKMeans) {
    ml::KMeansOptions km;
    km.k = options.num_categories;
    km.seed = options.seed;
    SKY_ASSIGN_OR_RETURN(ml::KMeansModel model,
                         ml::KMeansFit(quality_vectors, km));
    return ContentCategories::FromKMeans(std::move(model));
  }
  ml::GmmOptions gm;
  gm.k = options.num_categories;
  gm.seed = options.seed;
  SKY_ASSIGN_OR_RETURN(ml::GmmModel model, ml::GmmFit(quality_vectors, gm));
  return ContentCategories::FromGmm(std::move(model));
}

}  // namespace sky::core
