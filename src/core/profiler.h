#ifndef SKYSCRAPER_CORE_PROFILER_H_
#define SKYSCRAPER_CORE_PROFILER_H_

#include <vector>

#include "core/placement_search.h"
#include "core/workload.h"
#include "sim/cluster_sim.h"
#include "sim/cost_model.h"
#include "util/result.h"

namespace sky::core {

/// Everything the online phase needs to know about one knob configuration:
/// its id, its induced work, and its Pareto set of task placements on the
/// provisioned hardware (offline phase step 1, §3.1).
struct ConfigProfile {
  KnobConfig config;
  size_t config_id = 0;
  /// cost(k) of the planner LP: on-premise core-seconds per video-second.
  double work_core_s_per_video_s = 0.0;
  /// Cost-runtime Pareto placements for one segment, cheapest first.
  std::vector<PlacementProfile> placements;

  /// The fastest placement's per-segment runtime.
  double MinRuntime() const;
  /// The all-on-premise (cheapest) placement's per-segment runtime.
  double OnPremRuntime() const;
};

/// Profiles each configuration's task graph on the given cluster: builds the
/// DAG for one segment, searches placements, and records the Pareto set.
/// Configurations are profiled in parallel on `pool` (each placement search
/// is independent); the result order and contents match a serial run. A
/// non-null `pool` also backs the per-placement simulations unless
/// `search_options` names its own pool.
Result<std::vector<ConfigProfile>> ProfileConfigs(
    const Workload& workload, const std::vector<KnobConfig>& configs,
    const sim::ClusterSpec& cluster, const sim::CostModel& cost_model,
    double segment_seconds,
    const PlacementSearchOptions& search_options = {},
    dag::ThreadPool* pool = nullptr);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_PROFILER_H_
