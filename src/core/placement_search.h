#ifndef SKYSCRAPER_CORE_PLACEMENT_SEARCH_H_
#define SKYSCRAPER_CORE_PLACEMENT_SEARCH_H_

#include <vector>

#include "dag/task_graph.h"
#include "dag/thread_pool.h"
#include "sim/cluster_sim.h"
#include "util/result.h"

namespace sky::core {

/// One candidate execution of a knob configuration's task graph: a placement
/// plus its simulated runtime/cost profile on the provisioned cluster.
struct PlacementProfile {
  dag::Placement placement;
  double runtime_s = 0.0;        ///< per-segment makespan (Appendix M sim)
  double cloud_usd = 0.0;        ///< cloud credits per segment
  double onprem_core_s = 0.0;    ///< on-premise work per segment
  double uplink_bytes = 0.0;     ///< bytes shipped to the cloud per segment
};

struct PlacementSearchOptions {
  /// Budget of simulated placements. The search enumerates cloud-node
  /// *counts* per interchangeability group (TaskNode::group) exhaustively
  /// when the cross product fits the budget, and samples otherwise. The
  /// paper uses a learned search (PlaceTo); exploiting chunk symmetry makes
  /// exact enumeration cheap for V-ETL DAGs and yields the same downstream
  /// Pareto set (see DESIGN.md).
  size_t sample_count = 4096;
  uint64_t seed = 31;
  /// Pool the per-placement DAG simulations fan out on. Candidate counts are
  /// generated serially first, so the Pareto set is identical for any thread
  /// count (including null = serial).
  dag::ThreadPool* pool = nullptr;
};

/// Searches placements of `graph` on `cluster` and returns the cost-runtime
/// Pareto frontier (Appendix A.2), sorted by ascending cloud cost (so the
/// first entry is the cheapest, typically all-on-premise, placement and
/// later entries trade dollars for speed).
Result<std::vector<PlacementProfile>> SearchPlacements(
    const dag::TaskGraph& graph, const sim::ClusterSpec& cluster,
    const PlacementSearchOptions& options = {});

/// Filters a set of profiles down to the cost-runtime Pareto frontier,
/// sorted by ascending cloud cost. Exposed for tests.
std::vector<PlacementProfile> ParetoFilterPlacements(
    std::vector<PlacementProfile> profiles);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_PLACEMENT_SEARCH_H_
