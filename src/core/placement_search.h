#ifndef SKYSCRAPER_CORE_PLACEMENT_SEARCH_H_
#define SKYSCRAPER_CORE_PLACEMENT_SEARCH_H_

#include <cstdint>
#include <vector>

#include "dag/task_graph.h"
#include "dag/thread_pool.h"
#include "sim/cluster_sim.h"
#include "util/result.h"

namespace sky::core {

/// One candidate execution of a knob configuration's task graph: a placement
/// plus its simulated runtime/cost profile on the provisioned cluster.
struct PlacementProfile {
  dag::Placement placement;
  double runtime_s = 0.0;        ///< per-segment makespan (Appendix M sim)
  double cloud_usd = 0.0;        ///< cloud credits per segment
  double onprem_core_s = 0.0;    ///< on-premise work per segment
  double uplink_bytes = 0.0;     ///< bytes shipped to the cloud per segment
};

/// How SearchPlacements explores the placement space. All backends exploit
/// chunk symmetry (TaskNode::group): only the *count* of cloud-placed nodes
/// per interchangeability group matters, which collapses the 2^n node space
/// to a small vector of per-group counts. All backends always evaluate the
/// two extreme placements (all-on-premise, all-cloud), so the frontier keeps
/// the anchors ProfileConfigs and the planner rely on.
enum class SearchBackend {
  /// Exhaustive odometer over per-group cloud-count candidates when the
  /// cross product fits `sample_count`, random sampling otherwise. The
  /// historical default; bitwise identical to the pre-backend behavior.
  kEnumerate,
  /// Multi-start steepest-descent hill-climb on the group-count vector:
  /// each restart chain walks to a local optimum of its scalarized
  /// cost/runtime energy and stops. The oracle the annealer is gated
  /// against.
  kGreedy,
  /// Simulated annealing: every chain first runs the *identical* greedy
  /// descent (same seed, same start, same draws), then spends the remaining
  /// evaluation budget on annealed neighborhood moves (move-one-op,
  /// swap-cut-point, re-seed-from-greedy) under geometric cooling. Because
  /// each chain's evaluated set is a superset of the greedy chain's at equal
  /// budget, the annealed frontier always dominates-or-equals the greedy
  /// frontier.
  kAnneal,
};

struct PlacementSearchOptions {
  /// kEnumerate budget of simulated placements. The search enumerates cloud
  /// node *counts* per interchangeability group (TaskNode::group)
  /// exhaustively when the cross product fits the budget, and samples
  /// otherwise. The paper uses a learned search (PlaceTo); exploiting chunk
  /// symmetry makes exact enumeration cheap for V-ETL DAGs and yields the
  /// same downstream Pareto set (see DESIGN.md).
  size_t sample_count = 4096;
  uint64_t seed = 31;
  /// Pool the per-placement DAG simulations (kEnumerate) or the per-restart
  /// chains (kGreedy/kAnneal) fan out on. Work is generated serially or per
  /// deterministic chain, so the Pareto set is identical for any thread
  /// count (including null = serial).
  dag::ThreadPool* pool = nullptr;

  SearchBackend backend = SearchBackend::kEnumerate;
  /// kGreedy/kAnneal: total fresh DAG simulations across all restart chains
  /// (the two extreme placements are structural and not charged). The
  /// determinism contract is (seed, eval_budget): a fixed pair replays
  /// bitwise at any thread count.
  size_t eval_budget = 512;
  /// kGreedy/kAnneal: independent restart chains. Chain r draws from
  /// Rng(seed).ForkIndex(r) and optimizes its own cost/runtime scalarization
  /// weight, so the merged frontier covers the whole trade-off curve.
  size_t restarts = 8;
  /// kGreedy/kAnneal: when > 0, derives eval_budget from wall-clock by
  /// timing the two extreme-placement simulations (budget_ms / per-eval
  /// time). The derived budget varies run to run with machine load; bitwise
  /// replay requires fixing eval_budget directly.
  double budget_ms = 0.0;
  /// kAnneal: initial temperature for the scalarized energy (which is
  /// normalized to ~[0, 1], so 0.35 accepts sizable uphill moves early).
  double initial_temperature = 0.35;
  /// kAnneal: geometric cooling factor applied per proposal.
  double cooling = 0.97;
};

/// Optional observability for SearchPlacements (filled for all backends).
struct PlacementSearchStats {
  size_t evaluations = 0;     ///< fresh DAG simulations (extremes excluded)
  size_t greedy_moves = 0;    ///< accepted steepest-descent moves
  size_t uphill_accepts = 0;  ///< kAnneal: accepted worsening moves
  size_t reseeds = 0;         ///< kAnneal: re-seed-from-greedy jumps
};

/// Searches placements of `graph` on `cluster` and returns the cost-runtime
/// Pareto frontier (Appendix A.2), sorted by ascending cloud cost (so the
/// first entry is the cheapest, typically all-on-premise, placement and
/// later entries trade dollars for speed). Ties on (cost, runtime) break by
/// the lexicographically smallest placement, so the frontier is a pure
/// function of the evaluated set, not of evaluation order.
Result<std::vector<PlacementProfile>> SearchPlacements(
    const dag::TaskGraph& graph, const sim::ClusterSpec& cluster,
    const PlacementSearchOptions& options = {},
    PlacementSearchStats* stats = nullptr);

/// Filters a set of profiles down to the cost-runtime Pareto frontier,
/// sorted by ascending cloud cost; (cost, runtime) ties keep the
/// lexicographically smallest placement regardless of input order. Exposed
/// for tests.
std::vector<PlacementProfile> ParetoFilterPlacements(
    std::vector<PlacementProfile> profiles);

/// Area of the cost-runtime region dominated by `frontier` relative to the
/// reference point (ref_cloud_usd, ref_runtime_s) — the standard 2-D
/// hypervolume indicator. Larger is better; a frontier that dominates
/// another has hypervolume >= it for any shared reference point. This is the
/// scalar objective the SA-vs-greedy gates compare.
double FrontierHypervolume(const std::vector<PlacementProfile>& frontier,
                           double ref_cloud_usd, double ref_runtime_s);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_PLACEMENT_SEARCH_H_
