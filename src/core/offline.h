#ifndef SKYSCRAPER_CORE_OFFLINE_H_
#define SKYSCRAPER_CORE_OFFLINE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/categorizer.h"
#include "core/config_filter.h"
#include "core/forecaster.h"
#include "core/profiler.h"
#include "core/workload.h"
#include "dag/thread_pool.h"
#include "sim/cluster_sim.h"
#include "sim/cost_model.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::core {

/// Wall-clock runtimes of the offline steps (Table 3 of the paper).
struct OfflineStepRuntimes {
  double filter_configs_s = 0.0;
  double filter_placements_s = 0.0;
  double content_categories_s = 0.0;
  double forecast_training_data_s = 0.0;
  double forecast_training_s = 0.0;
};

/// The pre-computed, workload-invariant knowledge the online phase consumes:
/// the filtered configuration set K with placement profiles, the content
/// categories C, and the trained forecasting model F (Fig. 2, left).
struct OfflineModel {
  std::vector<KnobConfig> configs;
  std::vector<ConfigProfile> profiles;
  ContentCategories categories;
  std::optional<Forecaster> forecaster;
  /// Per-segment category sequence over the training horizon (Appendix H):
  /// bootstraps the online forecaster history.
  std::vector<size_t> train_category_sequence;
  double segment_seconds = 2.0;
  SimTime train_horizon = Days(16);
  OfflineStepRuntimes step_runtimes;
};

struct OfflineOptions {
  double segment_seconds = 2.0;
  /// Unlabeled history used for fitting (the paper records ~2 weeks).
  SimTime train_horizon = Days(16);
  size_t num_categories = 4;
  CategorizerBackend categorizer_backend = CategorizerBackend::kKMeans;
  ConfigFilterOptions filter;
  ForecasterOptions forecaster;
  /// Placement search backend + budget for step 1b (Appendix A.2). The
  /// default (kEnumerate) keeps the historical bitwise behavior; kAnneal /
  /// kGreedy trade exhaustive enumeration for budgeted local search (the
  /// `sky offline --search` flag maps here). The options' pool field, when
  /// unset, is filled with the offline phase's own pool.
  PlacementSearchOptions placement_search;
  /// Set false to skip forecaster training (benches that bring their own).
  bool train_forecaster = true;
  uint64_t seed = 81;
  /// Worker threads the offline steps fan out on: 0 picks the hardware
  /// concurrency, 1 runs fully serial. The resulting OfflineModel is
  /// bit-identical for every thread count (per-index RNG forks, ordered
  /// result collection).
  size_t num_threads = 0;
  /// Reuse an existing pool instead of creating one (overrides num_threads).
  dag::ThreadPool* pool = nullptr;
};

/// Runs the complete offline preparation phase of §3 on the given workload
/// and provisioning: filter knob configurations (A.1), profile and filter
/// task placements (A.2), build content categories (§3.2), create the
/// forecast training data and train the model (§3.3 / Appendix H).
Result<OfflineModel> RunOfflinePhase(const Workload& workload,
                                     const sim::ClusterSpec& cluster,
                                     const sim::CostModel& cost_model,
                                     const OfflineOptions& options = {});

/// Classifies every training segment with the cheapest configuration's
/// measured quality (Appendix H: the unlabeled data is processed with k- and
/// categorized through the switcher's standard partial classification).
std::vector<size_t> BuildTrainCategorySequence(
    const Workload& workload, const std::vector<KnobConfig>& configs,
    const ContentCategories& categories, double segment_seconds,
    SimTime horizon, uint64_t seed, dag::ThreadPool* pool = nullptr);

/// True when two offline models are bit-identical on every deterministic
/// field: configs, full placement profiles, category centers, the training
/// sequence, and the trained forecaster's network parameters (only the step
/// runtimes are excluded — wall times always differ). The batched trainer's
/// fixed chunk geometry makes even the forecaster weights independent of
/// the thread count, so the comparison can afford to be bitwise. The
/// contract behind OfflineOptions::num_threads, shared by
/// tests/offline_determinism_test.cc and bench_table3_offline_runtime.
bool OfflineModelsIdentical(const OfflineModel& a, const OfflineModel& b);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_OFFLINE_H_
