#ifndef SKYSCRAPER_CORE_ENGINE_H_
#define SKYSCRAPER_CORE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/offline.h"
#include "core/planner.h"
#include "core/switcher.h"
#include "core/workload.h"
#include "sim/buffer.h"
#include "sim/cost_model.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::core {

struct EngineOptions {
  /// Length of the ingested live stream.
  SimTime duration = Days(8);
  /// Knob-planner period / forecast horizon (§4.1: "every couple of days").
  SimTime plan_interval = Days(2);
  /// Cloud credits granted per planned interval, USD. 0 disables bursting
  /// economically even when enable_cloud is true.
  double cloud_budget_usd_per_interval = 0.0;
  uint64_t buffer_bytes = 4ull << 30;  ///< 4 GB, as in Fig. 3
  bool enable_cloud = true;
  bool enable_buffer = true;
  /// When > 0, overrides the planner budget (cores + cloud credits) with a
  /// pure work budget in core-seconds per video-second — the "computation
  /// budget" abstraction of §2.2 / Appendix B used by the work-quality
  /// sweeps (Figs. 6/8/10/12 and 16).
  double work_budget_override = 0.0;
  /// Which solver runs the knob-planning program at each plan boundary.
  /// kStructured (default) is the exact O(n log n) MCKP solver; kSimplex is
  /// the dense-tableau reference oracle kept for A/B comparison.
  PlannerBackend planner_backend = PlannerBackend::kStructured;

  // --- Microbenchmark toggles (all default off) ---
  /// Replace the forecaster output with the realized future distribution
  /// ("Ground truth" in Fig. 14).
  bool use_ground_truth_forecast = false;
  /// Classify content with the full noise-free quality vector ("Ground
  /// truth" in Fig. 15).
  bool use_ground_truth_categories = false;
  /// Classify with the current segment's (not the previous segment's)
  /// reported quality ("No Type-B errors" in Fig. 15).
  bool eliminate_type_b_errors = false;
  /// Fine-tune the forecaster online at each plan boundary (§3.3).
  bool online_forecaster_updates = true;

  bool record_trace = false;
  double trace_resolution_s = 300.0;
  uint64_t seed = 71;
};

/// One sample of the Fig. 3-style time series.
struct TracePoint {
  SimTime t = 0.0;
  double quality = 0.0;               ///< true quality of the active config
  double work_core_s_per_s = 0.0;     ///< instantaneous workload
  double buffer_bytes = 0.0;
  double cloud_usd_cumulative = 0.0;
  double cloud_usd_planned = 0.0;     ///< planned spend up to t
  size_t config_idx = 0;
  size_t category = 0;
};

struct EngineResult {
  double total_quality = 0.0;  ///< sum of per-segment true quality
  double mean_quality = 0.0;
  size_t segments = 0;
  double work_core_seconds = 0.0;    ///< total induced work, cost(k) basis
  double onprem_core_seconds = 0.0;  ///< executed on the local server
  double cloud_usd = 0.0;
  uint64_t buffer_high_water_bytes = 0;
  size_t overflow_events = 0;  ///< hard faults (never for valid provisioning)
  size_t switch_count = 0;     ///< configuration changes
  size_t degraded_count = 0;   ///< buffer-forced degradations
  // Switcher accuracy accounting (§5.6).
  size_t misclassified = 0;
  size_t type_a_errors = 0;  ///< one-dimensional-classification errors
  size_t type_b_errors = 0;  ///< timing-mismatch errors
  std::vector<TracePoint> trace;

  double MisclassificationRate() const {
    return segments == 0
               ? 0.0
               : static_cast<double>(misclassified) /
                     static_cast<double>(segments);
  }
};

/// The online ingestion engine (§4): advances a virtual clock in
/// segment-sized steps, runs the knob planner every plan_interval and the
/// knob switcher every segment, charges cloud credits, and accounts for the
/// buffer. `start_time` offsets into the content process — run it after the
/// offline training horizon so train and test data do not overlap.
class IngestionEngine {
 public:
  IngestionEngine(const Workload* workload, const OfflineModel* model,
                  const sim::ClusterSpec& cluster,
                  const sim::CostModel* cost_model, EngineOptions options);

  Result<EngineResult> Run(SimTime start_time);

 private:
  /// Realized category distribution over the plan interval starting at
  /// global segment `first_segment_index`, using ground-truth classification
  /// (for the Fig. 14 baseline), written into `out`. Takes the integer index
  /// rather than a time so the lookahead walks exactly the segments the
  /// ingest loop will visit.
  void GroundTruthForecastInto(int64_t first_segment_index,
                               std::vector<double>* out) const;

  /// Ground truth for one stream segment: the noise-free quality vector and
  /// its full classification. Memoized per segment index so the forecast
  /// lookahead, ground-truth categorization, and §5.6 accuracy accounting
  /// share one computation instead of up to three.
  struct SegmentTruth {
    int64_t segment_index = -1;  ///< ring-slot tag; -1 marks an empty slot
    std::vector<double> quals;
    size_t category = 0;
  };
  const SegmentTruth& CachedTruth(int64_t segment_index) const;

  /// Builds a plan for the interval starting at global segment
  /// `first_segment_index`, falling back to an all-cheapest plan if the LP
  /// is infeasible. `forecaster` is the engine's own (online fine-tuned)
  /// copy; may be null.
  Result<KnobPlan> MakePlan(int64_t first_segment_index,
                            const std::vector<size_t>& history,
                            const Forecaster* forecaster) const;

  const Workload* workload_;
  const OfflineModel* model_;
  sim::ClusterSpec cluster_;
  const sim::CostModel* cost_model_;
  EngineOptions options_;
  /// Truth memo as a ring buffer sized to the plan interval (slot =
  /// segment_index % size): the ground-truth-forecast lookahead fills one
  /// interval's slots at the plan boundary and the ingest loop reads them
  /// back, so a live entry is never evicted; slots (and their quality
  /// vectors) are overwritten in place the next interval — no hashing, no
  /// rehash growth, no per-segment allocation.
  mutable std::vector<SegmentTruth> truth_ring_;
  /// Buffers reused across plan boundaries so MakePlan allocates nothing at
  /// steady state: forecast/feature/histogram vectors, the loop-invariant
  /// config costs, and the planner's coefficient + solver workspace.
  struct PlanScratch {
    std::vector<double> forecast;
    std::vector<double> features;
    std::vector<double> costs;
    PlanWorkspace workspace;
  };
  mutable PlanScratch scratch_;
};

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_ENGINE_H_
