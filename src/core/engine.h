#ifndef SKYSCRAPER_CORE_ENGINE_H_
#define SKYSCRAPER_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/offline.h"
#include "core/planner.h"
#include "ml/kernels.h"
#include "core/switcher.h"
#include "core/workload.h"
#include "sim/buffer.h"
#include "sim/cost_model.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace sky::sim {
class FaultInjector;
}  // namespace sky::sim

namespace sky::core {

/// Buffer capacity used when EngineOptions::buffer_bytes is left unset
/// (4 GB, as in Fig. 3).
inline constexpr uint64_t kDefaultBufferBytes = 4ull << 30;

struct EngineOptions {
  /// Length of the ingested live stream.
  SimTime duration = Days(8);
  /// Knob-planner period / forecast horizon (§4.1: "every couple of days").
  SimTime plan_interval = Days(2);
  /// Cloud credits granted per planned interval, USD. Unset means "no
  /// opinion": the engine treats it as 0 and api::Skyscraper fills in the
  /// provisioned Resources value. An explicitly engaged 0.0 disables
  /// bursting economically even when enable_cloud is true — and is never
  /// silently overridden by the facade.
  std::optional<double> cloud_budget_usd_per_interval;
  /// Video buffer capacity. Unset means "no opinion": the engine falls back
  /// to kDefaultBufferBytes and api::Skyscraper fills in the provisioned
  /// Resources value; an explicitly set value always wins.
  std::optional<uint64_t> buffer_bytes;
  bool enable_cloud = true;
  bool enable_buffer = true;
  /// When > 0, overrides the planner budget (cores + cloud credits) with a
  /// pure work budget in core-seconds per video-second — the "computation
  /// budget" abstraction of §2.2 / Appendix B used by the work-quality
  /// sweeps (Figs. 6/8/10/12 and 16).
  double work_budget_override = 0.0;
  /// Which solver runs the knob-planning program at each plan boundary.
  /// kStructured (default) is the exact O(n log n) MCKP solver; kSimplex is
  /// the dense-tableau reference oracle kept for A/B comparison.
  PlannerBackend planner_backend = PlannerBackend::kStructured;
  /// Arithmetic precision of the boundary forecast (§3.3's inference step
  /// only — training, online fine-tuning and the planner stay f64). kF64
  /// (default) keeps the engine bitwise-reproducible against every prior
  /// release; kF32 runs the forecaster's reduced-precision path (f32 weight
  /// mirror + SIMD f32 matvec), trading bitwise reproducibility for
  /// inference speed within the tolerance documented in docs/precision.md.
  ml::Precision forecast_precision = ml::Precision::kF64;

  // --- Microbenchmark toggles (all default off) ---
  /// Replace the forecaster output with the realized future distribution
  /// ("Ground truth" in Fig. 14).
  bool use_ground_truth_forecast = false;
  /// Classify content with the full noise-free quality vector ("Ground
  /// truth" in Fig. 15).
  bool use_ground_truth_categories = false;
  /// Classify with the current segment's (not the previous segment's)
  /// reported quality ("No Type-B errors" in Fig. 15).
  bool eliminate_type_b_errors = false;
  /// Fine-tune the forecaster online at each plan boundary (§3.3).
  bool online_forecaster_updates = true;

  bool record_trace = false;
  double trace_resolution_s = 300.0;
  uint64_t seed = 71;

  /// Deterministic fault schedule this run executes under (non-owning; must
  /// outlive the engine). Null — the default — runs fault-free and leaves
  /// every code path bitwise identical to an engine built before faults
  /// existed. The injector is external-world state, not run state: it is
  /// deliberately NOT part of Checkpoint()/Restore(), so a restored run
  /// replays under whatever fault reality the supervisor currently has
  /// installed (one-shot events stay consumed across a restore, which is
  /// what lets a replayed interval get past the fault that killed it).
  sim::FaultInjector* fault_injector = nullptr;
};

/// One sample of the Fig. 3-style time series.
struct TracePoint {
  SimTime t = 0.0;
  double quality = 0.0;               ///< true quality of the active config
  double work_core_s_per_s = 0.0;     ///< instantaneous workload
  double buffer_bytes = 0.0;
  double cloud_usd_cumulative = 0.0;
  double cloud_usd_planned = 0.0;     ///< planned spend up to t
  size_t config_idx = 0;
  size_t category = 0;
};

struct EngineResult {
  double total_quality = 0.0;  ///< sum of per-segment true quality
  double mean_quality = 0.0;
  size_t segments = 0;
  double work_core_seconds = 0.0;    ///< total induced work, cost(k) basis
  double onprem_core_seconds = 0.0;  ///< executed on the local server
  double cloud_usd = 0.0;
  uint64_t buffer_high_water_bytes = 0;
  size_t overflow_events = 0;  ///< hard faults (never for valid provisioning)
  size_t switch_count = 0;     ///< configuration changes
  size_t degraded_count = 0;   ///< buffer-forced degradations
  // Switcher accuracy accounting (§5.6).
  size_t misclassified = 0;
  size_t type_a_errors = 0;  ///< one-dimensional-classification errors
  size_t type_b_errors = 0;  ///< timing-mismatch errors
  // Fault accounting (sim::FaultInjector). All zero in a fault-free run;
  // nothing a fault does is silent.
  size_t cloud_failures = 0;  ///< failed cloud upload attempts observed
  size_t cloud_retries = 0;   ///< retried attempts that eventually succeeded
  size_t cloud_giveups = 0;   ///< segments degraded on-prem: retry budget out
  double fault_backoff_s = 0.0;   ///< total retry backoff charged to the lag
  size_t outage_segments = 0;     ///< segments stepped inside an outage window
  size_t outage_intervals = 0;    ///< plan boundaries forced on-prem-only
  size_t udf_stall_segments = 0;  ///< segments slowed by a UDF stall window
  std::vector<TracePoint> trace;

  double MisclassificationRate() const {
    return segments == 0
               ? 0.0
               : static_cast<double>(misclassified) /
                     static_cast<double>(segments);
  }
};

/// True when two engine results are bitwise identical on every field,
/// including the full trace. The parity handle behind the stepped-vs-batch
/// and StreamSet-vs-RunStreamEngines guarantees.
bool EngineResultsIdentical(const EngineResult& a, const EngineResult& b);

/// Every piece of per-run mutable state of the ingestion engine, extracted
/// so a run can be stepped, inspected, checkpointed and restored. Treat the
/// contents as engine-internal: the struct is exposed (by value) only as the
/// opaque payload of IngestionEngine::Checkpoint()/Restore().
///
/// The base holds the members with default-generated copy/move; IngestState
/// wraps them to fix up the one internal pointer (the switcher follows the
/// plan member by address) after every copy or move, so snapshots are
/// self-contained values.
struct IngestStateData {
  IngestStateData(const ContentCategories* categories,
                  const std::vector<ConfigProfile>* profiles,
                  uint64_t buffer_capacity_bytes)
      : noise(0), switcher(categories, profiles),
        buffer(buffer_capacity_bytes) {}

  // --- Run geometry, fixed at Start ---
  SimTime start_time = 0.0;
  int64_t first_segment = 0;      ///< global index of the first segment
  int64_t n_segments = 0;         ///< total segments this run will ingest
  int64_t segs_per_interval = 0;  ///< plan-interval length in segments
  size_t history_window = 0;      ///< rolling history bound (see Start)

  // --- Progress ---
  int64_t next_index = 0;    ///< run-local index of the next segment
  size_t interval_index = 0; ///< completed plan boundaries

  // --- Stochastic + learned state ---
  Rng noise;  ///< measurement-noise stream ("measurement" fork of the seed)
  /// The engine's own online fine-tuned forecaster copy (§3.3); the offline
  /// model's stays untouched so runs are independent.
  std::optional<Forecaster> forecaster;

  // --- Decision state ---
  KnobSwitcher switcher;
  KnobPlan plan;                   ///< plan of the current interval
  bool boundary_prepared = false;  ///< PrepareBoundary ran this boundary
  bool boundary_installed = false; ///< InstallPlan ran this boundary
  std::vector<double> boundary_forecast;  ///< forecast behind `plan`
  std::vector<double> plan_features;  ///< features the plan was made from
  std::vector<double> realized;       ///< scratch: realized interval histogram
  std::vector<size_t> history;        ///< rolling category history
  size_t current_config = 0;
  double last_measured = 0.0;

  // --- Resource accounting ---
  double lag_s = 0.0;
  double buffered_bytes = 0.0;
  sim::VideoBuffer buffer;
  double credits_remaining = 0.0;
  double planned_usd_per_interval = 0.0;

  // --- Output so far ---
  EngineResult result;  ///< partial result; mean_quality kept current
  double next_trace_t = 0.0;
};

struct IngestState : IngestStateData {
  using IngestStateData::IngestStateData;
  IngestState(const IngestState& o) : IngestStateData(o) { RebindPlan(); }
  IngestState(IngestState&& o) noexcept : IngestStateData(std::move(o)) {
    RebindPlan();
  }
  IngestState& operator=(const IngestState& o) {
    IngestStateData::operator=(o);
    RebindPlan();
    return *this;
  }
  IngestState& operator=(IngestState&& o) noexcept {
    IngestStateData::operator=(std::move(o));
    RebindPlan();
    return *this;
  }

 private:
  /// After a memberwise copy/move the switcher still points at the source
  /// state's plan object; re-point it at our own copy (usage histograms are
  /// preserved — this is a relocation, not a new interval).
  void RebindPlan() {
    if (switcher.plan() != nullptr) switcher.RebindPlan(&plan);
  }
};

/// The online ingestion engine (§4): advances a virtual clock in
/// segment-sized steps, runs the knob planner every plan_interval and the
/// knob switcher every segment, charges cloud credits, and accounts for the
/// buffer. `start_time` offsets into the content process — run it after the
/// offline training horizon so train and test data do not overlap.
///
/// The engine is an explicit state machine. Drive it either as a batch:
///
///   auto result = engine.Run(start);             // Start + Step to the end
///
/// or incrementally, with mid-run inspection and checkpoint/restore:
///
///   engine.Start(start);
///   while (!engine.Done()) {
///     engine.Step();                             // one segment
///     inspect(engine.partial_result(), engine.current_plan(), ...);
///   }
///
/// Both drive the identical code path: a stepped run is bitwise-equal to
/// Run on every EngineResult field including the trace.
class IngestionEngine {
 public:
  IngestionEngine(const Workload* workload, const OfflineModel* model,
                  const sim::ClusterSpec& cluster,
                  const sim::CostModel* cost_model, EngineOptions options);

  /// Batch convenience wrapper: Start, Step until Done, return the result.
  Result<EngineResult> Run(SimTime start_time);

  // --- Steppable session surface ---

  /// Begins (or restarts) a run at `start_time`. Any previous session state
  /// is discarded.
  Status Start(SimTime start_time);

  /// True once Start/Restore (or a Run) has created session state; stays
  /// true after completion so the finished run remains inspectable.
  bool started() const { return state_ != nullptr; }

  /// True when every segment of the run has been ingested.
  bool Done() const {
    return state_ != nullptr && state_->next_index >= state_->n_segments;
  }

  /// Ingests one segment (running the plan boundary first when due).
  Status Step();

  /// Steps until the virtual clock reaches `t` (or the run completes).
  Status RunUntil(SimTime t);

  /// Steps through the remainder of the current plan interval: to the next
  /// plan boundary, or to completion. The unit of work a StreamSet worker
  /// runs between boundary barriers — when the boundary this engine sits on
  /// was already planned (InstallPlan), the whole interval runs without the
  /// engine ever self-planning.
  Status RunInterval();

  /// Arrival time of the next segment to ingest (== start_time + elapsed).
  SimTime CurrentTime() const;

  /// The result accumulated so far (mean_quality kept current, trace-so-far
  /// included). At Done() this IS the final result — a completed Run()
  /// leaves it (and the whole session) inspectable until the next Start.
  /// Empty before the first Start.
  const EngineResult& partial_result() const {
    static const EngineResult kEmpty;
    return state_ == nullptr ? kEmpty : state_->result;
  }

  /// The plan the switcher currently follows; null before the first boundary.
  const KnobPlan* current_plan() const {
    return state_ == nullptr ? nullptr : state_->switcher.plan();
  }

  /// Bytes of arrived-but-unprocessed video currently buffered.
  double buffer_occupancy_bytes() const {
    return state_ == nullptr ? 0.0 : state_->buffered_bytes;
  }

  /// Processing backlog behind the live stream, seconds.
  double lag_seconds() const {
    return state_ == nullptr ? 0.0 : state_->lag_s;
  }

  /// Plan-interval length in segments (0 before the first Start).
  int64_t segments_per_interval() const {
    return state_ == nullptr ? 0 : state_->segs_per_interval;
  }

  /// Run-local index of the next segment to ingest (0 before the first
  /// Start). Supervisors drive AdvanceStream-style loops off this.
  int64_t next_segment_index() const {
    return state_ == nullptr ? 0 : state_->next_index;
  }

  /// True when a fault injector is installed and reports a cloud outage at
  /// the engine's current virtual time. Read by the planner budget (no cloud
  /// term while the cloud is down) and by StreamSet's pooled-credit
  /// accounting.
  bool CloudOutageNow() const;

  // --- Checkpoint / restore ---

  /// Value snapshot of the full session state. Restoring it (into this
  /// engine or another engine over the SAME workload/model/options) resumes
  /// the run exactly: the continuation is bitwise-identical to never having
  /// stopped.
  Result<IngestState> Checkpoint() const;
  Status Restore(const IngestState& snapshot);

  // --- Plan-boundary hooks (used by StreamSet for joint planning) ---

  /// True when the next Step() would run the knob planner (and the plan for
  /// that boundary has not been installed yet).
  bool AtPlanBoundary() const;

  /// Runs the boundary-side model maintenance exactly as a self-planning
  /// Step() would: the online forecaster fine-tune on the just-realized
  /// interval (§3.3), then the forecast for the coming interval (readable
  /// via boundary_forecast()). Idempotent within one boundary.
  Status PrepareBoundary();

  /// The forecast computed by PrepareBoundary for the upcoming interval
  /// (empty before the first prepared boundary).
  const std::vector<double>& boundary_forecast() const {
    static const std::vector<double> kEmpty;
    return state_ == nullptr ? kEmpty : state_->boundary_forecast;
  }

  /// cost(k) per filtered configuration, core-seconds per video-second.
  const std::vector<double>& config_costs() const;

  /// This stream's own planning budget: cores plus cloud credits (or the
  /// work_budget_override), core-seconds per video-second.
  double PlanBudgetCoreSPerVideoS() const;

  /// Installs `plan` for the current boundary and completes the boundary
  /// bookkeeping (switcher reset, feature capture for the next fine-tune,
  /// cloud-credit refill, interval counter). Called with a self-computed
  /// plan by Step(), or with a jointly-computed plan by StreamSet.
  ///
  /// `cloud_credits_usd` overrides THIS interval's cloud-credit refill:
  /// joint multi-stream planning pools every stream's credits and
  /// re-divides them to follow the joint plan, so a stream may receive
  /// more (or less) than its own EngineOptions budget. Unset uses the
  /// stream's own budget — the single-stream behavior.
  Status InstallPlan(KnobPlan plan,
                     std::optional<double> cloud_credits_usd = std::nullopt);

  /// The all-cheapest degradation plan used when the planning program is
  /// infeasible under the budget (the switcher's buffer guard does the
  /// rest).
  KnobPlan FallbackPlan(const std::vector<double>& forecast) const;

  /// Engine options with unset fields resolved to engine defaults.
  const EngineOptions& options() const { return options_; }
  const OfflineModel& model() const { return *model_; }

  /// Live reconfiguration: both fields below are read only when a plan is
  /// installed at a boundary (credit refill / budget derivation), so
  /// changing them mid-interval is safe and takes effect at the NEXT plan
  /// boundary — never retroactively. This is the per-stream knob surface
  /// `sky serve` exposes to connected clients.
  void set_cloud_budget_usd_per_interval(double usd) {
    options_.cloud_budget_usd_per_interval = usd;
  }
  void set_work_budget_override(double core_s_per_video_s) {
    options_.work_budget_override = core_s_per_video_s;
  }

 private:
  /// Realized category distribution over the plan interval starting at
  /// global segment `first_segment_index`, using ground-truth classification
  /// (for the Fig. 14 baseline), written into `out`. Takes the integer index
  /// rather than a time so the lookahead walks exactly the segments the
  /// ingest loop will visit.
  void GroundTruthForecastInto(int64_t first_segment_index,
                               std::vector<double>* out) const;

  /// Ground truth for one stream segment: the noise-free quality vector and
  /// its full classification. Memoized per segment index so the forecast
  /// lookahead, ground-truth categorization, and §5.6 accuracy accounting
  /// share one computation instead of up to three.
  struct SegmentTruth {
    int64_t segment_index = -1;  ///< ring-slot tag; -1 marks an empty slot
    std::vector<double> quals;
    size_t category = 0;
  };
  const SegmentTruth& CachedTruth(int64_t segment_index) const;

  /// The forecast the planner will see at the current boundary (ground
  /// truth, forecaster, recency histogram, or uniform), written into `out`.
  void ComputeBoundaryForecastInto(std::vector<double>* out);

  /// Solves the planning program for the prepared boundary forecast,
  /// degrading to FallbackPlan when the budget fits no configuration.
  Result<KnobPlan> PlanFromPreparedForecast();

  /// (Re)sizes the truth memo ring for `segs_per_interval` and invalidates
  /// the slot tags.
  void ResetTruthRing(int64_t segs_per_interval);

  const Workload* workload_;
  const OfflineModel* model_;
  sim::ClusterSpec cluster_;
  const sim::CostModel* cost_model_;
  EngineOptions options_;
  /// All per-run mutable state; null before the first Start.
  std::unique_ptr<IngestState> state_;
  /// Truth memo as a ring buffer sized to the plan interval (slot =
  /// segment_index % size): the ground-truth-forecast lookahead fills one
  /// interval's slots at the plan boundary and the ingest loop reads them
  /// back, so a live entry is never evicted; slots (and their quality
  /// vectors) are overwritten in place the next interval — no hashing, no
  /// rehash growth, no per-segment allocation. Purely a memo of a
  /// deterministic function of the segment index, so it lives outside
  /// IngestState: checkpoints stay small and restores just refill it.
  mutable std::vector<SegmentTruth> truth_ring_;
  /// Buffers reused across plan boundaries so planning allocates nothing at
  /// steady state: forecaster feature scratch, the loop-invariant config
  /// costs, and the planner's coefficient + solver workspace. Holds no
  /// run-defining state (everything here is recomputed or invariant), so it
  /// too stays outside IngestState.
  struct PlanScratch {
    std::vector<double> features;
    std::vector<double> costs;
    PlanWorkspace workspace;
  };
  mutable PlanScratch scratch_;
};

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_ENGINE_H_
