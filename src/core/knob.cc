#include "core/knob.h"

#include <sstream>

namespace sky::core {

Status KnobSpace::AddKnob(std::string name, std::vector<double> values) {
  if (values.empty()) {
    return Status::InvalidArgument("knob domain must be non-empty: " + name);
  }
  for (const KnobDef& k : knobs_) {
    if (k.name == name) {
      return Status::InvalidArgument("duplicate knob name: " + name);
    }
  }
  knobs_.push_back(KnobDef{std::move(name), std::move(values)});
  return Status::Ok();
}

Result<size_t> KnobSpace::KnobIndex(std::string_view name) const {
  for (size_t i = 0; i < knobs_.size(); ++i) {
    if (knobs_[i].name == name) return i;
  }
  return Status::NotFound("no knob named " + std::string(name));
}

size_t KnobSpace::NumConfigs() const {
  size_t n = 1;
  for (const KnobDef& k : knobs_) n *= k.values.size();
  return knobs_.empty() ? 0 : n;
}

size_t KnobSpace::ConfigToId(const KnobConfig& config) const {
  size_t id = 0;
  for (size_t i = 0; i < knobs_.size(); ++i) {
    id = id * knobs_[i].values.size() + config[i];
  }
  return id;
}

KnobConfig KnobSpace::IdToConfig(size_t id) const {
  KnobConfig config(knobs_.size(), 0);
  for (size_t i = knobs_.size(); i-- > 0;) {
    size_t radix = knobs_[i].values.size();
    config[i] = id % radix;
    id /= radix;
  }
  return config;
}

double KnobSpace::Value(const KnobConfig& config, size_t knob_idx) const {
  return knobs_[knob_idx].values[config[knob_idx]];
}

Result<double> KnobSpace::ValueByName(const KnobConfig& config,
                                      std::string_view name) const {
  SKY_ASSIGN_OR_RETURN(size_t idx, KnobIndex(name));
  if (config.size() != knobs_.size() || config[idx] >= knobs_[idx].values.size()) {
    return Status::InvalidArgument("malformed knob configuration");
  }
  return knobs_[idx].values[config[idx]];
}

std::vector<KnobConfig> KnobSpace::AllConfigs() const {
  std::vector<KnobConfig> out;
  size_t n = NumConfigs();
  out.reserve(n);
  for (size_t id = 0; id < n; ++id) out.push_back(IdToConfig(id));
  return out;
}

std::vector<KnobConfig> KnobSpace::Neighbors(const KnobConfig& config) const {
  std::vector<KnobConfig> out;
  for (size_t i = 0; i < knobs_.size(); ++i) {
    if (config[i] + 1 < knobs_[i].values.size()) {
      KnobConfig up = config;
      ++up[i];
      out.push_back(std::move(up));
    }
    if (config[i] > 0) {
      KnobConfig down = config;
      --down[i];
      out.push_back(std::move(down));
    }
  }
  return out;
}

std::string KnobSpace::ToString(const KnobConfig& config) const {
  std::ostringstream os;
  for (size_t i = 0; i < knobs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << knobs_[i].name << "=" << knobs_[i].values[config[i]];
  }
  return os.str();
}

Status KnobSpace::ValidateConfig(const KnobConfig& config) const {
  if (config.size() != knobs_.size()) {
    return Status::InvalidArgument("config arity != number of knobs");
  }
  for (size_t i = 0; i < knobs_.size(); ++i) {
    if (config[i] >= knobs_[i].values.size()) {
      return Status::OutOfRange("knob value index out of domain: " +
                                knobs_[i].name);
    }
  }
  return Status::Ok();
}

}  // namespace sky::core
