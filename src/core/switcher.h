#ifndef SKYSCRAPER_CORE_SWITCHER_H_
#define SKYSCRAPER_CORE_SWITCHER_H_

#include <cstdint>
#include <vector>

#include "core/planner.h"
#include "core/profiler.h"
#include "util/result.h"

namespace sky::core {

/// Everything the switcher needs to know about the current instant.
struct SwitchContext {
  /// Index (into the filtered config list) of the currently running config.
  size_t current_config_idx = 0;
  /// Quality the user code reported for the segment just processed.
  double measured_quality = 1.0;
  /// Processing backlog: how far the processor's completion time lags behind
  /// the stream arrival time, in seconds.
  double lag_seconds = 0.0;
  double segment_seconds = 2.0;
  /// Byte rate of the arriving stream: backlog *growth* is charged at this
  /// rate (already-buffered bytes keep their historical sizes).
  double bytes_per_video_second = 90e3;
  /// Bytes currently held in the buffer.
  double buffered_bytes = 0.0;
  uint64_t buffer_capacity_bytes = 4ull << 30;
  /// Cloud credits still available in the current planned interval.
  double cloud_credits_remaining_usd = 0.0;
  bool allow_cloud = true;
  bool allow_buffer = true;
  /// Runtime multiplier applied to placements that use cloud nodes —
  /// elevated network latency injected by sim::FaultInjector. Exactly 1.0
  /// when no fault is active; the feasibility prediction sees the same
  /// slowdown the executed segment will.
  double cloud_runtime_multiplier = 1.0;
  /// When >= 0, bypasses Eq. 5 and uses this category directly (the
  /// ground-truth baselines of §5.6 / Fig. 15).
  int64_t category_override = -1;
};

struct SwitchDecision {
  size_t config_idx = 0;
  size_t placement_idx = 0;
  /// Content category the current content was classified into (step 1).
  size_t category = 0;
  /// The configuration Eq. 6 wanted before any buffer-driven degradation.
  size_t planned_config_idx = 0;
  /// True if the buffer constraint forced a cheaper configuration.
  bool degraded = false;
  /// Number of (config, placement) pairs examined — the quantity the
  /// worst-case overhead analysis of Fig. 13 is linear in.
  size_t pairs_scanned = 0;
};

/// The reactive knob switcher of §4.2. Each decision:
///  1. classifies the current content category from the reported quality of
///     the current configuration only (Eq. 5);
///  2. looks the category up in the knob plan;
///  3. picks the configuration that brings actual usage closest to the
///     planned histogram (Eq. 6) and the cheapest placement that will not
///     overflow the buffer, recursively degrading to the next less
///     qualitative configuration if no placement fits.
class KnobSwitcher {
 public:
  /// `categories` and `profiles` must outlive the switcher. The i-th profile
  /// corresponds to quality-vector dimension i of the categories.
  KnobSwitcher(const ContentCategories* categories,
               const std::vector<ConfigProfile>* profiles);

  /// Installs a new plan (the planner runs every few days). Usage
  /// histograms reset so the new interval adheres to the new plan.
  void SetPlan(const KnobPlan* plan);

  /// The currently installed plan (null before the first SetPlan).
  const KnobPlan* plan() const { return plan_; }

  /// Re-points the installed plan WITHOUT resetting the usage histograms.
  /// Only for relocating the plan object the switcher already follows —
  /// engine state snapshots copy the plan by value and must rebind the
  /// switcher to the copy mid-interval, preserving Eq. 6's alpha-hat state.
  void RebindPlan(const KnobPlan* plan) { plan_ = plan; }

  Result<SwitchDecision> Decide(const SwitchContext& ctx) const;

  /// Records that `config_idx` was actually used for content of `category`
  /// (updates the alpha-hat histograms of Eq. 6).
  void RecordUsage(size_t category, size_t config_idx);

  /// Configuration indices ordered from most to least qualitative (mean
  /// category-center quality) — the degradation order of §4.2.
  const std::vector<size_t>& quality_order() const { return quality_order_; }

  /// Eq. 6 usage state, exposed so checkpoints can persist it:
  /// usage_counts()[c][k] counts segments of category c run with config k.
  const std::vector<std::vector<double>>& usage_counts() const {
    return usage_counts_;
  }
  const std::vector<double>& usage_totals() const { return usage_totals_; }

  /// Reinstates previously captured usage histograms (checkpoint restore).
  /// Shapes must match the (categories, profiles) this switcher was built
  /// with; fails with kInvalidArgument otherwise.
  Status RestoreUsage(const std::vector<std::vector<double>>& counts,
                      const std::vector<double>& totals);

 private:
  /// True if placement `p` of config `k` keeps the buffer within capacity
  /// and within remaining cloud credits.
  bool PlacementFeasible(const PlacementProfile& p,
                         const SwitchContext& ctx) const;

  const ContentCategories* categories_;
  const std::vector<ConfigProfile>* profiles_;
  const KnobPlan* plan_ = nullptr;
  std::vector<size_t> quality_order_;
  /// usage_counts_[c][k]: times config k processed content of category c.
  std::vector<std::vector<double>> usage_counts_;
  std::vector<double> usage_totals_;
};

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_SWITCHER_H_
