#include "core/switcher.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sky::core {

KnobSwitcher::KnobSwitcher(const ContentCategories* categories,
                           const std::vector<ConfigProfile>* profiles)
    : categories_(categories), profiles_(profiles) {
  size_t num_k = profiles_->size();
  size_t num_c = categories_->NumCategories();
  usage_counts_.assign(num_c, std::vector<double>(num_k, 0.0));
  usage_totals_.assign(num_c, 0.0);

  // Degradation order: configurations sorted by mean category-center
  // quality, best first.
  std::vector<double> mean_quality(num_k, 0.0);
  for (size_t k = 0; k < num_k; ++k) {
    for (size_t c = 0; c < num_c; ++c) {
      mean_quality[k] += categories_->CenterQuality(c, k);
    }
    mean_quality[k] /= static_cast<double>(num_c);
  }
  quality_order_.resize(num_k);
  std::iota(quality_order_.begin(), quality_order_.end(), 0);
  std::sort(quality_order_.begin(), quality_order_.end(),
            [&mean_quality](size_t a, size_t b) {
              return mean_quality[a] > mean_quality[b];
            });
}

void KnobSwitcher::SetPlan(const KnobPlan* plan) {
  plan_ = plan;
  for (auto& row : usage_counts_) std::fill(row.begin(), row.end(), 0.0);
  std::fill(usage_totals_.begin(), usage_totals_.end(), 0.0);
}

void KnobSwitcher::RecordUsage(size_t category, size_t config_idx) {
  if (category >= usage_counts_.size()) return;
  if (config_idx >= usage_counts_[category].size()) return;
  usage_counts_[category][config_idx] += 1.0;
  usage_totals_[category] += 1.0;
}

namespace {

// Placement runtime as the current instant will actually experience it:
// cloud placements are slowed by any injected latency fault. The exact
// `!= 1.0` guard keeps the fault-free arithmetic bitwise untouched.
double EffectiveRuntimeS(const PlacementProfile& p, const SwitchContext& ctx) {
  if (ctx.cloud_runtime_multiplier != 1.0 && p.placement.NumCloudNodes() > 0) {
    return p.runtime_s * ctx.cloud_runtime_multiplier;
  }
  return p.runtime_s;
}

}  // namespace

Status KnobSwitcher::RestoreUsage(
    const std::vector<std::vector<double>>& counts,
    const std::vector<double>& totals) {
  if (counts.size() != usage_counts_.size() ||
      totals.size() != usage_totals_.size()) {
    return Status::InvalidArgument("usage histogram category count mismatch");
  }
  for (const auto& row : counts) {
    if (row.size() != profiles_->size()) {
      return Status::InvalidArgument("usage histogram config count mismatch");
    }
  }
  usage_counts_ = counts;
  usage_totals_ = totals;
  return Status::Ok();
}

bool KnobSwitcher::PlacementFeasible(const PlacementProfile& p,
                                     const SwitchContext& ctx) const {
  if (!ctx.allow_cloud && p.placement.NumCloudNodes() > 0) return false;
  if (p.cloud_usd > ctx.cloud_credits_remaining_usd + 1e-12) return false;
  // Predicted backlog after processing this segment with placement p. The
  // stream advances one segment while the processor spends its runtime;
  // backlog growth is charged at the current stream byte rate, shrinking
  // backlog only releases bytes (never overflows).
  double new_lag = std::max(
      0.0, ctx.lag_seconds + EffectiveRuntimeS(p, ctx) - ctx.segment_seconds);
  if (!ctx.allow_buffer && new_lag > 1e-9) return false;
  double predicted_bytes = ctx.buffered_bytes;
  if (new_lag > ctx.lag_seconds) {
    predicted_bytes +=
        (new_lag - ctx.lag_seconds) * ctx.bytes_per_video_second;
  }
  return predicted_bytes <= static_cast<double>(ctx.buffer_capacity_bytes);
}

Result<SwitchDecision> KnobSwitcher::Decide(const SwitchContext& ctx) const {
  if (plan_ == nullptr) {
    return Status::FailedPrecondition("no knob plan installed");
  }
  size_t num_k = profiles_->size();
  if (ctx.current_config_idx >= num_k) {
    return Status::OutOfRange("current config index out of range");
  }

  SwitchDecision decision;

  // Step 1 (Eq. 5): classify content from the current config's quality.
  if (ctx.category_override >= 0 &&
      static_cast<size_t>(ctx.category_override) <
          categories_->NumCategories()) {
    decision.category = static_cast<size_t>(ctx.category_override);
  } else {
    decision.category = categories_->ClassifyPartial(ctx.current_config_idx,
                                                     ctx.measured_quality);
  }

  // Step 2: look the category up in the plan.
  size_t c = decision.category;

  // Step 3 (Eq. 6): pick the configuration whose actual usage lags its
  // planned share the most.
  double total = usage_totals_[c];
  size_t planned = 0;
  double best_deficit = -std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < num_k; ++k) {
    double used = total > 0 ? usage_counts_[c][k] / total : 0.0;
    double deficit = plan_->alpha.At(c, k) - used;
    if (deficit > best_deficit) {
      best_deficit = deficit;
      planned = k;
    }
  }
  decision.planned_config_idx = planned;

  // Placement selection with the buffer guarantee: cheapest feasible
  // placement of the planned configuration; if none exists, degrade to the
  // next less qualitative configuration (recursively, §4.2).
  auto try_config = [&](size_t k) -> bool {
    const ConfigProfile& profile = (*profiles_)[k];
    for (size_t p = 0; p < profile.placements.size(); ++p) {
      ++decision.pairs_scanned;
      if (PlacementFeasible(profile.placements[p], ctx)) {
        decision.config_idx = k;
        decision.placement_idx = p;
        return true;
      }
    }
    return false;
  };

  if (try_config(planned)) return decision;

  decision.degraded = true;
  // Walk the quality order starting just below the planned configuration.
  auto it = std::find(quality_order_.begin(), quality_order_.end(), planned);
  for (auto next = it == quality_order_.end() ? quality_order_.begin()
                                              : std::next(it);
       next != quality_order_.end(); ++next) {
    if (try_config(*next)) return decision;
  }
  // Nothing below the planned config fits; scan everything from the top as
  // a last resort (covers plans whose "planned" config is already cheapest).
  for (size_t k : quality_order_) {
    if (k == planned) continue;
    if (try_config(k)) return decision;
  }

  // No configuration has any feasible placement: pick the globally fastest
  // pair. The engine treats the resulting overflow as a hard fault — this
  // is what Chameleon* hits and Skyscraper's provisioning rules prevent.
  double best_runtime = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < num_k; ++k) {
    const ConfigProfile& profile = (*profiles_)[k];
    for (size_t p = 0; p < profile.placements.size(); ++p) {
      bool cloud_ok = ctx.allow_cloud ||
                      profile.placements[p].placement.NumCloudNodes() == 0;
      if (!cloud_ok) continue;
      if (profile.placements[p].cloud_usd >
          ctx.cloud_credits_remaining_usd + 1e-12) {
        continue;
      }
      double runtime = EffectiveRuntimeS(profile.placements[p], ctx);
      if (runtime < best_runtime) {
        best_runtime = runtime;
        decision.config_idx = k;
        decision.placement_idx = p;
      }
    }
  }
  return decision;
}

}  // namespace sky::core
