#include "core/planner.h"

#include "lp/simplex.h"

namespace sky::core {

Result<KnobPlan> ComputeKnobPlan(const ContentCategories& categories,
                                 const std::vector<double>& forecast,
                                 const std::vector<double>& config_costs,
                                 double budget_core_s_per_video_s) {
  size_t num_c = categories.NumCategories();
  size_t num_k = categories.NumConfigs();
  if (forecast.size() != num_c) {
    return Status::InvalidArgument("forecast size != number of categories");
  }
  if (config_costs.size() != num_k) {
    return Status::InvalidArgument("cost vector size != number of configs");
  }
  if (budget_core_s_per_video_s <= 0) {
    return Status::InvalidArgument("budget must be positive");
  }

  // Variables alpha_{c,k} laid out row-major: index = c * num_k + k.
  lp::LinearProgram program;
  size_t n = num_c * num_k;
  program.objective.assign(n, 0.0);
  std::vector<double> budget_row(n, 0.0);
  for (size_t c = 0; c < num_c; ++c) {
    for (size_t k = 0; k < num_k; ++k) {
      size_t idx = c * num_k + k;
      program.objective[idx] = forecast[c] * categories.CenterQuality(c, k);
      budget_row[idx] = forecast[c] * config_costs[k];
    }
  }
  program.a_ub.push_back(std::move(budget_row));
  program.b_ub.push_back(budget_core_s_per_video_s);
  for (size_t c = 0; c < num_c; ++c) {
    std::vector<double> row(n, 0.0);
    for (size_t k = 0; k < num_k; ++k) row[c * num_k + k] = 1.0;
    program.a_eq.push_back(std::move(row));
    program.b_eq.push_back(1.0);
  }

  SKY_ASSIGN_OR_RETURN(lp::LpSolution solution, lp::SolveLp(program));
  if (solution.status == lp::LpStatus::kInfeasible) {
    return Status::ResourceExhausted(
        "knob plan infeasible: even the cheapest configurations exceed the "
        "budget");
  }
  if (solution.status == lp::LpStatus::kUnbounded) {
    return Status::Internal("knob-planning LP unbounded");
  }

  KnobPlan plan;
  plan.alpha = ml::Matrix(num_c, num_k, 0.0);
  plan.forecast = forecast;
  plan.expected_quality = solution.objective_value;
  for (size_t c = 0; c < num_c; ++c) {
    for (size_t k = 0; k < num_k; ++k) {
      double a = solution.x[c * num_k + k];
      plan.alpha.At(c, k) = a;
      plan.expected_work += a * forecast[c] * config_costs[k];
    }
  }
  return plan;
}

}  // namespace sky::core
