#include "core/planner.h"

#include <cmath>

namespace sky::core {

Result<KnobPlan> ComputeKnobPlan(const ContentCategories& categories,
                                 const std::vector<double>& forecast,
                                 const std::vector<double>& config_costs,
                                 double budget_core_s_per_video_s,
                                 PlannerBackend backend,
                                 PlanWorkspace* workspace) {
  if (!(budget_core_s_per_video_s > 0) ||
      !std::isfinite(budget_core_s_per_video_s)) {
    return Status::InvalidArgument("budget must be positive and finite");
  }
  PlanWorkspace local;
  PlanWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.Clear();
  SKY_ASSIGN_OR_RETURN(
      size_t first_group,
      AppendPlanCoefficients(categories, forecast, config_costs, &ws));
  // SolvePlanProblem's kResourceExhausted already carries the single-stream
  // infeasibility message; only the joint planner rewords it.
  Status solved = SolvePlanProblem(budget_core_s_per_video_s, backend, &ws);
  if (!solved.ok()) return solved;
  return ExtractPlan(ws, first_group, categories, forecast, config_costs);
}

}  // namespace sky::core
