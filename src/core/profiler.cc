#include "core/profiler.h"

#include <algorithm>
#include <limits>

namespace sky::core {

double ConfigProfile::MinRuntime() const {
  double best = std::numeric_limits<double>::infinity();
  for (const PlacementProfile& p : placements) {
    best = std::min(best, p.runtime_s);
  }
  return best;
}

double ConfigProfile::OnPremRuntime() const {
  for (const PlacementProfile& p : placements) {
    if (p.placement.NumCloudNodes() == 0) return p.runtime_s;
  }
  // No pure on-prem placement on the frontier (it was dominated); fall back
  // to the cheapest entry.
  return placements.empty() ? 0.0 : placements.front().runtime_s;
}

Result<std::vector<ConfigProfile>> ProfileConfigs(
    const Workload& workload, const std::vector<KnobConfig>& configs,
    const sim::ClusterSpec& cluster, const sim::CostModel& cost_model,
    double segment_seconds, const PlacementSearchOptions& search_options,
    dag::ThreadPool* pool) {
  if (configs.empty()) {
    return Status::InvalidArgument("no configurations to profile");
  }
  const KnobSpace& space = workload.knob_space();
  for (const KnobConfig& config : configs) {
    SKY_RETURN_NOT_OK(space.ValidateConfig(config));
  }
  PlacementSearchOptions search = search_options;
  if (search.pool == nullptr) search.pool = pool;

  std::vector<ConfigProfile> profiles(configs.size());
  std::vector<Status> statuses(configs.size(), Status::Ok());
  dag::ParallelFor(pool, configs.size(), [&](size_t i) {
    ConfigProfile& profile = profiles[i];
    profile.config = configs[i];
    profile.config_id = space.ConfigToId(configs[i]);
    profile.work_core_s_per_video_s =
        workload.CostCoreSecondsPerVideoSecond(configs[i]);
    dag::TaskGraph graph =
        workload.BuildTaskGraph(configs[i], segment_seconds, cost_model);
    Result<std::vector<PlacementProfile>> placements =
        SearchPlacements(graph, cluster, search);
    if (placements.ok()) {
      profile.placements = std::move(*placements);
    } else {
      statuses[i] = placements.status();
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return profiles;
}

}  // namespace sky::core
