#include "core/profiler.h"

#include <algorithm>
#include <limits>

namespace sky::core {

double ConfigProfile::MinRuntime() const {
  double best = std::numeric_limits<double>::infinity();
  for (const PlacementProfile& p : placements) {
    best = std::min(best, p.runtime_s);
  }
  return best;
}

double ConfigProfile::OnPremRuntime() const {
  for (const PlacementProfile& p : placements) {
    if (p.placement.NumCloudNodes() == 0) return p.runtime_s;
  }
  // No pure on-prem placement on the frontier (it was dominated); fall back
  // to the cheapest entry.
  return placements.empty() ? 0.0 : placements.front().runtime_s;
}

Result<std::vector<ConfigProfile>> ProfileConfigs(
    const Workload& workload, const std::vector<KnobConfig>& configs,
    const sim::ClusterSpec& cluster, const sim::CostModel& cost_model,
    double segment_seconds, const PlacementSearchOptions& search_options) {
  if (configs.empty()) {
    return Status::InvalidArgument("no configurations to profile");
  }
  const KnobSpace& space = workload.knob_space();
  std::vector<ConfigProfile> profiles;
  profiles.reserve(configs.size());
  for (const KnobConfig& config : configs) {
    SKY_RETURN_NOT_OK(space.ValidateConfig(config));
    ConfigProfile profile;
    profile.config = config;
    profile.config_id = space.ConfigToId(config);
    profile.work_core_s_per_video_s =
        workload.CostCoreSecondsPerVideoSecond(config);
    dag::TaskGraph graph =
        workload.BuildTaskGraph(config, segment_seconds, cost_model);
    SKY_ASSIGN_OR_RETURN(profile.placements,
                         SearchPlacements(graph, cluster, search_options));
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

}  // namespace sky::core
