#ifndef SKYSCRAPER_CORE_FORECASTER_H_
#define SKYSCRAPER_CORE_FORECASTER_H_

#include <memory>
#include <vector>

#include "dag/thread_pool.h"
#include "ml/nn.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::core {

struct ForecasterOptions {
  /// How much recent history feeds the model (t_in, Appendix H).
  SimTime input_span = Days(2);
  /// Number of histograms the input span is split into (n_split).
  size_t input_splits = 8;
  /// How far into the future the model forecasts (t_out / planned interval).
  SimTime planned_interval = Days(2);
  /// One training sample is created every `training_stride` of data (the
  /// paper creates a point every 15 minutes, Appendix K.1).
  SimTime training_stride = Minutes(15);
  ml::TrainOptions train_options;
  uint64_t seed = 61;
  /// Pool the per-sample histogram windows of BuildForecastDataset fan out
  /// on (each row is an independent scan); null runs serially. The dataset
  /// — and the model trained on it — is identical for any thread count.
  dag::ThreadPool* pool = nullptr;
};

struct ForecastDataset {
  ml::Matrix inputs;   ///< rows: input_splits * |C| features
  ml::Matrix targets;  ///< rows: |C| category frequencies
};

/// Builds supervised (history histograms -> future histogram) pairs from a
/// per-segment category sequence (Appendix H). Fails if the sequence is too
/// short to produce a single sample.
Result<ForecastDataset> BuildForecastDataset(
    const std::vector<size_t>& category_sequence, double segment_seconds,
    size_t num_categories, const ForecasterOptions& options);

/// Normalized category histogram of a [begin, end) slice of the sequence.
std::vector<double> CategoryHistogram(
    const std::vector<size_t>& category_sequence, size_t begin, size_t end,
    size_t num_categories);

/// In-place variant: fills `out` (resized to num_categories) reusing its
/// capacity, so callers with a long-lived buffer allocate nothing.
void CategoryHistogramInto(const std::vector<size_t>& category_sequence,
                           size_t begin, size_t end, size_t num_categories,
                           std::vector<double>* out);

/// The forecasting model F of §3.3: a feed-forward network (Appendix K:
/// input -> 16 ReLU -> 8 ReLU -> |C| softmax) that predicts how often each
/// content category appears over the planned interval, given the recent
/// history's category histograms.
class Forecaster {
 public:
  /// Trains the model on a category sequence from the unlabeled data.
  static Result<Forecaster> Train(const std::vector<size_t>& category_sequence,
                                  double segment_seconds,
                                  size_t num_categories,
                                  const ForecasterOptions& options);

  /// Builds the model input from the most recent history: the last
  /// `input_span` of the sequence, split into `input_splits` histograms. If
  /// the history is shorter than the input span, it is stretched over the
  /// available prefix.
  std::vector<double> FeaturesFromHistory(
      const std::vector<size_t>& recent_categories,
      double segment_seconds) const;

  /// In-place variant of FeaturesFromHistory: writes the split histograms
  /// directly into `out` (resized to input_splits * |C|), allocating nothing
  /// when the caller reuses the buffer across plan boundaries.
  void FeaturesFromHistoryInto(const std::vector<size_t>& recent_categories,
                               double segment_seconds,
                               std::vector<double>* out) const;

  /// Predicted category distribution r over the planned interval.
  std::vector<double> Forecast(const std::vector<double>& features) const;

  /// In-place variant of Forecast, reusing an internal inference scratch:
  /// zero heap allocation at steady state, bitwise identical to Forecast.
  /// The shared scratch makes concurrent calls on one Forecaster object a
  /// data race — engines operate on their own copies.
  void ForecastInto(const std::vector<double>& features,
                    std::vector<double>* out) const;

  /// Precision-selecting variant: ml::Precision::kF64 is exactly the
  /// overload above; ml::Precision::kF32 runs the network's
  /// reduced-precision forward (f32 weight mirror + dispatched f32 matvec
  /// kernel) — roughly half the inference bandwidth, NOT bitwise against
  /// the f64 path but within the tolerance documented in docs/precision.md.
  /// Training and OnlineUpdate stay f64 either way.
  void ForecastInto(const std::vector<double>& features,
                    ml::Precision precision, std::vector<double>* out) const;

  /// Online fine-tuning step on a realized (features, outcome) pair (§3.3).
  /// Runs against the net's reusable workspace: allocation-free at steady
  /// state on the engine's plan boundary.
  void OnlineUpdate(const std::vector<double>& features,
                    const std::vector<double>& realized_distribution,
                    double learning_rate = 1e-3);

  /// Mean absolute error of the model's forecasts over a held-out category
  /// sequence, averaged element-wise like §5.6.
  Result<double> EvaluateMae(const std::vector<size_t>& category_sequence,
                             double segment_seconds) const;

  size_t num_categories() const { return num_categories_; }
  const ForecasterOptions& options() const { return options_; }
  const ml::TrainReport& train_report() const { return report_; }

  /// Flat copy of the network parameters — the bit-identity handle behind
  /// OfflineModelsIdentical and the thread-count determinism checks.
  std::vector<double> ModelParameters() const {
    return net_.FlattenParameters();
  }

  /// Full persistent state of the forecasting network (architecture,
  /// parameters, Adam moments) for io::SaveOfflineModel. Together with
  /// options(), num_categories() and train_report() this is everything
  /// FromParts needs to reassemble the forecaster bitwise.
  ml::NetSnapshot SnapshotNet() const { return net_.Snapshot(); }

  /// Reassembles a trained forecaster from persisted parts — the inverse of
  /// SnapshotNet()/options()/train_report(). The restored object is bitwise
  /// equivalent to the original: same forecasts AND the same OnlineUpdate
  /// trajectory (the network snapshot carries the optimizer state). Fails
  /// when the network shape disagrees with the options (input must be
  /// input_splits * num_categories wide, output num_categories wide).
  static Result<Forecaster> FromParts(const ml::NetSnapshot& net_snapshot,
                                      const ForecasterOptions& options,
                                      size_t num_categories,
                                      ml::TrainReport report);

 private:
  Forecaster(ml::FeedForwardNet net, ForecasterOptions options,
             size_t num_categories, ml::TrainReport report)
      : net_(std::move(net)),
        options_(options),
        num_categories_(num_categories),
        report_(std::move(report)) {}

  ml::FeedForwardNet net_;
  ForecasterOptions options_;
  size_t num_categories_;
  ml::TrainReport report_;
  /// Reused by ForecastInto so steady-state inference allocates nothing.
  mutable ml::PredictScratch predict_scratch_;
  /// f32 twin, for the reduced-precision ForecastInto overload.
  mutable ml::PredictScratchF32 predict_scratch_f32_;
};

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_FORECASTER_H_
