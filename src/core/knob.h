#ifndef SKYSCRAPER_CORE_KNOB_H_
#define SKYSCRAPER_CORE_KNOB_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sky::core {

/// A knob configuration: one value-index per registered knob (§2.1). The
/// index refers into the corresponding knob's domain.
using KnobConfig = std::vector<size_t>;

/// A user-registered knob: a name plus the (numeric) domain of values it may
/// take. Categorical domains (e.g. model size {small, medium, large}) are
/// registered as ordinal indices {0, 1, 2}.
struct KnobDef {
  std::string name;
  std::vector<double> values;
};

/// The cross-product space of all registered knobs. Configurations are
/// enumerable and addressable by a dense id in [0, NumConfigs()).
class KnobSpace {
 public:
  /// Registers a knob; fails on empty domains or duplicate names.
  Status AddKnob(std::string name, std::vector<double> values);

  size_t NumKnobs() const { return knobs_.size(); }
  const KnobDef& knob(size_t i) const { return knobs_[i]; }
  Result<size_t> KnobIndex(std::string_view name) const;

  /// Product of domain sizes.
  size_t NumConfigs() const;

  /// Dense id <-> configuration (mixed-radix encoding).
  size_t ConfigToId(const KnobConfig& config) const;
  KnobConfig IdToConfig(size_t id) const;

  /// The knob value selected by `config` for knob `knob_idx`.
  double Value(const KnobConfig& config, size_t knob_idx) const;
  Result<double> ValueByName(const KnobConfig& config,
                             std::string_view name) const;

  /// All configurations in id order. Intended for small spaces (the paper's
  /// workloads have 40-100 configurations before filtering).
  std::vector<KnobConfig> AllConfigs() const;

  /// Configurations reachable by moving exactly one knob one step up or
  /// down — the neighborhood used by greedy hill climbing (Appendix A.1).
  std::vector<KnobConfig> Neighbors(const KnobConfig& config) const;

  /// Human-readable "knob=value, ..." string.
  std::string ToString(const KnobConfig& config) const;

  Status ValidateConfig(const KnobConfig& config) const;

 private:
  std::vector<KnobDef> knobs_;
};

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_KNOB_H_
