#ifndef SKYSCRAPER_CORE_PLANNER_H_
#define SKYSCRAPER_CORE_PLANNER_H_

#include <vector>

#include "core/categorizer.h"
#include "core/plan_common.h"
#include "ml/matrix.h"
#include "util/result.h"

namespace sky::core {

/// A knob plan P (§4.1): one histogram alpha_c over configurations per
/// content category, telling the switcher how often to use each
/// configuration on content of that category.
struct KnobPlan {
  /// alpha(c, k): row per category, column per (filtered) configuration;
  /// rows sum to 1.
  ml::Matrix alpha;
  /// The forecast r_c the plan was computed for.
  std::vector<double> forecast;
  /// Expected quality under the plan (LP objective).
  double expected_quality = 0.0;
  /// Expected work under the plan, core-seconds per video-second.
  double expected_work = 0.0;
};

/// Solves the knob-planning linear program of §4.1:
///
///   maximize   sum_{k,c} alpha_{k,c} * r_c * qual(k, c)
///   subject to sum_{k,c} alpha_{k,c} * r_c * cost(k) <= budget
///              sum_k alpha_{k,c} = 1,  alpha >= 0        (for every c)
///
/// `config_costs[k]` is cost(k) in on-premise core-seconds per video-second;
/// `budget` uses the same unit (the engine folds the cloud-credit budget
/// into it, §4.1 footnote 4). Fails on shape mismatches; the LP itself is
/// always feasible (alpha uniform rows satisfy the equalities, and the
/// budget row is satisfiable whenever the cheapest configuration fits —
/// otherwise kResourceExhausted is surfaced to the caller).
///
/// The program is solved by the structured MCKP solver by default (exact,
/// O(|C|·|K| log); see lp/mckp.h) or by dense simplex when
/// `backend == PlannerBackend::kSimplex` — both return the same optimum.
/// Passing a long-lived `workspace` makes repeated planning allocation-free;
/// with nullptr a temporary workspace is used.
Result<KnobPlan> ComputeKnobPlan(
    const ContentCategories& categories, const std::vector<double>& forecast,
    const std::vector<double>& config_costs, double budget_core_s_per_video_s,
    PlannerBackend backend = PlannerBackend::kStructured,
    PlanWorkspace* workspace = nullptr);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_PLANNER_H_
