#ifndef SKYSCRAPER_CORE_CATEGORIZER_H_
#define SKYSCRAPER_CORE_CATEGORIZER_H_

#include <optional>
#include <vector>

#include "core/workload.h"
#include "dag/thread_pool.h"
#include "ml/gmm.h"
#include "ml/kmeans.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::core {

/// Which clustering backend builds the categories. The paper uses KMeans and
/// shows (Appendix B.2, Fig. 17) that a Gaussian mixture performs the same.
enum class CategorizerBackend { kKMeans, kGmm };

/// The content categories of §3.2: clusters in |K|-dimensional quality
/// space. A category's center coordinate c[k] is the average quality that
/// configuration k achieves on content of that category — the qual-hat(k, c)
/// the planner LP maximizes over.
class ContentCategories {
 public:
  ContentCategories() = default;

  size_t NumCategories() const;
  size_t NumConfigs() const;

  /// Average quality of configuration `config_idx` on category `category`.
  double CenterQuality(size_t category, size_t config_idx) const;

  /// Classification with a full |K|-dimensional quality vector (used on
  /// offline training data, Appendix H, and by ground-truth baselines).
  size_t ClassifyFull(const std::vector<double>& quality_vector) const;

  /// Online classification from a single observed quality value (Eq. 5):
  /// only the currently running configuration's quality is attainable.
  size_t ClassifyPartial(size_t config_idx, double quality) const;

  CategorizerBackend backend() const { return backend_; }

  /// Builders (exposed for the Fig. 17 ablation and tests).
  static ContentCategories FromKMeans(ml::KMeansModel model);
  static ContentCategories FromGmm(ml::GmmModel model);

  /// The fitted clustering behind the active backend, exposed for
  /// io::SaveOfflineModel: round-tripping through FromKMeans/FromGmm with
  /// these values reproduces the categorizer bitwise. The inactive model is
  /// default-empty (kKMeans never has a GMM and vice versa).
  const ml::KMeansModel& kmeans_model() const { return kmeans_; }
  const std::optional<ml::GmmModel>& gmm_model() const { return gmm_; }

 private:
  CategorizerBackend backend_ = CategorizerBackend::kKMeans;
  ml::KMeansModel kmeans_;
  std::optional<ml::GmmModel> gmm_;
};

struct CategorizerOptions {
  size_t num_categories = 4;
  /// Fraction of the unlabeled horizon sampled as S' (§3.2; the paper uses
  /// 5-10%). Segments are sampled on a regular grid for determinism.
  double sample_fraction = 0.05;
  double segment_seconds = 2.0;
  SimTime train_horizon = Days(14);
  CategorizerBackend backend = CategorizerBackend::kKMeans;
  uint64_t seed = 51;
  /// Pool the per-segment quality scans fan out on. The sampled vectors (and
  /// the fitted clustering) are identical for any thread count; null runs
  /// serially.
  dag::ThreadPool* pool = nullptr;
};

/// Offline phase step 2 (§3.2): samples segments from the unlabeled data,
/// processes each with every filtered configuration, records the quality
/// vectors, and clusters them into content categories.
Result<ContentCategories> BuildContentCategories(
    const Workload& workload, const std::vector<KnobConfig>& configs,
    const CategorizerOptions& options);

/// The measured |K|-dimensional quality vector of one segment (helper shared
/// with benches/tests).
std::vector<double> SegmentQualityVector(const Workload& workload,
                                         const std::vector<KnobConfig>& configs,
                                         const video::ContentState& content,
                                         Rng* rng);

/// The noise-free quality vector (ground truth categorization).
std::vector<double> TrueQualityVector(const Workload& workload,
                                      const std::vector<KnobConfig>& configs,
                                      const video::ContentState& content);

/// In-place variant reusing `out`'s capacity — the engine's truth ring
/// buffer calls this once per segment without allocating.
void TrueQualityVectorInto(const Workload& workload,
                           const std::vector<KnobConfig>& configs,
                           const video::ContentState& content,
                           std::vector<double>* out);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_CATEGORIZER_H_
