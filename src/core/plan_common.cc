#include "core/plan_common.h"

#include "core/planner.h"

namespace sky::core {

void PlanWorkspace::Clear() {
  costs.clear();
  values.clear();
  group_offsets.clear();
  num_groups = 0;
  x.clear();
  objective = 0.0;
}

Result<size_t> AppendPlanCoefficients(const ContentCategories& categories,
                                      const std::vector<double>& forecast,
                                      const std::vector<double>& config_costs,
                                      PlanWorkspace* ws) {
  size_t num_c = categories.NumCategories();
  size_t num_k = categories.NumConfigs();
  if (forecast.size() != num_c) {
    return Status::InvalidArgument("forecast size != number of categories");
  }
  if (config_costs.size() != num_k) {
    return Status::InvalidArgument("cost vector size != number of configs");
  }
  if (num_c == 0 || num_k == 0) {
    return Status::InvalidArgument("empty categories or configuration set");
  }
  if (ws->group_offsets.empty()) ws->group_offsets.push_back(0);
  size_t first_group = ws->num_groups;
  for (size_t c = 0; c < num_c; ++c) {
    for (size_t k = 0; k < num_k; ++k) {
      ws->values.push_back(forecast[c] * categories.CenterQuality(c, k));
      ws->costs.push_back(forecast[c] * config_costs[k]);
    }
    ws->group_offsets.push_back(ws->costs.size());
    ++ws->num_groups;
  }
  return first_group;
}

Status SolvePlanProblem(double budget, PlannerBackend backend,
                        PlanWorkspace* ws) {
  if (ws->num_groups == 0) {
    return Status::InvalidArgument("no plan coefficients assembled");
  }
  size_t n = ws->costs.size();

  if (backend == PlannerBackend::kStructured) {
    Status st = ws->mckp.Solve(ws->costs.data(), ws->values.data(),
                               ws->group_offsets.data(), ws->num_groups,
                               budget, &ws->mckp_solution);
    if (!st.ok()) return st;
    if (ws->mckp_solution.status == lp::MckpStatus::kInfeasible) {
      return Status::ResourceExhausted(
          "knob plan infeasible: even the cheapest configurations exceed "
          "the budget");
    }
    ws->x.assign(n, 0.0);
    for (const lp::MckpGroupChoice& c : ws->mckp_solution.choice) {
      ws->x[c.lo] += 1.0 - c.frac_hi;
      ws->x[c.hi] += c.frac_hi;
    }
    ws->objective = ws->mckp_solution.objective;
    return Status::Ok();
  }

  // Simplex oracle: the same coefficients as one dense program — the
  // objective and the budget row are the flat value/cost arrays, plus one
  // normalization equality per group.
  lp::LinearProgram& program = ws->program;
  program.objective = ws->values;
  program.a_ub.assign(1, ws->costs);
  program.b_ub.assign(1, budget);
  program.a_eq.assign(ws->num_groups, std::vector<double>(n, 0.0));
  program.b_eq.assign(ws->num_groups, 1.0);
  for (size_t g = 0; g < ws->num_groups; ++g) {
    for (size_t j = ws->group_offsets[g]; j < ws->group_offsets[g + 1]; ++j) {
      program.a_eq[g][j] = 1.0;
    }
  }

  SKY_ASSIGN_OR_RETURN(lp::LpSolution solution, lp::SolveLp(program));
  if (solution.status == lp::LpStatus::kInfeasible) {
    return Status::ResourceExhausted(
        "knob plan infeasible: even the cheapest configurations exceed "
        "the budget");
  }
  if (solution.status == lp::LpStatus::kUnbounded) {
    return Status::Internal("knob-planning LP unbounded");
  }
  if (solution.status == lp::LpStatus::kIterationLimit) {
    // Never silently accept an unproven point: the simplex backend's whole
    // job here is to be an exact oracle for structured-solver parity.
    return Status::Internal(
        "knob-planning LP hit the simplex iteration limit before proving "
        "optimality");
  }
  ws->x = std::move(solution.x);
  ws->objective = solution.objective_value;
  return Status::Ok();
}

KnobPlan ExtractPlan(const PlanWorkspace& ws, size_t first_group,
                     const ContentCategories& categories,
                     const std::vector<double>& forecast,
                     const std::vector<double>& config_costs) {
  size_t num_c = categories.NumCategories();
  size_t num_k = categories.NumConfigs();
  KnobPlan plan;
  plan.alpha = ml::Matrix(num_c, num_k, 0.0);
  plan.forecast = forecast;
  for (size_t c = 0; c < num_c; ++c) {
    size_t base = ws.group_offsets[first_group + c];
    for (size_t k = 0; k < num_k; ++k) {
      double a = ws.x[base + k];
      plan.alpha.At(c, k) = a;
      plan.expected_quality += a * ws.values[base + k];
      plan.expected_work += a * forecast[c] * config_costs[k];
    }
  }
  return plan;
}

KnobPlan ExtractPlanFromChoices(const lp::MckpSolution& solution,
                                size_t first_group,
                                const ContentCategories& categories,
                                const std::vector<double>& forecast,
                                const std::vector<double>& config_costs) {
  size_t num_c = categories.NumCategories();
  size_t num_k = categories.NumConfigs();
  KnobPlan plan;
  plan.alpha = ml::Matrix(num_c, num_k, 0.0);
  plan.forecast = forecast;
  for (size_t c = 0; c < num_c; ++c) {
    const lp::MckpGroupChoice& choice = solution.choice[first_group + c];
    double alpha_lo = 1.0 - choice.frac_hi;
    plan.alpha.At(c, choice.lo) += alpha_lo;
    plan.alpha.At(c, choice.hi) += choice.frac_hi;
    plan.expected_quality +=
        alpha_lo * forecast[c] * categories.CenterQuality(c, choice.lo);
    plan.expected_quality +=
        choice.frac_hi * forecast[c] * categories.CenterQuality(c, choice.hi);
    plan.expected_work += alpha_lo * forecast[c] * config_costs[choice.lo];
    plan.expected_work += choice.frac_hi * forecast[c] * config_costs[choice.hi];
  }
  return plan;
}

}  // namespace sky::core
