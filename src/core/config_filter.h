#ifndef SKYSCRAPER_CORE_CONFIG_FILTER_H_
#define SKYSCRAPER_CORE_CONFIG_FILTER_H_

#include <vector>

#include "core/workload.h"
#include "dag/thread_pool.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::core {

struct ConfigFilterOptions {
  /// Segments pre-sampled uniformly from the unlabeled data (n_pre, A.1).
  size_t presample_count = 60;
  /// Diverse segments selected by greedy max-min distance (n_search, A.1).
  size_t search_segment_count = 5;
  /// Portion of the content horizon treated as unlabeled training data.
  SimTime train_horizon = Days(14);
  uint64_t seed = 41;
  /// Pool the pre-sample scans and per-segment hill climbs fan out on.
  /// Results are identical for any thread count (per-index RNG forks,
  /// per-index result slots); null runs serially.
  dag::ThreadPool* pool = nullptr;
};

/// Offline knob-configuration filtering (Appendix A.1):
///  1. find the cheapest configuration k- and most qualitative k+;
///  2. pre-sample segments, record their (qual(k-), qual(k+)) vectors and
///     greedily pick `search_segment_count` maximally different ones;
///  3. per selected segment, greedy hill climbing from k- toward higher
///     quality (best marginal quality/cost step first), collecting the chain
///     of accepted configurations — an approximation of that segment's
///     work-quality Pareto frontier (the VideoStorm search);
///  4. return the union over segments, sorted by cost, duplicates removed.
Result<std::vector<KnobConfig>> FilterKnobConfigs(
    const Workload& workload, const ConfigFilterOptions& options = {});

/// Greedy max-min selection (step 2) exposed for tests: picks `count` row
/// indices of `points` such that selected points are pairwise far apart,
/// starting from the point with the smallest L2 norm.
std::vector<size_t> MaxMinSample(
    const std::vector<std::vector<double>>& points, size_t count);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_CONFIG_FILTER_H_
