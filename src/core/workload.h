#ifndef SKYSCRAPER_CORE_WORKLOAD_H_
#define SKYSCRAPER_CORE_WORKLOAD_H_

#include <string>

#include "core/knob.h"
#include "dag/task_graph.h"
#include "sim/cost_model.h"
#include "util/rng.h"
#include "video/content_process.h"

namespace sky::core {

/// A V-ETL workload: the user-provided part of the system (red boxes in
/// Fig. 1). It owns the knob space, knows how much work each configuration
/// induces, reports the quality its UDFs achieve on given content, and can
/// materialize the processing DAG for one segment of video.
///
/// Quality is user-defined (§2.1): Skyscraper itself only ever consumes the
/// scalar values these methods return, never the content state. TrueQuality
/// is the noise-free ground truth used for scoring experiments;
/// MeasuredQuality adds the measurement noise of real CV certainty metrics
/// and is what the online system observes.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual const KnobSpace& knob_space() const = 0;

  /// Work induced by processing one second of video with `config`, in
  /// on-premise core-seconds. Content-independent, like the paper's cost(k).
  virtual double CostCoreSecondsPerVideoSecond(
      const KnobConfig& config) const = 0;

  /// Ground-truth result quality of `config` on `content`, in [0, 1].
  virtual double TrueQuality(const KnobConfig& config,
                             const video::ContentState& content) const = 0;

  /// The quality the user code would report online (certainties, tracker
  /// errors, ...): ground truth plus measurement noise, clamped to [0, 1].
  virtual double MeasuredQuality(const KnobConfig& config,
                                 const video::ContentState& content,
                                 Rng* rng) const;

  /// Builds the processing DAG for `segment_seconds` of video under
  /// `config`, with per-node runtimes, payload sizes and cloud prices filled
  /// in (what the profiler and placement search consume).
  virtual dag::TaskGraph BuildTaskGraph(
      const KnobConfig& config, double segment_seconds,
      const sim::CostModel& cost_model) const = 0;

  /// The content process of the ingested source.
  virtual const video::ContentProcess& content_process() const = 0;

  /// Standard deviation of the measurement noise on reported quality.
  virtual double measurement_noise_stddev() const { return 0.03; }
};

/// The cheapest configuration by CostCoreSecondsPerVideoSecond.
KnobConfig CheapestConfig(const Workload& workload);

/// The configuration with the best average TrueQuality over `probe_times`
/// samples of the content process (stand-in for "best accuracy on the small
/// labeled set", Appendix A.1).
KnobConfig MostQualitativeConfig(const Workload& workload,
                                 size_t probe_times = 32);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_WORKLOAD_H_
