#include "core/offline.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace sky::core {

namespace {

using WallClock = std::chrono::steady_clock;

double ElapsedSeconds(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

/// Index of the config whose measured quality best discriminates categories
/// (footnote 7 of the paper: if k- achieves similar quality everywhere, pick
/// the next cheapest good discriminator). Configs are ordered by cost, so
/// the first config with sufficient center spread wins.
size_t PickDiscriminatorConfig(const ContentCategories& categories) {
  size_t num_k = categories.NumConfigs();
  size_t num_c = categories.NumCategories();
  for (size_t k = 0; k < num_k; ++k) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < num_c; ++c) {
      lo = std::min(lo, categories.CenterQuality(c, k));
      hi = std::max(hi, categories.CenterQuality(c, k));
    }
    if (hi - lo > 0.05) return k;
  }
  return 0;
}

}  // namespace

std::vector<size_t> BuildTrainCategorySequence(
    const Workload& workload, const std::vector<KnobConfig>& configs,
    const ContentCategories& categories, double segment_seconds,
    SimTime horizon, uint64_t seed, dag::ThreadPool* pool) {
  size_t discriminator = PickDiscriminatorConfig(categories);
  Rng rng = Rng(seed).Fork("train-seq");
  int64_t segments = static_cast<int64_t>(horizon / segment_seconds);
  std::vector<size_t> sequence(static_cast<size_t>(segments));
  const video::ContentProcess& content = workload.content_process();
  // The dominant offline step (Table 3): classify every training segment.
  // One forked RNG per fixed-size chunk keeps the sequence identical for any
  // thread count while amortizing the fork cost.
  dag::ParallelForChunked(
      pool, static_cast<size_t>(segments), 1024,
      [&](size_t chunk, size_t begin, size_t end) {
        Rng chunk_rng = rng.ForkIndex(chunk);
        for (size_t i = begin; i < end; ++i) {
          double t = (static_cast<double>(i) + 0.5) * segment_seconds;
          double quality = workload.MeasuredQuality(configs[discriminator],
                                                    content.At(t), &chunk_rng);
          sequence[i] = categories.ClassifyPartial(discriminator, quality);
        }
      });
  return sequence;
}

bool OfflineModelsIdentical(const OfflineModel& a, const OfflineModel& b) {
  if (a.segment_seconds != b.segment_seconds) return false;
  if (a.train_horizon != b.train_horizon) return false;
  if (a.configs != b.configs) return false;
  if (a.train_category_sequence != b.train_category_sequence) return false;

  if (a.profiles.size() != b.profiles.size()) return false;
  for (size_t k = 0; k < a.profiles.size(); ++k) {
    const ConfigProfile& pa = a.profiles[k];
    const ConfigProfile& pb = b.profiles[k];
    if (pa.config != pb.config || pa.config_id != pb.config_id ||
        pa.work_core_s_per_video_s != pb.work_core_s_per_video_s) {
      return false;
    }
    if (pa.placements.size() != pb.placements.size()) return false;
    for (size_t p = 0; p < pa.placements.size(); ++p) {
      const PlacementProfile& la = pa.placements[p];
      const PlacementProfile& lb = pb.placements[p];
      if (la.placement.node_loc != lb.placement.node_loc ||
          la.runtime_s != lb.runtime_s || la.cloud_usd != lb.cloud_usd ||
          la.onprem_core_s != lb.onprem_core_s ||
          la.uplink_bytes != lb.uplink_bytes) {
        return false;
      }
    }
  }

  if (a.categories.backend() != b.categories.backend() ||
      a.categories.NumCategories() != b.categories.NumCategories() ||
      a.categories.NumConfigs() != b.categories.NumConfigs()) {
    return false;
  }
  for (size_t c = 0; c < a.categories.NumCategories(); ++c) {
    for (size_t k = 0; k < a.categories.NumConfigs(); ++k) {
      if (a.categories.CenterQuality(c, k) != b.categories.CenterQuality(c, k))
        return false;
    }
  }

  if (a.forecaster.has_value() != b.forecaster.has_value()) return false;
  if (a.forecaster.has_value() &&
      a.forecaster->ModelParameters() != b.forecaster->ModelParameters()) {
    return false;
  }
  return true;
}

Result<OfflineModel> RunOfflinePhase(const Workload& workload,
                                     const sim::ClusterSpec& cluster,
                                     const sim::CostModel& cost_model,
                                     const OfflineOptions& options) {
  OfflineModel model;
  model.segment_seconds = options.segment_seconds;
  model.train_horizon =
      std::min<double>(options.train_horizon, workload.content_process().horizon());

  // The pool every offline step fans out on. Each step is deterministic for
  // a fixed seed regardless of the thread count, so parallelism is purely a
  // wall-clock knob.
  dag::ThreadPool* pool = options.pool;
  std::optional<dag::ThreadPool> owned_pool;
  if (pool == nullptr) {
    size_t threads = options.num_threads == 0 ? dag::DefaultThreadCount()
                                              : options.num_threads;
    if (threads > 1) {
      owned_pool.emplace(threads);
      pool = &*owned_pool;
    }
  }

  // Step 1a: filter knob configurations (Appendix A.1).
  auto t0 = WallClock::now();
  ConfigFilterOptions filter = options.filter;
  filter.train_horizon = model.train_horizon;
  filter.seed = options.seed ^ 0x1;
  filter.pool = pool;
  SKY_ASSIGN_OR_RETURN(model.configs, FilterKnobConfigs(workload, filter));
  model.step_runtimes.filter_configs_s = ElapsedSeconds(t0);

  // Step 1b: profile + filter task placements (Appendix A.2).
  t0 = WallClock::now();
  SKY_ASSIGN_OR_RETURN(
      model.profiles,
      ProfileConfigs(workload, model.configs, cluster, cost_model,
                     options.segment_seconds, options.placement_search, pool));
  model.step_runtimes.filter_placements_s = ElapsedSeconds(t0);

  // Step 2: content categories (§3.2).
  t0 = WallClock::now();
  CategorizerOptions cat;
  cat.num_categories = options.num_categories;
  cat.segment_seconds = options.segment_seconds;
  cat.train_horizon = model.train_horizon;
  cat.backend = options.categorizer_backend;
  cat.seed = options.seed ^ 0x2;
  cat.pool = pool;
  SKY_ASSIGN_OR_RETURN(model.categories,
                       BuildContentCategories(workload, model.configs, cat));
  model.step_runtimes.content_categories_s = ElapsedSeconds(t0);

  // Step 3a: create forecast training data (Appendix H).
  t0 = WallClock::now();
  model.train_category_sequence = BuildTrainCategorySequence(
      workload, model.configs, model.categories, options.segment_seconds,
      model.train_horizon, options.seed ^ 0x3, pool);
  model.step_runtimes.forecast_training_data_s = ElapsedSeconds(t0);

  // Step 3b: train the forecasting model (§3.3).
  if (options.train_forecaster) {
    t0 = WallClock::now();
    ForecasterOptions fopts = options.forecaster;
    fopts.seed = options.seed ^ 0x4;
    fopts.pool = pool;
    SKY_ASSIGN_OR_RETURN(
        Forecaster forecaster,
        Forecaster::Train(model.train_category_sequence,
                          options.segment_seconds, options.num_categories,
                          fopts));
    model.forecaster.emplace(std::move(forecaster));
    model.step_runtimes.forecast_training_s = ElapsedSeconds(t0);
  }
  return model;
}

}  // namespace sky::core
