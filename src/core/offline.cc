#include "core/offline.h"

#include <algorithm>
#include <chrono>
#include <limits>

namespace sky::core {

namespace {

using WallClock = std::chrono::steady_clock;

double ElapsedSeconds(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

/// Index of the config whose measured quality best discriminates categories
/// (footnote 7 of the paper: if k- achieves similar quality everywhere, pick
/// the next cheapest good discriminator). Configs are ordered by cost, so
/// the first config with sufficient center spread wins.
size_t PickDiscriminatorConfig(const ContentCategories& categories) {
  size_t num_k = categories.NumConfigs();
  size_t num_c = categories.NumCategories();
  for (size_t k = 0; k < num_k; ++k) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < num_c; ++c) {
      lo = std::min(lo, categories.CenterQuality(c, k));
      hi = std::max(hi, categories.CenterQuality(c, k));
    }
    if (hi - lo > 0.05) return k;
  }
  return 0;
}

}  // namespace

std::vector<size_t> BuildTrainCategorySequence(
    const Workload& workload, const std::vector<KnobConfig>& configs,
    const ContentCategories& categories, double segment_seconds,
    SimTime horizon, uint64_t seed) {
  size_t discriminator = PickDiscriminatorConfig(categories);
  Rng rng = Rng(seed).Fork("train-seq");
  int64_t segments = static_cast<int64_t>(horizon / segment_seconds);
  std::vector<size_t> sequence;
  sequence.reserve(static_cast<size_t>(segments));
  const video::ContentProcess& content = workload.content_process();
  for (int64_t i = 0; i < segments; ++i) {
    double t = (static_cast<double>(i) + 0.5) * segment_seconds;
    double quality = workload.MeasuredQuality(configs[discriminator],
                                              content.At(t), &rng);
    sequence.push_back(categories.ClassifyPartial(discriminator, quality));
  }
  return sequence;
}

Result<OfflineModel> RunOfflinePhase(const Workload& workload,
                                     const sim::ClusterSpec& cluster,
                                     const sim::CostModel& cost_model,
                                     const OfflineOptions& options) {
  OfflineModel model;
  model.segment_seconds = options.segment_seconds;
  model.train_horizon =
      std::min<double>(options.train_horizon, workload.content_process().horizon());

  // Step 1a: filter knob configurations (Appendix A.1).
  auto t0 = WallClock::now();
  ConfigFilterOptions filter = options.filter;
  filter.train_horizon = model.train_horizon;
  filter.seed = options.seed ^ 0x1;
  SKY_ASSIGN_OR_RETURN(model.configs, FilterKnobConfigs(workload, filter));
  model.step_runtimes.filter_configs_s = ElapsedSeconds(t0);

  // Step 1b: profile + filter task placements (Appendix A.2).
  t0 = WallClock::now();
  SKY_ASSIGN_OR_RETURN(
      model.profiles,
      ProfileConfigs(workload, model.configs, cluster, cost_model,
                     options.segment_seconds));
  model.step_runtimes.filter_placements_s = ElapsedSeconds(t0);

  // Step 2: content categories (§3.2).
  t0 = WallClock::now();
  CategorizerOptions cat;
  cat.num_categories = options.num_categories;
  cat.segment_seconds = options.segment_seconds;
  cat.train_horizon = model.train_horizon;
  cat.backend = options.categorizer_backend;
  cat.seed = options.seed ^ 0x2;
  SKY_ASSIGN_OR_RETURN(model.categories,
                       BuildContentCategories(workload, model.configs, cat));
  model.step_runtimes.content_categories_s = ElapsedSeconds(t0);

  // Step 3a: create forecast training data (Appendix H).
  t0 = WallClock::now();
  model.train_category_sequence = BuildTrainCategorySequence(
      workload, model.configs, model.categories, options.segment_seconds,
      model.train_horizon, options.seed ^ 0x3);
  model.step_runtimes.forecast_training_data_s = ElapsedSeconds(t0);

  // Step 3b: train the forecasting model (§3.3).
  if (options.train_forecaster) {
    t0 = WallClock::now();
    ForecasterOptions fopts = options.forecaster;
    fopts.seed = options.seed ^ 0x4;
    SKY_ASSIGN_OR_RETURN(
        Forecaster forecaster,
        Forecaster::Train(model.train_category_sequence,
                          options.segment_seconds, options.num_categories,
                          fopts));
    model.forecaster.emplace(std::move(forecaster));
    model.step_runtimes.forecast_training_s = ElapsedSeconds(t0);
  }
  return model;
}

}  // namespace sky::core
