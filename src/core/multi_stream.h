#ifndef SKYSCRAPER_CORE_MULTI_STREAM_H_
#define SKYSCRAPER_CORE_MULTI_STREAM_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/engine.h"
#include "core/planner.h"
#include "dag/thread_pool.h"
#include "io/checkpoint_io.h"
#include "util/result.h"

namespace sky::core {

/// Planner input for one stream in a multi-stream deployment (Appendix D):
/// each stream ran its own offline phase (own categories, own forecast, own
/// filtered configurations) — only the knob planner is joint.
struct StreamPlanInput {
  const ContentCategories* categories = nullptr;
  std::vector<double> forecast;      ///< r_c per category of this stream
  std::vector<double> config_costs;  ///< cost(k) per config of this stream
};

/// Solves the joint program of Appendix D (Eqs. 7-9): per-stream quality and
/// cost are summed and one shared budget constrains them all; normalization
/// holds per (stream, category). Returns one KnobPlan per stream.
///
/// The joint program is the same fractional MCKP as the single-stream one,
/// just with Σ_v C_v groups sharing one budget multiplier — the structured
/// backend (default) solves per-stream hulls under one shared λ in
/// O(Σ C_v·K_v · log) without ever materializing the dense
/// (Σ C_v + 1) × (V·C·K) simplex tableau the kSimplex oracle pivots on.
/// Passing a long-lived `workspace` makes repeated planning allocation-free.
Result<std::vector<KnobPlan>> ComputeJointKnobPlan(
    const std::vector<StreamPlanInput>& streams,
    double budget_core_s_per_video_s,
    PlannerBackend backend = PlannerBackend::kStructured,
    PlanWorkspace* workspace = nullptr);

/// Appendix D's fair core allocation for streams sharing one server:
/// floor(cores / num_streams), but at least 1.
int FairCoreShare(int cores, size_t num_streams);

/// Incremental joint knob planner — the warm plan-boundary path of a
/// StreamSet. Semantically equivalent to ComputeJointKnobPlan with the
/// structured backend (same hulls, same canonical edge order; objectives
/// agree to fp accumulation order), but amortized O(groups + frontier
/// movement) per boundary instead of a full O(n log n) rebuild:
///
///  - Per-(stream, category) concave hulls are cached inside an
///    lp::IncrementalMckpSolver, keyed on the stream's (categories,
///    config_costs). The joint program's coefficients for category c are
///    r_c * (cost(k), qual(c, k)) — a uniform scaling of the cached points —
///    and hulls are scale-invariant, so a forecast update is an O(1)
///    ScaleGroup, never a hull rebuild.
///  - The MCKP solve warm-starts from the previous boundary's optimal
///    frontier and repairs it with heap exchanges; consecutive boundaries
///    share almost all structure, so the frontier barely moves.
///
/// Hulls rebuild only when a stream's shape actually changes (stream set
/// grew/shrank, costs changed) — the planner notices by itself. Not
/// thread-safe; a StreamSet calls it only from boundary barriers.
class JointPlanner {
 public:
  /// Plans all `streams` against the shared `budget`, one KnobPlan per
  /// stream into `plans`. Same validation and error contract as
  /// ComputeJointKnobPlan: kInvalidArgument on shape errors,
  /// kResourceExhausted when even all-cheapest exceeds the budget (cached
  /// state stays warm — a later feasible boundary still warm-starts).
  Status Plan(const std::vector<StreamPlanInput>& streams, double budget,
              std::vector<KnobPlan>* plans);

  /// Instrumentation for benches/tests: how the last Plan() call touched
  /// the cache — groups whose hull was (re)built vs. merely rescaled.
  size_t last_groups_rebuilt() const { return last_groups_rebuilt_; }
  size_t last_groups_rescaled() const { return last_groups_rescaled_; }

 private:
  struct StreamCache {
    const ContentCategories* categories = nullptr;  ///< identity key
    std::vector<double> config_costs;  ///< copy for the dirty check
    std::vector<double> forecast;      ///< scales currently installed
    size_t first_group = 0;
    size_t num_categories = 0;
  };

  std::vector<StreamCache> cache_;
  lp::IncrementalMckpSolver solver_;
  lp::MckpSolution solution_;
  std::vector<double> group_values_;  ///< SetGroup scratch: one quality row
  size_t last_groups_rebuilt_ = 0;
  size_t last_groups_rescaled_ = 0;
};

/// Everything needed to run one stream's ingestion engine in a multi-stream
/// deployment: the stream's own workload and offline model (Appendix D),
/// its core share, and its engine options.
struct StreamEngineJob {
  const Workload* workload = nullptr;
  const OfflineModel* model = nullptr;
  sim::ClusterSpec cluster;
  const sim::CostModel* cost_model = nullptr;
  EngineOptions options;
  SimTime start_time = 0.0;
};

/// Per-stream knob overrides a running StreamSet accepts at plan boundaries
/// (the `sky serve` live-reconfiguration surface). Unset fields keep their
/// current value; both target EngineOptions fields the engine reads only
/// when installing a plan, so changes land at the NEXT boundary and never
/// retroactively.
struct StreamReconfig {
  std::optional<double> cloud_budget_usd_per_interval;
  std::optional<double> work_budget_override;
};

/// How a StreamSet plans its streams at each boundary.
enum class MultiStreamPlanning {
  /// Every stream runs the single-stream planner on its own budget — the
  /// even-split baseline of Appendix D (and the exact behavior of running
  /// each engine on its own).
  kIndependent,
  /// Appendix D's joint program (Eqs. 7-9): at every lockstep plan
  /// boundary, all streams' (forecast, cost) coefficients enter ONE
  /// fractional MCKP under the shared budget, so credits flow to the
  /// streams whose hard content gains the most.
  kJoint,
};

struct StreamSetOptions {
  MultiStreamPlanning planning = MultiStreamPlanning::kJoint;
  /// Shared budget for joint planning, core-seconds per video-second.
  /// When <= 0 it is derived at every boundary as the sum of each stream's
  /// own planning budget (cores + cloud credits, or the work override) —
  /// i.e. joint planning re-divides exactly the resources the independent
  /// mode splits evenly.
  double shared_budget_core_s_per_video_s = 0.0;
  /// Solver for the joint program. Independent mode uses each engine's own
  /// EngineOptions::planner_backend instead.
  PlannerBackend planner_backend = PlannerBackend::kStructured;
  /// Supervision: how many times a stream that fails mid-interval (error
  /// Status or a throwing workload UDF) is restarted from its last plan-
  /// boundary checkpoint before being declared dead. 0 (the default)
  /// disables supervision entirely — no boundary snapshots are taken and
  /// failures quarantine the stream on first strike, the exact pre-existing
  /// behavior.
  size_t max_stream_restarts = 0;
  /// When non-empty, the set writes a crash-consistent fleet checkpoint to
  /// this path (via io::SaveFleetCheckpoint — atomic temp-file + rename)
  /// every `checkpoint_every_boundaries` lockstep plan boundaries. A failed
  /// write never fails the run; see last_checkpoint_status().
  std::string checkpoint_path;
  size_t checkpoint_every_boundaries = 0;
};

/// N ingestion sessions multiplexed on one shared virtual clock. Each
/// stream keeps its own workload, offline model and switcher state; the set
/// steps them together, and — in joint mode — intercepts the lockstep plan
/// boundaries to run Appendix D's joint knob planner across all live
/// streams under the shared budget.
///
///   auto set = StreamSet::Create(jobs, {.planning = kJoint});
///   while (!set->Done()) set->Step();        // or RunToCompletion(&pool)
///   auto results = set->Results();
///
/// Independent mode is the exact semantics of running every engine on its
/// own (RunStreamEngines is a thin wrapper over it): results are
/// bitwise-identical to per-engine Run, for any thread count.
class StreamSet {
 public:
  /// Validates and starts every stream. Jobs with null pointers (or whose
  /// engine fails to start) are recorded per-stream — mirroring the
  /// per-stream error semantics of RunStreamEngines — and do not fail the
  /// set. Joint mode additionally requires every valid stream to share the
  /// same segment length and plan interval, so boundaries hit in lockstep.
  static Result<StreamSet> Create(std::vector<StreamEngineJob> jobs,
                                  StreamSetOptions options = {});

  /// Create, then restore every stream from a fleet checkpoint written by
  /// SaveCheckpoint. The first ckpt.streams.size() jobs must describe the
  /// checkpointed fleet (same models — bitwise, or the resumed runs
  /// diverge); options need not match the original set's. Streams the
  /// checkpoint recorded as failed come back failed; streams with a
  /// serialized engine state resume from it bitwise, so completing the
  /// recovered set yields results identical to a run that never stopped.
  /// Extra trailing jobs start FRESH at their own start_time — the rolling-
  /// restart path for fleets that admitted new members after the snapshot.
  /// kNotFound for a missing file, kInvalidArgument for a corrupt one or
  /// fewer jobs than checkpointed streams.
  static Result<StreamSet> RecoverFromCheckpoint(
      std::vector<StreamEngineJob> jobs, const std::string& path,
      StreamSetOptions options = {});

  /// Same, from an already-parsed checkpoint (the serve server embeds fleet
  /// bytes inside its own checkpoint file and parses them itself).
  static Result<StreamSet> RecoverFromCheckpoint(
      std::vector<StreamEngineJob> jobs, const io::FleetCheckpoint& ckpt,
      StreamSetOptions options = {});

  StreamSet(StreamSet&&) = default;
  StreamSet& operator=(StreamSet&&) = default;

  size_t num_streams() const { return engines_.size(); }
  MultiStreamPlanning planning() const { return options_.planning; }

  /// Replaces the shared joint-planning budget (same semantics as
  /// StreamSetOptions::shared_budget_core_s_per_video_s, including <= 0 for
  /// "derive from the streams' own budgets"). Takes effect at the next plan
  /// boundary — the live-reprovisioning handle.
  void set_shared_budget(double core_s_per_video_s) {
    options_.shared_budget_core_s_per_video_s = core_s_per_video_s;
  }

  /// Wall-clock milliseconds of every joint plan boundary solved so far
  /// (PrepareBoundary through the last InstallPlan): the scheduler's tail
  /// latency surface. Empty in independent mode.
  const std::vector<double>& boundary_latencies_ms() const {
    return boundary_ms_;
  }

  /// True once no stream remains live (finished or failed).
  bool Done() const;

  // --- Dynamic fleet membership (plan-boundary operations) -----------------
  //
  // Streams may join and leave a RUNNING fleet, but only at the lockstep
  // plan boundary — the single-threaded window where every live stream sits
  // at the same virtual time and no plan is installed yet. The joint
  // planner notices the layout change by itself and re-solves cold for the
  // new membership (cold == warm bitwise), so from that boundary onward the
  // fleet is indistinguishable from one created with the final membership.
  // This is the admission surface `sky serve` builds on.

  /// True when membership operations are legal right now: every live stream
  /// sits at its plan boundary (always true when no stream is live).
  /// Independent mode has no lockstep requirement and is always true.
  bool AtLockstepBoundary() const;

  /// Admits a new stream into the running fleet and returns its index
  /// (indices are stable for the set's lifetime — slots are never reused).
  /// The stream starts at job.start_time, which for bitwise equivalence
  /// with a fresh fleet must equal the joining boundary's virtual time.
  /// kFailedPrecondition when not at a lockstep boundary; kInvalidArgument
  /// for null job pointers, a failed engine start, or (joint mode) a
  /// boundary cadence differing from the fleet's.
  Result<size_t> AddStream(const StreamEngineJob& job);

  /// Retires stream `v`: frees its engine and marks the slot
  /// kFailedPrecondition("stream removed..."). Live streams can only leave
  /// at a lockstep boundary; finished, failed, or invalid slots can be
  /// cleared any time. The slot index stays occupied (Results() keeps job
  /// order) — capture Results()[v] first if the stream finished.
  Status RemoveStream(size_t v);

  /// Applies per-stream knob overrides; effective at the next plan
  /// boundary. kInvalidArgument for an out-of-range or engine-less slot,
  /// kFailedPrecondition for a quarantined one, or a negative budget.
  Status ReconfigureStream(size_t v, const StreamReconfig& changes);

  /// The fleet's all-cheapest joint cost: Σ over live streams of
  /// min_k cost(k), core-seconds per video-second — the exact feasibility
  /// threshold of the joint program (forecasts sum to 1 per stream and
  /// cost(k) is category-independent, so the cheapest joint plan costs
  /// this regardless of content). A fleet is admissible under a shared
  /// budget iff this does not exceed it; `sky serve` admission control is
  /// this comparison at the joining boundary.
  double CheapestFleetCostCoreSPerVideoS() const;

  /// Advances every live stream by one segment on the shared clock; in
  /// joint mode, runs the joint planner first when the streams sit at a
  /// plan boundary.
  Status Step();

  /// Steps until every live stream has ingested at least `elapsed` seconds
  /// of its own stream (or finished).
  Status RunUntilElapsed(SimTime elapsed);

  /// Runs every stream to completion. Independent mode fans whole engine
  /// runs out on `pool` (one stream per slot); joint mode solves each
  /// lockstep boundary serially and fans the in-between intervals out.
  /// Results are identical for any pool size, and identical to stepping
  /// the set manually.
  Status RunToCompletion(dag::ThreadPool* pool = nullptr);

  /// Per-stream results in job order: the final EngineResult for finished
  /// streams, the stream's error otherwise (kFailedPrecondition for
  /// streams that are still mid-run).
  std::vector<Result<EngineResult>> Results() const;

  /// Live inspection of stream `v` (null when the job was invalid).
  const IngestionEngine* engine(size_t v) const { return engines_[v].get(); }

  /// The terminal error of stream `v` (Ok while live or finished).
  const Status& stream_status(size_t v) const { return statuses_[v]; }

  /// How many supervised restarts stream `v` has consumed so far.
  size_t stream_restarts(size_t v) const { return restarts_used_[v]; }

  /// Total supervised restarts across the fleet.
  size_t total_restarts() const;

  /// Snapshots the whole fleet into an in-memory checkpoint: per-stream
  /// quarantine status plus, for every started engine, its full serialized
  /// session state. Meaningful at a lockstep boundary, where every live
  /// stream sits at the same virtual time, but callable anywhere.
  Status CaptureCheckpoint(io::FleetCheckpoint* out) const;

  /// CaptureCheckpoint written to `path`, atomically (temp file + rename).
  Status SaveCheckpoint(const std::string& path) const;

  /// Status of the most recent automatic checkpoint write (Ok when none has
  /// been attempted). Auto-checkpoint failures are recorded here, never
  /// propagated into the run.
  const Status& last_checkpoint_status() const {
    return last_checkpoint_status_;
  }

 private:
  explicit StreamSet(StreamSetOptions options) : options_(options) {}

  bool Active(size_t v) const {
    return engines_[v] != nullptr && statuses_[v].ok() &&
           !engines_[v]->Done();
  }

  /// Joint mode: when the live streams sit at their (lockstep) plan
  /// boundary, prepare every stream, solve the joint program, and install
  /// the per-stream plans.
  Status JointPlanBoundaryIfDue();

  /// The one supervised stepping loop every driver funnels through: steps
  /// stream `v` until it finishes, fails for good, or its next segment index
  /// reaches `target_index`. A failing step (error Status or a thrown
  /// exception) consumes a restart — the engine is restored from the last
  /// boundary checkpoint and the loop continues — until the restart budget
  /// is spent, at which point the stream quarantines exactly as before.
  /// Thread-safe across distinct `v` (touches only stream v's state).
  Status AdvanceStream(size_t v, int64_t target_index);

  /// Snapshots stream `v`'s engine for supervised restarts. No-op unless
  /// max_stream_restarts > 0.
  void CaptureBoundaryCheckpoint(size_t v);

  /// Counts a planned boundary and, when configured, writes the periodic
  /// fleet checkpoint (failures land in last_checkpoint_status_ only).
  void MaybeAutoCheckpoint();

  StreamSetOptions options_;
  std::vector<StreamEngineJob> jobs_;
  std::vector<std::unique_ptr<IngestionEngine>> engines_;
  std::vector<Status> statuses_;
  /// Supervision state: last boundary snapshot + restarts consumed, per
  /// stream (snapshots stay null when supervision is off).
  std::vector<std::unique_ptr<IngestState>> boundary_ckpts_;
  std::vector<size_t> restarts_used_;
  size_t boundaries_planned_ = 0;
  Status last_checkpoint_status_;
  /// Warm incremental planner (kStructured joint boundaries).
  JointPlanner joint_planner_;
  std::vector<KnobPlan> joint_plans_;
  /// Cold-solve scratch (kSimplex oracle boundaries), reused across calls.
  PlanWorkspace joint_ws_;
  std::vector<StreamPlanInput> inputs_;
  std::vector<size_t> planned_;
  std::vector<double> boundary_ms_;
};

/// Runs every stream's ingestion engine, fanned out on `pool` (each stream
/// is an independent simulation; null runs them serially). Results are
/// returned in job order and are identical for any thread count. Thin
/// wrapper over a StreamSet in independent-planning mode.
std::vector<Result<EngineResult>> RunStreamEngines(
    const std::vector<StreamEngineJob>& jobs, dag::ThreadPool* pool = nullptr);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_MULTI_STREAM_H_
