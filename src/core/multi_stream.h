#ifndef SKYSCRAPER_CORE_MULTI_STREAM_H_
#define SKYSCRAPER_CORE_MULTI_STREAM_H_

#include <vector>

#include "core/engine.h"
#include "core/planner.h"
#include "dag/thread_pool.h"
#include "util/result.h"

namespace sky::core {

/// Planner input for one stream in a multi-stream deployment (Appendix D):
/// each stream ran its own offline phase (own categories, own forecast, own
/// filtered configurations) — only the knob planner is joint.
struct StreamPlanInput {
  const ContentCategories* categories = nullptr;
  std::vector<double> forecast;      ///< r_c per category of this stream
  std::vector<double> config_costs;  ///< cost(k) per config of this stream
};

/// Solves the joint program of Appendix D (Eqs. 7-9): per-stream quality and
/// cost are summed and one shared budget constrains them all; normalization
/// holds per (stream, category). Returns one KnobPlan per stream.
///
/// The joint program is the same fractional MCKP as the single-stream one,
/// just with Σ_v C_v groups sharing one budget multiplier — the structured
/// backend (default) solves per-stream hulls under one shared λ in
/// O(Σ C_v·K_v · log) without ever materializing the dense
/// (Σ C_v + 1) × (V·C·K) simplex tableau the kSimplex oracle pivots on.
/// Passing a long-lived `workspace` makes repeated planning allocation-free.
Result<std::vector<KnobPlan>> ComputeJointKnobPlan(
    const std::vector<StreamPlanInput>& streams,
    double budget_core_s_per_video_s,
    PlannerBackend backend = PlannerBackend::kStructured,
    PlanWorkspace* workspace = nullptr);

/// Appendix D's fair core allocation for streams sharing one server:
/// floor(cores / num_streams), but at least 1.
int FairCoreShare(int cores, size_t num_streams);

/// Everything needed to run one stream's ingestion engine in a multi-stream
/// deployment: the stream's own workload and offline model (Appendix D),
/// its core share, and its engine options.
struct StreamEngineJob {
  const Workload* workload = nullptr;
  const OfflineModel* model = nullptr;
  sim::ClusterSpec cluster;
  const sim::CostModel* cost_model = nullptr;
  EngineOptions options;
  SimTime start_time = 0.0;
};

/// Runs every stream's ingestion engine, fanned out on `pool` (each stream
/// is an independent simulation; null runs them serially). Results are
/// returned in job order and are identical for any thread count.
std::vector<Result<EngineResult>> RunStreamEngines(
    const std::vector<StreamEngineJob>& jobs, dag::ThreadPool* pool = nullptr);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_MULTI_STREAM_H_
