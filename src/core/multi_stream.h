#ifndef SKYSCRAPER_CORE_MULTI_STREAM_H_
#define SKYSCRAPER_CORE_MULTI_STREAM_H_

#include <vector>

#include "core/planner.h"
#include "util/result.h"

namespace sky::core {

/// Planner input for one stream in a multi-stream deployment (Appendix D):
/// each stream ran its own offline phase (own categories, own forecast, own
/// filtered configurations) — only the knob planner is joint.
struct StreamPlanInput {
  const ContentCategories* categories = nullptr;
  std::vector<double> forecast;      ///< r_c per category of this stream
  std::vector<double> config_costs;  ///< cost(k) per config of this stream
};

/// Solves the joint LP of Appendix D (Eqs. 7-9): per-stream quality and cost
/// are summed and one shared budget constrains them all; normalization holds
/// per (stream, category). Returns one KnobPlan per stream.
Result<std::vector<KnobPlan>> ComputeJointKnobPlan(
    const std::vector<StreamPlanInput>& streams,
    double budget_core_s_per_video_s);

/// Appendix D's fair core allocation for streams sharing one server:
/// floor(cores / num_streams), but at least 1.
int FairCoreShare(int cores, size_t num_streams);

}  // namespace sky::core

#endif  // SKYSCRAPER_CORE_MULTI_STREAM_H_
