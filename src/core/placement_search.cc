#include "core/placement_search.h"

#include <algorithm>
#include <map>

#include "util/rng.h"

namespace sky::core {

namespace {

Result<PlacementProfile> ProfilePlacement(const dag::TaskGraph& graph,
                                          dag::Placement placement,
                                          const sim::ClusterSpec& cluster) {
  SKY_ASSIGN_OR_RETURN(sim::DagSimResult sim,
                       sim::SimulateDag(graph, placement, cluster));
  PlacementProfile profile;
  profile.placement = std::move(placement);
  profile.runtime_s = sim.makespan_s;
  profile.cloud_usd = sim.cloud_cost_usd;
  profile.onprem_core_s = sim.onprem_core_seconds;
  profile.uplink_bytes = sim.uplink_bytes;
  return profile;
}

/// Candidate numbers of cloud-placed nodes for a group of `n`
/// interchangeable siblings: 0, powers of two, and n itself.
std::vector<size_t> CloudCountCandidates(size_t n) {
  std::vector<size_t> counts = {0};
  for (size_t v = 1; v < n; v *= 2) counts.push_back(v);
  if (n > 0) counts.push_back(n);
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

}  // namespace

std::vector<PlacementProfile> ParetoFilterPlacements(
    std::vector<PlacementProfile> profiles) {
  // Sort by (cost asc, runtime asc); sweep keeping strictly improving
  // runtimes.
  std::sort(profiles.begin(), profiles.end(),
            [](const PlacementProfile& a, const PlacementProfile& b) {
              if (a.cloud_usd != b.cloud_usd) return a.cloud_usd < b.cloud_usd;
              return a.runtime_s < b.runtime_s;
            });
  std::vector<PlacementProfile> pareto;
  double best_runtime = std::numeric_limits<double>::infinity();
  for (PlacementProfile& p : profiles) {
    if (p.runtime_s < best_runtime - 1e-12) {
      best_runtime = p.runtime_s;
      pareto.push_back(std::move(p));
    }
  }
  return pareto;
}

Result<std::vector<PlacementProfile>> SearchPlacements(
    const dag::TaskGraph& graph, const sim::ClusterSpec& cluster,
    const PlacementSearchOptions& options) {
  SKY_RETURN_NOT_OK(graph.Validate());
  size_t n = graph.NumNodes();
  if (n == 0) return Status::InvalidArgument("empty task graph");

  // Partition nodes into interchangeability groups (TaskNode::group); nodes
  // without a group form singletons. Only the *count* of cloud nodes per
  // group matters, which collapses the 2^n space to a small product.
  std::vector<std::vector<size_t>> groups;
  std::map<int, size_t> group_index;
  for (size_t i = 0; i < n; ++i) {
    int gid = graph.node(i).group;
    if (gid < 0) {
      groups.push_back({i});
      continue;
    }
    auto it = group_index.find(gid);
    if (it == group_index.end()) {
      group_index.emplace(gid, groups.size());
      groups.push_back({i});
    } else {
      groups[it->second].push_back(i);
    }
  }

  std::vector<std::vector<size_t>> candidates;
  candidates.reserve(groups.size());
  size_t total_combos = 1;
  for (const auto& g : groups) {
    candidates.push_back(CloudCountCandidates(g.size()));
    total_combos *= candidates.back().size();
    if (total_combos > 4 * options.sample_count) {
      total_combos = 4 * options.sample_count;  // saturate; sampled below
    }
  }

  auto build_placement =
      [&](const std::vector<size_t>& counts) -> dag::Placement {
    dag::Placement p = dag::Placement::AllOnPrem(n);
    for (size_t g = 0; g < groups.size(); ++g) {
      for (size_t j = 0; j < counts[g] && j < groups[g].size(); ++j) {
        p.node_loc[groups[g][j]] = dag::Loc::kCloud;
      }
    }
    return p;
  };

  // Enumerate the candidate count vectors serially (RNG draws stay ordered),
  // then simulate them in parallel into per-index slots: the profile list —
  // and therefore the Pareto set — is identical for every thread count.
  std::vector<std::vector<size_t>> combos;
  if (total_combos <= options.sample_count) {
    // Exhaustive cross-product over group cloud counts.
    std::vector<size_t> selector(groups.size(), 0);
    for (;;) {
      std::vector<size_t> counts(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        counts[g] = candidates[g][selector[g]];
      }
      combos.push_back(std::move(counts));
      // Odometer increment.
      size_t g = 0;
      while (g < groups.size() && ++selector[g] == candidates[g].size()) {
        selector[g] = 0;
        ++g;
      }
      if (g == groups.size()) break;
    }
  } else {
    // Random sampling plus the two extremes.
    Rng rng(options.seed);
    combos.emplace_back(groups.size(), 0);
    std::vector<size_t> all_cloud(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) all_cloud[g] = groups[g].size();
    combos.push_back(std::move(all_cloud));
    for (size_t s = 0; s < options.sample_count; ++s) {
      std::vector<size_t> counts(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        size_t pick = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(candidates[g].size()) - 1));
        counts[g] = candidates[g][pick];
      }
      combos.push_back(std::move(counts));
    }
  }

  std::vector<PlacementProfile> profiles(combos.size());
  std::vector<Status> statuses(combos.size(), Status::Ok());
  dag::ParallelFor(options.pool, combos.size(), [&](size_t i) {
    Result<PlacementProfile> profile =
        ProfilePlacement(graph, build_placement(combos[i]), cluster);
    if (profile.ok()) {
      profiles[i] = std::move(*profile);
    } else {
      statuses[i] = profile.status();
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  std::vector<PlacementProfile> pareto =
      ParetoFilterPlacements(std::move(profiles));
  if (pareto.empty()) return Status::Internal("empty Pareto frontier");
  return pareto;
}

}  // namespace sky::core
