#include "core/placement_search.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <optional>

#include "util/rng.h"

namespace sky::core {

namespace {

Result<PlacementProfile> ProfilePlacement(const dag::TaskGraph& graph,
                                          dag::Placement placement,
                                          const sim::ClusterSpec& cluster) {
  SKY_ASSIGN_OR_RETURN(sim::DagSimResult sim,
                       sim::SimulateDag(graph, placement, cluster));
  PlacementProfile profile;
  profile.placement = std::move(placement);
  profile.runtime_s = sim.makespan_s;
  profile.cloud_usd = sim.cloud_cost_usd;
  profile.onprem_core_s = sim.onprem_core_seconds;
  profile.uplink_bytes = sim.uplink_bytes;
  return profile;
}

/// Candidate numbers of cloud-placed nodes for a group of `n`
/// interchangeable siblings: 0, powers of two, and n itself.
std::vector<size_t> CloudCountCandidates(size_t n) {
  std::vector<size_t> counts = {0};
  for (size_t v = 1; v < n; v *= 2) counts.push_back(v);
  if (n > 0) counts.push_back(n);
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

/// Lexicographic order on the placement bit-vector (kOnPrem < kCloud): the
/// stable index that breaks (cost, runtime) ties independent of evaluation
/// order.
bool PlacementLess(const dag::Placement& a, const dag::Placement& b) {
  return std::lexicographical_compare(
      a.node_loc.begin(), a.node_loc.end(), b.node_loc.begin(),
      b.node_loc.end(), [](dag::Loc x, dag::Loc y) {
        return static_cast<int>(x) < static_cast<int>(y);
      });
}

/// Nodes partitioned into interchangeability groups (TaskNode::group); nodes
/// without a group form singletons. Only the *count* of cloud nodes per
/// group matters, which collapses the 2^n space to a small product.
std::vector<std::vector<size_t>> PartitionGroups(const dag::TaskGraph& graph) {
  std::vector<std::vector<size_t>> groups;
  std::map<int, size_t> group_index;
  for (size_t i = 0; i < graph.NumNodes(); ++i) {
    int gid = graph.node(i).group;
    if (gid < 0) {
      groups.push_back({i});
      continue;
    }
    auto it = group_index.find(gid);
    if (it == group_index.end()) {
      group_index.emplace(gid, groups.size());
      groups.push_back({i});
    } else {
      groups[it->second].push_back(i);
    }
  }
  return groups;
}

dag::Placement BuildPlacement(const std::vector<std::vector<size_t>>& groups,
                              size_t num_nodes,
                              const std::vector<size_t>& counts) {
  dag::Placement p = dag::Placement::AllOnPrem(num_nodes);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (size_t j = 0; j < counts[g] && j < groups[g].size(); ++j) {
      p.node_loc[groups[g][j]] = dag::Loc::kCloud;
    }
  }
  return p;
}

/// The historical enumerate/sample backend (bitwise identical to the
/// pre-backend SearchPlacements).
Result<std::vector<PlacementProfile>> EnumeratePlacements(
    const dag::TaskGraph& graph, const sim::ClusterSpec& cluster,
    const std::vector<std::vector<size_t>>& groups,
    const PlacementSearchOptions& options, PlacementSearchStats* stats) {
  size_t n = graph.NumNodes();
  std::vector<std::vector<size_t>> candidates;
  candidates.reserve(groups.size());
  size_t total_combos = 1;
  for (const auto& g : groups) {
    candidates.push_back(CloudCountCandidates(g.size()));
    total_combos *= candidates.back().size();
    if (total_combos > 4 * options.sample_count) {
      total_combos = 4 * options.sample_count;  // saturate; sampled below
    }
  }

  // Enumerate the candidate count vectors serially (RNG draws stay ordered),
  // then simulate them in parallel into per-index slots: the profile list —
  // and therefore the Pareto set — is identical for every thread count.
  std::vector<std::vector<size_t>> combos;
  if (total_combos <= options.sample_count) {
    // Exhaustive cross-product over group cloud counts.
    std::vector<size_t> selector(groups.size(), 0);
    for (;;) {
      std::vector<size_t> counts(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        counts[g] = candidates[g][selector[g]];
      }
      combos.push_back(std::move(counts));
      // Odometer increment.
      size_t g = 0;
      while (g < groups.size() && ++selector[g] == candidates[g].size()) {
        selector[g] = 0;
        ++g;
      }
      if (g == groups.size()) break;
    }
  } else {
    // Random sampling plus the two extremes.
    Rng rng(options.seed);
    combos.emplace_back(groups.size(), 0);
    std::vector<size_t> all_cloud(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) all_cloud[g] = groups[g].size();
    combos.push_back(std::move(all_cloud));
    for (size_t s = 0; s < options.sample_count; ++s) {
      std::vector<size_t> counts(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        size_t pick = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(candidates[g].size()) - 1));
        counts[g] = candidates[g][pick];
      }
      combos.push_back(std::move(counts));
    }
  }

  std::vector<PlacementProfile> profiles(combos.size());
  std::vector<Status> statuses(combos.size(), Status::Ok());
  dag::ParallelFor(options.pool, combos.size(), [&](size_t i) {
    Result<PlacementProfile> profile =
        ProfilePlacement(graph, BuildPlacement(groups, n, combos[i]), cluster);
    if (profile.ok()) {
      profiles[i] = std::move(*profile);
    } else {
      statuses[i] = profile.status();
    }
  });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  if (stats != nullptr) stats->evaluations += combos.size();
  return profiles;
}

/// One greedy/annealed restart chain over the group cloud-count vector.
/// Chains are fully independent (own Rng fork, own memo table), so they run
/// bitwise identically at any thread count.
struct Chain {
  const dag::TaskGraph* graph = nullptr;
  const sim::ClusterSpec* cluster = nullptr;
  const std::vector<std::vector<size_t>>* groups = nullptr;
  Rng rng{0};
  double lambda = 0.5;        ///< scalarization weight on cloud cost
  double cost_scale = 1.0;    ///< all-cloud cost (normalizes energy)
  double runtime_scale = 1.0; ///< all-on-prem runtime (normalizes energy)
  size_t budget = 0;          ///< fresh simulations this chain may spend
  // The memo doubles as the chain's evaluated set: every simulated profile
  // lands on the candidate pool whether or not the walk accepted it.
  std::map<std::vector<size_t>, PlacementProfile> memo;
  PlacementSearchStats stats;
  Status status = Status::Ok();

  double Energy(const PlacementProfile& p) const {
    return lambda * p.cloud_usd / cost_scale +
           (1.0 - lambda) * p.runtime_s / runtime_scale;
  }

  /// Evaluates a count vector. Memo hits are free; fresh simulations charge
  /// the budget. nullopt = budget exhausted (or a simulation error, recorded
  /// in `status`).
  std::optional<double> Eval(const std::vector<size_t>& counts) {
    auto it = memo.find(counts);
    if (it != memo.end()) return Energy(it->second);
    if (budget == 0 || !status.ok()) return std::nullopt;
    Result<PlacementProfile> profile = ProfilePlacement(
        *graph, BuildPlacement(*groups, graph->NumNodes(), counts), *cluster);
    if (!profile.ok()) {
      status = profile.status();
      return std::nullopt;
    }
    --budget;
    ++stats.evaluations;
    double e = Energy(*profile);
    memo.emplace(counts, std::move(*profile));
    return e;
  }

  /// Steepest-descent hill-climb from `counts` to a local optimum (or budget
  /// exhaustion). Neighbors are scanned in a fixed order and ties keep the
  /// earliest neighbor, so the walk is a pure function of (seed, budget).
  std::vector<size_t> GreedyDescent(std::vector<size_t> counts) {
    std::optional<double> cur = Eval(counts);
    if (!cur) return counts;
    const auto& gs = *groups;
    for (;;) {
      std::optional<std::vector<size_t>> best;
      double best_e = *cur;
      auto consider = [&](std::vector<size_t> next) -> bool {
        std::optional<double> e = Eval(next);
        if (!e) return false;  // budget exhausted: end the scan
        if (*e < best_e - 1e-15) {
          best_e = *e;
          best = std::move(next);
        }
        return true;
      };
      bool exhausted = false;
      // move-one-op: +/- one cloud node in a single group.
      for (size_t g = 0; g < gs.size() && !exhausted; ++g) {
        if (counts[g] < gs[g].size()) {
          std::vector<size_t> next = counts;
          ++next[g];
          exhausted = !consider(std::move(next));
        }
      }
      for (size_t g = 0; g < gs.size() && !exhausted; ++g) {
        if (counts[g] > 0) {
          std::vector<size_t> next = counts;
          --next[g];
          exhausted = !consider(std::move(next));
        }
      }
      // swap-cut-point: shift one cloud node between two groups.
      for (size_t g = 0; g < gs.size() && !exhausted; ++g) {
        for (size_t h = 0; h < gs.size() && !exhausted; ++h) {
          if (g == h) continue;
          if (counts[g] > 0 && counts[h] < gs[h].size()) {
            std::vector<size_t> next = counts;
            --next[g];
            ++next[h];
            exhausted = !consider(std::move(next));
          }
        }
      }
      if (exhausted || !best) return counts;  // local optimum (or out of budget)
      counts = std::move(*best);
      cur = best_e;
      ++stats.greedy_moves;
    }
  }

  /// Annealing continuation from the greedy optimum: random neighborhood
  /// moves under geometric cooling until the budget is spent.
  void Anneal(const std::vector<size_t>& greedy_opt, double temperature,
              double cooling) {
    const auto& gs = *groups;
    std::vector<size_t> cur = greedy_opt;
    std::optional<double> cur_e = Eval(cur);
    if (!cur_e) return;
    // Memo hits are free, so cap proposals to bound cycling once every
    // reachable neighbor is memoized.
    size_t max_proposals = 64 * (budget + 4);
    for (size_t p = 0; p < max_proposals && budget > 0 && status.ok(); ++p) {
      temperature = std::max(temperature * cooling, 1e-6);
      int64_t roll = rng.UniformInt(0, 9);
      std::vector<size_t> next = cur;
      if (roll <= 5) {
        // move-one-op
        size_t g = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(gs.size()) - 1));
        bool up = rng.Bernoulli(0.5);
        if (up && next[g] < gs[g].size()) {
          ++next[g];
        } else if (!up && next[g] > 0) {
          --next[g];
        } else {
          continue;  // infeasible move; draws stay deterministic
        }
      } else if (roll <= 8) {
        // swap-cut-point
        size_t g = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(gs.size()) - 1));
        size_t h = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(gs.size()) - 1));
        if (g == h || next[g] == 0 || next[h] >= gs[h].size()) continue;
        --next[g];
        ++next[h];
      } else {
        // re-seed-from-greedy: jump back to the descent optimum (memoized,
        // free) to escape a drifted region.
        next = greedy_opt;
        ++stats.reseeds;
      }
      std::optional<double> next_e = Eval(next);
      if (!next_e) break;
      double delta = *next_e - *cur_e;
      if (delta < 0.0 ||
          rng.Uniform(0.0, 1.0) < std::exp(-delta / temperature)) {
        if (delta > 0.0) ++stats.uphill_accepts;
        cur = std::move(next);
        cur_e = next_e;
      }
    }
  }
};

Result<std::vector<PlacementProfile>> LocalSearchPlacements(
    const dag::TaskGraph& graph, const sim::ClusterSpec& cluster,
    const std::vector<std::vector<size_t>>& groups,
    const PlacementSearchOptions& options, PlacementSearchStats* stats) {
  size_t n = graph.NumNodes();
  // The two extremes are structural anchors: all-on-prem feeds
  // ConfigProfile::OnPremRuntime, all-cloud calibrates the energy scales.
  std::vector<size_t> zeros(groups.size(), 0);
  std::vector<size_t> full(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) full[g] = groups[g].size();
  auto t0 = std::chrono::steady_clock::now();
  SKY_ASSIGN_OR_RETURN(
      PlacementProfile all_onprem,
      ProfilePlacement(graph, BuildPlacement(groups, n, zeros), cluster));
  SKY_ASSIGN_OR_RETURN(
      PlacementProfile all_cloud,
      ProfilePlacement(graph, BuildPlacement(groups, n, full), cluster));
  double extremes_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  size_t eval_budget = options.eval_budget;
  if (options.budget_ms > 0.0) {
    // Wall-clock budget: approximate evaluations that fit. Run-to-run
    // variable by nature; fix eval_budget for bitwise replay.
    double per_eval_s = std::max(extremes_s / 2.0, 1e-7);
    double fit = options.budget_ms / 1e3 / per_eval_s;
    eval_budget = static_cast<size_t>(
        std::clamp(fit, 2.0, 1e6));
  }

  size_t restarts = std::max<size_t>(1, options.restarts);
  double cost_scale = std::max(all_cloud.cloud_usd, 1e-9);
  double runtime_scale = std::max(all_onprem.runtime_s, 1e-9);

  // Chains fan out on the pool into per-chain slots; chain r derives its
  // stream from Rng(seed).ForkIndex(r), so results are bitwise identical at
  // any thread count.
  Rng root(options.seed);
  std::vector<Chain> chains(restarts);
  for (size_t r = 0; r < restarts; ++r) {
    Chain& c = chains[r];
    c.graph = &graph;
    c.cluster = &cluster;
    c.groups = &groups;
    c.rng = root.ForkIndex(r);
    c.lambda = restarts == 1 ? 0.5
                             : static_cast<double>(r) /
                                   static_cast<double>(restarts - 1);
    c.cost_scale = cost_scale;
    c.runtime_scale = runtime_scale;
    c.budget = eval_budget / restarts + (r < eval_budget % restarts ? 1 : 0);
    c.memo.emplace(zeros, all_onprem);
    c.memo.emplace(full, all_cloud);
  }
  dag::ParallelFor(options.pool, restarts, [&](size_t r) {
    Chain& c = chains[r];
    // Chain 0 starts at all-on-prem (the canonical hill-climb); later
    // chains start at a random count vector for multi-start coverage.
    std::vector<size_t> start(groups.size(), 0);
    if (r > 0) {
      for (size_t g = 0; g < groups.size(); ++g) {
        start[g] = static_cast<size_t>(
            c.rng.UniformInt(0, static_cast<int64_t>(groups[g].size())));
      }
    }
    std::vector<size_t> opt = c.GreedyDescent(std::move(start));
    if (options.backend == SearchBackend::kAnneal) {
      c.Anneal(opt, options.initial_temperature, options.cooling);
    }
  });

  std::vector<PlacementProfile> profiles;
  for (Chain& c : chains) {
    if (!c.status.ok()) return c.status;
    for (auto& [counts, profile] : c.memo) {
      profiles.push_back(std::move(profile));
    }
    if (stats != nullptr) {
      stats->evaluations += c.stats.evaluations;
      stats->greedy_moves += c.stats.greedy_moves;
      stats->uphill_accepts += c.stats.uphill_accepts;
      stats->reseeds += c.stats.reseeds;
    }
  }
  return profiles;
}

}  // namespace

std::vector<PlacementProfile> ParetoFilterPlacements(
    std::vector<PlacementProfile> profiles) {
  // Sort by (cost asc, runtime asc, placement lexicographic); the placement
  // tie-break makes the kept point on equal-(cost, runtime) ties a pure
  // function of the evaluated set, not of input order. Sweep keeping
  // strictly improving runtimes.
  std::sort(profiles.begin(), profiles.end(),
            [](const PlacementProfile& a, const PlacementProfile& b) {
              if (a.cloud_usd != b.cloud_usd) return a.cloud_usd < b.cloud_usd;
              if (a.runtime_s != b.runtime_s) return a.runtime_s < b.runtime_s;
              return PlacementLess(a.placement, b.placement);
            });
  std::vector<PlacementProfile> pareto;
  double best_runtime = std::numeric_limits<double>::infinity();
  for (PlacementProfile& p : profiles) {
    if (p.runtime_s < best_runtime - 1e-12) {
      best_runtime = p.runtime_s;
      pareto.push_back(std::move(p));
    }
  }
  return pareto;
}

double FrontierHypervolume(const std::vector<PlacementProfile>& frontier,
                           double ref_cloud_usd, double ref_runtime_s) {
  // Frontier points sorted by cost ascending (runtime descends along it);
  // sum the dominated rectangles left of the reference point.
  std::vector<const PlacementProfile*> pts;
  pts.reserve(frontier.size());
  for (const PlacementProfile& p : frontier) pts.push_back(&p);
  std::sort(pts.begin(), pts.end(),
            [](const PlacementProfile* a, const PlacementProfile* b) {
              if (a->cloud_usd != b->cloud_usd) {
                return a->cloud_usd < b->cloud_usd;
              }
              return a->runtime_s < b->runtime_s;
            });
  double hv = 0.0;
  double prev_runtime = ref_runtime_s;
  for (const PlacementProfile* p : pts) {
    if (p->cloud_usd >= ref_cloud_usd) break;
    if (p->runtime_s >= prev_runtime) continue;  // dominated or above ref
    hv += (ref_cloud_usd - p->cloud_usd) * (prev_runtime - p->runtime_s);
    prev_runtime = p->runtime_s;
  }
  return hv;
}

Result<std::vector<PlacementProfile>> SearchPlacements(
    const dag::TaskGraph& graph, const sim::ClusterSpec& cluster,
    const PlacementSearchOptions& options, PlacementSearchStats* stats) {
  SKY_RETURN_NOT_OK(graph.Validate());
  size_t n = graph.NumNodes();
  if (n == 0) return Status::InvalidArgument("empty task graph");
  if (options.backend == SearchBackend::kAnneal &&
      (options.cooling <= 0.0 || options.cooling > 1.0)) {
    return Status::InvalidArgument("cooling factor must be in (0, 1]");
  }

  std::vector<std::vector<size_t>> groups = PartitionGroups(graph);
  Result<std::vector<PlacementProfile>> profiles =
      options.backend == SearchBackend::kEnumerate
          ? EnumeratePlacements(graph, cluster, groups, options, stats)
          : LocalSearchPlacements(graph, cluster, groups, options, stats);
  SKY_RETURN_NOT_OK(profiles.status());

  std::vector<PlacementProfile> pareto =
      ParetoFilterPlacements(std::move(*profiles));
  if (pareto.empty()) return Status::Internal("empty Pareto frontier");
  return pareto;
}

}  // namespace sky::core
