#include "core/forecaster.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/stats.h"

namespace sky::core {

std::vector<double> CategoryHistogram(
    const std::vector<size_t>& category_sequence, size_t begin, size_t end,
    size_t num_categories) {
  std::vector<double> hist;
  CategoryHistogramInto(category_sequence, begin, end, num_categories, &hist);
  return hist;
}

void CategoryHistogramInto(const std::vector<size_t>& category_sequence,
                           size_t begin, size_t end, size_t num_categories,
                           std::vector<double>* out) {
  out->assign(num_categories, 0.0);
  end = std::min(end, category_sequence.size());
  for (size_t i = begin; i < end; ++i) {
    if (category_sequence[i] < num_categories) {
      (*out)[category_sequence[i]] += 1.0;
    }
  }
  // Move through NormalizeHistogram: no allocation, one normalization rule.
  *out = NormalizeHistogram(std::move(*out));
}

Result<ForecastDataset> BuildForecastDataset(
    const std::vector<size_t>& category_sequence, double segment_seconds,
    size_t num_categories, const ForecasterOptions& options) {
  if (num_categories == 0) {
    return Status::InvalidArgument("num_categories must be positive");
  }
  if (segment_seconds <= 0) {
    return Status::InvalidArgument("segment_seconds must be positive");
  }
  size_t in_segs =
      static_cast<size_t>(options.input_span / segment_seconds);
  size_t out_segs =
      static_cast<size_t>(options.planned_interval / segment_seconds);
  size_t stride = std::max<size_t>(
      1, static_cast<size_t>(options.training_stride / segment_seconds));
  if (in_segs < options.input_splits || out_segs == 0) {
    return Status::InvalidArgument("input span/planned interval too short");
  }
  if (category_sequence.size() < in_segs + out_segs) {
    return Status::InvalidArgument(
        "category sequence shorter than one input+target window");
  }

  size_t split_len = in_segs / options.input_splits;
  size_t samples = 0;
  for (size_t s = in_segs; s + out_segs <= category_sequence.size();
       s += stride) {
    ++samples;
  }
  ml::Matrix X(samples, options.input_splits * num_categories);
  ml::Matrix Y(samples, num_categories);

  // Sample windows overlap almost entirely (stride << window), so scanning
  // each window would touch the sequence O(samples * window) times — the
  // dominant cost of the Table-3 "train forecast model" step. One prefix-sum
  // pass makes every window histogram an O(|C|) subtraction instead. Counts
  // are integers, exact in doubles, so the rows are bitwise identical to the
  // scanned ones.
  size_t n = category_sequence.size();
  std::vector<uint32_t> prefix((n + 1) * num_categories, 0);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t* prev = prefix.data() + i * num_categories;
    uint32_t* next = prefix.data() + (i + 1) * num_categories;
    for (size_t c = 0; c < num_categories; ++c) next[c] = prev[c];
    if (category_sequence[i] < num_categories) {
      ++next[category_sequence[i]];
    }
  }
  // Normalized histogram of [begin, end) into `out`, same arithmetic as
  // CategoryHistogramInto: exact counts, one divide per category, uniform
  // fallback on an empty window.
  auto window_into = [&](size_t begin, size_t end, double* out) {
    const uint32_t* lo = prefix.data() + begin * num_categories;
    const uint32_t* hi = prefix.data() + end * num_categories;
    double total = 0.0;
    for (size_t c = 0; c < num_categories; ++c) {
      out[c] = static_cast<double>(hi[c] - lo[c]);
      total += out[c];
    }
    if (total <= 0.0) {
      double u = 1.0 / static_cast<double>(num_categories);
      for (size_t c = 0; c < num_categories; ++c) out[c] = u;
    } else {
      for (size_t c = 0; c < num_categories; ++c) out[c] /= total;
    }
  };
  // Histograms land straight in the pre-sized matrix rows (no per-row
  // temporary), so the fan-out is allocation-free and thread-count
  // invariant.
  dag::ParallelFor(options.pool, samples, [&](size_t row) {
    size_t s = in_segs + row * stride;
    for (size_t split = 0; split < options.input_splits; ++split) {
      size_t begin = s - in_segs + split * split_len;
      size_t end = split + 1 == options.input_splits ? s : begin + split_len;
      window_into(begin, end, X.RowPtr(row) + split * num_categories);
    }
    window_into(s, std::min(s + out_segs, n), Y.RowPtr(row));
  });
  return ForecastDataset{std::move(X), std::move(Y)};
}

Result<Forecaster> Forecaster::Train(
    const std::vector<size_t>& category_sequence, double segment_seconds,
    size_t num_categories, const ForecasterOptions& options) {
  SKY_ASSIGN_OR_RETURN(ForecastDataset data,
                       BuildForecastDataset(category_sequence, segment_seconds,
                                            num_categories, options));
  Rng rng(options.seed);
  // Appendix K architecture: input -> 16 ReLU -> 8 ReLU -> |C| softmax.
  ml::FeedForwardNet net(data.inputs.cols(), {16, 8}, num_categories,
                         ml::Activation::kSoftmax, &rng);
  ml::TrainOptions train = options.train_options;
  train.loss = ml::Loss::kCrossEntropy;
  // The batched trainer fans gradient chunks out on the offline pool unless
  // the caller pinned a training pool explicitly; the fixed chunk geometry
  // keeps the weights bit-identical either way.
  if (train.pool == nullptr) train.pool = options.pool;
  SKY_ASSIGN_OR_RETURN(ml::TrainReport report,
                       net.Train(data.inputs, data.targets, train));
  // The stored options outlive the training pools (the offline phase may
  // own them); null both pointers so no later call can dereference a dead
  // pool.
  ForecasterOptions stored = options;
  stored.pool = nullptr;
  stored.train_options.pool = nullptr;
  return Forecaster(std::move(net), stored, num_categories,
                    std::move(report));
}

Result<Forecaster> Forecaster::FromParts(const ml::NetSnapshot& net_snapshot,
                                         const ForecasterOptions& options,
                                         size_t num_categories,
                                         ml::TrainReport report) {
  if (num_categories == 0) {
    return Status::InvalidArgument("forecaster needs at least one category");
  }
  SKY_ASSIGN_OR_RETURN(ml::FeedForwardNet net,
                       ml::FeedForwardNet::FromSnapshot(net_snapshot));
  if (net.output_dim() != num_categories ||
      net.input_dim() != options.input_splits * num_categories) {
    return Status::InvalidArgument(
        "forecaster network shape disagrees with its options");
  }
  // Same pool hygiene as Train: stored options never carry a live pool.
  ForecasterOptions stored = options;
  stored.pool = nullptr;
  stored.train_options.pool = nullptr;
  return Forecaster(std::move(net), stored, num_categories,
                    std::move(report));
}

std::vector<double> Forecaster::FeaturesFromHistory(
    const std::vector<size_t>& recent_categories,
    double segment_seconds) const {
  std::vector<double> features;
  FeaturesFromHistoryInto(recent_categories, segment_seconds, &features);
  return features;
}

void Forecaster::FeaturesFromHistoryInto(
    const std::vector<size_t>& recent_categories, double segment_seconds,
    std::vector<double>* out) const {
  size_t in_segs = std::max<size_t>(
      options_.input_splits,
      static_cast<size_t>(options_.input_span / segment_seconds));
  size_t available = recent_categories.size();
  size_t used = std::min(in_segs, available);
  size_t start = available - used;
  size_t split_len = std::max<size_t>(1, used / options_.input_splits);

  out->assign(options_.input_splits * num_categories_, 0.0);
  for (size_t split = 0; split < options_.input_splits; ++split) {
    size_t begin = start + split * split_len;
    size_t end =
        split + 1 == options_.input_splits ? available : begin + split_len;
    begin = std::min(begin, available);
    end = std::min(end, available);
    // Histogram written straight into the split's feature slice — same
    // values as CategoryHistogram, no temporary.
    double* slice = out->data() + split * num_categories_;
    double total = 0.0;
    for (size_t i = begin; i < end; ++i) {
      if (recent_categories[i] < num_categories_) {
        slice[recent_categories[i]] += 1.0;
        total += 1.0;
      }
    }
    if (total <= 0.0) {
      if (num_categories_ == 0) continue;
      double u = 1.0 / static_cast<double>(num_categories_);
      for (size_t c = 0; c < num_categories_; ++c) slice[c] = u;
    } else {
      for (size_t c = 0; c < num_categories_; ++c) slice[c] /= total;
    }
  }
}

std::vector<double> Forecaster::Forecast(
    const std::vector<double>& features) const {
  return net_.Predict(features);
}

void Forecaster::ForecastInto(const std::vector<double>& features,
                              std::vector<double>* out) const {
  net_.PredictInto(features, &predict_scratch_, out);
}

void Forecaster::ForecastInto(const std::vector<double>& features,
                              ml::Precision precision,
                              std::vector<double>* out) const {
  if (precision == ml::Precision::kF32) {
    net_.PredictIntoF32(features, &predict_scratch_f32_, out);
  } else {
    net_.PredictInto(features, &predict_scratch_, out);
  }
}

void Forecaster::OnlineUpdate(const std::vector<double>& features,
                              const std::vector<double>& realized_distribution,
                              double learning_rate) {
  net_.OnlineUpdate(features, realized_distribution, learning_rate,
                    ml::Loss::kCrossEntropy);
}

Result<double> Forecaster::EvaluateMae(
    const std::vector<size_t>& category_sequence,
    double segment_seconds) const {
  SKY_ASSIGN_OR_RETURN(ForecastDataset data,
                       BuildForecastDataset(category_sequence, segment_seconds,
                                            num_categories_, options_));
  if (data.inputs.rows() == 0) {
    return Status::InvalidArgument("no evaluation samples");
  }
  // One batched forward pass over the whole evaluation set instead of a
  // per-row Predict (and its per-layer allocations).
  ml::TrainWorkspace ws;
  ml::Matrix preds;
  net_.PredictBatchInto(data.inputs, &ws, &preds);
  double total = 0.0;
  for (size_t i = 0; i < preds.rows(); ++i) {
    const double* p = preds.RowPtr(i);
    const double* t = data.targets.RowPtr(i);
    double mae = 0.0;
    for (size_t c = 0; c < num_categories_; ++c) mae += std::abs(p[c] - t[c]);
    total += mae / static_cast<double>(num_categories_);
  }
  return total / static_cast<double>(preds.rows());
}

}  // namespace sky::core
