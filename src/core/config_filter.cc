#include "core/config_filter.h"

#include <algorithm>
#include <limits>
#include <set>

#include "ml/matrix.h"

namespace sky::core {

std::vector<size_t> MaxMinSample(
    const std::vector<std::vector<double>>& points, size_t count) {
  std::vector<size_t> selected;
  if (points.empty() || count == 0) return selected;
  count = std::min(count, points.size());

  // Seed with the smallest-norm point (Appendix A.1).
  size_t first = 0;
  double best_norm = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < points.size(); ++i) {
    double n = ml::L2Norm(points[i]);
    if (n < best_norm) {
      best_norm = n;
      first = i;
    }
  }
  selected.push_back(first);

  std::vector<double> min_dist(points.size(),
                               std::numeric_limits<double>::infinity());
  while (selected.size() < count) {
    size_t last = selected.back();
    size_t next = points.size();
    double next_dist = -1.0;
    for (size_t i = 0; i < points.size(); ++i) {
      min_dist[i] = std::min(min_dist[i], ml::L2Distance(points[i],
                                                         points[last]));
      if (min_dist[i] > next_dist) {
        next_dist = min_dist[i];
        next = i;
      }
    }
    if (next == points.size() || next_dist <= 0.0) break;
    selected.push_back(next);
  }
  return selected;
}

Result<std::vector<KnobConfig>> FilterKnobConfigs(
    const Workload& workload, const ConfigFilterOptions& options) {
  const KnobSpace& space = workload.knob_space();
  if (space.NumConfigs() == 0) {
    return Status::FailedPrecondition("workload has no knob configurations");
  }
  const video::ContentProcess& content = workload.content_process();
  double horizon = std::min<double>(options.train_horizon, content.horizon());
  Rng rng(options.seed);
  Rng noise_rng = rng.Fork("measurement");

  KnobConfig cheapest = CheapestConfig(workload);
  KnobConfig best = MostQualitativeConfig(workload);

  // Step 2: pre-sample segments, describe each by (qual(k-), qual(k+)).
  // Sample times are drawn serially (cheap); the measurement scans fan out
  // with one forked RNG per segment index, so the vectors are identical for
  // any thread count.
  std::vector<double> sample_times(options.presample_count);
  for (size_t i = 0; i < options.presample_count; ++i) {
    sample_times[i] = rng.Uniform(0.0, horizon);
  }
  std::vector<std::vector<double>> quality_vectors(options.presample_count);
  dag::ParallelFor(options.pool, options.presample_count, [&](size_t i) {
    Rng seg_rng = noise_rng.ForkIndex(i);
    video::ContentState state = content.At(sample_times[i]);
    quality_vectors[i] = {workload.MeasuredQuality(cheapest, state, &seg_rng),
                          workload.MeasuredQuality(best, state, &seg_rng)};
  });
  std::vector<size_t> picked =
      MaxMinSample(quality_vectors, options.search_segment_count);

  // Steps 3-4: hill climb per selected segment (independent, deterministic:
  // only noise-free qualities are read); union the visited chains in pick
  // order afterwards.
  std::vector<std::vector<size_t>> chains(picked.size());
  dag::ParallelFor(options.pool, picked.size(), [&](size_t p) {
    video::ContentState state = content.At(sample_times[picked[p]]);
    KnobConfig current = cheapest;
    double cur_quality = workload.TrueQuality(current, state);
    double cur_cost = workload.CostCoreSecondsPerVideoSecond(current);
    for (;;) {
      KnobConfig best_step;
      double best_ratio = 0.0;
      double best_q = cur_quality;
      double best_c = cur_cost;
      for (const KnobConfig& nb : space.Neighbors(current)) {
        double q = workload.TrueQuality(nb, state);
        double c = workload.CostCoreSecondsPerVideoSecond(nb);
        if (q <= cur_quality + 1e-9) continue;
        double dq = q - cur_quality;
        double dc = std::max(1e-9, c - cur_cost);
        double ratio = dq / dc;
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_step = nb;
          best_q = q;
          best_c = c;
        }
      }
      if (best_step.empty()) break;
      current = best_step;
      cur_quality = best_q;
      cur_cost = best_c;
      chains[p].push_back(space.ConfigToId(current));
    }
  });
  std::set<size_t> result_ids;
  result_ids.insert(space.ConfigToId(cheapest));
  result_ids.insert(space.ConfigToId(best));
  for (const std::vector<size_t>& chain : chains) {
    result_ids.insert(chain.begin(), chain.end());
  }

  std::vector<KnobConfig> result;
  result.reserve(result_ids.size());
  for (size_t id : result_ids) result.push_back(space.IdToConfig(id));
  std::sort(result.begin(), result.end(),
            [&workload](const KnobConfig& a, const KnobConfig& b) {
              return workload.CostCoreSecondsPerVideoSecond(a) <
                     workload.CostCoreSecondsPerVideoSecond(b);
            });
  return result;
}

}  // namespace sky::core
