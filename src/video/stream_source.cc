#include "video/stream_source.h"

namespace sky::video {

SegmentInfo StreamSource::Segment(int64_t index) const {
  SegmentInfo seg;
  seg.index = index;
  seg.start = static_cast<double>(index) * segment_seconds_;
  seg.duration_s = segment_seconds_;
  seg.content = content_->At(seg.start + 0.5 * segment_seconds_);
  double bytes_per_s = EstimateStreamBytesPerSecond(seg.content.density) *
                       std::max(1.0, seg.content.stream_count);
  seg.bytes = static_cast<uint64_t>(bytes_per_s * segment_seconds_);
  return seg;
}

}  // namespace sky::video
