#ifndef SKYSCRAPER_VIDEO_FRAME_H_
#define SKYSCRAPER_VIDEO_FRAME_H_

#include <cstdint>
#include <vector>

namespace sky::video {

/// Ground-truth object in a synthetic frame. Coordinates are normalized to
/// [0, 1] with (x, y) the top-left corner.
struct SceneObject {
  int64_t id = 0;
  double x = 0.0;
  double y = 0.0;
  double w = 0.1;
  double h = 0.1;
  int class_id = 0;      ///< 0 = person, 1 = car, 2 = electric vehicle
  double velocity_x = 0.0;
  double velocity_y = 0.0;
};

/// A decoded synthetic video frame: a small luma plane (enough for the codec
/// and the runnable example UDFs to chew on) plus the ground-truth object
/// list the synthetic detectors are scored against.
struct Frame {
  int64_t index = 0;
  double timestamp_s = 0.0;
  int width = 160;
  int height = 90;
  std::vector<uint8_t> luma;  ///< width * height bytes
  std::vector<SceneObject> objects;
};

/// Intersection-over-union of two objects' boxes; 0 if disjoint.
double BoxIou(const SceneObject& a, const SceneObject& b);

/// Fraction of objects whose box overlaps some other object's box with
/// IoU above `threshold` — the occlusion measure the quality models key on.
double OcclusionFraction(const std::vector<SceneObject>& objects,
                         double threshold = 0.05);

}  // namespace sky::video

#endif  // SKYSCRAPER_VIDEO_FRAME_H_
