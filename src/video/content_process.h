#ifndef SKYSCRAPER_VIDEO_CONTENT_PROCESS_H_
#define SKYSCRAPER_VIDEO_CONTENT_PROCESS_H_

#include <cstdint>
#include <vector>

#include "util/sim_time.h"

namespace sky::video {

/// Latent state of the streamed content at an instant. The workload models
/// map (knob configuration, ContentState) to result quality; the paper's
/// systems only ever observe the resulting quality values, never this state.
struct ContentState {
  /// Scene business: pedestrian/vehicle density, in [0, 1].
  double density = 0.0;
  /// Fraction of objects occluding each other, in [0, 1]. The dominant
  /// quality driver for detection/tracking workloads (§2.2, Fig. 3).
  double occlusion = 0.0;
  /// Daylight level in [0, 1] (1 = noon).
  double lighting = 1.0;
  /// Generic analysis difficulty in [0, 1] (speech clarity etc., MOSEI).
  double difficulty = 0.0;
  /// Number of concurrently live streams (MOSEI); 1 for single-camera feeds.
  double stream_count = 1.0;
};

/// A deterministic, seekable content process: At(t) must return the same
/// state for the same t (random access), which the training-data builder and
/// the engine rely on.
class ContentProcess {
 public:
  virtual ~ContentProcess() = default;
  virtual ContentState At(SimTime t) const = 0;
  /// Time span covered; At(t) clamps beyond it.
  virtual SimTime horizon() const = 0;
};

/// Piecewise-smooth value noise: uniform knots every `knot_spacing` seconds,
/// cosine-interpolated. Deterministic given the seed.
class SmoothNoise {
 public:
  SmoothNoise(double amplitude, double knot_spacing_s, SimTime horizon,
              uint64_t seed);
  double At(SimTime t) const;

 private:
  double amplitude_;
  double spacing_;
  std::vector<double> knots_;
};

/// Diurnal single-camera content (traffic intersection or shopping street):
/// a time-of-day base curve, slow and fast noise, day-to-day drift, and
/// randomly timed short "events" (e.g. a group of pedestrians passing) whose
/// exact timing is unpredictable — the source of Type-B switcher errors and
/// of forecast smoothing (§5.6).
class DiurnalContentProcess : public ContentProcess {
 public:
  enum class Profile {
    kTrafficIntersection,  ///< morning + evening rush hours (MOT, EV)
    kShoppingStreet,       ///< single broad midday-evening peak (COVID)
  };

  struct Options {
    Profile profile = Profile::kTrafficIntersection;
    double fine_noise_amplitude = 0.07;   ///< 30 s scale
    double slow_noise_amplitude = 0.10;   ///< 10 min scale
    double event_rate_per_hour = 14.0;    ///< short density bumps
    double event_magnitude = 0.35;
    double day_to_day_drift = 0.18;
    SimTime horizon = Days(24);
    uint64_t seed = 101;
  };

  explicit DiurnalContentProcess(const Options& options);

  ContentState At(SimTime t) const override;
  SimTime horizon() const override { return options_.horizon; }

  /// The deterministic time-of-day base density for a profile (no noise).
  static double BaseDensity(Profile profile, double hour_of_day);

 private:
  struct Event {
    SimTime start;
    double duration_s;
    double magnitude;
  };

  double EventBoost(SimTime t) const;

  Options options_;
  SmoothNoise fine_noise_;
  SmoothNoise slow_noise_;
  SmoothNoise occlusion_noise_;
  SmoothNoise day_drift_;  ///< very slow (daily) multiplicative drift
  std::vector<Event> events_;
};

/// Social-media stream-count content for the MOSEI workloads: a Twitch-like
/// diurnal live-stream count plus synthetic spikes. kHigh injects short peaks
/// of 62 concurrent streams (hard for cloud bursting: bandwidth); kLong
/// injects a multi-hour plateau (hard for buffering: capacity).
class TwitchContentProcess : public ContentProcess {
 public:
  enum class SpikeKind { kHigh, kLong };

  struct Options {
    SpikeKind spike_kind = SpikeKind::kHigh;
    double max_streams = 62.0;
    double base_peak_streams = 26.0;
    SimTime horizon = Days(14);
    uint64_t seed = 202;
  };

  explicit TwitchContentProcess(const Options& options);

  ContentState At(SimTime t) const override;
  SimTime horizon() const override { return options_.horizon; }

 private:
  Options options_;
  SmoothNoise difficulty_noise_;
  SmoothNoise count_noise_;
  std::vector<double> spike_offsets_s_;  ///< spike start within each day
};

}  // namespace sky::video

#endif  // SKYSCRAPER_VIDEO_CONTENT_PROCESS_H_
