#ifndef SKYSCRAPER_VIDEO_SCENE_H_
#define SKYSCRAPER_VIDEO_SCENE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "video/frame.h"

namespace sky::video {

struct SceneOptions {
  int width = 160;
  int height = 90;
  double fps = 30.0;
  /// Expected number of simultaneously visible objects at density 1.0.
  double max_objects = 24.0;
  /// Fraction of spawned vehicles that are electric (green plates; trivially
  /// distinguishable per the paper's EV example).
  double electric_fraction = 0.18;
  uint64_t seed = 11;
};

/// Stateful synthetic scene: objects enter at the frame edges, move with a
/// constant velocity, and leave. The instantaneous `density` parameter
/// controls the spawn rate, so the caller can drive the scene with a
/// ContentProcess. Renders a luma plane with one bright blob per object.
class SceneGenerator {
 public:
  explicit SceneGenerator(const SceneOptions& options);

  /// Advances the scene by one frame interval and renders it. `density` is
  /// the instantaneous content density in [0, 1].
  Frame NextFrame(double density);

  int64_t frames_generated() const { return frame_index_; }
  const std::vector<SceneObject>& live_objects() const { return objects_; }

 private:
  void SpawnObject(double density);
  void Render(Frame* frame) const;

  SceneOptions options_;
  Rng rng_;
  std::vector<SceneObject> objects_;
  int64_t next_object_id_ = 1;
  int64_t frame_index_ = 0;
};

}  // namespace sky::video

#endif  // SKYSCRAPER_VIDEO_SCENE_H_
