#include "video/scene.h"

#include <algorithm>
#include <cmath>

namespace sky::video {

double BoxIou(const SceneObject& a, const SceneObject& b) {
  double ix = std::max(0.0, std::min(a.x + a.w, b.x + b.w) - std::max(a.x, b.x));
  double iy = std::max(0.0, std::min(a.y + a.h, b.y + b.h) - std::max(a.y, b.y));
  double inter = ix * iy;
  if (inter <= 0.0) return 0.0;
  double uni = a.w * a.h + b.w * b.h - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

double OcclusionFraction(const std::vector<SceneObject>& objects,
                         double threshold) {
  if (objects.empty()) return 0.0;
  size_t occluded = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    for (size_t j = 0; j < objects.size(); ++j) {
      if (i == j) continue;
      if (BoxIou(objects[i], objects[j]) > threshold) {
        ++occluded;
        break;
      }
    }
  }
  return static_cast<double>(occluded) / static_cast<double>(objects.size());
}

SceneGenerator::SceneGenerator(const SceneOptions& options)
    : options_(options), rng_(options.seed) {}

void SceneGenerator::SpawnObject(double density) {
  // Expected population at steady state is max_objects * density; with an
  // average crossing time of ~6 seconds, spawn rate follows from Little's
  // law: arrivals/frame = population / (crossing_s * fps).
  double crossing_s = 6.0;
  double rate = options_.max_objects * std::clamp(density, 0.0, 1.0) /
                (crossing_s * options_.fps);
  int64_t spawns = rng_.Poisson(rate);
  for (int64_t s = 0; s < spawns; ++s) {
    SceneObject obj;
    obj.id = next_object_id_++;
    bool vehicle = rng_.Bernoulli(0.4);
    if (vehicle) {
      obj.class_id = rng_.Bernoulli(options_.electric_fraction) ? 2 : 1;
      obj.w = rng_.Uniform(0.08, 0.16);
      obj.h = rng_.Uniform(0.05, 0.09);
    } else {
      obj.class_id = 0;
      obj.w = rng_.Uniform(0.02, 0.05);
      obj.h = rng_.Uniform(0.06, 0.12);
    }
    bool left_to_right = rng_.Bernoulli(0.5);
    double speed = rng_.Uniform(0.8, 1.6) / (crossing_s * options_.fps);
    obj.x = left_to_right ? -obj.w : 1.0;
    obj.y = rng_.Uniform(0.1, 0.9 - obj.h);
    obj.velocity_x = left_to_right ? speed : -speed;
    obj.velocity_y = rng_.Uniform(-0.2, 0.2) / (crossing_s * options_.fps);
    objects_.push_back(obj);
  }
}

void SceneGenerator::Render(Frame* frame) const {
  frame->luma.assign(
      static_cast<size_t>(options_.width) * options_.height, 16);
  for (const SceneObject& obj : objects_) {
    int x0 = std::max(0, static_cast<int>(obj.x * options_.width));
    int x1 = std::min(options_.width,
                      static_cast<int>((obj.x + obj.w) * options_.width) + 1);
    int y0 = std::max(0, static_cast<int>(obj.y * options_.height));
    int y1 = std::min(options_.height,
                      static_cast<int>((obj.y + obj.h) * options_.height) + 1);
    uint8_t shade = static_cast<uint8_t>(96 + (obj.id * 37) % 128);
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        frame->luma[static_cast<size_t>(y) * options_.width + x] = shade;
      }
    }
  }
}

Frame SceneGenerator::NextFrame(double density) {
  SpawnObject(density);
  for (SceneObject& obj : objects_) {
    obj.x += obj.velocity_x;
    obj.y += obj.velocity_y;
  }
  objects_.erase(
      std::remove_if(objects_.begin(), objects_.end(),
                     [](const SceneObject& o) {
                       return o.x > 1.05 || o.x + o.w < -0.05 || o.y > 1.05 ||
                              o.y + o.h < -0.05;
                     }),
      objects_.end());

  Frame frame;
  frame.index = frame_index_++;
  frame.timestamp_s = static_cast<double>(frame.index) / options_.fps;
  frame.width = options_.width;
  frame.height = options_.height;
  frame.objects = objects_;
  Render(&frame);
  return frame;
}

}  // namespace sky::video
