#ifndef SKYSCRAPER_VIDEO_CODEC_H_
#define SKYSCRAPER_VIDEO_CODEC_H_

#include <cstdint>
#include <vector>

#include "util/result.h"
#include "video/frame.h"

namespace sky::video {

/// Byte-rate model for the (not actually stored) H.264 source stream. The
/// paper's camera produces 7.8 GB/day at 30 fps HD, i.e. ~3 KB per frame on
/// average; busier scenes compress worse. Used for buffer accounting.
double EstimateH264FrameBytes(double density);

/// Average stream byte rate at the given content density (bytes/second of
/// video at 30 fps).
double EstimateStreamBytesPerSecond(double density);

/// A small intra-frame codec standing in for H.264 in the runnable parts of
/// the system: delta + run-length coding of the luma plane. It is lossless,
/// its output size grows with scene complexity, and its encode/decode cost is
/// measurable — which is all the decode-cost experiment (§5.1) needs.
class BlockRleCodec {
 public:
  /// Encodes the luma plane (objects/metadata are not serialized).
  static std::vector<uint8_t> Encode(const Frame& frame);

  /// Decodes into a frame with the stored dimensions; fails on truncated or
  /// corrupt input.
  static Result<Frame> Decode(const std::vector<uint8_t>& bytes);
};

}  // namespace sky::video

#endif  // SKYSCRAPER_VIDEO_CODEC_H_
