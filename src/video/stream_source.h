#ifndef SKYSCRAPER_VIDEO_STREAM_SOURCE_H_
#define SKYSCRAPER_VIDEO_STREAM_SOURCE_H_

#include <cstdint>

#include "util/sim_time.h"
#include "video/codec.h"
#include "video/content_process.h"

namespace sky::video {

/// Metadata for one segment of arriving video: the unit at which the knob
/// switcher makes decisions (a few seconds of stream).
struct SegmentInfo {
  int64_t index = 0;
  SimTime start = 0.0;
  double duration_s = 0.0;
  ContentState content;
  /// Encoded size of the segment (what the buffer accounts for).
  uint64_t bytes = 0;
};

/// Segments a live stream: pairs the content process with the byte-rate
/// model so the ingestion engine can iterate arriving segments.
class StreamSource {
 public:
  StreamSource(const ContentProcess* content, double segment_seconds)
      : content_(content), segment_seconds_(segment_seconds) {}

  /// The i-th arriving segment; content is sampled at the segment midpoint.
  SegmentInfo Segment(int64_t index) const;

  double segment_seconds() const { return segment_seconds_; }
  const ContentProcess& content() const { return *content_; }
  int64_t NumSegments(SimTime total_duration) const {
    return static_cast<int64_t>(total_duration / segment_seconds_);
  }

 private:
  const ContentProcess* content_;
  double segment_seconds_;
};

}  // namespace sky::video

#endif  // SKYSCRAPER_VIDEO_STREAM_SOURCE_H_
