#include "video/content_process.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace sky::video {

namespace {

constexpr double kPi = 3.14159265358979323846;

double Gaussian(double x, double mu, double sigma) {
  double d = (x - mu) / sigma;
  return std::exp(-0.5 * d * d);
}

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

SmoothNoise::SmoothNoise(double amplitude, double knot_spacing_s,
                         SimTime horizon, uint64_t seed)
    : amplitude_(amplitude), spacing_(knot_spacing_s) {
  size_t n = static_cast<size_t>(horizon / knot_spacing_s) + 2;
  knots_.reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) knots_.push_back(rng.Uniform(-1.0, 1.0));
}

double SmoothNoise::At(SimTime t) const {
  if (knots_.empty()) return 0.0;
  double pos = std::max(0.0, t / spacing_);
  size_t i = static_cast<size_t>(pos);
  if (i + 1 >= knots_.size()) return amplitude_ * knots_.back();
  double frac = pos - static_cast<double>(i);
  // Cosine interpolation: C1-smooth between knots.
  double w = 0.5 - 0.5 * std::cos(frac * kPi);
  return amplitude_ * (knots_[i] * (1.0 - w) + knots_[i + 1] * w);
}

double DiurnalContentProcess::BaseDensity(Profile profile,
                                          double hour_of_day) {
  switch (profile) {
    case Profile::kTrafficIntersection:
      // Morning and evening rush hours, a midday plateau, quiet nights.
      return Clamp01(0.06 + 0.52 * Gaussian(hour_of_day, 8.0, 1.5) +
                     0.62 * Gaussian(hour_of_day, 17.5, 2.0) +
                     0.24 * Gaussian(hour_of_day, 13.0, 3.0));
    case Profile::kShoppingStreet:
      // One broad mid-afternoon-to-evening peak (Koen-Dori style).
      return Clamp01(0.05 + 0.78 * Gaussian(hour_of_day, 15.5, 4.0) +
                     0.18 * Gaussian(hour_of_day, 20.0, 1.5));
  }
  return 0.0;
}

DiurnalContentProcess::DiurnalContentProcess(const Options& options)
    : options_(options),
      fine_noise_(options.fine_noise_amplitude, 30.0, options.horizon,
                  options.seed ^ 0xA1),
      slow_noise_(options.slow_noise_amplitude, 600.0, options.horizon,
                  options.seed ^ 0xB2),
      occlusion_noise_(0.06, 45.0, options.horizon, options.seed ^ 0xC3),
      // Multi-day drift with a ~5-day correlation time: 1-2 day forecasts
      // extrapolate correlated content, while an 8-day window reaches into
      // drift the recent past says nothing about (the source of the
      // Fig. 14 / Table 5 horizon sweet spot).
      day_drift_(options.day_to_day_drift, 5.0 * 86400.0, options.horizon,
                 options.seed ^ 0xD4) {
  // Events: Poisson arrivals thinned by the base curve so that groups of
  // pedestrians are more likely during busy hours.
  Rng rng(options.seed ^ 0xE5);
  double horizon_hours = options.horizon / 3600.0;
  int64_t candidates =
      rng.Poisson(options.event_rate_per_hour * horizon_hours * 1.6);
  for (int64_t i = 0; i < candidates; ++i) {
    SimTime start = rng.Uniform(0.0, options.horizon);
    double base = BaseDensity(options.profile, HourOfDay(start));
    if (!rng.Bernoulli(0.15 + 0.85 * base)) continue;  // thinning
    Event e;
    e.start = start;
    e.duration_s = rng.Uniform(25.0, 140.0);
    e.magnitude = options.event_magnitude * rng.Uniform(0.5, 1.0);
    events_.push_back(e);
  }
  std::sort(events_.begin(), events_.end(),
            [](const Event& a, const Event& b) { return a.start < b.start; });
}

double DiurnalContentProcess::EventBoost(SimTime t) const {
  // Binary search to the first event that could cover t (events are sorted
  // by start and last at most 140 s).
  double boost = 0.0;
  auto it = std::lower_bound(
      events_.begin(), events_.end(), t - 150.0,
      [](const Event& e, double v) { return e.start < v; });
  for (; it != events_.end() && it->start <= t; ++it) {
    double rel = (t - it->start) / it->duration_s;
    if (rel < 0.0 || rel > 1.0) continue;
    // Smooth ramp up and down within the event window.
    double shape = std::sin(rel * kPi);
    boost += it->magnitude * shape;
  }
  return boost;
}

ContentState DiurnalContentProcess::At(SimTime t) const {
  t = std::clamp(t, 0.0, options_.horizon);
  double hour = HourOfDay(t);
  double base = BaseDensity(options_.profile, hour);
  double drift = 1.0 + day_drift_.At(t);
  double density = Clamp01(base * drift + slow_noise_.At(t) +
                           fine_noise_.At(t) + EventBoost(t));

  ContentState state;
  state.density = density;
  // Occlusions rise superlinearly with density (crowds overlap).
  state.occlusion =
      Clamp01(0.85 * std::pow(density, 1.4) + occlusion_noise_.At(t));
  // Daylight: up between ~6h and ~19h with smooth dawn/dusk.
  double daylight = 0.5 * (std::tanh((hour - 6.0) / 1.2) -
                           std::tanh((hour - 19.0) / 1.2));
  state.lighting = Clamp01(0.15 + 0.85 * daylight);
  state.difficulty = Clamp01(0.55 * state.occlusion + 0.30 * state.density +
                             0.15 * (1.0 - state.lighting));
  state.stream_count = 1.0;
  return state;
}

TwitchContentProcess::TwitchContentProcess(const Options& options)
    : options_(options),
      difficulty_noise_(0.18, 40.0, options.horizon, options.seed ^ 0x11),
      count_noise_(0.08, 120.0, options.horizon, options.seed ^ 0x22) {
  // Spike schedule: deterministic-but-jittered daily offsets.
  Rng rng(options.seed ^ 0x33);
  size_t days = static_cast<size_t>(options.horizon / 86400.0) + 1;
  for (size_t d = 0; d < days; ++d) {
    spike_offsets_s_.push_back(rng.Uniform(0.0, 3600.0));
  }
}

ContentState TwitchContentProcess::At(SimTime t) const {
  t = std::clamp(t, 0.0, options_.horizon);
  double hour = HourOfDay(t);
  // Twitch-like live-stream diurnal: low around 06:00, peaks around 20:00.
  double diurnal = 0.35 + 0.65 * (0.5 - 0.5 * std::cos((hour - 8.0) / 24.0 *
                                                       2.0 * kPi));
  double streams =
      options_.base_peak_streams * diurnal * (1.0 + count_noise_.At(t));

  size_t day = static_cast<size_t>(t / 86400.0);
  double tod = TimeOfDay(t);
  if (options_.spike_kind == SpikeKind::kHigh) {
    // Three short, tall peaks per day reaching max_streams for ~20 minutes.
    for (int s = 0; s < 3; ++s) {
      double start = 6.0 * 3600.0 * (s + 1) +
                     (day < spike_offsets_s_.size() ? spike_offsets_s_[day]
                                                    : 0.0);
      double rel = (tod - start) / 1200.0;
      if (rel >= 0.0 && rel <= 1.0) {
        streams = std::max(streams,
                           options_.max_streams * std::sin(rel * kPi));
      }
    }
  } else {
    // One long plateau per day: 8 hours at ~55% of max — tall enough to
    // overrun any buffer, low enough that cloud bursting is not
    // bandwidth-bound (that is MOSEI-HIGH's role).
    double start = 10.0 * 3600.0 +
                   (day < spike_offsets_s_.size() ? spike_offsets_s_[day]
                                                  : 0.0);
    double rel = (tod - start) / (8.0 * 3600.0);
    if (rel >= 0.0 && rel <= 1.0) {
      double plateau = 0.55 * options_.max_streams;
      // Smooth edges over the first/last 10% of the window.
      double edge = std::min({1.0, rel / 0.1, (1.0 - rel) / 0.1});
      streams = std::max(streams, plateau * std::clamp(edge, 0.0, 1.0));
    }
  }

  ContentState state;
  state.stream_count = std::clamp(streams, 0.0, options_.max_streams);
  state.difficulty = Clamp01(0.45 + difficulty_noise_.At(t) +
                             0.25 * (state.stream_count /
                                     options_.max_streams));
  state.density = state.stream_count / options_.max_streams;
  state.occlusion = state.difficulty;
  state.lighting = 1.0;
  return state;
}

}  // namespace sky::video
