#include "video/codec.h"

#include <algorithm>
#include <cstring>

namespace sky::video {

double EstimateH264FrameBytes(double density) {
  // Calibrated so the mean over a diurnal density cycle is ~3 KB/frame
  // (7.8 GB/day at 30 fps, footnote 2 of the paper).
  double d = std::clamp(density, 0.0, 1.0);
  return 1800.0 + 3600.0 * d;
}

double EstimateStreamBytesPerSecond(double density) {
  return EstimateH264FrameBytes(density) * 30.0;
}

namespace {

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 16) & 0xFF));
  out->push_back(static_cast<uint8_t>((v >> 24) & 0xFF));
}

bool GetU32(const std::vector<uint8_t>& in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = static_cast<uint32_t>(in[*pos]) |
       (static_cast<uint32_t>(in[*pos + 1]) << 8) |
       (static_cast<uint32_t>(in[*pos + 2]) << 16) |
       (static_cast<uint32_t>(in[*pos + 3]) << 24);
  *pos += 4;
  return true;
}

}  // namespace

std::vector<uint8_t> BlockRleCodec::Encode(const Frame& frame) {
  std::vector<uint8_t> out;
  out.reserve(frame.luma.size() / 4 + 16);
  PutU32(&out, static_cast<uint32_t>(frame.width));
  PutU32(&out, static_cast<uint32_t>(frame.height));
  // Run-length encode (value, run) pairs with runs up to 255.
  size_t i = 0;
  while (i < frame.luma.size()) {
    uint8_t value = frame.luma[i];
    size_t run = 1;
    while (i + run < frame.luma.size() && frame.luma[i + run] == value &&
           run < 255) {
      ++run;
    }
    out.push_back(value);
    out.push_back(static_cast<uint8_t>(run));
    i += run;
  }
  return out;
}

Result<Frame> BlockRleCodec::Decode(const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  uint32_t width = 0;
  uint32_t height = 0;
  if (!GetU32(bytes, &pos, &width) || !GetU32(bytes, &pos, &height)) {
    return Status::InvalidArgument("truncated codec header");
  }
  if (width == 0 || height == 0 || width > 16384 || height > 16384) {
    return Status::InvalidArgument("implausible frame dimensions");
  }
  Frame frame;
  frame.width = static_cast<int>(width);
  frame.height = static_cast<int>(height);
  size_t expected = static_cast<size_t>(width) * height;
  frame.luma.reserve(expected);
  while (pos + 1 < bytes.size()) {
    uint8_t value = bytes[pos];
    uint8_t run = bytes[pos + 1];
    pos += 2;
    if (run == 0) return Status::InvalidArgument("zero-length run");
    for (uint8_t r = 0; r < run; ++r) frame.luma.push_back(value);
    if (frame.luma.size() > expected) {
      return Status::InvalidArgument("decoded size exceeds dimensions");
    }
  }
  if (frame.luma.size() != expected) {
    return Status::InvalidArgument("decoded size does not match dimensions");
  }
  return frame;
}

}  // namespace sky::video
