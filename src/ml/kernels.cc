#include "ml/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sky::ml {

namespace {

// ---------------------------------------------------------------------------
// Scalar oracle: the seed's loop nests, verbatim. Every other backend is
// measured (and property-tested) against these.
// ---------------------------------------------------------------------------

void ScalarGemmRowF64(const double* a, size_t k0, size_t k1, const double* b,
                      size_t ldb, double* out, size_t m) {
  size_t k = k0;
  for (; k + 4 <= k1; k += 4) {
    double v0 = a[k], v1 = a[k + 1];
    double v2 = a[k + 2], v3 = a[k + 3];
    const double* __restrict b0 = b + k * ldb;
    const double* __restrict b1 = b + (k + 1) * ldb;
    const double* __restrict b2 = b + (k + 2) * ldb;
    const double* __restrict b3 = b + (k + 3) * ldb;
    for (size_t j = 0; j < m; ++j) {
      out[j] += (v0 * b0[j] + v1 * b1[j]) + (v2 * b2[j] + v3 * b3[j]);
    }
  }
  for (; k < k1; ++k) {
    double v = a[k];
    const double* __restrict brow = b + k * ldb;
    for (size_t j = 0; j < m; ++j) out[j] += v * brow[j];
  }
}

void ScalarAxpy4F64(double d0, const double* v0, double d1, const double* v1,
                    double d2, const double* v2, double d3, const double* v3,
                    double* out, size_t m) {
  for (size_t c = 0; c < m; ++c) {
    out[c] += (d0 * v0[c] + d1 * v1[c]) + (d2 * v2[c] + d3 * v3[c]);
  }
}

void ScalarAxpy1F64(double d, const double* v, double* out, size_t m) {
  for (size_t c = 0; c < m; ++c) out[c] += d * v[c];
}

void ScalarDenseMatVecF32(const float* wt, const float* bias, const float* x,
                          float* y, size_t rows, size_t cols) {
  // Same column-major accumulation order as the vector tiers (y starts at
  // the bias; column c of the original weights — row c of wt — contributes
  // x[c]'s term to every output row before column c+1 is touched), so the
  // backends differ only by lane-partial rounding, not by algorithm.
  for (size_t r = 0; r < rows; ++r) y[r] = bias[r];
  for (size_t c = 0; c < cols; ++c) {
    float xc = x[c];
    const float* __restrict wcol = wt + c * rows;
    for (size_t r = 0; r < rows; ++r) y[r] += xc * wcol[r];
  }
}

constexpr KernelOps kScalarOps = {
    KernelBackend::kScalar, ScalarGemmRowF64,      ScalarAxpy4F64,
    ScalarAxpy1F64,         ScalarDenseMatVecF32,
};

// ---------------------------------------------------------------------------
// Dispatch: one atomic table pointer, published on first use.
// ---------------------------------------------------------------------------

const KernelOps* OpsFor(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return ScalarKernelOps();
    case KernelBackend::kAvx2:
      return Avx2KernelOps();
    case KernelBackend::kNeon:
      return NeonKernelOps();
  }
  return nullptr;
}

std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* InitDispatch() {
  const KernelOps* pick = ScalarKernelOps();
  const char* force = std::getenv("SKY_FORCE_SCALAR");
  bool forced_scalar =
      force != nullptr && force[0] != '\0' && std::strcmp(force, "0") != 0;
  if (!forced_scalar) {
    if (const KernelOps* avx2 = Avx2KernelOps()) pick = avx2;
    else if (const KernelOps* neon = NeonKernelOps()) pick = neon;
  }
  // Several threads may race the first call; they all compute the same
  // answer, so a plain publish is enough — but keep the first writer's value
  // so a concurrent SetKernelBackend is never overwritten by a late
  // initializer.
  const KernelOps* expected = nullptr;
  if (g_active.compare_exchange_strong(expected, pick,
                                       std::memory_order_acq_rel)) {
    return pick;
  }
  return expected;
}

}  // namespace

const KernelOps* ScalarKernelOps() { return &kScalarOps; }

const KernelOps& ActiveKernels() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) ops = InitDispatch();
  return *ops;
}

KernelBackend ActiveKernelBackend() { return ActiveKernels().backend; }

KernelBackend BestSupportedBackend() {
  if (Avx2KernelOps() != nullptr) return KernelBackend::kAvx2;
  if (NeonKernelOps() != nullptr) return KernelBackend::kNeon;
  return KernelBackend::kScalar;
}

bool KernelBackendSupported(KernelBackend backend) {
  return OpsFor(backend) != nullptr;
}

Status SetKernelBackend(KernelBackend backend) {
  const KernelOps* ops = OpsFor(backend);
  if (ops == nullptr) {
    return Status::InvalidArgument("kernel backend '" +
                                   KernelBackendName(backend) +
                                   "' is not supported on this host/build");
  }
  g_active.store(ops, std::memory_order_release);
  return Status::Ok();
}

std::string KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

}  // namespace sky::ml
