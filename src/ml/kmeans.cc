#include "ml/kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "ml/matrix.h"

namespace sky::ml {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

std::vector<std::vector<double>> KppInit(
    const std::vector<std::vector<double>>& points, size_t k, Rng* rng) {
  std::vector<std::vector<double>> centers;
  centers.reserve(k);
  size_t first = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(points.size()) - 1));
  centers.push_back(points[first]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i], SquaredDistance(points[i], centers.back()));
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with existing centers; duplicate one.
      centers.push_back(points[0]);
      continue;
    }
    double r = rng->Uniform(0.0, total);
    double acc = 0.0;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      acc += dist2[i];
      if (acc >= r) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

KMeansModel LloydRun(const std::vector<std::vector<double>>& points, size_t k,
                     size_t max_iterations, Rng* rng) {
  size_t dim = points[0].size();
  KMeansModel model;
  model.centers = KppInit(points, k, rng);
  model.assignments.assign(points.size(), 0);

  for (size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < points.size(); ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        double d = SquaredDistance(points[i], model.centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (model.assignments[i] != best) {
        model.assignments[i] = best;
        changed = true;
      }
    }
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      size_t c = model.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the point farthest from its center.
        size_t far = 0;
        double far_d = -1.0;
        for (size_t i = 0; i < points.size(); ++i) {
          double d = SquaredDistance(points[i],
                                     model.centers[model.assignments[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        model.centers[c] = points[far];
        changed = true;
        continue;
      }
      for (size_t d = 0; d < dim; ++d) {
        model.centers[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!changed) break;
  }

  model.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    model.inertia +=
        SquaredDistance(points[i], model.centers[model.assignments[i]]);
  }
  return model;
}

}  // namespace

size_t KMeansModel::Classify(const std::vector<double>& point) const {
  assert(!centers.empty());
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers.size(); ++c) {
    double d = SquaredDistance(point, centers[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

size_t KMeansModel::ClassifyPartial(size_t dim, double value) const {
  assert(!centers.empty() && dim < centers[0].size());
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centers.size(); ++c) {
    double d = std::abs(centers[c][dim] - value);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

Result<KMeansModel> KMeansFit(const std::vector<std::vector<double>>& points,
                              const KMeansOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (points.size() < options.k) {
    return Status::InvalidArgument("fewer points than clusters");
  }
  size_t dim = points[0].size();
  if (dim == 0) return Status::InvalidArgument("zero-dimensional points");
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("inconsistent point dimensionality");
    }
  }

  Rng rng(options.seed);
  KMeansModel best;
  best.inertia = std::numeric_limits<double>::infinity();
  size_t restarts = std::max<size_t>(1, options.restarts);
  for (size_t r = 0; r < restarts; ++r) {
    KMeansModel m = LloydRun(points, options.k, options.max_iterations, &rng);
    if (m.inertia < best.inertia) best = std::move(m);
  }
  return best;
}

}  // namespace sky::ml
