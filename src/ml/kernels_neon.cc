// AArch64 NEON micro-kernels — the 2-wide-f64 / 4-wide-f32 twin of
// kernels_avx2.cc. NEON is baseline on AArch64, so this TU needs no special
// compile flags; on every other architecture it compiles to a null
// registration. The f64 kernels keep the scalar oracle's per-element mul/add
// sequence (vmulq/vaddq are element-wise IEEE ops, and no -ffp-contract
// concern arises because no source-level a*b+c expressions exist here), so
// they are bitwise-identical to ScalarKernelOps(); the f32 matvec uses fused
// vfmaq under the documented tolerance contract.

#include "ml/kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace sky::ml {

namespace {

inline float64x2_t QuadTerm(float64x2_t v0, const double* b0, float64x2_t v1,
                            const double* b1, float64x2_t v2, const double* b2,
                            float64x2_t v3, const double* b3) {
  return vaddq_f64(
      vaddq_f64(vmulq_f64(v0, vld1q_f64(b0)), vmulq_f64(v1, vld1q_f64(b1))),
      vaddq_f64(vmulq_f64(v2, vld1q_f64(b2)), vmulq_f64(v3, vld1q_f64(b3))));
}

void NeonGemmRowF64(const double* a, size_t k0, size_t k1, const double* b,
                    size_t ldb, double* out, size_t m) {
  size_t j = 0;
  // 8-column register tile held across the whole k range.
  for (; j + 8 <= m; j += 8) {
    float64x2_t acc0 = vld1q_f64(out + j);
    float64x2_t acc1 = vld1q_f64(out + j + 2);
    float64x2_t acc2 = vld1q_f64(out + j + 4);
    float64x2_t acc3 = vld1q_f64(out + j + 6);
    size_t k = k0;
    for (; k + 4 <= k1; k += 4) {
      float64x2_t v0 = vdupq_n_f64(a[k]);
      float64x2_t v1 = vdupq_n_f64(a[k + 1]);
      float64x2_t v2 = vdupq_n_f64(a[k + 2]);
      float64x2_t v3 = vdupq_n_f64(a[k + 3]);
      const double* b0 = b + k * ldb + j;
      const double* b1 = b + (k + 1) * ldb + j;
      const double* b2 = b + (k + 2) * ldb + j;
      const double* b3 = b + (k + 3) * ldb + j;
      acc0 = vaddq_f64(acc0, QuadTerm(v0, b0, v1, b1, v2, b2, v3, b3));
      acc1 = vaddq_f64(acc1,
                       QuadTerm(v0, b0 + 2, v1, b1 + 2, v2, b2 + 2, v3,
                                b3 + 2));
      acc2 = vaddq_f64(acc2,
                       QuadTerm(v0, b0 + 4, v1, b1 + 4, v2, b2 + 4, v3,
                                b3 + 4));
      acc3 = vaddq_f64(acc3,
                       QuadTerm(v0, b0 + 6, v1, b1 + 6, v2, b2 + 6, v3,
                                b3 + 6));
    }
    for (; k < k1; ++k) {
      float64x2_t v = vdupq_n_f64(a[k]);
      const double* brow = b + k * ldb + j;
      acc0 = vaddq_f64(acc0, vmulq_f64(v, vld1q_f64(brow)));
      acc1 = vaddq_f64(acc1, vmulq_f64(v, vld1q_f64(brow + 2)));
      acc2 = vaddq_f64(acc2, vmulq_f64(v, vld1q_f64(brow + 4)));
      acc3 = vaddq_f64(acc3, vmulq_f64(v, vld1q_f64(brow + 6)));
    }
    vst1q_f64(out + j, acc0);
    vst1q_f64(out + j + 2, acc1);
    vst1q_f64(out + j + 4, acc2);
    vst1q_f64(out + j + 6, acc3);
  }
  for (; j + 2 <= m; j += 2) {
    float64x2_t acc = vld1q_f64(out + j);
    size_t k = k0;
    for (; k + 4 <= k1; k += 4) {
      acc = vaddq_f64(
          acc, QuadTerm(vdupq_n_f64(a[k]), b + k * ldb + j,
                        vdupq_n_f64(a[k + 1]), b + (k + 1) * ldb + j,
                        vdupq_n_f64(a[k + 2]), b + (k + 2) * ldb + j,
                        vdupq_n_f64(a[k + 3]), b + (k + 3) * ldb + j));
    }
    for (; k < k1; ++k) {
      acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(a[k]),
                                     vld1q_f64(b + k * ldb + j)));
    }
    vst1q_f64(out + j, acc);
  }
  if (j < m) {
    ScalarKernelOps()->gemm_row_f64(a, k0, k1, b + j, ldb, out + j, m - j);
  }
}

void NeonAxpy4F64(double d0, const double* v0, double d1, const double* v1,
                  double d2, const double* v2, double d3, const double* v3,
                  double* out, size_t m) {
  float64x2_t w0 = vdupq_n_f64(d0);
  float64x2_t w1 = vdupq_n_f64(d1);
  float64x2_t w2 = vdupq_n_f64(d2);
  float64x2_t w3 = vdupq_n_f64(d3);
  size_t c = 0;
  for (; c + 2 <= m; c += 2) {
    float64x2_t acc = vld1q_f64(out + c);
    acc = vaddq_f64(acc,
                    QuadTerm(w0, v0 + c, w1, v1 + c, w2, v2 + c, w3, v3 + c));
    vst1q_f64(out + c, acc);
  }
  if (c < m) {
    ScalarKernelOps()->axpy4_f64(d0, v0 + c, d1, v1 + c, d2, v2 + c, d3,
                                 v3 + c, out + c, m - c);
  }
}

void NeonAxpy1F64(double d, const double* v, double* out, size_t m) {
  float64x2_t w = vdupq_n_f64(d);
  size_t c = 0;
  for (; c + 2 <= m; c += 2) {
    float64x2_t acc = vld1q_f64(out + c);
    acc = vaddq_f64(acc, vmulq_f64(w, vld1q_f64(v + c)));
    vst1q_f64(out + c, acc);
  }
  if (c < m) ScalarKernelOps()->axpy1_f64(d, v + c, out + c, m - c);
}

void NeonDenseMatVecF32(const float* wt, const float* bias, const float* x,
                        float* y, size_t rows, size_t cols) {
  // Column-major accumulation over the transposed weights (see kernels.h):
  // 4-wide FMAs straight down the output rows, no horizontal reduction.
  size_t r = 0;
  for (; r + 8 <= rows; r += 8) {
    float32x4_t acc0 = vld1q_f32(bias + r);
    float32x4_t acc1 = vld1q_f32(bias + r + 4);
    for (size_t c = 0; c < cols; ++c) {
      float32x4_t xc = vdupq_n_f32(x[c]);
      const float* wcol = wt + c * rows + r;
      acc0 = vfmaq_f32(acc0, xc, vld1q_f32(wcol));
      acc1 = vfmaq_f32(acc1, xc, vld1q_f32(wcol + 4));
    }
    vst1q_f32(y + r, acc0);
    vst1q_f32(y + r + 4, acc1);
  }
  for (; r + 4 <= rows; r += 4) {
    float32x4_t acc = vld1q_f32(bias + r);
    for (size_t c = 0; c < cols; ++c) {
      acc = vfmaq_f32(acc, vdupq_n_f32(x[c]), vld1q_f32(wt + c * rows + r));
    }
    vst1q_f32(y + r, acc);
  }
  for (; r < rows; ++r) {
    float s = bias[r];
    for (size_t c = 0; c < cols; ++c) s += x[c] * wt[c * rows + r];
    y[r] = s;
  }
}

constexpr KernelOps kNeonOps = {
    KernelBackend::kNeon, NeonGemmRowF64,      NeonAxpy4F64,
    NeonAxpy1F64,         NeonDenseMatVecF32,
};

}  // namespace

const KernelOps* NeonKernelOps() { return &kNeonOps; }

}  // namespace sky::ml

#else  // !(__aarch64__ && __ARM_NEON)

namespace sky::ml {
const KernelOps* NeonKernelOps() { return nullptr; }
}  // namespace sky::ml

#endif
