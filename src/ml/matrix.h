#ifndef SKYSCRAPER_ML_MATRIX_H_
#define SKYSCRAPER_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sky::ml {

/// Dense row-major matrix of doubles. Deliberately small: just the operations
/// the forecasting network, KMeans and the LP solver need. Bounds are checked
/// with assert in debug builds only.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  static Matrix Identity(size_t n);
  /// He-style initialization, scaled by sqrt(2 / fan_in): suits ReLU layers.
  static Matrix RandomHe(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double> Row(size_t r) const;
  void SetRow(size_t r, const std::vector<double>& v);

  /// Reshapes to rows x cols, reusing the existing capacity (no allocation
  /// when the new element count fits). Contents are unspecified afterwards —
  /// the workspace-reuse primitive behind the allocation-free ML paths.
  void Resize(size_t rows, size_t cols);

  Matrix Transpose() const;
  /// Transpose into a caller-owned buffer (resized, reusing capacity).
  void TransposeInto(Matrix* out) const;
  Matrix MatMul(const Matrix& other) const;

  /// this += alpha * other (element-wise; shapes must match).
  void AddScaled(const Matrix& other, double alpha);
  void Scale(double alpha);
  void Fill(double v);

  /// Rank-1 update: this(r, c) += alpha * u[r] * v[c], with u of length
  /// rows() and v of length cols(). Rows whose alpha * u[r] is exactly zero
  /// are skipped — the same shortcut the per-sample backprop loops take, so
  /// batched gradient accumulation stays bitwise-comparable to them.
  ///
  /// Contract: u and v must NOT alias this matrix's storage (the dispatched
  /// kernels and the __restrict inner loops assume it; debug builds assert).
  /// Every current caller accumulates activations into a separate gradient
  /// matrix, so the contract is free — it is stated so it stays true.
  void AddOuterProduct(const double* u, const double* v, double alpha = 1.0);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b, cache-blocked, written into the caller-owned buffer (resized
/// to a.rows() x b.cols(), reusing capacity). Inner products contract four k
/// terms per output-row pass (quartering the out-row memory traffic); the
/// contraction order is a fixed function of the shape, so results are
/// deterministic — run-to-run and thread-count-proof — though rounded
/// differently than a strictly sequential sum.
///
/// The k-contraction runs on the dispatched vector micro-kernels
/// (ml/kernels.h: AVX2/NEON when the host has them, scalar oracle
/// otherwise); every backend is bitwise-identical, so the choice never
/// changes results, only wall time. `out` must not alias a or b (asserted),
/// and a/b/out must be distinct allocations — the kernels' pointer
/// arguments carry a no-aliasing contract.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Fused affine map: out = a * b + bias, with bias (b.cols() entries)
/// broadcast over the rows of out — one pass for the batched layer forward
/// "x W^T + b" when b holds the transposed weights.
void MatMulBiasInto(const Matrix& a, const Matrix& b,
                    const std::vector<double>& bias, Matrix* out);

/// out = a^T * b, accumulated as rank-4 row updates in ascending row
/// (= sample) order — the batched gradient contraction grad = delta^T *
/// activations. out is resized to a.cols() x b.cols() and overwritten.
void MatMulTransposedAInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Euclidean distance between two equally sized vectors.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double L2Norm(const std::vector<double>& a);

}  // namespace sky::ml

#endif  // SKYSCRAPER_ML_MATRIX_H_
