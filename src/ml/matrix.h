#ifndef SKYSCRAPER_ML_MATRIX_H_
#define SKYSCRAPER_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sky::ml {

/// Dense row-major matrix of doubles. Deliberately small: just the operations
/// the forecasting network, KMeans and the LP solver need. Bounds are checked
/// with assert in debug builds only.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  static Matrix Identity(size_t n);
  /// He-style initialization, scaled by sqrt(2 / fan_in): suits ReLU layers.
  static Matrix RandomHe(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  std::vector<double> Row(size_t r) const;
  void SetRow(size_t r, const std::vector<double>& v);

  Matrix Transpose() const;
  Matrix MatMul(const Matrix& other) const;

  /// this += alpha * other (element-wise; shapes must match).
  void AddScaled(const Matrix& other, double alpha);
  void Scale(double alpha);
  void Fill(double v);

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean distance between two equally sized vectors.
double L2Distance(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double L2Norm(const std::vector<double>& a);

}  // namespace sky::ml

#endif  // SKYSCRAPER_ML_MATRIX_H_
