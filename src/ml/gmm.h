#ifndef SKYSCRAPER_ML_GMM_H_
#define SKYSCRAPER_ML_GMM_H_

#include <cstddef>
#include <vector>

#include "util/result.h"

namespace sky::ml {

struct GmmOptions {
  size_t k = 4;
  size_t max_iterations = 100;
  double tolerance = 1e-6;  ///< convergence threshold on log-likelihood
  uint64_t seed = 17;
  double min_variance = 1e-6;
};

/// Diagonal-covariance Gaussian mixture fitted with EM. The paper's Appendix
/// B.2 compares this against KMeans as the content-categorization backend
/// (Figure 17) and finds no end-to-end difference.
struct GmmModel {
  std::vector<std::vector<double>> means;      // k x dim
  std::vector<std::vector<double>> variances;  // k x dim (diagonal)
  std::vector<double> weights;                 // k, sums to 1
  double log_likelihood = 0.0;

  /// Index of the most likely component for `point`.
  size_t Classify(const std::vector<double>& point) const;

  /// Most likely component looking only at coordinate `dim` (the knob
  /// switcher's one-dimensional classification, analogous to Eq. 5).
  size_t ClassifyPartial(size_t dim, double value) const;
};

/// Fits a diagonal GMM with EM, initialized from a KMeans run.
Result<GmmModel> GmmFit(const std::vector<std::vector<double>>& points,
                        const GmmOptions& options);

}  // namespace sky::ml

#endif  // SKYSCRAPER_ML_GMM_H_
