// AVX2 micro-kernels. This TU is the only one compiled with -mavx2 -mfma
// (plus -ffp-contract=off so the compiler cannot fuse the f64 mul/add pairs
// into FMAs behind our back — contraction would change rounding and break
// the bitwise-oracle contract). Everything else in the build stays at the
// baseline ISA; callers reach these kernels only through the runtime
// dispatch in kernels.cc, which checks CPUID first.
//
// f64 kernels: vector lanes perform exactly the scalar oracle's per-element
// operation sequence — separate IEEE mul and add in the same association —
// so results are bitwise-identical to ScalarKernelOps() (property-tested in
// tests/kernels_test.cc). The win comes from 4-wide lanes and from keeping
// the output tile in registers across the whole k range instead of a
// load/store round trip per rank-4 quad.
//
// f32 kernel: reduced precision is a tolerance contract, not a bitwise one,
// so it uses 8-wide FMA, accumulating down the output rows (transposed
// weights) so no horizontal reduction is ever needed.

#include "ml/kernels.h"

#if defined(__AVX2__) && defined(__FMA__) && \
    (defined(__x86_64__) || defined(_M_X64))

#include <immintrin.h>

namespace sky::ml {

namespace {

/// One rank-4 quad's contribution for 4 output columns, in the oracle's
/// association: (v0*b0 + v1*b1) + (v2*b2 + v3*b3).
inline __m256d QuadTerm(__m256d v0, const double* b0, __m256d v1,
                        const double* b1, __m256d v2, const double* b2,
                        __m256d v3, const double* b3) {
  return _mm256_add_pd(
      _mm256_add_pd(_mm256_mul_pd(v0, _mm256_loadu_pd(b0)),
                    _mm256_mul_pd(v1, _mm256_loadu_pd(b1))),
      _mm256_add_pd(_mm256_mul_pd(v2, _mm256_loadu_pd(b2)),
                    _mm256_mul_pd(v3, _mm256_loadu_pd(b3))));
}

void Avx2GemmRowF64(const double* a, size_t k0, size_t k1, const double* b,
                    size_t ldb, double* out, size_t m) {
  size_t j = 0;
  // 32-column register tile: eight accumulators stay in ymm registers
  // across the entire k range (the scalar loop nest re-loads and re-stores
  // the output row once per quad — the main memory-traffic difference), and
  // the wide tile amortizes the a[k] broadcasts and loop control over more
  // columns, which is what keeps the quad loop near the two-FP-port issue
  // ceiling that separate mul/add (no FMA — bitwise contract) allows.
  for (; j + 32 <= m; j += 32) {
    __m256d acc0 = _mm256_loadu_pd(out + j);
    __m256d acc1 = _mm256_loadu_pd(out + j + 4);
    __m256d acc2 = _mm256_loadu_pd(out + j + 8);
    __m256d acc3 = _mm256_loadu_pd(out + j + 12);
    __m256d acc4 = _mm256_loadu_pd(out + j + 16);
    __m256d acc5 = _mm256_loadu_pd(out + j + 20);
    __m256d acc6 = _mm256_loadu_pd(out + j + 24);
    __m256d acc7 = _mm256_loadu_pd(out + j + 28);
    size_t k = k0;
    for (; k + 4 <= k1; k += 4) {
      __m256d v0 = _mm256_set1_pd(a[k]);
      __m256d v1 = _mm256_set1_pd(a[k + 1]);
      __m256d v2 = _mm256_set1_pd(a[k + 2]);
      __m256d v3 = _mm256_set1_pd(a[k + 3]);
      const double* b0 = b + k * ldb + j;
      const double* b1 = b + (k + 1) * ldb + j;
      const double* b2 = b + (k + 2) * ldb + j;
      const double* b3 = b + (k + 3) * ldb + j;
      acc0 = _mm256_add_pd(acc0, QuadTerm(v0, b0, v1, b1, v2, b2, v3, b3));
      acc1 = _mm256_add_pd(
          acc1, QuadTerm(v0, b0 + 4, v1, b1 + 4, v2, b2 + 4, v3, b3 + 4));
      acc2 = _mm256_add_pd(
          acc2, QuadTerm(v0, b0 + 8, v1, b1 + 8, v2, b2 + 8, v3, b3 + 8));
      acc3 = _mm256_add_pd(
          acc3, QuadTerm(v0, b0 + 12, v1, b1 + 12, v2, b2 + 12, v3, b3 + 12));
      acc4 = _mm256_add_pd(
          acc4, QuadTerm(v0, b0 + 16, v1, b1 + 16, v2, b2 + 16, v3, b3 + 16));
      acc5 = _mm256_add_pd(
          acc5, QuadTerm(v0, b0 + 20, v1, b1 + 20, v2, b2 + 20, v3, b3 + 20));
      acc6 = _mm256_add_pd(
          acc6, QuadTerm(v0, b0 + 24, v1, b1 + 24, v2, b2 + 24, v3, b3 + 24));
      acc7 = _mm256_add_pd(
          acc7, QuadTerm(v0, b0 + 28, v1, b1 + 28, v2, b2 + 28, v3, b3 + 28));
    }
    for (; k < k1; ++k) {
      __m256d v = _mm256_set1_pd(a[k]);
      const double* brow = b + k * ldb + j;
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v, _mm256_loadu_pd(brow)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 4)));
      acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 8)));
      acc3 =
          _mm256_add_pd(acc3, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 12)));
      acc4 =
          _mm256_add_pd(acc4, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 16)));
      acc5 =
          _mm256_add_pd(acc5, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 20)));
      acc6 =
          _mm256_add_pd(acc6, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 24)));
      acc7 =
          _mm256_add_pd(acc7, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 28)));
    }
    _mm256_storeu_pd(out + j, acc0);
    _mm256_storeu_pd(out + j + 4, acc1);
    _mm256_storeu_pd(out + j + 8, acc2);
    _mm256_storeu_pd(out + j + 12, acc3);
    _mm256_storeu_pd(out + j + 16, acc4);
    _mm256_storeu_pd(out + j + 20, acc5);
    _mm256_storeu_pd(out + j + 24, acc6);
    _mm256_storeu_pd(out + j + 28, acc7);
  }
  for (; j + 16 <= m; j += 16) {
    __m256d acc0 = _mm256_loadu_pd(out + j);
    __m256d acc1 = _mm256_loadu_pd(out + j + 4);
    __m256d acc2 = _mm256_loadu_pd(out + j + 8);
    __m256d acc3 = _mm256_loadu_pd(out + j + 12);
    size_t k = k0;
    for (; k + 4 <= k1; k += 4) {
      __m256d v0 = _mm256_set1_pd(a[k]);
      __m256d v1 = _mm256_set1_pd(a[k + 1]);
      __m256d v2 = _mm256_set1_pd(a[k + 2]);
      __m256d v3 = _mm256_set1_pd(a[k + 3]);
      const double* b0 = b + k * ldb + j;
      const double* b1 = b + (k + 1) * ldb + j;
      const double* b2 = b + (k + 2) * ldb + j;
      const double* b3 = b + (k + 3) * ldb + j;
      acc0 = _mm256_add_pd(acc0, QuadTerm(v0, b0, v1, b1, v2, b2, v3, b3));
      acc1 = _mm256_add_pd(
          acc1, QuadTerm(v0, b0 + 4, v1, b1 + 4, v2, b2 + 4, v3, b3 + 4));
      acc2 = _mm256_add_pd(
          acc2, QuadTerm(v0, b0 + 8, v1, b1 + 8, v2, b2 + 8, v3, b3 + 8));
      acc3 = _mm256_add_pd(
          acc3, QuadTerm(v0, b0 + 12, v1, b1 + 12, v2, b2 + 12, v3, b3 + 12));
    }
    for (; k < k1; ++k) {
      __m256d v = _mm256_set1_pd(a[k]);
      const double* brow = b + k * ldb + j;
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v, _mm256_loadu_pd(brow)));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 4)));
      acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 8)));
      acc3 =
          _mm256_add_pd(acc3, _mm256_mul_pd(v, _mm256_loadu_pd(brow + 12)));
    }
    _mm256_storeu_pd(out + j, acc0);
    _mm256_storeu_pd(out + j + 4, acc1);
    _mm256_storeu_pd(out + j + 8, acc2);
    _mm256_storeu_pd(out + j + 12, acc3);
  }
  for (; j + 4 <= m; j += 4) {
    __m256d acc = _mm256_loadu_pd(out + j);
    size_t k = k0;
    for (; k + 4 <= k1; k += 4) {
      __m256d v0 = _mm256_set1_pd(a[k]);
      __m256d v1 = _mm256_set1_pd(a[k + 1]);
      __m256d v2 = _mm256_set1_pd(a[k + 2]);
      __m256d v3 = _mm256_set1_pd(a[k + 3]);
      acc = _mm256_add_pd(
          acc, QuadTerm(v0, b + k * ldb + j, v1, b + (k + 1) * ldb + j, v2,
                        b + (k + 2) * ldb + j, v3, b + (k + 3) * ldb + j));
    }
    for (; k < k1; ++k) {
      __m256d v = _mm256_set1_pd(a[k]);
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(v, _mm256_loadu_pd(b + k * ldb + j)));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  if (j < m) {
    // Column tail (< 4): the scalar oracle on the remaining columns — same
    // math, and one place to keep bit-exact instead of two.
    ScalarKernelOps()->gemm_row_f64(a, k0, k1, b + j, ldb, out + j, m - j);
  }
}

void Avx2Axpy4F64(double d0, const double* v0, double d1, const double* v1,
                  double d2, const double* v2, double d3, const double* v3,
                  double* out, size_t m) {
  __m256d w0 = _mm256_set1_pd(d0);
  __m256d w1 = _mm256_set1_pd(d1);
  __m256d w2 = _mm256_set1_pd(d2);
  __m256d w3 = _mm256_set1_pd(d3);
  size_t c = 0;
  for (; c + 4 <= m; c += 4) {
    __m256d acc = _mm256_loadu_pd(out + c);
    acc = _mm256_add_pd(acc,
                        QuadTerm(w0, v0 + c, w1, v1 + c, w2, v2 + c, w3,
                                 v3 + c));
    _mm256_storeu_pd(out + c, acc);
  }
  if (c < m) {
    ScalarKernelOps()->axpy4_f64(d0, v0 + c, d1, v1 + c, d2, v2 + c, d3,
                                 v3 + c, out + c, m - c);
  }
}

void Avx2Axpy1F64(double d, const double* v, double* out, size_t m) {
  __m256d w = _mm256_set1_pd(d);
  size_t c = 0;
  for (; c + 4 <= m; c += 4) {
    __m256d acc = _mm256_loadu_pd(out + c);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(w, _mm256_loadu_pd(v + c)));
    _mm256_storeu_pd(out + c, acc);
  }
  if (c < m) ScalarKernelOps()->axpy1_f64(d, v + c, out + c, m - c);
}

void Avx2DenseMatVecF32(const float* wt, const float* bias, const float* x,
                        float* y, size_t rows, size_t cols) {
  // Column-major accumulation over the transposed weights: y starts as the
  // bias and every input column contributes one 8-wide FMA per row tile —
  // no horizontal reductions anywhere, which is what makes the f32 forward
  // beat the (bitwise-pinned, sequential) f64 dot products.
  size_t r = 0;
  for (; r + 16 <= rows; r += 16) {
    __m256 acc0 = _mm256_loadu_ps(bias + r);
    __m256 acc1 = _mm256_loadu_ps(bias + r + 8);
    for (size_t c = 0; c < cols; ++c) {
      __m256 xc = _mm256_set1_ps(x[c]);
      const float* wcol = wt + c * rows + r;
      acc0 = _mm256_fmadd_ps(xc, _mm256_loadu_ps(wcol), acc0);
      acc1 = _mm256_fmadd_ps(xc, _mm256_loadu_ps(wcol + 8), acc1);
    }
    _mm256_storeu_ps(y + r, acc0);
    _mm256_storeu_ps(y + r + 8, acc1);
  }
  for (; r + 8 <= rows; r += 8) {
    __m256 acc = _mm256_loadu_ps(bias + r);
    for (size_t c = 0; c < cols; ++c) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(x[c]),
                            _mm256_loadu_ps(wt + c * rows + r), acc);
    }
    _mm256_storeu_ps(y + r, acc);
  }
  // Row tail (< 8): plain loops — f32 is a tolerance contract, so the tail
  // needs no oracle delegation, just the same math.
  for (; r < rows; ++r) {
    float s = bias[r];
    for (size_t c = 0; c < cols; ++c) s += x[c] * wt[c * rows + r];
    y[r] = s;
  }
}

constexpr KernelOps kAvx2Ops = {
    KernelBackend::kAvx2, Avx2GemmRowF64,      Avx2Axpy4F64,
    Avx2Axpy1F64,         Avx2DenseMatVecF32,
};

}  // namespace

const KernelOps* Avx2KernelOps() {
  // Built with AVX2+FMA, but the binary may land on an older core: gate on
  // CPUID before handing out code the host cannot execute.
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported ? &kAvx2Ops : nullptr;
}

}  // namespace sky::ml

#else  // !(__AVX2__ && __FMA__ && x86-64)

namespace sky::ml {
const KernelOps* Avx2KernelOps() { return nullptr; }
}  // namespace sky::ml

#endif
