#include "ml/matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "ml/kernels.h"

namespace sky::ml {

namespace {

/// Cache-block geometry for the GEMM kernels. The forecasting nets are small
/// (tens of columns), where blocking is a no-op by construction; on larger
/// operands the tiles keep one output block plus the operand panels it needs
/// L1/L2-resident. The block order is a fixed function of the shapes, so
/// results are deterministic — though the rank-4 contractions reassociate
/// sums, so they agree with the naive triple loop to rounding error, not
/// bitwise (see the header docs).
constexpr size_t kBlockRows = 64;
constexpr size_t kBlockInner = 128;

/// Debug-only check behind the no-aliasing contract the __restrict inner
/// loops and the dispatched kernels assume (see the matrix.h docs). Compares
/// through uintptr_t so unrelated allocations are comparable.
inline bool RangesOverlap(const void* a, size_t a_bytes, const void* b,
                          size_t b_bytes) {
  auto lo_a = reinterpret_cast<uintptr_t>(a);
  auto lo_b = reinterpret_cast<uintptr_t>(b);
  return lo_a < lo_b + b_bytes && lo_b < lo_a + a_bytes;
}

}  // namespace

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomHe(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  double stddev = std::sqrt(2.0 / static_cast<double>(cols));
  for (double& v : m.data_) v = rng->Normal(0.0, stddev);
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<double>& v) {
  assert(r < rows_ && v.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) At(r, c) = v[c];
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  TransposeInto(&t);
  return t;
}

void Matrix::TransposeInto(Matrix* out) const {
  assert(out != this);
  out->Resize(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out->At(c, r) = At(r, c);
  }
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(i, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double* __restrict dst = data_.data();
  const double* __restrict src = other.data_.data();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += alpha * src[i];
}

void Matrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

void Matrix::AddOuterProduct(const double* u, const double* v, double alpha) {
  // The no-aliasing contract from the header, enforced in debug builds: the
  // kernels (and the __restrict the scalar oracle carries) assume u/v never
  // overlap this matrix's storage.
  assert(!RangesOverlap(u, rows_ * sizeof(double), data_.data(),
                        data_.size() * sizeof(double)));
  assert(!RangesOverlap(v, cols_ * sizeof(double), data_.data(),
                        data_.size() * sizeof(double)));
  const KernelOps& kernels = ActiveKernels();
  for (size_t r = 0; r < rows_; ++r) {
    double d = alpha * u[r];
    if (d == 0.0) continue;
    kernels.axpy1_f64(d, v, RowPtr(r), cols_);
  }
}

namespace {

/// Shared row-major GEMM: out = a * b (+ bias broadcast over rows). The
/// k-range contraction per output row is a dispatched micro-kernel
/// (ml::KernelOps::gemm_row_f64): four b rows per pass in a fixed
/// association, vector-tiled on AVX2/NEON hosts and bitwise-identical to the
/// scalar oracle either way. i/k blocking keeps the active b panel
/// cache-resident on large operands; the contraction and block order are a
/// fixed function of the shapes, so results are fully deterministic.
void MatMulRowMajorImpl(const Matrix& a, const Matrix& b, const double* bias,
                        Matrix* out) {
  assert(a.cols() == b.rows());
  assert(out != &a && out != &b);
  size_t n = a.rows(), kdim = a.cols(), m = b.cols();
  out->Resize(n, m);
  if (kdim == 0) {
    // The per-row initialization below lives inside the k-block loop, which
    // a 0-deep product never enters — initialize explicitly so a reused out
    // buffer cannot leak stale contents.
    for (size_t i = 0; i < n; ++i) {
      double* __restrict orow = out->RowPtr(i);
      for (size_t j = 0; j < m; ++j) orow[j] = bias == nullptr ? 0.0 : bias[j];
    }
    return;
  }
  const KernelOps& kernels = ActiveKernels();
  for (size_t i0 = 0; i0 < n; i0 += kBlockRows) {
    size_t i1 = std::min(n, i0 + kBlockRows);
    for (size_t k0 = 0; k0 < kdim; k0 += kBlockInner) {
      size_t k1 = std::min(kdim, k0 + kBlockInner);
      for (size_t i = i0; i < i1; ++i) {
        double* __restrict orow = out->RowPtr(i);
        if (k0 == 0) {
          if (bias == nullptr) {
            for (size_t j = 0; j < m; ++j) orow[j] = 0.0;
          } else {
            for (size_t j = 0; j < m; ++j) orow[j] = bias[j];
          }
        }
        kernels.gemm_row_f64(a.RowPtr(i), k0, k1, b.RowPtr(0), m, orow, m);
      }
    }
  }
}

}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  MatMulRowMajorImpl(a, b, nullptr, out);
}

void MatMulBiasInto(const Matrix& a, const Matrix& b,
                    const std::vector<double>& bias, Matrix* out) {
  assert(bias.size() == b.cols());
  MatMulRowMajorImpl(a, b, bias.data(), out);
}

void MatMulTransposedAInto(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  assert(out != &a && out != &b);
  size_t n = a.rows(), mr = a.cols(), mc = b.cols();
  out->Resize(mr, mc);
  out->Fill(0.0);
  // Rank-4 updates in ascending row (= sample) order: out is the small
  // gradient matrix and stays cache-resident while a and b stream by, and
  // four samples share each pass over an out row. The quad update is the
  // dispatched axpy4 kernel — same fixed association on every backend.
  const KernelOps& kernels = ActiveKernels();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double* __restrict u0 = a.RowPtr(i);
    const double* __restrict u1 = a.RowPtr(i + 1);
    const double* __restrict u2 = a.RowPtr(i + 2);
    const double* __restrict u3 = a.RowPtr(i + 3);
    const double* v0 = b.RowPtr(i);
    const double* v1 = b.RowPtr(i + 1);
    const double* v2 = b.RowPtr(i + 2);
    const double* v3 = b.RowPtr(i + 3);
    for (size_t r = 0; r < mr; ++r) {
      kernels.axpy4_f64(u0[r], v0, u1[r], v1, u2[r], v2, u3[r], v3,
                        out->RowPtr(r), mc);
    }
  }
  for (; i < n; ++i) {
    out->AddOuterProduct(a.RowPtr(i), b.RowPtr(i));
  }
}

double L2Distance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double L2Norm(const std::vector<double>& a) {
  double s = 0.0;
  for (double v : a) s += v * v;
  return std::sqrt(s);
}

}  // namespace sky::ml
