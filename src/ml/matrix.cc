#include "ml/matrix.h"

#include <cassert>
#include <cmath>

namespace sky::ml {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
  return m;
}

Matrix Matrix::RandomHe(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  double stddev = std::sqrt(2.0 / static_cast<double>(cols));
  for (double& v : m.data_) v = rng->Normal(0.0, stddev);
  return m;
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<double>& v) {
  assert(r < rows_ && v.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) At(r, c) = v[c];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = At(i, k);
      if (a == 0.0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

double L2Distance(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double L2Norm(const std::vector<double>& a) {
  double s = 0.0;
  for (double v : a) s += v * v;
  return std::sqrt(s);
}

}  // namespace sky::ml
