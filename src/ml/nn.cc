#include "ml/nn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace sky::ml {

namespace {

constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;
constexpr double kLogEps = 1e-12;

void ApplyActivation(Activation act, std::vector<double>* v) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (double& x : *v) x = x > 0.0 ? x : 0.0;
      return;
    case Activation::kSoftmax: {
      double mx = *std::max_element(v->begin(), v->end());
      double sum = 0.0;
      for (double& x : *v) {
        x = std::exp(x - mx);
        sum += x;
      }
      for (double& x : *v) x /= sum;
      return;
    }
  }
}

}  // namespace

double ComputeLoss(const std::vector<double>& pred,
                   const std::vector<double>& target, Loss loss) {
  assert(pred.size() == target.size());
  double out = 0.0;
  switch (loss) {
    case Loss::kMse:
      for (size_t i = 0; i < pred.size(); ++i) {
        double d = pred[i] - target[i];
        out += d * d;
      }
      return out / static_cast<double>(pred.size());
    case Loss::kCrossEntropy:
      for (size_t i = 0; i < pred.size(); ++i) {
        out -= target[i] * std::log(pred[i] + kLogEps);
      }
      return out;
  }
  return out;
}

FeedForwardNet::FeedForwardNet(size_t input_dim, std::vector<size_t> hidden,
                               size_t output_dim,
                               Activation output_activation, Rng* rng)
    : input_dim_(input_dim), output_dim_(output_dim) {
  size_t in = input_dim;
  for (size_t width : hidden) {
    Layer l;
    l.w = Matrix::RandomHe(width, in, rng);
    l.b.assign(width, 0.0);
    l.act = Activation::kRelu;
    l.mw = Matrix(width, in, 0.0);
    l.vw = Matrix(width, in, 0.0);
    l.mb.assign(width, 0.0);
    l.vb.assign(width, 0.0);
    layers_.push_back(std::move(l));
    in = width;
  }
  Layer out;
  out.w = Matrix::RandomHe(output_dim, in, rng);
  out.b.assign(output_dim, 0.0);
  out.act = output_activation;
  out.mw = Matrix(output_dim, in, 0.0);
  out.vw = Matrix(output_dim, in, 0.0);
  out.mb.assign(output_dim, 0.0);
  out.vb.assign(output_dim, 0.0);
  layers_.push_back(std::move(out));
}

size_t FeedForwardNet::NumParameters() const {
  size_t n = 0;
  for (const Layer& l : layers_) {
    n += l.w.rows() * l.w.cols() + l.b.size();
  }
  return n;
}

std::vector<double> FeedForwardNet::Forward(const std::vector<double>& x,
                                            ForwardCache* cache) const {
  std::vector<double> cur = x;
  if (cache != nullptr) {
    cache->activations.clear();
    cache->pre_activations.clear();
    cache->activations.push_back(cur);
  }
  for (const Layer& l : layers_) {
    std::vector<double> next(l.w.rows(), 0.0);
    for (size_t r = 0; r < l.w.rows(); ++r) {
      const double* wrow = l.w.RowPtr(r);
      double s = l.b[r];
      for (size_t c = 0; c < l.w.cols(); ++c) s += wrow[c] * cur[c];
      next[r] = s;
    }
    if (cache != nullptr) cache->pre_activations.push_back(next);
    ApplyActivation(l.act, &next);
    if (cache != nullptr) cache->activations.push_back(next);
    cur = std::move(next);
  }
  return cur;
}

std::vector<double> FeedForwardNet::Predict(const std::vector<double>& x) const {
  assert(x.size() == input_dim_);
  return Forward(x, nullptr);
}

double FeedForwardNet::BackwardAccumulate(
    const std::vector<double>& x, const std::vector<double>& y, Loss loss,
    std::vector<Matrix>* grad_w, std::vector<std::vector<double>>* grad_b) {
  ForwardCache cache;
  std::vector<double> pred = Forward(x, &cache);
  double sample_loss = ComputeLoss(pred, y, loss);

  // Delta for the output layer. Softmax + cross-entropy and identity + MSE
  // both reduce to (pred - y) up to a constant factor.
  std::vector<double> delta(pred.size());
  const Layer& out_layer = layers_.back();
  if (loss == Loss::kCrossEntropy) {
    assert(out_layer.act == Activation::kSoftmax);
    for (size_t i = 0; i < pred.size(); ++i) delta[i] = pred[i] - y[i];
  } else {
    double scale = 2.0 / static_cast<double>(pred.size());
    for (size_t i = 0; i < pred.size(); ++i) {
      delta[i] = scale * (pred[i] - y[i]);
    }
    if (out_layer.act == Activation::kRelu) {
      const auto& pre = cache.pre_activations.back();
      for (size_t i = 0; i < delta.size(); ++i) {
        if (pre[i] <= 0.0) delta[i] = 0.0;
      }
    } else if (out_layer.act == Activation::kSoftmax) {
      // Full softmax Jacobian for the MSE case.
      const auto& s = cache.activations.back();
      std::vector<double> jd(delta.size(), 0.0);
      double dot = 0.0;
      for (size_t i = 0; i < s.size(); ++i) dot += delta[i] * s[i];
      for (size_t i = 0; i < s.size(); ++i) jd[i] = s[i] * (delta[i] - dot);
      delta = std::move(jd);
    }
  }

  for (size_t li = layers_.size(); li-- > 0;) {
    const Layer& l = layers_[li];
    const std::vector<double>& a_in = cache.activations[li];
    Matrix& gw = (*grad_w)[li];
    std::vector<double>& gb = (*grad_b)[li];
    for (size_t r = 0; r < l.w.rows(); ++r) {
      gb[r] += delta[r];
      double* grow = gw.RowPtr(r);
      double d = delta[r];
      if (d == 0.0) continue;
      for (size_t c = 0; c < l.w.cols(); ++c) grow[c] += d * a_in[c];
    }
    if (li == 0) break;
    // Propagate delta through W and the previous layer's ReLU.
    std::vector<double> prev_delta(l.w.cols(), 0.0);
    for (size_t r = 0; r < l.w.rows(); ++r) {
      const double* wrow = l.w.RowPtr(r);
      double d = delta[r];
      if (d == 0.0) continue;
      for (size_t c = 0; c < l.w.cols(); ++c) prev_delta[c] += d * wrow[c];
    }
    const auto& prev_pre = cache.pre_activations[li - 1];
    assert(layers_[li - 1].act == Activation::kRelu);
    for (size_t c = 0; c < prev_delta.size(); ++c) {
      if (prev_pre[c] <= 0.0) prev_delta[c] = 0.0;
    }
    delta = std::move(prev_delta);
  }
  return sample_loss;
}

void FeedForwardNet::AdamStep(const std::vector<Matrix>& grad_w,
                              const std::vector<std::vector<double>>& grad_b,
                              double lr, size_t batch) {
  ++adam_t_;
  double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(adam_t_));
  double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(adam_t_));
  double inv_batch = 1.0 / static_cast<double>(batch);
  for (size_t li = 0; li < layers_.size(); ++li) {
    Layer& l = layers_[li];
    const auto& gw = grad_w[li].data();
    auto& w = l.w.data();
    auto& mw = l.mw.data();
    auto& vw = l.vw.data();
    for (size_t i = 0; i < w.size(); ++i) {
      double g = gw[i] * inv_batch;
      mw[i] = kAdamBeta1 * mw[i] + (1.0 - kAdamBeta1) * g;
      vw[i] = kAdamBeta2 * vw[i] + (1.0 - kAdamBeta2) * g * g;
      double mhat = mw[i] / bc1;
      double vhat = vw[i] / bc2;
      w[i] -= lr * mhat / (std::sqrt(vhat) + kAdamEps);
    }
    for (size_t i = 0; i < l.b.size(); ++i) {
      double g = grad_b[li][i] * inv_batch;
      l.mb[i] = kAdamBeta1 * l.mb[i] + (1.0 - kAdamBeta1) * g;
      l.vb[i] = kAdamBeta2 * l.vb[i] + (1.0 - kAdamBeta2) * g * g;
      double mhat = l.mb[i] / bc1;
      double vhat = l.vb[i] / bc2;
      l.b[i] -= lr * mhat / (std::sqrt(vhat) + kAdamEps);
    }
  }
}

double FeedForwardNet::EvalLoss(const Matrix& X, const Matrix& Y,
                                const std::vector<size_t>& idx,
                                Loss loss) const {
  if (idx.empty()) return 0.0;
  double total = 0.0;
  for (size_t i : idx) {
    std::vector<double> pred = Forward(X.Row(i), nullptr);
    total += ComputeLoss(pred, Y.Row(i), loss);
  }
  return total / static_cast<double>(idx.size());
}

Result<TrainReport> FeedForwardNet::Train(const Matrix& X, const Matrix& Y,
                                          const TrainOptions& opts) {
  if (X.rows() != Y.rows()) {
    return Status::InvalidArgument("X and Y row counts differ");
  }
  if (X.cols() != input_dim_ || Y.cols() != output_dim_) {
    return Status::InvalidArgument("X/Y widths do not match network shape");
  }
  if (X.rows() < 2) {
    return Status::InvalidArgument("need at least 2 training samples");
  }
  if (opts.batch_size == 0 || opts.epochs == 0) {
    return Status::InvalidArgument("batch_size and epochs must be positive");
  }

  std::vector<size_t> order(X.rows());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(opts.shuffle_seed);
  rng.Shuffle(&order);

  size_t n_val = static_cast<size_t>(
      std::floor(opts.validation_split * static_cast<double>(X.rows())));
  n_val = std::min(n_val, X.rows() - 1);
  std::vector<size_t> val_idx(order.begin(), order.begin() + n_val);
  std::vector<size_t> train_idx(order.begin() + n_val, order.end());

  TrainReport report;
  report.best_val_loss = std::numeric_limits<double>::infinity();

  // Snapshot of the best weights (by validation loss), restored at the end.
  std::vector<Layer> best_layers = layers_;

  std::vector<Matrix> grad_w;
  std::vector<std::vector<double>> grad_b;
  for (const Layer& l : layers_) {
    grad_w.emplace_back(l.w.rows(), l.w.cols(), 0.0);
    grad_b.emplace_back(l.b.size(), 0.0);
  }

  for (size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    rng.Shuffle(&train_idx);
    double epoch_loss = 0.0;
    size_t pos = 0;
    while (pos < train_idx.size()) {
      size_t batch = std::min(opts.batch_size, train_idx.size() - pos);
      for (auto& g : grad_w) g.Fill(0.0);
      for (auto& g : grad_b) std::fill(g.begin(), g.end(), 0.0);
      for (size_t b = 0; b < batch; ++b) {
        size_t i = train_idx[pos + b];
        epoch_loss +=
            BackwardAccumulate(X.Row(i), Y.Row(i), opts.loss, &grad_w, &grad_b);
      }
      AdamStep(grad_w, grad_b, opts.learning_rate, batch);
      pos += batch;
    }
    epoch_loss /= static_cast<double>(std::max<size_t>(1, train_idx.size()));
    report.train_loss_per_epoch.push_back(epoch_loss);

    double val_loss = val_idx.empty()
                          ? epoch_loss
                          : EvalLoss(X, Y, val_idx, opts.loss);
    report.val_loss_per_epoch.push_back(val_loss);
    if (val_loss < report.best_val_loss) {
      report.best_val_loss = val_loss;
      report.best_epoch = epoch;
      if (opts.keep_best_validation_weights) best_layers = layers_;
    }
  }

  if (opts.keep_best_validation_weights) layers_ = std::move(best_layers);
  return report;
}

void FeedForwardNet::OnlineUpdate(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  double learning_rate, Loss loss) {
  std::vector<Matrix> grad_w;
  std::vector<std::vector<double>> grad_b;
  for (const Layer& l : layers_) {
    grad_w.emplace_back(l.w.rows(), l.w.cols(), 0.0);
    grad_b.emplace_back(l.b.size(), 0.0);
  }
  BackwardAccumulate(x, y, loss, &grad_w, &grad_b);
  AdamStep(grad_w, grad_b, learning_rate, 1);
}

}  // namespace sky::ml
