#include "ml/nn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

namespace sky::ml {

namespace {

constexpr double kAdamBeta1 = 0.9;
constexpr double kAdamBeta2 = 0.999;
constexpr double kAdamEps = 1e-8;
constexpr double kLogEps = 1e-12;

/// Rows per chunk of the forward-only batched paths (PredictBatchInto). Pure
/// per-row computations: the chunking never affects values, only locality.
constexpr size_t kPredictChunkRows = 32;
/// Upper bound on concurrently scheduled workspace chunks.
constexpr size_t kMaxChunkSlots = 16;

void ApplyActivation(Activation act, std::vector<double>* v) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (double& x : *v) x = x > 0.0 ? x : 0.0;
      return;
    case Activation::kSoftmax: {
      double mx = *std::max_element(v->begin(), v->end());
      double sum = 0.0;
      for (double& x : *v) {
        x = std::exp(x - mx);
        sum += x;
      }
      for (double& x : *v) x /= sum;
      return;
    }
  }
}

/// f32 twin of ApplyActivation for the reduced-precision inference path:
/// same max-shifted softmax, evaluated entirely in float.
void ApplyActivationF32(Activation act, float* v, size_t n) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) v[i] = v[i] > 0.0f ? v[i] : 0.0f;
      return;
    case Activation::kSoftmax: {
      float mx = v[0];
      for (size_t i = 1; i < n; ++i) mx = std::max(mx, v[i]);
      float sum = 0.0f;
      for (size_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - mx);
        sum += v[i];
      }
      for (size_t i = 0; i < n; ++i) v[i] /= sum;
      return;
    }
  }
}

/// Row-wise activation from pre-activations into a separate output buffer,
/// arithmetic-identical to ApplyActivation on each row.
void ActivateRowsInto(Activation act, const Matrix& pre, size_t m,
                      Matrix* out) {
  size_t w = pre.cols();
  out->Resize(m, w);
  switch (act) {
    case Activation::kIdentity:
      std::memcpy(out->RowPtr(0), pre.RowPtr(0), m * w * sizeof(double));
      return;
    case Activation::kRelu: {
      const double* src = pre.RowPtr(0);
      double* dst = out->RowPtr(0);
      for (size_t i = 0; i < m * w; ++i) dst[i] = src[i] > 0.0 ? src[i] : 0.0;
      return;
    }
    case Activation::kSoftmax:
      for (size_t i = 0; i < m; ++i) {
        const double* z = pre.RowPtr(i);
        double* o = out->RowPtr(i);
        double mx = z[0];
        for (size_t j = 1; j < w; ++j) mx = std::max(mx, z[j]);
        double sum = 0.0;
        for (size_t j = 0; j < w; ++j) {
          o[j] = std::exp(z[j] - mx);
          sum += o[j];
        }
        for (size_t j = 0; j < w; ++j) o[j] /= sum;
      }
      return;
  }
}

/// Span twin of ComputeLoss, same accumulation order.
double LossRow(const double* pred, const double* target, size_t n, Loss loss) {
  double out = 0.0;
  switch (loss) {
    case Loss::kMse:
      for (size_t i = 0; i < n; ++i) {
        double d = pred[i] - target[i];
        out += d * d;
      }
      return out / static_cast<double>(n);
    case Loss::kCrossEntropy:
      for (size_t i = 0; i < n; ++i) {
        out -= target[i] * std::log(pred[i] + kLogEps);
      }
      return out;
  }
  return out;
}

/// Copies the rows of src selected by idx[0..m) into out (resized, no
/// allocation once out's capacity covers the chunk).
void GatherRows(const Matrix& src, const size_t* idx, size_t m, Matrix* out) {
  size_t w = src.cols();
  out->Resize(m, w);
  for (size_t i = 0; i < m; ++i) {
    std::memcpy(out->RowPtr(i), src.RowPtr(idx[i]), w * sizeof(double));
  }
}

/// Contiguous-range gather: rows [begin, begin + m) in one copy.
void GatherRowRange(const Matrix& src, size_t begin, size_t m, Matrix* out) {
  size_t w = src.cols();
  out->Resize(m, w);
  std::memcpy(out->RowPtr(0), src.RowPtr(begin), m * w * sizeof(double));
}

/// Shared chunk dispatcher for the batched paths: processes `chunks` in
/// waves of at most `slots`, running run(chunk_index, slot) for each —
/// serially when there is no parallelism to be had, else fanned out on the
/// pool — then after_wave(base, wave) on the calling thread (the ordered
/// reduction hook; pass nullptr when there is nothing to reduce).
void ForEachChunkWave(size_t chunks, size_t slots, dag::ThreadPool* pool,
                      const std::function<void(size_t, size_t)>& run,
                      const std::function<void(size_t, size_t)>& after_wave) {
  for (size_t base = 0; base < chunks; base += slots) {
    size_t wave = std::min(slots, chunks - base);
    if (wave == 1 || pool == nullptr || pool->num_threads() <= 1) {
      for (size_t s = 0; s < wave; ++s) run(base + s, s);
    } else {
      dag::ParallelFor(pool, wave, [&](size_t s) { run(base + s, s); });
    }
    if (after_wave) after_wave(base, wave);
  }
}

}  // namespace

double ComputeLoss(const std::vector<double>& pred,
                   const std::vector<double>& target, Loss loss) {
  assert(pred.size() == target.size());
  return LossRow(pred.data(), target.data(), pred.size(), loss);
}

FeedForwardNet::FeedForwardNet(size_t input_dim, std::vector<size_t> hidden,
                               size_t output_dim,
                               Activation output_activation, Rng* rng)
    : input_dim_(input_dim), output_dim_(output_dim) {
  size_t in = input_dim;
  for (size_t width : hidden) {
    Layer l;
    l.w = Matrix::RandomHe(width, in, rng);
    l.wt = l.w.Transpose();
    l.b.assign(width, 0.0);
    l.act = Activation::kRelu;
    l.mw = Matrix(width, in, 0.0);
    l.vw = Matrix(width, in, 0.0);
    l.mb.assign(width, 0.0);
    l.vb.assign(width, 0.0);
    layers_.push_back(std::move(l));
    in = width;
  }
  Layer out;
  out.w = Matrix::RandomHe(output_dim, in, rng);
  out.wt = out.w.Transpose();
  out.b.assign(output_dim, 0.0);
  out.act = output_activation;
  out.mw = Matrix(output_dim, in, 0.0);
  out.vw = Matrix(output_dim, in, 0.0);
  out.mb.assign(output_dim, 0.0);
  out.vb.assign(output_dim, 0.0);
  layers_.push_back(std::move(out));
}

size_t FeedForwardNet::NumParameters() const {
  size_t n = 0;
  for (const Layer& l : layers_) {
    n += l.w.rows() * l.w.cols() + l.b.size();
  }
  return n;
}

std::vector<double> FeedForwardNet::FlattenParameters() const {
  std::vector<double> flat;
  flat.reserve(NumParameters());
  for (const Layer& l : layers_) {
    flat.insert(flat.end(), l.w.data().begin(), l.w.data().end());
    flat.insert(flat.end(), l.b.begin(), l.b.end());
  }
  return flat;
}

NetSnapshot FeedForwardNet::Snapshot() const {
  NetSnapshot snap;
  snap.input_dim = input_dim_;
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    snap.hidden.push_back(layers_[i].w.rows());
  }
  snap.output_dim = output_dim_;
  snap.output_activation = layers_.back().act;
  snap.adam_steps = adam_t_;
  snap.params = FlattenParameters();
  snap.adam_m.reserve(snap.params.size());
  snap.adam_v.reserve(snap.params.size());
  for (const Layer& l : layers_) {
    snap.adam_m.insert(snap.adam_m.end(), l.mw.data().begin(),
                       l.mw.data().end());
    snap.adam_m.insert(snap.adam_m.end(), l.mb.begin(), l.mb.end());
    snap.adam_v.insert(snap.adam_v.end(), l.vw.data().begin(),
                       l.vw.data().end());
    snap.adam_v.insert(snap.adam_v.end(), l.vb.begin(), l.vb.end());
  }
  return snap;
}

Result<FeedForwardNet> FeedForwardNet::FromSnapshot(
    const NetSnapshot& snapshot) {
  if (snapshot.input_dim == 0 || snapshot.output_dim == 0) {
    return Status::InvalidArgument("net snapshot has zero-width layers");
  }
  for (size_t width : snapshot.hidden) {
    if (width == 0) {
      return Status::InvalidArgument("net snapshot has zero-width layers");
    }
  }
  // Build the architecture (the random initialization is overwritten below),
  // then restore every parameter and both Adam moment tensors in the
  // FlattenParameters layout.
  Rng rng(0);
  FeedForwardNet net(snapshot.input_dim, snapshot.hidden, snapshot.output_dim,
                     snapshot.output_activation, &rng);
  size_t expected = net.NumParameters();
  if (snapshot.params.size() != expected ||
      snapshot.adam_m.size() != expected ||
      snapshot.adam_v.size() != expected) {
    return Status::InvalidArgument(
        "net snapshot parameter count does not match its architecture");
  }
  size_t offset = 0;
  for (Layer& l : net.layers_) {
    size_t nw = l.w.rows() * l.w.cols();
    std::copy(snapshot.params.begin() + offset,
              snapshot.params.begin() + offset + nw, l.w.data().begin());
    std::copy(snapshot.adam_m.begin() + offset,
              snapshot.adam_m.begin() + offset + nw, l.mw.data().begin());
    std::copy(snapshot.adam_v.begin() + offset,
              snapshot.adam_v.begin() + offset + nw, l.vw.data().begin());
    offset += nw;
    size_t nb = l.b.size();
    std::copy(snapshot.params.begin() + offset,
              snapshot.params.begin() + offset + nb, l.b.begin());
    std::copy(snapshot.adam_m.begin() + offset,
              snapshot.adam_m.begin() + offset + nb, l.mb.begin());
    std::copy(snapshot.adam_v.begin() + offset,
              snapshot.adam_v.begin() + offset + nb, l.vb.begin());
    offset += nb;
    // The batched forward reads the transposed weights; keep them in sync
    // with the restored w exactly as AdamStep does.
    l.w.TransposeInto(&l.wt);
  }
  net.adam_t_ = snapshot.adam_steps;
  return net;
}

std::vector<double> FeedForwardNet::Forward(const std::vector<double>& x,
                                            ForwardCache* cache) const {
  std::vector<double> cur = x;
  if (cache != nullptr) {
    cache->activations.clear();
    cache->pre_activations.clear();
    cache->activations.push_back(cur);
  }
  for (const Layer& l : layers_) {
    std::vector<double> next(l.w.rows(), 0.0);
    for (size_t r = 0; r < l.w.rows(); ++r) {
      const double* wrow = l.w.RowPtr(r);
      double s = l.b[r];
      for (size_t c = 0; c < l.w.cols(); ++c) s += wrow[c] * cur[c];
      next[r] = s;
    }
    if (cache != nullptr) cache->pre_activations.push_back(next);
    ApplyActivation(l.act, &next);
    if (cache != nullptr) cache->activations.push_back(next);
    cur = std::move(next);
  }
  return cur;
}

std::vector<double> FeedForwardNet::Predict(const std::vector<double>& x) const {
  assert(x.size() == input_dim_);
  return Forward(x, nullptr);
}

void FeedForwardNet::PredictInto(const std::vector<double>& x,
                                 PredictScratch* scratch,
                                 std::vector<double>* out) const {
  assert(x.size() == input_dim_);
  // Same bias-first sequential dot products as Forward, ping-ponging between
  // the two scratch buffers instead of allocating per layer.
  const double* cur = x.data();
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    std::vector<double>& dst = (li % 2 == 0) ? scratch->even : scratch->odd;
    dst.resize(l.w.rows());
    for (size_t r = 0; r < l.w.rows(); ++r) {
      const double* wrow = l.w.RowPtr(r);
      double s = l.b[r];
      for (size_t c = 0; c < l.w.cols(); ++c) s += wrow[c] * cur[c];
      dst[r] = s;
    }
    ApplyActivation(l.act, &dst);
    cur = dst.data();
  }
  out->resize(output_dim_);
  std::memcpy(out->data(), cur, output_dim_ * sizeof(double));
}

void FeedForwardNet::RefreshF32Mirror() const {
  if (mirror_version_ == weights_version_ && !mirror_.empty()) return;
  mirror_.resize(layers_.size());
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    LayerF32& m = mirror_[li];
    // Round the transposed copy (kept in sync by AdamStep/FromSnapshot):
    // the f32 matvec kernel runs column-major over wt, see kernels.h.
    const std::vector<double>& wt = l.wt.data();
    m.wt.resize(wt.size());
    for (size_t i = 0; i < wt.size(); ++i) {
      m.wt[i] = static_cast<float>(wt[i]);
    }
    m.b.resize(l.b.size());
    for (size_t i = 0; i < l.b.size(); ++i) m.b[i] = static_cast<float>(l.b[i]);
  }
  mirror_version_ = weights_version_;
}

void FeedForwardNet::PredictIntoF32(const std::vector<double>& x,
                                    PredictScratchF32* scratch,
                                    std::vector<double>* out) const {
  assert(x.size() == input_dim_);
  RefreshF32Mirror();
  scratch->input.resize(input_dim_);
  for (size_t i = 0; i < input_dim_; ++i) {
    scratch->input[i] = static_cast<float>(x[i]);
  }
  const float* cur = scratch->input.data();
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    const LayerF32& m = mirror_[li];
    std::vector<float>& dst = (li % 2 == 0) ? scratch->even : scratch->odd;
    dst.resize(l.w.rows());
    ActiveKernels().dense_matvec_f32(m.wt.data(), m.b.data(), cur, dst.data(),
                                     l.w.rows(), l.w.cols());
    ApplyActivationF32(l.act, dst.data(), dst.size());
    cur = dst.data();
  }
  out->resize(output_dim_);
  for (size_t i = 0; i < output_dim_; ++i) {
    (*out)[i] = static_cast<double>(cur[i]);
  }
}

void FeedForwardNet::PredictBatchIntoF32(const Matrix& X,
                                         PredictScratchF32* scratch,
                                         Matrix* out) const {
  assert(X.cols() == input_dim_);
  RefreshF32Mirror();
  out->Resize(X.rows(), output_dim_);
  for (size_t i = 0; i < X.rows(); ++i) {
    const double* xrow = X.RowPtr(i);
    scratch->input.resize(input_dim_);
    for (size_t c = 0; c < input_dim_; ++c) {
      scratch->input[c] = static_cast<float>(xrow[c]);
    }
    const float* cur = scratch->input.data();
    for (size_t li = 0; li < layers_.size(); ++li) {
      const Layer& l = layers_[li];
      const LayerF32& m = mirror_[li];
      std::vector<float>& dst = (li % 2 == 0) ? scratch->even : scratch->odd;
      dst.resize(l.w.rows());
      ActiveKernels().dense_matvec_f32(m.wt.data(), m.b.data(), cur, dst.data(),
                                       l.w.rows(), l.w.cols());
      ApplyActivationF32(l.act, dst.data(), dst.size());
      cur = dst.data();
    }
    double* orow = out->RowPtr(i);
    for (size_t c = 0; c < output_dim_; ++c) {
      orow[c] = static_cast<double>(cur[c]);
    }
  }
}

void FeedForwardNet::EnsureWorkspace(TrainWorkspace* ws, size_t max_rows,
                                     size_t slots, bool with_backward) const {
  size_t num_layers = layers_.size();
  if (ws->chunks.size() < slots) ws->chunks.resize(slots);
  for (size_t s = 0; s < slots; ++s) {
    TrainWorkspace::Chunk& c = ws->chunks[s];
    if (c.act.size() != num_layers + 1) {
      c.act.resize(num_layers + 1);
      c.pre.resize(num_layers);
    }
    c.act[0].Resize(max_rows, input_dim_);
    for (size_t l = 0; l < num_layers; ++l) {
      c.act[l + 1].Resize(max_rows, layers_[l].w.rows());
      c.pre[l].Resize(max_rows, layers_[l].w.rows());
    }
    c.yb.Resize(max_rows, output_dim_);
    if (c.row_loss.size() < max_rows) c.row_loss.resize(max_rows);
    if (with_backward) {
      if (c.delta.size() != num_layers) {
        c.delta.resize(num_layers);
        c.gw.resize(num_layers);
        c.gb.resize(num_layers);
      }
      for (size_t l = 0; l < num_layers; ++l) {
        c.delta[l].Resize(max_rows, layers_[l].w.rows());
        c.gw[l].Resize(layers_[l].w.rows(), layers_[l].w.cols());
        c.gb[l].resize(layers_[l].b.size());
      }
    }
  }
  if (with_backward) {
    if (ws->grad_w.size() != num_layers) {
      ws->grad_w.resize(num_layers);
      ws->grad_b.resize(num_layers);
    }
    for (size_t l = 0; l < num_layers; ++l) {
      ws->grad_w[l].Resize(layers_[l].w.rows(), layers_[l].w.cols());
      ws->grad_b[l].resize(layers_[l].b.size());
    }
  }
}

void FeedForwardNet::ForwardChunk(TrainWorkspace::Chunk* chunk,
                                  size_t m) const {
  assert(chunk->act[0].rows() == m);
  for (size_t l = 0; l < layers_.size(); ++l) {
    // Fused affine layer against the maintained transposed weights: pre =
    // act * W^T + b as one row-major GEMM pass.
    MatMulBiasInto(chunk->act[l], layers_[l].wt, layers_[l].b,
                   &chunk->pre[l]);
    ActivateRowsInto(layers_[l].act, chunk->pre[l], m, &chunk->act[l + 1]);
  }
}

void FeedForwardNet::OutputDeltaAndLoss(TrainWorkspace::Chunk* chunk, size_t m,
                                        Loss loss) const {
  const Matrix& pred = chunk->act.back();
  const Matrix& pre = chunk->pre.back();
  Matrix& delta = chunk->delta.back();
  size_t w = output_dim_;
  delta.Resize(m, w);
  const Layer& out_layer = layers_.back();
  for (size_t i = 0; i < m; ++i) {
    const double* p = pred.RowPtr(i);
    const double* y = chunk->yb.RowPtr(i);
    double* d = delta.RowPtr(i);
    chunk->row_loss[i] = LossRow(p, y, w, loss);
    // Softmax + cross-entropy and identity + MSE both reduce to (pred - y)
    // up to a constant factor — same cases as the per-sample backward.
    if (loss == Loss::kCrossEntropy) {
      assert(out_layer.act == Activation::kSoftmax);
      for (size_t j = 0; j < w; ++j) d[j] = p[j] - y[j];
    } else {
      double scale = 2.0 / static_cast<double>(w);
      for (size_t j = 0; j < w; ++j) d[j] = scale * (p[j] - y[j]);
      if (out_layer.act == Activation::kRelu) {
        const double* z = pre.RowPtr(i);
        for (size_t j = 0; j < w; ++j) {
          if (z[j] <= 0.0) d[j] = 0.0;
        }
      } else if (out_layer.act == Activation::kSoftmax) {
        // Full softmax Jacobian for the MSE case.
        double dot = 0.0;
        for (size_t j = 0; j < w; ++j) dot += d[j] * p[j];
        for (size_t j = 0; j < w; ++j) d[j] = p[j] * (d[j] - dot);
      }
    }
  }
}

void FeedForwardNet::BackwardChunk(TrainWorkspace::Chunk* chunk,
                                   size_t m) const {
  for (size_t li = layers_.size(); li-- > 0;) {
    const Layer& l = layers_[li];
    const Matrix& delta = chunk->delta[li];
    // grad_w = delta^T * a_in: rank-1 updates in sample order, the batched
    // twin of the per-sample accumulation.
    MatMulTransposedAInto(delta, chunk->act[li], &chunk->gw[li]);
    std::vector<double>& gb = chunk->gb[li];
    std::fill(gb.begin(), gb.end(), 0.0);
    for (size_t i = 0; i < m; ++i) {
      const double* d = delta.RowPtr(i);
      for (size_t r = 0; r < gb.size(); ++r) gb[r] += d[r];
    }
    if (li == 0) break;
    // Propagate delta through W and the previous layer's ReLU.
    Matrix& prev = chunk->delta[li - 1];
    MatMulInto(delta, l.w, &prev);
    assert(layers_[li - 1].act == Activation::kRelu);
    const double* z = chunk->pre[li - 1].RowPtr(0);
    double* d = prev.RowPtr(0);
    for (size_t i = 0; i < m * prev.cols(); ++i) {
      if (z[i] <= 0.0) d[i] = 0.0;
    }
  }
}

double FeedForwardNet::BackwardAccumulate(
    const std::vector<double>& x, const std::vector<double>& y, Loss loss,
    std::vector<Matrix>* grad_w, std::vector<std::vector<double>>* grad_b) {
  ForwardCache cache;
  std::vector<double> pred = Forward(x, &cache);
  double sample_loss = ComputeLoss(pred, y, loss);

  // Delta for the output layer. Softmax + cross-entropy and identity + MSE
  // both reduce to (pred - y) up to a constant factor.
  std::vector<double> delta(pred.size());
  const Layer& out_layer = layers_.back();
  if (loss == Loss::kCrossEntropy) {
    assert(out_layer.act == Activation::kSoftmax);
    for (size_t i = 0; i < pred.size(); ++i) delta[i] = pred[i] - y[i];
  } else {
    double scale = 2.0 / static_cast<double>(pred.size());
    for (size_t i = 0; i < pred.size(); ++i) {
      delta[i] = scale * (pred[i] - y[i]);
    }
    if (out_layer.act == Activation::kRelu) {
      const auto& pre = cache.pre_activations.back();
      for (size_t i = 0; i < delta.size(); ++i) {
        if (pre[i] <= 0.0) delta[i] = 0.0;
      }
    } else if (out_layer.act == Activation::kSoftmax) {
      // Full softmax Jacobian for the MSE case.
      const auto& s = cache.activations.back();
      std::vector<double> jd(delta.size(), 0.0);
      double dot = 0.0;
      for (size_t i = 0; i < s.size(); ++i) dot += delta[i] * s[i];
      for (size_t i = 0; i < s.size(); ++i) jd[i] = s[i] * (delta[i] - dot);
      delta = std::move(jd);
    }
  }

  for (size_t li = layers_.size(); li-- > 0;) {
    const Layer& l = layers_[li];
    const std::vector<double>& a_in = cache.activations[li];
    Matrix& gw = (*grad_w)[li];
    std::vector<double>& gb = (*grad_b)[li];
    for (size_t r = 0; r < l.w.rows(); ++r) {
      gb[r] += delta[r];
      double* grow = gw.RowPtr(r);
      double d = delta[r];
      if (d == 0.0) continue;
      for (size_t c = 0; c < l.w.cols(); ++c) grow[c] += d * a_in[c];
    }
    if (li == 0) break;
    // Propagate delta through W and the previous layer's ReLU.
    std::vector<double> prev_delta(l.w.cols(), 0.0);
    for (size_t r = 0; r < l.w.rows(); ++r) {
      const double* wrow = l.w.RowPtr(r);
      double d = delta[r];
      if (d == 0.0) continue;
      for (size_t c = 0; c < l.w.cols(); ++c) prev_delta[c] += d * wrow[c];
    }
    const auto& prev_pre = cache.pre_activations[li - 1];
    assert(layers_[li - 1].act == Activation::kRelu);
    for (size_t c = 0; c < prev_delta.size(); ++c) {
      if (prev_pre[c] <= 0.0) prev_delta[c] = 0.0;
    }
    delta = std::move(prev_delta);
  }
  return sample_loss;
}

void FeedForwardNet::AdamStep(const std::vector<Matrix>& grad_w,
                              const std::vector<std::vector<double>>& grad_b,
                              double lr, size_t batch) {
  ++adam_t_;
  double bc1 = 1.0 - std::pow(kAdamBeta1, static_cast<double>(adam_t_));
  double bc2 = 1.0 - std::pow(kAdamBeta2, static_cast<double>(adam_t_));
  double inv_batch = 1.0 / static_cast<double>(batch);
  for (size_t li = 0; li < layers_.size(); ++li) {
    Layer& l = layers_[li];
    const double* __restrict gw = grad_w[li].data().data();
    double* __restrict w = l.w.data().data();
    double* __restrict mw = l.mw.data().data();
    double* __restrict vw = l.vw.data().data();
    size_t w_size = l.w.data().size();
    for (size_t i = 0; i < w_size; ++i) {
      double g = gw[i] * inv_batch;
      mw[i] = kAdamBeta1 * mw[i] + (1.0 - kAdamBeta1) * g;
      vw[i] = kAdamBeta2 * vw[i] + (1.0 - kAdamBeta2) * g * g;
      double mhat = mw[i] / bc1;
      double vhat = vw[i] / bc2;
      w[i] -= lr * mhat / (std::sqrt(vhat) + kAdamEps);
    }
    for (size_t i = 0; i < l.b.size(); ++i) {
      double g = grad_b[li][i] * inv_batch;
      l.mb[i] = kAdamBeta1 * l.mb[i] + (1.0 - kAdamBeta1) * g;
      l.vb[i] = kAdamBeta2 * l.vb[i] + (1.0 - kAdamBeta2) * g * g;
      double mhat = l.mb[i] / bc1;
      double vhat = l.vb[i] / bc2;
      l.b[i] -= lr * mhat / (std::sqrt(vhat) + kAdamEps);
    }
    // Keep the transposed copy current for the batched forward (O(params),
    // into reused capacity — dwarfed by the gradient work it speeds up).
    l.w.TransposeInto(&l.wt);
  }
  // The f32 mirror is now stale; it re-rounds lazily on the next f32
  // inference rather than here, so pure-f64 training never pays for it.
  ++weights_version_;
}

double FeedForwardNet::EvalLoss(const Matrix& X, const Matrix& Y,
                                const std::vector<size_t>& idx,
                                Loss loss) const {
  if (idx.empty()) return 0.0;
  double total = 0.0;
  for (size_t i : idx) {
    std::vector<double> pred = Forward(X.Row(i), nullptr);
    total += ComputeLoss(pred, Y.Row(i), loss);
  }
  return total / static_cast<double>(idx.size());
}

double FeedForwardNet::EvalLossBatched(const Matrix& X, const Matrix& Y,
                                       const std::vector<size_t>& idx,
                                       Loss loss, size_t chunk_rows,
                                       TrainWorkspace* ws,
                                       dag::ThreadPool* pool) const {
  if (idx.empty()) return 0.0;
  // Forward-only work: per-row results are independent of the chunking, so
  // evaluation can use wider chunks than the gradient path for better
  // kernel amortization without affecting any value.
  size_t rows = std::max(kPredictChunkRows, std::max<size_t>(1, chunk_rows));
  size_t chunks = (idx.size() + rows - 1) / rows;
  size_t slots = std::max<size_t>(1, std::min(ws->chunks.size(), chunks));
  EnsureWorkspace(ws, rows, slots, /*with_backward=*/false);
  double total = 0.0;
  ForEachChunkWave(
      chunks, slots, pool,
      [&](size_t ci, size_t s) {
        size_t begin = ci * rows;
        size_t m = std::min(rows, idx.size() - begin);
        TrainWorkspace::Chunk& c = ws->chunks[s];
        GatherRows(X, idx.data() + begin, m, &c.act[0]);
        GatherRows(Y, idx.data() + begin, m, &c.yb);
        ForwardChunk(&c, m);
        for (size_t i = 0; i < m; ++i) {
          c.row_loss[i] = LossRow(c.act.back().RowPtr(i), c.yb.RowPtr(i),
                                  output_dim_, loss);
        }
      },
      [&](size_t base, size_t wave) {
        // Per-row losses reduced in global sample order — the same order the
        // per-sample EvalLoss sums in.
        for (size_t s = 0; s < wave; ++s) {
          size_t begin = (base + s) * rows;
          size_t m = std::min(rows, idx.size() - begin);
          for (size_t i = 0; i < m; ++i) total += ws->chunks[s].row_loss[i];
        }
      });
  return total / static_cast<double>(idx.size());
}

void FeedForwardNet::PredictBatchInto(const Matrix& X, TrainWorkspace* ws,
                                      Matrix* out,
                                      dag::ThreadPool* pool) const {
  assert(X.cols() == input_dim_);
  size_t n = X.rows();
  out->Resize(n, output_dim_);
  if (n == 0) return;
  size_t chunks = (n + kPredictChunkRows - 1) / kPredictChunkRows;
  size_t parallel_width = pool == nullptr ? 1 : pool->num_threads() + 1;
  size_t slots = std::min(std::min(kMaxChunkSlots, parallel_width), chunks);
  EnsureWorkspace(ws, kPredictChunkRows, slots, /*with_backward=*/false);
  ForEachChunkWave(
      chunks, slots, pool,
      [&](size_t ci, size_t s) {
        size_t begin = ci * kPredictChunkRows;
        size_t m = std::min(kPredictChunkRows, n - begin);
        TrainWorkspace::Chunk& c = ws->chunks[s];
        GatherRowRange(X, begin, m, &c.act[0]);
        ForwardChunk(&c, m);
        std::memcpy(out->RowPtr(begin), c.act.back().RowPtr(0),
                    m * output_dim_ * sizeof(double));
      },
      nullptr);
}

void FeedForwardNet::TrainBatchedLoop(const Matrix& X, const Matrix& Y,
                                      std::vector<size_t>* train_idx,
                                      const std::vector<size_t>& val_idx,
                                      const TrainOptions& opts, Rng* rng,
                                      TrainReport* report,
                                      std::vector<Layer>* best_layers) {
  size_t chunk_rows = std::max<size_t>(1, opts.grad_chunk_rows);
  size_t batch_chunks = (opts.batch_size + chunk_rows - 1) / chunk_rows;
  size_t val_chunks = (val_idx.size() + chunk_rows - 1) / chunk_rows;
  // Slot count only bounds how many chunks are in flight at once — chunk
  // geometry and reduction order are untouched by it — so size it to the
  // actual parallelism (pool workers + the participating caller).
  size_t parallel_width =
      opts.pool == nullptr ? 1 : opts.pool->num_threads() + 1;
  size_t slots = std::min(std::min(kMaxChunkSlots, parallel_width),
                          std::max<size_t>(1, std::max(batch_chunks,
                                                       val_chunks)));
  EnsureWorkspace(&train_ws_, chunk_rows, slots, /*with_backward=*/true);
  TrainWorkspace& ws = train_ws_;
  dag::ThreadPool* pool = opts.pool;

  for (size_t epoch = 0; epoch < opts.epochs; ++epoch) {
    rng->Shuffle(train_idx);
    double epoch_loss = 0.0;
    size_t pos = 0;
    while (pos < train_idx->size()) {
      size_t batch = std::min(opts.batch_size, train_idx->size() - pos);
      size_t chunks = (batch + chunk_rows - 1) / chunk_rows;
      for (auto& g : ws.grad_w) g.Fill(0.0);
      for (auto& g : ws.grad_b) std::fill(g.begin(), g.end(), 0.0);
      // Fixed-size chunks: geometry depends only on batch and chunk_rows,
      // so any pool size computes the exact same partials.
      ForEachChunkWave(
          chunks, slots, pool,
          [&](size_t ci, size_t s) {
            size_t begin = pos + ci * chunk_rows;
            size_t m = std::min(chunk_rows, pos + batch - begin);
            TrainWorkspace::Chunk& c = ws.chunks[s];
            GatherRows(X, train_idx->data() + begin, m, &c.act[0]);
            GatherRows(Y, train_idx->data() + begin, m, &c.yb);
            ForwardChunk(&c, m);
            OutputDeltaAndLoss(&c, m, opts.loss);
            BackwardChunk(&c, m);
          },
          [&](size_t base, size_t wave) {
            // Deterministic reduction: chunk partials land in ascending
            // chunk order, losses in ascending sample order.
            for (size_t s = 0; s < wave; ++s) {
              TrainWorkspace::Chunk& c = ws.chunks[s];
              size_t begin = pos + (base + s) * chunk_rows;
              size_t m = std::min(chunk_rows, pos + batch - begin);
              for (size_t li = 0; li < layers_.size(); ++li) {
                ws.grad_w[li].AddScaled(c.gw[li], 1.0);
                for (size_t r = 0; r < ws.grad_b[li].size(); ++r) {
                  ws.grad_b[li][r] += c.gb[li][r];
                }
              }
              for (size_t i = 0; i < m; ++i) epoch_loss += c.row_loss[i];
            }
          });
      AdamStep(ws.grad_w, ws.grad_b, opts.learning_rate, batch);
      pos += batch;
    }
    epoch_loss /= static_cast<double>(std::max<size_t>(1, train_idx->size()));
    report->train_loss_per_epoch.push_back(epoch_loss);

    double val_loss =
        val_idx.empty()
            ? epoch_loss
            : EvalLossBatched(X, Y, val_idx, opts.loss, chunk_rows, &ws, pool);
    report->val_loss_per_epoch.push_back(val_loss);
    if (val_loss < report->best_val_loss) {
      report->best_val_loss = val_loss;
      report->best_epoch = epoch;
      if (opts.keep_best_validation_weights) *best_layers = layers_;
    }
  }
}

Result<TrainReport> FeedForwardNet::Train(const Matrix& X, const Matrix& Y,
                                          const TrainOptions& opts) {
  if (X.rows() != Y.rows()) {
    return Status::InvalidArgument("X and Y row counts differ");
  }
  if (X.cols() != input_dim_ || Y.cols() != output_dim_) {
    return Status::InvalidArgument("X/Y widths do not match network shape");
  }
  if (X.rows() < 2) {
    return Status::InvalidArgument("need at least 2 training samples");
  }
  if (opts.batch_size == 0 || opts.epochs == 0) {
    return Status::InvalidArgument("batch_size and epochs must be positive");
  }

  std::vector<size_t> order(X.rows());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(opts.shuffle_seed);
  rng.Shuffle(&order);

  size_t n_val = static_cast<size_t>(
      std::floor(opts.validation_split * static_cast<double>(X.rows())));
  n_val = std::min(n_val, X.rows() - 1);
  std::vector<size_t> val_idx(order.begin(), order.begin() + n_val);
  std::vector<size_t> train_idx(order.begin() + n_val, order.end());

  TrainReport report;
  report.best_val_loss = std::numeric_limits<double>::infinity();

  // Snapshot of the best weights (by validation loss), restored at the end.
  std::vector<Layer> best_layers = layers_;

  if (opts.backend == TrainBackend::kBatched) {
    TrainBatchedLoop(X, Y, &train_idx, val_idx, opts, &rng, &report,
                     &best_layers);
  } else {
    // Reference oracle: the original sample-at-a-time loops, allocations and
    // all — parity tests and the training bench compare against this.
    std::vector<Matrix> grad_w;
    std::vector<std::vector<double>> grad_b;
    for (const Layer& l : layers_) {
      grad_w.emplace_back(l.w.rows(), l.w.cols(), 0.0);
      grad_b.emplace_back(l.b.size(), 0.0);
    }

    for (size_t epoch = 0; epoch < opts.epochs; ++epoch) {
      rng.Shuffle(&train_idx);
      double epoch_loss = 0.0;
      size_t pos = 0;
      while (pos < train_idx.size()) {
        size_t batch = std::min(opts.batch_size, train_idx.size() - pos);
        for (auto& g : grad_w) g.Fill(0.0);
        for (auto& g : grad_b) std::fill(g.begin(), g.end(), 0.0);
        for (size_t b = 0; b < batch; ++b) {
          size_t i = train_idx[pos + b];
          epoch_loss += BackwardAccumulate(X.Row(i), Y.Row(i), opts.loss,
                                           &grad_w, &grad_b);
        }
        AdamStep(grad_w, grad_b, opts.learning_rate, batch);
        pos += batch;
      }
      epoch_loss /= static_cast<double>(std::max<size_t>(1, train_idx.size()));
      report.train_loss_per_epoch.push_back(epoch_loss);

      double val_loss = val_idx.empty()
                            ? epoch_loss
                            : EvalLoss(X, Y, val_idx, opts.loss);
      report.val_loss_per_epoch.push_back(val_loss);
      if (val_loss < report.best_val_loss) {
        report.best_val_loss = val_loss;
        report.best_epoch = epoch;
        if (opts.keep_best_validation_weights) best_layers = layers_;
      }
    }
  }

  if (opts.keep_best_validation_weights) {
    layers_ = std::move(best_layers);
    ++weights_version_;  // the restore rewrites every weight
  }
  // Release the training workspace: engines copy trained nets per run, and
  // the batch-sized buffers would ride along in every copy. OnlineUpdate
  // re-sizes a single 1-row chunk on its first call and is allocation-free
  // from then on.
  train_ws_ = TrainWorkspace();
  return report;
}

void FeedForwardNet::OnlineUpdate(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  double learning_rate, Loss loss) {
  assert(x.size() == input_dim_ && y.size() == output_dim_);
  // A batch-1 step of the batched backend against the net's own workspace:
  // after the first call everything below reuses capacity — zero heap
  // allocation at steady state on the engine's plan boundary.
  EnsureWorkspace(&train_ws_, 1, 1, /*with_backward=*/true);
  TrainWorkspace::Chunk& c = train_ws_.chunks[0];
  c.act[0].Resize(1, input_dim_);
  std::memcpy(c.act[0].RowPtr(0), x.data(), input_dim_ * sizeof(double));
  c.yb.Resize(1, output_dim_);
  std::memcpy(c.yb.RowPtr(0), y.data(), output_dim_ * sizeof(double));
  ForwardChunk(&c, 1);
  OutputDeltaAndLoss(&c, 1, loss);
  BackwardChunk(&c, 1);
  // A single chunk's partials are the whole gradient; feed them to Adam
  // directly instead of reducing through ws.grad_w.
  AdamStep(c.gw, c.gb, learning_rate, 1);
}

}  // namespace sky::ml
