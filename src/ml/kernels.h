#ifndef SKYSCRAPER_ML_KERNELS_H_
#define SKYSCRAPER_ML_KERNELS_H_

#include <cstddef>
#include <string>

#include "util/result.h"

namespace sky::ml {

/// Numeric precision of an inference path. Training, the Adam state, model
/// persistence and the planning LP are always f64; kF32 exists only for the
/// plan-boundary forecast forward pass (see docs/precision.md).
enum class Precision { kF64, kF32 };

/// Which micro-kernel implementation backs the contraction primitives.
/// kScalar is the original loop nest, kept verbatim as the bitwise oracle;
/// the vector tiers are selected at runtime from what the host supports.
enum class KernelBackend {
  kScalar,  ///< portable loops — the reference oracle, always available
  kAvx2,    ///< x86-64 AVX2 (+FMA for f32 only; f64 stays mul/add)
  kNeon,    ///< AArch64 NEON
};

/// The contraction primitives every backend implements. All f64 kernels are
/// REQUIRED to be bitwise-identical to the scalar oracle: they perform the
/// same per-element operation sequence (no FMA contraction, no reassociated
/// reductions — lanes are element-wise, so IEEE rounding matches exactly).
/// The f32 kernels are held to a numeric tolerance instead (they may fuse
/// multiply-adds); see docs/precision.md for the documented bounds.
///
/// No kernel allocates, and all pointer arguments must be non-aliasing
/// (the callers in matrix.cc/nn.cc assert this in debug builds).
struct KernelOps {
  KernelBackend backend;

  /// out[j] (+)= sum over a's k-range of a[k] * b[k*ldb + j], j in [0, m).
  /// Contracts k in [k0, k1) in ascending quads-then-singles order with the
  /// fixed association (v0*b0[j] + v1*b1[j]) + (v2*b2[j] + v3*b3[j]) per
  /// quad — the inner two loops of the row-major GEMM. Accumulates into out
  /// (callers initialize out to 0 or the bias before the first k-block).
  void (*gemm_row_f64)(const double* a, size_t k0, size_t k1, const double* b,
                       size_t ldb, double* out, size_t m);

  /// Rank-4 row update: out[j] += (d0*v0[j] + d1*v1[j]) + (d2*v2[j] +
  /// d3*v3[j]) — the sample-quad contraction of MatMulTransposedAInto.
  void (*axpy4_f64)(double d0, const double* v0, double d1, const double* v1,
                    double d2, const double* v2, double d3, const double* v3,
                    double* out, size_t m);

  /// Rank-1 row update: out[j] += d * v[j].
  void (*axpy1_f64)(double d, const double* v, double* out, size_t m);

  /// Reduced-precision dense layer forward: y[r] = bias[r] + dot(w row r, x)
  /// for r in [0, rows), computed from the TRANSPOSED weights — wt is cols x
  /// rows, wt[c * rows + r] = w[r][c] (the layout FeedForwardNet already
  /// maintains for its batched GEMM). Accumulation is column-major: y starts
  /// as the bias and input column c FMAs x[c] * wt-row-c into all output
  /// rows — vector tiles run straight down y, so no horizontal reduction
  /// exists on any backend. Each backend is deterministic, but backends
  /// agree only to f32 tolerance, not bitwise (vector tiers fuse the
  /// multiply-adds).
  void (*dense_matvec_f32)(const float* wt, const float* bias, const float* x,
                           float* y, size_t rows, size_t cols);
};

/// The active kernel table. First use selects the best tier the host
/// supports (honoring SKY_FORCE_SCALAR=1 in the environment); the selection
/// is a single atomic publish, safe under concurrent first calls.
const KernelOps& ActiveKernels();

/// The backend ActiveKernels() currently resolves to.
KernelBackend ActiveKernelBackend();

/// The best tier this host supports (what dispatch picks absent overrides).
KernelBackend BestSupportedBackend();

/// True when `backend` can run on this host with this build.
bool KernelBackendSupported(KernelBackend backend);

/// Forces the active backend (e.g. kScalar for an A/B bench or to exercise
/// the oracle). Fails with InvalidArgument when the host or build does not
/// support the tier. Not synchronized against kernels running concurrently
/// on other threads — switch between phases, not mid-computation.
Status SetKernelBackend(KernelBackend backend);

/// Human-readable backend name ("scalar", "avx2", "neon") for bench JSON.
std::string KernelBackendName(KernelBackend backend);

/// Implemented by the per-arch TUs; null when the build or host lacks the
/// tier. Internal to the dispatcher and the parity tests.
const KernelOps* ScalarKernelOps();
const KernelOps* Avx2KernelOps();
const KernelOps* NeonKernelOps();

}  // namespace sky::ml

#endif  // SKYSCRAPER_ML_KERNELS_H_
