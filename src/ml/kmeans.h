#ifndef SKYSCRAPER_ML_KMEANS_H_
#define SKYSCRAPER_ML_KMEANS_H_

#include <cstddef>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace sky::ml {

struct KMeansOptions {
  size_t k = 4;
  size_t max_iterations = 100;
  size_t restarts = 4;  ///< best-of-n runs with k-means++ seeding
  uint64_t seed = 17;
};

struct KMeansModel {
  /// Cluster centers; centers[c] has the data dimensionality.
  std::vector<std::vector<double>> centers;
  /// Assignment of each input point to a center index.
  std::vector<size_t> assignments;
  /// Sum of squared distances to assigned centers.
  double inertia = 0.0;

  /// Index of the nearest center to `point` (full dimensionality).
  size_t Classify(const std::vector<double>& point) const;

  /// Classification using only a single vector dimension (Eq. 5 of the
  /// paper): the knob switcher observes the quality of the *current* knob
  /// configuration only, so it picks the center whose `dim`-th coordinate is
  /// closest to `value`.
  size_t ClassifyPartial(size_t dim, double value) const;
};

/// Lloyd's algorithm with k-means++ initialization. Fails if there are fewer
/// points than clusters or inconsistent dimensionality.
Result<KMeansModel> KMeansFit(const std::vector<std::vector<double>>& points,
                              const KMeansOptions& options);

}  // namespace sky::ml

#endif  // SKYSCRAPER_ML_KMEANS_H_
