#include "ml/gmm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "ml/kmeans.h"

namespace sky::ml {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;

/// Log density of a diagonal Gaussian at x.
double LogGaussian(const std::vector<double>& x,
                   const std::vector<double>& mean,
                   const std::vector<double>& var) {
  double out = 0.0;
  for (size_t d = 0; d < x.size(); ++d) {
    double diff = x[d] - mean[d];
    out += -0.5 * (kLog2Pi + std::log(var[d]) + diff * diff / var[d]);
  }
  return out;
}

double LogSumExp(const std::vector<double>& v) {
  double mx = *std::max_element(v.begin(), v.end());
  double s = 0.0;
  for (double x : v) s += std::exp(x - mx);
  return mx + std::log(s);
}

}  // namespace

size_t GmmModel::Classify(const std::vector<double>& point) const {
  assert(!means.empty());
  size_t best = 0;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < means.size(); ++c) {
    double ll = std::log(weights[c] + 1e-300) +
                LogGaussian(point, means[c], variances[c]);
    if (ll > best_ll) {
      best_ll = ll;
      best = c;
    }
  }
  return best;
}

size_t GmmModel::ClassifyPartial(size_t dim, double value) const {
  assert(!means.empty() && dim < means[0].size());
  size_t best = 0;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < means.size(); ++c) {
    double diff = value - means[c][dim];
    double var = variances[c][dim];
    double ll = std::log(weights[c] + 1e-300) -
                0.5 * (kLog2Pi + std::log(var) + diff * diff / var);
    if (ll > best_ll) {
      best_ll = ll;
      best = c;
    }
  }
  return best;
}

Result<GmmModel> GmmFit(const std::vector<std::vector<double>>& points,
                        const GmmOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be positive");
  if (points.size() < options.k) {
    return Status::InvalidArgument("fewer points than components");
  }
  size_t dim = points[0].size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      return Status::InvalidArgument("inconsistent point dimensionality");
    }
  }

  // Initialize from KMeans.
  KMeansOptions km_opts;
  km_opts.k = options.k;
  km_opts.seed = options.seed;
  SKY_ASSIGN_OR_RETURN(KMeansModel km, KMeansFit(points, km_opts));

  GmmModel model;
  model.means = km.centers;
  model.variances.assign(options.k, std::vector<double>(dim, 0.0));
  model.weights.assign(options.k, 0.0);

  std::vector<size_t> counts(options.k, 0);
  for (size_t i = 0; i < points.size(); ++i) {
    size_t c = km.assignments[i];
    ++counts[c];
    for (size_t d = 0; d < dim; ++d) {
      double diff = points[i][d] - model.means[c][d];
      model.variances[c][d] += diff * diff;
    }
  }
  for (size_t c = 0; c < options.k; ++c) {
    model.weights[c] = static_cast<double>(std::max<size_t>(1, counts[c])) /
                       static_cast<double>(points.size());
    for (size_t d = 0; d < dim; ++d) {
      model.variances[c][d] =
          std::max(options.min_variance,
                   model.variances[c][d] /
                       static_cast<double>(std::max<size_t>(1, counts[c])));
    }
  }

  size_t n = points.size();
  std::vector<std::vector<double>> resp(n, std::vector<double>(options.k));
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // E-step.
    double ll = 0.0;
    std::vector<double> logp(options.k);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < options.k; ++c) {
        logp[c] = std::log(model.weights[c] + 1e-300) +
                  LogGaussian(points[i], model.means[c], model.variances[c]);
      }
      double lse = LogSumExp(logp);
      ll += lse;
      for (size_t c = 0; c < options.k; ++c) {
        resp[i][c] = std::exp(logp[c] - lse);
      }
    }
    model.log_likelihood = ll;
    if (std::abs(ll - prev_ll) < options.tolerance * std::abs(ll)) break;
    prev_ll = ll;

    // M-step.
    for (size_t c = 0; c < options.k; ++c) {
      double nc = 0.0;
      std::vector<double> mean(dim, 0.0);
      for (size_t i = 0; i < n; ++i) {
        nc += resp[i][c];
        for (size_t d = 0; d < dim; ++d) mean[d] += resp[i][c] * points[i][d];
      }
      nc = std::max(nc, 1e-12);
      for (size_t d = 0; d < dim; ++d) mean[d] /= nc;
      std::vector<double> var(dim, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (size_t d = 0; d < dim; ++d) {
          double diff = points[i][d] - mean[d];
          var[d] += resp[i][c] * diff * diff;
        }
      }
      for (size_t d = 0; d < dim; ++d) {
        var[d] = std::max(options.min_variance, var[d] / nc);
      }
      model.means[c] = std::move(mean);
      model.variances[c] = std::move(var);
      model.weights[c] = nc / static_cast<double>(n);
    }
  }
  return model;
}

}  // namespace sky::ml
