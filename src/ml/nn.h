#ifndef SKYSCRAPER_ML_NN_H_
#define SKYSCRAPER_ML_NN_H_

#include <cstddef>
#include <vector>

#include "dag/thread_pool.h"
#include "ml/kernels.h"
#include "ml/matrix.h"
#include "util/result.h"
#include "util/rng.h"

namespace sky::ml {

enum class Activation { kIdentity, kRelu, kSoftmax };

/// Loss functions supported by FeedForwardNet::Train.
enum class Loss {
  kMse,           ///< mean squared error (use with kIdentity output)
  kCrossEntropy,  ///< categorical cross-entropy (use with kSoftmax output)
};

/// Which implementation FeedForwardNet::Train runs.
enum class TrainBackend {
  /// Minibatch-at-a-time forward/backward as cache-blocked matrix ops
  /// against a preallocated workspace; gradient chunks fan out on a thread
  /// pool and reduce in index order (bit-identical for any thread count).
  kBatched,
  /// The original sample-at-a-time loops, kept as the reference oracle for
  /// parity tests and A/B benchmarks.
  kPerSample,
};

struct TrainOptions {
  size_t epochs = 40;
  size_t batch_size = 16;
  double learning_rate = 1e-2;
  double validation_split = 0.2;  ///< fraction of samples held out
  Loss loss = Loss::kCrossEntropy;
  uint64_t shuffle_seed = 7;
  bool keep_best_validation_weights = true;
  TrainBackend backend = TrainBackend::kBatched;
  /// Samples per data-parallel gradient chunk of the batched backend. The
  /// chunk geometry depends only on this and the batch size — never on the
  /// thread count — and chunk partials are reduced in chunk order, so
  /// training is bit-identical for any pool size. Against the per-sample
  /// backend the trajectory agrees to rounding error (the GEMM kernels'
  /// fixed contractions and chunked gradient sums associate differently).
  size_t grad_chunk_rows = 8;
  /// Pool the batched backend fans gradient chunks and validation slices
  /// out on; null runs serially (identical results either way).
  dag::ThreadPool* pool = nullptr;
};

struct TrainReport {
  std::vector<double> train_loss_per_epoch;
  std::vector<double> val_loss_per_epoch;
  double best_val_loss = 0.0;
  size_t best_epoch = 0;
};

/// Preallocated buffers for the batched trainer and batched inference. One
/// workspace serves one net; every matrix is sized on first use and reused,
/// so steady-state training steps and inference calls allocate nothing.
/// Treat the contents as FeedForwardNet-internal.
struct TrainWorkspace {
  struct Chunk {
    /// act[0] holds the gathered input rows; act[l + 1] layer l's output.
    std::vector<Matrix> act;
    std::vector<Matrix> pre;    ///< pre-activations per layer
    std::vector<Matrix> delta;  ///< backprop deltas per layer
    std::vector<Matrix> gw;     ///< partial weight gradients per layer
    std::vector<std::vector<double>> gb;  ///< partial bias gradients
    Matrix yb;                  ///< gathered target rows
    std::vector<double> row_loss;
  };
  std::vector<Chunk> chunks;
  /// Chunk partials reduced in chunk order land here for the Adam step.
  std::vector<Matrix> grad_w;
  std::vector<std::vector<double>> grad_b;
};

/// Ping-pong activation buffers for single-sample inference; reused across
/// calls so PredictInto allocates nothing at steady state.
struct PredictScratch {
  std::vector<double> even;
  std::vector<double> odd;
};

/// f32 twin of PredictScratch for the reduced-precision inference path:
/// the f64 input rounded to floats plus ping-pong activation buffers.
struct PredictScratchF32 {
  std::vector<float> input;
  std::vector<float> even;
  std::vector<float> odd;
};

/// The complete persistent state of a FeedForwardNet as plain values: the
/// architecture plus every trainable parameter AND the Adam optimizer
/// moments. Produced by FeedForwardNet::Snapshot() and consumed by
/// FromSnapshot(); the round trip is bitwise — including the optimizer
/// state, so a restored net continues OnlineUpdate fine-tuning exactly
/// where the original would. The flat vectors use the FlattenParameters
/// layout (per layer: weights row-major, then biases).
struct NetSnapshot {
  size_t input_dim = 0;
  std::vector<size_t> hidden;  ///< hidden widths (always ReLU)
  size_t output_dim = 0;
  Activation output_activation = Activation::kIdentity;
  uint64_t adam_steps = 0;  ///< Adam's bias-correction step counter t
  std::vector<double> params;  ///< weights+biases, FlattenParameters order
  std::vector<double> adam_m;  ///< first moments, same layout
  std::vector<double> adam_v;  ///< second moments, same layout
};

/// A small fully connected network trained with Adam. This is the forecasting
/// model of the paper (Appendix K): input -> 16 ReLU -> 8 ReLU -> |C| softmax.
/// It is intentionally minimal — no autograd graph, just dense layers.
class FeedForwardNet {
 public:
  /// Builds a network with the given layer widths. `input_dim` is the width of
  /// the input; `hidden` lists hidden widths (ReLU); `output_dim` is the width
  /// of the final layer with `output_activation`.
  FeedForwardNet(size_t input_dim, std::vector<size_t> hidden,
                 size_t output_dim, Activation output_activation, Rng* rng);

  size_t input_dim() const { return input_dim_; }
  size_t output_dim() const { return output_dim_; }

  /// Forward pass for a single sample.
  std::vector<double> Predict(const std::vector<double>& x) const;

  /// Forward pass for a single sample into a caller-owned buffer, reusing
  /// `scratch` across calls: zero heap allocation at steady state, bitwise
  /// identical to Predict.
  void PredictInto(const std::vector<double>& x, PredictScratch* scratch,
                   std::vector<double>* out) const;

  /// Reduced-precision forward pass: rounds the input to f32, runs every
  /// layer in f32 against the net's f32 weight mirror (the dispatched
  /// dense_matvec_f32 kernel), and widens the result back to f64. NOT
  /// bitwise against Predict — agrees to the f32 tolerance documented in
  /// docs/precision.md. The mirror is refreshed lazily when the weights
  /// changed since the last f32 call; refresh and forward reuse
  /// preallocated buffers, so steady-state calls allocate nothing even
  /// interleaved with OnlineUpdate. The mirror is shared mutable state:
  /// like the workspace, one net must not run f32 inference from two
  /// threads at once.
  void PredictIntoF32(const std::vector<double>& x, PredictScratchF32* scratch,
                      std::vector<double>* out) const;

  /// Batched twin of PredictIntoF32: row i of `out` (resized to
  /// X.rows() x output_dim) is the f32 prediction for row i of X. Rows run
  /// serially through the f32 matvec kernel — at forecasting-net sizes the
  /// f32 bandwidth halving beats the f64 GEMM's chunk fan-out.
  void PredictBatchIntoF32(const Matrix& X, PredictScratchF32* scratch,
                           Matrix* out) const;

  /// Batched forward pass: row i of `out` (resized to X.rows() x output_dim)
  /// is the prediction for row i of X. Rows are processed in fixed-size
  /// chunks reusing `ws`; a non-null pool fans the chunks out (per-row
  /// results are independent, so results never depend on the pool).
  void PredictBatchInto(const Matrix& X, TrainWorkspace* ws, Matrix* out,
                        dag::ThreadPool* pool = nullptr) const;

  /// Trains on rows of X against rows of Y with Adam. Returns per-epoch loss
  /// curves. Fails if shapes disagree or there are too few samples to split.
  Result<TrainReport> Train(const Matrix& X, const Matrix& Y,
                            const TrainOptions& opts);

  /// One incremental Adam step on a single (x, y) pair — used for online
  /// fine-tuning of the forecaster during ingestion (§3.3). Runs the batched
  /// path with batch 1 against the net's own workspace: no heap allocation
  /// at steady state.
  void OnlineUpdate(const std::vector<double>& x, const std::vector<double>& y,
                    double learning_rate, Loss loss);

  /// Number of trainable parameters.
  size_t NumParameters() const;

  /// All parameters (per layer: weights row-major, then biases) as one flat
  /// vector — the bit-identity comparison handle for determinism tests and
  /// OfflineModelsIdentical.
  std::vector<double> FlattenParameters() const;

  /// Full persistent state (architecture + parameters + Adam moments) as
  /// plain values, for serialization.
  NetSnapshot Snapshot() const;

  /// Reassembles a net from a snapshot; the inverse of Snapshot(), bitwise
  /// (the transposed-weight caches are rebuilt from the restored weights).
  /// Fails on inconsistent dimensions (flat vector sizes must match the
  /// architecture exactly).
  static Result<FeedForwardNet> FromSnapshot(const NetSnapshot& snapshot);

 private:
  struct Layer {
    Matrix w;   // out x in
    Matrix wt;  // in x out — w transposed, kept in sync after every Adam
                // step so the batched forward is a row-major GEMM
    std::vector<double> b;
    Activation act;
    // Adam state.
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };

  /// Per-layer f32 copy of wt (the transposed weights, cols x rows — the
  /// layout the f32 matvec kernel wants) and b, feeding the
  /// reduced-precision inference path. Derived state: never persisted
  /// (NetSnapshot stays f64) and rebuilt from the f64 layers whenever they
  /// change.
  struct LayerF32 {
    std::vector<float> wt;
    std::vector<float> b;
  };

  struct ForwardCache {
    // activations[0] = input, activations[i] = output of layer i-1.
    std::vector<std::vector<double>> activations;
    std::vector<std::vector<double>> pre_activations;
  };

  std::vector<double> Forward(const std::vector<double>& x,
                              ForwardCache* cache) const;
  /// Backprop for one sample; accumulates gradients into grads.
  double BackwardAccumulate(const std::vector<double>& x,
                            const std::vector<double>& y, Loss loss,
                            std::vector<Matrix>* grad_w,
                            std::vector<std::vector<double>>* grad_b);
  void AdamStep(const std::vector<Matrix>& grad_w,
                const std::vector<std::vector<double>>& grad_b, double lr,
                size_t batch);
  double EvalLoss(const Matrix& X, const Matrix& Y,
                  const std::vector<size_t>& idx, Loss loss) const;

  // --- Batched backend ---
  /// Sizes `ws` for `slots` concurrent chunks of up to `max_rows` samples.
  /// `with_backward` also sizes the delta/gradient buffers.
  void EnsureWorkspace(TrainWorkspace* ws, size_t max_rows, size_t slots,
                       bool with_backward) const;
  /// Forward pass over the m gathered rows of chunk->act[0].
  void ForwardChunk(TrainWorkspace::Chunk* chunk, size_t m) const;
  /// Per-row losses + output-layer delta from act.back() vs yb.
  void OutputDeltaAndLoss(TrainWorkspace::Chunk* chunk, size_t m,
                          Loss loss) const;
  /// Backprop through all layers; fills chunk->gw / chunk->gb.
  void BackwardChunk(TrainWorkspace::Chunk* chunk, size_t m) const;
  /// The batched epoch loop (minibatch chunk fan-out + ordered reduction).
  void TrainBatchedLoop(const Matrix& X, const Matrix& Y,
                        std::vector<size_t>* train_idx,
                        const std::vector<size_t>& val_idx,
                        const TrainOptions& opts, Rng* rng,
                        TrainReport* report, std::vector<Layer>* best_layers);
  /// Batched EvalLoss: forward in chunks of at least `chunk_rows`, per-row
  /// losses reduced in the same order the per-sample EvalLoss sums in (the
  /// forwards themselves use the GEMM kernels, so the two values agree to
  /// rounding error, not bitwise).
  double EvalLossBatched(const Matrix& X, const Matrix& Y,
                         const std::vector<size_t>& idx, Loss loss,
                         size_t chunk_rows, TrainWorkspace* ws,
                         dag::ThreadPool* pool) const;

  /// Rounds the f64 layers into mirror_ if weights_version_ moved since the
  /// last refresh. Buffers are sized once and reused: allocation-free at
  /// steady state.
  void RefreshF32Mirror() const;

  std::vector<Layer> layers_;
  size_t input_dim_;
  size_t output_dim_;
  size_t adam_t_ = 0;
  /// Reused by Train and OnlineUpdate (value member so nets stay copyable;
  /// buffers are small relative to the Adam state already carried).
  TrainWorkspace train_ws_;
  /// Lazy f32 weight mirror: weights_version_ bumps on every weight
  /// mutation (AdamStep, best-weight restore); mirror_version_ records the
  /// version the mirror was last rounded from. mutable for the same reason
  /// the inference scratches are — logically-const forward passes maintain
  /// it (documented single-threaded-per-net, like the workspace).
  mutable std::vector<LayerF32> mirror_;
  mutable uint64_t mirror_version_ = 0;
  uint64_t weights_version_ = 1;
};

/// Loss between a prediction and a target (exposed for tests).
double ComputeLoss(const std::vector<double>& pred,
                   const std::vector<double>& target, Loss loss);

}  // namespace sky::ml

#endif  // SKYSCRAPER_ML_NN_H_
