#ifndef SKYSCRAPER_ML_NN_H_
#define SKYSCRAPER_ML_NN_H_

#include <cstddef>
#include <vector>

#include "ml/matrix.h"
#include "util/result.h"
#include "util/rng.h"

namespace sky::ml {

enum class Activation { kIdentity, kRelu, kSoftmax };

/// Loss functions supported by FeedForwardNet::Train.
enum class Loss {
  kMse,           ///< mean squared error (use with kIdentity output)
  kCrossEntropy,  ///< categorical cross-entropy (use with kSoftmax output)
};

struct TrainOptions {
  size_t epochs = 40;
  size_t batch_size = 16;
  double learning_rate = 1e-2;
  double validation_split = 0.2;  ///< fraction of samples held out
  Loss loss = Loss::kCrossEntropy;
  uint64_t shuffle_seed = 7;
  bool keep_best_validation_weights = true;
};

struct TrainReport {
  std::vector<double> train_loss_per_epoch;
  std::vector<double> val_loss_per_epoch;
  double best_val_loss = 0.0;
  size_t best_epoch = 0;
};

/// A small fully connected network trained with Adam. This is the forecasting
/// model of the paper (Appendix K): input -> 16 ReLU -> 8 ReLU -> |C| softmax.
/// It is intentionally minimal — no autograd graph, just dense layers.
class FeedForwardNet {
 public:
  /// Builds a network with the given layer widths. `input_dim` is the width of
  /// the input; `hidden` lists hidden widths (ReLU); `output_dim` is the width
  /// of the final layer with `output_activation`.
  FeedForwardNet(size_t input_dim, std::vector<size_t> hidden,
                 size_t output_dim, Activation output_activation, Rng* rng);

  size_t input_dim() const { return input_dim_; }
  size_t output_dim() const { return output_dim_; }

  /// Forward pass for a single sample.
  std::vector<double> Predict(const std::vector<double>& x) const;

  /// Trains on rows of X against rows of Y with Adam. Returns per-epoch loss
  /// curves. Fails if shapes disagree or there are too few samples to split.
  Result<TrainReport> Train(const Matrix& X, const Matrix& Y,
                            const TrainOptions& opts);

  /// One incremental Adam step on a single (x, y) pair — used for online
  /// fine-tuning of the forecaster during ingestion (§3.3).
  void OnlineUpdate(const std::vector<double>& x, const std::vector<double>& y,
                    double learning_rate, Loss loss);

  /// Number of trainable parameters.
  size_t NumParameters() const;

 private:
  struct Layer {
    Matrix w;  // out x in
    std::vector<double> b;
    Activation act;
    // Adam state.
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };

  struct ForwardCache {
    // activations[0] = input, activations[i] = output of layer i-1.
    std::vector<std::vector<double>> activations;
    std::vector<std::vector<double>> pre_activations;
  };

  std::vector<double> Forward(const std::vector<double>& x,
                              ForwardCache* cache) const;
  /// Backprop for one sample; accumulates gradients into grads.
  double BackwardAccumulate(const std::vector<double>& x,
                            const std::vector<double>& y, Loss loss,
                            std::vector<Matrix>* grad_w,
                            std::vector<std::vector<double>>* grad_b);
  void AdamStep(const std::vector<Matrix>& grad_w,
                const std::vector<std::vector<double>>& grad_b, double lr,
                size_t batch);
  double EvalLoss(const Matrix& X, const Matrix& Y,
                  const std::vector<size_t>& idx, Loss loss) const;

  std::vector<Layer> layers_;
  size_t input_dim_;
  size_t output_dim_;
  size_t adam_t_ = 0;
};

/// Loss between a prediction and a target (exposed for tests).
double ComputeLoss(const std::vector<double>& pred,
                   const std::vector<double>& target, Loss loss);

}  // namespace sky::ml

#endif  // SKYSCRAPER_ML_NN_H_
