#include "baselines/optimum.h"

#include "lp/knapsack.h"
#include "video/stream_source.h"

namespace sky::baselines {

Result<OptimumResult> RunOptimumBaseline(
    const core::Workload& workload,
    const std::vector<core::ConfigProfile>& candidates,
    double segment_seconds, SimTime duration, SimTime start_time,
    double work_budget_core_seconds) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate configurations");
  }

  video::StreamSource source(&workload.content_process(), segment_seconds);
  int64_t first_segment = static_cast<int64_t>(start_time / segment_seconds);
  int64_t segments = static_cast<int64_t>(duration / segment_seconds);
  if (segments <= 0) return Status::InvalidArgument("duration too short");

  // One knapsack group per segment; options are the candidate configs.
  std::vector<std::vector<double>> values(static_cast<size_t>(segments));
  std::vector<std::vector<double>> weights(static_cast<size_t>(segments));
  std::vector<double> config_weight(candidates.size());
  for (size_t k = 0; k < candidates.size(); ++k) {
    config_weight[k] = candidates[k].work_core_s_per_video_s * segment_seconds;
  }
  for (int64_t i = 0; i < segments; ++i) {
    video::SegmentInfo info = source.Segment(first_segment + i);
    auto& v = values[static_cast<size_t>(i)];
    v.reserve(candidates.size());
    for (const core::ConfigProfile& c : candidates) {
      v.push_back(workload.TrueQuality(c.config, info.content));
    }
    weights[static_cast<size_t>(i)] = config_weight;
  }

  SKY_ASSIGN_OR_RETURN(lp::ChoiceSolution solution,
                       lp::MultipleChoiceKnapsackGreedy(
                           values, weights, work_budget_core_seconds));

  OptimumResult result;
  result.segments = static_cast<size_t>(segments);
  result.total_quality = solution.total_value;
  result.work_core_seconds = solution.total_weight;
  result.mean_quality =
      result.total_quality / static_cast<double>(result.segments);
  return result;
}

}  // namespace sky::baselines
