#ifndef SKYSCRAPER_BASELINES_OPTIMUM_H_
#define SKYSCRAPER_BASELINES_OPTIMUM_H_

#include <vector>

#include "core/profiler.h"
#include "core/workload.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::baselines {

struct OptimumResult {
  double total_quality = 0.0;
  double mean_quality = 0.0;
  double work_core_seconds = 0.0;
  size_t segments = 0;
};

/// The Optimum baseline of §5.4 (2c): an oracle that knows every
/// configuration's ground-truth quality on every segment in advance and
/// assigns configurations with the greedy 0-1 (multiple-choice) knapsack
/// approximation under a total work budget in core-seconds.
Result<OptimumResult> RunOptimumBaseline(
    const core::Workload& workload,
    const std::vector<core::ConfigProfile>& candidates,
    double segment_seconds, SimTime duration, SimTime start_time,
    double work_budget_core_seconds);

}  // namespace sky::baselines

#endif  // SKYSCRAPER_BASELINES_OPTIMUM_H_
