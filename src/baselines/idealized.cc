#include "baselines/idealized.h"

#include "lp/knapsack.h"
#include "video/stream_source.h"

namespace sky::baselines {

Result<IdealizedResult> RunIdealizedSystem(
    const core::Workload& workload,
    const std::vector<core::ConfigProfile>& candidates,
    double segment_seconds, SimTime duration, SimTime start_time,
    double work_budget_core_seconds, double lookback_days) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate configurations");
  }
  if (start_time < Days(lookback_days)) {
    return Status::InvalidArgument(
        "start_time must leave room for the look-back window");
  }

  video::StreamSource source(&workload.content_process(), segment_seconds);
  int64_t first_segment = static_cast<int64_t>(start_time / segment_seconds);
  int64_t segments = static_cast<int64_t>(duration / segment_seconds);
  if (segments <= 0) return Status::InvalidArgument("duration too short");
  int64_t days = std::max<int64_t>(1, static_cast<int64_t>(lookback_days));

  // Forecast qual(k, t_i) as the mean quality at the same time of day over
  // the look-back window; assign configs by knapsack on the forecast.
  std::vector<std::vector<double>> forecast_values(
      static_cast<size_t>(segments));
  std::vector<std::vector<double>> weights(static_cast<size_t>(segments));
  std::vector<double> config_weight(candidates.size());
  for (size_t k = 0; k < candidates.size(); ++k) {
    config_weight[k] = candidates[k].work_core_s_per_video_s * segment_seconds;
  }
  const video::ContentProcess& content = workload.content_process();
  for (int64_t i = 0; i < segments; ++i) {
    double t = start_time + (static_cast<double>(i) + 0.5) * segment_seconds;
    auto& v = forecast_values[static_cast<size_t>(i)];
    v.assign(candidates.size(), 0.0);
    for (int64_t d = 1; d <= days; ++d) {
      video::ContentState past = content.At(t - Days(static_cast<double>(d)));
      for (size_t k = 0; k < candidates.size(); ++k) {
        v[k] += workload.TrueQuality(candidates[k].config, past);
      }
    }
    for (double& q : v) q /= static_cast<double>(days);
    weights[static_cast<size_t>(i)] = config_weight;
  }

  SKY_ASSIGN_OR_RETURN(lp::ChoiceSolution solution,
                       lp::MultipleChoiceKnapsackGreedy(
                           forecast_values, weights,
                           work_budget_core_seconds));

  IdealizedResult result;
  result.segments = static_cast<size_t>(segments);
  result.predicted_quality = solution.total_value;
  result.work_core_seconds = solution.total_weight;
  for (int64_t i = 0; i < segments; ++i) {
    video::SegmentInfo info = source.Segment(first_segment + i);
    size_t k = solution.choice[static_cast<size_t>(i)];
    result.total_quality +=
        workload.TrueQuality(candidates[k].config, info.content);
  }
  result.mean_quality =
      result.total_quality / static_cast<double>(result.segments);
  return result;
}

}  // namespace sky::baselines
