#ifndef SKYSCRAPER_BASELINES_STATIC_BASELINE_H_
#define SKYSCRAPER_BASELINES_STATIC_BASELINE_H_

#include <vector>

#include "core/profiler.h"
#include "core/workload.h"
#include "sim/cluster_sim.h"
#include "sim/cost_model.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::baselines {

struct StaticResult {
  core::KnobConfig config;
  double total_quality = 0.0;
  double mean_quality = 0.0;
  double work_core_seconds = 0.0;
  /// True if the config's all-on-premise makespan fits within a segment:
  /// the static baseline must be provisioned for real-time ingest.
  bool real_time = false;
};

/// The Static baseline of §5.3: one fixed knob configuration for the whole
/// stream, no buffering, no cloud. The configuration must run in real time
/// on the provisioned server (otherwise `real_time` is false and the result
/// is not a valid deployment).
Result<StaticResult> RunStaticBaseline(const core::Workload& workload,
                                       const core::KnobConfig& config,
                                       const sim::ClusterSpec& cluster,
                                       const sim::CostModel& cost_model,
                                       double segment_seconds,
                                       SimTime duration, SimTime start_time);

/// The best static deployment on the given server: evaluates every
/// configuration of the knob space, keeps real-time ones, and returns the
/// one with the highest total quality (the oracle choice the paper's static
/// curves assume).
Result<StaticResult> BestStaticBaseline(const core::Workload& workload,
                                        const sim::ClusterSpec& cluster,
                                        const sim::CostModel& cost_model,
                                        double segment_seconds,
                                        SimTime duration, SimTime start_time);

}  // namespace sky::baselines

#endif  // SKYSCRAPER_BASELINES_STATIC_BASELINE_H_
