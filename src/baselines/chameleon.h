#ifndef SKYSCRAPER_BASELINES_CHAMELEON_H_
#define SKYSCRAPER_BASELINES_CHAMELEON_H_

#include <vector>

#include "core/profiler.h"
#include "core/workload.h"
#include "sim/cluster_sim.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::baselines {

struct ChameleonOptions {
  /// Re-profiling period in segments (Chameleon's leader-window). Each
  /// profiling step runs every candidate configuration on one segment of
  /// video — the profiling overhead §5.3 attributes Chameleon's losses to.
  int64_t profile_every_segments = 16;
  /// Quality threshold: Chameleon picks the cheapest configuration whose
  /// profiled quality reaches `quality_target` (its accuracy SLO), falling
  /// back to the best profiled one. Sweeping this yields the cost-quality
  /// curve of Fig. 4.
  double quality_target = 0.9;
  uint64_t buffer_bytes = 4ull << 30;
  uint64_t seed = 91;
};

struct ChameleonResult {
  double total_quality = 0.0;
  double mean_quality = 0.0;
  double work_core_seconds = 0.0;  ///< includes profiling overhead
  double profiling_core_seconds = 0.0;
  /// Chameleon* has no throughput guarantee: when its unmanaged buffer
  /// overflows the run crashes (the paper only reports non-crashing setups).
  bool crashed = false;
  SimTime crash_time = 0.0;
  size_t segments = 0;
};

/// Chameleon* (§5.3): the Chameleon content-adaptive tuner [40] adapted with
/// a buffer so it can run on non-peak-provisioned hardware. It periodically
/// profiles candidate configurations on live content (paying their full
/// processing cost), then uses the cheapest configuration meeting its
/// quality target until the next profiling step. It is lag-agnostic:
/// nothing stops it from picking configurations that overrun the buffer.
Result<ChameleonResult> RunChameleonBaseline(
    const core::Workload& workload,
    const std::vector<core::ConfigProfile>& candidates,
    const sim::ClusterSpec& cluster, double segment_seconds, SimTime duration,
    SimTime start_time, const ChameleonOptions& options);

}  // namespace sky::baselines

#endif  // SKYSCRAPER_BASELINES_CHAMELEON_H_
