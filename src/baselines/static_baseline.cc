#include "baselines/static_baseline.h"

#include <algorithm>

namespace sky::baselines {

Result<StaticResult> RunStaticBaseline(const core::Workload& workload,
                                       const core::KnobConfig& config,
                                       const sim::ClusterSpec& cluster,
                                       const sim::CostModel& cost_model,
                                       double segment_seconds,
                                       SimTime duration, SimTime start_time) {
  SKY_RETURN_NOT_OK(workload.knob_space().ValidateConfig(config));

  StaticResult result;
  result.config = config;

  dag::TaskGraph graph =
      workload.BuildTaskGraph(config, segment_seconds, cost_model);
  SKY_ASSIGN_OR_RETURN(
      sim::DagSimResult sim,
      sim::SimulateDag(graph, dag::Placement::AllOnPrem(graph.NumNodes()),
                       cluster));
  result.real_time = sim.makespan_s <= segment_seconds + 1e-9;

  const video::ContentProcess& content = workload.content_process();
  int64_t segments = static_cast<int64_t>(duration / segment_seconds);
  double cost = workload.CostCoreSecondsPerVideoSecond(config);
  for (int64_t i = 0; i < segments; ++i) {
    double t = start_time + (static_cast<double>(i) + 0.5) * segment_seconds;
    result.total_quality += workload.TrueQuality(config, content.At(t));
  }
  result.mean_quality =
      segments > 0 ? result.total_quality / static_cast<double>(segments)
                   : 0.0;
  result.work_core_seconds = cost * duration;
  return result;
}

Result<StaticResult> BestStaticBaseline(const core::Workload& workload,
                                        const sim::ClusterSpec& cluster,
                                        const sim::CostModel& cost_model,
                                        double segment_seconds,
                                        SimTime duration, SimTime start_time) {
  // Order configurations by cost and probe quality on a coarse content grid
  // first; full evaluation only for the real-time candidates.
  StaticResult best;
  bool found = false;
  for (const core::KnobConfig& config : workload.knob_space().AllConfigs()) {
    SKY_ASSIGN_OR_RETURN(
        StaticResult candidate,
        RunStaticBaseline(workload, config, cluster, cost_model,
                          segment_seconds, duration, start_time));
    if (!candidate.real_time) continue;
    if (!found || candidate.total_quality > best.total_quality) {
      best = std::move(candidate);
      found = true;
    }
  }
  if (!found) {
    return Status::ResourceExhausted(
        "no configuration runs in real time on this server");
  }
  return best;
}

}  // namespace sky::baselines
