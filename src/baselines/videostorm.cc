#include "baselines/videostorm.h"

#include <algorithm>

#include "video/stream_source.h"

namespace sky::baselines {

Result<VideoStormResult> RunVideoStormBaseline(
    const core::Workload& workload,
    const std::vector<core::ConfigProfile>& candidates,
    double segment_seconds, SimTime duration, SimTime start_time,
    const VideoStormOptions& options) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate configurations");
  }

  // Content-agnostic quality ranking: VideoStorm profiles configurations
  // offline and ranks by average quality (it never looks at the content).
  const video::ContentProcess& content = workload.content_process();
  std::vector<double> avg_quality(candidates.size(), 0.0);
  constexpr size_t kProbes = 64;
  for (size_t k = 0; k < candidates.size(); ++k) {
    for (size_t p = 0; p < kProbes; ++p) {
      double t = content.horizon() * (static_cast<double>(p) + 0.5) /
                 static_cast<double>(kProbes);
      avg_quality[k] +=
          workload.TrueQuality(candidates[k].config, content.At(t));
    }
  }
  size_t best_overall = 0;
  for (size_t k = 1; k < candidates.size(); ++k) {
    if (avg_quality[k] > avg_quality[best_overall]) best_overall = k;
  }
  // Best configuration that runs in real time on this hardware.
  size_t best_realtime = 0;
  bool have_realtime = false;
  for (size_t k = 0; k < candidates.size(); ++k) {
    if (candidates[k].OnPremRuntime() <= segment_seconds + 1e-9) {
      if (!have_realtime || avg_quality[k] > avg_quality[best_realtime]) {
        best_realtime = k;
        have_realtime = true;
      }
    }
  }
  if (!have_realtime) {
    return Status::ResourceExhausted(
        "no configuration runs in real time on this server");
  }

  video::StreamSource source(&content, segment_seconds);
  int64_t first_segment = static_cast<int64_t>(start_time / segment_seconds);
  int64_t segments = static_cast<int64_t>(duration / segment_seconds);

  VideoStormResult result;
  double lag_s = 0.0;
  double buffered_bytes = 0.0;
  for (int64_t i = 0; i < segments; ++i) {
    video::SegmentInfo info = source.Segment(first_segment + i);
    double bytes_per_s =
        static_cast<double>(info.bytes) / std::max(1e-9, info.duration_s);

    // Greedy lag allocation: run the top configuration while the buffer can
    // absorb the overrun, otherwise the best real-time configuration.
    size_t pick = best_overall;
    double runtime = candidates[pick].OnPremRuntime();
    double new_lag = std::max(0.0, lag_s + runtime - segment_seconds);
    double new_bytes = buffered_bytes;
    if (new_lag > lag_s) new_bytes += (new_lag - lag_s) * bytes_per_s;
    if (new_bytes > static_cast<double>(options.buffer_bytes)) {
      pick = best_realtime;
      runtime = candidates[pick].OnPremRuntime();
      new_lag = std::max(0.0, lag_s + runtime - segment_seconds);
      new_bytes = buffered_bytes;
      if (new_lag > lag_s) new_bytes += (new_lag - lag_s) * bytes_per_s;
    }
    if (new_lag < lag_s && lag_s > 0.0) {
      new_bytes = buffered_bytes -
                  (lag_s - new_lag) * (buffered_bytes / lag_s);
    }
    if (new_lag <= 1e-12) new_bytes = 0.0;
    lag_s = new_lag;
    buffered_bytes = std::min(
        new_bytes, static_cast<double>(options.buffer_bytes));
    result.buffer_high_water_bytes =
        std::max(result.buffer_high_water_bytes,
                 static_cast<uint64_t>(buffered_bytes));

    result.total_quality +=
        workload.TrueQuality(candidates[pick].config, info.content);
    result.work_core_seconds +=
        candidates[pick].work_core_s_per_video_s * segment_seconds;
    ++result.segments;
  }
  result.mean_quality =
      result.segments == 0
          ? 0.0
          : result.total_quality / static_cast<double>(result.segments);
  return result;
}

}  // namespace sky::baselines
