#ifndef SKYSCRAPER_BASELINES_VIDEOSTORM_H_
#define SKYSCRAPER_BASELINES_VIDEOSTORM_H_

#include <vector>

#include "core/profiler.h"
#include "core/workload.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::baselines {

struct VideoStormOptions {
  uint64_t buffer_bytes = 4ull << 30;
  uint64_t seed = 92;
};

struct VideoStormResult {
  double total_quality = 0.0;
  double mean_quality = 0.0;
  double work_core_seconds = 0.0;
  uint64_t buffer_high_water_bytes = 0;
  size_t segments = 0;
};

/// VideoStorm* (Appendix G): a query-load-adaptive tuner on a V-ETL job.
/// With a static query load there is nothing to adapt to, so it allocates
/// its lag budget greedily: run the most qualitative configuration while
/// the buffer has room, then fall back to the best configuration that runs
/// in real time. Appendix G shows this fills the buffer during the first
/// workload peak and then matches the static baseline.
Result<VideoStormResult> RunVideoStormBaseline(
    const core::Workload& workload,
    const std::vector<core::ConfigProfile>& candidates,
    double segment_seconds, SimTime duration, SimTime start_time,
    const VideoStormOptions& options);

}  // namespace sky::baselines

#endif  // SKYSCRAPER_BASELINES_VIDEOSTORM_H_
