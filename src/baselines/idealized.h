#ifndef SKYSCRAPER_BASELINES_IDEALIZED_H_
#define SKYSCRAPER_BASELINES_IDEALIZED_H_

#include <vector>

#include "core/profiler.h"
#include "core/workload.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace sky::baselines {

struct IdealizedResult {
  double total_quality = 0.0;   ///< realized (true-content) quality
  double mean_quality = 0.0;
  double predicted_quality = 0.0;  ///< what the forecast believed
  double work_core_seconds = 0.0;
  size_t segments = 0;
};

/// The "idealized system" of §2.2 / Appendix B.1: slice time into
/// segment-length pieces, forecast each configuration's quality on each
/// future segment directly, and solve the per-segment assignment as a
/// knapsack. The forecast is the average time-of-day quality over the
/// previous `lookback_days` (fitting anything richer is hopeless at an
/// output dimensionality of ~260k, which is the paper's point). The
/// realized quality then exposes how badly per-instant forecasts miss.
Result<IdealizedResult> RunIdealizedSystem(
    const core::Workload& workload,
    const std::vector<core::ConfigProfile>& candidates,
    double segment_seconds, SimTime duration, SimTime start_time,
    double work_budget_core_seconds, double lookback_days = 2.0);

}  // namespace sky::baselines

#endif  // SKYSCRAPER_BASELINES_IDEALIZED_H_
