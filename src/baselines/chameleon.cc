#include "baselines/chameleon.h"

#include <algorithm>

#include "util/rng.h"
#include "video/stream_source.h"

namespace sky::baselines {

Result<ChameleonResult> RunChameleonBaseline(
    const core::Workload& workload,
    const std::vector<core::ConfigProfile>& candidates,
    const sim::ClusterSpec& cluster, double segment_seconds, SimTime duration,
    SimTime start_time, const ChameleonOptions& options) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate configurations");
  }
  (void)cluster;

  video::StreamSource source(&workload.content_process(), segment_seconds);
  int64_t first_segment = static_cast<int64_t>(start_time / segment_seconds);
  int64_t segments = static_cast<int64_t>(duration / segment_seconds);

  Rng rng(options.seed);
  Rng noise = rng.Fork("measurement");

  ChameleonResult result;
  double lag_s = 0.0;
  double buffered_bytes = 0.0;
  size_t active = 0;  // index into candidates

  for (int64_t i = 0; i < segments; ++i) {
    video::SegmentInfo info = source.Segment(first_segment + i);
    double bytes_per_s =
        static_cast<double>(info.bytes) / std::max(1e-9, info.duration_s);

    if (i % options.profile_every_segments == 0) {
      // Profiling: run every candidate on this segment's content and pay
      // its processing time. Chameleon picks the cheapest configuration
      // whose measured quality reaches the target.
      size_t chosen = 0;
      double chosen_cost = std::numeric_limits<double>::infinity();
      size_t best_q_idx = 0;
      double best_q = -1.0;
      bool target_met = false;
      for (size_t k = 0; k < candidates.size(); ++k) {
        double q = workload.MeasuredQuality(candidates[k].config,
                                            info.content, &noise);
        double cost = candidates[k].work_core_s_per_video_s;
        double runtime = candidates[k].OnPremRuntime();
        lag_s += runtime;  // profiling occupies the processor
        result.profiling_core_seconds += cost * segment_seconds;
        result.work_core_seconds += cost * segment_seconds;
        if (q > best_q) {
          best_q = q;
          best_q_idx = k;
        }
        if (q + 1e-12 >= options.quality_target && cost < chosen_cost) {
          chosen_cost = cost;
          chosen = k;
          target_met = true;
        }
      }
      active = target_met ? chosen : best_q_idx;
    }

    const core::ConfigProfile& profile = candidates[active];
    double new_lag =
        std::max(0.0, lag_s + profile.OnPremRuntime() - segment_seconds);
    if (new_lag > lag_s) {
      buffered_bytes += (new_lag - lag_s) * bytes_per_s;
    } else if (lag_s > 0.0) {
      buffered_bytes -= (lag_s - new_lag) * (buffered_bytes / lag_s);
    }
    if (new_lag <= 1e-12) buffered_bytes = 0.0;
    lag_s = new_lag;
    if (buffered_bytes > static_cast<double>(options.buffer_bytes)) {
      // Unmanaged buffer overflow: Chameleon* crashes (§5.3).
      result.crashed = true;
      result.crash_time = info.start;
      return result;
    }

    result.total_quality +=
        workload.TrueQuality(profile.config, info.content);
    result.work_core_seconds +=
        profile.work_core_s_per_video_s * segment_seconds;
    ++result.segments;
  }
  result.mean_quality =
      result.segments == 0
          ? 0.0
          : result.total_quality / static_cast<double>(result.segments);
  return result;
}

}  // namespace sky::baselines
