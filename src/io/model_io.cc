#include "io/model_io.h"

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "core/forecaster.h"
#include "io/atomic_file.h"
#include "io/wire.h"
#include "ml/nn.h"

namespace sky::io {

namespace {

using wire::Cursor;
using wire::Fnv1a64;
using wire::PutChunk;
using wire::PutF64;
using wire::PutF64Rows;
using wire::PutF64Vec;
using wire::PutRaw;
using wire::PutString;
using wire::PutU32;
using wire::PutU64;
using wire::PutU64Vec;
using wire::PutU8;
using wire::TagIs;

// --- Format constants (docs/model_format.md) -------------------------------

constexpr char kMagic[8] = {'S', 'K', 'Y', 'M', 'O', 'D', 'L', '1'};
/// Written as a native u32; a reader on a machine with different endianness
/// sees a scrambled value and rejects the file instead of mis-parsing it.
constexpr uint32_t kEndianMarker = 0x01020304u;

/// Chunk tags, stored as four ASCII bytes in file order.
constexpr char kChunkMeta[4] = {'M', 'E', 'T', 'A'};
constexpr char kChunkAnnotation[4] = {'A', 'N', 'N', 'O'};
constexpr char kChunkConfigs[4] = {'K', 'N', 'B', 'C'};
constexpr char kChunkProfiles[4] = {'P', 'R', 'O', 'F'};
constexpr char kChunkCategories[4] = {'C', 'A', 'T', 'G'};
constexpr char kChunkTrainSeq[4] = {'T', 'S', 'E', 'Q'};
constexpr char kChunkForecaster[4] = {'F', 'C', 'S', 'T'};
constexpr char kChunkRuntimes[4] = {'R', 'T', 'I', 'M'};
constexpr char kChunkChecksum[4] = {'C', 'S', 'U', 'M'};

// --- Per-chunk serializers -------------------------------------------------

std::string MetaPayload(const core::OfflineModel& model) {
  std::string p;
  PutF64(&p, model.segment_seconds);
  PutF64(&p, model.train_horizon);
  return p;
}

Status ParseMeta(Cursor* c, core::OfflineModel* model) {
  SKY_RETURN_NOT_OK(c->ReadF64(&model->segment_seconds));
  return c->ReadF64(&model->train_horizon);
}

std::string ConfigsPayload(const core::OfflineModel& model) {
  std::string p;
  PutU64(&p, model.configs.size());
  for (const core::KnobConfig& k : model.configs) PutU64Vec(&p, k);
  return p;
}

Status ParseConfigs(Cursor* c, core::OfflineModel* model) {
  uint64_t n = 0;
  SKY_RETURN_NOT_OK(c->ReadCount(sizeof(uint64_t), &n));
  model->configs.resize(n);
  for (auto& k : model->configs) SKY_RETURN_NOT_OK(c->ReadU64Vec(&k));
  return Status::Ok();
}

std::string ProfilesPayload(const core::OfflineModel& model) {
  std::string p;
  PutU64(&p, model.profiles.size());
  for (const core::ConfigProfile& cp : model.profiles) {
    PutU64Vec(&p, cp.config);
    PutU64(&p, cp.config_id);
    PutF64(&p, cp.work_core_s_per_video_s);
    PutU64(&p, cp.placements.size());
    for (const core::PlacementProfile& pl : cp.placements) {
      PutU64(&p, pl.placement.node_loc.size());
      for (dag::Loc loc : pl.placement.node_loc) {
        PutU8(&p, static_cast<uint8_t>(loc));
      }
      PutF64(&p, pl.runtime_s);
      PutF64(&p, pl.cloud_usd);
      PutF64(&p, pl.onprem_core_s);
      PutF64(&p, pl.uplink_bytes);
    }
  }
  return p;
}

Status ParseProfiles(Cursor* c, core::OfflineModel* model) {
  uint64_t n = 0;
  SKY_RETURN_NOT_OK(c->ReadCount(sizeof(uint64_t), &n));
  model->profiles.resize(n);
  for (auto& cp : model->profiles) {
    SKY_RETURN_NOT_OK(c->ReadU64Vec(&cp.config));
    uint64_t id = 0;
    SKY_RETURN_NOT_OK(c->ReadU64(&id));
    cp.config_id = id;
    SKY_RETURN_NOT_OK(c->ReadF64(&cp.work_core_s_per_video_s));
    uint64_t num_placements = 0;
    SKY_RETURN_NOT_OK(c->ReadCount(sizeof(double), &num_placements));
    cp.placements.resize(num_placements);
    for (auto& pl : cp.placements) {
      uint64_t num_nodes = 0;
      SKY_RETURN_NOT_OK(c->ReadCount(1, &num_nodes));
      pl.placement.node_loc.resize(num_nodes);
      for (auto& loc : pl.placement.node_loc) {
        uint8_t raw = 0;
        SKY_RETURN_NOT_OK(c->ReadU8(&raw));
        if (raw > static_cast<uint8_t>(dag::Loc::kCloud)) {
          return Status::InvalidArgument("invalid task placement location");
        }
        loc = static_cast<dag::Loc>(raw);
      }
      SKY_RETURN_NOT_OK(c->ReadF64(&pl.runtime_s));
      SKY_RETURN_NOT_OK(c->ReadF64(&pl.cloud_usd));
      SKY_RETURN_NOT_OK(c->ReadF64(&pl.onprem_core_s));
      SKY_RETURN_NOT_OK(c->ReadF64(&pl.uplink_bytes));
    }
  }
  return Status::Ok();
}

Result<std::string> CategoriesPayload(const core::OfflineModel& model) {
  std::string p;
  PutU32(&p, static_cast<uint32_t>(model.categories.backend()));
  if (model.categories.backend() == core::CategorizerBackend::kKMeans) {
    const ml::KMeansModel& km = model.categories.kmeans_model();
    SKY_RETURN_NOT_OK(PutF64Rows(&p, km.centers));
    PutU64Vec(&p, km.assignments);
    PutF64(&p, km.inertia);
  } else {
    if (!model.categories.gmm_model().has_value()) {
      return Status::InvalidArgument("GMM categorizer without a GMM model");
    }
    const ml::GmmModel& gm = *model.categories.gmm_model();
    SKY_RETURN_NOT_OK(PutF64Rows(&p, gm.means));
    SKY_RETURN_NOT_OK(PutF64Rows(&p, gm.variances));
    PutF64Vec(&p, gm.weights);
    PutF64(&p, gm.log_likelihood);
  }
  return p;
}

Status ParseCategories(Cursor* c, core::OfflineModel* model) {
  uint32_t backend = 0;
  SKY_RETURN_NOT_OK(c->ReadU32(&backend));
  if (backend == static_cast<uint32_t>(core::CategorizerBackend::kKMeans)) {
    ml::KMeansModel km;
    SKY_RETURN_NOT_OK(c->ReadF64Rows(&km.centers));
    SKY_RETURN_NOT_OK(c->ReadU64Vec(&km.assignments));
    SKY_RETURN_NOT_OK(c->ReadF64(&km.inertia));
    model->categories = core::ContentCategories::FromKMeans(std::move(km));
    return Status::Ok();
  }
  if (backend == static_cast<uint32_t>(core::CategorizerBackend::kGmm)) {
    ml::GmmModel gm;
    SKY_RETURN_NOT_OK(c->ReadF64Rows(&gm.means));
    SKY_RETURN_NOT_OK(c->ReadF64Rows(&gm.variances));
    SKY_RETURN_NOT_OK(c->ReadF64Vec(&gm.weights));
    SKY_RETURN_NOT_OK(c->ReadF64(&gm.log_likelihood));
    if (gm.variances.size() != gm.means.size() ||
        gm.weights.size() != gm.means.size()) {
      return Status::InvalidArgument("inconsistent GMM component counts");
    }
    model->categories = core::ContentCategories::FromGmm(std::move(gm));
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown categorizer backend in model file");
}

std::string RuntimesPayload(const core::OfflineModel& model) {
  std::string p;
  const core::OfflineStepRuntimes& rt = model.step_runtimes;
  PutF64(&p, rt.filter_configs_s);
  PutF64(&p, rt.filter_placements_s);
  PutF64(&p, rt.content_categories_s);
  PutF64(&p, rt.forecast_training_data_s);
  PutF64(&p, rt.forecast_training_s);
  return p;
}

Status ParseRuntimes(Cursor* c, core::OfflineModel* model) {
  core::OfflineStepRuntimes& rt = model->step_runtimes;
  SKY_RETURN_NOT_OK(c->ReadF64(&rt.filter_configs_s));
  SKY_RETURN_NOT_OK(c->ReadF64(&rt.filter_placements_s));
  SKY_RETURN_NOT_OK(c->ReadF64(&rt.content_categories_s));
  SKY_RETURN_NOT_OK(c->ReadF64(&rt.forecast_training_data_s));
  return c->ReadF64(&rt.forecast_training_s);
}

}  // namespace

Status SerializeOfflineModel(const core::OfflineModel& model,
                             const std::string& annotation,
                             std::string* out) {
  out->clear();
  PutRaw(out, kMagic, sizeof(kMagic));
  PutU32(out, kModelFormatVersion);
  PutU32(out, kEndianMarker);

  PutChunk(out, kChunkMeta, MetaPayload(model));
  {
    std::string p;
    PutString(&p, annotation);
    PutChunk(out, kChunkAnnotation, p);
  }
  PutChunk(out, kChunkConfigs, ConfigsPayload(model));
  PutChunk(out, kChunkProfiles, ProfilesPayload(model));
  SKY_ASSIGN_OR_RETURN(std::string categories, CategoriesPayload(model));
  PutChunk(out, kChunkCategories, categories);
  {
    std::string p;
    PutU64Vec(&p, model.train_category_sequence);
    PutChunk(out, kChunkTrainSeq, p);
  }
  {
    std::string p;
    wire::AppendForecaster(model.forecaster, &p);
    PutChunk(out, kChunkForecaster, p);
  }
  PutChunk(out, kChunkRuntimes, RuntimesPayload(model));

  // Trailing integrity chunk: FNV-1a-64 of every byte written so far
  // (header + all preceding chunks).
  std::string checksum;
  PutU64(&checksum, Fnv1a64(out->data(), out->size()));
  PutChunk(out, kChunkChecksum, checksum);
  return Status::Ok();
}

Result<core::OfflineModel> DeserializeOfflineModel(const std::string& bytes,
                                                   std::string* annotation) {
  Cursor header(bytes.data(), bytes.size());
  char magic[8];
  SKY_RETURN_NOT_OK(header.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a Skyscraper model file (bad magic)");
  }
  uint32_t version = 0, endian = 0;
  SKY_RETURN_NOT_OK(header.ReadU32(&version));
  if (version != kModelFormatVersion) {
    return Status::InvalidArgument(
        "unsupported model format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kModelFormatVersion) + ")");
  }
  SKY_RETURN_NOT_OK(header.ReadU32(&endian));
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "model file written with different byte order");
  }

  // Pass 1: walk the chunk table to locate the checksum trailer and verify
  // it covers exactly the bytes before it. Nothing is parsed until the file
  // is known to be intact end to end.
  Cursor walk(bytes.data(), bytes.size());
  SKY_RETURN_NOT_OK(walk.Skip(16));  // header
  bool checksum_seen = false;
  while (walk.remaining() > 0) {
    char tag[4];
    SKY_RETURN_NOT_OK(walk.Read(tag, 4));
    uint64_t size = 0;
    SKY_RETURN_NOT_OK(walk.ReadU64(&size));
    if (TagIs(tag, kChunkChecksum)) {
      if (size != sizeof(uint64_t) || walk.remaining() != size) {
        return Status::InvalidArgument("malformed model checksum trailer");
      }
      size_t covered = walk.pos() - 12;  // bytes before the CSUM chunk
      uint64_t stored = 0;
      SKY_RETURN_NOT_OK(walk.ReadU64(&stored));
      if (stored != Fnv1a64(bytes.data(), covered)) {
        return Status::InvalidArgument(
            "model file checksum mismatch (corrupted)");
      }
      checksum_seen = true;
      break;
    }
    SKY_RETURN_NOT_OK(walk.Skip(size));
  }
  if (!checksum_seen) {
    return Status::InvalidArgument("model file missing checksum trailer");
  }

  // Pass 2: parse chunk payloads into a fresh model. Every chunk must
  // appear exactly once; unknown tags are an error (see the versioning
  // policy in docs/model_format.md).
  core::OfflineModel model;
  bool seen_meta = false, seen_anno = false, seen_configs = false;
  bool seen_profiles = false, seen_categories = false, seen_seq = false;
  bool seen_forecaster = false, seen_runtimes = false;
  auto mark_once = [](bool* seen) {
    if (*seen) {
      return Status::InvalidArgument("duplicate chunk in model file");
    }
    *seen = true;
    return Status::Ok();
  };
  Cursor c(bytes.data(), bytes.size());
  SKY_RETURN_NOT_OK(c.Skip(16));
  while (c.remaining() > 0) {
    char tag[4];
    SKY_RETURN_NOT_OK(c.Read(tag, 4));
    uint64_t size = 0;
    SKY_RETURN_NOT_OK(c.ReadU64(&size));
    if (size > c.remaining()) {  // pass 1 guarantees this; stay defensive
      return Status::InvalidArgument("model file truncated mid-chunk");
    }
    Cursor payload(bytes.data() + c.pos(), size);
    if (TagIs(tag, kChunkChecksum)) break;  // verified in pass 1

    Status st;
    if (TagIs(tag, kChunkMeta)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_meta));
      st = ParseMeta(&payload, &model);
    } else if (TagIs(tag, kChunkAnnotation)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_anno));
      std::string anno;
      st = payload.ReadString(&anno);
      if (annotation != nullptr) *annotation = std::move(anno);
    } else if (TagIs(tag, kChunkConfigs)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_configs));
      st = ParseConfigs(&payload, &model);
    } else if (TagIs(tag, kChunkProfiles)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_profiles));
      st = ParseProfiles(&payload, &model);
    } else if (TagIs(tag, kChunkCategories)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_categories));
      st = ParseCategories(&payload, &model);
    } else if (TagIs(tag, kChunkTrainSeq)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_seq));
      st = payload.ReadU64Vec(&model.train_category_sequence);
    } else if (TagIs(tag, kChunkForecaster)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_forecaster));
      st = wire::ParseForecaster(&payload, &model.forecaster);
    } else if (TagIs(tag, kChunkRuntimes)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_runtimes));
      st = ParseRuntimes(&payload, &model);
    } else {
      return Status::InvalidArgument("unknown chunk tag in model file");
    }
    SKY_RETURN_NOT_OK(st);
    if (payload.remaining() != 0) {
      return Status::InvalidArgument("model chunk has trailing bytes");
    }
    SKY_RETURN_NOT_OK(c.Skip(size));  // past the payload just parsed
  }
  if (!seen_meta || !seen_anno || !seen_configs || !seen_profiles ||
      !seen_categories || !seen_seq || !seen_forecaster || !seen_runtimes) {
    return Status::InvalidArgument("model file is missing required chunks");
  }
  return model;
}

Status SaveOfflineModel(const core::OfflineModel& model,
                        const std::string& path,
                        const std::string& annotation) {
  std::string bytes;
  SKY_RETURN_NOT_OK(SerializeOfflineModel(model, annotation, &bytes));
  // Crash consistency: a save interrupted at any point leaves either the
  // previous model file or the new one, never a torn file.
  return AtomicWriteFile(path, bytes);
}

Result<core::OfflineModel> LoadOfflineModel(const std::string& path,
                                            std::string* annotation) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open model file " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("error reading model file " + path);
  }
  return DeserializeOfflineModel(bytes, annotation);
}

}  // namespace sky::io
