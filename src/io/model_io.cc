#include "io/model_io.h"

#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "core/forecaster.h"
#include "ml/nn.h"

namespace sky::io {

namespace {

// --- Format constants (docs/model_format.md) -------------------------------

constexpr char kMagic[8] = {'S', 'K', 'Y', 'M', 'O', 'D', 'L', '1'};
/// Written as a native u32; a reader on a machine with different endianness
/// sees a scrambled value and rejects the file instead of mis-parsing it.
constexpr uint32_t kEndianMarker = 0x01020304u;

/// Chunk tags, stored as four ASCII bytes in file order.
constexpr char kChunkMeta[4] = {'M', 'E', 'T', 'A'};
constexpr char kChunkAnnotation[4] = {'A', 'N', 'N', 'O'};
constexpr char kChunkConfigs[4] = {'K', 'N', 'B', 'C'};
constexpr char kChunkProfiles[4] = {'P', 'R', 'O', 'F'};
constexpr char kChunkCategories[4] = {'C', 'A', 'T', 'G'};
constexpr char kChunkTrainSeq[4] = {'T', 'S', 'E', 'Q'};
constexpr char kChunkForecaster[4] = {'F', 'C', 'S', 'T'};
constexpr char kChunkRuntimes[4] = {'R', 'T', 'I', 'M'};
constexpr char kChunkChecksum[4] = {'C', 'S', 'U', 'M'};

/// FNV-1a 64-bit over a byte range — cheap, dependency-free integrity check
/// (this guards against truncation and bit rot, not adversaries).
uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// --- Little writer ---------------------------------------------------------

void PutRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void PutU8(std::string* out, uint8_t v) { PutRaw(out, &v, 1); }
void PutU32(std::string* out, uint32_t v) { PutRaw(out, &v, sizeof(v)); }
void PutU64(std::string* out, uint64_t v) { PutRaw(out, &v, sizeof(v)); }
void PutF64(std::string* out, double v) { PutRaw(out, &v, sizeof(v)); }

void PutU64Vec(std::string* out, const std::vector<size_t>& v) {
  PutU64(out, v.size());
  for (size_t x : v) PutU64(out, x);
}

void PutF64Vec(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  if (!v.empty()) PutRaw(out, v.data(), v.size() * sizeof(double));
}

/// k rows of equal width, stored as (rows, cols, row-major payload).
Status PutF64Rows(std::string* out,
                  const std::vector<std::vector<double>>& rows) {
  PutU64(out, rows.size());
  size_t cols = rows.empty() ? 0 : rows[0].size();
  PutU64(out, cols);
  for (const std::vector<double>& row : rows) {
    if (row.size() != cols) {
      return Status::InvalidArgument("ragged rows are not serializable");
    }
    if (!row.empty()) PutRaw(out, row.data(), row.size() * sizeof(double));
  }
  return Status::Ok();
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  PutRaw(out, s.data(), s.size());
}

/// Appends one tagged chunk: 4-byte tag, u64 payload size, payload.
void PutChunk(std::string* out, const char tag[4], const std::string& payload) {
  PutRaw(out, tag, 4);
  PutU64(out, payload.size());
  out->append(payload);
}

// --- Bounds-checked reader -------------------------------------------------

/// Sequential reader over the serialized bytes. Every accessor checks the
/// remaining length first, so truncated or corrupted input surfaces as an
/// error Status instead of an out-of-bounds read.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), end_(size) {}

  size_t remaining() const { return end_ - pos_; }
  size_t pos() const { return pos_; }

  Status Read(void* out, size_t n) {
    if (n > remaining()) {
      return Status::InvalidArgument("model file truncated mid-field");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  Status Skip(size_t n) {
    if (n > remaining()) {
      return Status::InvalidArgument("model file truncated mid-chunk");
    }
    pos_ += n;
    return Status::Ok();
  }

  Status ReadU8(uint8_t* v) { return Read(v, 1); }
  Status ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  Status ReadF64(double* v) { return Read(v, sizeof(*v)); }

  /// Reads a u64 count that the payload must still be able to satisfy at
  /// `elem_bytes` per element — rejects absurd counts from corrupt input
  /// before any allocation is attempted.
  Status ReadCount(size_t elem_bytes, uint64_t* count) {
    SKY_RETURN_NOT_OK(ReadU64(count));
    if (elem_bytes > 0 && *count > remaining() / elem_bytes) {
      return Status::InvalidArgument("model file declares impossible count");
    }
    return Status::Ok();
  }

  Status ReadU64Vec(std::vector<size_t>* v) {
    uint64_t n = 0;
    SKY_RETURN_NOT_OK(ReadCount(sizeof(uint64_t), &n));
    v->resize(n);
    for (size_t i = 0; i < n; ++i) {
      uint64_t x = 0;
      SKY_RETURN_NOT_OK(ReadU64(&x));
      (*v)[i] = x;
    }
    return Status::Ok();
  }

  Status ReadF64Vec(std::vector<double>* v) {
    uint64_t n = 0;
    SKY_RETURN_NOT_OK(ReadCount(sizeof(double), &n));
    v->resize(n);
    if (n > 0) return Read(v->data(), n * sizeof(double));
    return Status::Ok();
  }

  Status ReadF64Rows(std::vector<std::vector<double>>* rows) {
    uint64_t k = 0, cols = 0;
    SKY_RETURN_NOT_OK(ReadU64(&k));
    SKY_RETURN_NOT_OK(ReadU64(&cols));
    // Guard the multiplication itself, then the row count — and bound k by
    // the remaining payload even for zero-width rows, so no crafted header
    // can request an unbounded allocation.
    if (cols > remaining() / sizeof(double)) {
      return Status::InvalidArgument("model file declares impossible count");
    }
    uint64_t row_bytes = cols * sizeof(double);
    if (row_bytes > 0 ? k > remaining() / row_bytes : k > remaining()) {
      return Status::InvalidArgument("model file declares impossible count");
    }
    rows->assign(k, std::vector<double>(cols));
    for (auto& row : *rows) {
      if (cols > 0) SKY_RETURN_NOT_OK(Read(row.data(), cols * sizeof(double)));
    }
    return Status::Ok();
  }

  Status ReadString(std::string* s) {
    uint64_t n = 0;
    SKY_RETURN_NOT_OK(ReadCount(1, &n));
    s->resize(n);
    if (n > 0) return Read(&(*s)[0], n);
    return Status::Ok();
  }

 private:
  const char* data_;
  size_t pos_ = 0;
  size_t end_;
};

// --- Per-chunk serializers -------------------------------------------------

std::string MetaPayload(const core::OfflineModel& model) {
  std::string p;
  PutF64(&p, model.segment_seconds);
  PutF64(&p, model.train_horizon);
  return p;
}

Status ParseMeta(Cursor* c, core::OfflineModel* model) {
  SKY_RETURN_NOT_OK(c->ReadF64(&model->segment_seconds));
  return c->ReadF64(&model->train_horizon);
}

std::string ConfigsPayload(const core::OfflineModel& model) {
  std::string p;
  PutU64(&p, model.configs.size());
  for (const core::KnobConfig& k : model.configs) PutU64Vec(&p, k);
  return p;
}

Status ParseConfigs(Cursor* c, core::OfflineModel* model) {
  uint64_t n = 0;
  SKY_RETURN_NOT_OK(c->ReadCount(sizeof(uint64_t), &n));
  model->configs.resize(n);
  for (auto& k : model->configs) SKY_RETURN_NOT_OK(c->ReadU64Vec(&k));
  return Status::Ok();
}

std::string ProfilesPayload(const core::OfflineModel& model) {
  std::string p;
  PutU64(&p, model.profiles.size());
  for (const core::ConfigProfile& cp : model.profiles) {
    PutU64Vec(&p, cp.config);
    PutU64(&p, cp.config_id);
    PutF64(&p, cp.work_core_s_per_video_s);
    PutU64(&p, cp.placements.size());
    for (const core::PlacementProfile& pl : cp.placements) {
      PutU64(&p, pl.placement.node_loc.size());
      for (dag::Loc loc : pl.placement.node_loc) {
        PutU8(&p, static_cast<uint8_t>(loc));
      }
      PutF64(&p, pl.runtime_s);
      PutF64(&p, pl.cloud_usd);
      PutF64(&p, pl.onprem_core_s);
      PutF64(&p, pl.uplink_bytes);
    }
  }
  return p;
}

Status ParseProfiles(Cursor* c, core::OfflineModel* model) {
  uint64_t n = 0;
  SKY_RETURN_NOT_OK(c->ReadCount(sizeof(uint64_t), &n));
  model->profiles.resize(n);
  for (auto& cp : model->profiles) {
    SKY_RETURN_NOT_OK(c->ReadU64Vec(&cp.config));
    uint64_t id = 0;
    SKY_RETURN_NOT_OK(c->ReadU64(&id));
    cp.config_id = id;
    SKY_RETURN_NOT_OK(c->ReadF64(&cp.work_core_s_per_video_s));
    uint64_t num_placements = 0;
    SKY_RETURN_NOT_OK(c->ReadCount(sizeof(double), &num_placements));
    cp.placements.resize(num_placements);
    for (auto& pl : cp.placements) {
      uint64_t num_nodes = 0;
      SKY_RETURN_NOT_OK(c->ReadCount(1, &num_nodes));
      pl.placement.node_loc.resize(num_nodes);
      for (auto& loc : pl.placement.node_loc) {
        uint8_t raw = 0;
        SKY_RETURN_NOT_OK(c->ReadU8(&raw));
        if (raw > static_cast<uint8_t>(dag::Loc::kCloud)) {
          return Status::InvalidArgument("invalid task placement location");
        }
        loc = static_cast<dag::Loc>(raw);
      }
      SKY_RETURN_NOT_OK(c->ReadF64(&pl.runtime_s));
      SKY_RETURN_NOT_OK(c->ReadF64(&pl.cloud_usd));
      SKY_RETURN_NOT_OK(c->ReadF64(&pl.onprem_core_s));
      SKY_RETURN_NOT_OK(c->ReadF64(&pl.uplink_bytes));
    }
  }
  return Status::Ok();
}

Result<std::string> CategoriesPayload(const core::OfflineModel& model) {
  std::string p;
  PutU32(&p, static_cast<uint32_t>(model.categories.backend()));
  if (model.categories.backend() == core::CategorizerBackend::kKMeans) {
    const ml::KMeansModel& km = model.categories.kmeans_model();
    SKY_RETURN_NOT_OK(PutF64Rows(&p, km.centers));
    PutU64Vec(&p, km.assignments);
    PutF64(&p, km.inertia);
  } else {
    if (!model.categories.gmm_model().has_value()) {
      return Status::InvalidArgument("GMM categorizer without a GMM model");
    }
    const ml::GmmModel& gm = *model.categories.gmm_model();
    SKY_RETURN_NOT_OK(PutF64Rows(&p, gm.means));
    SKY_RETURN_NOT_OK(PutF64Rows(&p, gm.variances));
    PutF64Vec(&p, gm.weights);
    PutF64(&p, gm.log_likelihood);
  }
  return p;
}

Status ParseCategories(Cursor* c, core::OfflineModel* model) {
  uint32_t backend = 0;
  SKY_RETURN_NOT_OK(c->ReadU32(&backend));
  if (backend == static_cast<uint32_t>(core::CategorizerBackend::kKMeans)) {
    ml::KMeansModel km;
    SKY_RETURN_NOT_OK(c->ReadF64Rows(&km.centers));
    SKY_RETURN_NOT_OK(c->ReadU64Vec(&km.assignments));
    SKY_RETURN_NOT_OK(c->ReadF64(&km.inertia));
    model->categories = core::ContentCategories::FromKMeans(std::move(km));
    return Status::Ok();
  }
  if (backend == static_cast<uint32_t>(core::CategorizerBackend::kGmm)) {
    ml::GmmModel gm;
    SKY_RETURN_NOT_OK(c->ReadF64Rows(&gm.means));
    SKY_RETURN_NOT_OK(c->ReadF64Rows(&gm.variances));
    SKY_RETURN_NOT_OK(c->ReadF64Vec(&gm.weights));
    SKY_RETURN_NOT_OK(c->ReadF64(&gm.log_likelihood));
    if (gm.variances.size() != gm.means.size() ||
        gm.weights.size() != gm.means.size()) {
      return Status::InvalidArgument("inconsistent GMM component counts");
    }
    model->categories = core::ContentCategories::FromGmm(std::move(gm));
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown categorizer backend in model file");
}

std::string ForecasterPayload(const core::OfflineModel& model) {
  std::string p;
  PutU8(&p, model.forecaster.has_value() ? 1 : 0);
  if (!model.forecaster.has_value()) return p;
  const core::Forecaster& f = *model.forecaster;

  const core::ForecasterOptions& o = f.options();
  PutF64(&p, o.input_span);
  PutU64(&p, o.input_splits);
  PutF64(&p, o.planned_interval);
  PutF64(&p, o.training_stride);
  PutU64(&p, o.seed);
  const ml::TrainOptions& t = o.train_options;
  PutU64(&p, t.epochs);
  PutU64(&p, t.batch_size);
  PutF64(&p, t.learning_rate);
  PutF64(&p, t.validation_split);
  PutU32(&p, static_cast<uint32_t>(t.loss));
  PutU64(&p, t.shuffle_seed);
  PutU8(&p, t.keep_best_validation_weights ? 1 : 0);
  PutU32(&p, static_cast<uint32_t>(t.backend));
  PutU64(&p, t.grad_chunk_rows);

  PutU64(&p, f.num_categories());

  const ml::TrainReport& r = f.train_report();
  PutF64Vec(&p, r.train_loss_per_epoch);
  PutF64Vec(&p, r.val_loss_per_epoch);
  PutF64(&p, r.best_val_loss);
  PutU64(&p, r.best_epoch);

  ml::NetSnapshot net = f.SnapshotNet();
  PutU64(&p, net.input_dim);
  PutU64Vec(&p, net.hidden);
  PutU64(&p, net.output_dim);
  PutU32(&p, static_cast<uint32_t>(net.output_activation));
  PutU64(&p, net.adam_steps);
  PutF64Vec(&p, net.params);
  PutF64Vec(&p, net.adam_m);
  PutF64Vec(&p, net.adam_v);
  return p;
}

Status ParseForecaster(Cursor* c, core::OfflineModel* model) {
  uint8_t present = 0;
  SKY_RETURN_NOT_OK(c->ReadU8(&present));
  if (present == 0) {
    model->forecaster.reset();
    return Status::Ok();
  }
  if (present != 1) {
    return Status::InvalidArgument("invalid forecaster presence flag");
  }

  core::ForecasterOptions o;
  uint64_t u = 0;
  uint32_t e = 0;
  uint8_t b = 0;
  SKY_RETURN_NOT_OK(c->ReadF64(&o.input_span));
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  o.input_splits = u;
  SKY_RETURN_NOT_OK(c->ReadF64(&o.planned_interval));
  SKY_RETURN_NOT_OK(c->ReadF64(&o.training_stride));
  SKY_RETURN_NOT_OK(c->ReadU64(&o.seed));
  ml::TrainOptions& t = o.train_options;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  t.epochs = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  t.batch_size = u;
  SKY_RETURN_NOT_OK(c->ReadF64(&t.learning_rate));
  SKY_RETURN_NOT_OK(c->ReadF64(&t.validation_split));
  SKY_RETURN_NOT_OK(c->ReadU32(&e));
  if (e > static_cast<uint32_t>(ml::Loss::kCrossEntropy)) {
    return Status::InvalidArgument("invalid loss id in model file");
  }
  t.loss = static_cast<ml::Loss>(e);
  SKY_RETURN_NOT_OK(c->ReadU64(&t.shuffle_seed));
  SKY_RETURN_NOT_OK(c->ReadU8(&b));
  t.keep_best_validation_weights = b != 0;
  SKY_RETURN_NOT_OK(c->ReadU32(&e));
  if (e > static_cast<uint32_t>(ml::TrainBackend::kPerSample)) {
    return Status::InvalidArgument("invalid train backend id in model file");
  }
  t.backend = static_cast<ml::TrainBackend>(e);
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  t.grad_chunk_rows = u;

  uint64_t num_categories = 0;
  SKY_RETURN_NOT_OK(c->ReadU64(&num_categories));

  ml::TrainReport report;
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&report.train_loss_per_epoch));
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&report.val_loss_per_epoch));
  SKY_RETURN_NOT_OK(c->ReadF64(&report.best_val_loss));
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  report.best_epoch = u;

  ml::NetSnapshot net;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  net.input_dim = u;
  SKY_RETURN_NOT_OK(c->ReadU64Vec(&net.hidden));
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  net.output_dim = u;
  SKY_RETURN_NOT_OK(c->ReadU32(&e));
  if (e > static_cast<uint32_t>(ml::Activation::kSoftmax)) {
    return Status::InvalidArgument("invalid activation id in model file");
  }
  net.output_activation = static_cast<ml::Activation>(e);
  SKY_RETURN_NOT_OK(c->ReadU64(&net.adam_steps));
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&net.params));
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&net.adam_m));
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&net.adam_v));

  SKY_ASSIGN_OR_RETURN(core::Forecaster forecaster,
                       core::Forecaster::FromParts(net, o, num_categories,
                                                   std::move(report)));
  model->forecaster.emplace(std::move(forecaster));
  return Status::Ok();
}

std::string RuntimesPayload(const core::OfflineModel& model) {
  std::string p;
  const core::OfflineStepRuntimes& rt = model.step_runtimes;
  PutF64(&p, rt.filter_configs_s);
  PutF64(&p, rt.filter_placements_s);
  PutF64(&p, rt.content_categories_s);
  PutF64(&p, rt.forecast_training_data_s);
  PutF64(&p, rt.forecast_training_s);
  return p;
}

Status ParseRuntimes(Cursor* c, core::OfflineModel* model) {
  core::OfflineStepRuntimes& rt = model->step_runtimes;
  SKY_RETURN_NOT_OK(c->ReadF64(&rt.filter_configs_s));
  SKY_RETURN_NOT_OK(c->ReadF64(&rt.filter_placements_s));
  SKY_RETURN_NOT_OK(c->ReadF64(&rt.content_categories_s));
  SKY_RETURN_NOT_OK(c->ReadF64(&rt.forecast_training_data_s));
  return c->ReadF64(&rt.forecast_training_s);
}

bool TagIs(const char tag[4], const char expected[4]) {
  return std::memcmp(tag, expected, 4) == 0;
}

}  // namespace

Status SerializeOfflineModel(const core::OfflineModel& model,
                             const std::string& annotation,
                             std::string* out) {
  out->clear();
  PutRaw(out, kMagic, sizeof(kMagic));
  PutU32(out, kModelFormatVersion);
  PutU32(out, kEndianMarker);

  PutChunk(out, kChunkMeta, MetaPayload(model));
  {
    std::string p;
    PutString(&p, annotation);
    PutChunk(out, kChunkAnnotation, p);
  }
  PutChunk(out, kChunkConfigs, ConfigsPayload(model));
  PutChunk(out, kChunkProfiles, ProfilesPayload(model));
  SKY_ASSIGN_OR_RETURN(std::string categories, CategoriesPayload(model));
  PutChunk(out, kChunkCategories, categories);
  {
    std::string p;
    PutU64Vec(&p, model.train_category_sequence);
    PutChunk(out, kChunkTrainSeq, p);
  }
  PutChunk(out, kChunkForecaster, ForecasterPayload(model));
  PutChunk(out, kChunkRuntimes, RuntimesPayload(model));

  // Trailing integrity chunk: FNV-1a-64 of every byte written so far
  // (header + all preceding chunks).
  std::string checksum;
  PutU64(&checksum, Fnv1a64(out->data(), out->size()));
  PutChunk(out, kChunkChecksum, checksum);
  return Status::Ok();
}

Result<core::OfflineModel> DeserializeOfflineModel(const std::string& bytes,
                                                   std::string* annotation) {
  Cursor header(bytes.data(), bytes.size());
  char magic[8];
  SKY_RETURN_NOT_OK(header.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a Skyscraper model file (bad magic)");
  }
  uint32_t version = 0, endian = 0;
  SKY_RETURN_NOT_OK(header.ReadU32(&version));
  if (version != kModelFormatVersion) {
    return Status::InvalidArgument(
        "unsupported model format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kModelFormatVersion) + ")");
  }
  SKY_RETURN_NOT_OK(header.ReadU32(&endian));
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "model file written with different byte order");
  }

  // Pass 1: walk the chunk table to locate the checksum trailer and verify
  // it covers exactly the bytes before it. Nothing is parsed until the file
  // is known to be intact end to end.
  Cursor walk(bytes.data(), bytes.size());
  SKY_RETURN_NOT_OK(walk.Skip(16));  // header
  bool checksum_seen = false;
  while (walk.remaining() > 0) {
    char tag[4];
    SKY_RETURN_NOT_OK(walk.Read(tag, 4));
    uint64_t size = 0;
    SKY_RETURN_NOT_OK(walk.ReadU64(&size));
    if (TagIs(tag, kChunkChecksum)) {
      if (size != sizeof(uint64_t) || walk.remaining() != size) {
        return Status::InvalidArgument("malformed model checksum trailer");
      }
      size_t covered = walk.pos() - 12;  // bytes before the CSUM chunk
      uint64_t stored = 0;
      SKY_RETURN_NOT_OK(walk.ReadU64(&stored));
      if (stored != Fnv1a64(bytes.data(), covered)) {
        return Status::InvalidArgument(
            "model file checksum mismatch (corrupted)");
      }
      checksum_seen = true;
      break;
    }
    SKY_RETURN_NOT_OK(walk.Skip(size));
  }
  if (!checksum_seen) {
    return Status::InvalidArgument("model file missing checksum trailer");
  }

  // Pass 2: parse chunk payloads into a fresh model. Every chunk must
  // appear exactly once; unknown tags are an error (see the versioning
  // policy in docs/model_format.md).
  core::OfflineModel model;
  bool seen_meta = false, seen_anno = false, seen_configs = false;
  bool seen_profiles = false, seen_categories = false, seen_seq = false;
  bool seen_forecaster = false, seen_runtimes = false;
  auto mark_once = [](bool* seen) {
    if (*seen) {
      return Status::InvalidArgument("duplicate chunk in model file");
    }
    *seen = true;
    return Status::Ok();
  };
  Cursor c(bytes.data(), bytes.size());
  SKY_RETURN_NOT_OK(c.Skip(16));
  while (c.remaining() > 0) {
    char tag[4];
    SKY_RETURN_NOT_OK(c.Read(tag, 4));
    uint64_t size = 0;
    SKY_RETURN_NOT_OK(c.ReadU64(&size));
    if (size > c.remaining()) {  // pass 1 guarantees this; stay defensive
      return Status::InvalidArgument("model file truncated mid-chunk");
    }
    Cursor payload(bytes.data() + c.pos(), size);
    if (TagIs(tag, kChunkChecksum)) break;  // verified in pass 1

    Status st;
    if (TagIs(tag, kChunkMeta)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_meta));
      st = ParseMeta(&payload, &model);
    } else if (TagIs(tag, kChunkAnnotation)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_anno));
      std::string anno;
      st = payload.ReadString(&anno);
      if (annotation != nullptr) *annotation = std::move(anno);
    } else if (TagIs(tag, kChunkConfigs)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_configs));
      st = ParseConfigs(&payload, &model);
    } else if (TagIs(tag, kChunkProfiles)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_profiles));
      st = ParseProfiles(&payload, &model);
    } else if (TagIs(tag, kChunkCategories)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_categories));
      st = ParseCategories(&payload, &model);
    } else if (TagIs(tag, kChunkTrainSeq)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_seq));
      st = payload.ReadU64Vec(&model.train_category_sequence);
    } else if (TagIs(tag, kChunkForecaster)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_forecaster));
      st = ParseForecaster(&payload, &model);
    } else if (TagIs(tag, kChunkRuntimes)) {
      SKY_RETURN_NOT_OK(mark_once(&seen_runtimes));
      st = ParseRuntimes(&payload, &model);
    } else {
      return Status::InvalidArgument("unknown chunk tag in model file");
    }
    SKY_RETURN_NOT_OK(st);
    if (payload.remaining() != 0) {
      return Status::InvalidArgument("model chunk has trailing bytes");
    }
    SKY_RETURN_NOT_OK(c.Skip(size));  // past the payload just parsed
  }
  if (!seen_meta || !seen_anno || !seen_configs || !seen_profiles ||
      !seen_categories || !seen_seq || !seen_forecaster || !seen_runtimes) {
    return Status::InvalidArgument("model file is missing required chunks");
  }
  return model;
}

Status SaveOfflineModel(const core::OfflineModel& model,
                        const std::string& path,
                        const std::string& annotation) {
  std::string bytes;
  SKY_RETURN_NOT_OK(SerializeOfflineModel(model, annotation, &bytes));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

Result<core::OfflineModel> LoadOfflineModel(const std::string& path,
                                            std::string* annotation) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open model file " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("error reading model file " + path);
  }
  return DeserializeOfflineModel(bytes, annotation);
}

}  // namespace sky::io
