#ifndef SKYSCRAPER_IO_WIRE_H_
#define SKYSCRAPER_IO_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/forecaster.h"
#include "util/result.h"
#include "util/status.h"

namespace sky::io::wire {

/// Shared primitives of every Skyscraper on-disk format (models and fleet
/// checkpoints): raw little writers, the bounds-checked Cursor reader, the
/// FNV-1a integrity hash, tagged chunks, and the forecaster payload. The
/// byte layout conventions live in docs/model_format.md; each file format
/// keeps its own magic, version, and chunk tags on top of these.

/// FNV-1a 64-bit over a byte range — cheap, dependency-free integrity check
/// (this guards against truncation and bit rot, not adversaries).
uint64_t Fnv1a64(const char* data, size_t n);

// --- Little writer ---------------------------------------------------------

void PutRaw(std::string* out, const void* data, size_t n);
void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutF64(std::string* out, double v);
void PutBool(std::string* out, bool v);
void PutU64Vec(std::string* out, const std::vector<size_t>& v);
void PutF64Vec(std::string* out, const std::vector<double>& v);

/// k rows of equal width, stored as (rows, cols, row-major payload).
Status PutF64Rows(std::string* out,
                  const std::vector<std::vector<double>>& rows);

void PutString(std::string* out, const std::string& s);

/// Appends one tagged chunk: 4-byte tag, u64 payload size, payload.
void PutChunk(std::string* out, const char tag[4], const std::string& payload);

bool TagIs(const char tag[4], const char expected[4]);

// --- Bounds-checked reader -------------------------------------------------

/// Sequential reader over serialized bytes. Every accessor checks the
/// remaining length first, so truncated or corrupted input surfaces as an
/// error Status instead of an out-of-bounds read.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), end_(size) {}

  size_t remaining() const { return end_ - pos_; }
  size_t pos() const { return pos_; }

  Status Read(void* out, size_t n);
  Status Skip(size_t n);

  Status ReadU8(uint8_t* v) { return Read(v, 1); }
  Status ReadU32(uint32_t* v) { return Read(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return Read(v, sizeof(*v)); }
  Status ReadI64(int64_t* v);
  Status ReadF64(double* v) { return Read(v, sizeof(*v)); }

  /// Reads a PutBool byte; anything but 0/1 is corruption, not a flag.
  Status ReadBool(bool* v);

  /// Reads a u64 count that the payload must still be able to satisfy at
  /// `elem_bytes` per element — rejects absurd counts from corrupt input
  /// before any allocation is attempted.
  Status ReadCount(size_t elem_bytes, uint64_t* count);

  Status ReadU64Vec(std::vector<size_t>* v);
  Status ReadF64Vec(std::vector<double>* v);
  Status ReadF64Rows(std::vector<std::vector<double>>* rows);
  Status ReadString(std::string* s);

 private:
  const char* data_;
  size_t pos_ = 0;
  size_t end_;
};

// --- Forecaster payload ----------------------------------------------------

/// Appends a self-contained forecaster payload (presence flag, options,
/// train report, net snapshot incl. Adam moments). Shared between the model
/// FCST chunk and engine checkpoints so the two formats cannot drift; round
/// trips are bitwise (online fine-tuning resumes identically).
void AppendForecaster(const std::optional<core::Forecaster>& forecaster,
                      std::string* out);

/// Parses a payload written by AppendForecaster.
Status ParseForecaster(Cursor* c, std::optional<core::Forecaster>* out);

}  // namespace sky::io::wire

#endif  // SKYSCRAPER_IO_WIRE_H_
