#ifndef SKYSCRAPER_IO_MODEL_IO_H_
#define SKYSCRAPER_IO_MODEL_IO_H_

#include <cstdint>
#include <string>

#include "core/offline.h"
#include "util/result.h"

namespace sky::io {

/// Version of the on-disk model format this build writes (and the only one
/// it reads — see docs/model_format.md for the versioning policy). Bump on
/// any layout change; readers reject files whose version they do not know
/// rather than guessing at the layout.
inline constexpr uint32_t kModelFormatVersion = 1;

/// Serializes a trained OfflineModel into the tagged chunked binary format
/// described in docs/model_format.md: a 16-byte header (magic, version,
/// endianness marker), one chunk per model component, and a trailing
/// checksum chunk over everything before it. Doubles are stored as their
/// raw IEEE-754 bytes, so a save/load round trip is exact: the loaded model
/// satisfies core::OfflineModelsIdentical bitwise, and ingestion runs from
/// it are bitwise-equal to runs from the original (the forecaster chunk
/// carries the Adam optimizer moments, so even online fine-tuning resumes
/// identically).
///
/// `annotation` is a free-form UTF-8 string stored verbatim (the sky CLI
/// records the workload name so `sky ingest` can refuse a model trained for
/// a different job). `out` is overwritten.
Status SerializeOfflineModel(const core::OfflineModel& model,
                             const std::string& annotation, std::string* out);

/// Parses a serialized model, verifying the magic, version, endianness,
/// chunk structure, and checksum. Corrupted, truncated, or wrong-version
/// input yields an error Status — never a crash and never a partially
/// filled model. A non-null `annotation` receives the stored annotation.
Result<core::OfflineModel> DeserializeOfflineModel(
    const std::string& bytes, std::string* annotation = nullptr);

/// SerializeOfflineModel straight to a file (overwritten if present). The
/// write is crash-consistent: bytes land in a temp file in the target
/// directory, are flushed, then renamed over `path` — an interrupted save
/// never clobbers the last good model (see io::AtomicWriteFile).
Status SaveOfflineModel(const core::OfflineModel& model,
                        const std::string& path,
                        const std::string& annotation = "");

/// Reads and DeserializeOfflineModel's a file saved by SaveOfflineModel.
Result<core::OfflineModel> LoadOfflineModel(const std::string& path,
                                            std::string* annotation = nullptr);

}  // namespace sky::io

#endif  // SKYSCRAPER_IO_MODEL_IO_H_
