#include "io/atomic_file.h"

#include <cstdio>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace sky::io {

namespace {
AtomicWriteFaultHook g_fault_hook = nullptr;
}  // namespace

void SetAtomicWriteFaultHookForTest(AtomicWriteFaultHook hook) {
  g_fault_hook = hook;
}

Status AtomicWriteFile(const std::string& path, const std::string& bytes) {
  // The temporary must live in the target's directory: rename(2) is only
  // atomic within one filesystem.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + tmp + " for writing");
  }
  auto fail = [&](const std::string& what) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::Internal(what + " " + tmp);
  };
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    return fail("short write to");
  }
  if (std::fflush(f) != 0) {
    return fail("flush failed for");
  }
#ifndef _WIN32
  // Push the bytes to stable storage BEFORE the rename becomes visible;
  // otherwise a power loss could publish a zero-length file.
  if (fsync(fileno(f)) != 0) {
    return fail("fsync failed for");
  }
#endif
  if (g_fault_hook != nullptr) {
    Status injected = g_fault_hook(tmp);
    if (!injected.ok()) {
      std::fclose(f);
      std::remove(tmp.c_str());
      return injected;
    }
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("close failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

}  // namespace sky::io
