#include "io/wire.h"

#include <cstring>
#include <utility>

#include "ml/nn.h"

namespace sky::io::wire {

uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void PutRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void PutU8(std::string* out, uint8_t v) { PutRaw(out, &v, 1); }
void PutU32(std::string* out, uint32_t v) { PutRaw(out, &v, sizeof(v)); }
void PutU64(std::string* out, uint64_t v) { PutRaw(out, &v, sizeof(v)); }
void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}
void PutF64(std::string* out, double v) { PutRaw(out, &v, sizeof(v)); }
void PutBool(std::string* out, bool v) { PutU8(out, v ? 1 : 0); }

void PutU64Vec(std::string* out, const std::vector<size_t>& v) {
  PutU64(out, v.size());
  for (size_t x : v) PutU64(out, x);
}

void PutF64Vec(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  if (!v.empty()) PutRaw(out, v.data(), v.size() * sizeof(double));
}

Status PutF64Rows(std::string* out,
                  const std::vector<std::vector<double>>& rows) {
  PutU64(out, rows.size());
  size_t cols = rows.empty() ? 0 : rows[0].size();
  PutU64(out, cols);
  for (const std::vector<double>& row : rows) {
    if (row.size() != cols) {
      return Status::InvalidArgument("ragged rows are not serializable");
    }
    if (!row.empty()) PutRaw(out, row.data(), row.size() * sizeof(double));
  }
  return Status::Ok();
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  PutRaw(out, s.data(), s.size());
}

void PutChunk(std::string* out, const char tag[4], const std::string& payload) {
  PutRaw(out, tag, 4);
  PutU64(out, payload.size());
  out->append(payload);
}

bool TagIs(const char tag[4], const char expected[4]) {
  return std::memcmp(tag, expected, 4) == 0;
}

Status Cursor::Read(void* out, size_t n) {
  if (n > remaining()) {
    return Status::InvalidArgument("serialized data truncated mid-field");
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status Cursor::Skip(size_t n) {
  if (n > remaining()) {
    return Status::InvalidArgument("serialized data truncated mid-chunk");
  }
  pos_ += n;
  return Status::Ok();
}

Status Cursor::ReadI64(int64_t* v) {
  uint64_t u = 0;
  SKY_RETURN_NOT_OK(ReadU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::Ok();
}

Status Cursor::ReadBool(bool* v) {
  uint8_t b = 0;
  SKY_RETURN_NOT_OK(ReadU8(&b));
  if (b > 1) {
    return Status::InvalidArgument("invalid boolean flag in serialized data");
  }
  *v = b != 0;
  return Status::Ok();
}

Status Cursor::ReadCount(size_t elem_bytes, uint64_t* count) {
  SKY_RETURN_NOT_OK(ReadU64(count));
  if (elem_bytes > 0 && *count > remaining() / elem_bytes) {
    return Status::InvalidArgument("serialized data declares impossible count");
  }
  return Status::Ok();
}

Status Cursor::ReadU64Vec(std::vector<size_t>* v) {
  uint64_t n = 0;
  SKY_RETURN_NOT_OK(ReadCount(sizeof(uint64_t), &n));
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    SKY_RETURN_NOT_OK(ReadU64(&x));
    (*v)[i] = x;
  }
  return Status::Ok();
}

Status Cursor::ReadF64Vec(std::vector<double>* v) {
  uint64_t n = 0;
  SKY_RETURN_NOT_OK(ReadCount(sizeof(double), &n));
  v->resize(n);
  if (n > 0) return Read(v->data(), n * sizeof(double));
  return Status::Ok();
}

Status Cursor::ReadF64Rows(std::vector<std::vector<double>>* rows) {
  uint64_t k = 0, cols = 0;
  SKY_RETURN_NOT_OK(ReadU64(&k));
  SKY_RETURN_NOT_OK(ReadU64(&cols));
  // Guard the multiplication itself, then the row count — and bound k by
  // the remaining payload even for zero-width rows, so no crafted header
  // can request an unbounded allocation.
  if (cols > remaining() / sizeof(double)) {
    return Status::InvalidArgument("serialized data declares impossible count");
  }
  uint64_t row_bytes = cols * sizeof(double);
  if (row_bytes > 0 ? k > remaining() / row_bytes : k > remaining()) {
    return Status::InvalidArgument("serialized data declares impossible count");
  }
  rows->assign(k, std::vector<double>(cols));
  for (auto& row : *rows) {
    if (cols > 0) SKY_RETURN_NOT_OK(Read(row.data(), cols * sizeof(double)));
  }
  return Status::Ok();
}

Status Cursor::ReadString(std::string* s) {
  uint64_t n = 0;
  SKY_RETURN_NOT_OK(ReadCount(1, &n));
  s->resize(n);
  if (n > 0) return Read(&(*s)[0], n);
  return Status::Ok();
}

void AppendForecaster(const std::optional<core::Forecaster>& forecaster,
                      std::string* out) {
  std::string* p = out;
  PutU8(p, forecaster.has_value() ? 1 : 0);
  if (!forecaster.has_value()) return;
  const core::Forecaster& f = *forecaster;

  const core::ForecasterOptions& o = f.options();
  PutF64(p, o.input_span);
  PutU64(p, o.input_splits);
  PutF64(p, o.planned_interval);
  PutF64(p, o.training_stride);
  PutU64(p, o.seed);
  const ml::TrainOptions& t = o.train_options;
  PutU64(p, t.epochs);
  PutU64(p, t.batch_size);
  PutF64(p, t.learning_rate);
  PutF64(p, t.validation_split);
  PutU32(p, static_cast<uint32_t>(t.loss));
  PutU64(p, t.shuffle_seed);
  PutU8(p, t.keep_best_validation_weights ? 1 : 0);
  PutU32(p, static_cast<uint32_t>(t.backend));
  PutU64(p, t.grad_chunk_rows);

  PutU64(p, f.num_categories());

  const ml::TrainReport& r = f.train_report();
  PutF64Vec(p, r.train_loss_per_epoch);
  PutF64Vec(p, r.val_loss_per_epoch);
  PutF64(p, r.best_val_loss);
  PutU64(p, r.best_epoch);

  ml::NetSnapshot net = f.SnapshotNet();
  PutU64(p, net.input_dim);
  PutU64Vec(p, net.hidden);
  PutU64(p, net.output_dim);
  PutU32(p, static_cast<uint32_t>(net.output_activation));
  PutU64(p, net.adam_steps);
  PutF64Vec(p, net.params);
  PutF64Vec(p, net.adam_m);
  PutF64Vec(p, net.adam_v);
}

Status ParseForecaster(Cursor* c, std::optional<core::Forecaster>* out) {
  uint8_t present = 0;
  SKY_RETURN_NOT_OK(c->ReadU8(&present));
  if (present == 0) {
    out->reset();
    return Status::Ok();
  }
  if (present != 1) {
    return Status::InvalidArgument("invalid forecaster presence flag");
  }

  core::ForecasterOptions o;
  uint64_t u = 0;
  uint32_t e = 0;
  uint8_t b = 0;
  SKY_RETURN_NOT_OK(c->ReadF64(&o.input_span));
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  o.input_splits = u;
  SKY_RETURN_NOT_OK(c->ReadF64(&o.planned_interval));
  SKY_RETURN_NOT_OK(c->ReadF64(&o.training_stride));
  SKY_RETURN_NOT_OK(c->ReadU64(&o.seed));
  ml::TrainOptions& t = o.train_options;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  t.epochs = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  t.batch_size = u;
  SKY_RETURN_NOT_OK(c->ReadF64(&t.learning_rate));
  SKY_RETURN_NOT_OK(c->ReadF64(&t.validation_split));
  SKY_RETURN_NOT_OK(c->ReadU32(&e));
  if (e > static_cast<uint32_t>(ml::Loss::kCrossEntropy)) {
    return Status::InvalidArgument("invalid loss id in forecaster payload");
  }
  t.loss = static_cast<ml::Loss>(e);
  SKY_RETURN_NOT_OK(c->ReadU64(&t.shuffle_seed));
  SKY_RETURN_NOT_OK(c->ReadU8(&b));
  t.keep_best_validation_weights = b != 0;
  SKY_RETURN_NOT_OK(c->ReadU32(&e));
  if (e > static_cast<uint32_t>(ml::TrainBackend::kPerSample)) {
    return Status::InvalidArgument(
        "invalid train backend id in forecaster payload");
  }
  t.backend = static_cast<ml::TrainBackend>(e);
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  t.grad_chunk_rows = u;

  uint64_t num_categories = 0;
  SKY_RETURN_NOT_OK(c->ReadU64(&num_categories));

  ml::TrainReport report;
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&report.train_loss_per_epoch));
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&report.val_loss_per_epoch));
  SKY_RETURN_NOT_OK(c->ReadF64(&report.best_val_loss));
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  report.best_epoch = u;

  ml::NetSnapshot net;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  net.input_dim = u;
  SKY_RETURN_NOT_OK(c->ReadU64Vec(&net.hidden));
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  net.output_dim = u;
  SKY_RETURN_NOT_OK(c->ReadU32(&e));
  if (e > static_cast<uint32_t>(ml::Activation::kSoftmax)) {
    return Status::InvalidArgument(
        "invalid activation id in forecaster payload");
  }
  net.output_activation = static_cast<ml::Activation>(e);
  SKY_RETURN_NOT_OK(c->ReadU64(&net.adam_steps));
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&net.params));
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&net.adam_m));
  SKY_RETURN_NOT_OK(c->ReadF64Vec(&net.adam_v));

  SKY_ASSIGN_OR_RETURN(core::Forecaster forecaster,
                       core::Forecaster::FromParts(net, o, num_categories,
                                                   std::move(report)));
  out->emplace(std::move(forecaster));
  return Status::Ok();
}

}  // namespace sky::io::wire
