#ifndef SKYSCRAPER_IO_CHECKPOINT_IO_H_
#define SKYSCRAPER_IO_CHECKPOINT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "io/wire.h"
#include "util/result.h"

namespace sky::io {

/// Version of the on-disk checkpoint format this build writes (and the only
/// one it reads — same versioning policy as the model format: bump on any
/// layout change, readers reject unknown versions rather than guessing).
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// Serializes a full engine session snapshot (core::IngestState) to bytes.
/// Doubles are raw IEEE-754 and the measurement RNG state is exact, so a
/// deserialize + IngestionEngine::Restore resumes the run bitwise — the
/// continuation is indistinguishable from never having stopped, including
/// the trace. The offline model is NOT embedded (checkpoints stay small);
/// deserialization borrows category/profile tables from the model the
/// engine already holds.
Status SerializeIngestState(const core::IngestState& state, std::string* out);

/// Parses bytes written by SerializeIngestState against `model` — which must
/// be the model of the engine the state will be restored into (bitwise the
/// same one that took the checkpoint, or the resumed run diverges).
/// Corrupted or truncated input, or a state inconsistent with the model's
/// shapes, yields an error — never a partially filled state.
Result<core::IngestState> DeserializeIngestState(
    const std::string& bytes, const core::OfflineModel& model);

/// Appends one EngineResult — every counter, every fault field, the full
/// trace, doubles as raw IEEE-754 — so round trips are bitwise. Shared by
/// engine checkpoints and the serve protocol's result frames (one layout,
/// two transports; they must never drift).
void AppendEngineResult(const core::EngineResult& r, std::string* out);

/// Parses a payload written by AppendEngineResult.
Status ParseEngineResult(wire::Cursor* c, core::EngineResult* r);

/// One stream's entry in a fleet checkpoint: its quarantine status and (for
/// streams that have started) the serialized engine state.
struct StreamCheckpoint {
  Status status;
  bool has_state = false;
  std::string state;  ///< SerializeIngestState bytes when has_state
};

/// A crash-consistent snapshot of an entire StreamSet, taken at a lockstep
/// plan boundary so every stream is at the same virtual time.
struct FleetCheckpoint {
  std::vector<StreamCheckpoint> streams;
};

/// Renders a fleet checkpoint to bytes: the chunked, checksummed wire
/// format (magic SKYCKPT1, versioned header, one chunk per stream, FNV-1a
/// trailer). The serve-server checkpoint embeds these bytes verbatim inside
/// its own file, so the fleet layout has exactly one definition.
Status SerializeFleetCheckpoint(const FleetCheckpoint& ckpt,
                                std::string* out);

/// Parses bytes produced by SerializeFleetCheckpoint. kInvalidArgument for
/// corrupt, truncated, or wrong-version contents (the checksum is verified
/// before anything is parsed).
Result<FleetCheckpoint> ParseFleetCheckpoint(const std::string& bytes);

/// Writes a fleet checkpoint to `path` (SerializeFleetCheckpoint through
/// io::AtomicWriteFile) — a crash mid-save never clobbers the last good
/// checkpoint.
Status SaveFleetCheckpoint(const FleetCheckpoint& ckpt,
                           const std::string& path);

/// Reads a checkpoint written by SaveFleetCheckpoint. kNotFound for a
/// missing file; kInvalidArgument for corrupt, truncated, or wrong-version
/// contents.
Result<FleetCheckpoint> LoadFleetCheckpoint(const std::string& path);

}  // namespace sky::io

#endif  // SKYSCRAPER_IO_CHECKPOINT_IO_H_
