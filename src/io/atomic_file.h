#ifndef SKYSCRAPER_IO_ATOMIC_FILE_H_
#define SKYSCRAPER_IO_ATOMIC_FILE_H_

#include <string>

#include "util/status.h"

namespace sky::io {

/// Writes `bytes` to `path` crash-consistently: the bytes land in a
/// temporary file in the same directory (`path` + ".tmp"), are flushed to
/// disk, and only then renamed over `path` — an atomic operation on POSIX
/// filesystems. A crash (or injected failure) at ANY point leaves either the
/// previous contents of `path` or the new ones, never a torn file; a failed
/// write removes the temporary and leaves `path` untouched.
///
/// kNotFound when the temporary cannot be created (missing directory, no
/// permission), kInternal for write/flush/rename failures.
Status AtomicWriteFile(const std::string& path, const std::string& bytes);

/// Test-only failure injection for the write path: when set, the hook runs
/// after the temporary file is flushed and before the rename. A non-OK
/// return aborts the save (the temporary is removed, the target untouched) —
/// exactly the window a mid-save crash lands in. Pass nullptr to clear.
/// Not thread-safe; tests install and clear it around a single call.
using AtomicWriteFaultHook = Status (*)(const std::string& tmp_path);
void SetAtomicWriteFaultHookForTest(AtomicWriteFaultHook hook);

}  // namespace sky::io

#endif  // SKYSCRAPER_IO_ATOMIC_FILE_H_
