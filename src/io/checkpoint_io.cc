#include "io/checkpoint_io.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "io/atomic_file.h"
#include "io/wire.h"

namespace sky::io {

namespace {

using wire::Cursor;
using wire::Fnv1a64;
using wire::PutChunk;
using wire::PutF64;
using wire::PutF64Rows;
using wire::PutF64Vec;
using wire::PutI64;
using wire::PutRaw;
using wire::PutString;
using wire::PutU32;
using wire::PutU64;
using wire::PutU64Vec;
using wire::PutU8;
using wire::TagIs;

constexpr char kMagic[8] = {'S', 'K', 'Y', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kEndianMarker = 0x01020304u;

constexpr char kChunkMeta[4] = {'M', 'E', 'T', 'A'};
constexpr char kChunkStream[4] = {'S', 'T', 'R', 'M'};
constexpr char kChunkChecksum[4] = {'C', 'S', 'U', 'M'};

}  // namespace

void AppendEngineResult(const core::EngineResult& r, std::string* p) {
  PutF64(p, r.total_quality);
  PutF64(p, r.mean_quality);
  PutU64(p, r.segments);
  PutF64(p, r.work_core_seconds);
  PutF64(p, r.onprem_core_seconds);
  PutF64(p, r.cloud_usd);
  PutU64(p, r.buffer_high_water_bytes);
  PutU64(p, r.overflow_events);
  PutU64(p, r.switch_count);
  PutU64(p, r.degraded_count);
  PutU64(p, r.misclassified);
  PutU64(p, r.type_a_errors);
  PutU64(p, r.type_b_errors);
  PutU64(p, r.cloud_failures);
  PutU64(p, r.cloud_retries);
  PutU64(p, r.cloud_giveups);
  PutF64(p, r.fault_backoff_s);
  PutU64(p, r.outage_segments);
  PutU64(p, r.outage_intervals);
  PutU64(p, r.udf_stall_segments);
  PutU64(p, r.trace.size());
  for (const core::TracePoint& t : r.trace) {
    PutF64(p, t.t);
    PutF64(p, t.quality);
    PutF64(p, t.work_core_s_per_s);
    PutF64(p, t.buffer_bytes);
    PutF64(p, t.cloud_usd_cumulative);
    PutF64(p, t.cloud_usd_planned);
    PutU64(p, t.config_idx);
    PutU64(p, t.category);
  }
}

Status ParseEngineResult(Cursor* c, core::EngineResult* r) {
  uint64_t u = 0;
  SKY_RETURN_NOT_OK(c->ReadF64(&r->total_quality));
  SKY_RETURN_NOT_OK(c->ReadF64(&r->mean_quality));
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->segments = u;
  SKY_RETURN_NOT_OK(c->ReadF64(&r->work_core_seconds));
  SKY_RETURN_NOT_OK(c->ReadF64(&r->onprem_core_seconds));
  SKY_RETURN_NOT_OK(c->ReadF64(&r->cloud_usd));
  SKY_RETURN_NOT_OK(c->ReadU64(&r->buffer_high_water_bytes));
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->overflow_events = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->switch_count = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->degraded_count = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->misclassified = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->type_a_errors = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->type_b_errors = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->cloud_failures = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->cloud_retries = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->cloud_giveups = u;
  SKY_RETURN_NOT_OK(c->ReadF64(&r->fault_backoff_s));
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->outage_segments = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->outage_intervals = u;
  SKY_RETURN_NOT_OK(c->ReadU64(&u));
  r->udf_stall_segments = u;
  uint64_t trace_n = 0;
  SKY_RETURN_NOT_OK(c->ReadCount(8 * sizeof(double), &trace_n));
  r->trace.resize(trace_n);
  for (core::TracePoint& t : r->trace) {
    SKY_RETURN_NOT_OK(c->ReadF64(&t.t));
    SKY_RETURN_NOT_OK(c->ReadF64(&t.quality));
    SKY_RETURN_NOT_OK(c->ReadF64(&t.work_core_s_per_s));
    SKY_RETURN_NOT_OK(c->ReadF64(&t.buffer_bytes));
    SKY_RETURN_NOT_OK(c->ReadF64(&t.cloud_usd_cumulative));
    SKY_RETURN_NOT_OK(c->ReadF64(&t.cloud_usd_planned));
    SKY_RETURN_NOT_OK(c->ReadU64(&u));
    t.config_idx = u;
    SKY_RETURN_NOT_OK(c->ReadU64(&u));
    t.category = u;
  }
  return Status::Ok();
}

Status SerializeIngestState(const core::IngestState& state, std::string* out) {
  out->clear();
  std::string* p = out;
  PutU32(p, kCheckpointFormatVersion);
  // Buffer capacity first: deserialization needs it to construct the state
  // before any other field can be filled.
  PutU64(p, state.buffer.capacity_bytes());

  PutF64(p, state.start_time);
  PutI64(p, state.first_segment);
  PutI64(p, state.n_segments);
  PutI64(p, state.segs_per_interval);
  PutU64(p, state.history_window);
  PutI64(p, state.next_index);
  PutU64(p, state.interval_index);

  PutString(p, state.noise.SaveState());
  wire::AppendForecaster(state.forecaster, p);

  PutU8(p, state.switcher.plan() != nullptr ? 1 : 0);
  PutU64(p, state.plan.alpha.rows());
  PutU64(p, state.plan.alpha.cols());
  if (!state.plan.alpha.data().empty()) {
    PutRaw(p, state.plan.alpha.data().data(),
           state.plan.alpha.data().size() * sizeof(double));
  }
  PutF64Vec(p, state.plan.forecast);
  PutF64(p, state.plan.expected_quality);
  PutF64(p, state.plan.expected_work);

  PutU8(p, state.boundary_prepared ? 1 : 0);
  PutU8(p, state.boundary_installed ? 1 : 0);
  PutF64Vec(p, state.boundary_forecast);
  PutF64Vec(p, state.plan_features);
  PutF64Vec(p, state.realized);
  PutU64Vec(p, state.history);
  PutU64(p, state.current_config);
  PutF64(p, state.last_measured);

  PutF64(p, state.lag_s);
  PutF64(p, state.buffered_bytes);
  PutU64(p, state.buffer.used_bytes());
  PutU64(p, state.buffer.high_water_bytes());
  PutF64(p, state.credits_remaining);
  PutF64(p, state.planned_usd_per_interval);

  AppendEngineResult(state.result, p);
  PutF64(p, state.next_trace_t);

  // Eq. 6 usage histograms — mid-interval restores must keep alpha-hat.
  Status rows_ok = PutF64Rows(p, state.switcher.usage_counts());
  if (!rows_ok.ok()) return rows_ok;
  PutF64Vec(p, state.switcher.usage_totals());
  // Trailing FNV-1a over everything above: a restored run must never start
  // from silently corrupted state, so bit flips are refused at load time.
  PutU64(p, Fnv1a64(out->data(), out->size()));
  return Status::Ok();
}

Result<core::IngestState> DeserializeIngestState(
    const std::string& bytes, const core::OfflineModel& model) {
  if (bytes.size() < sizeof(uint32_t) + sizeof(uint64_t)) {
    return Status::InvalidArgument("checkpoint state is truncated");
  }
  // Verify the trailing checksum before trusting any field.
  const size_t payload_size = bytes.size() - sizeof(uint64_t);
  uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, bytes.data() + payload_size, sizeof(stored_sum));
  if (stored_sum != Fnv1a64(bytes.data(), payload_size)) {
    return Status::InvalidArgument(
        "checkpoint state checksum mismatch (corrupted)");
  }
  Cursor c(bytes.data(), payload_size);
  uint32_t version = 0;
  SKY_RETURN_NOT_OK(c.ReadU32(&version));
  if (version != kCheckpointFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kCheckpointFormatVersion) + ")");
  }
  uint64_t buffer_capacity = 0;
  SKY_RETURN_NOT_OK(c.ReadU64(&buffer_capacity));

  core::IngestState state(&model.categories, &model.profiles, buffer_capacity);

  SKY_RETURN_NOT_OK(c.ReadF64(&state.start_time));
  SKY_RETURN_NOT_OK(c.ReadI64(&state.first_segment));
  SKY_RETURN_NOT_OK(c.ReadI64(&state.n_segments));
  SKY_RETURN_NOT_OK(c.ReadI64(&state.segs_per_interval));
  if (state.segs_per_interval <= 0) {
    return Status::InvalidArgument(
        "checkpoint does not hold a started session");
  }
  uint64_t u = 0;
  SKY_RETURN_NOT_OK(c.ReadU64(&u));
  state.history_window = u;
  SKY_RETURN_NOT_OK(c.ReadI64(&state.next_index));
  SKY_RETURN_NOT_OK(c.ReadU64(&u));
  state.interval_index = u;

  std::string rng_state;
  SKY_RETURN_NOT_OK(c.ReadString(&rng_state));
  SKY_RETURN_NOT_OK(state.noise.LoadState(rng_state));
  SKY_RETURN_NOT_OK(wire::ParseForecaster(&c, &state.forecaster));

  bool has_plan = false;
  SKY_RETURN_NOT_OK(c.ReadBool(&has_plan));
  uint64_t rows = 0, cols = 0;
  SKY_RETURN_NOT_OK(c.ReadU64(&rows));
  SKY_RETURN_NOT_OK(c.ReadU64(&cols));
  if (cols > 0 && rows > c.remaining() / (cols * sizeof(double))) {
    return Status::InvalidArgument("checkpoint declares impossible plan size");
  }
  state.plan.alpha = ml::Matrix(rows, cols, 0.0);
  if (rows * cols > 0) {
    SKY_RETURN_NOT_OK(
        c.Read(state.plan.alpha.data().data(), rows * cols * sizeof(double)));
  }
  SKY_RETURN_NOT_OK(c.ReadF64Vec(&state.plan.forecast));
  SKY_RETURN_NOT_OK(c.ReadF64(&state.plan.expected_quality));
  SKY_RETURN_NOT_OK(c.ReadF64(&state.plan.expected_work));
  if (has_plan &&
      (rows != model.categories.NumCategories() ||
       cols != model.profiles.size())) {
    return Status::InvalidArgument(
        "checkpoint plan shape does not match the model");
  }

  SKY_RETURN_NOT_OK(c.ReadBool(&state.boundary_prepared));
  SKY_RETURN_NOT_OK(c.ReadBool(&state.boundary_installed));
  SKY_RETURN_NOT_OK(c.ReadF64Vec(&state.boundary_forecast));
  SKY_RETURN_NOT_OK(c.ReadF64Vec(&state.plan_features));
  SKY_RETURN_NOT_OK(c.ReadF64Vec(&state.realized));
  SKY_RETURN_NOT_OK(c.ReadU64Vec(&state.history));
  SKY_RETURN_NOT_OK(c.ReadU64(&u));
  if (u >= model.profiles.size()) {
    return Status::InvalidArgument(
        "checkpoint config index out of range for the model");
  }
  state.current_config = u;
  SKY_RETURN_NOT_OK(c.ReadF64(&state.last_measured));

  SKY_RETURN_NOT_OK(c.ReadF64(&state.lag_s));
  SKY_RETURN_NOT_OK(c.ReadF64(&state.buffered_bytes));
  uint64_t buf_used = 0, buf_high = 0;
  SKY_RETURN_NOT_OK(c.ReadU64(&buf_used));
  SKY_RETURN_NOT_OK(c.ReadU64(&buf_high));
  if (buf_used > buffer_capacity) {
    return Status::InvalidArgument("checkpoint buffer fill exceeds capacity");
  }
  state.buffer.RestoreParts(buf_used, buf_high);
  SKY_RETURN_NOT_OK(c.ReadF64(&state.credits_remaining));
  SKY_RETURN_NOT_OK(c.ReadF64(&state.planned_usd_per_interval));

  SKY_RETURN_NOT_OK(ParseEngineResult(&c, &state.result));
  SKY_RETURN_NOT_OK(c.ReadF64(&state.next_trace_t));

  std::vector<std::vector<double>> usage_counts;
  std::vector<double> usage_totals;
  SKY_RETURN_NOT_OK(c.ReadF64Rows(&usage_counts));
  SKY_RETURN_NOT_OK(c.ReadF64Vec(&usage_totals));
  // Install the plan pointer before the histograms: SetPlan resets usage.
  if (has_plan) state.switcher.SetPlan(&state.plan);
  SKY_RETURN_NOT_OK(state.switcher.RestoreUsage(usage_counts, usage_totals));

  if (c.remaining() != 0) {
    return Status::InvalidArgument("checkpoint state has trailing bytes");
  }
  // The return move runs IngestState's move constructor, which rebinds the
  // switcher to the moved plan object.
  return state;
}

Status SerializeFleetCheckpoint(const FleetCheckpoint& ckpt,
                                std::string* out_bytes) {
  std::string& out = *out_bytes;
  out.clear();
  PutRaw(&out, kMagic, sizeof(kMagic));
  PutU32(&out, kCheckpointFormatVersion);
  PutU32(&out, kEndianMarker);

  {
    std::string p;
    PutU64(&p, ckpt.streams.size());
    PutChunk(&out, kChunkMeta, p);
  }
  for (size_t v = 0; v < ckpt.streams.size(); ++v) {
    const StreamCheckpoint& sc = ckpt.streams[v];
    std::string p;
    PutU64(&p, v);
    PutU32(&p, static_cast<uint32_t>(sc.status.code()));
    PutString(&p, sc.status.ok() ? std::string() : sc.status.message());
    PutU8(&p, sc.has_state ? 1 : 0);
    PutString(&p, sc.state);
    PutChunk(&out, kChunkStream, p);
  }

  std::string checksum;
  PutU64(&checksum, Fnv1a64(out.data(), out.size()));
  PutChunk(&out, kChunkChecksum, checksum);
  return Status::Ok();
}

Result<FleetCheckpoint> ParseFleetCheckpoint(const std::string& bytes) {
  Cursor header(bytes.data(), bytes.size());
  char magic[8];
  SKY_RETURN_NOT_OK(header.Read(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "not a Skyscraper checkpoint file (bad magic)");
  }
  uint32_t version = 0, endian = 0;
  SKY_RETURN_NOT_OK(header.ReadU32(&version));
  if (version != kCheckpointFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version " + std::to_string(version));
  }
  SKY_RETURN_NOT_OK(header.ReadU32(&endian));
  if (endian != kEndianMarker) {
    return Status::InvalidArgument(
        "checkpoint file written with different byte order");
  }

  // Pass 1: verify the checksum trailer before parsing anything.
  Cursor walk(bytes.data(), bytes.size());
  SKY_RETURN_NOT_OK(walk.Skip(16));
  bool checksum_seen = false;
  while (walk.remaining() > 0) {
    char tag[4];
    SKY_RETURN_NOT_OK(walk.Read(tag, 4));
    uint64_t size = 0;
    SKY_RETURN_NOT_OK(walk.ReadU64(&size));
    if (TagIs(tag, kChunkChecksum)) {
      if (size != sizeof(uint64_t) || walk.remaining() != size) {
        return Status::InvalidArgument("malformed checkpoint checksum trailer");
      }
      size_t covered = walk.pos() - 12;
      uint64_t stored = 0;
      SKY_RETURN_NOT_OK(walk.ReadU64(&stored));
      if (stored != Fnv1a64(bytes.data(), covered)) {
        return Status::InvalidArgument(
            "checkpoint file checksum mismatch (corrupted)");
      }
      checksum_seen = true;
      break;
    }
    SKY_RETURN_NOT_OK(walk.Skip(size));
  }
  if (!checksum_seen) {
    return Status::InvalidArgument("checkpoint file missing checksum trailer");
  }

  // Pass 2: parse the stream entries.
  FleetCheckpoint ckpt;
  bool seen_meta = false;
  uint64_t declared_streams = 0;
  Cursor c(bytes.data(), bytes.size());
  SKY_RETURN_NOT_OK(c.Skip(16));
  while (c.remaining() > 0) {
    char tag[4];
    SKY_RETURN_NOT_OK(c.Read(tag, 4));
    uint64_t size = 0;
    SKY_RETURN_NOT_OK(c.ReadU64(&size));
    if (size > c.remaining()) {
      return Status::InvalidArgument("checkpoint file truncated mid-chunk");
    }
    Cursor payload(bytes.data() + c.pos(), size);
    if (TagIs(tag, kChunkChecksum)) break;

    if (TagIs(tag, kChunkMeta)) {
      if (seen_meta) {
        return Status::InvalidArgument("duplicate META chunk in checkpoint");
      }
      seen_meta = true;
      SKY_RETURN_NOT_OK(payload.ReadU64(&declared_streams));
      // Each stream needs its own chunk later in the file; a count the file
      // could not possibly hold is corruption, not a big fleet.
      if (declared_streams > bytes.size()) {
        return Status::InvalidArgument(
            "checkpoint declares impossible stream count");
      }
      ckpt.streams.reserve(declared_streams);
    } else if (TagIs(tag, kChunkStream)) {
      if (!seen_meta) {
        return Status::InvalidArgument(
            "checkpoint stream chunk before META");
      }
      uint64_t index = 0;
      SKY_RETURN_NOT_OK(payload.ReadU64(&index));
      if (index != ckpt.streams.size() || index >= declared_streams) {
        return Status::InvalidArgument(
            "checkpoint stream chunks out of order");
      }
      StreamCheckpoint sc;
      uint32_t code = 0;
      SKY_RETURN_NOT_OK(payload.ReadU32(&code));
      if (code > static_cast<uint32_t>(StatusCode::kInternal)) {
        return Status::InvalidArgument("invalid status code in checkpoint");
      }
      std::string message;
      SKY_RETURN_NOT_OK(payload.ReadString(&message));
      sc.status = code == 0 ? Status::Ok()
                            : Status(static_cast<StatusCode>(code),
                                     std::move(message));
      SKY_RETURN_NOT_OK(payload.ReadBool(&sc.has_state));
      SKY_RETURN_NOT_OK(payload.ReadString(&sc.state));
      ckpt.streams.push_back(std::move(sc));
    } else {
      return Status::InvalidArgument("unknown chunk tag in checkpoint file");
    }
    if (payload.remaining() != 0) {
      return Status::InvalidArgument("checkpoint chunk has trailing bytes");
    }
    SKY_RETURN_NOT_OK(c.Skip(size));
  }
  if (!seen_meta) {
    return Status::InvalidArgument("checkpoint file is missing META chunk");
  }
  if (ckpt.streams.size() != declared_streams) {
    return Status::InvalidArgument(
        "checkpoint stream count does not match META");
  }
  return ckpt;
}

Status SaveFleetCheckpoint(const FleetCheckpoint& ckpt,
                           const std::string& path) {
  std::string out;
  SKY_RETURN_NOT_OK(SerializeFleetCheckpoint(ckpt, &out));
  return AtomicWriteFile(path, out);
}

Result<FleetCheckpoint> LoadFleetCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open checkpoint file " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("error reading checkpoint file " + path);
  }
  return ParseFleetCheckpoint(bytes);
}

}  // namespace sky::io
